// Throughput benchmark of the parallel batch query engine: the same
// workload answered by GroupNNBatch under worker counts 1/2/4/NumCPU.
// Reports qps (queries per second) so scaling across PRs is trackable;
// `go run ./cmd/gnnbench -parallel N` produces the JSON snapshot
// (BENCH_parallel.json) from the same sweep.
package gnn_test

import (
	"fmt"
	"runtime"
	"testing"

	"gnn"
	"gnn/internal/dataset"
	"gnn/internal/workload"
)

func BenchmarkGroupNNParallel(b *testing.B) {
	d, err := env().Dataset("TS")
	if err != nil {
		b.Fatal(err)
	}
	pts := make([]gnn.Point, len(d.Points))
	for i, p := range d.Points {
		pts[i] = gnn.Point(p)
	}
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
	if err != nil {
		b.Fatal(err)
	}
	qs, err := workload.Generate(workload.Spec{
		N: 64, AreaFraction: 0.08, Queries: 64,
		Workspace: dataset.Workspace(), Seed: 11,
	})
	if err != nil {
		b.Fatal(err)
	}
	queries := make([][]gnn.Point, len(qs))
	for i, q := range qs {
		group := make([]gnn.Point, len(q.Points))
		for j, p := range q.Points {
			group[j] = gnn.Point(p)
		}
		queries[i] = group
	}

	workers := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		workers = append(workers, n)
	}
	for _, w := range workers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := ix.GroupNNBatch(queries, gnn.WithK(8), gnn.WithParallelism(w))
				for _, r := range out {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.StopTimer()
			total := float64(b.N) * float64(len(queries))
			b.ReportMetric(total/b.Elapsed().Seconds(), "qps")
		})
	}
}
