package gnn_test

import (
	"reflect"
	"testing"

	"gnn"
)

// explainTarget is the common surface of the plain and sharded indexes.
type explainTarget interface {
	GroupNN(query []gnn.Point, opts ...gnn.QueryOption) ([]gnn.Result, error)
	GroupNNExplain(query []gnn.Point, opts ...gnn.QueryOption) ([]gnn.Result, *gnn.QueryExplain, error)
}

// requireExplainMatches runs the same query plain and explained and
// fails unless the results are bit-identical and the explain is sane.
func requireExplainMatches(t *testing.T, label string, ix explainTarget, q []gnn.Point, opts ...gnn.QueryOption) *gnn.QueryExplain {
	t.Helper()
	plain, err := ix.GroupNN(q, opts...)
	if err != nil {
		t.Fatalf("%s: GroupNN: %v", label, err)
	}
	res, ex, err := ix.GroupNNExplain(q, opts...)
	if err != nil {
		t.Fatalf("%s: GroupNNExplain: %v", label, err)
	}
	if !reflect.DeepEqual(plain, res) {
		t.Fatalf("%s: explained results diverged:\n plain: %v\n explain: %v", label, plain, res)
	}
	if ex == nil {
		t.Fatalf("%s: nil explain", label)
	}
	if ex.GroupSize != len(q) {
		t.Errorf("%s: GroupSize = %d, want %d", label, ex.GroupSize, len(q))
	}
	if len(ex.Stages) == 0 {
		t.Errorf("%s: no stages recorded", label)
	}
	if ex.Layout != "packed" && ex.Layout != "dynamic" {
		t.Errorf("%s: layout %q", label, ex.Layout)
	}
	return ex
}

func TestExplainPlainIndexAllAlgorithms(t *testing.T) {
	pts, ix, queries := snapshotFixture(t, 3000, 23)
	cases := []struct {
		name string
		opts []gnn.QueryOption
		chk  func(t *testing.T, ex *gnn.QueryExplain)
	}{
		{"MBM", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithK(4)}, func(t *testing.T, ex *gnn.QueryExplain) {
			if ex.Algorithm != "MBM" || ex.Trace.NodesVisited == 0 {
				t.Errorf("MBM explain: %+v", ex)
			}
			if ex.Trace.NodesPrunedH2+ex.Trace.NodesPrunedH3 == 0 {
				t.Errorf("MBM pruned nothing: %+v", ex.Trace)
			}
		}},
		{"auto-resolves-to-MBM", []gnn.QueryOption{gnn.WithK(2)}, func(t *testing.T, ex *gnn.QueryExplain) {
			if ex.Algorithm != "MBM" {
				t.Errorf("auto resolved to %q, want MBM", ex.Algorithm)
			}
		}},
		{"MBM-df", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithDepthFirst(), gnn.WithK(4)}, func(t *testing.T, ex *gnn.QueryExplain) {
			if ex.Trace.NodesVisited == 0 {
				t.Errorf("MBM-df explain: %+v", ex.Trace)
			}
		}},
		{"SPM", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoSPM), gnn.WithK(4)}, func(t *testing.T, ex *gnn.QueryExplain) {
			if ex.Algorithm != "SPM" || ex.Trace.NodesVisited == 0 {
				t.Errorf("SPM explain: %+v", ex)
			}
			if ex.Trace.NodesPrunedH1+ex.Trace.PointsPrunedH1 == 0 {
				t.Errorf("SPM heuristic 1 pruned nothing: %+v", ex.Trace)
			}
		}},
		{"SPM-df", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoSPM), gnn.WithDepthFirst()}, func(t *testing.T, ex *gnn.QueryExplain) {
			if ex.Trace.NodesPrunedH1+ex.Trace.PointsPrunedH1 == 0 {
				t.Errorf("SPM-df heuristic 1 pruned nothing: %+v", ex.Trace)
			}
		}},
		{"MQM", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMQM), gnn.WithK(4)}, func(t *testing.T, ex *gnn.QueryExplain) {
			if ex.Algorithm != "MQM" || ex.Trace.StreamAdvances == 0 {
				t.Errorf("MQM explain: %+v", ex)
			}
		}},
		{"brute", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoBruteForce)}, func(t *testing.T, ex *gnn.QueryExplain) {
			if ex.Trace.PointsScanned != len(pts) {
				t.Errorf("brute scanned %d points, want %d", ex.Trace.PointsScanned, len(pts))
			}
		}},
		{"MBM-max-meb", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithAggregate(gnn.MaxDist)}, func(t *testing.T, ex *gnn.QueryExplain) {
			if ex.MaxKernel != "meb" {
				t.Errorf("max kernel = %q, want meb", ex.MaxKernel)
			}
		}},
		{"MBM-max-generic", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithAggregate(gnn.MaxDist), gnn.WithGenericMax()}, func(t *testing.T, ex *gnn.QueryExplain) {
			if ex.MaxKernel != "generic" {
				t.Errorf("max kernel = %q, want generic", ex.MaxKernel)
			}
		}},
		{"dynamic-layout", []gnn.QueryOption{gnn.WithLayout(gnn.LayoutDynamic)}, func(t *testing.T, ex *gnn.QueryExplain) {
			if ex.Layout != "dynamic" {
				t.Errorf("layout = %q, want dynamic", ex.Layout)
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, q := range queries[:4] {
				ex := requireExplainMatches(t, c.name, ix, q, c.opts...)
				if ex.Shards != 0 || ex.Overlay {
					t.Errorf("plain index explain has Shards=%d Overlay=%v", ex.Shards, ex.Overlay)
				}
				c.chk(t, ex)
			}
		})
	}
}

func TestExplainShardedIndex(t *testing.T) {
	pts, _, queries := snapshotFixture(t, 3000, 29)
	sx, err := gnn.BuildShardedIndex(pts, nil, 4, gnn.IndexConfig{NodeCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer sx.Close()
	for _, q := range queries[:4] {
		ex := requireExplainMatches(t, "sharded", sx, q, gnn.WithK(3))
		if ex.Shards != 4 {
			t.Errorf("Shards = %d, want 4", ex.Shards)
		}
		scatter, merge := 0, 0
		shardsSeen := map[int]bool{}
		for _, s := range ex.Stages {
			switch s.Name {
			case "scatter":
				scatter++
				shardsSeen[s.Shard] = true
			case "merge":
				merge++
			}
		}
		if scatter != 4 || len(shardsSeen) != 4 {
			t.Errorf("scatter stages = %d over shards %v, want 4 distinct", scatter, shardsSeen)
		}
		if merge != 1 {
			t.Errorf("merge stages = %d, want 1", merge)
		}
		if ex.Trace.NodesVisited == 0 {
			t.Errorf("sharded trace empty: %+v", ex.Trace)
		}
	}
}

func TestExplainMappedSnapshot(t *testing.T) {
	_, ix, queries := snapshotFixture(t, 2000, 31)
	path := writeSnapFile(t, t.TempDir(), "ix.snap", ix.WriteSnapshotFile)
	mapped, err := gnn.OpenSnapshotMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	for _, q := range queries[:4] {
		ex := requireExplainMatches(t, "mapped", mapped, q, gnn.WithK(2))
		if ex.Layout != "packed" {
			t.Errorf("mapped layout = %q, want packed", ex.Layout)
		}
	}
}

func TestExplainOverlay(t *testing.T) {
	pts, ix, queries := snapshotFixture(t, 2000, 37)
	// Mutate: inserts land in the delta, deletes tombstone base points.
	for i := 0; i < 40; i++ {
		if err := ix.Insert(gnn.Point{float64(i) * 21.3, float64(i) * 17.9}, int64(100000+i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		ix.Delete(pts[i*7], int64(i*7))
	}
	for _, q := range queries[:4] {
		ex := requireExplainMatches(t, "overlay", ix, q, gnn.WithK(3))
		if !ex.Overlay {
			t.Error("Overlay = false on a mutated index")
		}
		names := map[string]bool{}
		for _, s := range ex.Stages {
			names[s.Name] = true
		}
		if !names["base"] || !names["merge"] {
			t.Errorf("overlay stages missing base/merge: %v", names)
		}
	}

	// Sharded overlay: same discipline on the scattered index.
	sx, err := gnn.BuildShardedIndex(pts, nil, 3, gnn.IndexConfig{NodeCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer sx.Close()
	for i := 0; i < 40; i++ {
		if err := sx.Insert(gnn.Point{float64(i) * 21.3, float64(i) * 17.9}, int64(200000+i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range queries[:4] {
		ex := requireExplainMatches(t, "sharded-overlay", sx, q, gnn.WithK(3))
		if !ex.Overlay {
			t.Error("sharded Overlay = false on a mutated index")
		}
		names := map[string]bool{}
		for _, s := range ex.Stages {
			names[s.Name] = true
		}
		if !names["base"] || !names["overlay-merge"] || !names["scatter"] {
			t.Errorf("sharded overlay stages missing: %v", names)
		}
	}
}

// TestExplainTraceOffBitIdentical pins the acceptance contract from the
// other side: attaching the probe must not change what any kernel
// returns, across algorithms × aggregates on the same workload.
func TestExplainTraceOffBitIdentical(t *testing.T) {
	_, ix, queries := snapshotFixture(t, 2500, 41)
	cells := [][]gnn.QueryOption{
		{gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithK(5)},
		{gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithAggregate(gnn.MaxDist), gnn.WithK(3)},
		{gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithAggregate(gnn.MinDist), gnn.WithDepthFirst()},
		{gnn.WithAlgorithm(gnn.AlgoSPM), gnn.WithK(5)},
		{gnn.WithAlgorithm(gnn.AlgoMQM), gnn.WithAggregate(gnn.MaxDist)},
		{gnn.WithAlgorithm(gnn.AlgoBruteForce), gnn.WithK(5)},
	}
	for _, opts := range cells {
		for _, q := range queries {
			requireExplainMatches(t, "bit-identical", ix, q, opts...)
		}
	}
}
