// Metamorphic test suite: GNN answers must be invariant under geometric
// transformations of the whole scene (data and query group together) and
// under permutation of the query group, for every algorithm, aggregate
// and layout, on both the plain and the sharded index.
//
// The first three transformations are chosen to be floating-point exact
// on integer-coordinate data, so the suite can demand bit-identical
// distances rather than tolerances:
//
//   - translation by an integer vector: coordinate differences (the only
//     thing distances see) are unchanged bit for bit;
//   - axis swap: per-term squared distances are sums of per-axis squares,
//     and float addition is commutative;
//   - uniform scaling by a power of two: exact on every coordinate,
//     difference, square root and sum (rounding commutes with powers of
//     two), so every distance scales by exactly the factor.
//
// Permutation of the query group changes the order of the aggregate's
// floating-point reduction, which legitimately perturbs distances by
// ulps, so that invariant is checked with a tolerance on distances and
// rank-order IDs.
package gnn_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"gnn"
)

// intPoints generates n distinct integer-coordinate points in
// [0, span)², the substrate that keeps the exact transforms exact.
func intPoints(rng *rand.Rand, n int, span int) []gnn.Point {
	seen := map[[2]int]bool{}
	pts := make([]gnn.Point, 0, n)
	for len(pts) < n {
		x, y := rng.Intn(span), rng.Intn(span)
		if seen[[2]int{x, y}] {
			continue
		}
		seen[[2]int{x, y}] = true
		pts = append(pts, gnn.Point{float64(x), float64(y)})
	}
	return pts
}

// mapPoints applies f to every point of a slice.
func mapPoints(pts []gnn.Point, f func(gnn.Point) gnn.Point) []gnn.Point {
	out := make([]gnn.Point, len(pts))
	for i, p := range pts {
		out[i] = f(p)
	}
	return out
}

// metaXform is one metamorphic transformation of the scene.
type metaXform struct {
	name       string
	pt         func(gnn.Point) gnn.Point // applied to data and query points
	distFactor float64                   // exact factor all distances scale by
	// reordersGroup marks transforms that change the Hilbert order of the
	// query points: MQM re-sorts its group by Hilbert value, so for it the
	// aggregate's reduction order — and with it the last few ulps of each
	// distance — shifts, and the comparison must fall back to a tolerance.
	// Translation and power-of-two scaling map every point to the same
	// grid cell offsets, so the Hilbert order is provably unchanged; an
	// axis swap mirrors the curve and is not.
	reordersGroup bool
}

func metaXforms() []metaXform {
	return []metaXform{
		{"translate", func(p gnn.Point) gnn.Point {
			return gnn.Point{p[0] + 131072, p[1] - 65536}
		}, 1, false},
		{"axis-swap", func(p gnn.Point) gnn.Point {
			return gnn.Point{p[1], p[0]}
		}, 1, true},
		{"scale-4x", func(p gnn.Point) gnn.Point {
			return gnn.Point{p[0] * 4, p[1] * 4}
		}, 4, false},
		{"scale-quarter", func(p gnn.Point) gnn.Point {
			return gnn.Point{p[0] * 0.25, p[1] * 0.25}
		}, 0.25, false},
	}
}

// metaEngine abstracts the two index kinds under test.
type metaEngine struct {
	name  string
	build func(t *testing.T, pts []gnn.Point) interface {
		GroupNN(q []gnn.Point, opts ...gnn.QueryOption) ([]gnn.Result, error)
	}
}

func metaEngines() []metaEngine {
	return []metaEngine{
		{"index", func(t *testing.T, pts []gnn.Point) interface {
			GroupNN(q []gnn.Point, opts ...gnn.QueryOption) ([]gnn.Result, error)
		} {
			ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{NodeCapacity: 16})
			if err != nil {
				t.Fatal(err)
			}
			return ix
		}},
		{"sharded", func(t *testing.T, pts []gnn.Point) interface {
			GroupNN(q []gnn.Point, opts ...gnn.QueryOption) ([]gnn.Result, error)
		} {
			sx, err := gnn.BuildShardedIndex(pts, nil, 5, gnn.IndexConfig{NodeCapacity: 16})
			if err != nil {
				t.Fatal(err)
			}
			return sx
		}},
	}
}

// metaCells enumerates the algorithm × aggregate × traversal cells the
// suite runs (SPM is SUM-only by design).
type metaCell struct {
	name string
	mqm  bool // resorts the group internally (see metaXform.reordersGroup)
	opts []gnn.QueryOption
}

func metaCells() []metaCell {
	return []metaCell{
		{"MBM/sum", false, []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM)}},
		{"MBM-DF/sum", false, []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithDepthFirst()}},
		{"MBM/max", false, []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithAggregate(gnn.MaxDist)}},
		// The dedicated aggregate-MAX kernel (MEB pruning) and the generic
		// per-member path, both traversals: the transforms must commute
		// with the ball bound exactly as with the per-member bounds.
		{"MBM-DF/max", false, []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithDepthFirst(), gnn.WithAggregate(gnn.MaxDist)}},
		{"MBM/max-generic", false, []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithAggregate(gnn.MaxDist), gnn.WithGenericMax()}},
		{"MBM-DF/max-generic", false, []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithDepthFirst(), gnn.WithAggregate(gnn.MaxDist), gnn.WithGenericMax()}},
		{"MBM/min", false, []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithAggregate(gnn.MinDist)}},
		{"MQM/sum", true, []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMQM)}},
		{"MQM/max", true, []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMQM), gnn.WithAggregate(gnn.MaxDist)}},
		{"SPM/sum", false, []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoSPM)}},
		{"brute/sum", false, []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoBruteForce)}},
		{"brute/max", false, []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoBruteForce), gnn.WithAggregate(gnn.MaxDist)}},
	}
}

// TestMetamorphicTransforms checks the exact transforms: identical ID
// rankings and bit-identical distances (up to the exact scale factor)
// under translation, axis swap and power-of-two scaling.
func TestMetamorphicTransforms(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := intPoints(rng, 2500, 1<<20)
	groups := [][]gnn.Point{
		intPoints(rng, 1, 1<<20),
		intPoints(rng, 5, 1<<20),
		intPoints(rng, 32, 1<<20),
	}
	for _, eng := range metaEngines() {
		base := eng.build(t, pts)
		for _, xf := range metaXforms() {
			xformed := eng.build(t, mapPoints(pts, xf.pt))
			for gi, qs := range groups {
				xqs := mapPoints(qs, xf.pt)
				k := []int{1, 8}[gi%2]
				for _, cell := range metaCells() {
					for _, layout := range []gnn.Layout{gnn.LayoutDynamic, gnn.LayoutPacked} {
						name := fmt.Sprintf("%s/%s/%s/group%d/%v", eng.name, xf.name, cell.name, len(qs), layout)
						opts := append(append([]gnn.QueryOption{}, cell.opts...),
							gnn.WithK(k), gnn.WithLayout(layout))
						want, err := base.GroupNN(qs, opts...)
						if err != nil {
							t.Fatalf("%s (base): %v", name, err)
						}
						got, err := xformed.GroupNN(xqs, opts...)
						if err != nil {
							t.Fatalf("%s (transformed): %v", name, err)
						}
						if len(want) != len(got) {
							t.Fatalf("%s: %d results vs %d", name, len(want), len(got))
						}
						exact := !(xf.reordersGroup && cell.mqm)
						for i := range want {
							if got[i].ID != want[i].ID {
								t.Fatalf("%s: rank %d is #%d, want #%d\nbase: %v\nxf:   %v",
									name, i, got[i].ID, want[i].ID, want, got)
							}
							scaled := want[i].Dist * xf.distFactor
							if exact && got[i].Dist != scaled {
								t.Fatalf("%s: rank %d distance %v, want exactly %v·%v",
									name, i, got[i].Dist, want[i].Dist, xf.distFactor)
							}
							if d := math.Abs(got[i].Dist - scaled); d > 1e-9*(1+scaled) {
								t.Fatalf("%s: rank %d distance drifted %v vs %v",
									name, i, got[i].Dist, scaled)
							}
						}
					}
				}
			}
		}
	}
}

// TestMetamorphicGroupPermutation checks that permuting the query group
// leaves the answer invariant: same IDs in the same ranking, distances
// equal within floating-point reduction noise.
func TestMetamorphicGroupPermutation(t *testing.T) {
	const rtol = 1e-9
	rng := rand.New(rand.NewSource(22))
	pts := intPoints(rng, 2500, 1<<20)
	for _, eng := range metaEngines() {
		ix := eng.build(t, pts)
		for _, n := range []int{2, 7, 32} {
			qs := intPoints(rng, n, 1<<20)
			perms := [][]gnn.Point{reversed(qs), shuffled(rng, qs)}
			for _, cell := range metaCells() {
				for _, layout := range []gnn.Layout{gnn.LayoutDynamic, gnn.LayoutPacked} {
					name := fmt.Sprintf("%s/%s/group%d/%v", eng.name, cell.name, n, layout)
					opts := append(append([]gnn.QueryOption{}, cell.opts...),
						gnn.WithK(6), gnn.WithLayout(layout))
					want, err := ix.GroupNN(qs, opts...)
					if err != nil {
						t.Fatalf("%s (base): %v", name, err)
					}
					for pi, pqs := range perms {
						got, err := ix.GroupNN(pqs, opts...)
						if err != nil {
							t.Fatalf("%s (perm %d): %v", name, pi, err)
						}
						if len(want) != len(got) {
							t.Fatalf("%s perm %d: %d results vs %d", name, pi, len(want), len(got))
						}
						for i := range want {
							if got[i].ID != want[i].ID {
								t.Fatalf("%s perm %d: rank %d is #%d, want #%d\nbase: %v\nperm: %v",
									name, pi, i, got[i].ID, want[i].ID, want, got)
							}
							if d := math.Abs(got[i].Dist - want[i].Dist); d > rtol*(1+want[i].Dist) {
								t.Fatalf("%s perm %d: rank %d distance drifted %v vs %v",
									name, pi, i, got[i].Dist, want[i].Dist)
							}
						}
					}
				}
			}
		}
	}
}

func reversed(qs []gnn.Point) []gnn.Point {
	out := make([]gnn.Point, len(qs))
	for i, q := range qs {
		out[len(qs)-1-i] = q
	}
	return out
}

func shuffled(rng *rand.Rand, qs []gnn.Point) []gnn.Point {
	out := make([]gnn.Point, len(qs))
	copy(out, qs)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
