package gnn

import (
	"errors"
	"fmt"

	"gnn/internal/core"
	"gnn/internal/geom"
)

// Algorithm selects the GNN processing method for memory-resident query
// groups.
type Algorithm int

const (
	// AlgoAuto picks MBM, the paper's overall winner (§5.1).
	AlgoAuto Algorithm = iota
	// AlgoMQM is the multiple query method (§3.1).
	AlgoMQM
	// AlgoSPM is the single point method (§3.2).
	AlgoSPM
	// AlgoMBM is the minimum bounding method (§3.3).
	AlgoMBM
	// AlgoBruteForce scans all points; exact but index-oblivious.
	AlgoBruteForce
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgoAuto:
		return "auto"
	case AlgoMQM:
		return "MQM"
	case AlgoSPM:
		return "SPM"
	case AlgoMBM:
		return "MBM"
	case AlgoBruteForce:
		return "brute-force"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Aggregate selects the distance-combination function dist(p,Q).
type Aggregate = core.Aggregate

// Aggregates. SumDist is the paper's semantics; MaxDist/MinDist are the
// future-work extension, supported by MQM and MBM.
const (
	SumDist = core.Sum
	MaxDist = core.Max
	MinDist = core.Min
)

// QueryOption customises a GroupNN call.
type QueryOption func(*queryConfig)

type queryConfig struct {
	k          int
	algo       Algorithm
	aggregate  Aggregate
	depthFirst bool
	weights    []float64
	region     *geom.Rect
}

// WithK requests the k best group neighbors (default 1).
func WithK(k int) QueryOption { return func(c *queryConfig) { c.k = k } }

// WithAlgorithm forces a specific processing method.
func WithAlgorithm(a Algorithm) QueryOption { return func(c *queryConfig) { c.algo = a } }

// WithAggregate selects SUM (default), MAX or MIN distance aggregation.
func WithAggregate(a Aggregate) QueryOption { return func(c *queryConfig) { c.aggregate = a } }

// WithDepthFirst switches SPM/MBM to depth-first traversal (best-first is
// the default, as in the paper's experiments).
func WithDepthFirst() QueryOption { return func(c *queryConfig) { c.depthFirst = true } }

// WithWeights assigns a positive weight per query point, making the
// aggregate Σᵢ wᵢ·|p qᵢ| (or the weighted max/min). The slice must match
// the query group's length. Supported by MQM, SPM, MBM and brute force.
func WithWeights(w []float64) QueryOption { return func(c *queryConfig) { c.weights = w } }

// WithRegion restricts results to data points inside the axis-aligned
// rectangle [lo, hi] — constrained GNN search. Supported by MQM, SPM, MBM
// and brute force; MBM additionally prunes non-intersecting subtrees.
func WithRegion(lo, hi Point) QueryOption {
	return func(c *queryConfig) {
		r := geom.NewRect(geom.Point(lo), geom.Point(hi))
		c.region = &r
	}
}

func buildConfig(opts []QueryOption) queryConfig {
	c := queryConfig{k: 1}
	for _, o := range opts {
		o(&c)
	}
	return c
}

func (c queryConfig) coreOptions() core.Options {
	o := core.Options{K: c.k, Aggregate: c.aggregate, Weights: c.weights, Region: c.region}
	if c.depthFirst {
		o.Traversal = core.DepthFirst
	}
	return o
}

// GroupNN answers a GNN query for a memory-resident query group: the k
// indexed points with the smallest aggregate distance to query, in
// ascending order.
func (ix *Index) GroupNN(query []Point, opts ...QueryOption) ([]Result, error) {
	c := buildConfig(opts)
	qs := make([]geom.Point, len(query))
	for i, q := range query {
		qs[i] = geom.Point(q)
	}
	var (
		gs  []core.GroupNeighbor
		err error
	)
	switch c.algo {
	case AlgoMQM:
		gs, err = core.MQM(ix.tree, qs, c.coreOptions())
	case AlgoSPM:
		gs, err = core.SPM(ix.tree, qs, c.coreOptions())
	case AlgoBruteForce:
		gs, err = core.BruteForce(ix.tree, qs, c.coreOptions())
	case AlgoAuto, AlgoMBM:
		gs, err = core.MBM(ix.tree, qs, c.coreOptions())
	default:
		return nil, fmt.Errorf("gnn: unknown algorithm %v", c.algo)
	}
	if err != nil {
		return nil, err
	}
	return toResults(gs), nil
}

// Iterator reports group nearest neighbors one at a time in ascending
// aggregate distance, so callers need not fix k in advance (incremental
// MBM).
type Iterator struct {
	it *core.GNNIterator
}

// GroupNNIterator starts an incremental GNN scan.
func (ix *Index) GroupNNIterator(query []Point, opts ...QueryOption) (*Iterator, error) {
	c := buildConfig(opts)
	qs := make([]geom.Point, len(query))
	for i, q := range query {
		qs[i] = geom.Point(q)
	}
	it, err := core.NewGNNIterator(ix.tree, qs, c.coreOptions())
	if err != nil {
		return nil, err
	}
	return &Iterator{it: it}, nil
}

// Next returns the next group nearest neighbor; ok is false when the data
// set is exhausted.
func (it *Iterator) Next() (Result, bool) {
	g, ok := it.it.Next()
	if !ok {
		return Result{}, false
	}
	return Result{Point: Point(g.Point), ID: g.ID, Dist: g.Dist}, true
}

// Errors surfaced by queries (wrapping the core package's sentinels so
// callers can errors.Is them without importing internals).
var (
	// ErrEmptyQuery reports an empty query group.
	ErrEmptyQuery = core.ErrEmptyQuery
	// ErrBadK reports a non-positive k.
	ErrBadK = core.ErrBadK
	// ErrUnsupportedAggregate reports an aggregate the chosen algorithm
	// cannot process (SPM and the disk algorithms are SUM-only).
	ErrUnsupportedAggregate = core.ErrUnsupportedAggregate
	// ErrBudgetExceeded reports that GCP hit its pair budget.
	ErrBudgetExceeded = core.ErrBudgetExceeded
)

// Ensure the aliases stay wired to the same sentinel values.
var _ = func() bool {
	if !errors.Is(ErrEmptyQuery, core.ErrEmptyQuery) {
		panic("sentinel mismatch")
	}
	return true
}()
