package gnn

import (
	"errors"
	"fmt"
	"time"

	"gnn/internal/core"
	"gnn/internal/geom"
	"gnn/internal/pagestore"
	"gnn/internal/rtree"
	"gnn/internal/shard"
)

// Algorithm selects the GNN processing method for memory-resident query
// groups.
type Algorithm int

const (
	// AlgoAuto picks MBM, the paper's overall winner (§5.1).
	AlgoAuto Algorithm = iota
	// AlgoMQM is the multiple query method (§3.1).
	AlgoMQM
	// AlgoSPM is the single point method (§3.2).
	AlgoSPM
	// AlgoMBM is the minimum bounding method (§3.3).
	AlgoMBM
	// AlgoBruteForce scans all points; exact but index-oblivious.
	AlgoBruteForce
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgoAuto:
		return "auto"
	case AlgoMQM:
		return "MQM"
	case AlgoSPM:
		return "SPM"
	case AlgoMBM:
		return "MBM"
	case AlgoBruteForce:
		return "brute-force"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Aggregate selects the distance-combination function dist(p,Q).
type Aggregate = core.Aggregate

// Aggregates. SumDist is the paper's semantics; MaxDist/MinDist are the
// future-work extension, supported by MQM and MBM.
const (
	SumDist = core.Sum
	MaxDist = core.Max
	MinDist = core.Min
)

// Layout selects the tree representation a query traverses.
type Layout int

const (
	// LayoutAuto (default) uses the packed SoA arena whenever the index
	// has a valid snapshot and falls back to the dynamic nodes otherwise
	// (after Insert/Delete, or on an incrementally built index that never
	// called Pack). Results and node-access counts are identical either
	// way.
	LayoutAuto Layout = iota
	// LayoutDynamic forces the pointer-linked dynamic nodes (benchmarking
	// and differential testing).
	LayoutDynamic
	// LayoutPacked requires the packed arena and fails instead of
	// silently degrading: ErrNotPacked when no valid snapshot exists,
	// ErrPackedRegion when combined with WithRegion on an algorithm
	// whose constrained traversal runs on the dynamic nodes (MBM, SPM,
	// the iterator, the disk-resident family).
	LayoutPacked
)

// String names the layout.
func (l Layout) String() string {
	switch l {
	case LayoutAuto:
		return "auto"
	case LayoutDynamic:
		return "dynamic"
	case LayoutPacked:
		return "packed"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// ErrNotPacked reports a WithLayout(LayoutPacked) query against an index
// with no valid packed snapshot (mutated since the last Pack, or built
// incrementally without one).
var ErrNotPacked = errors.New("gnn: index has no valid packed layout; call Index.Pack")

// ErrMappedDynamic reports a WithLayout(LayoutDynamic) query against a
// mapped snapshot (OpenSnapshotMapped/OpenShardedSnapshotMapped): a
// mapped index borrows the packed arena straight from the file and never
// materialises dynamic nodes. Use the default layout, or open with
// OpenSnapshotFile to serve both layouts from heap memory.
var ErrMappedDynamic = errors.New("gnn: a mapped snapshot serves only the packed layout; drop WithLayout(LayoutDynamic)")

// ErrPackedRegion reports a WithLayout(LayoutPacked) query combined with
// WithRegion on an algorithm whose region pruning lives in the traversal
// (MBM, SPM, the incremental iterator): their packed kernels are
// region-free by design, so the constrained query runs on the dynamic
// nodes and a pinned packed layout cannot be honoured. MQM and brute
// force filter results point by point and serve constrained queries from
// the packed layout normally. Use LayoutAuto to get the right layout per
// algorithm with identical results either way.
var ErrPackedRegion = errors.New("gnn: this algorithm serves region-constrained queries from the dynamic layout; drop WithLayout(LayoutPacked) or WithRegion")

// ErrPendingMutations reports a disk-family query (F-MQM, F-MBM, GCP) on
// an index carrying un-compacted overlay writes. These algorithms drive a
// stateful traversal over one base structure and have no sound
// multi-source merge; fold the overlay first (Index.Compact or Pack) and
// retry. The memory-resident family serves mutated indexes directly.
var ErrPendingMutations = errors.New("gnn: index has pending mutations; call Compact (or Pack) first")

// QueryOption customises a GroupNN call.
type QueryOption func(*queryConfig)

type queryConfig struct {
	cancel      *core.CancelCheck
	k           int
	algo        Algorithm
	aggregate   Aggregate
	depthFirst  bool
	weights     []float64
	region      *geom.Rect
	parallelism int
	layout      Layout
	shards      int
	genericMax  bool
	// probe, when non-nil, collects the diagnostics GroupNNExplain
	// reports: pruning counters, per-stage wall times and execution
	// provenance. It is set only by the explain entry points — plain
	// queries carry a nil probe and skip all collection.
	probe *explainProbe
}

// explainProbe is the per-query diagnostic sink behind GroupNNExplain.
type explainProbe struct {
	trace   core.Trace
	stages  core.StageLog
	packed  bool // the traversal ran on the packed layout
	overlay bool // overlay sources were merged into the answer
}

// WithK requests the k best group neighbors (default 1).
func WithK(k int) QueryOption { return func(c *queryConfig) { c.k = k } }

// WithAlgorithm forces a specific processing method.
func WithAlgorithm(a Algorithm) QueryOption { return func(c *queryConfig) { c.algo = a } }

// WithAggregate selects SUM (default), MAX or MIN distance aggregation.
func WithAggregate(a Aggregate) QueryOption { return func(c *queryConfig) { c.aggregate = a } }

// WithDepthFirst switches SPM/MBM to depth-first traversal (best-first is
// the default, as in the paper's experiments).
func WithDepthFirst() QueryOption { return func(c *queryConfig) { c.depthFirst = true } }

// WithGenericMax forces WithAggregate(MaxDist) queries onto the generic
// per-member pruning bounds instead of the dedicated minimum-enclosing-
// ball kernel MBM dispatches to by default. Results are identical either
// way — only node accesses differ (the dedicated kernel's are never
// higher). The knob exists for differential testing and benchmarking; it
// has no effect on SUM or MIN queries.
func WithGenericMax() QueryOption { return func(c *queryConfig) { c.genericMax = true } }

// WithWeights assigns a positive weight per query point, making the
// aggregate Σᵢ wᵢ·|p qᵢ| (or the weighted max/min). The slice must match
// the query group's length. Supported by MQM, SPM, MBM and brute force.
func WithWeights(w []float64) QueryOption { return func(c *queryConfig) { c.weights = w } }

// WithRegion restricts results to data points inside the axis-aligned
// rectangle [lo, hi] — constrained GNN search. Supported by MQM, SPM, MBM
// and brute force; MBM additionally prunes non-intersecting subtrees.
func WithRegion(lo, hi Point) QueryOption {
	return func(c *queryConfig) {
		r := geom.NewRect(geom.Point(lo), geom.Point(hi))
		c.region = &r
	}
}

// WithParallelism sets the worker count of GroupNNBatch (default
// GOMAXPROCS). It has no effect on single queries.
func WithParallelism(n int) QueryOption { return func(c *queryConfig) { c.parallelism = n } }

// WithShards caps the concurrent per-query shard workers of a
// ShardedIndex query. The default depends on the call: single queries
// scatter across all shards in parallel (latency), batch queries scan
// the shards of each query sequentially from the batch worker's
// goroutine (throughput — parallelism then comes from concurrent
// queries, and the shared pruning bound cascades from shard to shard).
// Results never depend on this knob, only scheduling does. It has no
// effect on a plain Index.
func WithShards(n int) QueryOption { return func(c *queryConfig) { c.shards = n } }

// WithLayout pins the tree representation the query traverses (default
// LayoutAuto: packed when available). Both layouts return identical
// results and node-access counts; the knob exists for benchmarking and
// for callers that must fail loudly rather than serve the slower dynamic
// path.
func WithLayout(l Layout) QueryOption { return func(c *queryConfig) { c.layout = l } }

func buildConfig(opts []QueryOption) queryConfig {
	c := queryConfig{k: 1}
	for _, o := range opts {
		o(&c)
	}
	return c
}

func (c queryConfig) coreOptions() core.Options {
	o := core.Options{K: c.k, Aggregate: c.aggregate, Weights: c.weights,
		Region: c.region, Cancel: c.cancel, GenericMax: c.genericMax}
	if c.depthFirst {
		o.Traversal = core.DepthFirst
	}
	if c.probe != nil {
		o.Trace = &c.probe.trace
		o.Stages = &c.probe.stages
	}
	return o
}

// packedForLayout resolves a layout request against one index view: nil
// for the dynamic nodes, the snapshot for packed, ErrNotPacked when a
// required snapshot is missing or stale, ErrPackedRegion when a pinned
// packed layout meets a region constraint it cannot serve. The layout
// choice governs the base tree; an overlay delta tree follows it (packed
// delta arena unless the dynamic layout is pinned), and the pending tail
// is a layout-less array scan.
func packedForLayout(v *viewState, l Layout, region *geom.Rect) (*rtree.Packed, error) {
	switch l {
	case LayoutDynamic:
		if v.tree.IsShell() {
			return nil, ErrMappedDynamic
		}
		return nil, nil
	case LayoutPacked:
		if region != nil {
			return nil, ErrPackedRegion
		}
		p := v.servingPacked()
		if p == nil {
			return nil, ErrNotPacked
		}
		return p, nil
	default:
		return v.servingPacked(), nil
	}
}

// GroupNN answers a GNN query for a memory-resident query group: the k
// indexed points with the smallest aggregate distance to query, in
// ascending order. Safe for unlimited concurrent callers.
func (ix *Index) GroupNN(query []Point, opts ...QueryOption) ([]Result, error) {
	res, _, err := ix.GroupNNWithCost(query, opts...)
	return res, err
}

// GroupNNWithCost is GroupNN returning this query's own I/O cost alongside
// the results. The index-wide aggregate (Index.Cost) accrues the same
// counts, so per-query costs of any set of queries sum to the aggregate.
func (ix *Index) GroupNNWithCost(query []Point, opts ...QueryOption) ([]Result, Cost, error) {
	c := buildConfig(opts)
	var tk pagestore.CostTracker
	res, err := ix.groupNN(query, c, &tk, nil)
	return res, costOf(tk), err
}

// groupNN dispatches one memory-resident query charging tk. ec supplies
// the query's pooled scratch arena; nil draws one from the pool for the
// duration of the call (the batch engine passes one per worker so a whole
// batch reuses the same warm scratch).
func (ix *Index) groupNN(query []Point, c queryConfig, tk *pagestore.CostTracker, ec *core.ExecContext) ([]Result, error) {
	if err := ix.acquire(); err != nil {
		return nil, err
	}
	defer ix.release()
	if err := c.cancel.Check(); err != nil {
		return nil, err // already expired/canceled on arrival
	}
	if err := ix.prepare(); err != nil {
		return nil, err
	}
	if ec == nil {
		ec = core.AcquireExec()
		defer ec.Release()
	}
	qs := ec.Points(len(query))
	for i, q := range query {
		qs[i] = geom.Point(q)
	}
	opt := c.coreOptions()
	opt.Cost = tk
	opt.Exec = ec
	v := ix.view.Load()
	p, err := packedForLayout(v, c.layout, c.effectiveRegion())
	if err != nil {
		return nil, err
	}
	kern, err := kernelFor(c.algo)
	if err != nil {
		return nil, err
	}
	if c.probe != nil {
		c.probe.packed = p != nil
		c.probe.overlay = v.ov != nil
	}
	if v.ov == nil {
		// No overlay writes: exactly the single-source path, bit for bit.
		opt.Packed = p
		var start time.Time
		if opt.Stages != nil {
			start = time.Now()
		}
		gs, err := kern(v.tree, qs, opt)
		if err != nil {
			return nil, err
		}
		if opt.Stages != nil {
			opt.Stages.Record("query", -1, time.Since(start))
		}
		return toResults(gs), nil
	}
	gs, err := overlayQuery(v, qs, opt, p, c.k, kern)
	if err != nil {
		return nil, err
	}
	return toResults(gs), nil
}

// overlayQuery answers a query on a mutated view by running the kernel
// once per source — base tree (tombstoned hits vetoed), delta tree,
// pending tail — and k-way-merging the per-source lists, exactly the
// discipline of the sharded scatter. The sources run sequentially and
// share one tightening bound, and all charge the same per-query tracker,
// so reported cost is the exact sum of per-source node accesses.
func overlayQuery(v *viewState, qs []geom.Point, opt core.Options, basePacked *rtree.Packed, k int, kern shard.Kernel) ([]core.GroupNeighbor, error) {
	ov := v.ov
	shared := core.NewSharedBound()
	lists := make([][]core.GroupNeighbor, 0, 3)
	// Stage timing rides the sequential source order: one entry per
	// overlay source, plus the final merge.
	timed := opt.Stages != nil
	var start time.Time
	if timed {
		start = time.Now()
	}
	mark := func(name string) {
		if timed {
			now := time.Now()
			opt.Stages.Record(name, -1, now.Sub(start))
			start = now
		}
	}

	bopt := opt
	bopt.Packed = basePacked
	bopt.Shared = shared
	if ov.tombs.Total() > 0 {
		bopt.Reject = ov.tombs.Rejects
	}
	gs, err := kern(v.tree, qs, bopt)
	if err != nil {
		return nil, err
	}
	lists = append(lists, gs)
	mark("base")

	if ov.delta != nil {
		dopt := opt
		dopt.Shared = shared
		dopt.Packed = nil
		if basePacked != nil {
			dopt.Packed = ov.deltaP
		}
		gs, err := kern(ov.delta, qs, dopt)
		if err != nil {
			return nil, err
		}
		lists = append(lists, gs)
		mark("delta")
	}

	if pend := ov.pts[ov.folded:]; len(pend) > 0 {
		sopt := opt
		sopt.Shared = shared
		sopt.Packed = nil
		gs, err := core.ScanPoints(pend, ov.ids[ov.folded:], qs, sopt)
		if err != nil {
			return nil, err
		}
		lists = append(lists, gs)
		mark("pending")
	}
	merged := core.MergeNeighbors(k, lists)
	mark("merge")
	return merged, nil
}

// kernelFor maps a public algorithm to its core entry point — the single
// dispatch table shared by the plain and the sharded read paths.
func kernelFor(a Algorithm) (shard.Kernel, error) {
	switch a {
	case AlgoMQM:
		return core.MQM, nil
	case AlgoSPM:
		return core.SPM, nil
	case AlgoBruteForce:
		return core.BruteForce, nil
	case AlgoAuto, AlgoMBM:
		return core.MBM, nil
	default:
		return nil, fmt.Errorf("gnn: unknown algorithm %v", a)
	}
}

// effectiveRegion returns the region constraint a layout decision must
// respect: nil for algorithms that filter per point (MQM, brute force) —
// their packed kernels serve constrained queries, so there is no
// packed/region conflict to reject. It is the single demotion rule shared
// by the plain and the sharded layout resolution.
func (c queryConfig) effectiveRegion() *geom.Rect {
	if c.algo == AlgoMQM || c.algo == AlgoBruteForce {
		return nil
	}
	return c.region
}

// gnnStream is the engine behind a public Iterator: the single-tree
// incremental scan (core.GNNIterator) or the sharded k-way merge
// (shard.Iterator). Both emit neighbors in ascending aggregate distance.
type gnnStream interface {
	Next() (core.GroupNeighbor, bool)
	Close()
}

// Iterator reports group nearest neighbors one at a time in ascending
// aggregate distance, so callers need not fix k in advance (incremental
// MBM). An Iterator is a single query's execution context: use it from one
// goroutine, but any number of iterators may run concurrently. Callers
// that stop before exhausting the scan should Close the iterator so its
// pooled scratch is recycled; forgetting to Close only costs the reuse.
type Iterator struct {
	it gnnStream
	tk pagestore.CostTracker
	// done releases the owning index's lifecycle reference (so Close can
	// drain live iterators); nil once released.
	done func()
}

// iterDone reports whether the iterator has been closed. The wrapper (not
// pooled, so this state cannot go stale) absorbs double-Close and
// Next-after-Close, which must never reach the pooled core iterator: once
// that object is re-leased to another query, its own closed flag belongs
// to the new owner.
func (it *Iterator) iterDone() bool { return it.it == nil }

// GroupNNIterator starts an incremental GNN scan. The iterator holds a
// reference on the index until Close or exhaustion, so a concurrent
// Index.Close waits for it; close iterators you abandon early.
func (ix *Index) GroupNNIterator(query []Point, opts ...QueryOption) (*Iterator, error) {
	if err := ix.acquire(); err != nil {
		return nil, err
	}
	if err := ix.prepare(); err != nil {
		ix.release()
		return nil, err
	}
	c := buildConfig(opts)
	qs := make([]geom.Point, len(query))
	for i, q := range query {
		qs[i] = geom.Point(q)
	}
	out := &Iterator{}
	opt := c.coreOptions()
	opt.Cost = &out.tk
	v := ix.view.Load()
	p, err := packedForLayout(v, c.layout, c.region)
	if err != nil {
		ix.release()
		return nil, err
	}
	if v.ov == nil {
		opt.Packed = p
		it, err := core.NewGNNIterator(v.tree, qs, opt)
		if err != nil {
			ix.release()
			return nil, err
		}
		out.it = it
	} else {
		it, err := overlayIterator(v, qs, opt, p)
		if err != nil {
			ix.release()
			return nil, err
		}
		out.it = it
	}
	out.done = ix.release
	return out, nil
}

// overlayIterator starts an incremental scan on a mutated view: one
// GNNIterator per tree source (base with tombstoned hits vetoed, delta),
// the pending tail as a pre-computed sorted list, all k-way merged by the
// same machinery that merges shard iterators. Every source charges the
// iterator's tracker, so cost stays the exact sum of node accesses.
func overlayIterator(v *viewState, qs []geom.Point, opt core.Options, basePacked *rtree.Packed) (*shard.Iterator, error) {
	ov := v.ov
	streams := make([]core.Stream, 0, 3)
	fail := func(err error) (*shard.Iterator, error) {
		for _, s := range streams {
			s.Close()
		}
		return nil, err
	}

	bopt := opt
	bopt.Packed = basePacked
	if ov.tombs.Total() > 0 {
		bopt.Reject = ov.tombs.Rejects
	}
	bit, err := core.NewGNNIterator(v.tree, qs, bopt)
	if err != nil {
		return fail(err)
	}
	streams = append(streams, bit)

	if ov.delta != nil {
		dopt := opt
		dopt.Packed = nil
		if basePacked != nil {
			dopt.Packed = ov.deltaP
		}
		dit, err := core.NewGNNIterator(ov.delta, qs, dopt)
		if err != nil {
			return fail(err)
		}
		streams = append(streams, dit)
	}

	if pend := ov.pts[ov.folded:]; len(pend) > 0 {
		list, err := core.ScanAll(pend, ov.ids[ov.folded:], qs, opt)
		if err != nil {
			return fail(err)
		}
		streams = append(streams, core.NewListStream(list))
	}
	return shard.NewMergedIterator(streams), nil
}

// Next returns the next group nearest neighbor; ok is false when the data
// set is exhausted or the iterator has been closed.
func (it *Iterator) Next() (Result, bool) {
	if it.iterDone() {
		return Result{}, false
	}
	g, ok := it.it.Next()
	if !ok {
		// Exhausted: recycle the scratch and release the index reference
		// eagerly, so a drained-but-unclosed iterator never blocks Close.
		it.Close()
		return Result{}, false
	}
	return Result{Point: Point(g.Point), ID: g.ID, Dist: g.Dist}, true
}

// Cost returns the I/O this iterator has charged so far.
func (it *Iterator) Cost() Cost { return costOf(it.tk) }

// Close releases the iterator's pooled scratch. The iterator must not be
// used afterwards (Next reports exhaustion); Close is idempotent.
func (it *Iterator) Close() {
	if it.iterDone() {
		return
	}
	it.it.Close()
	it.it = nil
	if it.done != nil {
		it.done()
		it.done = nil
	}
}

// Errors surfaced by queries (wrapping the core package's sentinels so
// callers can errors.Is them without importing internals).
var (
	// ErrEmptyQuery reports an empty query group.
	ErrEmptyQuery = core.ErrEmptyQuery
	// ErrBadK reports a non-positive k.
	ErrBadK = core.ErrBadK
	// ErrUnsupportedAggregate reports an aggregate the chosen algorithm
	// cannot process (SPM and the disk algorithms are SUM-only).
	ErrUnsupportedAggregate = core.ErrUnsupportedAggregate
	// ErrUnsupportedOption reports an extension option the chosen
	// algorithm cannot honor: the disk-resident family rejects weighted
	// groups and constrained regions outright rather than silently
	// ignoring them.
	ErrUnsupportedOption = core.ErrUnsupportedOption
	// ErrBudgetExceeded reports that GCP hit its pair budget.
	ErrBudgetExceeded = core.ErrBudgetExceeded
)

// Ensure the aliases stay wired to the same sentinel values.
var _ = func() bool {
	if !errors.Is(ErrEmptyQuery, core.ErrEmptyQuery) {
		panic("sentinel mismatch")
	}
	return true
}()
