package gnn_test

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"gnn"
)

// snapshotFixture builds the differential fixture: data points, an index
// over them, and a query workload of spatially concentrated groups.
func snapshotFixture(t *testing.T, n int, seed int64) ([]gnn.Point, *gnn.Index, [][]gnn.Point) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := make([]gnn.Point, n)
	for i := range pts {
		pts[i] = gnn.Point{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{NodeCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]gnn.Point, 12)
	for i := range queries {
		g := make([]gnn.Point, 3+rng.Intn(6))
		base := rng.Float64() * 850
		for j := range g {
			g[j] = gnn.Point{base + rng.Float64()*140, base + rng.Float64()*140}
		}
		queries[i] = g
	}
	return pts, ix, queries
}

// roundTrip writes ix to a buffer and loads it back.
func roundTrip(t *testing.T, ix *gnn.Index) *gnn.Index {
	t.Helper()
	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	loaded, err := gnn.OpenSnapshot(&buf)
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	return loaded
}

// requireSameAnswer compares one query's results and per-query cost
// between the writer index and the loaded index, bit for bit.
func requireSameAnswer(t *testing.T, label string, wantRes []gnn.Result, wantCost gnn.Cost, wantErr error,
	gotRes []gnn.Result, gotCost gnn.Cost, gotErr error) {
	t.Helper()
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("%s: error diverged: %v vs %v", label, wantErr, gotErr)
	}
	if wantErr != nil {
		return
	}
	if !reflect.DeepEqual(wantRes, gotRes) {
		t.Fatalf("%s: results diverged\nwriter: %v\nloaded: %v", label, wantRes, gotRes)
	}
	if wantCost != gotCost {
		t.Fatalf("%s: cost diverged: %+v vs %+v", label, wantCost, gotCost)
	}
}

// TestSnapshotRoundTripEquivalence is the acceptance suite's core: a
// snapshot-loaded index answers every memory-resident algorithm — across
// aggregates, k values and both layouts — with bit-identical results,
// Cost and node-access counts to the index that wrote it.
func TestSnapshotRoundTripEquivalence(t *testing.T) {
	_, ix, queries := snapshotFixture(t, 2500, 7)
	loaded := roundTrip(t, ix)
	if got, want := loaded.Stats(), ix.Stats(); got != want {
		t.Fatalf("stats diverged: %+v vs %+v", got, want)
	}

	type cell struct {
		name string
		opts []gnn.QueryOption
	}
	cells := []cell{
		{"MQM/sum", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMQM)}},
		{"MQM/max", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMQM), gnn.WithAggregate(gnn.MaxDist)}},
		{"SPM", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoSPM)}},
		{"SPM/df", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoSPM), gnn.WithDepthFirst()}},
		{"MBM/sum", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM)}},
		{"MBM/df", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithDepthFirst()}},
		{"MBM/min", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithAggregate(gnn.MinDist)}},
		{"brute", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoBruteForce)}},
		{"MBM/region", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithRegion(gnn.Point{200, 200}, gnn.Point{900, 900})}},
		{"MQM/weights", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMQM), gnn.WithWeights([]float64{3, 1, 2})}},
	}
	layouts := []gnn.Layout{gnn.LayoutAuto, gnn.LayoutDynamic, gnn.LayoutPacked}
	for _, c := range cells {
		for _, layout := range layouts {
			for qi, q := range queries {
				if c.name == "MQM/weights" && len(q) != 3 {
					continue
				}
				opts := append([]gnn.QueryOption{gnn.WithK(1 + qi%5), gnn.WithLayout(layout)}, c.opts...)
				wr, wc, werr := ix.GroupNNWithCost(q, opts...)
				lr, lc, lerr := loaded.GroupNNWithCost(q, opts...)
				requireSameAnswer(t, c.name+"/"+layout.String(), wr, wc, werr, lr, lc, lerr)
			}
		}
	}

	// Point-NN queries and the incremental iterator.
	for _, q := range queries {
		wr, wc, werr := ix.NearestNeighborsWithCost(q[0], 7)
		lr, lc, lerr := loaded.NearestNeighborsWithCost(q[0], 7)
		requireSameAnswer(t, "NN", wr, wc, werr, lr, lc, lerr)

		wit, err := ix.GroupNNIterator(q)
		if err != nil {
			t.Fatal(err)
		}
		lit, err := loaded.GroupNNIterator(q)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 15; i++ {
			wn, wok := wit.Next()
			ln, lok := lit.Next()
			if wok != lok || !reflect.DeepEqual(wn, ln) {
				t.Fatalf("iterator step %d diverged", i)
			}
		}
		if wit.Cost() != lit.Cost() {
			t.Fatalf("iterator cost diverged: %+v vs %+v", wit.Cost(), lit.Cost())
		}
		wit.Close()
		lit.Close()
	}

	// Aggregate accounting stays exact on the loaded index: per-query
	// costs sum to the aggregate it accrued.
	loaded.ResetCost()
	var sum gnn.Cost
	for _, q := range queries {
		_, c, err := loaded.GroupNNWithCost(q, gnn.WithK(3))
		if err != nil {
			t.Fatal(err)
		}
		sum.Add(c)
	}
	if got := loaded.Cost(); got != sum {
		t.Fatalf("aggregate %+v != per-query sum %+v", got, sum)
	}
}

// TestSnapshotRoundTripDisk covers the disk-resident family: F-MQM and
// F-MBM (fresh QuerySet per side, so page-read accounting starts equal)
// and GCP with an indexed query set.
func TestSnapshotRoundTripDisk(t *testing.T) {
	_, ix, queries := snapshotFixture(t, 1500, 21)
	loaded := roundTrip(t, ix)

	var qpts []gnn.Point
	for _, q := range queries[:8] {
		qpts = append(qpts, q...)
	}
	for _, algo := range []gnn.DiskAlgorithm{gnn.DiskFMQM, gnn.DiskFMBM} {
		mkSet := func() *gnn.QuerySet {
			qs, err := gnn.NewQuerySet(qpts, gnn.QuerySetConfig{BlockPoints: 12})
			if err != nil {
				t.Fatal(err)
			}
			return qs
		}
		wr, wc, werr := ix.GroupNNFromSetWithCost(mkSet(), algo, gnn.WithK(4))
		lr, lc, lerr := loaded.GroupNNFromSetWithCost(mkSet(), algo, gnn.WithK(4))
		requireSameAnswer(t, algo.String(), wr, wc, werr, lr, lc, lerr)
	}

	qix, err := gnn.BuildIndex(qpts, nil, gnn.IndexConfig{NodeCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	wr, wc, werr := ix.GroupNNClosestPairsWithCost(qix, 0, gnn.WithK(4))
	lr, lc, lerr := loaded.GroupNNClosestPairsWithCost(qix, 0, gnn.WithK(4))
	requireSameAnswer(t, "GCP", wr, wc, werr, lr, lc, lerr)
}

// TestShardedSnapshotRoundTrip: a sharded index round-trips with its
// partition intact and answers bit-identically, per query and per cost.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	pts, _, queries := snapshotFixture(t, 2200, 33)
	for _, shards := range []int{1, 3, 7} {
		sx, err := gnn.BuildShardedIndex(pts, nil, shards, gnn.IndexConfig{NodeCapacity: 16})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sx.WriteSnapshot(&buf); err != nil {
			t.Fatalf("S=%d WriteSnapshot: %v", shards, err)
		}
		loaded, err := gnn.OpenShardedSnapshot(&buf)
		if err != nil {
			t.Fatalf("S=%d OpenShardedSnapshot: %v", shards, err)
		}
		if !reflect.DeepEqual(loaded.ShardSizes(), sx.ShardSizes()) {
			t.Fatalf("S=%d: partition changed: %v vs %v", shards, loaded.ShardSizes(), sx.ShardSizes())
		}
		if got, want := loaded.Stats(), sx.Stats(); got != want {
			t.Fatalf("S=%d: stats diverged: %+v vs %+v", shards, got, want)
		}
		if err := loaded.CheckInvariants(); err != nil {
			t.Fatalf("S=%d: %v", shards, err)
		}
		for qi, q := range queries {
			for _, algo := range []gnn.Algorithm{gnn.AlgoMQM, gnn.AlgoSPM, gnn.AlgoMBM, gnn.AlgoBruteForce} {
				opts := []gnn.QueryOption{gnn.WithK(1 + qi%4), gnn.WithAlgorithm(algo), gnn.WithShards(1)}
				wr, wc, werr := sx.GroupNNWithCost(q, opts...)
				lr, lc, lerr := loaded.GroupNNWithCost(q, opts...)
				requireSameAnswer(t, algo.String(), wr, wc, werr, lr, lc, lerr)
			}
		}
		// Sharded iterator streams match too.
		wit, err := sx.GroupNNIterator(queries[0])
		if err != nil {
			t.Fatal(err)
		}
		lit, err := loaded.GroupNNIterator(queries[0])
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			wn, wok := wit.Next()
			ln, lok := lit.Next()
			if wok != lok || !reflect.DeepEqual(wn, ln) {
				t.Fatalf("S=%d: iterator step %d diverged", shards, i)
			}
		}
		wit.Close()
		lit.Close()
	}
}

// TestSnapshotOfUnpackedIndex: an incrementally built (never packed)
// index snapshots through a transient pack that leaves the serving state
// untouched, and the loaded twin answers identically.
func TestSnapshotOfUnpackedIndex(t *testing.T) {
	ix, err := gnn.NewIndex(gnn.IndexConfig{NodeCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 600; i++ {
		if err := ix.Insert(gnn.Point{rng.Float64() * 100, rng.Float64() * 100}, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if ix.IsPacked() {
		t.Fatal("incremental index unexpectedly packed")
	}
	loaded := roundTrip(t, ix)
	if ix.IsPacked() {
		t.Fatal("WriteSnapshot must not change the writer's serving state")
	}
	if !loaded.IsPacked() {
		t.Fatal("loaded index should serve packed")
	}
	q := []gnn.Point{{10, 20}, {30, 40}, {50, 5}}
	wr, wc, werr := ix.GroupNNWithCost(q, gnn.WithK(5))
	lr, lc, lerr := loaded.GroupNNWithCost(q, gnn.WithK(5))
	requireSameAnswer(t, "unpacked writer", wr, wc, werr, lr, lc, lerr)

	// And the loaded index stays fully mutable: the same insert on both
	// sides keeps them exchangeable.
	for i, p := range [][2]float64{{1, 2}, {99, 98}, {42, 41}} {
		if err := ix.Insert(gnn.Point{p[0], p[1]}, int64(9000+i)); err != nil {
			t.Fatal(err)
		}
		if err := loaded.Insert(gnn.Point{p[0], p[1]}, int64(9000+i)); err != nil {
			t.Fatal(err)
		}
	}
	wr, wc, werr = ix.GroupNNWithCost(q, gnn.WithK(5))
	lr, lc, lerr = loaded.GroupNNWithCost(q, gnn.WithK(5))
	requireSameAnswer(t, "post-load insert", wr, wc, werr, lr, lc, lerr)
}

// TestSnapshotEmptyIndex: an empty index round-trips.
func TestSnapshotEmptyIndex(t *testing.T) {
	ix, err := gnn.NewIndex(gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	loaded := roundTrip(t, ix)
	if loaded.Len() != 0 || loaded.Dim() != 2 {
		t.Fatalf("loaded %d points, dim %d", loaded.Len(), loaded.Dim())
	}
	if _, err := loaded.GroupNN([]gnn.Point{{1, 2}}); err != nil {
		t.Fatalf("query on empty loaded index: %v", err)
	}
	if err := loaded.Insert(gnn.Point{5, 5}, 1); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotBufferedLoad: WithSnapshotBuffer attaches an LRU whose
// hit/miss stream matches an equally configured built index, query for
// query from cold.
func TestSnapshotBufferedLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := make([]gnn.Point, 1200)
	for i := range pts {
		pts[i] = gnn.Point{rng.Float64() * 500, rng.Float64() * 500}
	}
	built, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{NodeCapacity: 16, BufferPages: 32})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := built.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := gnn.OpenSnapshot(&buf, gnn.WithSnapshotBuffer(32))
	if err != nil {
		t.Fatal(err)
	}
	var hits int64
	for i := 0; i < 20; i++ {
		q := []gnn.Point{{rng.Float64() * 500, rng.Float64() * 500}, {rng.Float64() * 500, rng.Float64() * 500}}
		_, wc, err := built.GroupNNWithCost(q, gnn.WithK(3))
		if err != nil {
			t.Fatal(err)
		}
		_, lc, err := loaded.GroupNNWithCost(q, gnn.WithK(3))
		if err != nil {
			t.Fatal(err)
		}
		if wc != lc {
			t.Fatalf("query %d: buffered cost diverged: %+v vs %+v", i, wc, lc)
		}
		hits += lc.BufferHits
	}
	if hits == 0 {
		t.Fatal("expected buffer hits on the loaded index")
	}
}

// TestSnapshotErrors locks the public error surface.
func TestSnapshotErrors(t *testing.T) {
	if _, err := gnn.OpenSnapshot(bytes.NewReader([]byte("definitely not a snapshot"))); !errors.Is(err, gnn.ErrSnapshotBadMagic) {
		t.Fatalf("garbage: %v", err)
	}
	if _, err := gnn.OpenSnapshot(bytes.NewReader(nil)); !errors.Is(err, gnn.ErrSnapshotTruncated) {
		t.Fatalf("empty: %v", err)
	}

	_, ix, _ := snapshotFixture(t, 300, 5)
	var plain bytes.Buffer
	if err := ix.WriteSnapshot(&plain); err != nil {
		t.Fatal(err)
	}
	if _, err := gnn.OpenShardedSnapshot(bytes.NewReader(plain.Bytes())); !errors.Is(err, gnn.ErrSnapshotKind) {
		t.Fatalf("plain via sharded open: %v", err)
	}

	pts := make([]gnn.Point, 300)
	rng := rand.New(rand.NewSource(6))
	for i := range pts {
		pts[i] = gnn.Point{rng.Float64(), rng.Float64()}
	}
	sx, err := gnn.BuildShardedIndex(pts, nil, 2, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var sharded bytes.Buffer
	if err := sx.WriteSnapshot(&sharded); err != nil {
		t.Fatal(err)
	}
	if _, err := gnn.OpenSnapshot(bytes.NewReader(sharded.Bytes())); !errors.Is(err, gnn.ErrSnapshotKind) {
		t.Fatalf("sharded via plain open: %v", err)
	}

	// A flipped payload byte surfaces as a checksum error end to end.
	data := plain.Bytes()
	data[len(data)-2] ^= 0x40
	if _, err := gnn.OpenSnapshot(bytes.NewReader(data)); !errors.Is(err, gnn.ErrSnapshotChecksum) {
		t.Fatalf("flipped byte: %v", err)
	}
}

// TestSnapshotFileHelpers exercises the file-path convenience wrappers.
func TestSnapshotFileHelpers(t *testing.T) {
	dir := t.TempDir()
	_, ix, queries := snapshotFixture(t, 400, 12)
	path := filepath.Join(dir, "ix.snap")
	if err := ix.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := gnn.OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wr, wc, werr := ix.GroupNNWithCost(queries[0], gnn.WithK(2))
	lr, lc, lerr := loaded.GroupNNWithCost(queries[0], gnn.WithK(2))
	requireSameAnswer(t, "file round-trip", wr, wc, werr, lr, lc, lerr)

	pts := make([]gnn.Point, 200)
	rng := rand.New(rand.NewSource(2))
	for i := range pts {
		pts[i] = gnn.Point{rng.Float64(), rng.Float64()}
	}
	sx, err := gnn.BuildShardedIndex(pts, nil, 3, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	spath := filepath.Join(dir, "sx.snap")
	if err := sx.WriteSnapshotFile(spath); err != nil {
		t.Fatal(err)
	}
	sloaded, err := gnn.OpenShardedSnapshotFile(spath)
	if err != nil {
		t.Fatal(err)
	}
	if sloaded.NumShards() != 3 || sloaded.Len() != 200 {
		t.Fatalf("sharded file round-trip: %d shards, %d points", sloaded.NumShards(), sloaded.Len())
	}
	if _, err := gnn.OpenSnapshotFile(filepath.Join(dir, "missing.snap")); err == nil {
		t.Fatal("missing file should error")
	}
}

// TestStats locks the Stats surface across serving states.
func TestStats(t *testing.T) {
	_, ix, _ := snapshotFixture(t, 800, 8)
	s := ix.Stats()
	if s.Points != 800 || s.Dim != 2 || !s.Packed || s.Shards != 0 || s.Height < 2 || s.Nodes < 2 || s.ArenaBytes <= 0 {
		t.Fatalf("packed stats: %+v", s)
	}
	if err := ix.Insert(gnn.Point{1, 1}, 9999); err != nil {
		t.Fatal(err)
	}
	s = ix.Stats()
	if !s.Packed || s.Nodes == 0 || s.Points != 801 || s.Delta != 1 || s.Tombstones != 0 {
		t.Fatalf("overlay stats: %+v", s)
	}
	if !ix.Delete(gnn.Point{1, 1}, 9999) {
		t.Fatal("delete failed")
	}
	if s = ix.Stats(); s.Delta != 0 || s.Points != 800 {
		t.Fatalf("drained overlay stats: %+v", s)
	}
	ix.Pack()
	if s = ix.Stats(); !s.Packed {
		t.Fatalf("re-packed stats: %+v", s)
	}

	pts := make([]gnn.Point, 500)
	rng := rand.New(rand.NewSource(4))
	for i := range pts {
		pts[i] = gnn.Point{rng.Float64(), rng.Float64()}
	}
	sx, err := gnn.BuildShardedIndex(pts, nil, 4, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s = sx.Stats()
	if s.Points != 500 || s.Shards != 4 || !s.Packed || s.Nodes < 4 || s.ArenaBytes <= 0 {
		t.Fatalf("sharded stats: %+v", s)
	}
}
