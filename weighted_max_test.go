package gnn_test

// The weighted-MAX contract, pinned by table-driven tests over every
// aggregate × weights × algorithm combination:
//
//   - Memory-resident algorithms (MBM both traversals, MQM, brute force,
//     sharded) scale each per-member distance by its weight BEFORE the
//     max/min/sum reduction: dist_w(p,Q) = agg_i w_i·|p q_i|. The
//     dedicated MEB kernel implements the identical semantics (its bound
//     scales by min_i w_i), verified against the generic path.
//   - SPM accepts weights but only the SUM aggregate (its pruning lemma
//     is sum-only): MAX or MIN yield ErrUnsupportedAggregate.
//   - The disk-resident family (F-MQM, F-MBM, GCP) is SUM-only
//     (ErrUnsupportedAggregate) and rejects weighted groups outright
//     with ErrUnsupportedOption rather than silently ignoring weights.

import (
	"errors"
	"math/rand"
	"testing"

	"gnn"
)

func TestWeightedAggregateSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	pts := clusterPoints(rng, 1500, 1000)
	ids := make([]int64, len(pts))
	for i := range ids {
		ids[i] = int64(i)
	}
	ix, sx := buildBoth(t, pts, 3, gnn.IndexConfig{NodeCapacity: 16})

	algos := []struct {
		name string
		opts []gnn.QueryOption
		rtol float64 // 0 = bit-identical to the reference reduction
	}{
		{"MBM-BF", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM)}, 0},
		{"MBM-DF", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithDepthFirst()}, 0},
		{"MBM-BF-genericmax", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithGenericMax()}, 0},
		{"brute", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoBruteForce)}, 0},
		{"MQM", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMQM)}, 1e-12},
	}
	for trial := 0; trial < 6; trial++ {
		qs := queryGroup(rng, []int{2, 5, 17}[trial%3], 1000)
		w := oracleWeights(len(qs))
		for _, agg := range []gnn.Aggregate{gnn.SumDist, gnn.MaxDist, gnn.MinDist} {
			want := oracleTopK(pts, ids, qs, agg, w, 6)
			for _, al := range algos {
				name := al.name + "/" + aggName(agg)
				opts := append([]gnn.QueryOption{
					gnn.WithK(6), gnn.WithAggregate(agg), gnn.WithWeights(w),
				}, al.opts...)
				got, err := ix.GroupNN(qs, opts...)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if al.rtol == 0 {
					sameResults(t, name, want, got)
				} else {
					oracleApprox(t, name, want, got, qs, agg, w, al.rtol)
				}
			}
			// Sharded scatter-gather under the same weighted reduction.
			sgot, err := sx.GroupNN(qs, gnn.WithK(6), gnn.WithAggregate(agg), gnn.WithWeights(w))
			if err != nil {
				t.Fatalf("sharded/%s: %v", aggName(agg), err)
			}
			sameResults(t, "sharded/"+aggName(agg), want, sgot)
		}
	}
}

func aggName(a gnn.Aggregate) string {
	switch a {
	case gnn.MaxDist:
		return "max"
	case gnn.MinDist:
		return "min"
	}
	return "sum"
}

func TestAggregateRejections(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	pts := clusterPoints(rng, 800, 1000)
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{NodeCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	qix, err := gnn.BuildIndex(pts[:100], nil, gnn.IndexConfig{NodeCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	qpts := make([]gnn.Point, 120)
	for i := range qpts {
		qpts[i] = gnn.Point{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	qset, err := gnn.NewQuerySet(qpts, gnn.QuerySetConfig{BlockPoints: 32})
	if err != nil {
		t.Fatal(err)
	}
	group := queryGroup(rng, 5, 1000)
	w5 := oracleWeights(5)

	cases := []struct {
		name string
		run  func() error
		want error
	}{
		{"SPM/max", func() error {
			_, err := ix.GroupNN(group, gnn.WithAlgorithm(gnn.AlgoSPM), gnn.WithAggregate(gnn.MaxDist))
			return err
		}, gnn.ErrUnsupportedAggregate},
		{"SPM/min", func() error {
			_, err := ix.GroupNN(group, gnn.WithAlgorithm(gnn.AlgoSPM), gnn.WithAggregate(gnn.MinDist))
			return err
		}, gnn.ErrUnsupportedAggregate},
		{"SPM/max/weighted", func() error {
			_, err := ix.GroupNN(group, gnn.WithAlgorithm(gnn.AlgoSPM),
				gnn.WithAggregate(gnn.MaxDist), gnn.WithWeights(w5))
			return err
		}, gnn.ErrUnsupportedAggregate},
		{"F-MQM/max", func() error {
			_, err := ix.GroupNNFromSet(qset, gnn.DiskFMQM, gnn.WithAggregate(gnn.MaxDist))
			return err
		}, gnn.ErrUnsupportedAggregate},
		{"F-MBM/max", func() error {
			_, err := ix.GroupNNFromSet(qset, gnn.DiskFMBM, gnn.WithAggregate(gnn.MaxDist))
			return err
		}, gnn.ErrUnsupportedAggregate},
		{"F-MQM/weighted", func() error {
			_, err := ix.GroupNNFromSet(qset, gnn.DiskFMQM, gnn.WithWeights(oracleWeights(len(qpts))))
			return err
		}, gnn.ErrUnsupportedOption},
		{"F-MBM/weighted", func() error {
			_, err := ix.GroupNNFromSet(qset, gnn.DiskFMBM, gnn.WithWeights(oracleWeights(len(qpts))))
			return err
		}, gnn.ErrUnsupportedOption},
		{"GCP/max", func() error {
			_, err := ix.GroupNNClosestPairs(qix, 1<<20, gnn.WithAggregate(gnn.MaxDist))
			return err
		}, gnn.ErrUnsupportedAggregate},
	}
	for _, tc := range cases {
		err := tc.run()
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: error = %v, want %v", tc.name, err, tc.want)
		}
	}

	// Weight-vector validation is shared by every memory algorithm: a
	// length mismatch or non-positive weight must fail loudly under MAX
	// exactly as under SUM.
	if _, err := ix.GroupNN(group, gnn.WithAggregate(gnn.MaxDist), gnn.WithWeights(oracleWeights(3))); err == nil {
		t.Error("length-mismatched weights accepted under MAX")
	}
	if _, err := ix.GroupNN(group, gnn.WithAggregate(gnn.MaxDist), gnn.WithWeights([]float64{1, 1, 1, 1, -2})); err == nil {
		t.Error("negative weight accepted under MAX")
	}
}
