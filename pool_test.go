// Pool hygiene tests: scratch released to the sync.Pool arenas must come
// back fully reset. The suite hammers the pools with randomized queries
// from many goroutines (run under -race, its primary consumer) and checks
// the two invariants pooling could silently break: every answer still
// matches a fresh-context serial run, and per-query costs still sum
// exactly to the index-wide aggregate (PR 1's invariant).
package gnn_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"gnn"
)

// poolQuery is one randomized query specification.
type poolQuery struct {
	group []gnn.Point
	opts  []gnn.QueryOption
	kind  string
}

// randPoolQueries builds a deterministic mix of algorithms, aggregates,
// ks, weights and group sizes — every pooled code path.
func randPoolQueries(rng *rand.Rand, n int) []poolQuery {
	out := make([]poolQuery, n)
	for i := range out {
		size := 1 + rng.Intn(12)
		group := make([]gnn.Point, size)
		base := gnn.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		for j := range group {
			group[j] = gnn.Point{base[0] + rng.Float64()*200, base[1] + rng.Float64()*200}
		}
		k := 1 + rng.Intn(5)
		opts := []gnn.QueryOption{gnn.WithK(k)}
		kind := "MBM-BF"
		switch rng.Intn(5) {
		case 0:
			opts = append(opts, gnn.WithAlgorithm(gnn.AlgoMQM))
			kind = "MQM"
		case 1:
			opts = append(opts, gnn.WithAlgorithm(gnn.AlgoSPM))
			kind = "SPM"
		case 2:
			opts = append(opts, gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithDepthFirst())
			kind = "MBM-DF"
		case 3:
			opts = append(opts, gnn.WithAlgorithm(gnn.AlgoBruteForce))
			kind = "brute"
		}
		if kind != "SPM" { // SPM's Lemma-1 bound is SUM-only
			switch rng.Intn(3) {
			case 0:
				opts = append(opts, gnn.WithAggregate(gnn.MaxDist))
			case 1:
				opts = append(opts, gnn.WithAggregate(gnn.MinDist))
			}
		}
		if rng.Intn(2) == 0 {
			w := make([]float64, size)
			for j := range w {
				w[j] = 0.5 + rng.Float64()*3
			}
			opts = append(opts, gnn.WithWeights(w))
		}
		out[i] = poolQuery{group: group, opts: opts, kind: kind}
	}
	return out
}

// TestPoolReuseIsClean answers 1000 randomized queries: first serially
// (the reference), then concurrently from 8 goroutines so released
// scratch is constantly re-acquired by different queries and goroutines.
// Any state leaking through the pools shows up as a diverged answer, a
// race report, or a broken cost-sum.
func TestPoolReuseIsClean(t *testing.T) {
	const queries = 1000
	const goroutines = 8
	ix, _ := concurrencyFixture(t, 0)
	rng := rand.New(rand.NewSource(1234))
	specs := randPoolQueries(rng, queries)

	want := make([][]gnn.Result, queries)
	for i, q := range specs {
		res, _, err := ix.GroupNNWithCost(q.group, q.opts...)
		if err != nil {
			t.Fatalf("query %d (%s): %v", i, q.kind, err)
		}
		want[i] = res
	}

	ix.ResetCost()
	costs := make([]gnn.Cost, goroutines)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Interleave walk order per goroutine so the same pooled
			// scratch serves different query shapes back to back.
			for i := w; i < queries; i += 1 + w%3 {
				q := specs[i]
				res, cost, err := ix.GroupNNWithCost(q.group, q.opts...)
				if err != nil {
					errs <- fmt.Errorf("worker %d query %d (%s): %w", w, i, q.kind, err)
					return
				}
				if !reflect.DeepEqual(res, want[i]) {
					errs <- fmt.Errorf("worker %d query %d (%s): pooled run diverged from serial reference", w, i, q.kind)
					return
				}
				costs[w].Add(cost)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var sum gnn.Cost
	for _, c := range costs {
		sum.Add(c)
	}
	if sum != ix.Cost() {
		t.Fatalf("per-query cost sum %+v != aggregate %+v", sum, ix.Cost())
	}
}

// TestPoolReuseAcrossBatches: the batch engine's per-worker contexts must
// give the same answers batch after batch, with exact per-query costs.
func TestPoolReuseAcrossBatches(t *testing.T) {
	ix, groups := concurrencyFixture(t, 0)
	want := ix.GroupNNBatch(groups, gnn.WithK(3))
	for round := 0; round < 5; round++ {
		got := ix.GroupNNBatch(groups, gnn.WithK(3), gnn.WithParallelism(1+round%4))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: batch output changed under context reuse", round)
		}
	}
}

// TestIteratorCloseThenNext: a closed iterator must report exhaustion, not
// touch recycled scratch.
func TestIteratorCloseThenNext(t *testing.T) {
	ix, groups := concurrencyFixture(t, 0)
	it, err := ix.GroupNNIterator(groups[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Next(); !ok {
		t.Fatal("fresh iterator empty")
	}
	it.Close()
	it.Close() // idempotent
	if _, ok := it.Next(); ok {
		t.Fatal("closed iterator yielded a result")
	}
	if c := it.Cost(); c.LogicalAccesses == 0 {
		t.Fatal("iterator cost lost after Close")
	}
}
