package gnn_test

// Differential suite for the delta-overlay write path: a mutated index
// must answer every query exactly like a freshly built index over the
// same live multiset, and after compaction the equivalence extends to
// Cost and node-access counts bit for bit.

import (
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"gnn"
)

// mutationScript applies a deterministic mixed workload to a mutable
// target and mirrors it into a live point list. The script exercises
// every overlay transition: overlay inserts past the fold threshold,
// deletes of base points (tombstones), deletes of overlay points
// (physical removal, both pending and folded), and re-inserts of deleted
// base points (resurrection).
type mutable interface {
	Insert(p gnn.Point, id int64) error
	Delete(p gnn.Point, id int64) bool
}

func runMutationScript(t *testing.T, target mutable, pts []gnn.Point, rng *rand.Rand) ([]gnn.Point, []int64) {
	t.Helper()
	live := make([]gnn.Point, len(pts))
	ids := make([]int64, len(pts))
	for i, p := range pts {
		live[i] = p
		ids[i] = int64(i)
	}
	remove := func(i int) {
		live = append(live[:i], live[i+1:]...)
		ids = append(ids[:i], ids[i+1:]...)
	}
	next := int64(len(pts))
	// 300 overlay inserts: crosses the pending-fold threshold so queries
	// exercise base + delta tree + pending tail simultaneously.
	for i := 0; i < 300; i++ {
		p := gnn.Point{rng.Float64() * 100, rng.Float64() * 100}
		if err := target.Insert(p, next); err != nil {
			t.Fatal(err)
		}
		live = append(live, p)
		ids = append(ids, next)
		next++
	}
	// 40 deletes of original base points — tombstones.
	for i := 0; i < 40; i++ {
		j := rng.Intn(len(pts) - i)
		if !target.Delete(live[j], ids[j]) {
			t.Fatalf("base delete %d failed", i)
		}
		remove(j)
	}
	// 30 deletes of overlay points — physical removal from the folded
	// delta (low indexes) and the pending tail (high indexes).
	for i := 0; i < 30; i++ {
		j := len(live) - 1 - rng.Intn(200)
		if !target.Delete(live[j], ids[j]) {
			t.Fatalf("overlay delete %d failed", i)
		}
		remove(j)
	}
	// Resurrect: delete a base point, then insert the exact point back.
	j := rng.Intn(50)
	p, id := live[j], ids[j]
	if !target.Delete(p, id) {
		t.Fatal("resurrection delete failed")
	}
	if err := target.Insert(p, id); err != nil {
		t.Fatal(err)
	}
	return live, ids
}

// queryVariants is the algorithm × aggregate × k grid the differential
// assertions sweep.
type variant struct {
	algo gnn.Algorithm
	agg  gnn.Aggregate
	k    int
}

func variants() []variant {
	var out []variant
	for _, algo := range []gnn.Algorithm{gnn.AlgoMBM, gnn.AlgoMQM, gnn.AlgoBruteForce} {
		for _, agg := range []gnn.Aggregate{gnn.SumDist, gnn.MaxDist, gnn.MinDist} {
			out = append(out, variant{algo, agg, 5})
		}
	}
	out = append(out, variant{gnn.AlgoSPM, gnn.SumDist, 5}) // SPM's pruning lemma is sum-only
	out = append(out, variant{gnn.AlgoMBM, gnn.SumDist, 1}, variant{gnn.AlgoMBM, gnn.SumDist, 32})
	return out
}

type grouper interface {
	GroupNN(query []gnn.Point, opts ...gnn.QueryOption) ([]gnn.Result, error)
}

// assertEquivalent sweeps the variant grid over both indexes and demands
// identical results. Coordinates are distinct random floats, so exact
// aggregate-distance ties (the one sanctioned divergence) do not occur.
func assertEquivalent(t *testing.T, label string, got, want grouper, groups [][]gnn.Point, layouts []gnn.Layout) {
	t.Helper()
	for _, v := range variants() {
		for gi, q := range groups {
			for _, l := range layouts {
				opts := []gnn.QueryOption{gnn.WithAlgorithm(v.algo), gnn.WithAggregate(v.agg), gnn.WithK(v.k), gnn.WithLayout(l)}
				g, err := got.GroupNN(q, opts...)
				if err != nil {
					t.Fatalf("%s: %v/%v k=%d layout=%v group=%d: %v", label, v.algo, v.agg, v.k, l, gi, err)
				}
				w, err := want.GroupNN(q, opts...)
				if err != nil {
					t.Fatalf("%s: fresh %v/%v k=%d layout=%v group=%d: %v", label, v.algo, v.agg, v.k, l, gi, err)
				}
				if !reflect.DeepEqual(g, w) {
					t.Fatalf("%s: %v/%v k=%d layout=%v group=%d diverged\nmutated: %v\nfresh:   %v",
						label, v.algo, v.agg, v.k, l, gi, g, w)
				}
			}
		}
	}
}

func overlayFixture(t *testing.T, n int, seed int64) ([]gnn.Point, [][]gnn.Point, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := make([]gnn.Point, n)
	for i := range pts {
		pts[i] = gnn.Point{rng.Float64() * 100, rng.Float64() * 100}
	}
	groups := make([][]gnn.Point, 4)
	for i := range groups {
		g := make([]gnn.Point, 3+i)
		for j := range g {
			g[j] = gnn.Point{rng.Float64() * 100, rng.Float64() * 100}
		}
		groups[i] = g
	}
	return pts, groups, rng
}

// TestOverlayDifferentialPlain: a mutated plain index is
// result-equivalent to a fresh index over the live multiset, on both
// layouts, before any compaction.
func TestOverlayDifferentialPlain(t *testing.T) {
	pts, groups, rng := overlayFixture(t, 400, 71)
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	live, ids := runMutationScript(t, ix, pts, rng)
	if ix.Len() != len(live) {
		t.Fatalf("Len: %d, want %d", ix.Len(), len(live))
	}
	fresh, err := gnn.BuildIndex(live, ids, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, "pre-compaction", ix, fresh, groups, []gnn.Layout{gnn.LayoutPacked, gnn.LayoutDynamic})

	// Iterator: the merged overlay stream yields the fresh index's
	// stream, element for element.
	mit, err := ix.GroupNNIterator(groups[0])
	if err != nil {
		t.Fatal(err)
	}
	defer mit.Close()
	fit, err := fresh.GroupNNIterator(groups[0])
	if err != nil {
		t.Fatal(err)
	}
	defer fit.Close()
	for i := 0; i < 50; i++ {
		g, gok := mit.Next()
		w, wok := fit.Next()
		if gok != wok || !reflect.DeepEqual(g, w) {
			t.Fatalf("iterator diverged at %d: (%v,%v) vs (%v,%v)", i, g, gok, w, wok)
		}
		if !gok {
			break
		}
	}

	// NearestNeighbors rides the same overlay merge.
	for i := 0; i < 5; i++ {
		q := gnn.Point{rng.Float64() * 100, rng.Float64() * 100}
		g, err := ix.NearestNeighbors(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		w, err := fresh.NearestNeighbors(q, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("NN diverged:\nmutated: %v\nfresh:   %v", g, w)
		}
	}

	// After compaction the equivalence extends to Cost and node-access
	// counts: the rebuilt base is bulk-loaded from the same multiset.
	if err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	if s := ix.Stats(); s.Delta != 0 || s.Tombstones != 0 || s.CompactGen != 1 {
		t.Fatalf("post-compaction stats: %+v", s)
	}
	for _, v := range variants() {
		opts := []gnn.QueryOption{gnn.WithAlgorithm(v.algo), gnn.WithAggregate(v.agg), gnn.WithK(v.k)}
		g, gc, err := ix.GroupNNWithCost(groups[0], opts...)
		if err != nil {
			t.Fatal(err)
		}
		w, wc, err := fresh.GroupNNWithCost(groups[0], opts...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(g, w) || gc != wc {
			t.Fatalf("post-compaction %v/%v: results or cost diverged: %+v vs %+v", v.algo, v.agg, gc, wc)
		}
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestOverlayDifferentialSharded mirrors the plain differential over the
// sharded index: mutated scatter-gather vs a fresh sharded build.
func TestOverlayDifferentialSharded(t *testing.T) {
	pts, groups, rng := overlayFixture(t, 400, 72)
	sx, err := gnn.BuildShardedIndex(pts, nil, 3, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sx.Close()
	live, ids := runMutationScript(t, sx, pts, rng)
	if sx.Len() != len(live) {
		t.Fatalf("Len: %d, want %d", sx.Len(), len(live))
	}
	fresh, err := gnn.BuildShardedIndex(live, ids, 3, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	assertEquivalent(t, "sharded pre-compaction", sx, fresh, groups, []gnn.Layout{gnn.LayoutAuto, gnn.LayoutDynamic})

	// The mutated sharded index also matches a plain fresh index — the
	// cross-execution-strategy equivalence the sharding layer promises.
	plain, err := gnn.BuildIndex(live, ids, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, "sharded vs plain", sx, plain, groups[:2], []gnn.Layout{gnn.LayoutAuto})

	mit, err := sx.GroupNNIterator(groups[0])
	if err != nil {
		t.Fatal(err)
	}
	defer mit.Close()
	fit, err := fresh.GroupNNIterator(groups[0])
	if err != nil {
		t.Fatal(err)
	}
	defer fit.Close()
	for i := 0; i < 50; i++ {
		g, gok := mit.Next()
		w, wok := fit.Next()
		if gok != wok || !reflect.DeepEqual(g, w) {
			t.Fatalf("sharded iterator diverged at %d: (%v,%v) vs (%v,%v)", i, g, gok, w, wok)
		}
		if !gok {
			break
		}
	}

	// Compaction re-partitions into the same shard count and drains the
	// overlay; results stay equivalent and cost matches the fresh build.
	if err := sx.Compact(); err != nil {
		t.Fatal(err)
	}
	if s := sx.Stats(); s.Delta != 0 || s.Tombstones != 0 || s.CompactGen != 1 || s.Shards != 3 {
		t.Fatalf("post-compaction sharded stats: %+v", s)
	}
	for _, v := range variants()[:4] {
		opts := []gnn.QueryOption{gnn.WithAlgorithm(v.algo), gnn.WithAggregate(v.agg), gnn.WithK(v.k)}
		g, gc, err := sx.GroupNNWithCost(groups[0], opts...)
		if err != nil {
			t.Fatal(err)
		}
		w, wc, err := fresh.GroupNNWithCost(groups[0], opts...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(g, w) || gc != wc {
			t.Fatalf("post-compaction sharded %v/%v: diverged: %+v vs %+v", v.algo, v.agg, gc, wc)
		}
	}
	if err := sx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestOverlaySnapshotRoundTrip: snapshotting a mutated index compacts
// transiently — the loaded index equals a fresh build over the live
// multiset, and the serving index still carries its overlay.
func TestOverlaySnapshotRoundTrip(t *testing.T) {
	pts, groups, rng := overlayFixture(t, 300, 73)
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	live, ids := runMutationScript(t, ix, pts, rng)
	dir := t.TempDir()
	path := filepath.Join(dir, "mutated.snap")
	if err := ix.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	if s := ix.Stats(); s.Delta == 0 {
		t.Fatal("WriteSnapshot must not drain the serving overlay")
	}
	loaded, err := gnn.OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := gnn.BuildIndex(live, ids, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, "snapshot round-trip", loaded, fresh, groups[:2], []gnn.Layout{gnn.LayoutPacked})
}

// TestOverlayDiskFamilyGuard: the query-set family refuses indexes with
// pending mutations and serves again once compacted.
func TestOverlayDiskFamilyGuard(t *testing.T) {
	pts, groups, _ := overlayFixture(t, 200, 74)
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	qset, err := gnn.NewQuerySet(groups[0], gnn.QuerySetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.GroupNNFromSet(qset, gnn.DiskAuto); err != nil {
		t.Fatalf("clean index: %v", err)
	}
	if err := ix.Insert(gnn.Point{1, 2}, 9001); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.GroupNNFromSet(qset, gnn.DiskAuto); !errors.Is(err, gnn.ErrPendingMutations) {
		t.Fatalf("mutated index: %v, want ErrPendingMutations", err)
	}
	qix, err := gnn.BuildIndex(groups[0], nil, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.GroupNNClosestPairs(qix, 0); !errors.Is(err, gnn.ErrPendingMutations) {
		t.Fatalf("GCP on mutated index: %v, want ErrPendingMutations", err)
	}
	if err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.GroupNNFromSet(qset, gnn.DiskAuto); err != nil {
		t.Fatalf("compacted index: %v", err)
	}
	if _, err := ix.GroupNNClosestPairs(qix, 0); err != nil {
		t.Fatalf("GCP on compacted index: %v", err)
	}
}

// TestOverlayCostSumInvariant: per-query costs on a mutated index still
// sum to the index-wide aggregate — tombstone bookkeeping and overlay
// maintenance charge nothing.
func TestOverlayCostSumInvariant(t *testing.T) {
	pts, groups, rng := overlayFixture(t, 400, 75)
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	runMutationScript(t, ix, pts, rng)
	ix.ResetCost()
	var sum gnn.Cost
	for _, q := range groups {
		for _, algo := range []gnn.Algorithm{gnn.AlgoMBM, gnn.AlgoMQM, gnn.AlgoSPM} {
			_, c, err := ix.GroupNNWithCost(q, gnn.WithAlgorithm(algo), gnn.WithK(3))
			if err != nil {
				t.Fatal(err)
			}
			sum.NodeAccesses += c.NodeAccesses
			sum.BufferHits += c.BufferHits
			sum.LogicalAccesses += c.LogicalAccesses
		}
	}
	if got := ix.Cost(); got != sum {
		t.Fatalf("aggregate cost %+v, sum of per-query costs %+v", got, sum)
	}
}

// TestOverlayEdgeCases: duplicate points under one id, multiplicity
// tombstones, delete-then-reinsert loops, and Bounds conservatism.
func TestOverlayEdgeCases(t *testing.T) {
	dup := gnn.Point{5, 5}
	pts := []gnn.Point{dup, dup, {1, 1}, {9, 9}}
	ids := []int64{7, 7, 1, 2}
	ix, err := gnn.BuildIndex(pts, ids, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Two base copies of (5,5)/7: the first delete masks one — the point
	// stays visible (the remaining copy is live) — the second masks both.
	if !ix.Delete(dup, 7) {
		t.Fatal("first duplicate delete failed")
	}
	res, err := ix.GroupNN([]gnn.Point{dup}, gnn.WithK(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 7 {
		t.Fatalf("half-masked duplicate should stay visible: %v", res)
	}
	if !ix.Delete(dup, 7) {
		t.Fatal("second duplicate delete failed")
	}
	if ix.Delete(dup, 7) {
		t.Fatal("third duplicate delete should fail")
	}
	res, err = ix.GroupNN([]gnn.Point{dup}, gnn.WithK(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 1 && res[0].ID == 7 {
		t.Fatal("fully masked duplicate still visible")
	}
	if ix.Len() != 2 {
		t.Fatalf("Len after duplicate deletes: %d, want 2", ix.Len())
	}
	// Resurrect one copy.
	if err := ix.Insert(dup, 7); err != nil {
		t.Fatal(err)
	}
	res, err = ix.GroupNN([]gnn.Point{dup}, gnn.WithK(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 7 {
		t.Fatalf("resurrected point invisible: %v", res)
	}
	if s := ix.Stats(); s.Delta != 0 {
		t.Fatalf("resurrection must not grow the overlay: %+v", s)
	}
	// Overlay inserts extend Bounds.
	if err := ix.Insert(gnn.Point{100, 100}, 50); err != nil {
		t.Fatal(err)
	}
	_, hi, ok := ix.Bounds()
	if !ok || hi[0] < 100 || hi[1] < 100 {
		t.Fatalf("Bounds ignore overlay insert: hi=%v ok=%v", hi, ok)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCompactorLifecycle locks the compactor's control surface: start,
// double-start, threshold trigger, stop, and the not-frozen guard.
func TestCompactorLifecycle(t *testing.T) {
	nx, err := gnn.NewIndex(gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := nx.StartCompactor(gnn.CompactorConfig{}); !errors.Is(err, gnn.ErrNotFrozen) {
		t.Fatalf("StartCompactor on never-packed index: %v", err)
	}
	if err := nx.Compact(); !errors.Is(err, gnn.ErrNotFrozen) {
		t.Fatalf("Compact on never-packed index: %v", err)
	}

	pts, _, _ := overlayFixture(t, 100, 76)
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.StartCompactor(gnn.CompactorConfig{Threshold: 8}); err != nil {
		t.Fatal(err)
	}
	if err := ix.StartCompactor(gnn.CompactorConfig{}); !errors.Is(err, gnn.ErrCompactorRunning) {
		t.Fatalf("double StartCompactor: %v", err)
	}
	for i := 0; i < 64; i++ {
		if err := ix.Insert(gnn.Point{float64(i), float64(i)}, int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	// The background loop must fold the overlay down below threshold;
	// poll briefly (the trigger is asynchronous).
	deadline := 200
	for ; deadline > 0; deadline-- {
		if s := ix.Stats(); s.CompactGen > 0 && s.Delta < 8 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if deadline == 0 {
		t.Fatalf("background compactor never caught up: %+v", ix.Stats())
	}
	ix.StopCompactor()
	ix.StopCompactor() // idempotent
	if err := ix.StartCompactor(gnn.CompactorConfig{}); err != nil {
		t.Fatalf("restart after stop: %v", err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ix.Len(); got != 100+64 {
		t.Fatalf("Len after compaction: %d", got)
	}
}
