package gnn_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"gnn"
)

// writeSnapFile snapshots ix into dir and returns the file path.
func writeSnapFile(t *testing.T, dir, name string, write func(string) error) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := write(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMappedOpenEquivalence is the mapped differential gate: an index
// served zero-copy from the file mapping answers every algorithm ×
// aggregate × k cell — plus point-NN and the incremental iterator —
// with bit-identical results, Cost and node accesses to the same
// snapshot decoded onto the heap.
func TestMappedOpenEquivalence(t *testing.T) {
	_, ix, queries := snapshotFixture(t, 2500, 19)
	dir := t.TempDir()
	path := writeSnapFile(t, dir, "ix.snap", ix.WriteSnapshotFile)

	heap, err := gnn.OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := gnn.OpenSnapshotMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()

	if got, want := mapped.Stats(), heap.Stats(); got != want {
		t.Fatalf("stats diverged: %+v vs %+v", got, want)
	}
	if err := mapped.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	mlo, mhi, mok := mapped.Bounds()
	hlo, hhi, hok := heap.Bounds()
	if mok != hok || !reflect.DeepEqual(mlo, hlo) || !reflect.DeepEqual(mhi, hhi) {
		t.Fatalf("bounds diverged: %v %v vs %v %v", mlo, mhi, hlo, hhi)
	}

	type cell struct {
		name string
		opts []gnn.QueryOption
	}
	cells := []cell{
		{"MQM/sum", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMQM)}},
		{"MQM/max", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMQM), gnn.WithAggregate(gnn.MaxDist)}},
		{"SPM", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoSPM)}},
		{"MBM/sum", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM)}},
		{"MBM/df", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithDepthFirst()}},
		{"MBM/min", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithAggregate(gnn.MinDist)}},
		{"brute", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoBruteForce)}},
	}
	for _, c := range cells {
		for qi, q := range queries {
			opts := append([]gnn.QueryOption{gnn.WithK(1 + qi%5)}, c.opts...)
			hr, hc, herr := heap.GroupNNWithCost(q, opts...)
			mr, mc, merr := mapped.GroupNNWithCost(q, opts...)
			requireSameAnswer(t, "mapped/"+c.name, hr, hc, herr, mr, mc, merr)
		}
	}
	for _, q := range queries {
		hr, hc, herr := heap.NearestNeighborsWithCost(q[0], 7)
		mr, mc, merr := mapped.NearestNeighborsWithCost(q[0], 7)
		requireSameAnswer(t, "mapped/NN", hr, hc, herr, mr, mc, merr)
	}
	hit, err := heap.GroupNNIterator(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	mit, err := mapped.GroupNNIterator(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		hn, hok := hit.Next()
		mn, mok := mit.Next()
		if hok != mok || !reflect.DeepEqual(hn, mn) {
			t.Fatalf("iterator step %d diverged", i)
		}
	}
	if hit.Cost() != mit.Cost() {
		t.Fatalf("iterator cost diverged: %+v vs %+v", hit.Cost(), mit.Cost())
	}
	hit.Close()
	mit.Close()

	// Disk-resident query sets run against the mapped arena too.
	var qpts []gnn.Point
	for _, q := range queries[:6] {
		qpts = append(qpts, q...)
	}
	for _, algo := range []gnn.DiskAlgorithm{gnn.DiskFMQM, gnn.DiskFMBM} {
		mkSet := func() *gnn.QuerySet {
			qs, err := gnn.NewQuerySet(qpts, gnn.QuerySetConfig{BlockPoints: 12})
			if err != nil {
				t.Fatal(err)
			}
			return qs
		}
		hr, hc, herr := heap.GroupNNFromSetWithCost(mkSet(), algo, gnn.WithK(4))
		mr, mc, merr := mapped.GroupNNFromSetWithCost(mkSet(), algo, gnn.WithK(4))
		requireSameAnswer(t, "mapped/"+algo.String(), hr, hc, herr, mr, mc, merr)
	}

	// A buffered mapped open replays the same hit/miss stream as a
	// buffered heap open.
	heapBuf, err := gnn.OpenSnapshotFile(path, gnn.WithSnapshotBuffer(32))
	if err != nil {
		t.Fatal(err)
	}
	mapBuf, err := gnn.OpenSnapshotMapped(path, gnn.WithSnapshotBuffer(32))
	if err != nil {
		t.Fatal(err)
	}
	defer mapBuf.Close()
	var hits int64
	for _, q := range queries {
		hr, hc, herr := heapBuf.GroupNNWithCost(q, gnn.WithK(3))
		mr, mc, merr := mapBuf.GroupNNWithCost(q, gnn.WithK(3))
		requireSameAnswer(t, "mapped/buffered", hr, hc, herr, mr, mc, merr)
		hits += mc.BufferHits
	}
	if hits == 0 {
		t.Fatal("expected buffer hits on the mapped index")
	}
}

// TestShardedMappedOpenEquivalence: the sharded zero-copy open preserves
// the partition and answers bit-identically to the heap-decoded set,
// under both the sequential and the full-parallel (resident worker)
// scatter paths.
func TestShardedMappedOpenEquivalence(t *testing.T) {
	pts, _, queries := snapshotFixture(t, 2200, 41)
	dir := t.TempDir()
	for _, shards := range []int{1, 3} {
		sx, err := gnn.BuildShardedIndex(pts, nil, shards, gnn.IndexConfig{NodeCapacity: 16})
		if err != nil {
			t.Fatal(err)
		}
		path := writeSnapFile(t, dir, "sx.snap", sx.WriteSnapshotFile)
		heap, err := gnn.OpenShardedSnapshotFile(path)
		if err != nil {
			t.Fatal(err)
		}
		mapped, err := gnn.OpenShardedSnapshotMapped(path)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(mapped.ShardSizes(), sx.ShardSizes()) {
			t.Fatalf("S=%d: partition changed: %v vs %v", shards, mapped.ShardSizes(), sx.ShardSizes())
		}
		if err := mapped.CheckInvariants(); err != nil {
			t.Fatalf("S=%d: %v", shards, err)
		}
		// WithShards(1) forces the sequential scatter — fully deterministic,
		// so results AND costs must match bit for bit. WithShards(8) >= S
		// routes through the resident per-shard workers, where per-shard
		// node accesses legitimately vary with bound-publication timing:
		// there only the results are compared.
		for qi, q := range queries {
			opts := []gnn.QueryOption{gnn.WithK(1 + qi%4), gnn.WithShards(1)}
			hr, hc, herr := heap.GroupNNWithCost(q, opts...)
			mr, mc, merr := mapped.GroupNNWithCost(q, opts...)
			requireSameAnswer(t, "sharded-mapped", hr, hc, herr, mr, mc, merr)
		}
		for qi, q := range queries {
			opts := []gnn.QueryOption{gnn.WithK(1 + qi%4), gnn.WithShards(8)}
			hr, herr := heap.GroupNN(q, opts...)
			mr, merr := mapped.GroupNN(q, opts...)
			if (herr == nil) != (merr == nil) {
				t.Fatalf("S=%d parallel: error diverged: %v vs %v", shards, herr, merr)
			}
			if !reflect.DeepEqual(hr, mr) {
				t.Fatalf("S=%d parallel: results diverged\nheap:   %v\nmapped: %v", shards, hr, mr)
			}
		}
		hit, err := heap.GroupNNIterator(queries[0])
		if err != nil {
			t.Fatal(err)
		}
		mit, err := mapped.GroupNNIterator(queries[0])
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 15; i++ {
			hn, hok := hit.Next()
			mn, mok := mit.Next()
			if hok != mok || !reflect.DeepEqual(hn, mn) {
				t.Fatalf("S=%d: iterator step %d diverged", shards, i)
			}
		}
		hit.Close()
		mit.Close()
		if err := mapped.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMappedConcurrentQueries hammers one mapped sharded index from many
// goroutines through the resident-worker scatter path (this test is the
// race detector's main target for the engine).
func TestMappedConcurrentQueries(t *testing.T) {
	pts, _, queries := snapshotFixture(t, 1500, 55)
	sx, err := gnn.BuildShardedIndex(pts, nil, 3, gnn.IndexConfig{NodeCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := writeSnapFile(t, dir, "sx.snap", sx.WriteSnapshotFile)
	mapped, err := gnn.OpenShardedSnapshotMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	want := make([][]gnn.Result, len(queries))
	for i, q := range queries {
		if want[i], err = sx.GroupNN(q, gnn.WithK(3), gnn.WithShards(8)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				qi := (g + i) % len(queries)
				got, err := mapped.GroupNN(queries[qi], gnn.WithK(3), gnn.WithShards(8))
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if !reflect.DeepEqual(got, want[qi]) {
					t.Errorf("goroutine %d: answer diverged", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestMappedCorruption locks the failure surface of the mapped open:
// frame damage fails at open with a typed error, payload damage is
// caught by the deferred checksums on the first query (never a fault),
// and WithEagerVerify moves that to the open.
func TestMappedCorruption(t *testing.T) {
	_, ix, queries := snapshotFixture(t, 800, 77)
	dir := t.TempDir()
	path := writeSnapFile(t, dir, "ix.snap", ix.WriteSnapshotFile)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncations at every region: header, section table, mid-payload.
	for _, frac := range []float64{0, 0.01, 0.5, 0.99} {
		p := filepath.Join(dir, "trunc.snap")
		if err := os.WriteFile(p, pristine[:int(float64(len(pristine))*frac)], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := gnn.OpenSnapshotMapped(p)
		if !errors.Is(err, gnn.ErrSnapshotTruncated) && !errors.Is(err, gnn.ErrSnapshotCorrupt) {
			t.Fatalf("truncated at %.0f%%: got %v", frac*100, err)
		}
	}

	// A flipped payload byte (inside the last section, past the frame
	// metadata): the lazy open succeeds, the first query — and every
	// later one — returns ErrSnapshotChecksum instead of panicking or
	// faulting, and WriteSnapshot refuses to launder the bytes.
	flipped := bytes.Clone(pristine)
	flipped[len(flipped)-2] ^= 0x40
	p := filepath.Join(dir, "flip.snap")
	if err := os.WriteFile(p, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	mx, err := gnn.OpenSnapshotMapped(p)
	if err != nil {
		t.Fatalf("lazy open of payload-corrupt snapshot should succeed: %v", err)
	}
	if _, _, err := mx.GroupNNWithCost(queries[0], gnn.WithK(2)); !errors.Is(err, gnn.ErrSnapshotChecksum) {
		t.Fatalf("first query on corrupt mapping: got %v, want ErrSnapshotChecksum", err)
	}
	if _, _, err := mx.NearestNeighborsWithCost(queries[0][0], 3); !errors.Is(err, gnn.ErrSnapshotChecksum) {
		t.Fatalf("second query on corrupt mapping: got %v", err)
	}
	if err := mx.CheckInvariants(); !errors.Is(err, gnn.ErrSnapshotChecksum) {
		t.Fatalf("CheckInvariants on corrupt mapping: got %v", err)
	}
	if err := mx.WriteSnapshot(&bytes.Buffer{}); !errors.Is(err, gnn.ErrSnapshotChecksum) {
		t.Fatalf("WriteSnapshot on corrupt mapping: got %v", err)
	}
	mx.Close()

	// WithEagerVerify surfaces the same corruption at open time.
	if _, err := gnn.OpenSnapshotMapped(p, gnn.WithEagerVerify()); !errors.Is(err, gnn.ErrSnapshotChecksum) {
		t.Fatalf("eager open of corrupt snapshot: got %v", err)
	}
	// And passes cleanly on the pristine file.
	ex, err := gnn.OpenSnapshotMapped(path, gnn.WithEagerVerify())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.GroupNN(queries[0], gnn.WithK(2)); err != nil {
		t.Fatal(err)
	}
	ex.Close()

	// Kind confusion is caught eagerly on the mapped path too.
	pts := goldenPoints(200)
	sx, err := gnn.BuildShardedIndex(pts, nil, 2, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	spath := writeSnapFile(t, dir, "sx.snap", sx.WriteSnapshotFile)
	if _, err := gnn.OpenSnapshotMapped(spath); !errors.Is(err, gnn.ErrSnapshotKind) {
		t.Fatalf("sharded via plain mapped open: %v", err)
	}
	if _, err := gnn.OpenShardedSnapshotMapped(path); !errors.Is(err, gnn.ErrSnapshotKind) {
		t.Fatalf("plain via sharded mapped open: %v", err)
	}
	if _, err := gnn.OpenSnapshotMapped(filepath.Join(dir, "missing.snap")); err == nil {
		t.Fatal("missing file should error")
	}

	// Sharded lazy corruption follows the same contract.
	sdata, err := os.ReadFile(spath)
	if err != nil {
		t.Fatal(err)
	}
	sdata[len(sdata)-2] ^= 0x40
	sp := filepath.Join(dir, "sflip.snap")
	if err := os.WriteFile(sp, sdata, 0o644); err != nil {
		t.Fatal(err)
	}
	smx, err := gnn.OpenShardedSnapshotMapped(sp)
	if err != nil {
		t.Fatalf("lazy sharded open of payload-corrupt snapshot should succeed: %v", err)
	}
	if _, err := smx.GroupNN([]gnn.Point{{1, 2}, {3, 4}}, gnn.WithK(2)); !errors.Is(err, gnn.ErrSnapshotChecksum) {
		t.Fatalf("first sharded query on corrupt mapping: got %v", err)
	}
	smx.Close()
	if _, err := gnn.OpenShardedSnapshotMapped(sp, gnn.WithEagerVerify()); !errors.Is(err, gnn.ErrSnapshotChecksum) {
		t.Fatalf("eager sharded open of corrupt snapshot: got %v", err)
	}
}

// TestMappedImmutable: a mapped index keeps its base arena immutable —
// writes land in the overlay without invalidating the serving state —
// and the dynamic-layout escape hatches are rejected with
// ErrMappedDynamic (GCP additionally refuses pending mutations with
// ErrPendingMutations).
func TestMappedImmutable(t *testing.T) {
	_, ix, queries := snapshotFixture(t, 600, 91)
	dir := t.TempDir()
	path := writeSnapFile(t, dir, "ix.snap", ix.WriteSnapshotFile)
	mx, err := gnn.OpenSnapshotMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mx.Close()

	// Writes go through the overlay: the mapped base keeps serving
	// packed, and queries see the mutation immediately.
	if err := mx.Insert(gnn.Point{1, 2}, 9001); err != nil {
		t.Fatalf("Insert on mapped index: %v", err)
	}
	if !mx.IsPacked() {
		t.Fatal("overlay writes must not invalidate the packed layout")
	}
	res, err := mx.GroupNN([]gnn.Point{{1, 2}}, gnn.WithK(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].ID != 9001 {
		t.Fatalf("mapped query missed the overlay insert: %v", res)
	}
	qix, err := gnn.BuildIndex(queries[0], nil, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// The disk family has no sound multi-source merge: pending mutations
	// are refused with a dedicated sentinel.
	if _, err := mx.GroupNNClosestPairs(qix, 0); !errors.Is(err, gnn.ErrPendingMutations) {
		t.Fatalf("GCP on mutated mapped index: %v", err)
	}
	// Deleting the overlay point drains the overlay entirely.
	if !mx.Delete(gnn.Point{1, 2}, 9001) {
		t.Fatal("Delete of overlay point should report true")
	}
	if mx.Delete(gnn.Point{1, 2}, 9001) {
		t.Fatal("second Delete should report false")
	}
	mx.Pack() // must be a no-op, not a rebuild from the (absent) dynamic nodes
	if _, err := mx.GroupNN(queries[0], gnn.WithK(2)); err != nil {
		t.Fatalf("query after drained overlay: %v", err)
	}

	if _, err := mx.GroupNN(queries[0], gnn.WithLayout(gnn.LayoutDynamic)); !errors.Is(err, gnn.ErrMappedDynamic) {
		t.Fatalf("LayoutDynamic on mapped index: %v", err)
	}
	if _, err := mx.GroupNNClosestPairs(qix, 0); !errors.Is(err, gnn.ErrMappedDynamic) {
		t.Fatalf("GCP on mapped index: %v", err)
	}
	if _, err := qix.GroupNNClosestPairs(mx, 0); !errors.Is(err, gnn.ErrMappedDynamic) {
		t.Fatalf("GCP with mapped query index: %v", err)
	}

	// Sharded: LayoutDynamic is rejected on a mapped set.
	pts := goldenPoints(300)
	sx, err := gnn.BuildShardedIndex(pts, nil, 2, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	spath := writeSnapFile(t, dir, "sx.snap", sx.WriteSnapshotFile)
	smx, err := gnn.OpenShardedSnapshotMapped(spath)
	if err != nil {
		t.Fatal(err)
	}
	defer smx.Close()
	if _, err := smx.GroupNN(queries[0], gnn.WithLayout(gnn.LayoutDynamic)); !errors.Is(err, gnn.ErrMappedDynamic) {
		t.Fatalf("LayoutDynamic on mapped sharded index: %v", err)
	}
	if _, err := sx.GroupNN(queries[0], gnn.WithLayout(gnn.LayoutDynamic)); err != nil {
		t.Fatalf("LayoutDynamic on built sharded index must keep working: %v", err)
	}
}

// TestMappedClose locks the Close contract: idempotent, a no-op on
// non-mapped constructions, and queries after Close fail with
// ErrSnapshotClosed instead of touching unmapped memory.
func TestMappedClose(t *testing.T) {
	_, ix, queries := snapshotFixture(t, 500, 13)
	dir := t.TempDir()
	path := writeSnapFile(t, dir, "ix.snap", ix.WriteSnapshotFile)

	mx, err := gnn.OpenSnapshotMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mx.GroupNN(queries[0], gnn.WithK(2)); err != nil {
		t.Fatal(err)
	}
	if err := mx.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mx.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := mx.GroupNN(queries[0], gnn.WithK(2)); !errors.Is(err, gnn.ErrSnapshotClosed) {
		t.Fatalf("query after Close: got %v, want ErrSnapshotClosed", err)
	}
	if _, _, err := mx.NearestNeighborsWithCost(queries[0][0], 2); !errors.Is(err, gnn.ErrSnapshotClosed) {
		t.Fatalf("NN after Close: got %v", err)
	}
	if err := mx.WriteSnapshot(&bytes.Buffer{}); !errors.Is(err, gnn.ErrSnapshotClosed) {
		t.Fatalf("WriteSnapshot after Close: got %v", err)
	}
	if _, _, ok := mx.Bounds(); ok {
		t.Fatal("Bounds after Close should report not-ok")
	}

	// Close on built and heap-loaded indexes is a harmless no-op.
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.GroupNN(queries[0], gnn.WithK(2)); err != nil {
		t.Fatalf("built index must keep serving after no-op Close: %v", err)
	}
	hx, err := gnn.OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := hx.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := hx.GroupNN(queries[0], gnn.WithK(2)); err != nil {
		t.Fatalf("heap-loaded index must keep serving after no-op Close: %v", err)
	}

	// Sharded Close: mapped queries fail afterwards; a built set keeps
	// serving (its resident workers just restart on demand).
	pts := goldenPoints(300)
	sx, err := gnn.BuildShardedIndex(pts, nil, 2, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	spath := writeSnapFile(t, dir, "sx.snap", sx.WriteSnapshotFile)
	smx, err := gnn.OpenShardedSnapshotMapped(spath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := smx.GroupNN(queries[0], gnn.WithK(2)); err != nil {
		t.Fatal(err)
	}
	if err := smx.Close(); err != nil {
		t.Fatal(err)
	}
	if err := smx.Close(); err != nil {
		t.Fatalf("second sharded Close: %v", err)
	}
	if _, err := smx.GroupNN(queries[0], gnn.WithK(2)); !errors.Is(err, gnn.ErrSnapshotClosed) {
		t.Fatalf("sharded query after Close: got %v", err)
	}
	if err := sx.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sx.GroupNN(queries[0], gnn.WithK(2), gnn.WithShards(8)); err != nil {
		t.Fatalf("built sharded index must keep serving after Close: %v", err)
	}
}

// TestMappedRewrite: a mapped index re-serialises to exactly the bytes
// it was opened from (the format is canonical, and the borrowed columns
// round-trip untouched).
func TestMappedRewrite(t *testing.T) {
	_, ix, _ := snapshotFixture(t, 700, 29)
	dir := t.TempDir()
	path := writeSnapFile(t, dir, "ix.snap", ix.WriteSnapshotFile)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mx, err := gnn.OpenSnapshotMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mx.Close()
	var out bytes.Buffer
	if err := mx.WriteSnapshot(&out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), pristine) {
		t.Fatal("mapped re-write differs from the opened bytes")
	}
}

// TestMappedEmpty: a snapshot of an empty index maps and serves.
func TestMappedEmpty(t *testing.T) {
	ix, err := gnn.NewIndex(gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := writeSnapFile(t, dir, "empty.snap", ix.WriteSnapshotFile)
	mx, err := gnn.OpenSnapshotMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mx.Close()
	if mx.Len() != 0 || mx.Dim() != 2 {
		t.Fatalf("mapped empty index: %d points, dim %d", mx.Len(), mx.Dim())
	}
	if res, err := mx.GroupNN([]gnn.Point{{1, 2}}); err != nil || len(res) != 0 {
		t.Fatalf("query on mapped empty index: %v, %v", res, err)
	}
	if _, _, ok := mx.Bounds(); ok {
		t.Fatal("empty index should have no bounds")
	}
}
