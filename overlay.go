// The delta-overlay write path of Index: an immutable packed base plus a
// small write overlay (pending tail, folded delta tree, delete
// tombstones), every version published atomically so queries never see a
// half-applied write. See the package comment's "Writes under live
// traffic" paragraph for the contract and compact.go for the compactor
// that folds the overlay back into the base.

package gnn

import (
	"gnn/internal/geom"
	"gnn/internal/overlay"
	"gnn/internal/pagestore"
	"gnn/internal/rtree"
)

// pendFold is the pending-tail length at which the overlay folds its
// points into a freshly bulk-loaded (and packed) delta mini tree. Below
// it, inserted points are answered by an uncharged linear scan; the fold
// keeps that scan O(pendFold) no matter how far compaction lags.
const pendFold = 256

// deltaFirstPage offsets the delta tree's simulated page identifiers far
// above any base tree's so an attached LRU buffer never aliases base and
// delta pages.
const deltaFirstPage = pagestore.PageID(1) << 40

// viewState is one immutable serving version of an Index: queries load it
// once and traverse only its fields, so a concurrent writer publishing a
// successor never perturbs an in-flight traversal.
type viewState struct {
	tree   *rtree.Tree   // base tree (dynamic nodes, or shell of a mapped arena)
	packed *rtree.Packed // packed base arena; nil only while never-packed
	// frozen marks the base immutable: mutations go through the overlay.
	// False only for a never-packed index (legacy in-place mutation).
	frozen bool
	// ov is the write overlay; nil when the index has no un-compacted
	// writes (the fast path: queries run exactly the single-source code
	// that served before overlays existed).
	ov *overlayState
	// seq is the mutation-log length when this view was published.
	seq uint64
}

// servingPacked returns the packed base queries should traverse, or nil.
func (v *viewState) servingPacked() *rtree.Packed {
	if v.packed.Valid(v.tree) {
		return v.packed
	}
	return nil
}

// overlaySize is the overlay's footprint for compaction triggering:
// live overlay inserts plus masked base occurrences.
func (v *viewState) overlaySize() int {
	if v.ov == nil {
		return 0
	}
	return len(v.ov.pts) + v.ov.tombs.Total()
}

// overlayState is the immutable write overlay of one view: every mutation
// builds a new value (copy-on-write slices), never edits one in place.
type overlayState struct {
	pts    []geom.Point // overlay-inserted points, insertion order
	ids    []int64
	folded int              // pts[:folded] are indexed by delta; the rest is the pending tail
	delta  *rtree.Tree      // bulk-loaded mini tree over pts[:folded]; nil while folded == 0
	deltaP *rtree.Packed    // packed arena of delta
	tombs  *overlay.TombSet // masked base occurrences
}

// empty reports whether the overlay holds no effect.
func (ov *overlayState) empty() bool {
	return ov == nil || (len(ov.pts) == 0 && ov.tombs.Total() == 0)
}

// succ returns a successor view carrying the (possibly nil-normalised)
// overlay.
func (v *viewState) succ(ov *overlayState) *viewState {
	if ov.empty() {
		ov = nil
	}
	return &viewState{tree: v.tree, packed: v.packed, frozen: v.frozen, ov: ov, seq: v.seq + 1}
}

// deltaConfig is the base geometry with the delta page range.
func deltaConfig(rcfg rtree.Config) rtree.Config {
	rcfg.FirstPage = deltaFirstPage
	return rcfg
}

// applier folds one mutation into an overlay state. It is the write
// logic shared by Index and ShardedIndex: each supplies its delta-tree
// geometry and its way of counting exact base occurrences.
type applier struct {
	dcfg      rtree.Config
	baseCount func(p geom.Point, id int64) int
}

// foldDelta bulk-loads (and packs) a delta tree over all overlay points.
// Points and ids are retained, not copied: overlay slices are immutable
// once published.
func (a applier) foldDelta(pts []geom.Point, ids []int64) (*rtree.Tree, *rtree.Packed, error) {
	t, err := rtree.BulkLoadSTR(a.dcfg, pts, ids)
	if err != nil {
		return nil, nil, err
	}
	return t, t.Pack(), nil
}

// insert returns the successor overlay for inserting (p, id) over a
// frozen base. An insert of a tombstoned base point resurrects the base
// occurrence instead of growing the overlay, keeping the live multiset
// exact. p must already be a caller-owned copy.
func (a applier) insert(ov *overlayState, p geom.Point, id int64) (*overlayState, error) {
	if ov != nil {
		if ts, ok := ov.tombs.Resurrect(p, id); ok {
			nov := *ov
			nov.tombs = ts
			return &nov, nil
		}
	}
	var nov overlayState
	if ov != nil {
		nov = *ov
	}
	npts := make([]geom.Point, len(nov.pts), len(nov.pts)+1)
	copy(npts, nov.pts)
	nids := make([]int64, len(nov.ids), len(nov.ids)+1)
	copy(nids, nov.ids)
	nov.pts = append(npts, p)
	nov.ids = append(nids, id)
	if len(nov.pts)-nov.folded >= pendFold {
		delta, deltaP, err := a.foldDelta(nov.pts, nov.ids)
		if err != nil {
			return nil, err
		}
		nov.delta, nov.deltaP, nov.folded = delta, deltaP, len(nov.pts)
	}
	return &nov, nil
}

// delete returns the successor overlay for deleting one occurrence of
// (p, id) over a frozen base, and whether a matching live entry existed.
// Overlay points are removed physically (latest copy first); base
// occurrences are tombstoned up to their exact multiplicity.
func (a applier) delete(ov *overlayState, p geom.Point, id int64) (*overlayState, bool) {
	if ov != nil {
		for i := len(ov.pts) - 1; i >= 0; i-- {
			if ov.ids[i] != id || !ov.pts[i].Equal(p) {
				continue
			}
			nov := *ov
			nov.pts = removePoint(ov.pts, i)
			nov.ids = removeID(ov.ids, i)
			if i < ov.folded {
				// The removed point was in the delta tree: refold over
				// the surviving points. Failure cannot happen (the
				// surviving points already bulk-loaded once).
				delta, deltaP, err := a.foldDelta(nov.pts, nov.ids)
				if err != nil {
					return nil, false
				}
				nov.delta, nov.deltaP, nov.folded = delta, deltaP, len(nov.pts)
			} else {
				nov.folded = ov.folded
			}
			return &nov, true
		}
	}
	var tombs *overlay.TombSet
	if ov != nil {
		tombs = ov.tombs
	}
	nts, ok := tombs.Delete(p, id, a.baseCount(p, id))
	if !ok {
		return nil, false
	}
	var nov overlayState
	if ov != nil {
		nov = *ov
	}
	nov.tombs = nts
	return &nov, true
}

// baseCount returns the multiplicity of (p, id) in the view's base,
// uncharged (tombstone bookkeeping, not a query).
func baseCount(v *viewState, p geom.Point, id int64) int {
	if sp := v.servingPacked(); sp != nil {
		return sp.CountExact(p, id)
	}
	return v.tree.CountExact(p, id)
}

// applier binds the shared write logic to one plain-index view.
func (ix *Index) applier(v *viewState) applier {
	return applier{
		dcfg:      deltaConfig(ix.rcfg),
		baseCount: func(p geom.Point, id int64) int { return baseCount(v, p, id) },
	}
}

// applyInsert returns the successor view for inserting (p, id).
func (ix *Index) applyInsert(v *viewState, p geom.Point, id int64) (*viewState, error) {
	nov, err := ix.applier(v).insert(v.ov, p, id)
	if err != nil {
		return nil, err
	}
	return v.succ(nov), nil
}

// applyDelete returns the successor view for deleting one occurrence of
// (p, id), and whether a matching live entry existed.
func (ix *Index) applyDelete(v *viewState, p geom.Point, id int64) (*viewState, bool) {
	nov, ok := ix.applier(v).delete(v.ov, p, id)
	if !ok {
		return nil, false
	}
	return v.succ(nov), true
}

func removePoint(s []geom.Point, i int) []geom.Point {
	n := make([]geom.Point, 0, len(s)-1)
	n = append(n, s[:i]...)
	return append(n, s[i+1:]...)
}

func removeID(s []int64, i int) []int64 {
	n := make([]int64, 0, len(s)-1)
	n = append(n, s[:i]...)
	return append(n, s[i+1:]...)
}

// liveBase is the enumerable base a compaction materialises: the plain
// index's tree or the sharded index's shard set.
type liveBase interface {
	Len() int
	Dim() int
	All(fn func(p geom.Point, id int64) bool)
}

// materializeLive returns a view's live multiset — base points not
// masked by a tombstone, then overlay points in insertion order — with
// every coordinate deep-copied into fresh heap slabs, so the result
// never aliases a mapped arena that a later Close will unmap.
func materializeLive(base liveBase, ov *overlayState) ([]geom.Point, []int64) {
	n := base.Len()
	if ov != nil {
		n += len(ov.pts)
	}
	dim := base.Dim()
	flat := make([]float64, 0, n*dim)
	pts := make([]geom.Point, 0, n)
	ids := make([]int64, 0, n)
	add := func(p geom.Point, id int64) {
		s := len(flat)
		flat = append(flat, p...)
		pts = append(pts, geom.Point(flat[s:s+dim:s+dim]))
		ids = append(ids, id)
	}
	var drop func(geom.Point, int64) bool
	if ov != nil {
		drop = ov.tombs.Consumer()
	}
	base.All(func(p geom.Point, id int64) bool {
		if drop == nil || !drop(p, id) {
			add(p, id)
		}
		return true
	})
	if ov != nil {
		for i, p := range ov.pts {
			add(p, ov.ids[i])
		}
	}
	return pts, ids
}
