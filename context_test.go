package gnn_test

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"gnn"
)

// cancelFixture builds a dataset large enough that a traversal spans
// many cancellation strides, plus one spread-out query group.
func cancelFixture(t *testing.T, n int) (*gnn.Index, []gnn.Point) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	pts := make([]gnn.Point, n)
	for i := range pts {
		pts[i] = gnn.Point{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	query := []gnn.Point{{10, 10}, {990, 990}, {10, 990}, {990, 10}}
	return ix, query
}

// TestContextLive checks the happy path: a live context changes nothing
// — identical results to the context-free call, for every algorithm.
func TestContextLive(t *testing.T) {
	ix, query := cancelFixture(t, 5000)
	for _, algo := range []gnn.Algorithm{gnn.AlgoMQM, gnn.AlgoSPM, gnn.AlgoMBM, gnn.AlgoBruteForce} {
		want, err := ix.GroupNN(query, gnn.WithAlgorithm(algo), gnn.WithK(5))
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
		got, err := ix.GroupNNContext(ctx, query, gnn.WithAlgorithm(algo), gnn.WithK(5))
		cancel()
		if err != nil {
			t.Fatalf("%v under live context: %v", algo, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d results under context, %d without", algo, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID || got[i].Dist != want[i].Dist {
				t.Fatalf("%v: result %d diverged: %+v vs %+v", algo, i, got[i], want[i])
			}
		}
	}
}

// TestContextPreCanceled checks that a context dead on arrival fails
// fast with the typed error that wraps its context counterpart.
func TestContextPreCanceled(t *testing.T) {
	ix, query := cancelFixture(t, 1000)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.GroupNNContext(ctx, query); !errors.Is(err, gnn.ErrCanceled) {
		t.Fatalf("canceled context: got %v, want ErrCanceled", err)
	}
	if _, err := ix.GroupNNContext(ctx, query); !errors.Is(err, context.Canceled) {
		t.Fatal("ErrCanceled must also match context.Canceled")
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := ix.GroupNNContext(dctx, query); !errors.Is(err, gnn.ErrDeadlineExceeded) {
		t.Fatalf("expired context: got %v, want ErrDeadlineExceeded", err)
	}
	if _, err := ix.GroupNNContext(dctx, query); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("ErrDeadlineExceeded must also match context.DeadlineExceeded")
	}
}

// TestContextMidTraversalCancel cancels while queries are running and
// checks every traversal unwinds with the typed error (never hangs, never
// panics). Cancellation lands mid-flight or pre-start nondeterministically,
// so accept either typed failure arriving, but require that once canceled,
// a subsequent query fails immediately.
func TestContextMidTraversalCancel(t *testing.T) {
	ix, query := cancelFixture(t, 30000)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				_, err := ix.GroupNNContext(ctx, query, gnn.WithK(32), gnn.WithAlgorithm(gnn.AlgoMQM))
				if err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	cancel()
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, gnn.ErrCanceled) {
			t.Fatalf("worker %d: got %v, want ErrCanceled", i, err)
		}
	}
}

// TestContextSharded exercises the forked per-shard checks: live context
// matches the plain call, canceled context fails typed.
func TestContextSharded(t *testing.T) {
	ix, query := cancelFixture(t, 5000)
	pts := make([]gnn.Point, 0, 5000)
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 5000; i++ {
		pts = append(pts, gnn.Point{rng.Float64() * 1000, rng.Float64() * 1000})
	}
	sx, err := gnn.BuildShardedIndex(pts, nil, 4, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer sx.Close()

	want, err := ix.GroupNN(query, gnn.WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sx.GroupNNContext(context.Background(), query, gnn.WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Dist != want[i].Dist {
			t.Fatalf("sharded context result %d diverged: %+v vs %+v", i, got[i], want[i])
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sx.GroupNNContext(ctx, query); !errors.Is(err, gnn.ErrCanceled) {
		t.Fatalf("sharded canceled: got %v, want ErrCanceled", err)
	}
}

// TestBatchContext checks the batch semantics: a canceled context fails
// the batch call and every not-yet-started query entry, with typed errors
// in both places.
func TestBatchContext(t *testing.T) {
	ix, query := cancelFixture(t, 2000)
	queries := make([][]gnn.Point, 16)
	for i := range queries {
		queries[i] = query
	}

	out, err := ix.GroupNNBatchContext(context.Background(), queries, gnn.WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range out {
		if r.Err != nil || len(r.Results) != 3 {
			t.Fatalf("batch entry %d: err=%v results=%d", i, r.Err, len(r.Results))
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err = ix.GroupNNBatchContext(ctx, queries, gnn.WithK(3))
	if !errors.Is(err, gnn.ErrCanceled) {
		t.Fatalf("batch under canceled context: err=%v, want ErrCanceled", err)
	}
	for i, r := range out {
		if !errors.Is(r.Err, gnn.ErrCanceled) {
			t.Fatalf("batch entry %d: err=%v, want ErrCanceled", i, r.Err)
		}
	}
}

// TestCloseDrainsInflight is the regression gate for refcounted Close:
// closing a mapped index while queries hammer it must neither fault nor
// corrupt results — inflight queries finish against the live mapping,
// later ones fail with ErrSnapshotClosed.
func TestCloseDrainsInflight(t *testing.T) {
	_, ix, queries := snapshotFixture(t, 4000, 23)
	dir := t.TempDir()
	path := writeSnapFile(t, dir, "ix.snap", ix.WriteSnapshotFile)
	mx, err := gnn.OpenSnapshotMapped(path)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; ; i++ {
				res, err := mx.GroupNN(queries[(w+i)%len(queries)], gnn.WithK(4))
				if err != nil {
					if !errors.Is(err, gnn.ErrSnapshotClosed) {
						t.Errorf("worker %d: unexpected error %v", w, err)
					}
					return
				}
				if len(res) != 4 {
					t.Errorf("worker %d: %d results", w, len(res))
					return
				}
			}
		}(w)
	}
	close(start)
	time.Sleep(5 * time.Millisecond)
	if err := mx.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mx.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	wg.Wait()
	if _, err := mx.GroupNN(queries[0]); !errors.Is(err, gnn.ErrSnapshotClosed) {
		t.Fatalf("query after close: got %v, want ErrSnapshotClosed", err)
	}
}

// TestShardedCloseDrainsInflight is TestCloseDrainsInflight for the
// sharded mapped open, which additionally stops resident scatter workers
// mid-storm.
func TestShardedCloseDrainsInflight(t *testing.T) {
	pts, _, queries := snapshotFixture(t, 4000, 29)
	sx, err := gnn.BuildShardedIndex(pts, nil, 4, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := writeSnapFile(t, dir, "sx.snap", sx.WriteSnapshotFile)
	sx.Close()
	mx, err := gnn.OpenShardedSnapshotMapped(path)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; ; i++ {
				_, err := mx.GroupNN(queries[(w+i)%len(queries)], gnn.WithK(4))
				if err != nil {
					if !errors.Is(err, gnn.ErrSnapshotClosed) {
						t.Errorf("worker %d: unexpected error %v", w, err)
					}
					return
				}
			}
		}(w)
	}
	close(start)
	time.Sleep(5 * time.Millisecond)
	if err := mx.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if _, err := mx.GroupNN(queries[0]); !errors.Is(err, gnn.ErrSnapshotClosed) {
		t.Fatalf("query after close: got %v, want ErrSnapshotClosed", err)
	}
}

// TestIteratorHoldsCloseOpen checks that an open iterator blocks Close
// until released, and that exhaustion releases automatically.
func TestIteratorHoldsCloseOpen(t *testing.T) {
	_, ix, queries := snapshotFixture(t, 1500, 31)
	dir := t.TempDir()
	path := writeSnapFile(t, dir, "ix.snap", ix.WriteSnapshotFile)
	mx, err := gnn.OpenSnapshotMapped(path)
	if err != nil {
		t.Fatal(err)
	}

	it, err := mx.GroupNNIterator(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Next(); !ok {
		t.Fatal("iterator empty")
	}
	closed := make(chan error, 1)
	go func() { closed <- mx.Close() }()
	select {
	case <-closed:
		t.Fatal("Close returned while an iterator was open")
	case <-time.After(20 * time.Millisecond):
	}
	it.Close()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not finish after iterator release")
	}

	// Exhaustion auto-releases: drain a fresh mapped index's iterator
	// fully, never call Close on it, and the index must still close.
	mx2, err := gnn.OpenSnapshotMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	it2, err := mx2.GroupNNIterator(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := it2.Next(); !ok {
			break
		}
	}
	done := make(chan error, 1)
	go func() { done <- mx2.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung on a fully drained iterator")
	}
}
