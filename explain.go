package gnn

import (
	"context"
	"time"

	"gnn/internal/core"
	"gnn/internal/pagestore"
)

// TraceCounters is the public mirror of the engine's per-query pruning
// diagnostics (core.Trace): how many nodes a traversal expanded, what
// each heuristic pruned, and how many exact group-distance evaluations
// were paid. Which counters are populated depends on the algorithm —
// MBM fills the heuristic-2/3 (and, for MAX, MEB) counters, SPM the
// heuristic-1 counters, MQM the stream counters, brute force the scan
// counters. On a sharded index every counter is the exact sum over the
// shards.
type TraceCounters struct {
	NodesVisited      int `json:"nodes_visited"`
	NodesPrunedH1     int `json:"nodes_pruned_h1,omitempty"`
	PointsPrunedH1    int `json:"points_pruned_h1,omitempty"`
	NodesPrunedH2     int `json:"nodes_pruned_h2,omitempty"`
	NodesPrunedH3     int `json:"nodes_pruned_h3,omitempty"`
	PointsPrunedQuick int `json:"points_pruned_quick,omitempty"`
	NodesPrunedMEB    int `json:"nodes_pruned_meb,omitempty"`
	PointsPrunedMEB   int `json:"points_pruned_meb,omitempty"`
	StreamAdvances    int `json:"stream_advances,omitempty"`
	PointsScanned     int `json:"points_scanned,omitempty"`
	ExactDistances    int `json:"exact_distances"`
}

func traceCounters(tr *core.Trace) TraceCounters {
	return TraceCounters{
		NodesVisited:      tr.NodesVisited,
		NodesPrunedH1:     tr.NodesPrunedH1,
		PointsPrunedH1:    tr.PointsPrunedH1,
		NodesPrunedH2:     tr.NodesPrunedH2,
		NodesPrunedH3:     tr.NodesPrunedH3,
		PointsPrunedQuick: tr.PointsPrunedQuick,
		NodesPrunedMEB:    tr.NodesPrunedMEB,
		PointsPrunedMEB:   tr.PointsPrunedMEB,
		StreamAdvances:    tr.StreamAdvances,
		PointsScanned:     tr.PointsScanned,
		ExactDistances:    tr.ExactDistances,
	}
}

// StageTiming is one timed step of a query's execution. Stage names:
// "query" (the whole traversal of an unsharded, non-overlay index),
// "scatter" (one entry per shard, Shard set), "merge" (the scatter
// gather), the overlay sources "base" / "delta" / "pending" and their
// final "overlay-merge" ("merge" on a plain index), and — on queries
// arriving through the HTTP server — "admission" (time spent waiting
// for an admission slot).
type StageTiming struct {
	Name string `json:"name"`
	// Shard is the shard index for per-shard stages, -1 otherwise.
	Shard int `json:"shard"`
	// DurationUS is the stage's wall time in microseconds.
	DurationUS int64 `json:"duration_us"`
}

// QueryExplain is the structured execution report of one GNN query:
// which algorithm/aggregate/layout actually served it, where the time
// went stage by stage, what the pruning heuristics saved, and what I/O
// it cost. Collecting it changes no results — tracing only increments
// counters and reads clocks — so an explained query returns exactly the
// neighbors the plain call returns.
type QueryExplain struct {
	// Algorithm is the resolved processing method ("MBM" even when the
	// request said auto).
	Algorithm string `json:"algorithm"`
	// Aggregate is the distance combination served ("sum", "max", "min").
	Aggregate string `json:"aggregate"`
	// MaxKernel records the MAX aggregate's kernel provenance: "meb" for
	// the dedicated minimum-enclosing-ball kernel, "generic" under
	// WithGenericMax. Empty for SUM/MIN queries.
	MaxKernel string `json:"max_kernel,omitempty"`
	// Layout is the representation the traversal walked: "packed" or
	// "dynamic".
	Layout string `json:"layout"`
	// K and GroupSize echo the query shape.
	K         int `json:"k"`
	GroupSize int `json:"group_size"`
	// Shards is the shard count of a sharded index, 0 for a plain Index.
	Shards int `json:"shards,omitempty"`
	// Overlay reports whether un-compacted writes (delta/tombstones) were
	// merged into the answer.
	Overlay bool `json:"overlay"`
	// Stages are the per-stage wall times in execution order.
	Stages []StageTiming `json:"stages"`
	// Trace are the pruning counters.
	Trace TraceCounters `json:"trace"`
	// Cost is the query's I/O cost (the paper's NA metric and friends).
	Cost Cost `json:"cost"`
	// TotalUS is the query's total wall time in microseconds, measured
	// around the whole call (admission to merged results).
	TotalUS int64 `json:"total_us"`
}

// explainFrom assembles the public report from a completed probe.
func explainFrom(c queryConfig, groupSize, shards int, tk pagestore.CostTracker, total time.Duration) *QueryExplain {
	p := c.probe
	algo := c.algo
	if algo == AlgoAuto {
		algo = AlgoMBM
	}
	layout := "dynamic"
	if p.packed {
		layout = "packed"
	}
	ex := &QueryExplain{
		Algorithm: algo.String(),
		Aggregate: c.aggregate.String(),
		Layout:    layout,
		K:         c.k,
		GroupSize: groupSize,
		Shards:    shards,
		Overlay:   p.overlay,
		Stages:    make([]StageTiming, 0, len(p.stages.Stages)),
		Trace:     traceCounters(&p.trace),
		Cost:      costOf(tk),
		TotalUS:   total.Microseconds(),
	}
	if c.aggregate == MaxDist && (algo == AlgoMBM) {
		ex.MaxKernel = "meb"
		if c.genericMax {
			ex.MaxKernel = "generic"
		}
	}
	for _, s := range p.stages.Stages {
		ex.Stages = append(ex.Stages, StageTiming{Name: s.Name, Shard: s.Shard, DurationUS: s.Duration.Microseconds()})
	}
	return ex
}

// GroupNNExplain answers the query exactly like GroupNN and additionally
// returns a QueryExplain describing how: per-stage wall times, pruning
// counters and execution provenance. The diagnostics are collected with
// plain counter increments, so results are bit-identical to the
// untraced call. Safe for unlimited concurrent callers.
func (ix *Index) GroupNNExplain(query []Point, opts ...QueryOption) ([]Result, *QueryExplain, error) {
	return ix.GroupNNExplainContext(context.Background(), query, opts...)
}

// GroupNNExplainContext is GroupNNExplain under a context (see
// GroupNNContext for the cancellation contract).
func (ix *Index) GroupNNExplainContext(ctx context.Context, query []Point, opts ...QueryOption) ([]Result, *QueryExplain, error) {
	c := buildConfig(opts)
	c.cancel = core.NewCancelCheck(ctx)
	c.probe = &explainProbe{}
	var tk pagestore.CostTracker
	start := time.Now()
	res, err := ix.groupNN(query, c, &tk, nil)
	if err != nil {
		return nil, nil, err
	}
	return res, explainFrom(c, len(query), 0, tk, time.Since(start)), nil
}

// GroupNNExplain is Index.GroupNNExplain for the sharded index: the
// report additionally carries one "scatter" stage per shard (with its
// shard index and wall time) and trace counters summed over the shards.
func (sx *ShardedIndex) GroupNNExplain(query []Point, opts ...QueryOption) ([]Result, *QueryExplain, error) {
	return sx.GroupNNExplainContext(context.Background(), query, opts...)
}

// GroupNNExplainContext is GroupNNExplain under a context for the
// sharded index.
func (sx *ShardedIndex) GroupNNExplainContext(ctx context.Context, query []Point, opts ...QueryOption) ([]Result, *QueryExplain, error) {
	c := buildConfig(opts)
	c.cancel = core.NewCancelCheck(ctx)
	c.probe = &explainProbe{}
	var tk pagestore.CostTracker
	start := time.Now()
	res, err := sx.groupNN(query, c, &tk, nil, defaultScatterWorkers())
	if err != nil {
		return nil, nil, err
	}
	return res, explainFrom(c, len(query), sx.NumShards(), tk, time.Since(start)), nil
}
