// Package pagestore simulates the disk subsystem of the paper's testbed.
//
// The paper measures algorithms in node accesses (NA) on R*-trees with
// 1 KB pages (50 entries per node) and notes that MQM "benefits from the
// existence of an LRU buffer". This package provides those mechanisms,
// decoupled from the tree itself and safe for concurrent queries:
//
//   - CostTracker tallies the accesses of ONE query. It is a plain struct
//     owned by a single goroutine, so it needs no locking.
//   - Accountant is the index-wide disk model shared by every concurrent
//     query: an atomic aggregate of all accesses plus an optional
//     mutex-guarded LRU buffer that splits them into buffer hits and
//     physical reads (the NA a disk system would actually pay).
//   - LRU is a classic least-recently-used page buffer over abstract page
//     identifiers.
//   - PointFile models a flat disk file of points (the non-indexed,
//     disk-resident query set Q of §4), read block-by-block with page-read
//     accounting, as consumed by F-MQM and F-MBM.
package pagestore

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// PageID identifies a page (an R-tree node or a slot of a flat file).
type PageID int64

// DefaultPageCapacity is the paper's 50 entries per 1 KB page.
const DefaultPageCapacity = 50

// CostTracker accumulates the I/O cost of a single query. Each query
// allocates its own tracker and reads it when done; because a tracker is
// never shared between goroutines, plain fields suffice and there is no
// synchronisation cost on the per-access hot path.
type CostTracker struct {
	// Logical counts every page visit, before buffering.
	Logical int64
	// Physical counts buffer misses — the paper's NA metric when a buffer
	// is attached, equal to Logical otherwise.
	Physical int64
	// Hits counts accesses served by the LRU buffer.
	Hits int64
}

// record tallies one access with the given buffer outcome.
func (c *CostTracker) record(hit bool) {
	c.Logical++
	if hit {
		c.Hits++
	} else {
		c.Physical++
	}
}

// Add merges the counts of other into c (used to aggregate per-query costs
// into workload totals).
func (c *CostTracker) Add(other CostTracker) {
	c.Logical += other.Logical
	c.Physical += other.Physical
	c.Hits += other.Hits
}

// Reset zeroes the tracker.
func (c *CostTracker) Reset() { *c = CostTracker{} }

// Accountant models the disk subsystem shared by every query against one
// index: the aggregate access counts (atomic, so unlimited concurrent
// queries may charge it) and the optional LRU buffer (behind a small mutex,
// so warm-buffer semantics survive concurrency). Every access is charged to
// the aggregate and, when the caller supplies one, to a per-query
// CostTracker — with the same hit/miss outcome, so per-query costs always
// sum exactly to the aggregate.
type Accountant struct {
	logical  atomic.Int64
	physical atomic.Int64
	hits     atomic.Int64

	hasBuffer atomic.Bool // fast path: skip the lock when no buffer is attached
	mu        sync.Mutex
	buffer    *LRU
}

// NewAccountant returns an accountant, with an LRU buffer of bufferPages
// pages attached when bufferPages > 0.
func NewAccountant(bufferPages int) *Accountant {
	a := &Accountant{}
	if bufferPages > 0 {
		a.SetBuffer(NewLRU(bufferPages))
	}
	return a
}

// SetBuffer attaches (or detaches, with nil) an LRU buffer. Counts are not
// reset; call Reset for a fresh measurement.
func (a *Accountant) SetBuffer(b *LRU) {
	a.mu.Lock()
	a.buffer = b
	a.mu.Unlock()
	a.hasBuffer.Store(b != nil)
}

// Access records one access to the page, charging both the aggregate and,
// when tk is non-nil, the caller's per-query tracker. It returns true when
// the access was served by the buffer (a hit), false when it cost a
// physical read. Without a buffer every access is physical.
func (a *Accountant) Access(id PageID, tk *CostTracker) bool {
	hit := false
	if a.hasBuffer.Load() {
		a.mu.Lock()
		if a.buffer != nil {
			hit = a.buffer.Access(id)
		}
		a.mu.Unlock()
	}
	a.logical.Add(1)
	if hit {
		a.hits.Add(1)
	} else {
		a.physical.Add(1)
	}
	if tk != nil {
		tk.record(hit)
	}
	return hit
}

// Logical returns the aggregate number of logical page accesses.
func (a *Accountant) Logical() int64 { return a.logical.Load() }

// Physical returns the aggregate number of physical reads (buffer misses).
// This is the paper's NA metric when a buffer is attached.
func (a *Accountant) Physical() int64 { return a.physical.Load() }

// Hits returns the aggregate number of buffer hits.
func (a *Accountant) Hits() int64 { return a.hits.Load() }

// Totals returns the aggregate counts as a CostTracker snapshot.
func (a *Accountant) Totals() CostTracker {
	return CostTracker{Logical: a.Logical(), Physical: a.Physical(), Hits: a.Hits()}
}

// Reset zeroes the aggregate counters, leaving any attached buffer's
// contents intact.
func (a *Accountant) Reset() {
	a.logical.Store(0)
	a.physical.Store(0)
	a.hits.Store(0)
}

// ResetAll zeroes the aggregate counters and drops the buffer contents,
// modelling a cold cache.
func (a *Accountant) ResetAll() {
	a.Reset()
	a.mu.Lock()
	if a.buffer != nil {
		a.buffer.Clear()
	}
	a.mu.Unlock()
}

// LRU is a least-recently-used buffer of page IDs with fixed capacity.
// The zero value is unusable; construct with NewLRU. An LRU is not safe for
// concurrent use on its own — Accountant serialises access to its buffer.
type LRU struct {
	capacity int
	nodes    map[PageID]*lruNode
	head     *lruNode // most recently used
	tail     *lruNode // least recently used
}

type lruNode struct {
	id         PageID
	prev, next *lruNode
}

// NewLRU returns a buffer holding at most capacity pages. It panics when
// capacity < 1: a zero-capacity buffer is expressed by not attaching one.
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		panic("pagestore: LRU capacity must be >= 1")
	}
	return &LRU{capacity: capacity, nodes: make(map[PageID]*lruNode, capacity)}
}

// Capacity returns the buffer's page capacity.
func (l *LRU) Capacity() int { return l.capacity }

// Len returns the number of buffered pages.
func (l *LRU) Len() int { return len(l.nodes) }

// Contains reports whether the page is buffered, without touching recency.
func (l *LRU) Contains(id PageID) bool {
	_, ok := l.nodes[id]
	return ok
}

// Access touches the page: returns true if it was already buffered (hit),
// otherwise inserts it, evicting the least-recently-used page if full.
func (l *LRU) Access(id PageID) bool {
	if n, ok := l.nodes[id]; ok {
		l.moveToFront(n)
		return true
	}
	n := &lruNode{id: id}
	l.nodes[id] = n
	l.pushFront(n)
	if len(l.nodes) > l.capacity {
		evict := l.tail
		l.unlink(evict)
		delete(l.nodes, evict.id)
	}
	return false
}

// Clear empties the buffer.
func (l *LRU) Clear() {
	l.nodes = make(map[PageID]*lruNode, l.capacity)
	l.head, l.tail = nil, nil
}

func (l *LRU) pushFront(n *lruNode) {
	n.prev = nil
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

func (l *LRU) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (l *LRU) moveToFront(n *lruNode) {
	if l.head == n {
		return
	}
	l.unlink(n)
	l.pushFront(n)
}

// ErrOutOfRange reports a block index beyond the end of a PointFile.
var ErrOutOfRange = errors.New("pagestore: block index out of range")

// PointFile models the flat, non-indexed query file of §4: a sequence of
// 2-D points packed into pages of PointsPerPage entries. Reading a block
// charges one physical read per page through the file's Accountant and the
// reader's per-query tracker. Concurrent reads are safe.
type PointFile struct {
	points        [][2]float64
	pointsPerPage int
	blockPoints   int // points per in-memory block (10,000 in §5.2)
	acct          *Accountant
	basePage      PageID
}

// NewPointFile wraps points as a disk file. pointsPerPage is the page
// capacity (the paper's 50); blockPoints is the number of points loaded per
// memory block (the paper's 10,000). basePage offsets the file's page IDs
// so several files can share one buffer without collisions. A nil acct gets
// a private unbuffered accountant.
func NewPointFile(points [][2]float64, pointsPerPage, blockPoints int, acct *Accountant, basePage PageID) (*PointFile, error) {
	if pointsPerPage < 1 {
		return nil, fmt.Errorf("pagestore: pointsPerPage %d < 1", pointsPerPage)
	}
	if blockPoints < 1 {
		return nil, fmt.Errorf("pagestore: blockPoints %d < 1", blockPoints)
	}
	if acct == nil {
		acct = NewAccountant(0)
	}
	return &PointFile{
		points:        points,
		pointsPerPage: pointsPerPage,
		blockPoints:   blockPoints,
		acct:          acct,
		basePage:      basePage,
	}, nil
}

// Len returns the number of points in the file.
func (f *PointFile) Len() int { return len(f.points) }

// NumBlocks returns the number of memory blocks the file splits into.
func (f *PointFile) NumBlocks() int {
	if len(f.points) == 0 {
		return 0
	}
	return (len(f.points) + f.blockPoints - 1) / f.blockPoints
}

// BlockLen returns the number of points in block i.
func (f *PointFile) BlockLen(i int) (int, error) {
	if i < 0 || i >= f.NumBlocks() {
		return 0, fmt.Errorf("%w: block %d of %d", ErrOutOfRange, i, f.NumBlocks())
	}
	lo := i * f.blockPoints
	hi := lo + f.blockPoints
	if hi > len(f.points) {
		hi = len(f.points)
	}
	return hi - lo, nil
}

// ReadBlock loads block i into memory, charging one access per page the
// block spans to the file's accountant and, when tk is non-nil, to the
// caller's per-query tracker. The returned slice aliases the file's storage
// and must be treated as read-only.
func (f *PointFile) ReadBlock(i int, tk *CostTracker) ([][2]float64, error) {
	if i < 0 || i >= f.NumBlocks() {
		return nil, fmt.Errorf("%w: block %d of %d", ErrOutOfRange, i, f.NumBlocks())
	}
	lo := i * f.blockPoints
	hi := lo + f.blockPoints
	if hi > len(f.points) {
		hi = len(f.points)
	}
	firstPage := lo / f.pointsPerPage
	lastPage := (hi - 1) / f.pointsPerPage
	for p := firstPage; p <= lastPage; p++ {
		f.acct.Access(f.basePage+PageID(p), tk)
	}
	return f.points[lo:hi], nil
}

// Accountant exposes the file's shared accountant.
func (f *PointFile) Accountant() *Accountant { return f.acct }

// Pages returns the total number of pages the file occupies.
func (f *PointFile) Pages() int {
	return (len(f.points) + f.pointsPerPage - 1) / f.pointsPerPage
}
