// Package pagestore simulates the disk subsystem of the paper's testbed.
//
// The paper measures algorithms in node accesses (NA) on R*-trees with
// 1 KB pages (50 entries per node) and notes that MQM "benefits from the
// existence of an LRU buffer". This package provides exactly those two
// mechanisms, decoupled from the tree itself:
//
//   - AccessCounter tallies logical accesses and, when an LRU buffer is
//     attached, splits them into buffer hits and physical reads (the NA a
//     disk system would actually pay).
//   - LRU is a classic least-recently-used page buffer over abstract page
//     identifiers.
//   - PointFile models a flat disk file of points (the non-indexed,
//     disk-resident query set Q of §4), read block-by-block with page-read
//     accounting, as consumed by F-MQM and F-MBM.
package pagestore

import (
	"errors"
	"fmt"
)

// PageID identifies a page (an R-tree node or a slot of a flat file).
type PageID int64

// DefaultPageCapacity is the paper's 50 entries per 1 KB page.
const DefaultPageCapacity = 50

// AccessCounter tracks the I/O cost of a traversal. The zero value counts
// logical accesses only; attach a buffer with SetBuffer to model caching.
// Not safe for concurrent use — each query runs single-threaded, as in the
// paper.
type AccessCounter struct {
	logical  int64
	physical int64
	hits     int64
	buffer   *LRU
}

// SetBuffer attaches (or detaches, with nil) an LRU buffer. Counts are not
// reset; call Reset for a fresh measurement.
func (c *AccessCounter) SetBuffer(b *LRU) { c.buffer = b }

// Access records one access to the page. It returns true when the access
// was served by the buffer (a hit), false when it cost a physical read.
// Without a buffer every access is physical.
func (c *AccessCounter) Access(id PageID) bool {
	c.logical++
	if c.buffer != nil && c.buffer.Access(id) {
		c.hits++
		return true
	}
	c.physical++
	return false
}

// Logical returns the number of logical page accesses.
func (c *AccessCounter) Logical() int64 { return c.logical }

// Physical returns the number of physical reads (buffer misses). This is
// the paper's NA metric when a buffer is attached.
func (c *AccessCounter) Physical() int64 { return c.physical }

// Hits returns the number of buffer hits.
func (c *AccessCounter) Hits() int64 { return c.hits }

// Reset zeroes all counters, leaving any attached buffer's contents intact.
func (c *AccessCounter) Reset() { c.logical, c.physical, c.hits = 0, 0, 0 }

// ResetAll zeroes the counters and drops the buffer contents, modelling a
// cold cache.
func (c *AccessCounter) ResetAll() {
	c.Reset()
	if c.buffer != nil {
		c.buffer.Clear()
	}
}

// Add merges the counts of other into c (used to aggregate per-query costs
// into workload totals).
func (c *AccessCounter) Add(other *AccessCounter) {
	c.logical += other.logical
	c.physical += other.physical
	c.hits += other.hits
}

// LRU is a least-recently-used buffer of page IDs with fixed capacity.
// The zero value is unusable; construct with NewLRU.
type LRU struct {
	capacity int
	nodes    map[PageID]*lruNode
	head     *lruNode // most recently used
	tail     *lruNode // least recently used
}

type lruNode struct {
	id         PageID
	prev, next *lruNode
}

// NewLRU returns a buffer holding at most capacity pages. It panics when
// capacity < 1: a zero-capacity buffer is expressed by not attaching one.
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		panic("pagestore: LRU capacity must be >= 1")
	}
	return &LRU{capacity: capacity, nodes: make(map[PageID]*lruNode, capacity)}
}

// Capacity returns the buffer's page capacity.
func (l *LRU) Capacity() int { return l.capacity }

// Len returns the number of buffered pages.
func (l *LRU) Len() int { return len(l.nodes) }

// Contains reports whether the page is buffered, without touching recency.
func (l *LRU) Contains(id PageID) bool {
	_, ok := l.nodes[id]
	return ok
}

// Access touches the page: returns true if it was already buffered (hit),
// otherwise inserts it, evicting the least-recently-used page if full.
func (l *LRU) Access(id PageID) bool {
	if n, ok := l.nodes[id]; ok {
		l.moveToFront(n)
		return true
	}
	n := &lruNode{id: id}
	l.nodes[id] = n
	l.pushFront(n)
	if len(l.nodes) > l.capacity {
		evict := l.tail
		l.unlink(evict)
		delete(l.nodes, evict.id)
	}
	return false
}

// Clear empties the buffer.
func (l *LRU) Clear() {
	l.nodes = make(map[PageID]*lruNode, l.capacity)
	l.head, l.tail = nil, nil
}

func (l *LRU) pushFront(n *lruNode) {
	n.prev = nil
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

func (l *LRU) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (l *LRU) moveToFront(n *lruNode) {
	if l.head == n {
		return
	}
	l.unlink(n)
	l.pushFront(n)
}

// ErrOutOfRange reports a block index beyond the end of a PointFile.
var ErrOutOfRange = errors.New("pagestore: block index out of range")

// PointFile models the flat, non-indexed query file of §4: a sequence of
// 2-D points packed into pages of PointsPerPage entries. Reading a block
// charges one physical read per page through the file's AccessCounter.
type PointFile struct {
	points        [][2]float64
	pointsPerPage int
	blockPoints   int // points per in-memory block (10,000 in §5.2)
	counter       *AccessCounter
	basePage      PageID
}

// NewPointFile wraps points as a disk file. pointsPerPage is the page
// capacity (the paper's 50); blockPoints is the number of points loaded per
// memory block (the paper's 10,000). basePage offsets the file's page IDs
// so several files can share one buffer without collisions.
func NewPointFile(points [][2]float64, pointsPerPage, blockPoints int, counter *AccessCounter, basePage PageID) (*PointFile, error) {
	if pointsPerPage < 1 {
		return nil, fmt.Errorf("pagestore: pointsPerPage %d < 1", pointsPerPage)
	}
	if blockPoints < 1 {
		return nil, fmt.Errorf("pagestore: blockPoints %d < 1", blockPoints)
	}
	if counter == nil {
		counter = &AccessCounter{}
	}
	return &PointFile{
		points:        points,
		pointsPerPage: pointsPerPage,
		blockPoints:   blockPoints,
		counter:       counter,
		basePage:      basePage,
	}, nil
}

// Len returns the number of points in the file.
func (f *PointFile) Len() int { return len(f.points) }

// NumBlocks returns the number of memory blocks the file splits into.
func (f *PointFile) NumBlocks() int {
	if len(f.points) == 0 {
		return 0
	}
	return (len(f.points) + f.blockPoints - 1) / f.blockPoints
}

// BlockLen returns the number of points in block i.
func (f *PointFile) BlockLen(i int) (int, error) {
	if i < 0 || i >= f.NumBlocks() {
		return 0, fmt.Errorf("%w: block %d of %d", ErrOutOfRange, i, f.NumBlocks())
	}
	lo := i * f.blockPoints
	hi := lo + f.blockPoints
	if hi > len(f.points) {
		hi = len(f.points)
	}
	return hi - lo, nil
}

// ReadBlock loads block i into memory, charging one access per page the
// block spans. The returned slice aliases the file's storage and must be
// treated as read-only.
func (f *PointFile) ReadBlock(i int) ([][2]float64, error) {
	if i < 0 || i >= f.NumBlocks() {
		return nil, fmt.Errorf("%w: block %d of %d", ErrOutOfRange, i, f.NumBlocks())
	}
	lo := i * f.blockPoints
	hi := lo + f.blockPoints
	if hi > len(f.points) {
		hi = len(f.points)
	}
	firstPage := lo / f.pointsPerPage
	lastPage := (hi - 1) / f.pointsPerPage
	for p := firstPage; p <= lastPage; p++ {
		f.counter.Access(f.basePage + PageID(p))
	}
	return f.points[lo:hi], nil
}

// Counter exposes the file's access counter.
func (f *PointFile) Counter() *AccessCounter { return f.counter }

// Pages returns the total number of pages the file occupies.
func (f *PointFile) Pages() int {
	return (len(f.points) + f.pointsPerPage - 1) / f.pointsPerPage
}
