package pagestore

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func TestAccountantNoBuffer(t *testing.T) {
	a := NewAccountant(0)
	var tk CostTracker
	for i := 0; i < 5; i++ {
		if hit := a.Access(PageID(i%2), &tk); hit {
			t.Fatal("hit without buffer")
		}
	}
	if a.Logical() != 5 || a.Physical() != 5 || a.Hits() != 0 {
		t.Fatalf("aggregate = %d/%d/%d", a.Logical(), a.Physical(), a.Hits())
	}
	if tk.Logical != 5 || tk.Physical != 5 || tk.Hits != 0 {
		t.Fatalf("tracker = %d/%d/%d", tk.Logical, tk.Physical, tk.Hits)
	}
	a.Reset()
	if a.Logical() != 0 || a.Physical() != 0 {
		t.Fatal("Reset did not zero")
	}
}

func TestAccountantWithBuffer(t *testing.T) {
	a := NewAccountant(2)
	var tk CostTracker
	a.Access(1, &tk) // miss
	a.Access(1, &tk) // hit
	a.Access(2, &tk) // miss
	a.Access(1, &tk) // hit
	a.Access(3, &tk) // miss, evicts 2 (LRU)
	a.Access(2, &tk) // miss again
	if a.Logical() != 6 || a.Physical() != 4 || a.Hits() != 2 {
		t.Fatalf("aggregate = %d/%d/%d, want 6/4/2", a.Logical(), a.Physical(), a.Hits())
	}
	if tk.Logical != 6 || tk.Physical != 4 || tk.Hits != 2 {
		t.Fatalf("tracker = %d/%d/%d, want 6/4/2", tk.Logical, tk.Physical, tk.Hits)
	}
}

func TestAccountantNilTracker(t *testing.T) {
	a := NewAccountant(0)
	a.Access(1, nil)
	if a.Logical() != 1 {
		t.Fatalf("aggregate logical = %d", a.Logical())
	}
}

func TestCostTrackerAddReset(t *testing.T) {
	var x, y CostTracker
	x.record(false)
	y.record(false)
	y.record(true)
	x.Add(y)
	if x.Logical != 3 || x.Physical != 2 || x.Hits != 1 {
		t.Fatalf("Add result = %d/%d/%d", x.Logical, x.Physical, x.Hits)
	}
	x.Reset()
	if x != (CostTracker{}) {
		t.Fatal("Reset did not zero")
	}
}

func TestResetAllClearsBuffer(t *testing.T) {
	a := NewAccountant(4)
	a.Access(1, nil)
	a.ResetAll()
	if hit := a.Access(1, nil); hit {
		t.Fatal("buffer survived ResetAll")
	}
}

// TestAccountantConcurrentSums is the core invariant of the per-query
// refactor: under arbitrary interleaving, every access increments exactly
// one of hit/miss on BOTH the aggregate and the caller's tracker, so the
// per-query trackers sum exactly to the aggregate.
func TestAccountantConcurrentSums(t *testing.T) {
	for _, bufferPages := range []int{0, 8} {
		a := NewAccountant(bufferPages)
		const workers, accesses = 8, 2000
		trackers := make([]CostTracker, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				for i := 0; i < accesses; i++ {
					a.Access(PageID(rng.Intn(32)), &trackers[w])
				}
			}(w)
		}
		wg.Wait()
		var sum CostTracker
		for i := range trackers {
			sum.Add(trackers[i])
		}
		if sum != a.Totals() {
			t.Fatalf("buffer=%d: tracker sum %+v != aggregate %+v", bufferPages, sum, a.Totals())
		}
		if sum.Logical != workers*accesses || sum.Physical+sum.Hits != sum.Logical {
			t.Fatalf("buffer=%d: inconsistent sum %+v", bufferPages, sum)
		}
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	l := NewLRU(3)
	for _, id := range []PageID{1, 2, 3} {
		if l.Access(id) {
			t.Fatalf("unexpected hit for %d", id)
		}
	}
	l.Access(1)      // 1 becomes MRU; order now 1,3,2
	if l.Access(4) { // evicts 2
		t.Fatal("4 should miss")
	}
	if l.Contains(2) {
		t.Fatal("2 should have been evicted")
	}
	for _, id := range []PageID{1, 3, 4} {
		if !l.Contains(id) {
			t.Fatalf("%d should be buffered", id)
		}
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestLRUSingleSlot(t *testing.T) {
	l := NewLRU(1)
	if l.Access(1) {
		t.Fatal("first access hit")
	}
	if !l.Access(1) {
		t.Fatal("repeat access missed")
	}
	l.Access(2)
	if l.Contains(1) {
		t.Fatal("capacity-1 buffer kept two pages")
	}
	if l.Capacity() != 1 {
		t.Fatal("Capacity wrong")
	}
}

func TestLRUClear(t *testing.T) {
	l := NewLRU(2)
	l.Access(1)
	l.Access(2)
	l.Clear()
	if l.Len() != 0 || l.Contains(1) {
		t.Fatal("Clear left entries")
	}
	if l.Access(1) {
		t.Fatal("hit after Clear")
	}
}

func TestLRUPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 did not panic")
		}
	}()
	NewLRU(0)
}

func TestLRUStress(t *testing.T) {
	// Differential test against a straightforward slice-based model.
	l := NewLRU(8)
	var model []PageID
	rng := rand.New(rand.NewSource(5))
	find := func(id PageID) int {
		for i, v := range model {
			if v == id {
				return i
			}
		}
		return -1
	}
	for i := 0; i < 5000; i++ {
		id := PageID(rng.Intn(20))
		wantHit := find(id) >= 0
		if got := l.Access(id); got != wantHit {
			t.Fatalf("step %d: Access(%d) = %v, want %v", i, id, got, wantHit)
		}
		if j := find(id); j >= 0 {
			model = append(model[:j], model[j+1:]...)
		}
		model = append([]PageID{id}, model...)
		if len(model) > 8 {
			model = model[:8]
		}
		if l.Len() != len(model) {
			t.Fatalf("step %d: Len %d vs model %d", i, l.Len(), len(model))
		}
	}
}

func mkPoints(n int) [][2]float64 {
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{float64(i), float64(i)}
	}
	return pts
}

func TestPointFileBlocks(t *testing.T) {
	a := NewAccountant(0)
	f, err := NewPointFile(mkPoints(25), 10, 7, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 25 || f.NumBlocks() != 4 || f.Pages() != 3 {
		t.Fatalf("Len/NumBlocks/Pages = %d/%d/%d", f.Len(), f.NumBlocks(), f.Pages())
	}
	var tk CostTracker
	for i, want := range []int{7, 7, 7, 4} {
		n, err := f.BlockLen(i)
		if err != nil || n != want {
			t.Fatalf("BlockLen(%d) = %d, %v", i, n, err)
		}
		blk, err := f.ReadBlock(i, &tk)
		if err != nil || len(blk) != want {
			t.Fatalf("ReadBlock(%d) len = %d, %v", i, len(blk), err)
		}
	}
	// Block 0 spans page 0 (pts 0-6): 1 page. Block 1 spans pages 0-1: 2.
	// Block 2 (pts 14-20) spans pages 1-2: 2. Block 3 (21-24) page 2: 1.
	if a.Logical() != 6 || tk.Logical != 6 {
		t.Fatalf("page reads = %d aggregate / %d tracker, want 6", a.Logical(), tk.Logical)
	}
}

func TestPointFileOutOfRange(t *testing.T) {
	f, _ := NewPointFile(mkPoints(5), 10, 5, nil, 0)
	if _, err := f.ReadBlock(1, nil); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("ReadBlock(1) err = %v", err)
	}
	if _, err := f.ReadBlock(-1, nil); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("ReadBlock(-1) err = %v", err)
	}
	if _, err := f.BlockLen(99); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("BlockLen(99) err = %v", err)
	}
}

func TestPointFileValidation(t *testing.T) {
	if _, err := NewPointFile(nil, 0, 5, nil, 0); err == nil {
		t.Fatal("pointsPerPage 0 accepted")
	}
	if _, err := NewPointFile(nil, 5, 0, nil, 0); err == nil {
		t.Fatal("blockPoints 0 accepted")
	}
	f, err := NewPointFile(nil, 5, 5, nil, 0)
	if err != nil || f.NumBlocks() != 0 || f.Pages() != 0 {
		t.Fatal("empty file mishandled")
	}
}

func TestPointFileSharedBuffer(t *testing.T) {
	// Two files sharing an accountant+buffer must not collide on page IDs.
	a := NewAccountant(100)
	f1, _ := NewPointFile(mkPoints(10), 10, 10, a, 0)
	f2, _ := NewPointFile(mkPoints(10), 10, 10, a, 1000)
	f1.ReadBlock(0, nil)
	f2.ReadBlock(0, nil)
	if a.Hits() != 0 {
		t.Fatal("distinct files shared a page ID")
	}
	f1.ReadBlock(0, nil)
	if a.Hits() != 1 {
		t.Fatal("re-read not served from buffer")
	}
}
