package pagestore

import (
	"errors"
	"math/rand"
	"testing"
)

func TestAccessCounterNoBuffer(t *testing.T) {
	var c AccessCounter
	for i := 0; i < 5; i++ {
		if hit := c.Access(PageID(i % 2)); hit {
			t.Fatal("hit without buffer")
		}
	}
	if c.Logical() != 5 || c.Physical() != 5 || c.Hits() != 0 {
		t.Fatalf("counts = %d/%d/%d", c.Logical(), c.Physical(), c.Hits())
	}
	c.Reset()
	if c.Logical() != 0 || c.Physical() != 0 {
		t.Fatal("Reset did not zero")
	}
}

func TestAccessCounterWithBuffer(t *testing.T) {
	var c AccessCounter
	c.SetBuffer(NewLRU(2))
	c.Access(1) // miss
	c.Access(1) // hit
	c.Access(2) // miss
	c.Access(1) // hit
	c.Access(3) // miss, evicts 2 (LRU)
	c.Access(2) // miss again
	if c.Logical() != 6 || c.Physical() != 4 || c.Hits() != 2 {
		t.Fatalf("counts = %d/%d/%d, want 6/4/2", c.Logical(), c.Physical(), c.Hits())
	}
}

func TestAccessCounterAdd(t *testing.T) {
	var a, b AccessCounter
	a.Access(1)
	b.Access(2)
	b.Access(3)
	a.Add(&b)
	if a.Logical() != 3 || a.Physical() != 3 {
		t.Fatalf("Add result = %d/%d", a.Logical(), a.Physical())
	}
}

func TestResetAllClearsBuffer(t *testing.T) {
	var c AccessCounter
	c.SetBuffer(NewLRU(4))
	c.Access(1)
	c.ResetAll()
	if hit := c.Access(1); hit {
		t.Fatal("buffer survived ResetAll")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	l := NewLRU(3)
	for _, id := range []PageID{1, 2, 3} {
		if l.Access(id) {
			t.Fatalf("unexpected hit for %d", id)
		}
	}
	l.Access(1)      // 1 becomes MRU; order now 1,3,2
	if l.Access(4) { // evicts 2
		t.Fatal("4 should miss")
	}
	if l.Contains(2) {
		t.Fatal("2 should have been evicted")
	}
	for _, id := range []PageID{1, 3, 4} {
		if !l.Contains(id) {
			t.Fatalf("%d should be buffered", id)
		}
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestLRUSingleSlot(t *testing.T) {
	l := NewLRU(1)
	if l.Access(1) {
		t.Fatal("first access hit")
	}
	if !l.Access(1) {
		t.Fatal("repeat access missed")
	}
	l.Access(2)
	if l.Contains(1) {
		t.Fatal("capacity-1 buffer kept two pages")
	}
	if l.Capacity() != 1 {
		t.Fatal("Capacity wrong")
	}
}

func TestLRUClear(t *testing.T) {
	l := NewLRU(2)
	l.Access(1)
	l.Access(2)
	l.Clear()
	if l.Len() != 0 || l.Contains(1) {
		t.Fatal("Clear left entries")
	}
	if l.Access(1) {
		t.Fatal("hit after Clear")
	}
}

func TestLRUPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 did not panic")
		}
	}()
	NewLRU(0)
}

func TestLRUStress(t *testing.T) {
	// Differential test against a straightforward slice-based model.
	l := NewLRU(8)
	var model []PageID
	rng := rand.New(rand.NewSource(5))
	find := func(id PageID) int {
		for i, v := range model {
			if v == id {
				return i
			}
		}
		return -1
	}
	for i := 0; i < 5000; i++ {
		id := PageID(rng.Intn(20))
		wantHit := find(id) >= 0
		if got := l.Access(id); got != wantHit {
			t.Fatalf("step %d: Access(%d) = %v, want %v", i, id, got, wantHit)
		}
		if j := find(id); j >= 0 {
			model = append(model[:j], model[j+1:]...)
		}
		model = append([]PageID{id}, model...)
		if len(model) > 8 {
			model = model[:8]
		}
		if l.Len() != len(model) {
			t.Fatalf("step %d: Len %d vs model %d", i, l.Len(), len(model))
		}
	}
}

func mkPoints(n int) [][2]float64 {
	pts := make([][2]float64, n)
	for i := range pts {
		pts[i] = [2]float64{float64(i), float64(i)}
	}
	return pts
}

func TestPointFileBlocks(t *testing.T) {
	var c AccessCounter
	f, err := NewPointFile(mkPoints(25), 10, 7, &c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 25 || f.NumBlocks() != 4 || f.Pages() != 3 {
		t.Fatalf("Len/NumBlocks/Pages = %d/%d/%d", f.Len(), f.NumBlocks(), f.Pages())
	}
	for i, want := range []int{7, 7, 7, 4} {
		n, err := f.BlockLen(i)
		if err != nil || n != want {
			t.Fatalf("BlockLen(%d) = %d, %v", i, n, err)
		}
		blk, err := f.ReadBlock(i)
		if err != nil || len(blk) != want {
			t.Fatalf("ReadBlock(%d) len = %d, %v", i, len(blk), err)
		}
	}
	// Block 0 spans page 0 (pts 0-6): 1 page. Block 1 spans pages 0-1: 2.
	// Block 2 (pts 14-20) spans pages 1-2: 2. Block 3 (21-24) page 2: 1.
	if c.Logical() != 6 {
		t.Fatalf("page reads = %d, want 6", c.Logical())
	}
}

func TestPointFileOutOfRange(t *testing.T) {
	f, _ := NewPointFile(mkPoints(5), 10, 5, nil, 0)
	if _, err := f.ReadBlock(1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("ReadBlock(1) err = %v", err)
	}
	if _, err := f.ReadBlock(-1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("ReadBlock(-1) err = %v", err)
	}
	if _, err := f.BlockLen(99); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("BlockLen(99) err = %v", err)
	}
}

func TestPointFileValidation(t *testing.T) {
	if _, err := NewPointFile(nil, 0, 5, nil, 0); err == nil {
		t.Fatal("pointsPerPage 0 accepted")
	}
	if _, err := NewPointFile(nil, 5, 0, nil, 0); err == nil {
		t.Fatal("blockPoints 0 accepted")
	}
	f, err := NewPointFile(nil, 5, 5, nil, 0)
	if err != nil || f.NumBlocks() != 0 || f.Pages() != 0 {
		t.Fatal("empty file mishandled")
	}
}

func TestPointFileSharedBuffer(t *testing.T) {
	// Two files sharing a counter+buffer must not collide on page IDs.
	var c AccessCounter
	c.SetBuffer(NewLRU(100))
	f1, _ := NewPointFile(mkPoints(10), 10, 10, &c, 0)
	f2, _ := NewPointFile(mkPoints(10), 10, 10, &c, 1000)
	f1.ReadBlock(0)
	f2.ReadBlock(0)
	if c.Hits() != 0 {
		t.Fatal("distinct files shared a page ID")
	}
	f1.ReadBlock(0)
	if c.Hits() != 1 {
		t.Fatal("re-read not served from buffer")
	}
}
