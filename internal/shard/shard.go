// Package shard implements sharded scatter-gather execution of GNN
// queries, the horizontal-scale twin of the single-tree read path.
//
// The data set is Hilbert-partitioned into S independent packed R-trees
// (rtree.BulkLoadSTRPartitioned): sorting by Hilbert value and cutting
// the curve into S runs yields spatially coherent shards, so a query
// group's neighborhood usually concentrates in few shards and the rest
// prune quickly. A query then runs the same unmodified MQM/SPM/MBM/brute
// kernel against every shard — scattered over a small worker pool or
// sequentially — with three pieces of per-shard state:
//
//   - its own rtree.Reader (via core.Options.Packed per shard), so
//     traversals never contend;
//   - its own pagestore.CostTracker, summed into the query's tracker at
//     gather time, so reported cost is exactly the sum of per-shard node
//     accesses (and the shared Accountant keeps the index-wide aggregate
//     consistent as always);
//   - the query's core.SharedBound, through which shards exchange their
//     current k-th best distance and prune each other's search space.
//
// The gather half (core.MergeNeighbors) k-way-merges the per-shard
// ascending result lists into the global k best. The merged answer is
// provably identical to an unsharded search regardless of worker timing
// (see core.SharedBound); only per-shard node-access counts vary with
// when bounds get published, and only under concurrent scatter.
package shard

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"gnn/internal/core"
	"gnn/internal/geom"
	"gnn/internal/pagestore"
	"gnn/internal/rtree"
)

// Unit is one shard: an independent R-tree over a Hilbert-contiguous
// slice of the data set, with its immutable packed snapshot.
type Unit struct {
	Tree   *rtree.Tree
	Packed *rtree.Packed
}

// Set is a Hilbert-partitioned collection of shards built once over a
// point set. It is immutable after Build, so any number of queries may
// run against it concurrently.
type Set struct {
	units []Unit
	dim   int
	size  int

	// Shard-per-core scatter executor, started lazily by the first fully
	// parallel scatter and stopped by Close (or by a GC cleanup when the
	// Set becomes unreachable without one).
	engMu  sync.Mutex
	eng    *engine
	closed bool
}

// acquireEngine returns the running scatter executor with one scatter
// lease held, starting it on first use; nil after Close (callers then
// fall back to pooled scatter). The lease (release it with eng.release)
// is what lets Close drain inflight scatters instead of closing the
// worker channels under them.
func (s *Set) acquireEngine() *engine {
	s.engMu.Lock()
	defer s.engMu.Unlock()
	if s.closed {
		return nil
	}
	if s.eng == nil {
		s.eng = newEngine(len(s.units))
		// Backstop for callers that drop the Set without Close: the
		// cleanup must not reference s (it would never become
		// unreachable), only the engine.
		runtime.AddCleanup(s, func(e *engine) { e.close() }, s.eng)
	}
	// Under engMu and before the closed flag flips, so no lease can be
	// taken once Close has started waiting.
	s.eng.scatters.Add(1)
	return s.eng
}

// Close stops the pinned scatter workers. Optional — a dropped Set's
// workers are stopped by a GC cleanup — but deterministic shutdown needs
// it. Idempotent, and safe while queries are inflight: new scatters fall
// back to pooled workers the moment the flag flips, inflight ones are
// drained before the worker channels close, and queries issued after
// Close still work, on pooled workers.
func (s *Set) Close() {
	s.engMu.Lock()
	s.closed = true
	eng := s.eng
	s.eng = nil
	s.engMu.Unlock()
	if eng != nil {
		eng.scatters.Wait()
		eng.close()
	}
}

// Prepare forces the deferred verification and materialisation of every
// borrowed shard arena (SetFromSnapshotBorrowed); a no-op on built or
// copy-loaded sets. Queries require a prior successful Prepare on
// borrowed sets; the public layer calls it on each query entry.
func (s *Set) Prepare() error {
	for i := range s.units {
		if err := s.units[i].Packed.Prepare(); err != nil {
			return err
		}
	}
	return nil
}

// Build partitions pts (with their ids; nil means slice indexes) into the
// requested number of shards and bulk-loads plus packs each one. All
// shards share cfg.Accountant and use disjoint page ID ranges.
func Build(cfg rtree.Config, pts []geom.Point, ids []int64, shards int) (*Set, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: %d shards; need at least 1", shards)
	}
	trees, err := rtree.BulkLoadSTRPartitioned(cfg, pts, ids, shards)
	if err != nil {
		return nil, err
	}
	s := &Set{units: make([]Unit, len(trees)), dim: trees[0].Dim(), size: len(pts)}
	for i, t := range trees {
		s.units[i] = Unit{Tree: t, Packed: t.Pack()}
	}
	return s, nil
}

// NumShards returns the number of shards.
func (s *Set) NumShards() int { return len(s.units) }

// Len returns the total number of indexed points.
func (s *Set) Len() int { return s.size }

// Dim returns the dimensionality.
func (s *Set) Dim() int { return s.dim }

// Shard returns shard i (read-only use; exposed for tests and bounds).
func (s *Set) Shard(i int) Unit { return s.units[i] }

// CountExact returns the multiplicity of (p, id) across all shards. Like
// rtree's CountExact it charges nothing — it is the overlay's tombstone
// bookkeeping, not a query.
func (s *Set) CountExact(p geom.Point, id int64) int {
	n := 0
	for _, u := range s.units {
		if u.Packed != nil {
			n += u.Packed.CountExact(p, id)
		} else {
			n += u.Tree.CountExact(p, id)
		}
	}
	return n
}

// All invokes fn for every indexed point across all shards without
// charging node accesses; traversal stops early when fn returns false.
func (s *Set) All(fn func(p geom.Point, id int64) bool) {
	stop := false
	for _, u := range s.units {
		u.Tree.All(func(p geom.Point, id int64) bool {
			if !fn(p, id) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// Borrowed reports whether the shards borrow their arenas from an
// external buffer (SetFromSnapshotBorrowed): no dynamic nodes exist, so
// only packed-layout traversals can serve the set.
func (s *Set) Borrowed() bool {
	return len(s.units) > 0 && s.units[0].Tree.IsShell()
}

// Sizes returns the per-shard point counts.
func (s *Set) Sizes() []int {
	out := make([]int, len(s.units))
	for i, u := range s.units {
		out[i] = u.Tree.Len()
	}
	return out
}

// Kernel is a core query entry point (core.MQM, core.SPM, core.MBM,
// core.BruteForce) run identically against every shard.
type Kernel func(t *rtree.Tree, qs []geom.Point, opt core.Options) ([]core.GroupNeighbor, error)

// shardRun is the per-shard slot of one scattered query: its result list,
// its own cost tracker, and — when the query is traced — its own trace
// and wall time (kernels must never share any of these; a query-wide
// Trace written by concurrent workers would race). The slots sit in one
// slice written by concurrent shard workers, so each is padded out to
// its own cache line — a worker bumping its tracker must not bounce the
// line under its neighbour.
type shardRun struct {
	list  []core.GroupNeighbor
	tk    pagestore.CostTracker
	err   error
	trace core.Trace
	dur   time.Duration
	_     [64]byte
}

// Search answers one k-best query by scatter-gather: kernel runs against
// every shard with a fresh SharedBound wiring the shards together, then
// the per-shard lists merge into the global k best and the per-shard
// trackers sum into opt.Cost. workers caps the concurrent shard workers;
// values < 1 mean one worker, i.e. a sequential scatter, which reuses
// opt.Exec (the batch engine's warm per-worker context) and carries the
// bound from shard to shard, while workers > 1 run shards concurrently on
// pooled contexts for latency. The merged result does not depend on
// workers or timing.
//
// usePacked selects the per-shard layout: the packed snapshot (the
// serving default — a Set's snapshots are always valid because a Set is
// immutable) or the dynamic nodes (benchmarking, differential tests).
func (s *Set) Search(qs []geom.Point, opt core.Options, usePacked bool, workers int, kernel Kernel) ([]core.GroupNeighbor, error) {
	n := len(s.units)
	k := opt.K
	if k == 0 {
		k = 1
	}
	// Adopt a caller-supplied bound (the overlay read path threads one
	// bound through base shards, delta tree and pending scan) or create
	// the scatter's own.
	bound := opt.Shared
	if bound == nil {
		bound = core.NewSharedBound()
	}
	// Diagnostics are per-shard state like the cost tracker: a traced
	// scatter redirects each worker into its run slot's private trace and
	// merges at gather time; stage timing rides the same flag machinery.
	traced := opt.Trace != nil
	timed := opt.Stages != nil
	runs := make([]shardRun, n)
	perShardOpt := func(i int) core.Options {
		o := opt
		o.Cost = &runs[i].tk
		o.Shared = bound
		// A CancelCheck is single-goroutine state: each shard of the
		// scatter polls the same context through its own fork.
		o.Cancel = opt.Cancel.Fork()
		o.Trace = nil
		o.Stages = nil
		if traced {
			o.Trace = &runs[i].trace
		}
		o.Packed = nil
		if usePacked {
			o.Packed = s.units[i].Packed
		}
		return o
	}
	runShard := func(i int, ec *core.ExecContext) {
		o := perShardOpt(i)
		o.Exec = ec
		var start time.Time
		if timed {
			start = time.Now()
		}
		runs[i].list, runs[i].err = runKernel(kernel, s.units[i].Tree, qs, o)
		if timed {
			runs[i].dur = time.Since(start)
		}
	}
	if workers > n {
		workers = n
	}
	switch {
	case workers <= 1:
		// Sequential scatter reuses the caller's warm context (the batch
		// engine's per-worker arena) instead of cycling the pool.
		ec, owned := execFor(opt)
		for i := range s.units {
			runShard(i, ec)
		}
		if owned {
			ec.Release()
		}
	case workers >= n:
		// Full-parallel scatter — the serving default — runs on the
		// shard-per-core engine: shard i always executes on pinned worker
		// i with that worker's private context, so the fan-out shares
		// nothing but the pruning bound.
		if eng := s.acquireEngine(); eng != nil {
			eng.scatter(qs, runs, s.units, kernel, timed, func(i int) core.Options {
				o := perShardOpt(i)
				o.Exec = nil // the pinned worker supplies its own
				return o
			})
			eng.release()
			break
		}
		// Closed set: serve on transient pooled workers instead.
		core.RunPooled(n, workers, runShard)
	default:
		// A caller-capped worker count below the shard count keeps the
		// pooled work-stealing scatter: the engine's 1:1 shard-worker
		// assignment cannot honour the cap.
		core.RunPooled(n, workers, runShard)
	}
	lists := make([][]core.GroupNeighbor, n)
	for i := range runs {
		if runs[i].err != nil {
			return nil, runs[i].err
		}
		if opt.Cost != nil {
			opt.Cost.Add(runs[i].tk)
		}
		// Gather runs on one goroutine, so the per-shard diagnostics fold
		// into the query-wide sinks without synchronisation.
		opt.Trace.Merge(&runs[i].trace)
		if timed {
			opt.Stages.Record("scatter", i, runs[i].dur)
		}
		lists[i] = runs[i].list
	}
	var mergeStart time.Time
	if timed {
		mergeStart = time.Now()
	}
	merged := core.MergeNeighbors(k, lists)
	if timed {
		opt.Stages.Record("merge", -1, time.Since(mergeStart))
	}
	return merged, nil
}

// runKernel invokes the kernel with per-shard panic containment: a panic
// inside a traversal (a corrupt arena that slipped past validation, a bug
// in a kernel) becomes that shard's error instead of killing the process.
// The serving layer depends on this to turn kernel panics into 500s.
func runKernel(kernel Kernel, t *rtree.Tree, qs []geom.Point, o core.Options) (res []core.GroupNeighbor, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("shard: kernel panic: %v", p)
		}
	}()
	return kernel(t, qs, o)
}

// execFor returns the caller-supplied context or draws a pooled one;
// owned reports whether the caller of execFor must release it.
func execFor(opt core.Options) (*core.ExecContext, bool) {
	if opt.Exec != nil {
		return opt.Exec, false
	}
	return core.AcquireExec(), true
}

// Iterator merges the per-shard incremental GNN scans into one globally
// ascending stream — the sharded twin of core.GNNIterator. The merge is
// lazy: a shard is only advanced when its current lower bound (the peek
// of its best-first heap) is the smallest among all shards, so far-away
// shards pay almost no node accesses until the scan actually reaches
// their territory. Use from a single goroutine, like every iterator; any
// number of Iterators may run concurrently.
type Iterator struct {
	its   []core.Stream
	heads []iterHead
}

// iterHead is the merge state of one shard: either an exact buffered
// result (exact == true; key is its distance) or a lower bound on
// whatever the shard yields next (exact == false; key is the peek).
type iterHead struct {
	res   core.GroupNeighbor
	key   float64
	exact bool
	done  bool
}

// NewIterator starts a sharded incremental scan. Every per-shard iterator
// charges opt.Cost (safe: the merge advances them from the caller's
// goroutine only), so the iterator's reported cost is exactly the sum of
// per-shard node accesses. Constructing it reads every shard's root.
func (s *Set) NewIterator(qs []geom.Point, opt core.Options, usePacked bool) (*Iterator, error) {
	it := &Iterator{
		its:   make([]core.Stream, len(s.units)),
		heads: make([]iterHead, len(s.units)),
	}
	for i, u := range s.units {
		o := opt
		o.Packed = nil
		if usePacked {
			o.Packed = u.Packed
		}
		sub, err := core.NewGNNIterator(u.Tree, qs, o)
		if err != nil {
			it.Close()
			return nil, err
		}
		it.its[i] = sub
		if d, ok := sub.PeekDist(); ok {
			it.heads[i].key = d
		} else {
			it.heads[i].done = true
		}
	}
	return it, nil
}

// Next returns the next group nearest neighbor across all shards in
// ascending aggregate distance; ok is false when every shard is
// exhausted. Ties between shards resolve to the lower shard index, so the
// stream is deterministic.
func (it *Iterator) Next() (core.GroupNeighbor, bool) {
	for {
		pick := -1
		var key float64
		for i := range it.heads {
			h := &it.heads[i]
			if h.done {
				continue
			}
			if pick == -1 || h.key < key {
				pick, key = i, h.key
			}
		}
		if pick == -1 {
			return core.GroupNeighbor{}, false
		}
		h := &it.heads[pick]
		if h.exact {
			// Smallest key is an exact result: every other shard's next
			// result is at least its own key ≥ this one, so emit it and
			// refill this shard's head with its new lower bound.
			g := h.res
			h.res = core.GroupNeighbor{}
			if d, ok := it.its[pick].PeekDist(); ok {
				h.key, h.exact = d, false
			} else {
				h.done = true
			}
			return g, true
		}
		// Smallest key is only a bound: advance that shard to an exact
		// result (its distance may well exceed another shard's key, which
		// the next pass of the loop then prefers).
		g, ok := it.its[pick].Next()
		if !ok {
			h.done = true
			continue
		}
		h.res, h.key, h.exact = g, g.Dist, true
	}
}

// PeekDist returns a lower bound on the distance of the next result; ok
// is false when the scan is exhausted.
func (it *Iterator) PeekDist() (float64, bool) {
	d, ok := 0.0, false
	for i := range it.heads {
		h := &it.heads[i]
		if h.done {
			continue
		}
		if !ok || h.key < d {
			d, ok = h.key, true
		}
	}
	return d, ok
}

// Close releases every per-shard iterator's pooled scratch. Idempotent.
func (it *Iterator) Close() {
	for i, sub := range it.its {
		if sub != nil {
			sub.Close()
		}
		it.its[i] = nil
		it.heads[i].done = true
	}
}

// NewMergedIterator merges arbitrary ascending-distance candidate streams
// with the same lazy two-phase discipline as the sharded iterator: a
// stream is only advanced once its lower bound is the global minimum. The
// overlay index uses it to merge base, delta and pending streams into one
// exact ascending scan. The merge takes ownership of the streams: Close
// closes them all, and a nil stream slot is skipped.
func NewMergedIterator(streams []core.Stream) *Iterator {
	it := &Iterator{
		its:   streams,
		heads: make([]iterHead, len(streams)),
	}
	for i, sub := range streams {
		if sub == nil {
			it.heads[i].done = true
			continue
		}
		if d, ok := sub.PeekDist(); ok {
			it.heads[i].key = d
		} else {
			it.heads[i].done = true
		}
	}
	return it
}
