package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"gnn/internal/core"
	"gnn/internal/geom"
	"gnn/internal/pagestore"
	"gnn/internal/rtree"
)

func randPts(rng *rand.Rand, n int, span float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64() * span, rng.Float64() * span}
	}
	return pts
}

// TestBuildPartition checks the Hilbert partition's contract: balanced
// shard sizes, every input point in exactly one shard, and disjoint page
// ID ranges so the shards can share one accountant and buffer.
func TestBuildPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randPts(rng, 1003, 500)
	for _, shards := range []int{1, 2, 5, 16} {
		s, err := Build(rtree.Config{MaxEntries: 8}, pts, nil, shards)
		if err != nil {
			t.Fatal(err)
		}
		if s.NumShards() != shards {
			t.Fatalf("%d shards, want %d", s.NumShards(), shards)
		}
		seen := map[int64]bool{}
		total, min, max := 0, len(pts), 0
		for i := 0; i < shards; i++ {
			u := s.Shard(i)
			if !u.Packed.Valid(u.Tree) {
				t.Fatalf("shard %d not packed", i)
			}
			if err := u.Tree.CheckInvariants(); err != nil {
				t.Fatalf("shard %d: %v", i, err)
			}
			n := u.Tree.Len()
			total += n
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
			u.Tree.All(func(p geom.Point, id int64) bool {
				if seen[id] {
					t.Fatalf("id %d appears in two shards", id)
				}
				seen[id] = true
				if !p.Equal(pts[id]) {
					t.Fatalf("id %d moved: %v vs %v", id, p, pts[id])
				}
				return true
			})
		}
		if total != len(pts) || len(seen) != len(pts) {
			t.Fatalf("partition covers %d/%d points", len(seen), len(pts))
		}
		if max-min > 1 {
			t.Fatalf("unbalanced shards: min %d, max %d", min, max)
		}
	}
}

// TestDisjointPages verifies that per-shard trees occupy disjoint page ID
// ranges, the precondition for sharing one LRU buffer.
func TestDisjointPages(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	trees, err := rtree.BulkLoadSTRPartitioned(rtree.Config{MaxEntries: 8}, randPts(rng, 400, 300), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[pagestore.PageID]bool{}
	for i, tr := range trees {
		rd := tr.Reader(nil)
		var walk func(nd rtree.Node)
		walk = func(nd rtree.Node) {
			if seen[nd.Page()] {
				t.Fatalf("tree %d reuses page %d", i, nd.Page())
			}
			seen[nd.Page()] = true
			for _, e := range nd.Entries() {
				if !e.IsLeafEntry() {
					walk(rd.Child(e))
				}
			}
		}
		walk(rd.Root())
	}
}

// TestSearchMatchesSingleTree runs the same kernels against a sharded set
// and one monolithic tree and demands identical merged answers, for both
// scatter widths and both layouts.
func TestSearchMatchesSingleTree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPts(rng, 2000, 800)
	single, err := rtree.BulkLoadSTR(rtree.Config{MaxEntries: 16}, pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Build(rtree.Config{MaxEntries: 16}, pts, nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	kernels := map[string]Kernel{"MBM": core.MBM, "MQM": core.MQM, "SPM": core.SPM, "brute": core.BruteForce}
	for trial := 0; trial < 8; trial++ {
		qs := randPts(rng, trial%5+1, 800)
		opt := core.Options{K: trial%4 + 1}
		for name, kern := range kernels {
			want, err := kern(single, qs, opt)
			if err != nil {
				t.Fatalf("%s single: %v", name, err)
			}
			for _, workers := range []int{1, 4} {
				for _, packed := range []bool{false, true} {
					var tk pagestore.CostTracker
					o := opt
					o.Cost = &tk
					got, err := set.Search(qs, o, packed, workers, kern)
					if err != nil {
						t.Fatalf("%s sharded: %v", name, err)
					}
					cfg := fmt.Sprintf("%s/workers=%d/packed=%v", name, workers, packed)
					if len(got) != len(want) {
						t.Fatalf("%s: %d results, want %d", cfg, len(got), len(want))
					}
					for i := range want {
						if want[i].Dist != got[i].Dist || want[i].ID != got[i].ID {
							t.Fatalf("%s diverged at %d:\nwant %+v\ngot  %+v", cfg, i, want, got)
						}
					}
					if tk.Logical == 0 && name != "brute" {
						t.Fatalf("%s: no node accesses recorded", cfg)
					}
				}
			}
		}
	}
}

// TestIteratorMatchesSingleTree steps the sharded merge against the
// monolithic incremental scan to exhaustion.
func TestIteratorMatchesSingleTree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randPts(rng, 600, 400)
	single, err := rtree.BulkLoadSTR(rtree.Config{MaxEntries: 8}, pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Build(rtree.Config{MaxEntries: 8}, pts, nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	qs := randPts(rng, 4, 400)
	ref, err := core.NewGNNIterator(single, qs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	it, err := set.NewIterator(qs, core.Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	for i := 0; ; i++ {
		peek, peekOK := it.PeekDist()
		wr, wok := ref.Next()
		gr, gok := it.Next()
		if wok != gok {
			t.Fatalf("stream length diverged at %d", i)
		}
		if !wok {
			if peekOK {
				t.Fatalf("peek reported more results at %d", i)
			}
			break
		}
		if !peekOK || peek > gr.Dist {
			t.Fatalf("peek %v (ok=%v) is not a lower bound of %v at %d", peek, peekOK, gr.Dist, i)
		}
		if wr.Dist != gr.Dist {
			t.Fatalf("diverged at %d: %+v vs %+v", i, wr, gr)
		}
	}
}

// TestSharedBoundTruncation checks the mechanism itself: with a
// pre-tightened shared bound, a kernel must return only candidates below
// the bound (the merge layer's guarantee depends on it).
func TestSharedBoundTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randPts(rng, 500, 300)
	tr, err := rtree.BulkLoadSTR(rtree.Config{MaxEntries: 8}, pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	qs := randPts(rng, 3, 300)
	full, err := core.MBM(tr, qs, core.Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 10 {
		t.Skip("dataset too small")
	}
	b := core.NewSharedBound()
	b.Tighten(full[4].Dist) // pretend another shard already found 10 ≤ this
	got, err := core.MBM(tr, qs, core.Options{K: 10, Shared: b})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range got {
		if g.Dist > full[4].Dist {
			t.Fatalf("kernel returned %v beyond the shared bound %v", g.Dist, full[4].Dist)
		}
	}
	// The prefix below the bound must be intact.
	for i := 0; i < len(got); i++ {
		if got[i].ID != full[i].ID || got[i].Dist != full[i].Dist {
			t.Fatalf("truncated prefix diverged at %d: %+v vs %+v", i, got[i], full[i])
		}
	}
	// Everything strictly below the bound survives (full[0..3]); the
	// candidate tying the bound exactly may be cut, like a tie against a
	// full kbest's k-th item — the merge layer re-supplies it from the
	// shard that published the bound.
	if len(got) > 10 || len(got) < 4 {
		t.Fatalf("unexpected truncated length %d", len(got))
	}
}
