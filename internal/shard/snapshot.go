package shard

import (
	"fmt"

	"gnn/internal/geom"
	"gnn/internal/hilbert"
	"gnn/internal/pagestore"
	"gnn/internal/rtree"
	"gnn/internal/snapshot"
)

// Snapshot returns the serialisable form of the shard set: a sharded
// manifest (one Hilbert cut per shard plus the partition bounding box,
// recomputed from the shard bounds exactly as Build derived it) and one
// arena per shard, in shard order. The per-tree arenas borrow the packed
// snapshots' slices; treat them as read-only.
func (s *Set) Snapshot() (snapshot.Manifest, []*snapshot.Tree) {
	trees := make([]*snapshot.Tree, len(s.units))
	cuts := make([]int64, len(s.units))
	var bbox geom.Rect
	have := false
	for i, u := range s.units {
		trees[i] = u.Packed.Snapshot()
		cuts[i] = int64(u.Tree.Len())
		if r, ok := u.Tree.Bounds(); ok {
			if have {
				bbox = bbox.Union(r)
			} else {
				bbox, have = r, true
			}
		}
	}
	h := &snapshot.Hilbert{Order: hilbert.DefaultOrder, CutSizes: cuts}
	if have {
		h.Lo[0], h.Hi[0] = bbox.Lo[0], bbox.Hi[0]
		// Mirror the partitioner's axis handling: 1-D data degenerates the
		// second axis to the first axis' minimum.
		h.Lo[1], h.Hi[1] = bbox.Lo[0], bbox.Lo[0]
		if s.dim >= 2 {
			h.Lo[1], h.Hi[1] = bbox.Lo[1], bbox.Hi[1]
		}
	}
	return snapshot.Manifest{
		Kind:    snapshot.KindSharded,
		Dim:     s.dim,
		Points:  s.size,
		Hilbert: h,
	}, trees
}

// SetFromSnapshot reconstructs a shard set from a decoded sharded
// snapshot: every shard's packed arena is adopted directly and its
// dynamic tree rebuilt, with the Hilbert partition intact (each shard
// keeps exactly the points, page range and node structure it was written
// with). All shards share cfg.Accountant (one allocated here when nil),
// so cost accounting stays exactly additive across the partition, as
// after Build.
func SetFromSnapshot(m snapshot.Manifest, trees []*snapshot.Tree, cfg rtree.Config) (*Set, error) {
	if m.Kind != snapshot.KindSharded {
		return nil, fmt.Errorf("shard: snapshot kind %v, want %v", m.Kind, snapshot.KindSharded)
	}
	if len(trees) < 1 {
		return nil, fmt.Errorf("shard: sharded snapshot with no trees")
	}
	if cfg.Accountant == nil {
		cfg.Accountant = pagestore.NewAccountant(0)
	}
	s := &Set{units: make([]Unit, len(trees)), dim: m.Dim, size: m.Points}
	for i, st := range trees {
		p, err := rtree.PackedFromSnapshot(st, m.Dim, cfg)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s.units[i] = Unit{Tree: p.Tree(), Packed: p}
	}
	return s, nil
}

// SetFromSnapshotBorrowed is the zero-copy sibling of SetFromSnapshot:
// every shard's arena borrows the decoded snapshot's slices (for a
// mapped open, the file mapping itself) via
// rtree.PackedFromSnapshotBorrowed. verify is the whole-snapshot
// deferred validation (snapshot.Adopted.Verify — internally once-only,
// so sharing it across all shards costs one verification); it must
// succeed, through Set.Prepare, before the first query. The caller owns
// the backing buffer's lifetime.
func SetFromSnapshotBorrowed(m snapshot.Manifest, trees []*snapshot.Tree, cfg rtree.Config, verify func() error) (*Set, error) {
	if m.Kind != snapshot.KindSharded {
		return nil, fmt.Errorf("shard: snapshot kind %v, want %v", m.Kind, snapshot.KindSharded)
	}
	if len(trees) < 1 {
		return nil, fmt.Errorf("shard: sharded snapshot with no trees")
	}
	if cfg.Accountant == nil {
		cfg.Accountant = pagestore.NewAccountant(0)
	}
	s := &Set{units: make([]Unit, len(trees)), dim: m.Dim, size: m.Points}
	for i, st := range trees {
		p, err := rtree.PackedFromSnapshotBorrowed(st, m.Dim, cfg, verify)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s.units[i] = Unit{Tree: p.Tree(), Packed: p}
	}
	return s, nil
}
