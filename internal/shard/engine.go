package shard

import (
	"runtime"
	"sync"
	"time"

	"gnn/internal/core"
	"gnn/internal/geom"
)

// engine is the shard-per-core scatter executor: one long-lived worker
// goroutine per shard, each pinned to an OS thread and owning a private
// execution context it never returns to the global pool. A scattered
// query hands shard i's work to worker i over that worker's own channel,
// so the fan-out touches no shared scratch (no core.AcquireExec pool
// contention, no work-stealing counter) — the only cross-core traffic of
// a scattered query is the SharedBound atomic the kernels already
// exchange. Workers start on the first parallel scatter and run until
// close; each one's context stays warm for its shard's node sizes, which
// a pooled context cycling between shards and plain queries cannot.
type engine struct {
	jobs      []chan scatterTask
	closeOnce sync.Once
	// scatters counts inflight scatter calls. Leases are taken under the
	// owning Set's engMu before its closed flag flips (acquireEngine), so
	// Set.Close can Wait for the count to drain and then close the worker
	// channels without racing a send.
	scatters sync.WaitGroup
}

// release returns a scatter lease taken by Set.acquireEngine.
func (e *engine) release() { e.scatters.Done() }

// scatterTask is one shard's share of one scattered query. The worker
// fills in its private execution context before running the kernel.
type scatterTask struct {
	qs     []geom.Point
	opt    core.Options // per-shard Cost/Trace/Shared/Packed wired by Search
	unit   Unit
	kernel Kernel
	run    *shardRun
	timed  bool // record the shard's wall time into run.dur
	wg     *sync.WaitGroup
}

// newEngine starts one pinned worker per shard. The engine must not
// reference the owning Set: the Set's cleanup closes the engine when the
// Set becomes unreachable, which a back-reference would prevent.
func newEngine(shards int) *engine {
	e := &engine{jobs: make([]chan scatterTask, shards)}
	for i := range e.jobs {
		// Capacity 1 lets a scattering goroutine hand out all shards'
		// tasks without blocking on a busy worker mid-loop.
		e.jobs[i] = make(chan scatterTask, 1)
		go e.worker(i)
	}
	return e
}

func (e *engine) worker(i int) {
	// Pin the worker to its OS thread: the scheduler then keeps shard
	// i's traversals (and their cache residency) from migrating between
	// cores mid-query.
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	ec := &core.ExecContext{} // private; never pooled, never shared
	for t := range e.jobs[i] {
		t.opt.Exec = ec
		// runKernel contains panics: a resident worker must outlive any
		// single query's failure, or one bad request would wedge every
		// future scatter on a dead channel.
		var start time.Time
		if t.timed {
			start = time.Now()
		}
		t.run.list, t.run.err = runKernel(t.kernel, t.unit.Tree, t.qs, t.opt)
		if t.timed {
			t.run.dur = time.Since(start)
		}
		t.wg.Done()
	}
}

// scatter runs one query's per-shard tasks on the pinned workers and
// waits for all of them. runs[i] receives shard i's result list, error
// and cost; optFor wires the per-shard options.
func (e *engine) scatter(qs []geom.Point, runs []shardRun, units []Unit, kernel Kernel, timed bool, optFor func(i int) core.Options) {
	var wg sync.WaitGroup
	wg.Add(len(units))
	for i := range units {
		e.jobs[i] <- scatterTask{
			qs: qs, opt: optFor(i), unit: units[i],
			kernel: kernel, run: &runs[i], timed: timed, wg: &wg,
		}
	}
	wg.Wait()
}

// close shuts the workers down. Idempotent; must not race with scatter
// (the Set's Close carries the same no-concurrent-queries contract as a
// mutation, and the GC cleanup only runs once the Set — and therefore
// any query against it — is unreachable).
func (e *engine) close() {
	e.closeOnce.Do(func() {
		for _, ch := range e.jobs {
			close(ch)
		}
	})
}
