package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestFigureAddGetRender(t *testing.T) {
	f := NewFigure("Fig X: cost vs n", "n", []string{"4", "16", "64"})
	f.Add("MQM", "4", Measurement{NodeAccesses: 120, CPU: 3 * time.Millisecond, Queries: 100})
	f.Add("MQM", "16", Measurement{NodeAccesses: 47000, CPU: 40 * time.Millisecond, Queries: 100})
	f.Add("MBM", "4", Measurement{NodeAccesses: 35, CPU: time.Millisecond, Queries: 100})
	f.Add("GCP", "64", Measurement{DNF: true})

	if got := f.SeriesNames(); len(got) != 3 || got[0] != "MQM" || got[2] != "GCP" {
		t.Fatalf("SeriesNames = %v", got)
	}
	m, ok := f.Get("MQM", "16")
	if !ok || m.NodeAccesses != 47000 {
		t.Fatalf("Get = %+v %v", m, ok)
	}
	if _, ok := f.Get("MQM", "999"); ok {
		t.Fatal("Get returned missing cell")
	}
	if _, ok := f.Get("nope", "4"); ok {
		t.Fatal("Get returned missing series")
	}

	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig X", "node accesses", "CPU time", "MQM", "47.0k", "DNF", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
}

func TestFormatCount(t *testing.T) {
	cases := map[float64]string{
		12.34:   "12.3",
		9999:    "9999.0",
		10000:   "10.0k",
		250000:  "250.0k",
		3200000: "3.20M",
	}
	for in, want := range cases {
		if got := formatCount(in); got != want {
			t.Errorf("formatCount(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := map[time.Duration]string{
		50 * time.Microsecond:   "0.000050",
		30 * time.Millisecond:   "0.0300",
		2500 * time.Millisecond: "2.50",
	}
	for in, want := range cases {
		if got := formatSeconds(in); got != want {
			t.Errorf("formatSeconds(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 4, 8})
	if s.Count != 4 || s.Mean != 3.75 || s.Min != 1 || s.Max != 8 {
		t.Fatalf("Summarize = %+v", s)
	}
	if math.Abs(s.GeoMean-math.Sqrt(math.Sqrt(64))) > 1e-12 {
		t.Fatalf("GeoMean = %v", s.GeoMean)
	}
	if z := Summarize(nil); z.Count != 0 {
		t.Fatal("empty Summarize non-zero")
	}
	// Non-positive values excluded from geo-mean only.
	s2 := Summarize([]float64{0, 4})
	if s2.GeoMean != 4 || s2.Min != 0 {
		t.Fatalf("Summarize with zero = %+v", s2)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("P50 = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("P100 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Percentile mutated input")
	}
}
