// Package stats collects experiment measurements and renders them as the
// aligned text tables the benchmark harness prints — one table per paper
// figure, with the same series (one row per algorithm, one column per
// x-axis value).
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Measurement is one (algorithm, x-value) cell of a figure: the averaged
// node accesses and CPU time over a workload, plus bookkeeping.
type Measurement struct {
	NodeAccesses float64 // average per query
	CPU          time.Duration
	Queries      int
	// DNF marks a cell whose algorithm did not terminate within budget
	// (the paper's "GCP does not terminate at all" cells).
	DNF bool
}

// Series is one curve of a figure: an algorithm's measurements across the
// x-axis.
type Series struct {
	Name   string
	Points map[string]Measurement // keyed by x-label
}

// Figure accumulates all series of one experiment.
type Figure struct {
	Title   string
	XLabel  string
	XValues []string // ordered x-axis labels
	series  []*Series
}

// NewFigure creates an empty figure with a fixed x-axis.
func NewFigure(title, xlabel string, xvalues []string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, XValues: xvalues}
}

// Add records a measurement for (algorithm, x).
func (f *Figure) Add(algorithm, x string, m Measurement) {
	s := f.findSeries(algorithm)
	if s == nil {
		s = &Series{Name: algorithm, Points: map[string]Measurement{}}
		f.series = append(f.series, s)
	}
	s.Points[x] = m
}

func (f *Figure) findSeries(name string) *Series {
	for _, s := range f.series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// SeriesNames lists the algorithms in insertion order.
func (f *Figure) SeriesNames() []string {
	out := make([]string, len(f.series))
	for i, s := range f.series {
		out[i] = s.Name
	}
	return out
}

// Get returns the measurement for (algorithm, x).
func (f *Figure) Get(algorithm, x string) (Measurement, bool) {
	s := f.findSeries(algorithm)
	if s == nil {
		return Measurement{}, false
	}
	m, ok := s.Points[x]
	return m, ok
}

// Render writes the figure as two aligned tables (NA and CPU), matching
// the two panels of each figure in the paper.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n", f.Title); err != nil {
		return err
	}
	if err := f.renderPanel(w, "node accesses", func(m Measurement) string {
		if m.DNF {
			return "DNF"
		}
		return formatCount(m.NodeAccesses)
	}); err != nil {
		return err
	}
	return f.renderPanel(w, "CPU time (s)", func(m Measurement) string {
		if m.DNF {
			return "DNF"
		}
		return formatSeconds(m.CPU)
	})
}

func (f *Figure) renderPanel(w io.Writer, metric string, cell func(Measurement) string) error {
	header := append([]string{f.XLabel + " \\ " + metric}, f.XValues...)
	rows := [][]string{header}
	for _, s := range f.series {
		row := []string{s.Name}
		for _, x := range f.XValues {
			m, ok := s.Points[x]
			if !ok {
				row = append(row, "-")
				continue
			}
			row = append(row, cell(m))
		}
		rows = append(rows, row)
	}
	return renderTable(w, rows)
}

// renderTable writes rows with columns padded to equal width.
func renderTable(w io.Writer, rows [][]string) error {
	if len(rows) == 0 {
		return nil
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for i, c := range row {
			if i == len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for _, row := range rows {
		b.Reset()
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		if _, err := fmt.Fprintf(w, "  %s\n", strings.TrimRight(b.String(), " ")); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// formatCount renders a node-access average compactly (integers below 10k,
// scientific-style above, echoing the paper's log-scale axes).
func formatCount(v float64) string {
	switch {
	case v < 10000:
		return fmt.Sprintf("%.1f", v)
	case v < 1e6:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.2fM", v/1e6)
	}
}

// formatSeconds renders a CPU time in seconds with sub-millisecond
// resolution.
func formatSeconds(d time.Duration) string {
	s := d.Seconds()
	switch {
	case s < 0.001:
		return fmt.Sprintf("%.6f", s)
	case s < 1:
		return fmt.Sprintf("%.4f", s)
	default:
		return fmt.Sprintf("%.2f", s)
	}
}

// Summary aggregates a sample of float64 observations.
type Summary struct {
	Count          int
	Mean, Min, Max float64
	GeoMean        float64
}

// Summarize computes summary statistics of xs. The geometric mean skips
// non-positive observations (it is used for ratio comparisons).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	logSum, logN := 0.0, 0
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		if x > 0 {
			logSum += math.Log(x)
			logN++
		}
	}
	s.Mean /= float64(len(xs))
	if logN > 0 {
		s.GeoMean = math.Exp(logSum / float64(logN))
	}
	return s
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// nearest-rank on a sorted copy. Returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}
