package mmapfile

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestOpenReadsFileContents(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	want := bytes.Repeat([]byte{0xab, 0xcd, 0x01}, 5000)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Data(), want) {
		t.Fatalf("mapped %d bytes, mismatch with file contents", f.Len())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if f.Data() != nil {
		t.Fatal("Data must be nil after Close")
	}
}

func TestOpenEmptyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 0 {
		t.Fatalf("empty file mapped to %d bytes", f.Len())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestCloseNil(t *testing.T) {
	var f *File
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
