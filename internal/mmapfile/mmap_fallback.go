//go:build !unix || mmapfallback

package mmapfile

import "os"

// Open reads the file at path into a heap buffer: the portable fallback
// for platforms without mmap. Same API as the mapped form, but pages are
// private to this process and the whole file is read up front.
func Open(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &File{data: data, mapped: false}, nil
}

// Close releases the buffer for garbage collection. Safe on a nil
// receiver and when called repeatedly.
func (f *File) Close() error {
	if f == nil {
		return nil
	}
	f.data = nil
	return nil
}
