// Package mmapfile maps a file into memory read-only. On platforms with
// mmap (anything Go tags as unix) Open returns a view backed directly by
// the page cache, so N processes opening the same file share one
// physical copy and no read I/O happens until a page is touched. On
// other platforms Open transparently falls back to reading the file
// into a heap buffer — same API, no shared pages; Mapped reports which
// mode is live so callers can surface it.
package mmapfile

// File is a read-only view of a file's contents.
type File struct {
	data   []byte
	mapped bool
}

// Data returns the file contents. With a true mapping the slice aliases
// the page cache: it is invalid after Close, and writing to it faults.
func (f *File) Data() []byte { return f.data }

// Mapped reports whether Data is a real memory mapping (true) or a heap
// copy fallback (false).
func (f *File) Mapped() bool { return f.mapped }

// Len returns the file length in bytes.
func (f *File) Len() int { return len(f.data) }
