// Forced-fallback coverage: built only under the mmapfallback tag
// (go test -tags mmapfallback ./internal/mmapfile), which swaps the
// unix mmap implementation for the copy fallback so the portable path
// gets CI time on the platforms CI actually has. The shared suite in
// mmapfile_test.go runs against the fallback too; this file pins what
// is specific to it.
//go:build mmapfallback

package mmapfile

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestFallbackNotMapped pins the mode flag: under the forced tag Open
// must report a copied, not mapped, view.
func TestFallbackNotMapped(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	want := bytes.Repeat([]byte{0x5a, 0x11}, 4096)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Mapped() {
		t.Fatal("forced fallback reports Mapped()=true")
	}
	if !bytes.Equal(f.Data(), want) {
		t.Fatal("fallback contents diverge from the file")
	}
}

// TestFallbackSurvivesFileMutation is the behavioral difference from a
// shared mapping: the fallback copies, so truncating or rewriting the
// source file after Open must not disturb the view (a mapped view has
// no such guarantee — SIGBUS on truncation is documented mmap behavior).
func TestFallbackSurvivesFileMutation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	want := bytes.Repeat([]byte{0x7e}, 10000)
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte{1, 2, 3}, 0o644); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Data(), want) {
		t.Fatal("fallback view changed after source mutation")
	}
}

// TestFallbackCloseIdempotent checks double Close and use-after-check:
// the copy path must match the mapped path's Close contract.
func TestFallbackCloseIdempotent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("abc"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
