// The mmapfallback tag forces the copy-fallback implementation even on
// unix, so CI can exercise the fallback path on the platforms it has.
//go:build unix && !mmapfallback

package mmapfile

import (
	"fmt"
	"os"
	"syscall"
)

// Open maps the file at path read-only and shared (MAP_SHARED: pages are
// the page cache itself, so concurrent processes mapping the same file
// share physical memory). The file descriptor is closed before Open
// returns — the mapping outlives it.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		// mmap rejects zero-length mappings; an empty view needs no pages.
		return &File{data: []byte{}, mapped: true}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmapfile: %s is %d bytes, exceeds address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmapfile: mmap %s: %w", path, err)
	}
	return &File{data: data, mapped: true}, nil
}

// Close unmaps the view. Any slice still aliasing Data faults on touch
// afterwards; the caller must order Close after the last reader. Safe
// on a nil receiver and when called repeatedly.
func (f *File) Close() error {
	if f == nil || f.data == nil {
		return nil
	}
	data := f.data
	f.data = nil
	if len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}
