// Package overlay holds the write-path bookkeeping of the delta-overlay
// index: delete tombstones that mask points of an immutable base tree,
// and the mutation log the background compactor replays when it swaps a
// freshly packed base in under live readers.
//
// Every value here is immutable after construction — mutating operations
// return a new TombSet (copy-on-write) — so a published index view can be
// read lock-free by any number of concurrent queries while writers
// prepare the next view.
package overlay

import "gnn/internal/geom"

// Mutation is one logged write. Only effective writes are logged: an
// insert that landed in the overlay (or resurrected a tombstoned point)
// and a delete that removed a live point. No-ops (deleting an absent
// point, a rejected insert) never enter the log, so replaying a log
// prefix against the base it started from reproduces the exact live
// multiset.
type Mutation struct {
	Del bool
	P   geom.Point
	ID  int64
}

// Tomb masks Count of the BaseN exact (P, id) occurrences in the base
// tree. Count < BaseN means some copies are still live: base hits for the
// point survive. Count == BaseN masks the point entirely.
type Tomb struct {
	P     geom.Point
	Count int
	BaseN int
}

// TombSet is an immutable set of tombstones keyed by point id (the base
// may hold several distinct points per id, hence the per-id list). The
// zero value and the nil pointer are both the empty set.
type TombSet struct {
	m     map[int64][]Tomb
	total int // Σ Count — number of masked base occurrences
}

// Total returns the number of masked base occurrences (counting
// multiplicity).
func (ts *TombSet) Total() int {
	if ts == nil {
		return 0
	}
	return ts.total
}

// Len returns the number of distinct tombstoned (point, id) pairs.
func (ts *TombSet) Len() int {
	if ts == nil {
		return 0
	}
	n := 0
	for _, l := range ts.m {
		n += len(l)
	}
	return n
}

// Rejects reports whether a base hit (p, id) is fully masked: a tombstone
// for the exact point exists and every base occurrence is deleted. While
// Count < BaseN at least one copy is live, and because result sets
// deduplicate by id, keeping the hit yields exactly what a fresh index
// holding the remaining copies would return.
func (ts *TombSet) Rejects(p geom.Point, id int64) bool {
	if ts == nil {
		return false
	}
	for _, t := range ts.m[id] {
		if t.Count >= t.BaseN && t.P.Equal(p) {
			return true
		}
	}
	return false
}

// lookup returns the tombstone for (p, id), if any.
func (ts *TombSet) lookup(p geom.Point, id int64) (Tomb, bool) {
	if ts == nil {
		return Tomb{}, false
	}
	for _, t := range ts.m[id] {
		if t.P.Equal(p) {
			return t, true
		}
	}
	return Tomb{}, false
}

// Masked returns how many base occurrences of (p, id) are currently
// deleted.
func (ts *TombSet) Masked(p geom.Point, id int64) int {
	t, ok := ts.lookup(p, id)
	if !ok {
		return 0
	}
	return t.Count
}

// clone deep-copies the id → tombs map.
func (ts *TombSet) clone() *TombSet {
	n := &TombSet{m: make(map[int64][]Tomb)}
	if ts == nil {
		return n
	}
	n.total = ts.total
	for id, l := range ts.m {
		n.m[id] = append([]Tomb(nil), l...)
	}
	return n
}

// Delete records one more deletion of (p, id) whose base multiplicity is
// baseN (consulted only when no tombstone exists yet). It returns the new
// set and whether the deletion took effect; masking beyond baseN — or a
// baseN of zero — is refused with the receiver unchanged.
func (ts *TombSet) Delete(p geom.Point, id int64, baseN int) (*TombSet, bool) {
	if t, ok := ts.lookup(p, id); ok {
		if t.Count >= t.BaseN {
			return ts, false // already fully masked
		}
		n := ts.clone()
		l := n.m[id]
		for i := range l {
			if l[i].P.Equal(p) {
				l[i].Count++
				break
			}
		}
		n.total++
		return n, true
	}
	if baseN <= 0 {
		return ts, false
	}
	n := ts.clone()
	n.m[id] = append(n.m[id], Tomb{P: p.Clone(), Count: 1, BaseN: baseN})
	n.total++
	return n, true
}

// Resurrect undoes one deletion of (p, id): an insert of a tombstoned
// base point decrements its tombstone instead of growing the delta, which
// keeps the live multiset exact. It returns the new set and whether a
// masked occurrence existed to revive.
func (ts *TombSet) Resurrect(p geom.Point, id int64) (*TombSet, bool) {
	t, ok := ts.lookup(p, id)
	if !ok || t.Count == 0 {
		return ts, false
	}
	n := ts.clone()
	l := n.m[id]
	for i := range l {
		if l[i].P.Equal(p) {
			l[i].Count--
			if l[i].Count == 0 {
				l[i] = l[len(l)-1]
				l = l[:len(l)-1]
				if len(l) == 0 {
					delete(n.m, id)
				} else {
					n.m[id] = l
				}
			}
			break
		}
	}
	n.total--
	return n, true
}

// Consumer returns a stateful drop-filter for one enumeration of the
// base: the n-th call with a masked (p, id) returns true (drop) while n ≤
// Count, so exactly the deleted multiplicity is skipped and surviving
// duplicates pass through. Used by the compactor to materialise the live
// multiset.
func (ts *TombSet) Consumer() func(p geom.Point, id int64) bool {
	if ts == nil || ts.total == 0 {
		return func(geom.Point, int64) bool { return false }
	}
	left := ts.clone()
	return func(p geom.Point, id int64) bool {
		l := left.m[id]
		for i := range l {
			if l[i].Count > 0 && l[i].P.Equal(p) {
				l[i].Count--
				return true
			}
		}
		return false
	}
}

// Each invokes fn for every tombstone.
func (ts *TombSet) Each(fn func(id int64, t Tomb)) {
	if ts == nil {
		return
	}
	for id, l := range ts.m {
		for _, t := range l {
			fn(id, t)
		}
	}
}
