package overlay

import (
	"testing"

	"gnn/internal/geom"
)

func TestTombSetEmpty(t *testing.T) {
	var ts *TombSet
	p := geom.Point{1, 2}
	if ts.Total() != 0 || ts.Len() != 0 || ts.Rejects(p, 1) || ts.Masked(p, 1) != 0 {
		t.Fatal("nil TombSet is not empty")
	}
	if _, ok := ts.Resurrect(p, 1); ok {
		t.Fatal("resurrect on empty set succeeded")
	}
	if _, ok := ts.Delete(p, 1, 0); ok {
		t.Fatal("delete with baseN=0 succeeded")
	}
	if ts.Consumer()(p, 1) {
		t.Fatal("empty consumer dropped a point")
	}
	zero := &TombSet{}
	if zero.Total() != 0 || zero.Len() != 0 || zero.Rejects(p, 1) {
		t.Fatal("zero TombSet is not empty")
	}
}

func TestTombSetMultiplicity(t *testing.T) {
	p := geom.Point{1, 2}
	ts, ok := (*TombSet)(nil).Delete(p, 7, 2)
	if !ok {
		t.Fatal("first delete refused")
	}
	// One of two copies masked: the point still has a live occurrence.
	if ts.Rejects(p, 7) {
		t.Fatal("half-masked point rejected")
	}
	if ts.Masked(p, 7) != 1 || ts.Total() != 1 || ts.Len() != 1 {
		t.Fatalf("after 1 delete: masked=%d total=%d len=%d", ts.Masked(p, 7), ts.Total(), ts.Len())
	}
	ts2, ok := ts.Delete(p, 7, 99) // baseN only consulted on first delete
	if !ok {
		t.Fatal("second delete refused")
	}
	if !ts2.Rejects(p, 7) || ts2.Total() != 2 {
		t.Fatal("fully masked point not rejected")
	}
	// Beyond multiplicity: refused, receiver returned unchanged.
	ts3, ok := ts2.Delete(p, 7, 2)
	if ok || ts3 != ts2 {
		t.Fatal("over-delete succeeded")
	}
	// COW: the earlier generation is untouched.
	if ts.Rejects(p, 7) || ts.Masked(p, 7) != 1 {
		t.Fatal("earlier generation mutated")
	}
}

func TestTombSetResurrect(t *testing.T) {
	p := geom.Point{3, 4}
	ts, _ := (*TombSet)(nil).Delete(p, 1, 1)
	if !ts.Rejects(p, 1) {
		t.Fatal("not masked")
	}
	ts2, ok := ts.Resurrect(p, 1)
	if !ok {
		t.Fatal("resurrect refused")
	}
	if ts2.Rejects(p, 1) || ts2.Total() != 0 || ts2.Len() != 0 {
		t.Fatalf("resurrected set not empty: total=%d len=%d", ts2.Total(), ts2.Len())
	}
	// Draining to empty removes the id entry entirely.
	if _, ok := ts2.Resurrect(p, 1); ok {
		t.Fatal("double resurrect succeeded")
	}
	// COW again.
	if !ts.Rejects(p, 1) {
		t.Fatal("earlier generation mutated by Resurrect")
	}
}

func TestTombSetDistinctPointsSameID(t *testing.T) {
	// The base may hold different points under one id.
	a, b := geom.Point{0, 0}, geom.Point{5, 5}
	ts, _ := (*TombSet)(nil).Delete(a, 9, 1)
	ts, ok := ts.Delete(b, 9, 1)
	if !ok {
		t.Fatal("delete of second point under same id refused")
	}
	if ts.Len() != 2 || ts.Total() != 2 {
		t.Fatalf("len=%d total=%d", ts.Len(), ts.Total())
	}
	if !ts.Rejects(a, 9) || !ts.Rejects(b, 9) {
		t.Fatal("per-point rejection wrong")
	}
	if ts.Rejects(geom.Point{1, 1}, 9) {
		t.Fatal("unrelated point rejected")
	}
	ts, _ = ts.Resurrect(a, 9)
	if ts.Rejects(a, 9) || !ts.Rejects(b, 9) {
		t.Fatal("resurrect leaked across points")
	}
	n := 0
	ts.Each(func(id int64, tb Tomb) { n++ })
	if n != 1 {
		t.Fatalf("Each visited %d tombs, want 1", n)
	}
}

func TestTombSetConsumer(t *testing.T) {
	// Base enumeration: three copies of p under id 1, two masked. The
	// consumer must drop exactly two and pass the third through.
	p := geom.Point{2, 2}
	ts, _ := (*TombSet)(nil).Delete(p, 1, 3)
	ts, _ = ts.Delete(p, 1, 3)
	drop := ts.Consumer()
	dropped := 0
	for i := 0; i < 3; i++ {
		if drop(p, 1) {
			dropped++
		}
	}
	if dropped != 2 {
		t.Fatalf("consumer dropped %d, want 2", dropped)
	}
	if drop(geom.Point{9, 9}, 1) || drop(p, 2) {
		t.Fatal("consumer dropped an unmasked point")
	}
	// The consumer is stateful but never mutates the set.
	if ts.Masked(p, 1) != 2 {
		t.Fatal("Consumer mutated the TombSet")
	}
}
