package core

import (
	"context"
	"fmt"
)

// Cancellation errors. Both wrap their context counterpart, so callers can
// match either the typed sentinel (errors.Is(err, ErrCanceled)) or the
// standard library's (errors.Is(err, context.Canceled)).
var (
	// ErrCanceled reports a query abandoned because its context was
	// canceled (a disconnected client, an aborted batch).
	ErrCanceled = fmt.Errorf("core: query canceled: %w", context.Canceled)
	// ErrDeadlineExceeded reports a query abandoned because its context's
	// deadline passed mid-traversal.
	ErrDeadlineExceeded = fmt.Errorf("core: query deadline exceeded: %w", context.DeadlineExceeded)
)

// cancelStride is how many Stop calls pass between context polls. Every
// call site sits in a per-node or per-point loop, so a canceled query
// unwinds within a few hundred node visits — microseconds — while the
// steady-state cost of an armed check stays one predictable-branch
// decrement per iteration.
const cancelStride = 256

// CancelCheck polls a context at bounded intervals from inside the
// traversal loops of the query kernels, so a query whose caller has gone
// away (closed connection, expired deadline) stops pinning its worker.
// Once the context fires, the failure latches: every subsequent Stop
// returns true immediately and the whole recursion unwinds fast.
//
// A CancelCheck belongs to exactly one traversal goroutine — like
// Options.Cost it is unsynchronised by design. A scattered (sharded)
// query gives each shard its own Fork over the same context. All methods
// are nil-receiver safe; a nil *CancelCheck is an uncancellable query
// with zero overhead beyond the nil test.
type CancelCheck struct {
	ctx       context.Context
	countdown int
	failed    error
}

// NewCancelCheck arms a check over ctx. It returns nil — the free
// always-run-to-completion check — when the context can never fire.
func NewCancelCheck(ctx context.Context) *CancelCheck {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return &CancelCheck{ctx: ctx, countdown: cancelStride}
}

// Fork returns an independent check over the same context, for a
// concurrent branch of the same query (one per shard of a scatter).
func (c *CancelCheck) Fork() *CancelCheck {
	if c == nil {
		return nil
	}
	return &CancelCheck{ctx: c.ctx, countdown: cancelStride}
}

// Stop reports whether the traversal should unwind. It polls the context
// every cancelStride calls and latches the first failure.
func (c *CancelCheck) Stop() bool {
	if c == nil {
		return false
	}
	if c.failed != nil {
		return true
	}
	c.countdown--
	if c.countdown > 0 {
		return false
	}
	c.countdown = cancelStride
	if err := c.ctx.Err(); err != nil {
		c.failed = mapContextErr(err)
		return true
	}
	return false
}

// Check polls the context immediately (entry points, between batch
// queries) and latches and returns the typed failure, or nil.
func (c *CancelCheck) Check() error {
	if c == nil {
		return nil
	}
	if c.failed != nil {
		return c.failed
	}
	if err := c.ctx.Err(); err != nil {
		c.failed = mapContextErr(err)
	}
	return c.failed
}

// Failure returns the latched typed error, or nil when the traversal ran
// to completion. Kernels call it once after their loops: a canceled query
// returns (nil, ErrCanceled/ErrDeadlineExceeded) with whatever cost its
// tracker accrued up to the stop — partial cost accounting is exact.
func (c *CancelCheck) Failure() error {
	if c == nil {
		return nil
	}
	return c.failed
}

// mapContextErr converts a context error into the package's typed
// sentinels (any other value passes through unchanged).
func mapContextErr(err error) error {
	switch err {
	case context.Canceled:
		return ErrCanceled
	case context.DeadlineExceeded:
		return ErrDeadlineExceeded
	default:
		return err
	}
}

// ContextErr is mapContextErr over ctx.Err(): nil while ctx is live, the
// typed sentinel once it fires. The batch engines use it between queries.
func ContextErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return mapContextErr(err)
	}
	return nil
}
