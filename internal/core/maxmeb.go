package core

import (
	"math"

	"gnn/internal/geom"
)

// The dedicated aggregate-MAX path. The MAX aggregate has structure the
// generic per-member bounds cannot see: dist_max(p,Q) is governed by the
// minimum enclosing ball (c*, r*) of Q, and for any p
//
//	dist_max(p,Q)² ≥ |p−c*|² + r*²
//
// (see geom.MinEnclosingBall). Heuristics 2 and 3 collapse to zero for
// nodes overlapping the group's hull — exactly where the MAX answer
// lives, since best_dist ≥ r* always — while the MEB bound stays ≥ r*
// there. The kernels therefore keep their traversal order and existing
// bounds untouched and add the MEB bound as one more O(d) check: the
// depth-first MBM skips (never re-orders) additionally pruned nodes and
// points, and the best-first iterator raises its heap keys to
// max(heuristic-2 key, MEB bound). Pruning is strictly added and keys are
// only raised, so the dedicated kernel's node accesses are never above
// the generic path's; results are bit-identical because every pruned
// candidate provably ranks at or beyond the pruning bound, where the
// result accumulator would reject it anyway.
//
// Options.GenericMax keeps the generic path selectable for differential
// testing and benchmarking.

// mebSlackRel is the relative deflation applied to the MEB bound in
// distance space. The derivation above is exact for the exact MEB center;
// the computed center deviates by floating-point solve error, which
// perturbs the bound proportionally to |p−c| + r. Deflating by
// 1e-6·(1 + |c| + r) absorbs that deviation with orders of magnitude to
// spare while costing pruning power only in a vanishingly thin shell.
// Deflation is always safe: a weaker bound prunes less, never wrongly.
const mebSlackRel = 1e-6

// mebCtx is the per-query pruning context of the dedicated MAX kernel.
// Its zero value is inert; init arms it. Pooled inside ExecContext and
// GNNIterator.
type mebCtx struct {
	c     geom.Point // MEB center (view into the owning scratch)
	rhoSq float64    // min squared center-to-support distance
	slack float64    // distance-space deflation (see mebSlackRel)
	wmin  float64    // weighted MAX: max_i w_i·|pq_i| ≥ w_min·(MEB bound)
}

// mebEnabled reports whether the dedicated MAX path applies: the MAX
// aggregate, not forced generic, and a group of at least two points (a
// singleton's MEB bound degenerates to the existing heuristics).
func (o Options) mebEnabled(n int) bool {
	return o.Aggregate == Max && !o.GenericMax && n >= 2
}

// init computes the group's MEB into the scratch and derives the bound
// ingredients. rhoSq is the smallest squared center-to-support distance
// (not the radius): the certificate |p−s|² ≥ |p−c|² + |s−c|² holds for
// some support point s, so only the minimum is guaranteed.
func (m *mebCtx) init(s *geom.MEBScratch, qs []geom.Point, w *weightCtx) {
	ball := s.MinEnclosingBall(qs)
	m.c = ball.Center
	rho := math.Inf(1)
	for _, sp := range ball.Support {
		if d := geom.DistSq(sp, ball.Center); d < rho {
			rho = d
		}
	}
	if math.IsInf(rho, 1) {
		rho = 0
	}
	m.rhoSq = rho
	var cSq float64
	for _, v := range ball.Center {
		cSq += v * v
	}
	m.slack = mebSlackRel * (1 + math.Sqrt(cSq) + math.Sqrt(rho))
	m.wmin = 1
	if w != nil {
		m.wmin = w.min
	}
}

// fromMindistSq turns a squared lower bound on |p−c| (mindist of a node
// rectangle, or the exact squared distance of a data point) into a lower
// bound on the aggregate MAX distance of any such p.
func (m *mebCtx) fromMindistSq(msq float64) float64 {
	b := math.Sqrt(msq+m.rhoSq) - m.slack
	if b <= 0 {
		return 0
	}
	return m.wmin * b
}

// nodeBound lower-bounds dist_max(p,Q) over all p inside r.
func (m *mebCtx) nodeBound(r geom.Rect) float64 {
	return m.fromMindistSq(geom.MinDistSqPointRect(m.c, r))
}

// pointBound lower-bounds dist_max(p,Q) for the data point p.
func (m *mebCtx) pointBound(p geom.Point) float64 {
	return m.fromMindistSq(geom.DistSq(p, m.c))
}
