package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"gnn/internal/geom"
)

// TestSharedBoundMonotonic hammers one bound from many goroutines and
// checks it converges to the global minimum and never rises.
func TestSharedBoundMonotonic(t *testing.T) {
	b := NewSharedBound()
	if !math.IsInf(b.Load(), 1) {
		t.Fatalf("fresh bound is %v, want +Inf", b.Load())
	}
	const goroutines = 8
	const perG = 2000
	min := math.Inf(1)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			local := math.Inf(1)
			for i := 0; i < perG; i++ {
				v := rng.Float64() * 1000
				b.Tighten(v)
				if v < local {
					local = v
				}
				if got := b.Load(); got > local {
					t.Errorf("bound %v above this goroutine's minimum %v", got, local)
					return
				}
			}
			mu.Lock()
			if local < min {
				min = local
			}
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	if got := b.Load(); got != min {
		t.Fatalf("bound settled at %v, want global minimum %v", got, min)
	}
	b.Tighten(min + 1)
	if got := b.Load(); got != min {
		t.Fatalf("Tighten with a larger value moved the bound to %v", got)
	}
}

// TestMergeNeighbors checks the gather half: ascending k-way merge with
// kbest's ID-dedup and tie semantics.
func TestMergeNeighbors(t *testing.T) {
	gn := func(id int64, d float64) GroupNeighbor {
		return GroupNeighbor{Point: geom.Point{d, 0}, ID: id, Dist: d}
	}
	got := MergeNeighbors(3, [][]GroupNeighbor{
		{gn(1, 1), gn(4, 4)},
		{gn(2, 2), gn(5, 5)},
		{gn(3, 3)},
	})
	if len(got) != 3 || got[0].ID != 1 || got[1].ID != 2 || got[2].ID != 3 {
		t.Fatalf("merge picked %+v", got)
	}

	// Duplicate IDs collapse (first in ascending order wins), like a
	// single traversal's kbest.
	got = MergeNeighbors(2, [][]GroupNeighbor{
		{gn(7, 1), gn(8, 3)},
		{gn(7, 1), gn(9, 2)},
	})
	if len(got) != 2 || got[0].ID != 7 || got[1].ID != 9 {
		t.Fatalf("dedup merge picked %+v", got)
	}

	// Ties across lists resolve to the earlier list, deterministically.
	got = MergeNeighbors(1, [][]GroupNeighbor{
		{gn(11, 5)},
		{gn(10, 5)},
	})
	if len(got) != 1 || got[0].ID != 11 {
		t.Fatalf("tie merge picked %+v", got)
	}

	// Fewer candidates than k, empty lists included.
	got = MergeNeighbors(9, [][]GroupNeighbor{nil, {gn(1, 1)}, {}})
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("short merge picked %+v", got)
	}
	if got := MergeNeighbors(3, nil); len(got) != 0 {
		t.Fatalf("empty merge returned %+v", got)
	}
}

// TestKBestSharedPublishes checks the kernel-facing half: a kbest coupled
// to a bound publishes its k-th best once full and folds a foreign
// tighter bound into its pruning radius.
func TestKBestSharedPublishes(t *testing.T) {
	b := NewSharedBound()
	best := newKBest(2)
	best.shared = b
	gn := func(id int64, d float64) GroupNeighbor { return GroupNeighbor{ID: id, Dist: d} }
	best.offer(gn(1, 10))
	if !math.IsInf(b.Load(), 1) {
		t.Fatalf("bound published before k results: %v", b.Load())
	}
	if best.bound() != math.Inf(1) {
		t.Fatalf("bound() = %v before k results", best.bound())
	}
	best.offer(gn(2, 20))
	if b.Load() != 20 {
		t.Fatalf("bound not published on fill: %v", b.Load())
	}
	best.offer(gn(3, 15))
	if b.Load() != 15 {
		t.Fatalf("bound not republished on improvement: %v", b.Load())
	}
	// A foreign shard tightens further: pruning uses the foreign value.
	b.Tighten(7)
	if best.bound() != 7 {
		t.Fatalf("bound() = %v, want the foreign 7", best.bound())
	}
	// The local list is unaffected by the foreign bound.
	if res := best.results(); len(res) != 2 || res[0].ID != 1 || res[1].ID != 3 {
		t.Fatalf("results %+v", res)
	}
}
