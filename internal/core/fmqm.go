package core

import (
	"math"

	"gnn/internal/geom"
	"gnn/internal/pagestore"
	"gnn/internal/rtree"
)

// DiskOptions configures the disk-resident algorithms F-MQM and F-MBM.
type DiskOptions struct {
	Options
}

// DiskReport carries the result and cost diagnostics of a disk-resident
// run.
type DiskReport struct {
	Neighbors []GroupNeighbor
	// Rounds is the number of group phases executed (F-MQM) or leaf nodes
	// processed (F-MBM).
	Rounds int
	// Cost is this query's combined I/O: R-tree node accesses plus Q page
	// reads. The same counts also accrue on the tree's and query file's
	// shared accountants.
	Cost pagestore.CostTracker
}

// fmqmCand is a pending F-MQM candidate: a group-local nearest neighbor
// whose global distance is still being accumulated, one group per phase.
type fmqmCand struct {
	nb        GroupNeighbor // nb.Dist = distance to its own group at creation
	acc       float64
	next      int // next group index to apply
	remaining int
}

// FMQM answers a disk-resident GNN query with F-MQM (§4.2): the
// Hilbert-sorted query file is split into memory blocks Q_1..Q_m; each
// block gets an incremental GNN stream over P (main-memory MBM, the
// paper's choice); the streams are combined MQM-style in round-robin
// phases. Because only one block is in memory at a time, a freshly drawn
// group NN p_j cannot be evaluated globally at once: its distance to each
// other group is added lazily when that group's phase comes around, so
// every candidate completes exactly one full cycle after its creation.
//
// Per-group thresholds t_j = dist(p_j, Q_j) (the last local NN distance)
// sum to the global threshold T; drawing stops when T ≥ best_dist. Pending
// candidates are then flushed (up to m−1 extra phases) before returning —
// they were drawn before the threshold was reached and may still win.
//
// SUM aggregate only (the threshold decomposition over blocks is a sum).
func FMQM(t *rtree.Tree, qf *QueryFile, opt DiskOptions) (*DiskReport, error) {
	opt.Options = opt.Options.withDefaults()
	if opt.K < 1 {
		return nil, ErrBadK
	}
	if opt.Aggregate != Sum {
		return nil, ErrUnsupportedAggregate
	}
	if opt.Weights != nil || opt.Region != nil {
		return nil, ErrUnsupportedOption
	}
	if opt.Cost == nil {
		opt.Cost = &pagestore.CostTracker{}
	}
	ec, owned := opt.exec()
	defer releaseIfOwned(ec, owned)
	m := qf.NumBlocks()
	iters := make([]*GNNIterator, m)
	defer func() {
		for _, it := range iters {
			it.Close() // nil-safe; releases each block's stream to the pool
		}
	}()
	exhausted := make([]bool, m)
	ec.thresholds = growFloats(ec.thresholds, m)
	thresholds := ec.thresholds
	var pending []*fmqmCand
	best := ec.kbestFor(opt.K, opt.Reject)
	report := &DiskReport{}

	sumT := func() float64 {
		s := 0.0
		for _, v := range thresholds {
			s += v
		}
		return s
	}

	for j := 0; ; j = (j + 1) % m {
		drawing := sumT() < best.bound()
		if !drawing && len(pending) == 0 {
			break
		}
		// Skip the phase (and its I/O) when group j has nothing to do.
		needUpdate := false
		for _, c := range pending {
			if c.next == j && c.remaining > 0 {
				needUpdate = true
				break
			}
		}
		if !needUpdate && (!drawing || exhausted[j]) {
			continue
		}
		pts, err := qf.ReadBlock(j, opt.Cost) // one block read per phase
		if err != nil {
			return nil, err
		}
		report.Rounds++

		// 1) Complete pending candidates with their distance to Q_j.
		keep := pending[:0]
		for _, c := range pending {
			if c.next == j && c.remaining > 0 {
				c.acc += geom.SumDist(c.nb.Point, pts)
				c.remaining--
				c.next = (j + 1) % m
				if c.remaining == 0 {
					best.offer(GroupNeighbor{Point: c.nb.Point, ID: c.nb.ID, Dist: c.acc})
					continue
				}
			}
			keep = append(keep, c)
		}
		pending = keep

		// 2) Draw the next local NN of group j.
		if drawing && !exhausted[j] {
			if iters[j] == nil {
				// opt.Options carries the per-query tracker, so the
				// per-block GNN streams charge it too.
				it, err := NewGNNIterator(t, pts, opt.Options)
				if err != nil {
					return nil, err
				}
				iters[j] = it
			}
			g, ok := iters[j].Next()
			if !ok {
				// Group j has ranked the entire dataset: every point has
				// been seen through this group. Mark the stream done; its
				// threshold becomes infinite (nothing unseen remains).
				exhausted[j] = true
				thresholds[j] = math.Inf(1)
			} else {
				thresholds[j] = g.Dist
				if m == 1 {
					best.offer(g) // the group is all of Q
				} else {
					pending = append(pending, &fmqmCand{
						nb:        g,
						acc:       g.Dist,
						next:      (j + 1) % m,
						remaining: m - 1,
					})
				}
			}
		}
	}
	report.Neighbors = best.results()
	report.Cost = *opt.Cost
	return report, nil
}
