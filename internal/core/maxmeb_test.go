package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"gnn/internal/geom"
)

// Differential suite for the dedicated aggregate-MAX kernel: the
// minimum-enclosing-ball path (the default for MAX) must return results
// bit-identical to the generic per-member pruning path (Options.
// GenericMax), on both layouts and both traversals, while never reading
// more nodes. The two paths evaluate exact distances identically and the
// MEB bound only removes candidates the result accumulator would reject,
// so this is strict equality on results — divergence is a bug, not noise.

// maxDiff runs one MAX query through the dedicated and generic paths and
// fails on any result divergence or on the dedicated path visiting more
// nodes than the generic one.
func maxDiff(t *testing.T, name string, run func(Options) ([]GroupNeighbor, error), opt Options) {
	t.Helper()
	var dtr, gtr Trace
	opt.Aggregate = Max

	opt.GenericMax = false
	opt.Trace = &dtr
	ded, err := run(opt)
	if err != nil {
		t.Fatalf("%s (dedicated): %v", name, err)
	}
	opt.GenericMax = true
	opt.Trace = &gtr
	gen, err := run(opt)
	if err != nil {
		t.Fatalf("%s (generic): %v", name, err)
	}
	if !reflect.DeepEqual(ded, gen) {
		t.Fatalf("%s: results diverged between MAX kernels\ndedicated: %v\ngeneric:   %v", name, ded, gen)
	}
	if dtr.NodesVisited > gtr.NodesVisited {
		t.Fatalf("%s: dedicated kernel visited MORE nodes than generic: %d vs %d",
			name, dtr.NodesVisited, gtr.NodesVisited)
	}
}

func TestMaxKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	pts := clusteredPts(rng, 2500, 1000)
	tr := buildTree(t, pts, 16)
	packed := tr.Pack()

	for trial := 0; trial < 16; trial++ {
		n := []int{1, 2, 3, 8, 33}[trial%5]
		qs := make([]geom.Point, n)
		base := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		for i := range qs {
			qs[i] = geom.Point{base[0] + rng.Float64()*200, base[1] + rng.Float64()*200}
		}
		var weights []float64
		if trial%2 == 1 {
			weights = make([]float64, n)
			for i := range weights {
				weights[i] = 0.25 + rng.Float64()*4
			}
		}
		k := []int{1, 4, 9}[trial%3]
		for _, df := range []bool{false, true} {
			for _, usePacked := range []bool{false, true} {
				opt := Options{K: k, Weights: weights}
				if df {
					opt.Traversal = DepthFirst
				}
				if usePacked {
					opt.Packed = packed
				}
				name := fmt.Sprintf("trial%d/n=%d/k=%d/df=%v/packed=%v/weighted=%v",
					trial, n, k, df, usePacked, weights != nil)
				maxDiff(t, name, func(o Options) ([]GroupNeighbor, error) {
					return MBM(tr, qs, o)
				}, opt)
			}
		}
	}
}

// TestMaxKernelIterator steps the incremental scan with the dedicated
// and generic MAX kernels in lockstep: the emitted stream must be
// identical even though the dedicated side orders its heap by tighter
// keys.
func TestMaxKernelIterator(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	pts := clusteredPts(rng, 2000, 800)
	tr := buildTree(t, pts, 16)
	packed := tr.Pack()

	for _, usePacked := range []bool{false, true} {
		qs := make([]geom.Point, 7)
		for i := range qs {
			qs[i] = geom.Point{rng.Float64() * 800, rng.Float64() * 800}
		}
		dopt := Options{Aggregate: Max}
		gopt := Options{Aggregate: Max, GenericMax: true}
		if usePacked {
			dopt.Packed = packed
			gopt.Packed = packed
		}
		di, err := NewGNNIterator(tr, qs, dopt)
		if err != nil {
			t.Fatal(err)
		}
		gi, err := NewGNNIterator(tr, qs, gopt)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 400; i++ {
			dn, dok := di.Next()
			gn, gok := gi.Next()
			if dok != gok || !reflect.DeepEqual(dn, gn) {
				t.Fatalf("packed=%v: stream diverged at %d:\ndedicated: %v %v\ngeneric:   %v %v",
					usePacked, i, dn, dok, gn, gok)
			}
			if !dok {
				break
			}
		}
		di.Close()
		gi.Close()
	}
}

// FuzzMaxEquivalence fuzzes the dedicated-vs-generic MAX differential
// across dataset shape, group size, k, weights, traversal and layout.
// Any divergence in results — or the dedicated kernel reading more nodes
// than the generic one — crashes the fuzz target.
func FuzzMaxEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(300), uint8(4), uint8(2), false, false)
	f.Add(int64(2), uint16(60), uint8(2), uint8(1), true, false)
	f.Add(int64(3), uint16(900), uint8(16), uint8(7), false, true)
	f.Add(int64(4), uint16(2), uint8(1), uint8(5), true, true)
	f.Add(int64(5), uint16(1100), uint8(23), uint8(0), false, false)
	f.Fuzz(func(t *testing.T, seed int64, n uint16, groupSize, k uint8, df, weighted bool) {
		rng := rand.New(rand.NewSource(seed))
		np := int(n)%1200 + 1
		pts := clusteredPts(rng, np, 500)
		tr := buildTree(t, pts, 8)
		packed := tr.Pack()
		qs := make([]geom.Point, int(groupSize)%24+1)
		for i := range qs {
			qs[i] = geom.Point{rng.Float64() * 600, rng.Float64() * 600}
		}
		var weights []float64
		if weighted {
			weights = make([]float64, len(qs))
			for i := range weights {
				weights[i] = 0.25 + rng.Float64()*4
			}
		}
		opt := Options{K: int(k)%12 + 1, Weights: weights}
		if df {
			opt.Traversal = DepthFirst
		}
		maxDiff(t, "fuzz/dynamic", func(o Options) ([]GroupNeighbor, error) {
			return MBM(tr, qs, o)
		}, opt)
		opt.Packed = packed
		maxDiff(t, "fuzz/packed", func(o Options) ([]GroupNeighbor, error) {
			return MBM(tr, qs, o)
		}, opt)
	})
}
