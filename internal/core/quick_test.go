package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gnn/internal/geom"
)

// TestQuickAllAlgorithmsAgree is the central property-based test: for any
// random instance (data, query group, k, aggregate where supported), every
// algorithm must return exactly the brute-force distances.
func TestQuickAllAlgorithmsAgree(t *testing.T) {
	f := func(seed int64, nRaw, qRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nData := int(nRaw)%400 + 20
		nQuery := int(qRaw)%30 + 1
		k := int(kRaw)%6 + 1
		pts := randPts(rng, nData, 500)
		qs := randPts(rng, nQuery, 200)
		tr := buildTree(t, pts, 4+rng.Intn(10))
		opt := Options{K: k}
		want, err := BruteForce(tr, qs, opt)
		if err != nil {
			return false
		}
		check := func(got []GroupNeighbor, err error) bool {
			if err != nil || len(got) != len(want) {
				return false
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-6*(1+want[i].Dist) {
					return false
				}
			}
			return true
		}
		if !check(MQM(tr, qs, opt)) {
			t.Log("MQM mismatch")
			return false
		}
		if !check(SPM(tr, qs, opt)) {
			t.Log("SPM mismatch")
			return false
		}
		if !check(MBM(tr, qs, opt)) {
			t.Log("MBM mismatch")
			return false
		}
		if !check(SPM(tr, qs, Options{K: k, Traversal: DepthFirst})) {
			t.Log("SPM-DF mismatch")
			return false
		}
		if !check(MBM(tr, qs, Options{K: k, Traversal: DepthFirst})) {
			t.Log("MBM-DF mismatch")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickDiskAlgorithmsAgree does the same for the disk-resident family.
func TestQuickDiskAlgorithmsAgree(t *testing.T) {
	f := func(seed int64, nRaw, qRaw uint8, blockRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		nData := int(nRaw)%300 + 30
		nQuery := int(qRaw)%150 + 2
		blockPts := int(blockRaw)%50 + 5
		pts := randPts(rng, nData, 500)
		qs := randPts(rng, nQuery, 300)
		tp := buildTreeIDs(t, pts)
		tq := buildTreeIDs(t, qs)
		qf, err := NewQueryFile(qs, blockPts, nil, 0)
		if err != nil {
			return false
		}
		want, _ := BruteForcePoints(pts, qs, Options{K: 2})
		match := func(got []GroupNeighbor, err error) bool {
			if err != nil || len(got) != len(want) {
				return false
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-6*(1+want[i].Dist) {
					return false
				}
			}
			return true
		}
		gcp, err := GCP(tp, tq, GCPOptions{Options: Options{K: 2}})
		if !match(gcp.Neighbors, err) {
			t.Log("GCP mismatch")
			return false
		}
		fq, err := FMQM(tp, qf, DiskOptions{Options: Options{K: 2}})
		if !match(fq.Neighbors, err) {
			t.Log("FMQM mismatch")
			return false
		}
		fb, err := FMBM(tp, qf, DiskOptions{Options: Options{K: 2}})
		if !match(fb.Neighbors, err) {
			t.Log("FMBM mismatch")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickLemma1 re-verifies Lemma 1 (the foundation of SPM) on arbitrary
// configurations, including degenerate ones.
func TestQuickLemma1(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%20 + 1
		qs := randPts(rng, n, 100)
		q := geom.Point{rng.Float64()*300 - 100, rng.Float64()*300 - 100} // arbitrary q
		p := geom.Point{rng.Float64()*300 - 100, rng.Float64()*300 - 100}
		lhs := geom.SumDist(p, qs)
		rhs := float64(n)*geom.Dist(p, q) - geom.SumDist(q, qs)
		return lhs >= rhs-1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickKBestMatchesSort checks the result-list data structure against
// a straightforward specification.
func TestQuickKBestMatchesSort(t *testing.T) {
	f := func(seed int64, kRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw)%10 + 1
		n := int(nRaw) % 100
		b := newKBest(k)
		type rec struct {
			id int64
			d  float64
		}
		var all []rec
		for i := 0; i < n; i++ {
			r := rec{int64(i), math.Trunc(rng.Float64() * 50)}
			all = append(all, r)
			b.offer(GroupNeighbor{ID: r.id, Dist: r.d})
		}
		// Specification: k smallest distances of distinct ids.
		for i := range all {
			for j := i + 1; j < len(all); j++ {
				if all[j].d < all[i].d {
					all[i], all[j] = all[j], all[i]
				}
			}
		}
		want := all
		if len(want) > k {
			want = want[:k]
		}
		got := b.results()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Dist != want[i].d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
