package core

import (
	"slices"

	"gnn/internal/geom"
	"gnn/internal/pagestore"
	"gnn/internal/rtree"
)

// FMBM answers a disk-resident GNN query with F-MBM (§4.3): the traversal
// of the R-tree on P is pruned with the in-memory block summaries (MBR M_i
// and cardinality n_i per block of the Hilbert-sorted query file) and only
// qualifying leaves pay the cost of streaming the query blocks.
//
//   - Heuristic 5: a node N is pruned when its weighted mindist
//     Σ_i n_i·mindist(N,M_i) ≥ best_dist.
//   - Heuristic 6: while a leaf's points accumulate their exact distances
//     group by group, point p_j is dropped as soon as
//     curr_dist(p_j) + Σ_{l≥i} n_l·mindist(p_j,M_l) ≥ best_dist.
//
// Nodes are visited in ascending weighted mindist (best-first by default,
// depth-first per Figure 4.7 on request). At each leaf, groups are read in
// descending mindist(N,M_i) order so far-away groups trigger heuristic 6
// early and spare the exact computations against the remaining groups.
//
// All per-leaf and per-traversal buffers (candidate lists, the suffix-
// bound matrix, the block ordering and the entry heap) are drawn from the
// pooled execution context, so repeated F-MBM queries stop allocating per
// visited node.
//
// SUM aggregate only (the weighted bounds are sums).
func FMBM(t *rtree.Tree, qf *QueryFile, opt DiskOptions) (*DiskReport, error) {
	opt.Options = opt.Options.withDefaults()
	if opt.K < 1 {
		return nil, ErrBadK
	}
	if opt.Aggregate != Sum {
		return nil, ErrUnsupportedAggregate
	}
	if opt.Weights != nil || opt.Region != nil {
		return nil, ErrUnsupportedOption
	}
	if opt.Cost == nil {
		opt.Cost = &pagestore.CostTracker{}
	}
	ec, owned := opt.exec()
	defer releaseIfOwned(ec, owned)
	f := &fmbmRun{rd: rtree.ReaderOver(t, opt.packedFor(t, false), opt.Cost),
		qf: qf, opt: opt, best: ec.kbestFor(opt.K, opt.Reject), ec: ec, report: &DiskReport{}}
	if t.Len() > 0 {
		switch {
		case f.rd.Packed() != nil && opt.Traversal == DepthFirst:
			rootRect, _ := t.Bounds()
			if err := f.dfPacked(f.rd.PackedRoot(), rootRect, 0); err != nil {
				return nil, err
			}
		case f.rd.Packed() != nil:
			if err := f.bfPacked(); err != nil {
				return nil, err
			}
		case opt.Traversal == DepthFirst:
			root := f.rd.Root()
			rootRect, _ := t.Bounds()
			if err := f.df(root, rootRect, 0); err != nil {
				return nil, err
			}
		default:
			if err := f.bf(); err != nil {
				return nil, err
			}
		}
	}
	f.report.Neighbors = f.best.results()
	f.report.Cost = *opt.Cost
	return f.report, nil
}

type fmbmRun struct {
	rd     rtree.Reader
	qf     *QueryFile
	opt    DiskOptions
	best   *kbest
	ec     *ExecContext
	report *DiskReport
}

// fmbmLeafCand is one leaf point whose global distance is being
// accumulated block by block. lbSuffix views into the execution context's
// flat backing: lbSuffix[s] = Σ_{l≥s in processing order} n_l·mindist(p, M_l),
// so lbSuffix[0] is the point's weighted mindist.
type fmbmLeafCand struct {
	e        rtree.Entry
	lbSuffix []float64
	curr     float64
}

// weightedMindist is the heuristic-5 bound Σ_i n_i·mindist(r, M_i).
func (f *fmbmRun) weightedMindist(r geom.Rect) float64 {
	var s float64
	for i := 0; i < f.qf.NumBlocks(); i++ {
		s += float64(f.qf.BlockLen(i)) * geom.MinDistRectRect(r, f.qf.MBR(i))
	}
	return s
}

// bf traverses internal entries best-first by weighted mindist; leaves are
// processed wholesale when popped.
func (f *fmbmRun) bf() error {
	root := f.rd.Root()
	if root.IsLeaf() {
		rootRect, _ := f.rd.Tree().Bounds()
		return f.processLeaf(root, rootRect)
	}
	heap := &f.ec.eheap
	heap.Reset()
	for _, e := range root.Entries() {
		heap.Push(e, f.weightedMindist(e.Rect))
	}
	for {
		item, ok := heap.Pop()
		if !ok {
			return nil
		}
		if item.Priority >= f.best.bound() {
			return nil // heuristic 5 ends the search: all keys are larger
		}
		nd := f.rd.Child(item.Value)
		if nd.IsLeaf() {
			if err := f.processLeaf(nd, item.Value.Rect); err != nil {
				return err
			}
			continue
		}
		for _, e := range nd.Entries() {
			heap.Push(e, f.weightedMindist(e.Rect))
		}
	}
}

// df is the depth-first variant of Figure 4.7, with per-depth pooled
// candidate buffers and an inlined insertion sort.
func (f *fmbmRun) df(nd rtree.Node, ndRect geom.Rect, depth int) error {
	if nd.IsLeaf() {
		return f.processLeaf(nd, ndRect)
	}
	buf := f.ec.cands.Level(depth)
	cands := *buf
	for _, e := range nd.Entries() {
		cands = append(cands, rtree.Cand{E: e, D: f.weightedMindist(e.Rect)})
	}
	rtree.SortCands(cands)
	*buf = cands
	for i := range cands {
		c := cands[i]
		if c.D >= f.best.bound() {
			return nil // heuristic 5; list is sorted, so stop
		}
		if err := f.df(f.rd.Child(c.E), c.E.Rect, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// orderBlocks returns the query blocks in descending mindist(N, M_i):
// far groups first, so their large exact distances inflate curr_dist
// early and heuristic 6 kills hopeless points before the near (expensive)
// groups. The per-block mindists are computed once into a pooled buffer
// instead of twice per comparison inside the sort closure. Shared by both
// layouts so the processing order is identical by construction.
func (f *fmbmRun) orderBlocks(ndRect geom.Rect) []int {
	m := f.qf.NumBlocks()
	f.ec.blockDist = growFloats(f.ec.blockDist, m)
	blockDist := f.ec.blockDist
	for i := 0; i < m; i++ {
		blockDist[i] = geom.MinDistRectRect(ndRect, f.qf.MBR(i))
	}
	f.ec.order = grow(f.ec.order, m)
	order := f.ec.order
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		switch {
		case blockDist[a] > blockDist[b]:
			return -1
		case blockDist[a] < blockDist[b]:
			return 1
		default:
			return a - b
		}
	})
	return order
}

// processLeaf accumulates the global distance of the leaf's points over
// all query blocks, applying heuristic 6 before each exact pass.
func (f *fmbmRun) processLeaf(nd rtree.Node, ndRect geom.Rect) error {
	f.report.Rounds++
	m := f.qf.NumBlocks()
	order := f.orderBlocks(ndRect)

	entries := nd.Entries()
	// One flat suffix-bound backing for the whole leaf: rows of m+1 carved
	// per candidate.
	f.ec.lbs = grow(f.ec.lbs, len(entries)*(m+1))
	f.ec.fcands = grow(f.ec.fcands, len(entries))[:0]
	cands := f.ec.fcands
	for ei, e := range entries {
		row := f.ec.lbs[ei*(m+1) : (ei+1)*(m+1)]
		row[m] = 0
		for s := m - 1; s >= 0; s-- {
			i := order[s]
			row[s] = row[s+1] +
				float64(f.qf.BlockLen(i))*geom.MinDistPointRect(e.Point, f.qf.MBR(i))
		}
		cands = append(cands, fmbmLeafCand{e: e, lbSuffix: row})
	}
	// Points sorted by weighted mindist, as in Figure 4.7.
	slices.SortFunc(cands, func(a, b fmbmLeafCand) int {
		switch {
		case a.lbSuffix[0] < b.lbSuffix[0]:
			return -1
		case a.lbSuffix[0] > b.lbSuffix[0]:
			return 1
		default:
			return 0
		}
	})

	// survivors holds indexes into cands; filtering shuffles indexes, not
	// candidate rows.
	f.ec.keep = grow(f.ec.keep, len(cands))
	survivors := f.ec.keep[:0]
	for i := range cands {
		survivors = append(survivors, i)
	}
	for s := 0; s < m && len(survivors) > 0; s++ {
		// Heuristic 6 before paying for the block read.
		keep := survivors[:0]
		for _, ci := range survivors {
			if cands[ci].curr+cands[ci].lbSuffix[s] < f.best.bound() {
				keep = append(keep, ci)
			}
		}
		survivors = keep
		if len(survivors) == 0 {
			break
		}
		blk, err := f.qf.ReadBlock(order[s], f.opt.Cost)
		if err != nil {
			return err
		}
		for _, ci := range survivors {
			cands[ci].curr += geom.SumDist(cands[ci].e.Point, blk)
		}
	}
	for _, ci := range survivors {
		f.best.offer(GroupNeighbor{Point: cands[ci].e.Point, ID: cands[ci].e.ID, Dist: cands[ci].curr})
	}
	return nil
}

// fmbmPackedCand is fmbmLeafCand for the packed layout: the entry shrinks
// to its leaf slot plus its position within the leaf, which indexes the
// column-major suffix-bound matrix.
type fmbmPackedCand struct {
	slot int32
	idx  int32
	curr float64
}

// weightedMindistPacked computes the heuristic-5 bound for node nd's whole
// routing range in fused per-block passes over the SoA corner arrays,
// writing dst[i] = Σ_l n_l·mindist(rect_i, M_l).
func (f *fmbmRun) weightedMindistPacked(s, e int32, dst []float64) {
	p := f.rd.Packed()
	lo, hi := p.RectSoA()
	dst = dst[:e-s]
	for i := range dst {
		dst[i] = 0
	}
	for b := 0; b < f.qf.NumBlocks(); b++ {
		geom.AccumWeightedMinDistRectsRect(lo, hi, int(s), int(e),
			float64(f.qf.BlockLen(b)), f.qf.MBR(b), dst)
	}
}

// dfPacked is the depth-first variant of Figure 4.7 over the packed
// arena. ndRect is consumed only when nd is a leaf (the block-ordering
// reference), exactly like df.
func (f *fmbmRun) dfPacked(nd int32, ndRect geom.Rect, depth int) error {
	p := f.rd.Packed()
	if p.IsLeaf(nd) {
		return f.processLeafPacked(nd, ndRect)
	}
	s, e := p.NodeRange(nd)
	cnt := int(e - s)
	f.ec.dbuf = grow(f.ec.dbuf, cnt)
	f.weightedMindistPacked(s, e, f.ec.dbuf)
	buf := f.ec.pcands.Level(depth)
	cands := *buf
	for i := 0; i < cnt; i++ {
		cands = append(cands, rtree.PCand{Ref: rtree.NodeRef(s + int32(i)), D: f.ec.dbuf[i]})
	}
	rtree.SortPCands(cands)
	*buf = cands
	for i := range cands {
		c := cands[i]
		if c.D >= f.best.bound() {
			return nil // heuristic 5; list is sorted, so stop
		}
		slot, _ := rtree.RefSlot(c.Ref)
		// The child rect is needed only if the child is a leaf; the scratch
		// rect is consumed (or ignored) before any deeper descent reuses it.
		p.RectInto(slot, &f.ec.prect)
		if err := f.dfPacked(f.rd.PackedChild(slot), f.ec.prect, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// bfPacked traverses internal routing slots best-first by their fused
// weighted mindist; leaves are processed wholesale when popped.
func (f *fmbmRun) bfPacked() error {
	p := f.rd.Packed()
	root := f.rd.PackedRoot()
	if p.IsLeaf(root) {
		rootRect, _ := f.rd.Tree().Bounds()
		return f.processLeafPacked(root, rootRect)
	}
	heap := &f.ec.peheap
	heap.Reset()
	push := func(nd int32) {
		s, e := p.NodeRange(nd)
		cnt := int(e - s)
		f.ec.dbuf = grow(f.ec.dbuf, cnt)
		f.weightedMindistPacked(s, e, f.ec.dbuf)
		for i := 0; i < cnt; i++ {
			heap.Push(rtree.NodeRef(s+int32(i)), f.ec.dbuf[i])
		}
	}
	push(root)
	for {
		item, ok := heap.Pop()
		if !ok {
			return nil
		}
		if item.Priority >= f.best.bound() {
			return nil // heuristic 5 ends the search: all keys are larger
		}
		slot, _ := rtree.RefSlot(item.Value)
		nd := f.rd.PackedChild(slot)
		if p.IsLeaf(nd) {
			p.RectInto(slot, &f.ec.prect)
			if err := f.processLeafPacked(nd, f.ec.prect); err != nil {
				return err
			}
			continue
		}
		push(nd)
	}
}

// processLeafPacked is processLeaf over the packed arena. The heuristic-6
// suffix bounds live in a column-major matrix (column s contiguous over
// the leaf's points) so each block contributes one fused unit-stride pass
// over the SoA point arrays instead of a strided per-point loop.
func (f *fmbmRun) processLeafPacked(nd int32, ndRect geom.Rect) error {
	p := f.rd.Packed()
	f.report.Rounds++
	m := f.qf.NumBlocks()
	order := f.orderBlocks(ndRect)

	s, e := p.NodeRange(nd)
	np := int(e - s)
	// Column-major suffix bounds: lbsT[c*np+i] = Σ_{l≥c in processing
	// order} n_l·mindist(p_i, M_l), with column m all zeros.
	f.ec.lbs = grow(f.ec.lbs, (m+1)*np)
	lbsT := f.ec.lbs
	for i := m * np; i < (m+1)*np; i++ {
		lbsT[i] = 0
	}
	pc := p.PointSoA()
	for c := m - 1; c >= 0; c-- {
		b := order[c]
		geom.AddWeightedMinDistPointsRect(pc, int(s), int(e),
			float64(f.qf.BlockLen(b)), f.qf.MBR(b),
			lbsT[(c+1)*np:(c+2)*np], lbsT[c*np:(c+1)*np])
	}

	f.ec.pfcands = grow(f.ec.pfcands, np)[:0]
	cands := f.ec.pfcands
	for i := 0; i < np; i++ {
		cands = append(cands, fmbmPackedCand{slot: s + int32(i), idx: int32(i)})
	}
	// Points sorted by weighted mindist (= suffix column 0), as in
	// Figure 4.7; same keys and comparator as the dynamic sort, so the
	// same permutation.
	slices.SortFunc(cands, func(a, b fmbmPackedCand) int {
		la, lb := lbsT[a.idx], lbsT[b.idx]
		switch {
		case la < lb:
			return -1
		case la > lb:
			return 1
		default:
			return 0
		}
	})

	f.ec.keep = grow(f.ec.keep, np)
	survivors := f.ec.keep[:0]
	for i := range cands {
		survivors = append(survivors, i)
	}
	for c := 0; c < m && len(survivors) > 0; c++ {
		// Heuristic 6 before paying for the block read.
		keep := survivors[:0]
		base := c * np
		for _, ci := range survivors {
			if cands[ci].curr+lbsT[base+int(cands[ci].idx)] < f.best.bound() {
				keep = append(keep, ci)
			}
		}
		survivors = keep
		if len(survivors) == 0 {
			break
		}
		blk, err := f.qf.ReadBlock(order[c], f.opt.Cost)
		if err != nil {
			return err
		}
		for _, ci := range survivors {
			cands[ci].curr += geom.SumDist(p.LeafPoint(cands[ci].slot), blk)
		}
	}
	for _, ci := range survivors {
		f.best.offer(GroupNeighbor{
			Point: p.LeafPoint(cands[ci].slot),
			ID:    p.LeafID(cands[ci].slot),
			Dist:  cands[ci].curr,
		})
	}
	return nil
}
