package core

import (
	"sort"

	"gnn/internal/geom"
	"gnn/internal/pagestore"
	"gnn/internal/pq"
	"gnn/internal/rtree"
)

// FMBM answers a disk-resident GNN query with F-MBM (§4.3): the traversal
// of the R-tree on P is pruned with the in-memory block summaries (MBR M_i
// and cardinality n_i per block of the Hilbert-sorted query file) and only
// qualifying leaves pay the cost of streaming the query blocks.
//
//   - Heuristic 5: a node N is pruned when its weighted mindist
//     Σ_i n_i·mindist(N,M_i) ≥ best_dist.
//   - Heuristic 6: while a leaf's points accumulate their exact distances
//     group by group, point p_j is dropped as soon as
//     curr_dist(p_j) + Σ_{l≥i} n_l·mindist(p_j,M_l) ≥ best_dist.
//
// Nodes are visited in ascending weighted mindist (best-first by default,
// depth-first per Figure 4.7 on request). At each leaf, groups are read in
// descending mindist(N,M_i) order so far-away groups trigger heuristic 6
// early and spare the exact computations against the remaining groups.
//
// SUM aggregate only (the weighted bounds are sums).
func FMBM(t *rtree.Tree, qf *QueryFile, opt DiskOptions) (*DiskReport, error) {
	opt.Options = opt.Options.withDefaults()
	if opt.K < 1 {
		return nil, ErrBadK
	}
	if opt.Aggregate != Sum {
		return nil, ErrUnsupportedAggregate
	}
	if opt.Weights != nil || opt.Region != nil {
		return nil, ErrUnsupportedOption
	}
	if opt.Cost == nil {
		opt.Cost = &pagestore.CostTracker{}
	}
	f := &fmbmRun{rd: t.Reader(opt.Cost), qf: qf, opt: opt, best: newKBest(opt.K), report: &DiskReport{}}
	if t.Len() > 0 {
		if opt.Traversal == DepthFirst {
			root := f.rd.Root()
			rootRect, _ := t.Bounds()
			if err := f.df(root, rootRect); err != nil {
				return nil, err
			}
		} else if err := f.bf(); err != nil {
			return nil, err
		}
	}
	f.report.Neighbors = f.best.results()
	f.report.Cost = *opt.Cost
	return f.report, nil
}

type fmbmRun struct {
	rd     rtree.Reader
	qf     *QueryFile
	opt    DiskOptions
	best   *kbest
	report *DiskReport
}

// weightedMindist is the heuristic-5 bound Σ_i n_i·mindist(r, M_i).
func (f *fmbmRun) weightedMindist(r geom.Rect) float64 {
	var s float64
	for i := 0; i < f.qf.NumBlocks(); i++ {
		s += float64(f.qf.BlockLen(i)) * geom.MinDistRectRect(r, f.qf.MBR(i))
	}
	return s
}

// bf traverses internal entries best-first by weighted mindist; leaves are
// processed wholesale when popped.
func (f *fmbmRun) bf() error {
	root := f.rd.Root()
	if root.IsLeaf() {
		rootRect, _ := f.rd.Tree().Bounds()
		return f.processLeaf(root, rootRect)
	}
	heap := pq.NewHeap[rtree.Entry](64)
	for _, e := range root.Entries() {
		heap.Push(e, f.weightedMindist(e.Rect))
	}
	for {
		item, ok := heap.Pop()
		if !ok {
			return nil
		}
		if item.Priority >= f.best.bound() {
			return nil // heuristic 5 ends the search: all keys are larger
		}
		nd := f.rd.Child(item.Value)
		if nd.IsLeaf() {
			if err := f.processLeaf(nd, item.Value.Rect); err != nil {
				return err
			}
			continue
		}
		for _, e := range nd.Entries() {
			heap.Push(e, f.weightedMindist(e.Rect))
		}
	}
}

// df is the depth-first variant of Figure 4.7.
func (f *fmbmRun) df(nd rtree.Node, ndRect geom.Rect) error {
	if nd.IsLeaf() {
		return f.processLeaf(nd, ndRect)
	}
	entries := nd.Entries()
	type cand struct {
		e rtree.Entry
		w float64
	}
	cands := make([]cand, 0, len(entries))
	for _, e := range entries {
		cands = append(cands, cand{e, f.weightedMindist(e.Rect)})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].w < cands[b].w })
	for _, c := range cands {
		if c.w >= f.best.bound() {
			return nil // heuristic 5; list is sorted, so stop
		}
		if err := f.df(f.rd.Child(c.e), c.e.Rect); err != nil {
			return err
		}
	}
	return nil
}

// processLeaf accumulates the global distance of the leaf's points over
// all query blocks, applying heuristic 6 before each exact pass.
func (f *fmbmRun) processLeaf(nd rtree.Node, ndRect geom.Rect) error {
	f.report.Rounds++
	m := f.qf.NumBlocks()

	// Read groups in descending mindist(N, M_i): far groups first, so
	// their large exact distances inflate curr_dist early and heuristic 6
	// kills hopeless points before the near (expensive) groups.
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return geom.MinDistRectRect(ndRect, f.qf.MBR(order[a])) >
			geom.MinDistRectRect(ndRect, f.qf.MBR(order[b]))
	})

	type cand struct {
		e rtree.Entry
		// lbSuffix[s] = Σ_{l≥s in processing order} n_l·mindist(p, M_l);
		// lbSuffix[0] is the point's weighted mindist.
		lbSuffix []float64
		curr     float64
	}
	entries := nd.Entries()
	cands := make([]*cand, 0, len(entries))
	for _, e := range entries {
		c := &cand{e: e, lbSuffix: make([]float64, m+1)}
		for s := m - 1; s >= 0; s-- {
			i := order[s]
			c.lbSuffix[s] = c.lbSuffix[s+1] +
				float64(f.qf.BlockLen(i))*geom.MinDistPointRect(e.Point, f.qf.MBR(i))
		}
		cands = append(cands, c)
	}
	// Points sorted by weighted mindist, as in Figure 4.7.
	sort.Slice(cands, func(a, b int) bool { return cands[a].lbSuffix[0] < cands[b].lbSuffix[0] })

	survivors := cands
	for s := 0; s < m && len(survivors) > 0; s++ {
		// Heuristic 6 before paying for the block read.
		keep := survivors[:0]
		for _, c := range survivors {
			if c.curr+c.lbSuffix[s] < f.best.bound() {
				keep = append(keep, c)
			}
		}
		survivors = keep
		if len(survivors) == 0 {
			break
		}
		blk, err := f.qf.ReadBlock(order[s], f.opt.Cost)
		if err != nil {
			return err
		}
		for _, c := range survivors {
			c.curr += geom.SumDist(c.e.Point, blk)
		}
	}
	for _, c := range survivors {
		f.best.offer(GroupNeighbor{Point: c.e.Point, ID: c.e.ID, Dist: c.curr})
	}
	return nil
}
