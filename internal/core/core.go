// Package core implements the paper's contribution: algorithms that answer
// group nearest neighbor (GNN) queries over a dataset P indexed by an
// R-tree and a query group Q.
//
// Memory-resident Q (§3):
//
//   - MQM — multiple query method: one incremental point-NN stream per
//     query point, combined with the threshold algorithm.
//   - SPM — single point method: one traversal ordered around the group
//     centroid, pruned with Lemma 1 / heuristic 1.
//   - MBM — minimum bounding method: one traversal pruned with the query
//     MBR (heuristics 2 and 3). The incremental variant backs F-MQM.
//
// Disk-resident Q (§4):
//
//   - GCP — group closest pairs over R-trees on P and Q (heuristic 4).
//   - FMQM — F-MQM over Hilbert-sorted memory-sized blocks of Q.
//   - FMBM — F-MBM with the weighted-mindist heuristics 5 and 6.
//
// BruteForce provides the exact baseline used for validation, and every
// algorithm supports k ≥ 1 results. MQM, MBM and BruteForce additionally
// support the MAX and MIN aggregates (the paper's future-work extension);
// SPM, GCP, F-MQM and F-MBM are SUM-only because their pruning bounds
// (Lemma 1, heuristics 4-6) are derived for the sum of distances.
package core

import (
	"errors"
	"fmt"
	"math"

	"gnn/internal/geom"
	"gnn/internal/pagestore"
	"gnn/internal/rtree"
)

// GroupNeighbor is one GNN result: a data point and its aggregate distance
// to the query group.
type GroupNeighbor struct {
	Point geom.Point
	ID    int64
	Dist  float64
}

// RejectFunc vetoes a candidate data point (see Options.Reject). It must
// be pure and safe for concurrent use: the sharded scatter calls one
// function value from every shard worker.
type RejectFunc func(p geom.Point, id int64) bool

// Aggregate selects the distance-combination function dist(p,Q).
type Aggregate int

const (
	// Sum is the paper's aggregate: dist(p,Q) = Σ_i |p qi|.
	Sum Aggregate = iota
	// Max is the extension aggregate max_i |p qi| (minimises the farthest
	// group member's travel).
	Max
	// Min is the extension aggregate min_i |p qi| (any one member reaches
	// the point).
	Min
)

// String names the aggregate.
func (a Aggregate) String() string {
	switch a {
	case Sum:
		return "sum"
	case Max:
		return "max"
	case Min:
		return "min"
	default:
		return fmt.Sprintf("Aggregate(%d)", int(a))
	}
}

// Traversal selects between the two branch-and-bound paradigms of §2.
type Traversal int

const (
	// BestFirst is the I/O-optimal ordering of [HS99]; the paper's
	// experiments use it for all algorithms (§5).
	BestFirst Traversal = iota
	// DepthFirst is the recursive ordering of [RKV95]; supported by SPM,
	// MBM and F-MBM, exactly as the paper notes.
	DepthFirst
)

// CentroidMethod selects how SPM approximates the group centroid.
type CentroidMethod int

const (
	// GradientDescent is the paper's method (§3.2).
	GradientDescent CentroidMethod = iota
	// Weiszfeld is the classical fixed-point iteration (ablation).
	Weiszfeld
	// ArithmeticMean skips optimisation entirely (ablation): Lemma 1
	// holds for any point, so correctness is unaffected — only pruning
	// power degrades.
	ArithmeticMean
)

// Options configures a query. The zero value means: k = 1, SUM aggregate,
// best-first traversal, full heuristics, gradient-descent centroid.
type Options struct {
	// K is the number of neighbors to return (default 1).
	K int
	// Aggregate is the distance combination (default Sum).
	Aggregate Aggregate
	// Traversal picks best-first or depth-first where both exist.
	Traversal Traversal
	// DisableHeuristic3 makes MBM use heuristic 2 only — the ablation of
	// §5.1 footnote 3.
	DisableHeuristic3 bool
	// Centroid picks SPM's centroid solver.
	Centroid CentroidMethod
	// Weights assigns a positive weight per query point:
	// dist(p,Q) = agg_i w_i·|p q_i| (extension; MQM, SPM, MBM, BruteForce).
	// nil means unweighted. Must match the query group's length.
	Weights []float64
	// Region restricts results to data points inside the rectangle
	// (extension, cf. constrained NN [FSAA01]; MQM, SPM, MBM, BruteForce).
	// nil means unconstrained.
	Region *geom.Rect
	// Trace, when non-nil, accumulates per-heuristic pruning diagnostics
	// (populated by MQM, SPM, MBM, the MBM iterator and BruteForce; each
	// kernel fills the counters that apply to it — see Trace).
	Trace *Trace
	// Stages, when non-nil, accumulates named per-stage wall times
	// (scatter per shard, merge, overlay sources). Like Trace it is
	// optional and nil-safe; unlike Trace it must only be appended to
	// from one goroutine — parallel stages record into private slots and
	// are merged at gather time.
	Stages *StageLog
	// Cost, when non-nil, accumulates this query's I/O cost in place: node
	// accesses of every tree the algorithm traverses, plus the page reads
	// of a disk-resident query set. Give each query its own tracker; the
	// index-wide aggregate accrues either way, so per-query costs always
	// sum to the aggregate. A nil Cost charges the aggregate only.
	Cost *pagestore.CostTracker
	// Exec, when non-nil, supplies the query's pooled scratch arena so a
	// caller answering many sequential queries (the batch engine) reuses
	// one context instead of cycling the pool. A nil Exec draws a context
	// from the pool for the duration of the call. Like Cost, an Exec must
	// not be shared by concurrent queries.
	Exec *ExecContext
	// Packed, when non-nil and still valid for the queried tree, makes the
	// traversal run against the flat SoA arena instead of the dynamic
	// nodes. Results, per-query costs and node-access counts are identical
	// between the layouts; only the memory walked differs. A stale or
	// mismatched snapshot is ignored (dynamic fallback), never an error.
	Packed *rtree.Packed
	// Shared, when non-nil, couples this traversal to the other partitions
	// of one sharded query: MQM, SPM, MBM and BruteForce prune with
	// min(local k-th best, Shared) and publish their local k-th best into
	// it whenever it tightens. The per-partition result lists may then be
	// truncated below K — every truncated candidate provably cannot rank
	// among the final k — and MergeNeighbors reassembles the exact answer.
	// nil (the default) is a plain standalone query.
	Shared *SharedBound
	// Reject, when non-nil, vetoes candidates before they can enter the
	// result set: a data point for which Reject returns true is skipped
	// as if it were not indexed. The overlay layer uses it to filter
	// delete-tombstoned base points out of base-tree traversals. The
	// filter acts at the result accumulator (and the iterator's candidate
	// stage), never at node granularity, so the traversal order and the
	// node-access counts of a traversal are unchanged — only which leaf
	// points may become results. nil rejects nothing.
	Reject RejectFunc
	// GenericMax forces the MAX aggregate onto the generic per-member
	// pruning bounds, disabling the dedicated minimum-enclosing-ball
	// kernel (see maxmeb.go). Results are identical either way; the knob
	// exists for differential testing and for benchmarking the dedicated
	// kernel's node-access advantage.
	GenericMax bool
	// Cancel, when non-nil, is polled at bounded intervals inside the
	// MQM/SPM/MBM/BruteForce traversal loops; once its context fires the
	// kernel unwinds and returns ErrCanceled/ErrDeadlineExceeded, with the
	// cost accrued so far intact in Cost (partial cost accounting). Like
	// Cost and Exec it must not be shared by concurrent traversals — the
	// sharded scatter Forks it per shard. nil (the default) runs the query
	// to completion unconditionally.
	Cancel *CancelCheck
}

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 1
	}
	return o
}

// Errors shared by the algorithms.
var (
	// ErrEmptyQuery reports an empty query group.
	ErrEmptyQuery = errors.New("core: empty query group")
	// ErrBadK reports a non-positive k.
	ErrBadK = errors.New("core: k must be >= 1")
	// ErrUnsupportedAggregate reports an aggregate the algorithm's pruning
	// bounds do not cover.
	ErrUnsupportedAggregate = errors.New("core: aggregate not supported by this algorithm")
	// ErrBudgetExceeded reports that GCP hit its pair budget before
	// terminating (the paper's "GCP does not terminate at all" regime).
	ErrBudgetExceeded = errors.New("core: pair budget exceeded before termination")
	// ErrUnsupportedOption reports an extension option (weights, region)
	// passed to an algorithm whose bounds do not cover it (the disk-
	// resident family).
	ErrUnsupportedOption = errors.New("core: option not supported by this algorithm")
)

// packedFor returns the packed snapshot the traversal should use, or nil
// for the dynamic layout. The region extension stays on the dynamic nodes
// unless the algorithm filters per point only (allowRegion): the packed
// kernels keep their fused loops branch-free rather than threading a
// rectangle test through every pass.
func (o Options) packedFor(t *rtree.Tree, allowRegion bool) *rtree.Packed {
	if o.Packed == nil || (o.Region != nil && !allowRegion) || !o.Packed.Valid(t) {
		return nil
	}
	return o.Packed
}

func validate(t *rtree.Tree, qs []geom.Point, opt Options) error {
	if len(qs) == 0 {
		return ErrEmptyQuery
	}
	if opt.K < 1 {
		return ErrBadK
	}
	for i, q := range qs {
		if len(q) != t.Dim() {
			return fmt.Errorf("core: query point %d has dimension %d, tree dimension %d",
				i, len(q), t.Dim())
		}
	}
	return nil
}

// aggDist returns dist(p,Q) under the aggregate.
func aggDist(a Aggregate, p geom.Point, qs []geom.Point) float64 {
	switch a {
	case Max:
		return geom.MaxDistToGroup(p, qs)
	case Min:
		return geom.MinDistToGroup(p, qs)
	default:
		return geom.SumDist(p, qs)
	}
}

// aggCombine folds per-query-point lower bounds into a group bound: given
// values v_i that lower-bound |p q_i| for every p of interest, the result
// lower-bounds dist(p,Q).
func aggCombine(a Aggregate, vs []float64) float64 {
	switch a {
	case Max:
		m := 0.0
		for _, v := range vs {
			if v > m {
				m = v
			}
		}
		return m
	case Min:
		m := math.Inf(1)
		for _, v := range vs {
			if v < m {
				m = v
			}
		}
		return m
	default:
		s := 0.0
		for _, v := range vs {
			s += v
		}
		return s
	}
}

// nodeLB returns the tight per-query-point lower bound on dist(p,Q) for
// any p inside r — heuristic 3 for SUM, the analogous bounds for MAX/MIN.
// The MAX/MIN bounds compare squared mindists and Sqrt only the winner
// (squaring is monotone); SUM adds the distances themselves, so each term
// keeps its Sqrt.
func nodeLB(a Aggregate, r geom.Rect, qs []geom.Point) float64 {
	switch a {
	case Max:
		return math.Sqrt(geom.MaxMinDistSqRectToGroup(r, qs))
	case Min:
		return math.Sqrt(geom.MinMinDistSqRectToGroup(r, qs))
	default:
		return geom.SumMinDistRectToGroup(r, qs)
	}
}

// quickNodeLB returns the cheap single-computation lower bound on
// dist(p,Q) for p inside r, from the query MBR — heuristic 2 for SUM.
func quickNodeLB(a Aggregate, r geom.Rect, qmbr geom.Rect, n int) float64 {
	d := geom.MinDistRectRect(r, qmbr)
	if a == Sum {
		return float64(n) * d
	}
	return d // both max_i and min_i of |p qi| are ≥ mindist(r, MBR(Q))
}

// quickPointLB is quickNodeLB for a data point.
func quickPointLB(a Aggregate, p geom.Point, qmbr geom.Rect, n int) float64 {
	d := geom.MinDistPointRect(p, qmbr)
	if a == Sum {
		return float64(n) * d
	}
	return d
}

// kbest maintains the k best (smallest-distance) group neighbors found so
// far, deduplicated by point ID. It is a small sorted slice rather than a
// heap because the paper's k ≤ 32. When shared is non-nil the accumulator
// participates in a sharded query: bound() folds the cross-shard bound in
// and offer publishes local improvements back (see SharedBound).
type kbest struct {
	k      int
	items  []GroupNeighbor
	shared *SharedBound
	reject RejectFunc
}

func newKBest(k int) *kbest {
	return &kbest{k: k, items: make([]GroupNeighbor, 0, k)}
}

// bound returns the current pruning bound best_dist: the k-th best
// distance — or +Inf while fewer than k neighbors are known — tightened
// by the cross-shard bound when one is attached.
func (b *kbest) bound() float64 {
	local := math.Inf(1)
	if len(b.items) >= b.k {
		local = b.items[len(b.items)-1].Dist
	}
	if b.shared != nil {
		if s := b.shared.Load(); s < local {
			return s
		}
	}
	return local
}

// offer inserts the candidate if it ranks among the k best and its ID is
// not already present. Returns true when the result set changed. A
// rejected candidate (Options.Reject) never changes the set, so kernels
// naturally keep searching past tombstoned points: their pruning bound
// only tightens from candidates that remain live.
func (b *kbest) offer(g GroupNeighbor) bool {
	if b.reject != nil && b.reject(g.Point, g.ID) {
		return false
	}
	for _, it := range b.items {
		if it.ID == g.ID {
			return false // already a result (same point ⇒ same distance)
		}
	}
	if len(b.items) == b.k && g.Dist >= b.items[len(b.items)-1].Dist {
		return false
	}
	pos := len(b.items)
	for i, it := range b.items {
		if g.Dist < it.Dist {
			pos = i
			break
		}
	}
	b.items = append(b.items, GroupNeighbor{})
	copy(b.items[pos+1:], b.items[pos:])
	b.items[pos] = g
	if len(b.items) > b.k {
		b.items = b.items[:b.k]
	}
	if b.shared != nil && len(b.items) == b.k {
		b.shared.Tighten(b.items[len(b.items)-1].Dist)
	}
	return true
}

// results returns the accumulated neighbors in ascending distance order.
func (b *kbest) results() []GroupNeighbor {
	out := make([]GroupNeighbor, len(b.items))
	copy(out, b.items)
	return out
}

// BruteForce scans every indexed point and returns the exact k GNNs. It is
// the validation baseline; it does not charge node accesses (a sequential
// file scan, not an index traversal).
func BruteForce(t *rtree.Tree, qs []geom.Point, opt Options) ([]GroupNeighbor, error) {
	opt = opt.withDefaults()
	if err := validate(t, qs, opt); err != nil {
		return nil, err
	}
	w, err := newWeightCtx(opt.Weights, len(qs))
	if err != nil {
		return nil, err
	}
	ec, owned := opt.exec()
	defer releaseIfOwned(ec, owned)
	best := ec.kbestShared(opt.K, opt.Shared, opt.Reject)
	if p := opt.packedFor(t, true); p != nil {
		bruteForcePacked(p, qs, w, opt, best, ec)
		if err := opt.Cancel.Failure(); err != nil {
			return nil, err
		}
		return best.results(), nil
	}
	t.All(func(p geom.Point, id int64) bool {
		if opt.Cancel.Stop() {
			return false
		}
		if tr := opt.Trace; tr != nil {
			tr.PointsScanned++
		}
		if regionAllows(opt.Region, p) {
			if tr := opt.Trace; tr != nil {
				tr.ExactDistances++
			}
			best.offer(GroupNeighbor{Point: p, ID: id, Dist: aggDistW(opt.Aggregate, p, qs, w)})
		}
		return true
	})
	if err := opt.Cancel.Failure(); err != nil {
		return nil, err
	}
	return best.results(), nil
}

// bruteForcePacked is the packed-layout baseline: the flat leaf arena is
// consumed in streaming chunks, each chunk's aggregate distances computed
// by one fused group kernel over the SoA coordinate arrays — the linear
// scan the packed layout was built to make fast. Offers happen in the
// same depth-first slot order as Tree.All, so results are identical to
// the dynamic scan.
func bruteForcePacked(p *rtree.Packed, qs []geom.Point, w *weightCtx, opt Options, best *kbest, ec *ExecContext) {
	pc := p.PointSoA()
	n := p.NumLeafSlots()
	const chunk = 512
	var ws []float64
	if w != nil {
		ws = w.w
	}
	for s := 0; s < n; s += chunk {
		// A direct poll per chunk, not the strided Stop: each chunk is
		// already hundreds of points × the group size in distance work,
		// so one context read per chunk is noise — while a 256-chunk
		// stride would let a canceled scan run for another 128k points.
		if opt.Cancel.Check() != nil {
			return
		}
		e := s + chunk
		if e > n {
			e = n
		}
		if tr := opt.Trace; tr != nil {
			// The fused kernel computes every chunk point's exact group
			// distance in one pass, region filtering happens after.
			tr.PointsScanned += e - s
			tr.ExactDistances += e - s
		}
		ec.dbuf = grow(ec.dbuf, e-s)
		dists := ec.dbuf
		sqrtEach := false
		switch opt.Aggregate {
		case Max:
			if ws == nil {
				geom.MaxDistSqPointsGroup(pc, s, e, qs, dists)
				sqrtEach = true
			} else {
				geom.MaxDistPointsGroupW(pc, s, e, qs, ws, dists)
			}
		case Min:
			if ws == nil {
				geom.MinDistSqPointsGroup(pc, s, e, qs, dists)
				sqrtEach = true
			} else {
				geom.MinDistPointsGroupW(pc, s, e, qs, ws, dists)
			}
		default:
			geom.SumDistPointsGroup(pc, s, e, qs, ws, dists)
		}
		for i := 0; i < e-s; i++ {
			slot := int32(s + i)
			pt := p.LeafPoint(slot)
			if !regionAllows(opt.Region, pt) {
				continue
			}
			d := dists[i]
			if sqrtEach {
				d = math.Sqrt(d)
			}
			best.offer(GroupNeighbor{Point: pt, ID: p.LeafID(slot), Dist: d})
		}
	}
}

// BruteForcePoints computes the exact k GNNs of qs over a plain point
// slice (ids are the slice indexes). Used to validate the disk-resident
// algorithms without building a tree.
func BruteForcePoints(pts []geom.Point, qs []geom.Point, opt Options) ([]GroupNeighbor, error) {
	opt = opt.withDefaults()
	if len(qs) == 0 {
		return nil, ErrEmptyQuery
	}
	if opt.K < 1 {
		return nil, ErrBadK
	}
	best := newKBest(opt.K)
	for i, p := range pts {
		best.offer(GroupNeighbor{Point: p, ID: int64(i), Dist: aggDist(opt.Aggregate, p, qs)})
	}
	return best.results(), nil
}
