package core

import (
	"fmt"

	"gnn/internal/geom"
	"gnn/internal/pagestore"
)

// DefaultBlockPoints is the paper's block size for disk-resident query
// sets: "split into blocks of 10000 points, that fit in memory" (§5.2).
const DefaultBlockPoints = 10000

// QueryFile models a disk-resident, non-indexed query set Q, prepared as
// §4.2/4.3 prescribe: the points are sorted by Hilbert value and packed
// into pages; consecutive pages form memory-sized blocks Q_1..Q_m. The
// block MBRs M_i and cardinalities n_i are retained in memory (they are
// by-products of the sorting pass, whose cost the paper excludes).
//
// Reading a block charges one physical page read per page it spans to the
// file's shared Accountant (optionally via an LRU buffer) and to the
// caller's per-query tracker. A QueryFile is immutable after construction,
// so concurrent queries may read it freely.
type QueryFile struct {
	file   *pagestore.PointFile
	blocks [][]geom.Point // decoded blocks (charging happens in file)
	mbrs   []geom.Rect
	ns     []int
	total  int
}

// NewQueryFile builds a QueryFile from 2-D query points. blockPoints
// defaults to DefaultBlockPoints when zero; acct may be nil (private
// accounting); basePage offsets the file's page IDs for shared buffers.
func NewQueryFile(pts []geom.Point, blockPoints int, acct *pagestore.Accountant, basePage pagestore.PageID) (*QueryFile, error) {
	if len(pts) == 0 {
		return nil, ErrEmptyQuery
	}
	for i, p := range pts {
		if len(p) != 2 {
			return nil, fmt.Errorf("core: query point %d is %d-dimensional; query files are 2-D", i, len(p))
		}
	}
	if blockPoints == 0 {
		blockPoints = DefaultBlockPoints
	}
	sorted := hilbertSortDataset(pts)
	pairs := make([][2]float64, len(sorted))
	for i, p := range sorted {
		pairs[i] = [2]float64{p[0], p[1]}
	}
	file, err := pagestore.NewPointFile(pairs, pagestore.DefaultPageCapacity, blockPoints, acct, basePage)
	if err != nil {
		return nil, err
	}
	qf := &QueryFile{file: file, total: len(sorted)}
	m := file.NumBlocks()
	qf.blocks = make([][]geom.Point, m)
	qf.mbrs = make([]geom.Rect, m)
	qf.ns = make([]int, m)
	for i := 0; i < m; i++ {
		lo := i * blockPoints
		hi := lo + blockPoints
		if hi > len(sorted) {
			hi = len(sorted)
		}
		qf.blocks[i] = sorted[lo:hi]
		qf.mbrs[i] = geom.BoundingRect(sorted[lo:hi])
		qf.ns[i] = hi - lo
	}
	return qf, nil
}

// NumBlocks returns m, the number of memory-sized blocks.
func (qf *QueryFile) NumBlocks() int { return len(qf.ns) }

// Len returns the total number of query points n.
func (qf *QueryFile) Len() int { return qf.total }

// BlockLen returns n_i without touching the disk.
func (qf *QueryFile) BlockLen(i int) int { return qf.ns[i] }

// MBR returns M_i without touching the disk.
func (qf *QueryFile) MBR(i int) geom.Rect { return qf.mbrs[i] }

// ReadBlock loads block i, charging its page reads to the file's
// accountant and the caller's tracker (nil for aggregate-only), and
// returns its points. The returned slice is shared and must be treated as
// read-only.
func (qf *QueryFile) ReadBlock(i int, tk *pagestore.CostTracker) ([]geom.Point, error) {
	if _, err := qf.file.ReadBlock(i, tk); err != nil { // charges the I/O
		return nil, err
	}
	return qf.blocks[i], nil
}

// Accountant exposes the file's shared accountant (page reads of Q).
func (qf *QueryFile) Accountant() *pagestore.Accountant { return qf.file.Accountant() }

// Pages returns the number of pages Q occupies.
func (qf *QueryFile) Pages() int { return qf.file.Pages() }

// AllPoints reads every block (charging the I/O to tk and the aggregate)
// and returns the full query group; used by validation baselines.
func (qf *QueryFile) AllPoints(tk *pagestore.CostTracker) ([]geom.Point, error) {
	out := make([]geom.Point, 0, qf.total)
	for i := 0; i < qf.NumBlocks(); i++ {
		blk, err := qf.ReadBlock(i, tk)
		if err != nil {
			return nil, err
		}
		out = append(out, blk...)
	}
	return out, nil
}
