package core

import (
	"math/rand"
	"testing"

	"gnn/internal/geom"
	"gnn/internal/rtree"
)

// Exhaustion paths: k exceeding |P| must drain every stream/loop cleanly.
func TestDiskAlgorithmsKLargerThanDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	pts := randPts(rng, 12, 100)
	qs := randPts(rng, 30, 100)
	tp := buildTreeIDs(t, pts)
	tq := buildTreeIDs(t, qs)
	qf, _ := NewQueryFile(qs, 7, nil, 0)
	want, _ := BruteForcePoints(pts, qs, Options{K: 20})
	if len(want) != 12 {
		t.Fatalf("baseline has %d results", len(want))
	}

	rep, err := GCP(tp, tq, GCPOptions{Options: Options{K: 20}})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "GCP/k>|P|", rep.Neighbors, want)

	drep, err := FMQM(tp, qf, DiskOptions{Options: Options{K: 20}})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "FMQM/k>|P|", drep.Neighbors, want)

	drep, err = FMBM(tp, qf, DiskOptions{Options: Options{K: 20}})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "FMBM/k>|P|", drep.Neighbors, want)
}

func TestDiskAlgorithmsSingleDataPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	pts := []geom.Point{{50, 50}}
	qs := randPts(rng, 25, 100)
	tp := buildTreeIDs(t, pts)
	tq := buildTreeIDs(t, qs)
	qf, _ := NewQueryFile(qs, 10, nil, 0)
	want := geom.SumDist(pts[0], qs)

	rep, err := GCP(tp, tq, GCPOptions{})
	if err != nil || len(rep.Neighbors) != 1 || !almostSame(rep.Neighbors[0].Dist, want) {
		t.Fatalf("GCP: %v %+v", err, rep)
	}
	drep, err := FMQM(tp, qf, DiskOptions{})
	if err != nil || len(drep.Neighbors) != 1 || !almostSame(drep.Neighbors[0].Dist, want) {
		t.Fatalf("FMQM: %v %+v", err, drep)
	}
	drep, err = FMBM(tp, qf, DiskOptions{})
	if err != nil || len(drep.Neighbors) != 1 || !almostSame(drep.Neighbors[0].Dist, want) {
		t.Fatalf("FMBM: %v %+v", err, drep)
	}
}

func almostSame(a, b float64) bool {
	d := a - b
	return d < 1e-6*(1+b) && d > -1e-6*(1+b)
}

// Duplicate data points must all be reportable as distinct results.
func TestDuplicateDataPointsAsResults(t *testing.T) {
	tr, _ := rtree.New(rtree.Config{MaxEntries: 4})
	p := geom.Point{10, 10}
	for i := 0; i < 5; i++ {
		tr.Insert(p, int64(i))
	}
	tr.Insert(geom.Point{90, 90}, 99)
	qs := []geom.Point{{9, 9}, {11, 11}}
	for _, a := range memAlgos {
		got, err := a.run(tr, qs, Options{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 5 {
			t.Fatalf("%s returned %d of 5 duplicates", a.name, len(got))
		}
		ids := map[int64]bool{}
		for _, g := range got {
			if !almostSame(g.Dist, got[0].Dist) {
				t.Fatalf("%s: duplicate with different distance", a.name)
			}
			ids[g.ID] = true
		}
		if len(ids) != 5 {
			t.Fatalf("%s returned repeated ids", a.name)
		}
	}
}

// Query points far outside the data workspace (disjoint regime of §5.2).
func TestDisjointQueryWorkspace(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	pts := randPts(rng, 400, 100) // data in [0,100]²
	qs := make([]geom.Point, 16)  // queries around (5000, 5000)
	for i := range qs {
		qs[i] = geom.Point{5000 + rng.Float64()*100, 5000 + rng.Float64()*100}
	}
	tr := buildTree(t, pts, 8)
	want, _ := BruteForce(tr, qs, Options{K: 3})
	for _, a := range memAlgos {
		got, err := a.run(tr, qs, Options{K: 3})
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, a.name+"/disjoint", got, want)
	}
	// Disk algorithms in the disjoint regime.
	tp := buildTreeIDs(t, pts)
	tq := buildTreeIDs(t, qs)
	qf, _ := NewQueryFile(qs, 5, nil, 0)
	wantPts, _ := BruteForcePoints(pts, qs, Options{K: 3})
	rep, err := GCP(tp, tq, GCPOptions{Options: Options{K: 3}})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "GCP/disjoint", rep.Neighbors, wantPts)
	drep, err := FMQM(tp, qf, DiskOptions{Options: Options{K: 3}})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "FMQM/disjoint", drep.Neighbors, wantPts)
	drep, err = FMBM(tp, qf, DiskOptions{Options: Options{K: 3}})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "FMBM/disjoint", drep.Neighbors, wantPts)
}

// Identical P and Q: the GNN of Q over P=Q is the group's own medoid.
func TestQueryEqualsData(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	pts := randPts(rng, 60, 100)
	tr := buildTree(t, pts, 8)
	want, _ := BruteForce(tr, pts, Options{})
	for _, a := range memAlgos {
		got, err := a.run(tr, pts, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, a.name+"/medoid", got, want)
	}
	// The medoid's distance must not exceed any single member's total.
	for _, p := range pts {
		if want[0].Dist > geom.SumDist(p, pts)+1e-9 {
			t.Fatal("medoid not optimal among members")
		}
	}
}

// GCP with k > 1: pruning must not start before k complete neighbors.
func TestGCPKPruningDelay(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	for trial := 0; trial < 10; trial++ {
		pts := randPts(rng, 150, 500)
		qs := randPts(rng, 20, 500)
		tp := buildTreeIDs(t, pts)
		tq := buildTreeIDs(t, qs)
		for _, k := range []int{2, 5, 10} {
			want, _ := BruteForcePoints(pts, qs, Options{K: k})
			rep, err := GCP(tp, tq, GCPOptions{Options: Options{K: k}})
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "GCP/k", rep.Neighbors, want)
		}
	}
}

// F-MQM rounds accounting: phases must be bounded by draws plus flushes.
func TestFMQMRoundsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	pts := clusteredPts(rng, 800, 1000)
	qs := randPts(rng, 100, 200)
	tr := buildTreeIDs(t, pts)
	qf, _ := NewQueryFile(qs, 10, nil, 0) // 10 blocks
	rep, err := FMQM(tr, qf, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds == 0 || rep.Rounds > 100*qf.NumBlocks() {
		t.Fatalf("implausible round count %d for %d blocks", rep.Rounds, qf.NumBlocks())
	}
}

// The disk algorithms' bounds do not cover weights or regions: both must
// be rejected loudly rather than silently ignored.
func TestDiskAlgorithmsRejectExtensionOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	pts := randPts(rng, 60, 100)
	qs := randPts(rng, 10, 100)
	tp := buildTreeIDs(t, pts)
	tq := buildTreeIDs(t, qs)
	qf, _ := NewQueryFile(qs, 5, nil, 0)
	region := geom.NewRect(geom.Point{0, 0}, geom.Point{50, 50})
	for _, opt := range []Options{
		{Weights: []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}},
		{Region: &region},
	} {
		if _, err := GCP(tp, tq, GCPOptions{Options: opt}); err != ErrUnsupportedOption {
			t.Errorf("GCP err = %v", err)
		}
		if _, err := FMQM(tp, qf, DiskOptions{Options: opt}); err != ErrUnsupportedOption {
			t.Errorf("FMQM err = %v", err)
		}
		if _, err := FMBM(tp, qf, DiskOptions{Options: opt}); err != ErrUnsupportedOption {
			t.Errorf("FMBM err = %v", err)
		}
	}
}
