package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"gnn/internal/geom"
	"gnn/internal/pagestore"
	"gnn/internal/rtree"
)

// Differential suite for the packed SoA layout: every algorithm must
// return byte-identical results AND charge byte-identical per-query costs
// (logical and physical node accesses, buffer hits) on both layouts. This
// is strict equality, not tolerance: the fused kernels reproduce the
// scalar floating-point ops exactly, so any divergence is a bug.

// diffRun answers the same query on the dynamic and packed layouts and
// fails on any divergence in results, per-query cost, or trace counters.
func diffRun(t *testing.T, name string, packed *rtree.Packed,
	run func(Options) ([]GroupNeighbor, error), opt Options) {
	t.Helper()
	var dtk, ptk pagestore.CostTracker
	var dtr, ptr Trace

	opt.Packed = nil
	opt.Cost = &dtk
	opt.Trace = &dtr
	dyn, err := run(opt)
	if err != nil {
		t.Fatalf("%s (dynamic): %v", name, err)
	}
	opt.Packed = packed
	opt.Cost = &ptk
	opt.Trace = &ptr
	pkd, err := run(opt)
	if err != nil {
		t.Fatalf("%s (packed): %v", name, err)
	}
	if !reflect.DeepEqual(dyn, pkd) {
		t.Fatalf("%s: results diverged between layouts\ndynamic: %v\npacked:  %v", name, dyn, pkd)
	}
	if dtk != ptk {
		t.Fatalf("%s: per-query cost diverged\ndynamic: %+v\npacked:  %+v", name, dtk, ptk)
	}
	if dtr != ptr {
		t.Fatalf("%s: trace diverged\ndynamic: %+v\npacked:  %+v", name, dtr, ptr)
	}
}

func TestPackedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pts := clusteredPts(rng, 3000, 1000)
	tr := buildTree(t, pts, 16)
	packed := tr.Pack()

	for trial := 0; trial < 12; trial++ {
		n := []int{1, 3, 8, 32}[trial%4]
		qs := make([]geom.Point, n)
		base := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		for i := range qs {
			qs[i] = geom.Point{base[0] + rng.Float64()*150, base[1] + rng.Float64()*150}
		}
		var weights []float64
		if trial%2 == 1 {
			weights = make([]float64, n)
			for i := range weights {
				weights[i] = 0.25 + rng.Float64()*4
			}
		}
		k := []int{1, 4, 9}[trial%3]
		for _, agg := range []Aggregate{Sum, Max, Min} {
			opt := Options{K: k, Aggregate: agg, Weights: weights}
			type cell struct {
				name string
				run  func(Options) ([]GroupNeighbor, error)
				sum  bool
			}
			cells := []cell{
				{"BruteForce", func(o Options) ([]GroupNeighbor, error) { return BruteForce(tr, qs, o) }, false},
				{"MQM", func(o Options) ([]GroupNeighbor, error) { return MQM(tr, qs, o) }, false},
				{"MBM-BF", func(o Options) ([]GroupNeighbor, error) { return MBM(tr, qs, o) }, false},
				{"MBM-DF", func(o Options) ([]GroupNeighbor, error) {
					o.Traversal = DepthFirst
					return MBM(tr, qs, o)
				}, false},
				{"SPM-BF", func(o Options) ([]GroupNeighbor, error) { return SPM(tr, qs, o) }, true},
				{"SPM-DF", func(o Options) ([]GroupNeighbor, error) {
					o.Traversal = DepthFirst
					return SPM(tr, qs, o)
				}, true},
			}
			for _, c := range cells {
				if c.sum && agg != Sum {
					continue
				}
				name := fmt.Sprintf("trial%d/%s/%v/k=%d/weighted=%v", trial, c.name, agg, k, weights != nil)
				diffRun(t, name, packed, c.run, opt)
			}
		}
	}
}

// TestPackedEquivalenceIterator steps the incremental GNN scan in
// lockstep on both layouts, comparing every emitted neighbor, every peek
// bound and the running cost.
func TestPackedEquivalenceIterator(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := clusteredPts(rng, 2000, 800)
	tr := buildTree(t, pts, 16)
	packed := tr.Pack()

	for _, agg := range []Aggregate{Sum, Max, Min} {
		qs := make([]geom.Point, 6)
		for i := range qs {
			qs[i] = geom.Point{rng.Float64() * 800, rng.Float64() * 800}
		}
		var dtk, ptk pagestore.CostTracker
		di, err := NewGNNIterator(tr, qs, Options{Aggregate: agg, Cost: &dtk})
		if err != nil {
			t.Fatal(err)
		}
		pi, err := NewGNNIterator(tr, qs, Options{Aggregate: agg, Cost: &ptk, Packed: packed})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			dp, dpo := di.PeekDist()
			pp, ppo := pi.PeekDist()
			if dp != pp || dpo != ppo {
				t.Fatalf("agg %v: peek diverged at %d: %v/%v vs %v/%v", agg, i, dp, dpo, pp, ppo)
			}
			dn, dok := di.Next()
			pn, pok := pi.Next()
			if dok != pok || !reflect.DeepEqual(dn, pn) {
				t.Fatalf("agg %v: stream diverged at %d:\ndynamic: %v %v\npacked:  %v %v", agg, i, dn, dok, pn, pok)
			}
			if dtk != ptk {
				t.Fatalf("agg %v: cost diverged at %d: %+v vs %+v", agg, i, dtk, ptk)
			}
			if !dok {
				break
			}
		}
		di.Close()
		pi.Close()
	}
}

// TestPackedEquivalenceDisk covers the disk-resident family: F-MQM (whose
// per-block streams ride the packed GNNIterator) and F-MBM in both
// traversals, comparing neighbors, rounds and combined I/O cost.
func TestPackedEquivalenceDisk(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pts := clusteredPts(rng, 2500, 1000)
	tr := buildTree(t, pts, 16)
	packed := tr.Pack()

	for trial := 0; trial < 4; trial++ {
		nq := []int{40, 120, 400, 800}[trial]
		qpts := make([]geom.Point, nq)
		base := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		for i := range qpts {
			qpts[i] = geom.Point{base[0] + rng.Float64()*300, base[1] + rng.Float64()*300}
		}
		k := []int{1, 5}[trial%2]

		type cell struct {
			name string
			run  func(Options) (*DiskReport, error)
		}
		cells := []cell{
			{"F-MQM", func(o Options) (*DiskReport, error) {
				qf, err := NewQueryFile(qpts, 50, pagestore.NewAccountant(0), 1<<40)
				if err != nil {
					return nil, err
				}
				return FMQM(tr, qf, DiskOptions{Options: o})
			}},
			{"F-MBM-BF", func(o Options) (*DiskReport, error) {
				qf, err := NewQueryFile(qpts, 50, pagestore.NewAccountant(0), 1<<40)
				if err != nil {
					return nil, err
				}
				return FMBM(tr, qf, DiskOptions{Options: o})
			}},
			{"F-MBM-DF", func(o Options) (*DiskReport, error) {
				o.Traversal = DepthFirst
				qf, err := NewQueryFile(qpts, 50, pagestore.NewAccountant(0), 1<<40)
				if err != nil {
					return nil, err
				}
				return FMBM(tr, qf, DiskOptions{Options: o})
			}},
		}
		for _, c := range cells {
			name := fmt.Sprintf("trial%d/%s/k=%d", trial, c.name, k)
			var dtk, ptk pagestore.CostTracker
			drep, err := c.run(Options{K: k, Cost: &dtk})
			if err != nil {
				t.Fatalf("%s (dynamic): %v", name, err)
			}
			prep, err := c.run(Options{K: k, Cost: &ptk, Packed: packed})
			if err != nil {
				t.Fatalf("%s (packed): %v", name, err)
			}
			if !reflect.DeepEqual(drep.Neighbors, prep.Neighbors) {
				t.Fatalf("%s: neighbors diverged\ndynamic: %v\npacked:  %v", name, drep.Neighbors, prep.Neighbors)
			}
			if drep.Rounds != prep.Rounds {
				t.Fatalf("%s: rounds %d vs %d", name, drep.Rounds, prep.Rounds)
			}
			if drep.Cost != prep.Cost {
				t.Fatalf("%s: cost diverged\ndynamic: %+v\npacked:  %+v", name, drep.Cost, prep.Cost)
			}
		}
	}
}

// TestPackedStaleFallsBack checks that a stale snapshot (tree mutated
// after Pack) silently degrades to the dynamic layout with correct
// results including the new point.
func TestPackedStaleFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	pts := clusteredPts(rng, 500, 300)
	tr := buildTree(t, pts, 16)
	packed := tr.Pack()
	target := geom.Point{1e6, 1e6}
	if err := tr.Insert(target, 777_777); err != nil {
		t.Fatal(err)
	}
	got, err := MBM(tr, []geom.Point{{1e6, 1e6}}, Options{Packed: packed})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 777_777 {
		t.Fatalf("stale-snapshot query missed the inserted point: %v", got)
	}
}

// FuzzPackedEquivalence fuzzes the packed/dynamic differential across
// dataset shape, group size, k, aggregate and traversal. Any result or
// cost divergence crashes the fuzz target.
func FuzzPackedEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(300), uint8(4), uint8(2), uint8(0), false)
	f.Add(int64(2), uint16(60), uint8(1), uint8(1), uint8(1), true)
	f.Add(int64(3), uint16(900), uint8(16), uint8(7), uint8(2), false)
	f.Add(int64(4), uint16(2), uint8(3), uint8(5), uint8(0), true)
	f.Fuzz(func(t *testing.T, seed int64, n uint16, groupSize, k, agg uint8, df bool) {
		rng := rand.New(rand.NewSource(seed))
		np := int(n)%1200 + 1
		pts := clusteredPts(rng, np, 500)
		tr := buildTree(t, pts, 8)
		packed := tr.Pack()
		qs := make([]geom.Point, int(groupSize)%24+1)
		for i := range qs {
			qs[i] = geom.Point{rng.Float64() * 600, rng.Float64() * 600}
		}
		opt := Options{
			K:         int(k)%12 + 1,
			Aggregate: []Aggregate{Sum, Max, Min}[int(agg)%3],
		}
		if df {
			opt.Traversal = DepthFirst
		}
		diffRun(t, "fuzz/MBM", packed, func(o Options) ([]GroupNeighbor, error) {
			return MBM(tr, qs, o)
		}, opt)
		diffRun(t, "fuzz/MQM", packed, func(o Options) ([]GroupNeighbor, error) {
			return MQM(tr, qs, o)
		}, opt)
		if opt.Aggregate == Sum {
			diffRun(t, "fuzz/SPM", packed, func(o Options) ([]GroupNeighbor, error) {
				return SPM(tr, qs, o)
			}, opt)
		}
	})
}
