package core

import (
	"math"

	"gnn/internal/pagestore"
	"gnn/internal/rtree"
)

// GCPOptions extends Options for the group closest pairs method.
type GCPOptions struct {
	Options
	// PairBudget caps the number of closest pairs the algorithm may
	// consume before giving up with ErrBudgetExceeded, reproducing the
	// paper's observation that GCP "does not terminate at all" when the
	// query workspace is large (§5.2). Zero means unlimited.
	PairBudget int64
}

// GCPReport carries the result and the cost diagnostics of a GCP run.
type GCPReport struct {
	Neighbors []GroupNeighbor
	// PairsConsumed is the number of closest pairs the algorithm read.
	PairsConsumed int64
	// MaxQualifying is the high-water mark of the qualifying list.
	MaxQualifying int
	// HeapMax is the high-water mark of the closest-pair heap (the
	// paper's "large heap requirements").
	HeapMax int
	// Cost is this query's combined node accesses over both trees.
	Cost pagestore.CostTracker
}

// gcpCand is a qualifying-list record: the running state of a data point
// whose distances to Q are still being accumulated.
type gcpCand struct {
	nb       rtree.Neighbor
	count    int
	currDist float64
}

// GCP answers a GNN query with the group closest pairs method (§4.1). Both
// P and Q are indexed by R-trees. An incremental closest-pair stream
// (<p_i, q_j> in ascending distance, [HS98]) feeds a qualifying list that
// accumulates, per data point, the count of pairs seen and the partial sum
// of distances. A point whose count reaches n = |Q| has its exact global
// distance and competes for the result.
//
// Heuristic 4 discards a partial point p once
//
//	(n − count(p))·dist(p_i,q_j) + curr_dist(p) ≥ best_dist,
//
// i.e. even if all its remaining distances equalled the current pair
// distance it could not beat the incumbent. Per-point thresholds
// t = (best_dist − curr_dist)/(n − count) aggregate into the global
// threshold T (their maximum); the algorithm stops when a result exists
// and either the qualifying list is empty or the current pair distance
// reaches T.
//
// The SUM aggregate only: the accumulation is a running sum.
func GCP(tp, tq *rtree.Tree, opt GCPOptions) (*GCPReport, error) {
	opt.Options = opt.Options.withDefaults()
	if opt.K < 1 {
		return nil, ErrBadK
	}
	if opt.Aggregate != Sum {
		return nil, ErrUnsupportedAggregate
	}
	if opt.Weights != nil || opt.Region != nil {
		return nil, ErrUnsupportedOption
	}
	if tq.Len() == 0 {
		return nil, ErrEmptyQuery
	}
	if opt.Cost == nil {
		opt.Cost = &pagestore.CostTracker{}
	}
	// Both trees charge the same per-query tracker, so the report's cost is
	// the combined NA over P and Q.
	it, err := rtree.NewClosestPairIteratorReaders(tp.Reader(opt.Cost), tq.Reader(opt.Cost))
	if err != nil {
		return nil, err
	}
	defer it.Close()
	ec, owned := opt.exec()
	defer releaseIfOwned(ec, owned)
	n := tq.Len()
	best := ec.kbestFor(opt.K, opt.Reject)
	list := make(map[int64]*gcpCand)
	report := &GCPReport{}
	T := 0.0

	for {
		pair, ok := it.Next()
		if it.HeapMax() > report.HeapMax {
			report.HeapMax = it.HeapMax()
		}
		if !ok {
			break // every pair consumed: all surviving points completed
		}
		report.PairsConsumed++
		if opt.PairBudget > 0 && report.PairsConsumed > opt.PairBudget {
			report.Cost = *opt.Cost
			return report, ErrBudgetExceeded
		}
		d := pair.Dist
		bestDist := best.bound()
		c, inList := list[pair.P.ID]

		switch {
		case !inList && math.IsInf(bestDist, 1):
			// No complete result yet: every first-seen point qualifies.
			list[pair.P.ID] = &gcpCand{nb: pair.P, count: 1, currDist: d}
			if len(list) > report.MaxQualifying {
				report.MaxQualifying = len(list)
			}

		case !inList:
			// A complete result exists. A brand-new point needs n pairs,
			// each ≥ d (pairs ascend), so its global distance is ≥ n·d;
			// and best_dist is a sum of n pair distances that were all
			// ≤ d, so best_dist ≤ n·d. The point cannot win: discard.

		default:
			c.count++
			c.currDist += d
			if c.count == n {
				delete(list, pair.P.ID)
				if c.currDist < bestDist {
					best.offer(GroupNeighbor{Point: c.nb.Point, ID: c.nb.ID, Dist: c.currDist})
					// Re-prune the whole list against the new bound
					// (heuristic 4) and rebuild the global threshold.
					bestDist = best.bound()
					T = 0
					for id, p := range list {
						if float64(n-p.count)*d+p.currDist >= bestDist {
							delete(list, id)
							continue
						}
						if t := (bestDist - p.currDist) / float64(n-p.count); t > T {
							T = t
						}
					}
				}
			} else if !math.IsInf(bestDist, 1) {
				if float64(n-c.count)*d+c.currDist >= bestDist {
					delete(list, pair.P.ID) // heuristic 4
				} else if t := (bestDist - c.currDist) / float64(n-c.count); t > T {
					T = t
				}
			}
		}

		if !math.IsInf(best.bound(), 1) && (d >= T || len(list) == 0) {
			break
		}
	}
	report.Neighbors = best.results()
	report.Cost = *opt.Cost
	return report, nil
}
