package core

import (
	"math/rand"
	"testing"
)

func TestTraceBestFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	pts := clusteredPts(rng, 3000, 1000)
	tr := buildTree(t, pts, 10)
	qs := randPts(rng, 16, 200)
	res, trace, err := MBMTraced(tr, qs, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("results = %d", len(res))
	}
	if trace.NodesVisited == 0 {
		t.Fatal("no nodes visited recorded")
	}
	if trace.ExactDistances < 4 {
		t.Fatalf("ExactDistances = %d, below k", trace.ExactDistances)
	}
	// The exact-distance count is the CPU story of heuristic 2: it must be
	// far below the dataset size.
	if trace.ExactDistances > len(pts)/2 {
		t.Fatalf("heuristic 2 saved nothing: %d exact distances for %d points",
			trace.ExactDistances, len(pts))
	}
}

func TestTraceDepthFirstHeuristicSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	pts := clusteredPts(rng, 4000, 1000)
	tr := buildTree(t, pts, 10)
	var h2, h3 int
	for trial := 0; trial < 20; trial++ {
		qs := randPts(rng, 8, 150)
		trace := &Trace{}
		if _, err := MBM(tr, qs, Options{Traversal: DepthFirst, Trace: trace}); err != nil {
			t.Fatal(err)
		}
		h2 += trace.NodesPrunedH2
		h3 += trace.NodesPrunedH3
	}
	// Both heuristics must fire across a workload: H2 ends sorted scans,
	// H3 skips survivors (the paper's reason to keep both).
	if h2 == 0 {
		t.Error("heuristic 2 never pruned")
	}
	if h3 == 0 {
		t.Error("heuristic 3 never pruned")
	}
}

func TestTraceDisabledHeuristic3(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	pts := clusteredPts(rng, 2000, 1000)
	tr := buildTree(t, pts, 10)
	qs := randPts(rng, 8, 200)
	trace := &Trace{}
	if _, err := MBM(tr, qs, Options{Traversal: DepthFirst, DisableHeuristic3: true, Trace: trace}); err != nil {
		t.Fatal(err)
	}
	if trace.NodesPrunedH3 != 0 {
		t.Fatalf("H3 pruned %d nodes while disabled", trace.NodesPrunedH3)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.add(func(x *Trace) { x.NodesVisited++ }) // must not panic
	rng := rand.New(rand.NewSource(83))
	pts := randPts(rng, 100, 100)
	tree := buildTree(t, pts, 8)
	if _, err := MBM(tree, randPts(rng, 4, 100), Options{}); err != nil {
		t.Fatal(err) // no trace attached: nothing recorded, nothing broken
	}
}
