package core

import (
	"math"

	"gnn/internal/geom"
	"gnn/internal/pq"
	"gnn/internal/rtree"
)

// MBM answers a GNN query with the minimum bounding method (§3.3): a
// single traversal pruned by the MBR M of the query group.
//
//   - Heuristic 2 (cheap, one distance computation): prune node N when
//     mindist(N,M) ≥ best_dist / n.
//   - Heuristic 3 (tight, n computations, applied only to nodes that
//     survive heuristic 2): prune N when Σ_i mindist(N,q_i) ≥ best_dist.
//
// The same bounds generalised to MAX/MIN make MBM work for the extension
// aggregates. Options.DisableHeuristic3 reproduces the §5.1 footnote-3
// ablation. The best-first variant is built on the incremental iterator
// below; the depth-first variant follows Figure 3.7.
//
// Both variants draw their scratch (candidate buffers, result list, query
// MBR corners, heaps) from the pooled execution context, so a warm query
// allocates only its result slice.
func MBM(t *rtree.Tree, qs []geom.Point, opt Options) ([]GroupNeighbor, error) {
	opt = opt.withDefaults()
	if err := validate(t, qs, opt); err != nil {
		return nil, err
	}
	if t.Len() == 0 {
		return nil, nil
	}
	ec, owned := opt.exec()
	defer releaseIfOwned(ec, owned)
	if opt.Traversal == DepthFirst {
		w, err := newWeightCtx(opt.Weights, len(qs))
		if err != nil {
			return nil, err
		}
		best := ec.kbestShared(opt.K, opt.Shared, opt.Reject)
		st := mbmState{
			rd:   rtree.ReaderOver(t, opt.packedFor(t, false), opt.Cost),
			qs:   qs,
			gq:   ec.groupSoA(qs),
			qmbr: ec.boundingRect(qs),
			w:    w,
			opt:  opt,
			best: best,
			ec:   ec,
		}
		st.qcent = ec.centerOf(st.qmbr)
		if opt.mebEnabled(len(qs)) {
			st.meb = ec.mebFor(qs, w)
		}
		if st.rd.Packed() != nil {
			st.dfPacked(st.rd.PackedRoot(), 0)
		} else {
			st.df(st.rd.Root(), 0)
		}
		if err := opt.Cancel.Failure(); err != nil {
			return nil, err
		}
		return best.results(), nil
	}
	it, err := NewGNNIterator(t, qs, opt)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	best := ec.kbestShared(opt.K, opt.Shared, opt.Reject)
	for len(best.items) < opt.K {
		// The iterator emits in ascending order, so once its lower bound
		// reaches the pruning bound nothing ahead can improve the result.
		// For a standalone query the bound stays +Inf until k results are
		// in hand and the check never fires; for a sharded query it stops
		// the scan as soon as other shards have sealed the answer.
		if d, ok := it.PeekDist(); !ok || d >= best.bound() {
			break
		}
		g, ok := it.Next()
		if !ok {
			break
		}
		best.offer(g)
	}
	// A canceled iterator reports exhaustion; surface the latched error.
	if err := opt.Cancel.Failure(); err != nil {
		return nil, err
	}
	if tr := opt.Trace; tr != nil {
		it.drainPruneCounts(tr)
	}
	return best.results(), nil
}

// drainPruneCounts classifies everything still queued when best-first
// MBM stops. Best-first search prunes implicitly — an entry whose
// heuristic-2 or -3 key never beat the kth distance simply stays in the
// heap — so the surviving items are exactly the candidates the bounds
// discarded. The census walks the heaps' backing arrays in place
// (classification needs no priority order), so it costs one linear read
// rather than a destructive pop-all; Close resets the heaps either way.
func (it *GNNIterator) drainPruneCounts(tr *Trace) {
	if it.rd.Packed() != nil {
		for _, item := range it.ph.Items() {
			switch item.Value.state {
			case nodeCheap:
				tr.NodesPrunedH2++
			case nodeTight:
				tr.NodesPrunedH3++
			case pointCheap:
				tr.PointsPrunedQuick++
			}
		}
		return
	}
	for _, item := range it.heap.Items() {
		switch item.Value.state {
		case nodeCheap:
			tr.NodesPrunedH2++
		case nodeTight:
			tr.NodesPrunedH3++
		case pointCheap:
			tr.PointsPrunedQuick++
		}
	}
}

// mbmState carries the per-query state of a depth-first MBM traversal.
type mbmState struct {
	rd    rtree.Reader
	qs    []geom.Point
	gq    [][]float64 // SoA copy of qs for the group-facing inner loops
	qmbr  geom.Rect
	qcent geom.Point // centre of qmbr — the tie-break reference
	meb   *mebCtx    // dedicated aggregate-MAX bound; nil on the generic path
	w     *weightCtx
	opt   Options
	best  *kbest
	ec    *ExecContext
}

// df is the depth-first MBM of Figure 3.7: entries sorted by mindist to
// the query MBR; heuristic 2 ends the scan of the sorted list (monotone in
// the sort key), heuristic 3 skips individual surviving nodes.
//
// Candidates are sorted on the squared mindist (same order — squaring is
// monotone) with an inlined insertion sort over a per-depth pooled buffer,
// and the heuristic-2 bound is derived from that key with a single Sqrt,
// instead of the seed's fresh slice, sort.Slice closure and second mindist
// computation per entry.
func (st *mbmState) df(nd rtree.Node, depth int) {
	if st.opt.Cancel.Stop() {
		return
	}
	buf := st.ec.cands.Level(depth)
	cands := *buf
	for _, e := range nd.Entries() {
		if !regionIntersects(st.opt.Region, e.Rect) {
			continue // constrained query: subtree holds no qualifying point
		}
		var d, d2 float64 // mindist(entry, M)² — the sort key — and its tie-break
		if e.IsLeafEntry() {
			d = geom.MinDistSqPointRect(e.Point, st.qmbr)
			d2 = geom.DistSq(e.Point, st.qcent)
		} else {
			d = geom.MinDistSqRectRect(e.Rect, st.qmbr)
			d2 = geom.MinDistSqPointRect(st.qcent, e.Rect)
		}
		cands = append(cands, rtree.Cand{E: e, D: d, D2: d2})
	}
	rtree.SortCands(cands)
	*buf = cands
	n := len(st.qs)
	for i := range cands {
		c := cands[i]
		// Heuristic 2 from the sort key: quickLBFromMindist(√key) equals
		// the quickNodeLBW/quickPointLBW bound bit for bit, because every
		// mindist function is defined as the Sqrt of its squared variant.
		lb := quickLBFromMindist(st.opt.Aggregate, math.Sqrt(c.D), n, st.w)
		if c.E.IsLeafEntry() {
			// Heuristic 2 on points: mindist(p,M) ≥ best_dist/n discards
			// p without computing n exact distances; monotone in the sort
			// key, so all later entries are discarded too.
			if lb >= st.best.bound() {
				st.opt.Trace.add(func(tr *Trace) { tr.PointsPrunedQuick++ })
				return
			}
			if st.meb != nil && st.meb.pointBound(c.E.Point) >= st.best.bound() {
				st.opt.Trace.add(func(tr *Trace) { tr.PointsPrunedMEB++ })
				continue // MEB point bound: skip the n exact distances
			}
			if regionAllows(st.opt.Region, c.E.Point) {
				st.opt.Trace.add(func(tr *Trace) { tr.ExactDistances++ })
				st.best.offer(GroupNeighbor{
					Point: c.E.Point, ID: c.E.ID,
					Dist: aggDistSoA(st.opt.Aggregate, c.E.Point, st.gq, st.w),
				})
			}
			continue
		}
		if lb >= st.best.bound() {
			st.opt.Trace.add(func(tr *Trace) { tr.NodesPrunedH2++ })
			return // heuristic 2: this and all later nodes pruned
		}
		if st.meb != nil && st.meb.nodeBound(c.E.Rect) >= st.best.bound() {
			st.opt.Trace.add(func(tr *Trace) { tr.NodesPrunedMEB++ })
			continue // MEB node bound: skip just this node (order unchanged)
		}
		if !st.opt.DisableHeuristic3 &&
			nodeLBSoA(st.opt.Aggregate, c.E.Rect, st.gq, st.w) >= st.best.bound() {
			st.opt.Trace.add(func(tr *Trace) { tr.NodesPrunedH3++ })
			continue // heuristic 3: skip just this node
		}
		st.opt.Trace.add(func(tr *Trace) { tr.NodesVisited++ })
		st.df(st.rd.Child(c.E), depth+1)
	}
}

// dfPacked is the depth-first MBM of Figure 3.7 over the packed arena:
// the per-node sort key (squared mindist to the query MBR) and its
// centre-distance tie-break both come from fused passes over the SoA
// coordinate arrays, and candidates are 4-byte refs instead of copied
// entries. Every bound is evaluated by the same floating-point operations
// as df, so pruning — and with it the node-access count — is identical.
func (st *mbmState) dfPacked(nd int32, depth int) {
	if st.opt.Cancel.Stop() {
		return
	}
	p := st.rd.Packed()
	s, e := p.NodeRange(nd)
	cnt := int(e - s)
	st.ec.dbuf = grow(st.ec.dbuf, cnt)
	st.ec.dbuf2 = grow(st.ec.dbuf2, cnt)
	d, d2 := st.ec.dbuf, st.ec.dbuf2
	leaf := p.IsLeaf(nd)
	if leaf {
		pc := p.PointSoA()
		geom.MinDistSqPointsRect(pc, int(s), int(e), st.qmbr, d)
		geom.DistSqPointsPoint(pc, int(s), int(e), st.qcent, d2)
	} else {
		lo, hi := p.RectSoA()
		geom.MinDistSqRectsRect(lo, hi, int(s), int(e), st.qmbr, d)
		geom.MinDistSqRectsPoint(lo, hi, int(s), int(e), st.qcent, d2)
	}
	buf := st.ec.pcands.Level(depth)
	cands := *buf
	for i := 0; i < cnt; i++ {
		ref := rtree.LeafRef(s + int32(i))
		if !leaf {
			ref = rtree.NodeRef(s + int32(i))
		}
		cands = append(cands, rtree.PCand{Ref: ref, D: d[i], D2: d2[i]})
	}
	rtree.SortPCands(cands)
	*buf = cands
	n := len(st.qs)
	for i := range cands {
		c := cands[i]
		lb := quickLBFromMindist(st.opt.Aggregate, math.Sqrt(c.D), n, st.w)
		slot, isPoint := rtree.RefSlot(c.Ref)
		if isPoint {
			if lb >= st.best.bound() {
				st.opt.Trace.add(func(tr *Trace) { tr.PointsPrunedQuick++ })
				return
			}
			pt := p.LeafPoint(slot)
			if st.meb != nil && st.meb.pointBound(pt) >= st.best.bound() {
				st.opt.Trace.add(func(tr *Trace) { tr.PointsPrunedMEB++ })
				continue // MEB point bound: skip the n exact distances
			}
			st.opt.Trace.add(func(tr *Trace) { tr.ExactDistances++ })
			st.best.offer(GroupNeighbor{
				Point: pt, ID: p.LeafID(slot),
				Dist: aggDistSoA(st.opt.Aggregate, pt, st.gq, st.w),
			})
			continue
		}
		if lb >= st.best.bound() {
			st.opt.Trace.add(func(tr *Trace) { tr.NodesPrunedH2++ })
			return // heuristic 2: this and all later nodes pruned
		}
		if st.meb != nil || !st.opt.DisableHeuristic3 {
			p.RectInto(slot, &st.ec.prect)
		}
		if st.meb != nil && st.meb.nodeBound(st.ec.prect) >= st.best.bound() {
			st.opt.Trace.add(func(tr *Trace) { tr.NodesPrunedMEB++ })
			continue // MEB node bound: skip just this node (order unchanged)
		}
		if !st.opt.DisableHeuristic3 {
			if nodeLBSoA(st.opt.Aggregate, st.ec.prect, st.gq, st.w) >= st.best.bound() {
				st.opt.Trace.add(func(tr *Trace) { tr.NodesPrunedH3++ })
				continue // heuristic 3: skip just this node
			}
		}
		st.opt.Trace.add(func(tr *Trace) { tr.NodesVisited++ })
		st.dfPacked(st.rd.PackedChild(slot), depth+1)
	}
}

// GNNIterator reports data points in ascending aggregate distance from the
// query group, one at a time — incremental MBM. F-MQM consumes it per
// query block (§4.2); it is also the engine of best-first MBM.
//
// The iterator is a lazy best-first search. Heap entries carry
// progressively tighter keys:
//
//	node/cheap  — heuristic-2 bound (one distance computation)
//	node/tight  — heuristic-3 bound (n computations, only when the node
//	              reaches the heap top and heuristic 3 is enabled)
//	point/cheap — heuristic-2 point bound
//	point/exact — the true dist(p,Q); popping this yields a result
//
// Because every key lower-bounds the exact distance of everything beneath
// it, results emerge in exact ascending order while far nodes and points
// never pay the n-distance computation.
//
// Iterators (and their heaps and MBR corners) are drawn from a pool;
// callers that finish early should Close the iterator so its scratch is
// recycled. Forgetting to Close costs only the reuse, never correctness.
type GNNIterator struct {
	rd     rtree.Reader
	qs     []geom.Point
	qmbr   geom.Rect
	opt    Options
	w      *weightCtx
	gq     [][]float64 // SoA copy of qs for the group-facing inner loops
	gflat  []float64   // backing of gq
	heap   pq.Heap[gnnItem]
	ph     pq.Heap[pgnnItem] // packed layout: 8-byte items, fused keys
	dbuf   []float64         // fused-kernel distance buffer (packed path)
	dbuf2  []float64         // fused MEB-bound buffer (packed path)
	prect  geom.Rect         // spare rect for the packed heuristic-3 bound
	mebs   geom.MEBScratch   // dedicated aggregate-MAX solver scratch
	meb    mebCtx
	mebp   *mebCtx // armed (&meb) on the dedicated MAX path, else nil
	closed bool
}

var gnnIterPool = pq.NewPool(func() *GNNIterator { return &GNNIterator{} })

type gnnState int8

const (
	nodeCheap gnnState = iota
	nodeTight
	pointCheap
	pointExact
)

type gnnItem struct {
	e     rtree.Entry
	state gnnState
}

// pgnnItem is gnnItem for the packed layout: the 88-byte entry shrinks to
// an int32 ref, so the lazy best-first heap stays within a few cache
// lines even at its high-water mark.
type pgnnItem struct {
	ref   rtree.PackedRef
	state gnnState
}

// NewGNNIterator starts an incremental GNN scan of t around qs. The
// iterator owns its scratch (it does not borrow Options.Exec, so any
// number of iterators — F-MQM runs one per query block — may coexist
// within one query).
func NewGNNIterator(t *rtree.Tree, qs []geom.Point, opt Options) (*GNNIterator, error) {
	opt = opt.withDefaults()
	if err := validate(t, qs, opt); err != nil {
		return nil, err
	}
	w, err := newWeightCtx(opt.Weights, len(qs))
	if err != nil {
		return nil, err
	}
	it := gnnIterPool.Get()
	it.rd = rtree.ReaderOver(t, opt.packedFor(t, false), opt.Cost)
	it.qs = qs
	it.gq, it.gflat = groupSoAInto(it.gq, it.gflat, qs)
	it.qmbr = geom.BoundingRectInto(it.qmbr, qs)
	it.opt = opt
	it.w = w
	it.mebp = nil
	if opt.mebEnabled(len(qs)) {
		it.meb.init(&it.mebs, qs, w)
		it.mebp = &it.meb
	}
	it.closed = false
	it.heap.Reset()
	it.ph.Reset()
	if t.Len() > 0 {
		if it.rd.Packed() != nil {
			it.pushNodePacked(it.rd.PackedRoot())
		} else {
			it.pushNode(it.rd.Root())
		}
	}
	return it, nil
}

func (it *GNNIterator) pushNode(nd rtree.Node) {
	n := len(it.qs)
	for _, e := range nd.Entries() {
		if !regionIntersects(it.opt.Region, e.Rect) {
			continue
		}
		if e.IsLeafEntry() {
			if !regionAllows(it.opt.Region, e.Point) {
				continue
			}
			key := quickPointLBW(it.opt.Aggregate, e.Point, it.qmbr, n, it.w)
			if it.mebp != nil {
				// Dedicated MAX path: raise the key to the MEB bound. Keys
				// only rise, and every key still lower-bounds the exact
				// distance, so emission order stays exact while far
				// candidates surface later — or never.
				if mb := it.mebp.pointBound(e.Point); mb > key {
					key = mb
				}
			}
			it.heap.Push(gnnItem{e, pointCheap}, key)
		} else {
			key := quickNodeLBW(it.opt.Aggregate, e.Rect, it.qmbr, n, it.w)
			if it.mebp != nil {
				if mb := it.mebp.nodeBound(e.Rect); mb > key {
					key = mb
				}
			}
			it.heap.Push(gnnItem{e, nodeCheap}, key)
		}
	}
}

// pushNodePacked enqueues node nd's slots with their heuristic-2 keys,
// derived from one fused mindist pass over the SoA arrays — the same
// values quickPointLBW/quickNodeLBW produce entry by entry.
func (it *GNNIterator) pushNodePacked(nd int32) {
	p := it.rd.Packed()
	s, e := p.NodeRange(nd)
	cnt := int(e - s)
	it.dbuf = grow(it.dbuf, cnt)
	n := len(it.qs)
	if p.IsLeaf(nd) {
		geom.MinDistSqPointsRect(p.PointSoA(), int(s), int(e), it.qmbr, it.dbuf)
		if it.mebp != nil {
			// Dedicated MAX path: one more fused pass yields the squared
			// center distances, and each key is raised to the MEB bound —
			// the same values pushNode computes entry by entry.
			it.dbuf2 = grow(it.dbuf2, cnt)
			geom.DistSqPointsPoint(p.PointSoA(), int(s), int(e), it.mebp.c, it.dbuf2)
		}
		for i := 0; i < cnt; i++ {
			key := quickLBFromMindist(it.opt.Aggregate, math.Sqrt(it.dbuf[i]), n, it.w)
			if it.mebp != nil {
				if mb := it.mebp.fromMindistSq(it.dbuf2[i]); mb > key {
					key = mb
				}
			}
			it.ph.Push(pgnnItem{rtree.LeafRef(s + int32(i)), pointCheap}, key)
		}
		return
	}
	lo, hi := p.RectSoA()
	geom.MinDistSqRectsRect(lo, hi, int(s), int(e), it.qmbr, it.dbuf)
	if it.mebp != nil {
		it.dbuf2 = grow(it.dbuf2, cnt)
		geom.MinDistSqRectsPoint(lo, hi, int(s), int(e), it.mebp.c, it.dbuf2)
	}
	for i := 0; i < cnt; i++ {
		key := quickLBFromMindist(it.opt.Aggregate, math.Sqrt(it.dbuf[i]), n, it.w)
		if it.mebp != nil {
			if mb := it.mebp.fromMindistSq(it.dbuf2[i]); mb > key {
				key = mb
			}
		}
		it.ph.Push(pgnnItem{rtree.NodeRef(s + int32(i)), nodeCheap}, key)
	}
}

// nextPacked is Next over the packed arena: the same lazy key-tightening
// state machine, driven by refs instead of entries.
func (it *GNNIterator) nextPacked() (GroupNeighbor, bool) {
	p := it.rd.Packed()
	for {
		if it.opt.Cancel.Stop() {
			return GroupNeighbor{}, false
		}
		item, ok := it.ph.Pop()
		if !ok {
			return GroupNeighbor{}, false
		}
		slot, _ := rtree.RefSlot(item.Value.ref)
		switch item.Value.state {
		case pointExact:
			return GroupNeighbor{
				Point: p.LeafPoint(slot),
				ID:    p.LeafID(slot),
				Dist:  item.Priority,
			}, true
		case pointCheap:
			if rej := it.opt.Reject; rej != nil && rej(p.LeafPoint(slot), p.LeafID(slot)) {
				continue // tombstoned: drop before the exact-distance stage
			}
			it.opt.Trace.add(func(tr *Trace) { tr.ExactDistances++ })
			exact := aggDistSoA(it.opt.Aggregate, p.LeafPoint(slot), it.gq, it.w)
			it.ph.Push(pgnnItem{item.Value.ref, pointExact}, exact)
		case nodeCheap:
			if !it.opt.DisableHeuristic3 {
				p.RectInto(slot, &it.prect)
				tight := nodeLBSoA(it.opt.Aggregate, it.prect, it.gq, it.w)
				if tight > item.Priority {
					it.ph.Push(pgnnItem{item.Value.ref, nodeTight}, tight)
					continue
				}
			}
			it.opt.Trace.add(func(tr *Trace) { tr.NodesVisited++ })
			it.pushNodePacked(it.rd.PackedChild(slot))
		case nodeTight:
			it.opt.Trace.add(func(tr *Trace) { tr.NodesVisited++ })
			it.pushNodePacked(it.rd.PackedChild(slot))
		}
	}
}

// Next returns the next group nearest neighbor; ok is false when the data
// set is exhausted or the iterator has been closed.
func (it *GNNIterator) Next() (GroupNeighbor, bool) {
	if it.closed {
		return GroupNeighbor{}, false
	}
	if it.rd.Packed() != nil {
		return it.nextPacked()
	}
	for {
		if it.opt.Cancel.Stop() {
			return GroupNeighbor{}, false
		}
		item, ok := it.heap.Pop()
		if !ok {
			return GroupNeighbor{}, false
		}
		switch item.Value.state {
		case pointExact:
			return GroupNeighbor{
				Point: item.Value.e.Point,
				ID:    item.Value.e.ID,
				Dist:  item.Priority,
			}, true
		case pointCheap:
			if rej := it.opt.Reject; rej != nil && rej(item.Value.e.Point, item.Value.e.ID) {
				continue // tombstoned: drop before the exact-distance stage
			}
			it.opt.Trace.add(func(tr *Trace) { tr.ExactDistances++ })
			exact := aggDistSoA(it.opt.Aggregate, item.Value.e.Point, it.gq, it.w)
			it.heap.Push(gnnItem{item.Value.e, pointExact}, exact)
		case nodeCheap:
			if !it.opt.DisableHeuristic3 {
				tight := nodeLBSoA(it.opt.Aggregate, item.Value.e.Rect, it.gq, it.w)
				if tight > item.Priority {
					it.heap.Push(gnnItem{item.Value.e, nodeTight}, tight)
					continue
				}
			}
			it.opt.Trace.add(func(tr *Trace) { tr.NodesVisited++ })
			it.pushNode(it.rd.Child(item.Value.e))
		case nodeTight:
			it.opt.Trace.add(func(tr *Trace) { tr.NodesVisited++ })
			it.pushNode(it.rd.Child(item.Value.e))
		}
	}
}

// PeekDist returns a lower bound on the distance of the next result; ok is
// false when exhausted or closed.
func (it *GNNIterator) PeekDist() (float64, bool) {
	if it.closed {
		return 0, false
	}
	if it.rd.Packed() != nil {
		return it.ph.MinPriority()
	}
	return it.heap.MinPriority()
}

// Close releases the iterator's scratch to the pool. Call it at most
// once, and do not use the iterator afterwards: once the object is
// re-leased to another query, the closed flag belongs to the new owner,
// so a stale handle's second Close (or Next) would corrupt that query.
// The public gnn.Iterator wrapper tracks its own done state for exactly
// this reason.
func (it *GNNIterator) Close() {
	if it == nil || it.closed {
		return
	}
	it.closed = true
	it.rd = rtree.Reader{}
	it.qs = nil
	it.opt = Options{}
	it.w = nil
	it.mebp = nil
	it.meb = mebCtx{}
	it.mebs.Reset()
	it.heap.Reset()
	it.ph.Reset()
	gnnIterPool.Put(it)
}
