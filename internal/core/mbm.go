package core

import (
	"sort"

	"gnn/internal/geom"
	"gnn/internal/pq"
	"gnn/internal/rtree"
)

// MBM answers a GNN query with the minimum bounding method (§3.3): a
// single traversal pruned by the MBR M of the query group.
//
//   - Heuristic 2 (cheap, one distance computation): prune node N when
//     mindist(N,M) ≥ best_dist / n.
//   - Heuristic 3 (tight, n computations, applied only to nodes that
//     survive heuristic 2): prune N when Σ_i mindist(N,q_i) ≥ best_dist.
//
// The same bounds generalised to MAX/MIN make MBM work for the extension
// aggregates. Options.DisableHeuristic3 reproduces the §5.1 footnote-3
// ablation. The best-first variant is built on the incremental iterator
// below; the depth-first variant follows Figure 3.7.
func MBM(t *rtree.Tree, qs []geom.Point, opt Options) ([]GroupNeighbor, error) {
	opt = opt.withDefaults()
	if err := validate(t, qs, opt); err != nil {
		return nil, err
	}
	if t.Len() == 0 {
		return nil, nil
	}
	if opt.Traversal == DepthFirst {
		w, err := newWeightCtx(opt.Weights, len(qs))
		if err != nil {
			return nil, err
		}
		best := newKBest(opt.K)
		qmbr := geom.BoundingRect(qs)
		rd := t.Reader(opt.Cost)
		mbmDF(rd, rd.Root(), qs, qmbr, w, opt, best)
		return best.results(), nil
	}
	it, err := NewGNNIterator(t, qs, opt)
	if err != nil {
		return nil, err
	}
	best := newKBest(opt.K)
	for len(best.items) < opt.K {
		g, ok := it.Next()
		if !ok {
			break
		}
		best.offer(g)
	}
	return best.results(), nil
}

// mbmDF is the depth-first MBM of Figure 3.7: entries sorted by mindist to
// the query MBR; heuristic 2 ends the scan of the sorted list (monotone in
// the sort key), heuristic 3 skips individual surviving nodes.
func mbmDF(rd rtree.Reader, nd rtree.Node, qs []geom.Point, qmbr geom.Rect, w *weightCtx, opt Options, best *kbest) {
	entries := nd.Entries()
	n := len(qs)
	type cand struct {
		e rtree.Entry
		d float64 // mindist(entry, M) — the sort key
	}
	cands := make([]cand, 0, len(entries))
	for _, e := range entries {
		if !regionIntersects(opt.Region, e.Rect) {
			continue // constrained query: subtree holds no qualifying point
		}
		var d float64
		if e.IsLeafEntry() {
			d = geom.MinDistPointRect(e.Point, qmbr)
		} else {
			d = geom.MinDistRectRect(e.Rect, qmbr)
		}
		cands = append(cands, cand{e, d})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
	for _, c := range cands {
		if c.e.IsLeafEntry() {
			// Heuristic 2 on points: mindist(p,M) ≥ best_dist/n discards
			// p without computing n exact distances; monotone in the sort
			// key, so all later entries are discarded too.
			if quickPointLBW(opt.Aggregate, c.e.Point, qmbr, n, w) >= best.bound() {
				opt.Trace.add(func(tr *Trace) { tr.PointsPrunedQuick++ })
				return
			}
			if regionAllows(opt.Region, c.e.Point) {
				opt.Trace.add(func(tr *Trace) { tr.ExactDistances++ })
				best.offer(GroupNeighbor{
					Point: c.e.Point, ID: c.e.ID,
					Dist: aggDistW(opt.Aggregate, c.e.Point, qs, w),
				})
			}
			continue
		}
		if quickNodeLBW(opt.Aggregate, c.e.Rect, qmbr, n, w) >= best.bound() {
			opt.Trace.add(func(tr *Trace) { tr.NodesPrunedH2++ })
			return // heuristic 2: this and all later nodes pruned
		}
		if !opt.DisableHeuristic3 &&
			nodeLBW(opt.Aggregate, c.e.Rect, qs, w) >= best.bound() {
			opt.Trace.add(func(tr *Trace) { tr.NodesPrunedH3++ })
			continue // heuristic 3: skip just this node
		}
		opt.Trace.add(func(tr *Trace) { tr.NodesVisited++ })
		mbmDF(rd, rd.Child(c.e), qs, qmbr, w, opt, best)
	}
}

// GNNIterator reports data points in ascending aggregate distance from the
// query group, one at a time — incremental MBM. F-MQM consumes it per
// query block (§4.2); it is also the engine of best-first MBM.
//
// The iterator is a lazy best-first search. Heap entries carry
// progressively tighter keys:
//
//	node/cheap  — heuristic-2 bound (one distance computation)
//	node/tight  — heuristic-3 bound (n computations, only when the node
//	              reaches the heap top and heuristic 3 is enabled)
//	point/cheap — heuristic-2 point bound
//	point/exact — the true dist(p,Q); popping this yields a result
//
// Because every key lower-bounds the exact distance of everything beneath
// it, results emerge in exact ascending order while far nodes and points
// never pay the n-distance computation.
type GNNIterator struct {
	rd   rtree.Reader
	qs   []geom.Point
	qmbr geom.Rect
	opt  Options
	w    *weightCtx
	heap *pq.Heap[gnnItem]
}

type gnnState int8

const (
	nodeCheap gnnState = iota
	nodeTight
	pointCheap
	pointExact
)

type gnnItem struct {
	e     rtree.Entry
	state gnnState
}

// NewGNNIterator starts an incremental GNN scan of t around qs.
func NewGNNIterator(t *rtree.Tree, qs []geom.Point, opt Options) (*GNNIterator, error) {
	opt = opt.withDefaults()
	if err := validate(t, qs, opt); err != nil {
		return nil, err
	}
	w, err := newWeightCtx(opt.Weights, len(qs))
	if err != nil {
		return nil, err
	}
	it := &GNNIterator{
		rd:   t.Reader(opt.Cost),
		qs:   qs,
		qmbr: geom.BoundingRect(qs),
		opt:  opt,
		w:    w,
		heap: pq.NewHeap[gnnItem](64),
	}
	if t.Len() > 0 {
		it.pushNode(it.rd.Root())
	}
	return it, nil
}

func (it *GNNIterator) pushNode(nd rtree.Node) {
	n := len(it.qs)
	for _, e := range nd.Entries() {
		if !regionIntersects(it.opt.Region, e.Rect) {
			continue
		}
		if e.IsLeafEntry() {
			if !regionAllows(it.opt.Region, e.Point) {
				continue
			}
			it.heap.Push(gnnItem{e, pointCheap},
				quickPointLBW(it.opt.Aggregate, e.Point, it.qmbr, n, it.w))
		} else {
			it.heap.Push(gnnItem{e, nodeCheap},
				quickNodeLBW(it.opt.Aggregate, e.Rect, it.qmbr, n, it.w))
		}
	}
}

// Next returns the next group nearest neighbor; ok is false when the data
// set is exhausted.
func (it *GNNIterator) Next() (GroupNeighbor, bool) {
	for {
		item, ok := it.heap.Pop()
		if !ok {
			return GroupNeighbor{}, false
		}
		switch item.Value.state {
		case pointExact:
			return GroupNeighbor{
				Point: item.Value.e.Point,
				ID:    item.Value.e.ID,
				Dist:  item.Priority,
			}, true
		case pointCheap:
			it.opt.Trace.add(func(tr *Trace) { tr.ExactDistances++ })
			exact := aggDistW(it.opt.Aggregate, item.Value.e.Point, it.qs, it.w)
			it.heap.Push(gnnItem{item.Value.e, pointExact}, exact)
		case nodeCheap:
			if !it.opt.DisableHeuristic3 {
				tight := nodeLBW(it.opt.Aggregate, item.Value.e.Rect, it.qs, it.w)
				if tight > item.Priority {
					it.heap.Push(gnnItem{item.Value.e, nodeTight}, tight)
					continue
				}
			}
			it.opt.Trace.add(func(tr *Trace) { tr.NodesVisited++ })
			it.pushNode(it.rd.Child(item.Value.e))
		case nodeTight:
			it.opt.Trace.add(func(tr *Trace) { tr.NodesVisited++ })
			it.pushNode(it.rd.Child(item.Value.e))
		}
	}
}

// PeekDist returns a lower bound on the distance of the next result; ok is
// false when exhausted.
func (it *GNNIterator) PeekDist() (float64, bool) {
	return it.heap.MinPriority()
}
