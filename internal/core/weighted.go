package core

import (
	"fmt"
	"math"

	"gnn/internal/geom"
)

// This file extends the paper's framework along two axes it flags as
// future work (§6):
//
//   - Weighted groups: dist(p,Q) = Σ_i w_i·|p q_i| (or the weighted
//     max/min). A user who must drive counts more than one who walks; a
//     pin on a critical net counts more than a relaxed one. Every bound
//     generalises: the triangle inequality scales by w_i, so Lemma 1
//     becomes dist_w(p,Q) ≥ W·|pq| − dist_w(q,Q) with W = Σ w_i, and the
//     heuristics 2/3 bounds pick up the corresponding weight factors.
//
//   - Constrained regions: only data points inside a rectangle qualify
//     (cf. constrained NN search [FSAA01]). MBM prunes non-intersecting
//     subtrees outright; MQM and SPM filter candidate points, which keeps
//     their termination arguments intact (thresholds still lower-bound
//     the distance of every unseen point, qualifying or not).

// weightCtx precomputes the weight reductions the bounds need. A nil
// *weightCtx means the unweighted query, and every helper accepts it.
type weightCtx struct {
	w             []float64
	sum, max, min float64
}

// newWeightCtx validates weights against the group size. nil weights
// yield a nil context (unweighted fast path).
func newWeightCtx(w []float64, n int) (*weightCtx, error) {
	if w == nil {
		return nil, nil
	}
	if len(w) != n {
		return nil, fmt.Errorf("core: %d weights for %d query points", len(w), n)
	}
	ctx := &weightCtx{w: w, min: math.Inf(1)}
	for i, v := range w {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("core: weight %d is %v; weights must be positive and finite", i, v)
		}
		ctx.sum += v
		if v > ctx.max {
			ctx.max = v
		}
		if v < ctx.min {
			ctx.min = v
		}
	}
	return ctx, nil
}

// aggDistW returns the (possibly weighted) aggregate distance dist(p,Q).
func aggDistW(a Aggregate, p geom.Point, qs []geom.Point, w *weightCtx) float64 {
	if w == nil {
		return aggDist(a, p, qs)
	}
	switch a {
	case Max:
		m := 0.0
		for i, q := range qs {
			if d := w.w[i] * geom.Dist(p, q); d > m {
				m = d
			}
		}
		return m
	case Min:
		m := math.Inf(1)
		for i, q := range qs {
			if d := w.w[i] * geom.Dist(p, q); d < m {
				m = d
			}
		}
		return m
	default:
		s := 0.0
		for i, q := range qs {
			s += w.w[i] * geom.Dist(p, q)
		}
		return s
	}
}

// nodeLBW is the heuristic-3 family bound under weights: since
// |p q_i| ≥ mindist(N, q_i) for p inside N, each term scales by w_i.
func nodeLBW(a Aggregate, r geom.Rect, qs []geom.Point, w *weightCtx) float64 {
	if w == nil {
		return nodeLB(a, r, qs)
	}
	switch a {
	case Max:
		m := 0.0
		for i, q := range qs {
			if d := w.w[i] * geom.MinDistPointRect(q, r); d > m {
				m = d
			}
		}
		return m
	case Min:
		m := math.Inf(1)
		for i, q := range qs {
			if d := w.w[i] * geom.MinDistPointRect(q, r); d < m {
				m = d
			}
		}
		return m
	default:
		s := 0.0
		for i, q := range qs {
			s += w.w[i] * geom.MinDistPointRect(q, r)
		}
		return s
	}
}

// quickNodeLBW is the heuristic-2 family bound under weights: every
// |p q_i| ≥ mindist(N, M), so the weighted sum is ≥ W·mindist, the
// weighted max ≥ max(w)·mindist and the weighted min ≥ min(w)·mindist.
func quickNodeLBW(a Aggregate, r geom.Rect, qmbr geom.Rect, n int, w *weightCtx) float64 {
	if w == nil {
		return quickNodeLB(a, r, qmbr, n)
	}
	d := geom.MinDistRectRect(r, qmbr)
	switch a {
	case Max:
		return d * w.max
	case Min:
		return d * w.min
	default:
		return d * w.sum
	}
}

// quickLBFromMindist folds an already-computed mindist d (point- or
// rect-to-MBR) into the heuristic-2 family bound, exactly as
// quickNodeLBW/quickPointLBW would: the depth-first kernels sort on the
// squared mindist and derive the bound from that key with a single Sqrt
// instead of recomputing the mindist.
func quickLBFromMindist(a Aggregate, d float64, n int, w *weightCtx) float64 {
	if w == nil {
		if a == Sum {
			return float64(n) * d
		}
		return d
	}
	switch a {
	case Max:
		return d * w.max
	case Min:
		return d * w.min
	default:
		return d * w.sum
	}
}

// quickPointLBW is quickNodeLBW for a data point.
func quickPointLBW(a Aggregate, p geom.Point, qmbr geom.Rect, n int, w *weightCtx) float64 {
	if w == nil {
		return quickPointLB(a, p, qmbr, n)
	}
	d := geom.MinDistPointRect(p, qmbr)
	switch a {
	case Max:
		return d * w.max
	case Min:
		return d * w.min
	default:
		return d * w.sum
	}
}

// combineThresholdsW folds MQM's per-stream thresholds t_i into the
// global threshold T under weights: every unseen point p has
// |p q_i| ≥ t_i, hence w_i·|p q_i| ≥ w_i·t_i and T = agg_i(w_i·t_i).
func combineThresholdsW(a Aggregate, thresholds []float64, w *weightCtx) float64 {
	if w == nil {
		return aggCombine(a, thresholds)
	}
	switch a {
	case Max:
		m := 0.0
		for i, t := range thresholds {
			if v := w.w[i] * t; v > m {
				m = v
			}
		}
		return m
	case Min:
		m := math.Inf(1)
		for i, t := range thresholds {
			if v := w.w[i] * t; v < m {
				m = v
			}
		}
		return m
	default:
		s := 0.0
		for i, t := range thresholds {
			s += w.w[i] * t
		}
		return s
	}
}

// The SoA group fast path. The group-facing inner loops — the exact
// aggregate distance of a candidate point and the heuristic-3 node bound —
// evaluate one term per query point, and with the group stored as a slice
// of separately allocated points every term starts with a pointer chase.
// Queries therefore lay the group out once per query as per-axis columns
// (ExecContext.groupSoA) and the hot loops stream those contiguous
// arrays. Each term performs exactly the same floating-point operations
// in the same order as its AoS counterpart in aggDistW/nodeLBW (the 2-D
// specialisation's dx*dx + dy*dy equals the (0+d0²)+d1² accumulation
// bit for bit, squares being non-negative), so results, pruning and
// node-access counts are unchanged — on both tree layouts, which share
// these functions.

// aggDistSoA is aggDistW over the SoA group g (g[axis][j]).
func aggDistSoA(a Aggregate, p geom.Point, g [][]float64, w *weightCtx) float64 {
	n := len(g[0])
	if len(g) == 2 {
		px, py := p[0], p[1]
		qx, qy := g[0], g[1]
		switch a {
		case Max:
			var m float64
			if w == nil {
				for j := 0; j < n; j++ {
					dx, dy := px-qx[j], py-qy[j]
					if dsq := dx*dx + dy*dy; dsq > m {
						m = dsq
					}
				}
				return math.Sqrt(m)
			}
			for j := 0; j < n; j++ {
				dx, dy := px-qx[j], py-qy[j]
				if d := w.w[j] * math.Sqrt(dx*dx+dy*dy); d > m {
					m = d
				}
			}
			return m
		case Min:
			m := math.Inf(1)
			if w == nil {
				for j := 0; j < n; j++ {
					dx, dy := px-qx[j], py-qy[j]
					if dsq := dx*dx + dy*dy; dsq < m {
						m = dsq
					}
				}
				return math.Sqrt(m)
			}
			for j := 0; j < n; j++ {
				dx, dy := px-qx[j], py-qy[j]
				if d := w.w[j] * math.Sqrt(dx*dx+dy*dy); d < m {
					m = d
				}
			}
			return m
		default:
			var s float64
			if w == nil {
				for j := 0; j < n; j++ {
					dx, dy := px-qx[j], py-qy[j]
					s += math.Sqrt(dx*dx + dy*dy)
				}
				return s
			}
			for j := 0; j < n; j++ {
				dx, dy := px-qx[j], py-qy[j]
				s += w.w[j] * math.Sqrt(dx*dx+dy*dy)
			}
			return s
		}
	}
	// Generic dimensionality: same shape, axis-inner.
	distSqAt := func(j int) float64 {
		var dsq float64
		for ax := range g {
			d := p[ax] - g[ax][j]
			dsq += d * d
		}
		return dsq
	}
	switch a {
	case Max:
		var m float64
		if w == nil {
			for j := 0; j < n; j++ {
				if dsq := distSqAt(j); dsq > m {
					m = dsq
				}
			}
			return math.Sqrt(m)
		}
		for j := 0; j < n; j++ {
			if d := w.w[j] * math.Sqrt(distSqAt(j)); d > m {
				m = d
			}
		}
		return m
	case Min:
		m := math.Inf(1)
		if w == nil {
			for j := 0; j < n; j++ {
				if dsq := distSqAt(j); dsq < m {
					m = dsq
				}
			}
			return math.Sqrt(m)
		}
		for j := 0; j < n; j++ {
			if d := w.w[j] * math.Sqrt(distSqAt(j)); d < m {
				m = d
			}
		}
		return m
	default:
		var s float64
		if w == nil {
			for j := 0; j < n; j++ {
				s += math.Sqrt(distSqAt(j))
			}
			return s
		}
		for j := 0; j < n; j++ {
			s += w.w[j] * math.Sqrt(distSqAt(j))
		}
		return s
	}
}

// nodeLBSoA is nodeLBW (the heuristic-3 family bound) over the SoA group.
func nodeLBSoA(a Aggregate, r geom.Rect, g [][]float64, w *weightCtx) float64 {
	n := len(g[0])
	if len(g) == 2 {
		lox, hix := r.Lo[0], r.Hi[0]
		loy, hiy := r.Lo[1], r.Hi[1]
		qx, qy := g[0], g[1]
		minDistSqAt := func(j int) float64 {
			var dx, dy float64
			switch {
			case qx[j] < lox:
				dx = lox - qx[j]
			case qx[j] > hix:
				dx = qx[j] - hix
			}
			switch {
			case qy[j] < loy:
				dy = loy - qy[j]
			case qy[j] > hiy:
				dy = qy[j] - hiy
			}
			return dx*dx + dy*dy
		}
		switch a {
		case Max:
			var m float64
			if w == nil {
				for j := 0; j < n; j++ {
					if dsq := minDistSqAt(j); dsq > m {
						m = dsq
					}
				}
				return math.Sqrt(m)
			}
			for j := 0; j < n; j++ {
				if d := w.w[j] * math.Sqrt(minDistSqAt(j)); d > m {
					m = d
				}
			}
			return m
		case Min:
			m := math.Inf(1)
			if w == nil {
				for j := 0; j < n; j++ {
					if dsq := minDistSqAt(j); dsq < m {
						m = dsq
					}
				}
				return math.Sqrt(m)
			}
			for j := 0; j < n; j++ {
				if d := w.w[j] * math.Sqrt(minDistSqAt(j)); d < m {
					m = d
				}
			}
			return m
		default:
			var s float64
			if w == nil {
				for j := 0; j < n; j++ {
					s += math.Sqrt(minDistSqAt(j))
				}
				return s
			}
			for j := 0; j < n; j++ {
				s += w.w[j] * math.Sqrt(minDistSqAt(j))
			}
			return s
		}
	}
	minDistSqAt := func(j int) float64 {
		var dsq float64
		for ax := range g {
			v := g[ax][j]
			var d float64
			switch {
			case v < r.Lo[ax]:
				d = r.Lo[ax] - v
			case v > r.Hi[ax]:
				d = v - r.Hi[ax]
			}
			dsq += d * d
		}
		return dsq
	}
	switch a {
	case Max:
		var m float64
		if w == nil {
			for j := 0; j < n; j++ {
				if dsq := minDistSqAt(j); dsq > m {
					m = dsq
				}
			}
			return math.Sqrt(m)
		}
		for j := 0; j < n; j++ {
			if d := w.w[j] * math.Sqrt(minDistSqAt(j)); d > m {
				m = d
			}
		}
		return m
	case Min:
		m := math.Inf(1)
		if w == nil {
			for j := 0; j < n; j++ {
				if dsq := minDistSqAt(j); dsq < m {
					m = dsq
				}
			}
			return math.Sqrt(m)
		}
		for j := 0; j < n; j++ {
			if d := w.w[j] * math.Sqrt(minDistSqAt(j)); d < m {
				m = d
			}
		}
		return m
	default:
		var s float64
		if w == nil {
			for j := 0; j < n; j++ {
				s += math.Sqrt(minDistSqAt(j))
			}
			return s
		}
		for j := 0; j < n; j++ {
			s += w.w[j] * math.Sqrt(minDistSqAt(j))
		}
		return s
	}
}

// regionAllows reports whether a data point qualifies under the optional
// constraint region.
func regionAllows(region *geom.Rect, p geom.Point) bool {
	return region == nil || region.ContainsPoint(p)
}

// regionIntersects reports whether a subtree can contain qualifying
// points under the optional constraint region.
func regionIntersects(region *geom.Rect, r geom.Rect) bool {
	return region == nil || region.Intersects(r)
}
