package core

import (
	"math"
	"sync/atomic"
)

// SharedBound is a monotonically tightening upper bound on the k-th best
// aggregate distance of one logical query, shared by several concurrent
// traversals of disjoint data partitions (the sharded scatter-gather
// execution). Each partition's kernel prunes with the minimum of its own
// k-th best and this bound, and publishes its k-th best whenever it
// tightens, so a shard that has already found close neighbors cuts the
// search space of every other shard.
//
// Soundness: a partition's current k-th best distance always upper-bounds
// the final k-th best over the union of partitions (the union only adds
// candidates), and the bound only ever decreases, so pruning against it
// can discard only candidates that cannot rank strictly inside the final
// k. The merged answer therefore carries exactly the distances of an
// unpartitioned search, rank for rank; when several distinct points tie
// at exactly the k-th best distance, the representative kept may differ
// from the unpartitioned run's — the same latitude a single traversal's
// own first-come tie-breaking already has (kbest rejects an equal-distance
// candidate against a full list). Node-access counts of individual shards
// vary with publication timing; the answer's distances never do.
//
// The value is stored as the bit pattern of a float64 in an atomic
// uint64; all stored values are non-negative (distances or +Inf), so the
// CAS loop in Tighten needs no ABA care beyond value comparison. The zero
// value is NOT usable — construct with NewSharedBound, which starts at
// +Inf (no information).
type SharedBound struct {
	bits atomic.Uint64
}

// NewSharedBound returns a bound initialised to +Inf.
func NewSharedBound() *SharedBound {
	b := &SharedBound{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

// Load returns the current bound.
func (b *SharedBound) Load() float64 {
	return math.Float64frombits(b.bits.Load())
}

// Tighten lowers the bound to d if d improves on it; larger values are
// ignored, so the bound decreases monotonically under any interleaving.
func (b *SharedBound) Tighten(d float64) {
	for {
		old := b.bits.Load()
		if math.Float64frombits(old) <= d {
			return
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(d)) {
			return
		}
	}
}

// MergeNeighbors merges per-partition result lists — each ascending by
// distance, as every kernel returns them — into the k best overall, with
// the same ID-deduplication and tie semantics as a single kbest fed the
// candidates in ascending (distance, partition-order) order. It is the
// gather half of the sharded scatter-gather execution.
func MergeNeighbors(k int, lists [][]GroupNeighbor) []GroupNeighbor {
	best := kbest{k: k, items: make([]GroupNeighbor, 0, k)}
	idx := make([]int, len(lists))
	for {
		pick := -1
		var d float64
		for l, i := range idx {
			if i >= len(lists[l]) {
				continue
			}
			if pick == -1 || lists[l][i].Dist < d {
				pick, d = l, lists[l][i].Dist
			}
		}
		if pick == -1 || d >= best.bound() {
			break // remaining candidates are all at least as far
		}
		best.offer(lists[pick][idx[pick]])
		idx[pick]++
	}
	return best.results()
}
