package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"gnn/internal/geom"
	"gnn/internal/pagestore"
)

// Cross-algorithm equivalence suite for the pooled / squared-distance
// kernels: every algorithm × aggregate × weighting combination must return
// the brute-force oracle's answer — distances within 1e-9 rank by rank,
// and identical IDs wherever the oracle's ranking is strict (ties may
// legitimately reorder, which is exactly what the sqrt-elision must not
// silently change beyond). Every algorithm additionally runs twice, once
// with a fresh pooled context and once with a caller-held reused context,
// and the two runs must agree byte for byte.

// oracleEquiv asserts got matches the brute-force oracle under tie
// tolerance.
func oracleEquiv(t *testing.T, name string, got, want []GroupNeighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", name, len(got), len(want))
	}
	const tol = 1e-9
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > tol*(1+want[i].Dist) {
			t.Fatalf("%s: rank %d dist %.17g, want %.17g", name, i, got[i].Dist, want[i].Dist)
		}
	}
	// IDs must match exactly at every rank whose oracle distance is
	// strictly separated from both neighbors (no tie it could swap with).
	for i := range got {
		sep := true
		if i > 0 && want[i].Dist-want[i-1].Dist <= tol*(1+want[i].Dist) {
			sep = false
		}
		if i+1 < len(want) && want[i+1].Dist-want[i].Dist <= tol*(1+want[i].Dist) {
			sep = false
		}
		if sep && got[i].ID != want[i].ID {
			t.Fatalf("%s: rank %d ID %d, want %d (dist %.17g vs %.17g)",
				name, i, got[i].ID, want[i].ID, got[i].Dist, want[i].Dist)
		}
	}
}

// runTwice answers the same query with a nil Exec (pool-cycled) and with a
// shared reused context, requiring identical output, and returns it.
func runTwice(t *testing.T, name string, ec *ExecContext,
	run func(Options) ([]GroupNeighbor, error), opt Options) []GroupNeighbor {
	t.Helper()
	opt.Exec = nil
	fresh, err := run(opt)
	if err != nil {
		t.Fatalf("%s (fresh exec): %v", name, err)
	}
	opt.Exec = ec
	reused, err := run(opt)
	if err != nil {
		t.Fatalf("%s (reused exec): %v", name, err)
	}
	if !reflect.DeepEqual(fresh, reused) {
		t.Fatalf("%s: pooled-context run diverged from fresh-context run\nfresh:  %v\nreused: %v",
			name, fresh, reused)
	}
	return fresh
}

func TestEquivalenceMemoryKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	pts := clusteredPts(rng, 3000, 1000)
	tr := buildTree(t, pts, 16)
	ec := AcquireExec() // one context deliberately reused across ALL cells
	defer ec.Release()

	aggs := []Aggregate{Sum, Max, Min}
	for trial := 0; trial < 12; trial++ {
		n := []int{1, 3, 8, 32}[trial%4]
		qs := make([]geom.Point, n)
		base := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		for i := range qs {
			qs[i] = geom.Point{base[0] + rng.Float64()*150, base[1] + rng.Float64()*150}
		}
		var weights []float64
		if trial%2 == 1 {
			weights = make([]float64, n)
			for i := range weights {
				weights[i] = 0.25 + rng.Float64()*4
			}
		}
		k := []int{1, 4, 9}[trial%3]
		for _, agg := range aggs {
			opt := Options{K: k, Aggregate: agg, Weights: weights}
			oracle, err := BruteForce(tr, qs, opt)
			if err != nil {
				t.Fatal(err)
			}
			type cell struct {
				name string
				run  func(Options) ([]GroupNeighbor, error)
				sum  bool // SUM-only algorithm
			}
			cells := []cell{
				{"MQM", func(o Options) ([]GroupNeighbor, error) { return MQM(tr, qs, o) }, false},
				{"MBM-BF", func(o Options) ([]GroupNeighbor, error) { return MBM(tr, qs, o) }, false},
				{"MBM-DF", func(o Options) ([]GroupNeighbor, error) {
					o.Traversal = DepthFirst
					return MBM(tr, qs, o)
				}, false},
				{"SPM-BF", func(o Options) ([]GroupNeighbor, error) { return SPM(tr, qs, o) }, true},
				{"SPM-DF", func(o Options) ([]GroupNeighbor, error) {
					o.Traversal = DepthFirst
					return SPM(tr, qs, o)
				}, true},
			}
			for _, c := range cells {
				if c.sum && agg != Sum {
					continue
				}
				name := fmt.Sprintf("trial%d/%s/%v/k=%d/weighted=%v", trial, c.name, agg, k, weights != nil)
				got := runTwice(t, name, ec, c.run, opt)
				oracleEquiv(t, name, got, oracle)
			}
		}
	}
}

func TestEquivalenceDiskKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := clusteredPts(rng, 2500, 1000)
	tr := buildTree(t, pts, 16)
	ec := AcquireExec()
	defer ec.Release()

	for trial := 0; trial < 6; trial++ {
		nq := []int{40, 120, 400}[trial%3]
		qpts := make([]geom.Point, nq)
		base := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		for i := range qpts {
			qpts[i] = geom.Point{base[0] + rng.Float64()*300, base[1] + rng.Float64()*300}
		}
		k := []int{1, 5}[trial%2]
		opt := Options{K: k}
		oracle, err := BruteForce(tr, qpts, opt)
		if err != nil {
			t.Fatal(err)
		}

		qf, err := NewQueryFile(qpts, 50, pagestore.NewAccountant(0), 1<<40)
		if err != nil {
			t.Fatal(err)
		}
		qtree := buildTree(t, qpts, 16)

		type cell struct {
			name string
			run  func(Options) ([]GroupNeighbor, error)
		}
		cells := []cell{
			{"F-MQM", func(o Options) ([]GroupNeighbor, error) {
				rep, err := FMQM(tr, qf, DiskOptions{Options: o})
				if err != nil {
					return nil, err
				}
				return rep.Neighbors, nil
			}},
			{"F-MBM-BF", func(o Options) ([]GroupNeighbor, error) {
				rep, err := FMBM(tr, qf, DiskOptions{Options: o})
				if err != nil {
					return nil, err
				}
				return rep.Neighbors, nil
			}},
			{"F-MBM-DF", func(o Options) ([]GroupNeighbor, error) {
				o.Traversal = DepthFirst
				rep, err := FMBM(tr, qf, DiskOptions{Options: o})
				if err != nil {
					return nil, err
				}
				return rep.Neighbors, nil
			}},
			{"GCP", func(o Options) ([]GroupNeighbor, error) {
				rep, err := GCP(tr, qtree, GCPOptions{Options: o})
				if err != nil {
					return nil, err
				}
				return rep.Neighbors, nil
			}},
		}
		for _, c := range cells {
			name := fmt.Sprintf("trial%d/%s/k=%d", trial, c.name, k)
			got := runTwice(t, name, ec, c.run, opt)
			// Disk kernels accumulate block sums in their own order, so
			// their distances agree with the oracle to float tolerance,
			// not bit for bit; oracleEquiv's 1e-9 covers it.
			oracleEquiv(t, name, got, oracle)
		}
	}
}

// TestEquivalenceSumOnlyRejections: the SUM-only kernels must keep
// rejecting the extension aggregates rather than silently mis-pruning.
func TestEquivalenceSumOnlyRejections(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := randPts(rng, 300, 100)
	tr := buildTree(t, pts, 8)
	qpts := randPts(rng, 40, 100)
	qf, err := NewQueryFile(qpts, 20, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	qtree := buildTree(t, qpts, 8)
	for _, agg := range []Aggregate{Max, Min} {
		if _, err := SPM(tr, qpts, Options{K: 1, Aggregate: agg}); err != ErrUnsupportedAggregate {
			t.Fatalf("SPM(%v): err = %v", agg, err)
		}
		if _, err := FMQM(tr, qf, DiskOptions{Options: Options{K: 1, Aggregate: agg}}); err != ErrUnsupportedAggregate {
			t.Fatalf("FMQM(%v): err = %v", agg, err)
		}
		if _, err := FMBM(tr, qf, DiskOptions{Options: Options{K: 1, Aggregate: agg}}); err != ErrUnsupportedAggregate {
			t.Fatalf("FMBM(%v): err = %v", agg, err)
		}
		if _, err := GCP(tr, qtree, GCPOptions{Options: Options{K: 1, Aggregate: agg}}); err != ErrUnsupportedAggregate {
			t.Fatalf("GCP(%v): err = %v", agg, err)
		}
	}
}
