// Overlay support: the pieces the delta-overlay index layer composes on
// top of the paper kernels. A mutated index answers a query by running
// the chosen kernel once per source (immutable base tree, small delta
// tree, unfolded pending points) and reassembling the exact answer with
// MergeNeighbors — the same multi-source discipline the sharded scatter
// uses, so the bit-exactness argument is identical.

package core

import (
	"sort"

	"gnn/internal/geom"
)

// Stream is an ascending-distance candidate stream: the common surface of
// GNNIterator (one per tree source) and ListStream (pending points). The
// shard merge iterator consumes Streams, which lets one merge
// implementation serve both sharded queries and overlay queries.
type Stream interface {
	// Next returns the next candidate; ok is false when exhausted.
	Next() (GroupNeighbor, bool)
	// PeekDist returns a lower bound on the next candidate's distance;
	// ok is false when exhausted.
	PeekDist() (float64, bool)
	// Close releases the stream's resources; it is idempotent.
	Close()
}

// ListStream adapts a pre-computed, ascending-sorted result list to the
// Stream interface. Unlike a tree iterator its distances are exact, so
// PeekDist is tight.
type ListStream struct {
	items []GroupNeighbor
	pos   int
}

// NewListStream sorts items ascending by distance and wraps them. The
// slice is retained and reordered in place.
func NewListStream(items []GroupNeighbor) *ListStream {
	sort.SliceStable(items, func(i, j int) bool { return items[i].Dist < items[j].Dist })
	return &ListStream{items: items}
}

// Next implements Stream.
func (ls *ListStream) Next() (GroupNeighbor, bool) {
	if ls.pos >= len(ls.items) {
		return GroupNeighbor{}, false
	}
	g := ls.items[ls.pos]
	ls.pos++
	return g, true
}

// PeekDist implements Stream.
func (ls *ListStream) PeekDist() (float64, bool) {
	if ls.pos >= len(ls.items) {
		return 0, false
	}
	return ls.items[ls.pos].Dist, true
}

// Close implements Stream.
func (ls *ListStream) Close() { ls.items = nil; ls.pos = 0 }

// ScanPoints computes the k best group neighbors over an explicit point
// list — the overlay's pending tail, points inserted since the delta tree
// was last folded. It charges no node accesses (the pending tail is a
// memory-resident array, not an index) and honours the full option set
// the kernels do: aggregate, weights, region, shared bound. Reject is
// deliberately ignored: pending points are physically removed on delete,
// never tombstoned.
func ScanPoints(pts []geom.Point, ids []int64, qs []geom.Point, opt Options) ([]GroupNeighbor, error) {
	opt = opt.withDefaults()
	if len(qs) == 0 {
		return nil, ErrEmptyQuery
	}
	if opt.K < 1 {
		return nil, ErrBadK
	}
	w, err := newWeightCtx(opt.Weights, len(qs))
	if err != nil {
		return nil, err
	}
	best := newKBest(opt.K)
	best.shared = opt.Shared
	for i, p := range pts {
		if i%256 == 0 && opt.Cancel.Stop() {
			break
		}
		if regionAllows(opt.Region, p) {
			best.offer(GroupNeighbor{Point: p, ID: ids[i], Dist: aggDistW(opt.Aggregate, p, qs, w)})
		}
	}
	if err := opt.Cancel.Failure(); err != nil {
		return nil, err
	}
	return best.results(), nil
}

// ScanAll computes the aggregate distance of every pending-tail point —
// honouring aggregate, weights, and region — sorted ascending. It backs
// the incremental iterator path, which cannot bound k in advance; wrap
// the result in a ListStream and merge it with the tree iterators.
func ScanAll(pts []geom.Point, ids []int64, qs []geom.Point, opt Options) ([]GroupNeighbor, error) {
	opt = opt.withDefaults()
	if len(qs) == 0 {
		return nil, ErrEmptyQuery
	}
	w, err := newWeightCtx(opt.Weights, len(qs))
	if err != nil {
		return nil, err
	}
	out := make([]GroupNeighbor, 0, len(pts))
	for i, p := range pts {
		if regionAllows(opt.Region, p) {
			out = append(out, GroupNeighbor{Point: p, ID: ids[i], Dist: aggDistW(opt.Aggregate, p, qs, w)})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Dist < out[j].Dist })
	return out, nil
}

// ScanNeighbors is ScanPoints for the overlay's pending tail of a plain
// nearest-neighbor (single query point) search: exact distances, sorted
// ascending, no node accesses.
func ScanNeighbors(pts []geom.Point, ids []int64, q geom.Point) []GroupNeighbor {
	out := make([]GroupNeighbor, 0, len(pts))
	for i, p := range pts {
		out = append(out, GroupNeighbor{Point: p, ID: ids[i], Dist: geom.Dist(p, q)})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Dist < out[j].Dist })
	return out
}
