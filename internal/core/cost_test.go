package core

import (
	"math/rand"
	"testing"

	"gnn/internal/geom"
	"gnn/internal/pagestore"
	"gnn/internal/rtree"
)

// TestPerQueryCostSumsToAggregate runs a serial paper-style workload
// through every memory-resident algorithm and checks the refactor's
// contract: the per-query CostTrackers sum exactly to the tree's aggregate
// accountant, and attaching a tracker changes neither the results nor the
// NA totals an untracked run reports.
func TestPerQueryCostSumsToAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	pts := clusteredPts(rng, 3000, 1000)
	tr := buildTree(t, pts, 20)
	workload := make([][]geom.Point, 15)
	for i := range workload {
		workload[i] = randPts(rng, 16, 250)
	}

	algos := []struct {
		name string
		run  func(*rtree.Tree, []geom.Point, Options) ([]GroupNeighbor, error)
	}{
		{"MQM", MQM},
		{"SPM", SPM},
		{"MBM", MBM},
	}
	for _, a := range algos {
		// Untracked baseline totals.
		tr.Accountant().Reset()
		baseline := make([][]GroupNeighbor, len(workload))
		for i, qs := range workload {
			got, err := a.run(tr, qs, Options{K: 4})
			if err != nil {
				t.Fatalf("%s: %v", a.name, err)
			}
			baseline[i] = got
		}
		baselineNA := tr.Accountant().Totals()

		// Tracked rerun: per-query costs must sum to the aggregate delta,
		// which must equal the untracked totals.
		tr.Accountant().Reset()
		var sum pagestore.CostTracker
		for i, qs := range workload {
			var tk pagestore.CostTracker
			got, err := a.run(tr, qs, Options{K: 4, Cost: &tk})
			if err != nil {
				t.Fatalf("%s: %v", a.name, err)
			}
			if len(got) != len(baseline[i]) {
				t.Fatalf("%s query %d: %d results with tracker, %d without",
					a.name, i, len(got), len(baseline[i]))
			}
			for j := range got {
				if got[j].ID != baseline[i][j].ID || got[j].Dist != baseline[i][j].Dist {
					t.Fatalf("%s query %d rank %d: tracker changed the answer", a.name, i, j)
				}
			}
			sum.Add(tk)
		}
		if sum != tr.Accountant().Totals() {
			t.Fatalf("%s: per-query sum %+v != aggregate %+v", a.name, sum, tr.Accountant().Totals())
		}
		if sum != baselineNA {
			t.Fatalf("%s: tracked NA %+v != untracked NA %+v", a.name, sum, baselineNA)
		}
	}
}

// TestDiskReportCostMatchesAggregates checks the per-query cost of the
// disk-resident family: report.Cost must equal tree NA plus Q page reads.
func TestDiskReportCostMatchesAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	pts := clusteredPts(rng, 1500, 1000)
	qs := randPts(rng, 200, 400)
	tr := buildTreeIDs(t, pts)

	for _, algo := range []string{"F-MQM", "F-MBM"} {
		qacct := pagestore.NewAccountant(0)
		qf, err := NewQueryFile(qs, 40, qacct, 1<<41)
		if err != nil {
			t.Fatal(err)
		}
		tr.Accountant().Reset()
		var rep *DiskReport
		if algo == "F-MQM" {
			rep, err = FMQM(tr, qf, DiskOptions{Options: Options{K: 3}})
		} else {
			rep, err = FMBM(tr, qf, DiskOptions{Options: Options{K: 3}})
		}
		if err != nil {
			t.Fatal(err)
		}
		want := tr.Accountant().Logical() + qacct.Logical()
		if rep.Cost.Logical != want || rep.Cost.Logical == 0 {
			t.Fatalf("%s: report cost %d, aggregates %d", algo, rep.Cost.Logical, want)
		}
	}

	// GCP: the report cost spans both trees.
	tq := buildTreeIDs(t, qs[:60])
	tr.Accountant().Reset()
	tq.Accountant().Reset()
	rep, err := GCP(tr, tq, GCPOptions{Options: Options{K: 3}})
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Accountant().Logical() + tq.Accountant().Logical()
	if rep.Cost.Logical != want || rep.Cost.Logical == 0 {
		t.Fatalf("GCP: report cost %d, aggregates %d", rep.Cost.Logical, want)
	}
}
