package core

import (
	"math"
	"math/rand"
	"testing"

	"gnn/internal/geom"
)

// bruteWeighted is the specification for weighted aggregate distances.
func bruteWeighted(pts, qs []geom.Point, w []float64, agg Aggregate, region *geom.Rect, k int) []GroupNeighbor {
	best := newKBest(k)
	for i, p := range pts {
		if region != nil && !region.ContainsPoint(p) {
			continue
		}
		var d float64
		switch agg {
		case Max:
			for j, q := range qs {
				if v := w[j] * geom.Dist(p, q); v > d {
					d = v
				}
			}
		case Min:
			d = math.Inf(1)
			for j, q := range qs {
				if v := w[j] * geom.Dist(p, q); v < d {
					d = v
				}
			}
		default:
			for j, q := range qs {
				d += w[j] * geom.Dist(p, q)
			}
		}
		best.offer(GroupNeighbor{Point: p, ID: int64(i), Dist: d})
	}
	return best.results()
}

func TestWeightedSumAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 20; trial++ {
		pts := randPts(rng, 300+rng.Intn(300), 1000)
		tr := buildTree(t, pts, 8)
		n := 2 + rng.Intn(12)
		qs := randPts(rng, n, 400)
		w := make([]float64, n)
		for i := range w {
			w[i] = 0.1 + rng.Float64()*5
		}
		k := 1 + rng.Intn(4)
		want := bruteWeighted(pts, qs, w, Sum, nil, k)
		opt := Options{K: k, Weights: w}
		for _, a := range memAlgos {
			got, err := a.run(tr, qs, opt)
			if err != nil {
				t.Fatalf("%s: %v", a.name, err)
			}
			sameResults(t, a.name+"/weighted", got, want)
		}
		// Depth-first variants too.
		for _, a := range []memAlgo{{"SPM-DF", SPM}, {"MBM-DF", MBM}} {
			got, err := a.run(tr, qs, Options{K: k, Weights: w, Traversal: DepthFirst})
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, a.name+"/weighted", got, want)
		}
	}
}

func TestWeightedMaxMin(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 15; trial++ {
		pts := randPts(rng, 400, 1000)
		tr := buildTree(t, pts, 8)
		qs := randPts(rng, 6, 300)
		w := []float64{1, 2, 0.5, 3, 1.5, 0.25}
		for _, agg := range []Aggregate{Max, Min} {
			want := bruteWeighted(pts, qs, w, agg, nil, 3)
			opt := Options{K: 3, Weights: w, Aggregate: agg}
			for _, a := range []memAlgo{{"MQM", MQM}, {"MBM", MBM}} {
				got, err := a.run(tr, qs, opt)
				if err != nil {
					t.Fatalf("%s/%v: %v", a.name, agg, err)
				}
				sameResults(t, a.name+"/"+agg.String()+"w", got, want)
			}
		}
	}
}

func TestWeightValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	tr := buildTree(t, randPts(rng, 50, 100), 8)
	qs := randPts(rng, 3, 100)
	bad := [][]float64{
		{1, 2},              // wrong length
		{1, 2, 0},           // zero weight
		{1, -1, 2},          // negative
		{1, math.NaN(), 1},  // NaN
		{1, math.Inf(1), 1}, // infinite
		{1, 2, 3, 4},        // too long
	}
	for i, w := range bad {
		for _, a := range memAlgos {
			if _, err := a.run(tr, qs, Options{Weights: w}); err == nil {
				t.Errorf("case %d: %s accepted bad weights %v", i, a.name, w)
			}
		}
		if _, err := BruteForce(tr, qs, Options{Weights: w}); err == nil {
			t.Errorf("case %d: BruteForce accepted bad weights", i)
		}
		if _, err := NewGNNIterator(tr, qs, Options{Weights: w}); err == nil {
			t.Errorf("case %d: iterator accepted bad weights", i)
		}
	}
}

func TestWeightedEqualsUnweightedWithUnitWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	pts := randPts(rng, 400, 500)
	tr := buildTree(t, pts, 8)
	qs := randPts(rng, 8, 200)
	ones := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	for _, a := range memAlgos {
		plain, err := a.run(tr, qs, Options{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		weighted, err := a.run(tr, qs, Options{K: 5, Weights: ones})
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, a.name+"/unit-weights", weighted, plain)
	}
}

func TestConstrainedRegionAllAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 20; trial++ {
		pts := randPts(rng, 500, 1000)
		tr := buildTree(t, pts, 8)
		qs := randPts(rng, 8, 400)
		region := geom.NewRect(
			geom.Point{rng.Float64() * 800, rng.Float64() * 800},
			geom.Point{200 + rng.Float64()*800, 200 + rng.Float64()*800})
		k := 1 + rng.Intn(4)
		ones := make([]float64, len(qs))
		for i := range ones {
			ones[i] = 1
		}
		want := bruteWeighted(pts, qs, ones, Sum, &region, k)
		opt := Options{K: k, Region: &region}
		for _, a := range memAlgos {
			got, err := a.run(tr, qs, opt)
			if err != nil {
				t.Fatalf("%s: %v", a.name, err)
			}
			sameResults(t, a.name+"/region", got, want)
			for _, g := range got {
				if !region.ContainsPoint(g.Point) {
					t.Fatalf("%s returned out-of-region point %v", a.name, g.Point)
				}
			}
		}
	}
}

func TestConstrainedRegionEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	pts := randPts(rng, 200, 100) // all inside [0,100]²
	tr := buildTree(t, pts, 8)
	qs := randPts(rng, 4, 100)
	region := geom.NewRect(geom.Point{500, 500}, geom.Point{600, 600})
	for _, a := range memAlgos {
		got, err := a.run(tr, qs, Options{K: 3, Region: &region})
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		if len(got) != 0 {
			t.Fatalf("%s found %d points in an empty region", a.name, len(got))
		}
	}
}

func TestConstrainedRegionPrunesMBM(t *testing.T) {
	// MBM with a tiny region should visit far fewer nodes than without.
	rng := rand.New(rand.NewSource(66))
	pts := randPts(rng, 5000, 1000)
	tr := buildTree(t, pts, 10)
	qs := randPts(rng, 8, 1000) // spread-out group: expensive unconstrained
	region := geom.NewRect(geom.Point{480, 480}, geom.Point{520, 520})

	tr.Accountant().Reset()
	if _, err := MBM(tr, qs, Options{}); err != nil {
		t.Fatal(err)
	}
	unconstrained := tr.Accountant().Physical()
	tr.Accountant().Reset()
	if _, err := MBM(tr, qs, Options{Region: &region}); err != nil {
		t.Fatal(err)
	}
	constrained := tr.Accountant().Physical()
	if constrained > unconstrained {
		t.Fatalf("region increased NA: %d vs %d", constrained, unconstrained)
	}
}

func TestWeightedRegionCombination(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	pts := randPts(rng, 600, 1000)
	tr := buildTree(t, pts, 8)
	qs := randPts(rng, 5, 500)
	w := []float64{2, 1, 3, 0.5, 1}
	region := geom.NewRect(geom.Point{100, 100}, geom.Point{900, 900})
	want := bruteWeighted(pts, qs, w, Sum, &region, 4)
	for _, a := range memAlgos {
		got, err := a.run(tr, qs, Options{K: 4, Weights: w, Region: &region})
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, a.name+"/weighted+region", got, want)
	}
}

func TestWeightedIteratorOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	pts := randPts(rng, 200, 500)
	tr := buildTree(t, pts, 8)
	qs := randPts(rng, 4, 200)
	w := []float64{4, 1, 2, 0.5}
	want := bruteWeighted(pts, qs, w, Sum, nil, len(pts))
	it, err := NewGNNIterator(tr, qs, Options{Weights: w})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(pts); i++ {
		g, ok := it.Next()
		if !ok {
			t.Fatalf("iterator dry at %d", i)
		}
		if math.Abs(g.Dist-want[i].Dist) > 1e-6 {
			t.Fatalf("rank %d: %v vs %v", i, g.Dist, want[i].Dist)
		}
	}
}
