package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"gnn/internal/geom"
	"gnn/internal/pagestore"
	"gnn/internal/rtree"
)

func buildTreeIDs(t testing.TB, pts []geom.Point) *rtree.Tree {
	t.Helper()
	tr, err := rtree.BulkLoadSTR(rtree.Config{MaxEntries: 10}, pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestQueryFileBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	pts := randPts(rng, 95, 1000)
	qf, err := NewQueryFile(pts, 30, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if qf.Len() != 95 || qf.NumBlocks() != 4 {
		t.Fatalf("Len/NumBlocks = %d/%d", qf.Len(), qf.NumBlocks())
	}
	total := 0
	for i := 0; i < qf.NumBlocks(); i++ {
		blk, err := qf.ReadBlock(i, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(blk) != qf.BlockLen(i) {
			t.Fatalf("block %d: %d vs %d", i, len(blk), qf.BlockLen(i))
		}
		mbr := qf.MBR(i)
		for _, p := range blk {
			if !mbr.ContainsPoint(p) {
				t.Fatalf("block %d point %v outside MBR %v", i, p, mbr)
			}
		}
		total += len(blk)
	}
	if total != 95 {
		t.Fatalf("blocks cover %d points", total)
	}
	if qf.Accountant().Logical() == 0 {
		t.Fatal("block reads not charged")
	}
	// Hilbert blocking should produce spatially compact blocks: total MBR
	// area well below numBlocks × workspace area.
	var area float64
	for i := 0; i < qf.NumBlocks(); i++ {
		area += qf.MBR(i).Area()
	}
	if area >= 4*1000*1000 {
		t.Fatalf("blocks not compact: total area %v", area)
	}
}

func TestQueryFileValidation(t *testing.T) {
	if _, err := NewQueryFile(nil, 10, nil, 0); !errors.Is(err, ErrEmptyQuery) {
		t.Fatal("empty query file accepted")
	}
	if _, err := NewQueryFile([]geom.Point{{1, 2, 3}}, 10, nil, 0); err == nil {
		t.Fatal("3-D query file accepted")
	}
	qf, err := NewQueryFile([]geom.Point{{1, 2}}, 0, nil, 0)
	if err != nil || qf.NumBlocks() != 1 {
		t.Fatalf("default block size: %v, %d blocks", err, qf.NumBlocks())
	}
}

func TestQueryFileAllPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := randPts(rng, 120, 500)
	qf, _ := NewQueryFile(pts, 50, nil, 0)
	all, err := qf.AllPoints(nil)
	if err != nil || len(all) != 120 {
		t.Fatalf("AllPoints: %v, %d", err, len(all))
	}
	// Same multiset: compare coordinate sums.
	var s1, s2 float64
	for _, p := range pts {
		s1 += p[0] + p[1]
	}
	for _, p := range all {
		s2 += p[0] + p[1]
	}
	if math.Abs(s1-s2) > 1e-6 {
		t.Fatal("AllPoints lost or altered points")
	}
}

// --- GCP ---

func TestGCPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		pts := randPts(rng, 200+rng.Intn(300), 1000)
		qs := randPts(rng, 3+rng.Intn(40), 300)
		// Shift Q to exercise contained/overlapping/disjoint workspaces.
		dx := rng.Float64()*1400 - 200
		for i := range qs {
			qs[i][0] += dx
		}
		tp := buildTreeIDs(t, pts)
		tq := buildTreeIDs(t, qs)
		k := 1 + rng.Intn(4)
		want, _ := BruteForcePoints(pts, qs, Options{K: k})
		rep, err := GCP(tp, tq, GCPOptions{Options: Options{K: k}})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sameResults(t, "GCP", rep.Neighbors, want)
		if rep.PairsConsumed == 0 || rep.HeapMax == 0 {
			t.Fatalf("report lacks diagnostics: %+v", rep)
		}
	}
}

func TestGCPErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tp := buildTreeIDs(t, randPts(rng, 50, 100))
	tq := buildTreeIDs(t, randPts(rng, 10, 100))
	if _, err := GCP(tp, tq, GCPOptions{Options: Options{K: -1}}); !errors.Is(err, ErrBadK) {
		t.Fatal("bad k accepted")
	}
	if _, err := GCP(tp, tq, GCPOptions{Options: Options{Aggregate: Max}}); !errors.Is(err, ErrUnsupportedAggregate) {
		t.Fatal("Max aggregate accepted")
	}
	empty, _ := rtree.New(rtree.Config{})
	if _, err := GCP(tp, empty, GCPOptions{}); !errors.Is(err, ErrEmptyQuery) {
		t.Fatal("empty Q accepted")
	}
}

func TestGCPBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	pts := randPts(rng, 400, 1000)
	qs := randPts(rng, 200, 1000) // co-extensive workspaces: GCP struggles
	tp := buildTreeIDs(t, pts)
	tq := buildTreeIDs(t, qs)
	rep, err := GCP(tp, tq, GCPOptions{Options: Options{}, PairBudget: 10})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if rep == nil || rep.PairsConsumed != 11 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestGCPSmallContainedQ(t *testing.T) {
	// Fig 4.3a regime: Q tiny and central → GCP terminates after few pairs.
	rng := rand.New(rand.NewSource(25))
	pts := randPts(rng, 2000, 1000)
	qs := make([]geom.Point, 8)
	for i := range qs {
		qs[i] = geom.Point{495 + rng.Float64()*10, 495 + rng.Float64()*10}
	}
	tp := buildTreeIDs(t, pts)
	tq := buildTreeIDs(t, qs)
	rep, err := GCP(tp, tq, GCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := BruteForcePoints(pts, qs, Options{})
	sameResults(t, "GCP", rep.Neighbors, want)
	if rep.PairsConsumed > int64(len(pts)*len(qs))/10 {
		t.Fatalf("GCP consumed %d of %d pairs on an easy instance",
			rep.PairsConsumed, len(pts)*len(qs))
	}
}

// --- F-MQM / F-MBM ---

func TestFMQMMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for trial := 0; trial < 20; trial++ {
		pts := clusteredPts(rng, 400+rng.Intn(400), 1000)
		nq := 20 + rng.Intn(200)
		qs := randPts(rng, nq, 600)
		tr := buildTreeIDs(t, pts)
		blockPts := 10 + rng.Intn(60) // force several blocks
		qf, err := NewQueryFile(qs, blockPts, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(4)
		want, _ := BruteForcePoints(pts, qs, Options{K: k})
		rep, err := FMQM(tr, qf, DiskOptions{Options: Options{K: k}})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sameResults(t, "FMQM", rep.Neighbors, want)
		if rep.Rounds == 0 {
			t.Fatal("no rounds recorded")
		}
	}
}

func TestFMBMMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	for trial := 0; trial < 20; trial++ {
		pts := clusteredPts(rng, 400+rng.Intn(400), 1000)
		nq := 20 + rng.Intn(200)
		qs := randPts(rng, nq, 600)
		tr := buildTreeIDs(t, pts)
		qf, err := NewQueryFile(qs, 10+rng.Intn(60), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(4)
		want, _ := BruteForcePoints(pts, qs, Options{K: k})
		for _, trav := range []Traversal{BestFirst, DepthFirst} {
			rep, err := FMBM(tr, qf, DiskOptions{Options: Options{K: k, Traversal: trav}})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			sameResults(t, "FMBM", rep.Neighbors, want)
		}
	}
}

func TestFDiskAlgorithmsSingleBlockEqualsMemory(t *testing.T) {
	// With one block, F-MQM and F-MBM degenerate to MBM over all of Q.
	rng := rand.New(rand.NewSource(28))
	pts := randPts(rng, 500, 1000)
	qs := randPts(rng, 40, 300)
	tr := buildTreeIDs(t, pts)
	want, _ := BruteForcePoints(pts, qs, Options{K: 3})
	qf, _ := NewQueryFile(qs, 1000, nil, 0)
	if qf.NumBlocks() != 1 {
		t.Fatal("expected one block")
	}
	rep1, err := FMQM(tr, qf, DiskOptions{Options: Options{K: 3}})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "FMQM-1block", rep1.Neighbors, want)
	rep2, err := FMBM(tr, qf, DiskOptions{Options: Options{K: 3}})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "FMBM-1block", rep2.Neighbors, want)
}

func TestFDiskErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	tr := buildTreeIDs(t, randPts(rng, 50, 100))
	qf, _ := NewQueryFile(randPts(rng, 20, 100), 10, nil, 0)
	if _, err := FMQM(tr, qf, DiskOptions{Options: Options{K: -1}}); !errors.Is(err, ErrBadK) {
		t.Fatal("FMQM bad k accepted")
	}
	if _, err := FMQM(tr, qf, DiskOptions{Options: Options{Aggregate: Min}}); !errors.Is(err, ErrUnsupportedAggregate) {
		t.Fatal("FMQM Min accepted")
	}
	if _, err := FMBM(tr, qf, DiskOptions{Options: Options{K: -1}}); !errors.Is(err, ErrBadK) {
		t.Fatal("FMBM bad k accepted")
	}
	if _, err := FMBM(tr, qf, DiskOptions{Options: Options{Aggregate: Max}}); !errors.Is(err, ErrUnsupportedAggregate) {
		t.Fatal("FMBM Max accepted")
	}
}

func TestFDiskEmptyTree(t *testing.T) {
	tr, _ := rtree.New(rtree.Config{})
	qf, _ := NewQueryFile([]geom.Point{{1, 1}, {2, 2}}, 10, nil, 0)
	rep, err := FMBM(tr, qf, DiskOptions{})
	if err != nil || len(rep.Neighbors) != 0 {
		t.Fatalf("FMBM empty tree: %v, %d", err, len(rep.Neighbors))
	}
	rep, err = FMQM(tr, qf, DiskOptions{})
	if err != nil || len(rep.Neighbors) != 0 {
		t.Fatalf("FMQM empty tree: %v, %d", err, len(rep.Neighbors))
	}
}

func TestDiskAlgorithmsChargeQueryIO(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	pts := clusteredPts(rng, 1000, 1000)
	qs := randPts(rng, 300, 500)
	tr := buildTreeIDs(t, pts)
	qc := pagestore.NewAccountant(0)
	qf, _ := NewQueryFile(qs, 50, qc, 0)
	tr.Accountant().Reset()
	rep, err := FMBM(tr, qf, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if qc.Physical() == 0 {
		t.Fatal("F-MBM paid no Q page reads")
	}
	if tr.Accountant().Physical() == 0 {
		t.Fatal("F-MBM paid no R-tree accesses")
	}
	// The report's per-query cost must equal the combined aggregates.
	if rep.Cost.Logical != tr.Accountant().Logical()+qc.Logical() {
		t.Fatalf("per-query cost %d != tree %d + Q %d",
			rep.Cost.Logical, tr.Accountant().Logical(), qc.Logical())
	}
}

func TestFMBMBufferReducesQReads(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pts := clusteredPts(rng, 2000, 1000)
	qs := randPts(rng, 300, 500)
	tr := buildTreeIDs(t, pts)

	run := func(buffered bool) int64 {
		pages := 0
		if buffered {
			pages = 100
		}
		qc := pagestore.NewAccountant(pages)
		qf, _ := NewQueryFile(qs, 50, qc, 0)
		if _, err := FMBM(tr, qf, DiskOptions{}); err != nil {
			t.Fatal(err)
		}
		return qc.Physical()
	}
	cold, warm := run(false), run(true)
	if warm > cold {
		t.Fatalf("buffered Q reads %d exceed unbuffered %d", warm, cold)
	}
}

func TestGCPAndFVariantsAgree(t *testing.T) {
	// Cross-validation: three completely different disk algorithms must
	// return identical distances.
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 8; trial++ {
		pts := clusteredPts(rng, 600, 1000)
		qs := randPts(rng, 60, 400)
		tp := buildTreeIDs(t, pts)
		tq := buildTreeIDs(t, qs)
		qf, _ := NewQueryFile(qs, 25, nil, 0)

		gcp, err := GCP(tp, tq, GCPOptions{Options: Options{K: 3}})
		if err != nil {
			t.Fatal(err)
		}
		fmqm, err := FMQM(tp, qf, DiskOptions{Options: Options{K: 3}})
		if err != nil {
			t.Fatal(err)
		}
		fmbm, err := FMBM(tp, qf, DiskOptions{Options: Options{K: 3}})
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "GCPvsFMQM", gcp.Neighbors, fmqm.Neighbors)
		sameResults(t, "FMQMvsFMBM", fmqm.Neighbors, fmbm.Neighbors)
	}
}
