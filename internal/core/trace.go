package core

import (
	"time"

	"gnn/internal/geom"
	"gnn/internal/rtree"
)

// Trace collects per-query diagnostics about the work a traversal did and
// which heuristic saved what. Attach one via Options.Trace; every
// memory-resident kernel populates the counters that apply to it — MBM
// (best-first, depth-first and the iterator) fills the heuristic-2/3 and
// MEB counters, SPM the heuristic-1 counters, MQM the stream counters,
// and BruteForce the scan counters. Tracing is optional and costs
// nothing when absent; with a trace attached the kernels only increment
// integers, so results are bit-identical either way.
//
// The counters quantify the paper's qualitative claims: heuristic 2 is
// "not very tight" but nearly free; heuristic 3 "requires multiple
// distance computations" but prunes what heuristic 2 misses (§3.3).
type Trace struct {
	// NodesVisited counts expanded (read) nodes.
	NodesVisited int
	// NodesPrunedH1 counts nodes discarded by SPM's centroid bound
	// (heuristic 1 / Lemma 1).
	NodesPrunedH1 int
	// PointsPrunedH1 counts data points discarded by the same bound
	// before their exact group distance was computed.
	PointsPrunedH1 int
	// NodesPrunedH2 counts nodes discarded by the cheap MBR bound
	// (heuristic 2 / heuristic 5's quick check).
	NodesPrunedH2 int
	// NodesPrunedH3 counts nodes that survived heuristic 2 but were
	// discarded by the tight per-query-point bound (heuristic 3).
	NodesPrunedH3 int
	// PointsPrunedQuick counts data points discarded by the cheap point
	// bound before paying for exact distance computations.
	PointsPrunedQuick int
	// NodesPrunedMEB counts nodes discarded by the dedicated aggregate-MAX
	// kernel's minimum-enclosing-ball bound (depth-first MBM only; the
	// best-first iterator folds the same bound into its heap keys, where
	// pruning has no discrete event to count).
	NodesPrunedMEB int
	// PointsPrunedMEB counts data points discarded by the MEB point bound
	// before paying for exact distance computations (depth-first MBM).
	PointsPrunedMEB int
	// StreamAdvances counts neighbors retrieved from MQM's per-query-point
	// incremental NN streams — the paper's measure of how far the
	// threshold algorithm had to advance each stream before T ≥ best_dist.
	StreamAdvances int
	// PointsScanned counts data points consumed by a BruteForce scan
	// (every indexed point unless the scan was canceled early).
	PointsScanned int
	// ExactDistances counts full dist(p,Q) evaluations (n Euclidean
	// distances each).
	ExactDistances int
}

// add is nil-safe incrementing.
func (tr *Trace) add(f func(*Trace)) {
	if tr != nil {
		f(tr)
	}
}

// Merge accumulates o into tr. Both receivers and arguments may be nil
// (no-op). The sharded scatter gives each shard worker a private trace
// and merges them at gather time, so per-shard counters always sum to
// the query total.
func (tr *Trace) Merge(o *Trace) {
	if tr == nil || o == nil {
		return
	}
	tr.NodesVisited += o.NodesVisited
	tr.NodesPrunedH1 += o.NodesPrunedH1
	tr.PointsPrunedH1 += o.PointsPrunedH1
	tr.NodesPrunedH2 += o.NodesPrunedH2
	tr.NodesPrunedH3 += o.NodesPrunedH3
	tr.PointsPrunedQuick += o.PointsPrunedQuick
	tr.NodesPrunedMEB += o.NodesPrunedMEB
	tr.PointsPrunedMEB += o.PointsPrunedMEB
	tr.StreamAdvances += o.StreamAdvances
	tr.PointsScanned += o.PointsScanned
	tr.ExactDistances += o.ExactDistances
}

// Stage is one timed step of a query's execution, recorded into a
// StageLog: "scatter" (one per shard, Shard set), "merge", the overlay
// sources ("base", "delta", "pending"), and the serving layer's
// "admission" wait.
type Stage struct {
	// Name identifies the step.
	Name string
	// Shard is the shard index for per-shard stages, -1 otherwise.
	Shard int
	// Duration is the stage's wall time.
	Duration time.Duration
}

// StageLog accumulates per-stage wall times for one query. Like Trace it
// is nil-safe: a nil log records nothing and costs one branch. It is not
// safe for concurrent appends — parallel writers (the sharded scatter)
// record into private slots and append at gather time, on one goroutine.
type StageLog struct {
	Stages []Stage
}

// Record appends one stage. Pass shard -1 for stages that are not
// per-shard.
func (s *StageLog) Record(name string, shard int, d time.Duration) {
	if s != nil {
		s.Stages = append(s.Stages, Stage{Name: name, Shard: shard, Duration: d})
	}
}

// MBMTraced runs MBM and returns the trace alongside the results. It is a
// convenience wrapper over Options.Trace.
func MBMTraced(t *rtree.Tree, qs []geom.Point, opt Options) ([]GroupNeighbor, *Trace, error) {
	trace := &Trace{}
	opt.Trace = trace
	res, err := MBM(t, qs, opt)
	return res, trace, err
}
