package core

import (
	"gnn/internal/geom"
	"gnn/internal/rtree"
)

// Trace collects per-query diagnostics about the work a traversal did and
// which heuristic saved what. Attach one via Options.Trace; algorithms
// that support tracing (MBM best-first/iterator, MBM depth-first) populate
// it in place. Tracing is optional and costs nothing when absent.
//
// The counters quantify the paper's qualitative claims: heuristic 2 is
// "not very tight" but nearly free; heuristic 3 "requires multiple
// distance computations" but prunes what heuristic 2 misses (§3.3).
type Trace struct {
	// NodesVisited counts expanded (read) nodes.
	NodesVisited int
	// NodesPrunedH2 counts nodes discarded by the cheap MBR bound
	// (heuristic 2 / heuristic 5's quick check).
	NodesPrunedH2 int
	// NodesPrunedH3 counts nodes that survived heuristic 2 but were
	// discarded by the tight per-query-point bound (heuristic 3).
	NodesPrunedH3 int
	// PointsPrunedQuick counts data points discarded by the cheap point
	// bound before paying for exact distance computations.
	PointsPrunedQuick int
	// NodesPrunedMEB counts nodes discarded by the dedicated aggregate-MAX
	// kernel's minimum-enclosing-ball bound (depth-first MBM only; the
	// best-first iterator folds the same bound into its heap keys, where
	// pruning has no discrete event to count).
	NodesPrunedMEB int
	// PointsPrunedMEB counts data points discarded by the MEB point bound
	// before paying for exact distance computations (depth-first MBM).
	PointsPrunedMEB int
	// ExactDistances counts full dist(p,Q) evaluations (n Euclidean
	// distances each).
	ExactDistances int
}

// add is nil-safe incrementing.
func (tr *Trace) add(f func(*Trace)) {
	if tr != nil {
		f(tr)
	}
}

// MBMTraced runs MBM and returns the trace alongside the results. It is a
// convenience wrapper over Options.Trace.
func MBMTraced(t *rtree.Tree, qs []geom.Point, opt Options) ([]GroupNeighbor, *Trace, error) {
	trace := &Trace{}
	opt.Trace = trace
	res, err := MBM(t, qs, opt)
	return res, trace, err
}
