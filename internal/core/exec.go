package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"gnn/internal/geom"
	"gnn/internal/pq"
	"gnn/internal/rtree"
)

// ExecContext is the pooled per-query scratch arena of the GNN kernels:
// every slice and heap a query needs in steady state — the result
// accumulator, per-depth candidate buffers for depth-first traversals,
// best-first entry heaps, MQM's threshold and iterator slices, F-MBM's
// leaf buffers and the query-MBR corners — lives here and is reused across
// queries, so a warm kernel allocates (almost) nothing.
//
// Acquire a context with AcquireExec and return it with Release, or set
// Options.Exec to reuse one context across many sequential queries (the
// batch engine holds one per worker). A context must never be shared by
// concurrent queries: like Options.Cost, it is unsynchronised by design.
type ExecContext struct {
	best  kbest
	cands rtree.CandStack
	eheap pq.Heap[rtree.Entry]
	qmbr  geom.Rect
	qcent geom.Point

	// Packed-layout scratch: per-depth ref candidates, the int32 best-first
	// heap, the fused-kernel distance buffers and a spare rectangle for the
	// per-node bounds that need one (heuristic 3, F-MBM leaf ordering).
	pcands rtree.PCandStack
	peheap pq.Heap[rtree.PackedRef]
	dbuf   []float64
	dbuf2  []float64
	prect  geom.Rect

	// SoA copy of the query group (per-axis columns) for the exact-
	// distance and heuristic-3 inner loops.
	gsoa  [][]float64
	gflat []float64

	// Dedicated aggregate-MAX scratch: the minimum-enclosing-ball solver's
	// buffers and the derived pruning context (see maxmeb.go).
	mebs geom.MEBScratch
	meb  mebCtx

	// Conversion buffer of the public layer (query []Point → []geom.Point).
	qsbuf []geom.Point

	// MQM per-stream state.
	thresholds []float64
	iters      []*rtree.NNIterator

	// F-MBM leaf-processing state.
	order     []int
	keep      []int
	blockDist []float64
	lbs       []float64
	fcands    []fmbmLeafCand
	pfcands   []fmbmPackedCand
}

var execPool = pq.NewPool(func() *ExecContext { return &ExecContext{} })

// AcquireExec draws an execution context from the pool. Callers must
// Release it when the query completes.
func AcquireExec() *ExecContext { return execPool.Get() }

// Release zeroes everything the context retained (so pooled buffers don't
// pin a finished query's points or subtrees) and returns it to the pool.
// The context must not be used afterwards.
func (ec *ExecContext) Release() {
	if ec == nil {
		return
	}
	ec.best.reset(0)
	ec.cands.Reset()
	ec.eheap.Reset()
	ec.pcands.Reset()
	ec.peheap.Reset()
	clear(ec.qsbuf[:cap(ec.qsbuf)])
	clear(ec.iters[:cap(ec.iters)])
	clear(ec.fcands[:cap(ec.fcands)])
	ec.pfcands = ec.pfcands[:0]
	ec.lbs = ec.lbs[:0]
	ec.mebs.Reset()
	ec.meb = mebCtx{}
	execPool.Put(ec)
}

// RunPooled distributes n independent jobs over a pool of the requested
// number of workers (<= 0 means GOMAXPROCS, capped at n), giving each
// worker one pooled execution context for its whole share so every job
// after a worker's first reuses warm scratch. It is the worker-pool
// primitive behind the public batch engine and the sharded scatter.
func RunPooled(n, workers int, job func(i int, ec *ExecContext)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		ec := AcquireExec()
		defer ec.Release()
		for i := 0; i < n; i++ {
			job(i, ec)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			ec := AcquireExec()
			defer ec.Release()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i, ec)
			}
		}()
	}
	wg.Wait()
}

// exec returns the options' context, drawing a pooled one when the caller
// did not supply any. done reports whether the callee owns it and must
// Release it on completion.
func (o Options) exec() (ec *ExecContext, owned bool) {
	if o.Exec != nil {
		return o.Exec, false
	}
	return AcquireExec(), true
}

// releaseIfOwned releases ec when owned; pair it with exec() via defer.
func releaseIfOwned(ec *ExecContext, owned bool) {
	if owned {
		ec.Release()
	}
}

// Points returns a reusable []geom.Point of length n (contents undefined),
// used by the public layer to convert caller queries without allocating.
func (ec *ExecContext) Points(n int) []geom.Point {
	if cap(ec.qsbuf) < n {
		ec.qsbuf = make([]geom.Point, n)
	}
	ec.qsbuf = ec.qsbuf[:n]
	return ec.qsbuf
}

// groupSoA lays the query group out as per-axis columns into the
// context's reusable backing (see the SoA group fast path in weighted.go).
func (ec *ExecContext) groupSoA(qs []geom.Point) [][]float64 {
	ec.gsoa, ec.gflat = groupSoAInto(ec.gsoa, ec.gflat, qs)
	return ec.gsoa
}

// groupSoAInto fills (and grows) the given column/backing buffers with
// the group's coordinates, column a holding axis a of every query point.
func groupSoAInto(dst [][]float64, flat []float64, qs []geom.Point) ([][]float64, []float64) {
	dim, n := len(qs[0]), len(qs)
	if cap(flat) < dim*n {
		flat = make([]float64, dim*n)
	}
	flat = flat[:dim*n]
	if cap(dst) < dim {
		dst = make([][]float64, dim)
	}
	dst = dst[:dim]
	for a := 0; a < dim; a++ {
		col := flat[a*n : (a+1)*n]
		for j, q := range qs {
			col[j] = q[a]
		}
		dst[a] = col
	}
	return dst, flat
}

// kbestFor returns the context's result accumulator, reset for k results,
// with an optional candidate veto (nil rejects nothing).
func (ec *ExecContext) kbestFor(k int, rej RejectFunc) *kbest {
	ec.best.reset(k)
	ec.best.reject = rej
	return &ec.best
}

// kbestShared is kbestFor coupled to a cross-shard pruning bound (nil for
// a standalone query — the common case — which behaves exactly as before).
func (ec *ExecContext) kbestShared(k int, s *SharedBound, rej RejectFunc) *kbest {
	ec.best.reset(k)
	ec.best.shared = s
	ec.best.reject = rej
	return &ec.best
}

// mebFor arms and returns the context's dedicated-MAX pruning context for
// this query group (see maxmeb.go).
func (ec *ExecContext) mebFor(qs []geom.Point, w *weightCtx) *mebCtx {
	ec.meb.init(&ec.mebs, qs, w)
	return &ec.meb
}

// boundingRect computes MBR(qs) into the context's reusable corners.
func (ec *ExecContext) boundingRect(qs []geom.Point) geom.Rect {
	ec.qmbr = geom.BoundingRectInto(ec.qmbr, qs)
	return ec.qmbr
}

// centerOf computes r's centre into the context's reusable point.
func (ec *ExecContext) centerOf(r geom.Rect) geom.Point {
	d := r.Dim()
	if cap(ec.qcent) < d {
		ec.qcent = make(geom.Point, d)
	}
	ec.qcent = ec.qcent[:d]
	for i := range ec.qcent {
		ec.qcent[i] = (r.Lo[i] + r.Hi[i]) / 2
	}
	return ec.qcent
}

// floats returns a zeroed []float64 of length n backed by dst, growing it
// as needed.
func growFloats(dst []float64, n int) []float64 {
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = 0
	}
	return dst
}

// grow returns dst with length n (contents undefined), reallocating only
// when capacity is short.
func grow[T any](dst []T, n int) []T {
	if cap(dst) < n {
		dst = make([]T, n)
	}
	return dst[:n]
}

// reset prepares the accumulator for a new query with result size k
// (k = 0 only for Release-time zeroing), dropping prior results and
// zeroing their payloads while keeping the backing array. It zeroes up to
// capacity, not length: offer's append-then-truncate leaves an evicted
// candidate in the slot beyond len, which must not stay pinned while the
// context sits in the pool.
func (b *kbest) reset(k int) {
	clear(b.items[:cap(b.items)])
	b.items = b.items[:0]
	if cap(b.items) < k {
		b.items = make([]GroupNeighbor, 0, k)
	}
	b.k = k
	b.shared = nil
	b.reject = nil
}
