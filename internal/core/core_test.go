package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"gnn/internal/geom"
	"gnn/internal/rtree"
)

// --- shared helpers ---

func buildTree(t testing.TB, pts []geom.Point, maxEntries int) *rtree.Tree {
	t.Helper()
	tr, err := rtree.New(rtree.Config{MaxEntries: maxEntries})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if err := tr.Insert(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func randPts(rng *rand.Rand, n int, span float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64() * span, rng.Float64() * span}
	}
	return pts
}

// clusteredPts mixes clusters and noise so trees have interesting shape.
func clusteredPts(rng *rand.Rand, n int, span float64) []geom.Point {
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		cx, cy := rng.Float64()*span, rng.Float64()*span
		for j := 0; j < 20 && len(pts) < n; j++ {
			pts = append(pts, geom.Point{
				cx + rng.NormFloat64()*span/100,
				cy + rng.NormFloat64()*span/100,
			})
		}
	}
	return pts
}

func sameResults(t *testing.T, name string, got, want []GroupNeighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", name, len(got), len(want))
	}
	for i := range got {
		// Distances must agree; IDs may differ only under exact ties.
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-6*(1+want[i].Dist) {
			t.Fatalf("%s: rank %d dist %v, want %v", name, i, got[i].Dist, want[i].Dist)
		}
	}
	// Sorted ascending.
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Fatalf("%s: results not sorted at rank %d", name, i)
		}
	}
}

type memAlgo struct {
	name string
	run  func(*rtree.Tree, []geom.Point, Options) ([]GroupNeighbor, error)
}

var memAlgos = []memAlgo{
	{"MQM", MQM},
	{"SPM", SPM},
	{"MBM", MBM},
}

// --- validation & options ---

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := buildTree(t, randPts(rng, 50, 100), 8)
	for _, a := range memAlgos {
		if _, err := a.run(tr, nil, Options{}); !errors.Is(err, ErrEmptyQuery) {
			t.Errorf("%s empty query err = %v", a.name, err)
		}
		if _, err := a.run(tr, []geom.Point{{1, 2}}, Options{K: -1}); !errors.Is(err, ErrBadK) {
			t.Errorf("%s bad k err = %v", a.name, err)
		}
		if _, err := a.run(tr, []geom.Point{{1, 2, 3}}, Options{}); err == nil {
			t.Errorf("%s accepted 3-D query on 2-D tree", a.name)
		}
	}
	if _, err := SPM(tr, []geom.Point{{1, 2}}, Options{Aggregate: Max}); !errors.Is(err, ErrUnsupportedAggregate) {
		t.Errorf("SPM Max err = %v", err)
	}
	if _, err := BruteForce(tr, nil, Options{}); !errors.Is(err, ErrEmptyQuery) {
		t.Error("BruteForce accepted empty query")
	}
}

func TestAggregateString(t *testing.T) {
	if Sum.String() != "sum" || Max.String() != "max" || Min.String() != "min" {
		t.Fatal("aggregate names wrong")
	}
	if Aggregate(9).String() != "Aggregate(9)" {
		t.Fatal("unknown aggregate name wrong")
	}
}

func TestEmptyTreeAllAlgorithms(t *testing.T) {
	tr, _ := rtree.New(rtree.Config{})
	qs := []geom.Point{{1, 1}, {2, 2}}
	for _, a := range memAlgos {
		got, err := a.run(tr, qs, Options{})
		if err != nil || len(got) != 0 {
			t.Errorf("%s on empty tree: %v, %d results", a.name, err, len(got))
		}
	}
}

func TestKBest(t *testing.T) {
	b := newKBest(3)
	if !math.IsInf(b.bound(), 1) {
		t.Fatal("empty bound not +Inf")
	}
	b.offer(GroupNeighbor{ID: 1, Dist: 5})
	b.offer(GroupNeighbor{ID: 2, Dist: 3})
	b.offer(GroupNeighbor{ID: 1, Dist: 5}) // duplicate id
	b.offer(GroupNeighbor{ID: 3, Dist: 7})
	if b.bound() != 7 {
		t.Fatalf("bound = %v", b.bound())
	}
	b.offer(GroupNeighbor{ID: 4, Dist: 1})
	r := b.results()
	if len(r) != 3 || r[0].ID != 4 || r[1].ID != 2 || r[2].ID != 1 {
		t.Fatalf("results = %+v", r)
	}
	if b.offer(GroupNeighbor{ID: 9, Dist: 100}) {
		t.Fatal("worse candidate accepted")
	}
}

// --- correctness vs brute force ---

func TestMemoryAlgorithmsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		var pts []geom.Point
		if trial%2 == 0 {
			pts = randPts(rng, 300+rng.Intn(700), 1000)
		} else {
			pts = clusteredPts(rng, 300+rng.Intn(700), 1000)
		}
		tr := buildTree(t, pts, 4+rng.Intn(12))
		n := 1 + rng.Intn(32)
		k := 1 + rng.Intn(8)
		qs := randPts(rng, n, 400)
		// Shift the query region around, sometimes outside the data.
		dx, dy := rng.Float64()*1200-100, rng.Float64()*1200-100
		for i := range qs {
			qs[i][0] += dx
			qs[i][1] += dy
		}
		opt := Options{K: k}
		want, err := BruteForce(tr, qs, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range memAlgos {
			got, err := a.run(tr, qs, opt)
			if err != nil {
				t.Fatalf("%s: %v", a.name, err)
			}
			sameResults(t, a.name, got, want)
		}
	}
}

func TestDepthFirstVariantsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		pts := clusteredPts(rng, 600, 1000)
		tr := buildTree(t, pts, 8)
		qs := randPts(rng, 16, 300)
		opt := Options{K: 4, Traversal: DepthFirst}
		want, _ := BruteForce(tr, qs, opt)
		for _, a := range []memAlgo{{"SPM-DF", SPM}, {"MBM-DF", MBM}} {
			got, err := a.run(tr, qs, opt)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, a.name, got, want)
		}
	}
}

func TestMBMHeuristic2Only(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		pts := randPts(rng, 800, 1000)
		tr := buildTree(t, pts, 10)
		qs := randPts(rng, 8, 200)
		want, _ := BruteForce(tr, qs, Options{K: 3})
		for _, trav := range []Traversal{BestFirst, DepthFirst} {
			got, err := MBM(tr, qs, Options{K: 3, DisableHeuristic3: true, Traversal: trav})
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "MBM-H2only", got, want)
		}
	}
}

func TestHeuristic3NeverWorseNA(t *testing.T) {
	// Heuristic 3 may only reduce node accesses relative to heuristic 2
	// alone (footnote 3 compares against SPM, but H3 ⊇ H2 prunes).
	rng := rand.New(rand.NewSource(5))
	pts := clusteredPts(rng, 4000, 1000)
	tr := buildTree(t, pts, 20)
	var naFull, naH2 int64
	for trial := 0; trial < 20; trial++ {
		qs := randPts(rng, 32, 250)
		tr.Accountant().Reset()
		if _, err := MBM(tr, qs, Options{}); err != nil {
			t.Fatal(err)
		}
		naFull += tr.Accountant().Physical()
		tr.Accountant().Reset()
		if _, err := MBM(tr, qs, Options{DisableHeuristic3: true}); err != nil {
			t.Fatal(err)
		}
		naH2 += tr.Accountant().Physical()
	}
	if naFull > naH2 {
		t.Fatalf("full MBM NA %d > H2-only NA %d", naFull, naH2)
	}
}

func TestSingleQueryPointDegeneratesToNN(t *testing.T) {
	// With n=1 a GNN query is a plain NN query; all methods must agree
	// with the classical R-tree NN search.
	rng := rand.New(rand.NewSource(6))
	pts := randPts(rng, 500, 1000)
	tr := buildTree(t, pts, 8)
	for trial := 0; trial < 10; trial++ {
		q := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		nn := tr.NearestBF(q, 5)
		for _, a := range memAlgos {
			got, err := a.run(tr, []geom.Point{q}, Options{K: 5})
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if math.Abs(got[i].Dist-nn[i].Dist) > 1e-9 {
					t.Fatalf("%s: rank %d %v vs NN %v", a.name, i, got[i].Dist, nn[i].Dist)
				}
			}
		}
	}
}

func TestCoincidentQueryPoints(t *testing.T) {
	// All query points identical: dist(p,Q) = n·|pq|; results must equal
	// plain NN.
	rng := rand.New(rand.NewSource(7))
	pts := randPts(rng, 400, 1000)
	tr := buildTree(t, pts, 8)
	q := geom.Point{321, 654}
	qs := []geom.Point{q.Clone(), q.Clone(), q.Clone(), q.Clone()}
	nn := tr.NearestBF(q, 3)
	for _, a := range memAlgos {
		got, err := a.run(tr, qs, Options{K: 3})
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if math.Abs(got[i].Dist-4*nn[i].Dist) > 1e-6 {
				t.Fatalf("%s: %v vs 4·%v", a.name, got[i].Dist, nn[i].Dist)
			}
		}
	}
}

func TestKLargerThanDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := randPts(rng, 10, 100)
	tr := buildTree(t, pts, 4)
	qs := randPts(rng, 4, 100)
	want, _ := BruteForce(tr, qs, Options{K: 25})
	if len(want) != 10 {
		t.Fatalf("brute force returned %d", len(want))
	}
	for _, a := range memAlgos {
		got, err := a.run(tr, qs, Options{K: 25})
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, a.name, got, want)
	}
}

func TestMaxMinAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 15; trial++ {
		pts := randPts(rng, 500, 1000)
		tr := buildTree(t, pts, 8)
		qs := randPts(rng, 8, 300)
		for _, agg := range []Aggregate{Max, Min} {
			opt := Options{K: 3, Aggregate: agg}
			want, err := BruteForce(tr, qs, opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range []memAlgo{{"MQM", MQM}, {"MBM", MBM}} {
				got, err := a.run(tr, qs, opt)
				if err != nil {
					t.Fatalf("%s/%v: %v", a.name, agg, err)
				}
				sameResults(t, a.name+"/"+agg.String(), got, want)
			}
			gotDF, err := MBM(tr, qs, Options{K: 3, Aggregate: agg, Traversal: DepthFirst})
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "MBM-DF/"+agg.String(), gotDF, want)
		}
	}
}

func TestCentroidMethodsAllCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts := clusteredPts(rng, 800, 1000)
	tr := buildTree(t, pts, 8)
	for trial := 0; trial < 8; trial++ {
		qs := randPts(rng, 16, 400)
		want, _ := BruteForce(tr, qs, Options{K: 2})
		for _, cm := range []CentroidMethod{GradientDescent, Weiszfeld, ArithmeticMean} {
			got, err := SPM(tr, qs, Options{K: 2, Centroid: cm})
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "SPM", got, want)
		}
	}
}

func TestGNNIteratorIncrementalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randPts(rng, 300, 500)
	tr := buildTree(t, pts, 8)
	qs := randPts(rng, 8, 200)
	want, _ := BruteForce(tr, qs, Options{K: len(pts)})
	it, err := NewGNNIterator(tr, qs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		g, ok := it.Next()
		if !ok {
			if i != len(pts) {
				t.Fatalf("iterator stopped at %d of %d", i, len(pts))
			}
			break
		}
		if math.Abs(g.Dist-want[i].Dist) > 1e-6 {
			t.Fatalf("rank %d: %v vs %v", i, g.Dist, want[i].Dist)
		}
		if lb, ok := it.PeekDist(); ok && lb < g.Dist-1e-9 {
			t.Fatalf("PeekDist %v below yielded %v", lb, g.Dist)
		}
	}
}

func TestMBMOutperformsMQMOnNodeAccesses(t *testing.T) {
	// The headline experimental finding (Fig 5.1): MBM ≪ MQM in NA for
	// moderately large n.
	rng := rand.New(rand.NewSource(12))
	pts := clusteredPts(rng, 5000, 1000)
	tr := buildTree(t, pts, 20)
	var naMQM, naMBM int64
	for trial := 0; trial < 10; trial++ {
		qs := randPts(rng, 64, 250)
		tr.Accountant().Reset()
		if _, err := MQM(tr, qs, Options{K: 4}); err != nil {
			t.Fatal(err)
		}
		naMQM += tr.Accountant().Physical()
		tr.Accountant().Reset()
		if _, err := MBM(tr, qs, Options{K: 4}); err != nil {
			t.Fatal(err)
		}
		naMBM += tr.Accountant().Physical()
	}
	if naMBM*2 > naMQM {
		t.Fatalf("MBM NA %d not clearly below MQM NA %d", naMBM, naMQM)
	}
}

// TestHeuristicSafety verifies the pruning-soundness property behind
// heuristics 1-3: a pruned subtree can never contain a point beating the
// final result. Rather than instrumenting the traversals, it checks the
// mathematical statements on random rectangles.
func TestHeuristicSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 3000; trial++ {
		n := 1 + rng.Intn(10)
		qs := randPts(rng, n, 100)
		r := geom.NewRect(
			geom.Point{rng.Float64() * 200, rng.Float64() * 200},
			geom.Point{rng.Float64() * 200, rng.Float64() * 200})
		// A random point inside r.
		p := geom.Point{
			r.Lo[0] + rng.Float64()*(r.Hi[0]-r.Lo[0]),
			r.Lo[1] + rng.Float64()*(r.Hi[1]-r.Lo[1]),
		}
		exact := geom.SumDist(p, qs)
		qmbr := geom.BoundingRect(qs)
		if h2 := quickNodeLB(Sum, r, qmbr, n); h2 > exact+1e-9 {
			t.Fatalf("heuristic 2 bound %v exceeds exact %v", h2, exact)
		}
		if h3 := nodeLB(Sum, r, qs); h3 > exact+1e-9 {
			t.Fatalf("heuristic 3 bound %v exceeds exact %v", h3, exact)
		}
		if maxLB := nodeLB(Max, r, qs); maxLB > geom.MaxDistToGroup(p, qs)+1e-9 {
			t.Fatalf("max bound unsound")
		}
		if minLB := nodeLB(Min, r, qs); minLB > geom.MinDistToGroup(p, qs)+1e-9 {
			t.Fatalf("min bound unsound")
		}
		// H3 dominates H2 (the reason H2 is only a cheap pre-filter).
		if nodeLB(Sum, r, qs) < quickNodeLB(Sum, r, qmbr, n)-1e-9 {
			t.Fatalf("heuristic 3 looser than heuristic 2")
		}
	}
}

func TestBruteForcePoints(t *testing.T) {
	pts := []geom.Point{{0, 0}, {10, 0}, {5, 0}}
	qs := []geom.Point{{4, 0}, {6, 0}}
	got, err := BruteForcePoints(pts, qs, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != 2 || math.Abs(got[0].Dist-2) > 1e-9 {
		t.Fatalf("first = %+v", got[0])
	}
	if _, err := BruteForcePoints(pts, nil, Options{}); !errors.Is(err, ErrEmptyQuery) {
		t.Fatal("empty query accepted")
	}
	if _, err := BruteForcePoints(pts, qs, Options{K: -2}); !errors.Is(err, ErrBadK) {
		t.Fatal("bad k accepted")
	}
}
