package core

import (
	"math"

	"gnn/internal/centroid"
	"gnn/internal/geom"
	"gnn/internal/rtree"
)

// SPM answers a GNN query with the single point method (§3.2): one
// traversal of the R-tree ordered by distance from the (approximate) group
// centroid q, pruned with heuristic 1, which follows from Lemma 1:
//
//	dist(p,Q) ≥ n·|pq| − dist(q,Q)        for every point p,
//
// so a node N (or point p) cannot improve on best_dist when
//
//	mindist(N,q) ≥ (best_dist + dist(q,Q)) / n.
//
// The lemma is specific to the SUM aggregate; SPM returns
// ErrUnsupportedAggregate for MAX and MIN.
func SPM(t *rtree.Tree, qs []geom.Point, opt Options) ([]GroupNeighbor, error) {
	opt = opt.withDefaults()
	if err := validate(t, qs, opt); err != nil {
		return nil, err
	}
	if opt.Aggregate != Sum {
		return nil, ErrUnsupportedAggregate
	}
	w, err := newWeightCtx(opt.Weights, len(qs))
	if err != nil {
		return nil, err
	}
	q, _, err := spmCentroid(qs, opt.Centroid)
	if err != nil {
		return nil, err
	}
	// Lemma 1 under weights: w_i·|p q_i| ≥ w_i·(|pq| − |q_i q|), so
	// dist_w(p,Q) ≥ W·|pq| − dist_w(q,Q) with W = Σ w_i. The centroid q
	// may be any point (the unweighted Fermat point is used even for
	// weighted queries — the bound stays sound, only slightly looser).
	dq := aggDistW(Sum, q, qs, w)
	n := float64(len(qs))
	if w != nil {
		n = w.sum
	}
	ec, owned := opt.exec()
	defer releaseIfOwned(ec, owned)
	best := ec.kbestShared(opt.K, opt.Shared, opt.Reject)
	if t.Len() > 0 {
		run := spmRun{rd: rtree.ReaderOver(t, opt.packedFor(t, false), opt.Cost),
			qs: qs, gq: ec.groupSoA(qs), q: q, dq: dq, n: n, w: w, region: opt.Region,
			best: best, ec: ec, cancel: opt.Cancel, trace: opt.Trace}
		switch {
		case run.rd.Packed() != nil && opt.Traversal == DepthFirst:
			run.dfPacked(run.rd.PackedRoot(), 0)
		case run.rd.Packed() != nil:
			run.bfPacked()
		case opt.Traversal == DepthFirst:
			run.df(run.rd.Root(), 0)
		default:
			run.bf()
		}
	}
	if err := opt.Cancel.Failure(); err != nil {
		return nil, err
	}
	return best.results(), nil
}

// spmRun carries the per-query state of an SPM traversal.
type spmRun struct {
	rd     rtree.Reader
	qs     []geom.Point
	gq     [][]float64 // SoA copy of qs for the exact-distance loop
	q      geom.Point  // centroid
	dq     float64     // dist_w(q, Q)
	n      float64     // W = Σ w_i (or n when unweighted)
	w      *weightCtx
	region *geom.Rect
	best   *kbest
	ec     *ExecContext
	cancel *CancelCheck
	trace  *Trace
}

// spmCentroid computes the approximate centroid and its dist(q,Q).
func spmCentroid(qs []geom.Point, m CentroidMethod) (geom.Point, float64, error) {
	switch m {
	case Weiszfeld:
		q, d, err := centroid.Weiszfeld(qs, centroid.Options{})
		return q, d, err
	case ArithmeticMean:
		q, err := centroid.Mean(qs)
		if err != nil {
			return nil, 0, err
		}
		return q, geom.SumDist(q, qs), nil
	default:
		q, d, err := centroid.GradientDescent(qs, centroid.Options{})
		return q, d, err
	}
}

// threshold is the heuristic-1 pruning radius (best_dist+dist(q,Q))/W.
func (r *spmRun) threshold() float64 {
	return (r.best.bound() + r.dq) / r.n
}

// offer evaluates a data point against the region constraint and the
// exact (weighted) group distance.
func (r *spmRun) offer(e rtree.Entry) {
	if !regionAllows(r.region, e.Point) {
		return
	}
	if r.trace != nil {
		r.trace.ExactDistances++
	}
	r.best.offer(GroupNeighbor{
		Point: e.Point, ID: e.ID,
		Dist: aggDistSoA(Sum, e.Point, r.gq, r.w),
	})
}

// tracePrunedH1 classifies candidates cut by heuristic 1 into node and
// point counters. Only runs with a trace attached.
func (r *spmRun) tracePrunedH1(cands []rtree.Cand) {
	for i := range cands {
		if cands[i].E.IsLeafEntry() {
			r.trace.PointsPrunedH1++
		} else {
			r.trace.NodesPrunedH1++
		}
	}
}

// tracePrunedH1Packed is tracePrunedH1 over packed int32 refs.
func (r *spmRun) tracePrunedH1Packed(cands []rtree.PCand) {
	for i := range cands {
		if _, isPoint := rtree.RefSlot(cands[i].Ref); isPoint {
			r.trace.PointsPrunedH1++
		} else {
			r.trace.NodesPrunedH1++
		}
	}
}

// df is the depth-first variant of Figure 3.4: entries sorted by mindist
// to the centroid (per-depth pooled buffer, inlined insertion sort),
// recursion pruned by heuristic 1.
func (r *spmRun) df(nd rtree.Node, depth int) {
	if r.cancel.Stop() {
		return
	}
	if r.trace != nil {
		r.trace.NodesVisited++
	}
	buf := r.ec.cands.Level(depth)
	cands := *buf
	for _, e := range nd.Entries() {
		var d float64 // mindist(entry, centroid)
		if e.IsLeafEntry() {
			d = geom.Dist(r.q, e.Point)
		} else {
			d = geom.MinDistPointRect(r.q, e.Rect)
		}
		cands = append(cands, rtree.Cand{E: e, D: d})
	}
	rtree.SortCands(cands)
	*buf = cands
	for i := range cands {
		c := cands[i]
		if c.D >= r.threshold() {
			if r.trace != nil {
				r.tracePrunedH1(cands[i:])
			}
			return // heuristic 1 prunes this and all later entries
		}
		if c.E.IsLeafEntry() {
			r.offer(c.E)
		} else if regionIntersects(r.region, c.E.Rect) {
			r.df(r.rd.Child(c.E), depth+1)
		}
	}
}

// dfPacked is df over the packed arena: the mindist-to-centroid keys of a
// whole node come from one fused pass over the SoA arrays (square rooted
// to the real distances heuristic 1 is stated in), candidates are int32
// refs. The packed path runs only for unconstrained queries, so the
// region checks of df vanish rather than branch.
func (r *spmRun) dfPacked(nd int32, depth int) {
	if r.cancel.Stop() {
		return
	}
	if r.trace != nil {
		r.trace.NodesVisited++
	}
	p := r.rd.Packed()
	s, e := p.NodeRange(nd)
	cnt := int(e - s)
	r.ec.dbuf = grow(r.ec.dbuf, cnt)
	d := r.ec.dbuf
	leaf := p.IsLeaf(nd)
	if leaf {
		geom.DistSqPointsPoint(p.PointSoA(), int(s), int(e), r.q, d)
	} else {
		lo, hi := p.RectSoA()
		geom.MinDistSqRectsPoint(lo, hi, int(s), int(e), r.q, d)
	}
	buf := r.ec.pcands.Level(depth)
	cands := *buf
	for i := 0; i < cnt; i++ {
		ref := rtree.LeafRef(s + int32(i))
		if !leaf {
			ref = rtree.NodeRef(s + int32(i))
		}
		cands = append(cands, rtree.PCand{Ref: ref, D: math.Sqrt(d[i])})
	}
	rtree.SortPCands(cands)
	*buf = cands
	for i := range cands {
		c := cands[i]
		if c.D >= r.threshold() {
			if r.trace != nil {
				r.tracePrunedH1Packed(cands[i:])
			}
			return // heuristic 1 prunes this and all later entries
		}
		if slot, isPoint := rtree.RefSlot(c.Ref); isPoint {
			if r.trace != nil {
				r.trace.ExactDistances++
			}
			pt := p.LeafPoint(slot)
			r.best.offer(GroupNeighbor{
				Point: pt, ID: p.LeafID(slot),
				Dist: aggDistSoA(Sum, pt, r.gq, r.w),
			})
		} else {
			r.dfPacked(r.rd.PackedChild(slot), depth+1)
		}
	}
}

// bfPacked is bf over the packed arena, with the int32 ref heap.
func (r *spmRun) bfPacked() {
	p := r.rd.Packed()
	heap := &r.ec.peheap
	heap.Reset()
	push := func(nd int32) {
		if r.trace != nil {
			r.trace.NodesVisited++
		}
		s, e := p.NodeRange(nd)
		cnt := int(e - s)
		r.ec.dbuf = grow(r.ec.dbuf, cnt)
		d := r.ec.dbuf
		if p.IsLeaf(nd) {
			geom.DistSqPointsPoint(p.PointSoA(), int(s), int(e), r.q, d)
			for i := 0; i < cnt; i++ {
				heap.Push(rtree.LeafRef(s+int32(i)), math.Sqrt(d[i]))
			}
			return
		}
		lo, hi := p.RectSoA()
		geom.MinDistSqRectsPoint(lo, hi, int(s), int(e), r.q, d)
		for i := 0; i < cnt; i++ {
			heap.Push(rtree.NodeRef(s+int32(i)), math.Sqrt(d[i]))
		}
	}
	push(r.rd.PackedRoot())
	for {
		if r.cancel.Stop() {
			return
		}
		item, ok := heap.Pop()
		if !ok {
			return
		}
		if item.Priority >= r.threshold() {
			if r.trace != nil {
				// Everything still enqueued has a key at least as large, so
				// the whole frontier is pruned by heuristic 1; drain it into
				// the counters (tracing only — the heap is pooled and Reset
				// on next use either way).
				for ok {
					if _, isPoint := rtree.RefSlot(item.Value); isPoint {
						r.trace.PointsPrunedH1++
					} else {
						r.trace.NodesPrunedH1++
					}
					item, ok = heap.Pop()
				}
			}
			return
		}
		if slot, isPoint := rtree.RefSlot(item.Value); isPoint {
			if r.trace != nil {
				r.trace.ExactDistances++
			}
			pt := p.LeafPoint(slot)
			r.best.offer(GroupNeighbor{
				Point: pt, ID: p.LeafID(slot),
				Dist: aggDistSoA(Sum, pt, r.gq, r.w),
			})
		} else {
			push(r.rd.PackedChild(slot))
		}
	}
}

// bf is the best-first variant: a single priority queue (pooled with the
// execution context) over entries keyed by mindist to the centroid; the
// first key that fails heuristic 1 ends the search, since all remaining
// keys are at least as large.
func (r *spmRun) bf() {
	heap := &r.ec.eheap
	heap.Reset()
	push := func(nd rtree.Node) {
		if r.trace != nil {
			r.trace.NodesVisited++
		}
		for _, e := range nd.Entries() {
			if e.IsLeafEntry() {
				heap.Push(e, geom.Dist(r.q, e.Point))
			} else if regionIntersects(r.region, e.Rect) {
				heap.Push(e, geom.MinDistPointRect(r.q, e.Rect))
			}
		}
	}
	push(r.rd.Root())
	for {
		if r.cancel.Stop() {
			return
		}
		item, ok := heap.Pop()
		if !ok {
			return
		}
		if item.Priority >= r.threshold() {
			if r.trace != nil {
				// The frontier's keys are all ≥ this one: heuristic 1 prunes
				// every remaining entry (see bfPacked).
				for ok {
					if item.Value.IsLeafEntry() {
						r.trace.PointsPrunedH1++
					} else {
						r.trace.NodesPrunedH1++
					}
					item, ok = heap.Pop()
				}
			}
			return
		}
		if item.Value.IsLeafEntry() {
			r.offer(item.Value)
		} else {
			push(r.rd.Child(item.Value))
		}
	}
}
