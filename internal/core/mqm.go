package core

import (
	"gnn/internal/dataset"
	"gnn/internal/geom"
	"gnn/internal/hilbert"
	"gnn/internal/rtree"
)

// MQM answers a GNN query with the multiple query method (§3.1): it runs
// one incremental point-NN stream per query point (best-first search, the
// required incremental algorithm) and combines them with the threshold
// algorithm of [FLN01]. Query points are first sorted by Hilbert value so
// consecutive streams touch nearby R-tree nodes.
//
// Per-query-point thresholds t_i hold the distance of the last neighbor
// retrieved for q_i; the algorithm stops when the combined threshold
// T = agg(t_1..t_n) reaches best_dist, since every unseen point p has
// |p q_i| ≥ t_i for all i and therefore dist(p,Q) ≥ T.
func MQM(t *rtree.Tree, qs []geom.Point, opt Options) ([]GroupNeighbor, error) {
	opt = opt.withDefaults()
	if err := validate(t, qs, opt); err != nil {
		return nil, err
	}
	w, err := newWeightCtx(opt.Weights, len(qs))
	if err != nil {
		return nil, err
	}
	// Sort a copy of Q by Hilbert value (2-D only; the ordering is a pure
	// locality optimisation and does not affect correctness). Weights are
	// permuted alongside their query points.
	qs, w = sortByHilbertWeighted(qs, w)
	n := len(qs)

	ec, owned := opt.exec()
	defer releaseIfOwned(ec, owned)
	// MQM's per-point NN streams never consult the region (it filters
	// results point by point), so the packed layout serves constrained
	// queries too.
	rd := rtree.ReaderOver(t, opt.packedFor(t, true), opt.Cost)
	ec.iters = grow(ec.iters, n)
	iters := ec.iters
	for i, q := range qs {
		iters[i] = rd.NewNNIterator(q)
	}
	defer func() {
		for i, it := range iters {
			it.Close()
			iters[i] = nil
		}
	}()
	ec.thresholds = growFloats(ec.thresholds, n)
	thresholds := ec.thresholds
	gq := ec.groupSoA(qs)
	best := ec.kbestShared(opt.K, opt.Shared, opt.Reject)

	// T = agg_i(w_i·t_i). For SUM (the common case) it is maintained
	// incrementally; MAX/MIN recompute, which is still cheap because the
	// extension aggregates converge in few rounds.
	tSum := 0.0
	combined := func() float64 {
		if opt.Aggregate == Sum {
			return tSum
		}
		return combineThresholdsW(opt.Aggregate, thresholds, w)
	}
	weightOf := func(i int) float64 {
		if w == nil {
			return 1
		}
		return w.w[i]
	}

	for i := 0; ; i = (i + 1) % n {
		if opt.Cancel.Stop() {
			return nil, opt.Cancel.Failure()
		}
		if combined() >= best.bound() {
			break // T ≥ best_dist: no unseen point can be closer
		}
		nb, ok := iters[i].Next()
		if !ok {
			// Stream i enumerated the entire dataset, so every point has
			// already been offered with its exact aggregate distance; the
			// result set is final.
			break
		}
		if tr := opt.Trace; tr != nil {
			tr.StreamAdvances++
		}
		tSum += weightOf(i) * (nb.Dist - thresholds[i])
		thresholds[i] = nb.Dist
		if regionAllows(opt.Region, nb.Point) {
			if tr := opt.Trace; tr != nil {
				tr.ExactDistances++
			}
			best.offer(GroupNeighbor{
				Point: nb.Point,
				ID:    nb.ID,
				Dist:  aggDistSoA(opt.Aggregate, nb.Point, gq, w),
			})
		}
	}
	return best.results(), nil
}

// sortByHilbertWeighted sorts the query points by Hilbert value and keeps
// the weight vector aligned.
func sortByHilbertWeighted(qs []geom.Point, w *weightCtx) ([]geom.Point, *weightCtx) {
	if w == nil {
		return sortByHilbert(qs), nil
	}
	type pair struct {
		p geom.Point
		w float64
	}
	pairs := make([]pair, len(qs))
	for i := range qs {
		pairs[i] = pair{qs[i], w.w[i]}
	}
	if len(qs) > 0 && len(qs[0]) == 2 {
		r := geom.BoundingRect(qs)
		m := hilbert.NewMapper(hilbert.DefaultOrder, r.Lo[0], r.Lo[1], r.Hi[0], r.Hi[1])
		hilbert.SortByValue(len(pairs), m,
			func(i int) (float64, float64) { return pairs[i].p[0], pairs[i].p[1] },
			func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	}
	outQ := make([]geom.Point, len(pairs))
	outW := make([]float64, len(pairs))
	for i, pr := range pairs {
		outQ[i] = pr.p
		outW[i] = pr.w
	}
	ctx, _ := newWeightCtx(outW, len(outW)) // already validated
	return outQ, ctx
}

// sortByHilbert returns qs ordered by Hilbert value (2-D input only; other
// dimensionalities are returned unchanged).
func sortByHilbert(qs []geom.Point) []geom.Point {
	if len(qs) == 0 || len(qs[0]) != 2 {
		return qs
	}
	out := make([]geom.Point, len(qs))
	copy(out, qs)
	r := geom.BoundingRect(out)
	m := hilbert.NewMapper(hilbert.DefaultOrder, r.Lo[0], r.Lo[1], r.Hi[0], r.Hi[1])
	hilbert.SortByValue(len(out), m,
		func(i int) (float64, float64) { return out[i][0], out[i][1] },
		func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// hilbertSortDataset orders a 2-D point slice by Hilbert value over the
// canonical workspace — the external-sort preprocessing of §4.2/4.3.
func hilbertSortDataset(pts []geom.Point) []geom.Point {
	out := make([]geom.Point, len(pts))
	copy(out, pts)
	if len(out) == 0 || len(out[0]) != 2 {
		return out
	}
	ws := dataset.Workspace()
	r := geom.BoundingRect(out)
	r = r.Union(ws) // cover points outside the canonical workspace too
	m := hilbert.NewMapper(hilbert.DefaultOrder, r.Lo[0], r.Lo[1], r.Hi[0], r.Hi[1])
	hilbert.SortByValue(len(out), m,
		func(i int) (float64, float64) { return out[i][0], out[i][1] },
		func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
