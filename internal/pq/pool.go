package pq

import "sync"

// Pool is a typed free-list backed by sync.Pool: the arena mechanism behind
// every per-query scratch structure (heaps, candidate buffers, weight and
// threshold slices). Each package that owns a scratch type instantiates one
// package-level Pool for it; queries Get a scratch on entry and Put it back
// on completion, so steady-state query execution allocates nothing.
//
// The contract mirrors sync.Pool's: a Put value must not be touched again
// by its previous owner, values may be dropped at any GC, and Get may
// return either a recycled value or a fresh one from the constructor.
type Pool[T any] struct {
	inner sync.Pool
	newFn func() *T
}

// NewPool returns a pool whose Get constructs values with newFn when the
// free list is empty.
func NewPool[T any](newFn func() *T) *Pool[T] {
	return &Pool[T]{newFn: newFn}
}

// Get returns a recycled *T, or a newly constructed one.
func (p *Pool[T]) Get() *T {
	if v := p.inner.Get(); v != nil {
		return v.(*T)
	}
	return p.newFn()
}

// Put returns v to the pool. Callers must have reset any state that would
// leak into the next query; the reuse tests assert this discipline.
func (p *Pool[T]) Put(v *T) {
	if v != nil {
		p.inner.Put(v)
	}
}
