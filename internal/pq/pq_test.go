package pq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapBasic(t *testing.T) {
	h := NewHeap[string](4)
	if !h.Empty() || h.Len() != 0 {
		t.Fatal("new heap not empty")
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty heap returned ok")
	}
	if _, ok := h.Peek(); ok {
		t.Fatal("Peek on empty heap returned ok")
	}
	h.Push("b", 2)
	h.Push("a", 1)
	h.Push("c", 3)
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
	if p, ok := h.MinPriority(); !ok || p != 1 {
		t.Fatalf("MinPriority = %v %v", p, ok)
	}
	if it, ok := h.Peek(); !ok || it.Value != "a" {
		t.Fatalf("Peek = %+v", it)
	}
	want := []string{"a", "b", "c"}
	for _, w := range want {
		it, ok := h.Pop()
		if !ok || it.Value != w {
			t.Fatalf("Pop = %+v, want %s", it, w)
		}
	}
	if !h.Empty() {
		t.Fatal("heap not empty after draining")
	}
}

func TestHeapClear(t *testing.T) {
	h := NewHeap[int](0)
	for i := 0; i < 10; i++ {
		h.Push(i, float64(i))
	}
	h.Clear()
	if !h.Empty() {
		t.Fatal("Clear left items")
	}
	h.Push(5, 5)
	if it, _ := h.Pop(); it.Value != 5 {
		t.Fatal("heap unusable after Clear")
	}
}

func TestHeapDuplicatePriorities(t *testing.T) {
	h := NewHeap[int](0)
	for i := 0; i < 100; i++ {
		h.Push(i, 7)
	}
	seen := map[int]bool{}
	for !h.Empty() {
		it, _ := h.Pop()
		if it.Priority != 7 {
			t.Fatalf("priority changed: %v", it.Priority)
		}
		if seen[it.Value] {
			t.Fatalf("duplicate value %d", it.Value)
		}
		seen[it.Value] = true
	}
	if len(seen) != 100 {
		t.Fatalf("lost items: %d", len(seen))
	}
}

func TestQuickHeapSortsAnyInput(t *testing.T) {
	f := func(priorities []float64) bool {
		// Sanitise: replace NaN (unorderable) with 0.
		for i, p := range priorities {
			if p != p {
				priorities[i] = 0
			}
		}
		h := NewHeap[int](len(priorities))
		for i, p := range priorities {
			h.Push(i, p)
		}
		prev := 0.0
		first := true
		count := 0
		for !h.Empty() {
			it, _ := h.Pop()
			if !first && it.Priority < prev {
				return false
			}
			prev, first = it.Priority, false
			count++
		}
		return count == len(priorities)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBoundedMaxKeepsKSmallest(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(10)
		n := rng.Intn(200)
		b := NewBoundedMax[int](k)
		all := make([]float64, n)
		for i := range all {
			all[i] = rng.Float64() * 100
			b.Push(i, all[i])
		}
		sorted := append([]float64(nil), all...)
		sort.Float64s(sorted)

		got := b.Sorted()
		wantLen := k
		if n < k {
			wantLen = n
		}
		if len(got) != wantLen {
			t.Fatalf("retained %d, want %d", len(got), wantLen)
		}
		for i, it := range got {
			if it.Priority != sorted[i] {
				t.Fatalf("rank %d: got %v want %v", i, it.Priority, sorted[i])
			}
		}
		if kth, ok := b.Kth(); ok {
			if kth != sorted[k-1] {
				t.Fatalf("Kth = %v, want %v", kth, sorted[k-1])
			}
		} else if n >= k {
			t.Fatal("Kth not ok on full heap")
		}
	}
}

func TestBoundedMaxRejectsWorse(t *testing.T) {
	b := NewBoundedMax[string](2)
	if b.Full() {
		t.Fatal("empty heap full")
	}
	if !b.Push("a", 5) || !b.Push("b", 3) {
		t.Fatal("initial pushes rejected")
	}
	if !b.Full() {
		t.Fatal("heap should be full")
	}
	if b.Push("c", 9) {
		t.Fatal("worse entry accepted")
	}
	if !b.Push("d", 1) {
		t.Fatal("better entry rejected")
	}
	got := b.Sorted()
	if got[0].Value != "d" || got[1].Value != "b" {
		t.Fatalf("Sorted = %+v", got)
	}
}

func TestBoundedMaxPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	NewBoundedMax[int](0)
}

func TestBoundedMaxTiesAtKth(t *testing.T) {
	b := NewBoundedMax[int](2)
	b.Push(1, 5)
	b.Push(2, 5)
	// Equal priority must NOT displace an incumbent (strict improvement only),
	// matching the paper's "smaller distance" update rule.
	if b.Push(3, 5) {
		t.Fatal("tie displaced incumbent")
	}
	kth, ok := b.Kth()
	if !ok || kth != 5 {
		t.Fatalf("Kth = %v %v", kth, ok)
	}
}

func BenchmarkHeapPushPop(b *testing.B) {
	h := NewHeap[int](b.N)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		h.Push(i, rng.Float64())
	}
	for i := 0; i < b.N; i++ {
		h.Pop()
	}
}

// TestHeapReset: a Reset heap behaves like a fresh one and reuses its
// backing array.
func TestHeapReset(t *testing.T) {
	h := NewHeap[int](4)
	for i := 0; i < 20; i++ {
		h.Push(i, float64(20-i))
	}
	h.Reset()
	if h.Len() != 0 || !h.Empty() {
		t.Fatalf("Reset heap not empty: len=%d", h.Len())
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop from reset heap succeeded")
	}
	h.Push(1, 2.0)
	h.Push(2, 1.0)
	if it, ok := h.Pop(); !ok || it.Value != 2 {
		t.Fatalf("reset heap misordered: %+v ok=%v", it, ok)
	}
}

// TestBoundedMaxReset: Reset re-arms the heap for a different k and clears
// prior entries.
func TestBoundedMaxReset(t *testing.T) {
	b := NewBoundedMax[int](2)
	b.Push(1, 1)
	b.Push(2, 2)
	b.Reset(3)
	if b.Len() != 0 || b.Full() {
		t.Fatalf("Reset heap not empty: len=%d", b.Len())
	}
	for i := 0; i < 5; i++ {
		b.Push(i, float64(i))
	}
	got := b.Sorted()
	if len(got) != 3 || got[0].Value != 0 || got[2].Value != 2 {
		t.Fatalf("Reset(3) kept wrong entries: %+v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Reset(0) did not panic")
		}
	}()
	b.Reset(0)
}

// TestPool: Get returns constructed values; Put recycles them.
func TestPool(t *testing.T) {
	built := 0
	p := NewPool(func() *Heap[int] {
		built++
		return NewHeap[int](4)
	})
	h := p.Get()
	if built != 1 {
		t.Fatalf("constructor ran %d times", built)
	}
	h.Push(7, 7)
	h.Reset()
	p.Put(h)
	_ = p.Get() // either the recycled heap or a fresh one; both must be empty
	p.Put(nil)  // must not panic or poison the pool
	if got := p.Get(); got == nil || got.Len() != 0 {
		t.Fatalf("pool returned unusable heap: %+v", got)
	}
}
