// Package pq provides small generic binary min-heaps keyed by float64
// priorities. They back every best-first traversal in the library: the
// incremental NN search of [HS99], the incremental closest-pair search of
// [HS98] and the round-robin scheduling inside MQM.
//
// The zero value of Heap is ready to use.
package pq

// Item pairs a payload with its priority.
type Item[T any] struct {
	Value    T
	Priority float64
}

// Heap is a binary min-heap ordered by Item.Priority. Ties are broken
// arbitrarily. Not safe for concurrent use.
type Heap[T any] struct {
	items []Item[T]
}

// NewHeap returns an empty heap with capacity hint n.
func NewHeap[T any](n int) *Heap[T] {
	return &Heap[T]{items: make([]Item[T], 0, n)}
}

// Len returns the number of queued items.
func (h *Heap[T]) Len() int { return len(h.items) }

// Empty reports whether the heap has no items.
func (h *Heap[T]) Empty() bool { return len(h.items) == 0 }

// Push inserts value with the given priority.
func (h *Heap[T]) Push(value T, priority float64) {
	h.items = append(h.items, Item[T]{Value: value, Priority: priority})
	h.up(len(h.items) - 1)
}

// Peek returns the minimum item without removing it. ok is false when the
// heap is empty.
func (h *Heap[T]) Peek() (item Item[T], ok bool) {
	if len(h.items) == 0 {
		return Item[T]{}, false
	}
	return h.items[0], true
}

// MinPriority returns the priority of the minimum item, or +Inf semantics
// are left to the caller: ok is false when empty.
func (h *Heap[T]) MinPriority() (float64, bool) {
	if len(h.items) == 0 {
		return 0, false
	}
	return h.items[0].Priority, true
}

// Pop removes and returns the minimum item. ok is false when the heap is
// empty.
func (h *Heap[T]) Pop() (item Item[T], ok bool) {
	if len(h.items) == 0 {
		return Item[T]{}, false
	}
	min := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[last] = Item[T]{} // release payload for GC
	h.items = h.items[:last]
	if len(h.items) > 0 {
		h.down(0)
	}
	return min, true
}

// Items exposes the queued items in heap order — NOT priority order —
// as a read-only view of the backing array. It exists for diagnostics
// that classify the surviving entries of a finished traversal (the
// explain trace's pruning census) without paying a destructive pop-all:
// callers must not mutate the slice and must not hold it across a
// Push/Pop/Reset.
func (h *Heap[T]) Items() []Item[T] { return h.items }

// Clear removes all items, retaining capacity.
func (h *Heap[T]) Clear() {
	for i := range h.items {
		h.items[i] = Item[T]{}
	}
	h.items = h.items[:0]
}

// Reset prepares the heap for reuse by a new query: all items are dropped
// (payloads zeroed for GC) while the backing array is retained, so a warm
// heap serves its next query without allocating.
func (h *Heap[T]) Reset() { h.Clear() }

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Priority <= h.items[i].Priority {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.items[l].Priority < h.items[smallest].Priority {
			smallest = l
		}
		if r < n && h.items[r].Priority < h.items[smallest].Priority {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

// BoundedMax keeps the k smallest priorities seen so far. It is a max-heap
// of fixed capacity: pushing a (value, priority) pair evicts the current
// maximum when full and the newcomer is smaller. It implements the
// "best_NN list of k pairs sorted on dist(p,Q)" of the paper's k-GNN
// extensions: Kth() is the paper's best_dist.
type BoundedMax[T any] struct {
	k     int
	items []Item[T]
}

// NewBoundedMax returns a bounded heap that retains the k smallest entries.
// It panics when k < 1: a result set of size zero is meaningless.
func NewBoundedMax[T any](k int) *BoundedMax[T] {
	if k < 1 {
		panic("pq: BoundedMax requires k >= 1")
	}
	return &BoundedMax[T]{k: k, items: make([]Item[T], 0, k)}
}

// Reset prepares the heap for reuse by a new query with result size k,
// retaining the backing array (grown when the new k needs more room). It
// panics when k < 1, like NewBoundedMax.
func (b *BoundedMax[T]) Reset(k int) {
	if k < 1 {
		panic("pq: BoundedMax requires k >= 1")
	}
	for i := range b.items {
		b.items[i] = Item[T]{}
	}
	b.items = b.items[:0]
	if cap(b.items) < k {
		b.items = make([]Item[T], 0, k)
	}
	b.k = k
}

// Len returns the number of retained entries (≤ k).
func (b *BoundedMax[T]) Len() int { return len(b.items) }

// Full reports whether k entries are retained.
func (b *BoundedMax[T]) Full() bool { return len(b.items) == b.k }

// Kth returns the current k-th smallest priority — the pruning bound
// best_dist. Until the heap is full it returns +Inf semantics via ok=false.
func (b *BoundedMax[T]) Kth() (float64, bool) {
	if len(b.items) < b.k {
		return 0, false
	}
	return b.items[0].Priority, true
}

// Push offers an entry; it is retained only while it ranks among the k
// smallest. Returns true when the entry was kept.
func (b *BoundedMax[T]) Push(value T, priority float64) bool {
	if len(b.items) < b.k {
		b.items = append(b.items, Item[T]{Value: value, Priority: priority})
		b.up(len(b.items) - 1)
		return true
	}
	if priority >= b.items[0].Priority {
		return false
	}
	b.items[0] = Item[T]{Value: value, Priority: priority}
	b.down(0)
	return true
}

// Sorted returns the retained entries in ascending priority order. It
// allocates only the returned slice: the copy is heapsorted in place
// (swapping the max to the tail and sifting down the shrunk prefix).
func (b *BoundedMax[T]) Sorted() []Item[T] {
	out := make([]Item[T], len(b.items))
	copy(out, b.items)
	tmp := BoundedMax[T]{k: b.k}
	for n := len(out) - 1; n > 0; n-- {
		out[0], out[n] = out[n], out[0]
		tmp.items = out[:n]
		tmp.down(0)
	}
	return out
}

func (b *BoundedMax[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if b.items[parent].Priority >= b.items[i].Priority {
			break
		}
		b.items[parent], b.items[i] = b.items[i], b.items[parent]
		i = parent
	}
}

func (b *BoundedMax[T]) down(i int) {
	n := len(b.items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && b.items[l].Priority > b.items[largest].Priority {
			largest = l
		}
		if r < n && b.items[r].Priority > b.items[largest].Priority {
			largest = r
		}
		if largest == i {
			return
		}
		b.items[i], b.items[largest] = b.items[largest], b.items[i]
		i = largest
	}
}
