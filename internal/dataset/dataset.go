// Package dataset provides the point data the experiments run on.
//
// The paper evaluates on two real data sets that are no longer available
// from their original sites:
//
//   - PP [Web1]: 24,493 populated places in North America, and
//   - TS [Web2]: 194,971 centroids of stream MBRs in Iowa, Kansas,
//     Missouri and Nebraska.
//
// GeneratePP and GenerateTS build seeded synthetic substitutes of identical
// cardinality and similar spatial character (see DESIGN.md for the
// substitution argument): PP is strongly clustered around "city" centres
// with an east-heavy skew; TS exhibits the 1-D locality of hydrography by
// sampling points along random-walk polylines.
//
// All datasets live in the Workspace rectangle [0, 10000]².
package dataset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"gnn/internal/geom"
)

// WorkspaceSize is the side length of the canonical square workspace.
const WorkspaceSize = 10000.0

// Workspace returns the canonical workspace rectangle [0,10000]².
func Workspace() geom.Rect {
	return geom.NewRect(geom.Point{0, 0}, geom.Point{WorkspaceSize, WorkspaceSize})
}

// Cardinalities of the paper's datasets.
const (
	PPSize = 24493
	TSSize = 194971
)

// Dataset is a named, bounded point collection.
type Dataset struct {
	Name   string
	Points []geom.Point
}

// Bounds returns the MBR of the dataset; ok is false when empty.
func (d *Dataset) Bounds() (geom.Rect, bool) {
	if len(d.Points) == 0 {
		return geom.Rect{}, false
	}
	return geom.BoundingRect(d.Points), true
}

// Len returns the number of points.
func (d *Dataset) Len() int { return len(d.Points) }

// Clone returns a deep copy with the given name.
func (d *Dataset) Clone(name string) *Dataset {
	pts := make([]geom.Point, len(d.Points))
	for i, p := range d.Points {
		pts[i] = p.Clone()
	}
	return &Dataset{Name: name, Points: pts}
}

// GeneratePP returns the PP substitute: PPSize points in ~280 Gaussian
// clusters whose centres are skewed towards the "east" (high x), mimicking
// the population distribution of North America. Deterministic per seed.
func GeneratePP(seed int64) *Dataset {
	return GenerateClustered("PP", PPSize, 280, seed)
}

// GenerateTS returns the TS substitute: TSSize points sampled along ~2400
// random-walk polylines ("streams"). Deterministic per seed.
func GenerateTS(seed int64) *Dataset {
	return GeneratePolylines("TS", TSSize, 2400, seed)
}

// GenerateUniform returns n points uniform in the workspace.
func GenerateUniform(name string, n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64() * WorkspaceSize, rng.Float64() * WorkspaceSize}
	}
	return &Dataset{Name: name, Points: pts}
}

// GenerateClustered returns n points grouped into the given number of
// Gaussian clusters. Cluster centres are distributed with density
// increasing in x (an east-heavy skew) and cluster populations follow a
// heavy-tailed split so a few "metropolises" dominate, as in census data.
func GenerateClustered(name string, n, clusters int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	if clusters < 1 {
		clusters = 1
	}
	type cluster struct {
		cx, cy, sd float64
		weight     float64
	}
	cs := make([]cluster, clusters)
	var totalW float64
	for i := range cs {
		// sqrt-biased x → more clusters at high x.
		cx := math.Sqrt(rng.Float64()) * WorkspaceSize
		cy := rng.Float64() * WorkspaceSize
		sd := (0.002 + 0.01*rng.Float64()) * WorkspaceSize
		w := math.Pow(rng.Float64(), 2) + 0.02 // heavy-tailed weights
		cs[i] = cluster{cx, cy, sd, w}
		totalW += w
	}
	pts := make([]geom.Point, 0, n)
	for i := range cs {
		cnt := int(math.Round(cs[i].weight / totalW * float64(n)))
		for j := 0; j < cnt && len(pts) < n; j++ {
			x := clampWS(cs[i].cx + rng.NormFloat64()*cs[i].sd)
			y := clampWS(cs[i].cy + rng.NormFloat64()*cs[i].sd)
			pts = append(pts, geom.Point{x, y})
		}
	}
	for len(pts) < n { // rounding shortfall → fill from random clusters
		c := cs[rng.Intn(len(cs))]
		x := clampWS(c.cx + rng.NormFloat64()*c.sd)
		y := clampWS(c.cy + rng.NormFloat64()*c.sd)
		pts = append(pts, geom.Point{x, y})
	}
	return &Dataset{Name: name, Points: pts}
}

// GeneratePolylines returns n points sampled along random-walk polylines,
// reproducing the linear locality of stream/road data. Each polyline
// starts at a random position, picks a drift direction, and wanders with
// small turns; points are dropped at roughly uniform arc-length intervals.
func GeneratePolylines(name string, n, lines int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	if lines < 1 {
		lines = 1
	}
	perLine := n / lines
	if perLine < 2 {
		perLine = 2
	}
	step := WorkspaceSize * 0.004
	pts := make([]geom.Point, 0, n)
	for len(pts) < n {
		x := rng.Float64() * WorkspaceSize
		y := rng.Float64() * WorkspaceSize
		dir := rng.Float64() * 2 * math.Pi
		count := perLine/2 + rng.Intn(perLine)
		for j := 0; j < count && len(pts) < n; j++ {
			pts = append(pts, geom.Point{clampWS(x), clampWS(y)})
			dir += (rng.Float64() - 0.5) * 0.6 // gentle meander
			x += math.Cos(dir) * step
			y += math.Sin(dir) * step
			if x < 0 || x > WorkspaceSize || y < 0 || y > WorkspaceSize {
				break // stream left the workspace
			}
		}
	}
	return &Dataset{Name: name, Points: pts}
}

func clampWS(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > WorkspaceSize {
		return WorkspaceSize
	}
	return v
}

// ScaleTo returns a copy of d affinely mapped from its own bounds onto the
// target rectangle. Used by the disk-resident experiments, which place the
// query dataset in an MBR of prescribed area/position (§5.2).
func (d *Dataset) ScaleTo(target geom.Rect, name string) *Dataset {
	src, ok := d.Bounds()
	if !ok {
		return &Dataset{Name: name}
	}
	out := make([]geom.Point, len(d.Points))
	for i, p := range d.Points {
		q := make(geom.Point, len(p))
		for j := range p {
			span := src.Hi[j] - src.Lo[j]
			t := 0.5
			if span > 0 {
				t = (p[j] - src.Lo[j]) / span
			}
			q[j] = target.Lo[j] + t*(target.Hi[j]-target.Lo[j])
		}
		out[i] = q
	}
	return &Dataset{Name: name, Points: out}
}

// AsPairs converts the points to the [2]float64 representation used by the
// pagestore flat files. Panics on non-2-D data.
func (d *Dataset) AsPairs() [][2]float64 {
	out := make([][2]float64, len(d.Points))
	for i, p := range d.Points {
		if len(p) != 2 {
			panic("dataset: AsPairs requires 2-D points")
		}
		out[i] = [2]float64{p[0], p[1]}
	}
	return out
}

// --- persistence ---

var magic = [4]byte{'G', 'N', 'N', '1'}

// Write serialises the dataset in a compact binary format.
func (d *Dataset) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	name := []byte(d.Name)
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
		return err
	}
	if _, err := bw.Write(name); err != nil {
		return err
	}
	dim := uint32(2)
	if len(d.Points) > 0 {
		dim = uint32(len(d.Points[0]))
	}
	if err := binary.Write(bw, binary.LittleEndian, dim); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(d.Points))); err != nil {
		return err
	}
	for _, p := range d.Points {
		if uint32(len(p)) != dim {
			return fmt.Errorf("dataset: mixed dimensionality (%d vs %d)", len(p), dim)
		}
		for _, v := range p {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ErrBadFormat reports a malformed dataset stream.
var ErrBadFormat = errors.New("dataset: bad format")

// Read deserialises a dataset written by Write.
func Read(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadFormat, m)
	}
	var nameLen uint32
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if nameLen > 1<<20 {
		return nil, fmt.Errorf("%w: name length %d", ErrBadFormat, nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	var dim uint32
	if err := binary.Read(br, binary.LittleEndian, &dim); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if dim == 0 || dim > 64 {
		return nil, fmt.Errorf("%w: dimension %d", ErrBadFormat, dim)
	}
	var n uint64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if n > 1<<32 {
		return nil, fmt.Errorf("%w: cardinality %d", ErrBadFormat, n)
	}
	pts := make([]geom.Point, n)
	buf := make([]float64, dim)
	for i := range pts {
		for j := range buf {
			if err := binary.Read(br, binary.LittleEndian, &buf[j]); err != nil {
				return nil, fmt.Errorf("%w: truncated at point %d: %v", ErrBadFormat, i, err)
			}
		}
		p := make(geom.Point, dim)
		copy(p, buf)
		pts[i] = p
	}
	return &Dataset{Name: string(name), Points: pts}, nil
}

// WriteCSV emits one "x,y[,...]" line per point.
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, p := range d.Points {
		for j, v := range p {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses points from "x,y[,...]" lines. Blank lines and lines
// starting with '#' are skipped.
func ReadCSV(r io.Reader, name string) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var pts []geom.Point
	dim := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if dim == -1 {
			dim = len(fields)
		} else if len(fields) != dim {
			return nil, fmt.Errorf("%w: line %d has %d fields, want %d",
				ErrBadFormat, lineNo, len(fields), dim)
		}
		p := make(geom.Point, len(fields))
		for j, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadFormat, lineNo, err)
			}
			p[j] = v
		}
		pts = append(pts, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return &Dataset{Name: name, Points: pts}, nil
}
