package dataset

// Seed-stability goldens: the synthetic PP/TS substitutes are the fixed
// fixtures of every benchmark in BENCH*.json and of the paper-figure
// reproductions, so their exact bit content per seed is part of the
// repo's contract. A change to the generators (a reordered rng draw, a
// different cluster split) silently invalidates every recorded number;
// these hashes make that loud. If a generator change is intentional,
// update the constants — in its own commit — and regenerate the
// benchmark JSON files.

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"testing"

	"gnn/internal/geom"
)

// datasetHash is the FNV-1a digest of the IEEE-754 bit patterns of every
// coordinate in order — any single-ulp drift in any point changes it.
func datasetHash(d *Dataset) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range d.Points {
		for _, c := range p {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(c))
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

func TestSeedStabilityGoldens(t *testing.T) {
	cases := []struct {
		name string
		gen  func() *Dataset
		hash uint64
		// One pinned interior point per dataset, asserted bit-exactly, so
		// a failure localises immediately instead of only flipping a hash.
		sampleIdx int
		sample    geom.Point
	}{
		{"PP/seed1", func() *Dataset { return GeneratePP(1) },
			0x337d49dec563ad91, 12345,
			geom.Point{4071.5425847989559, 5672.254694598867}},
		{"PP/seed123", func() *Dataset { return GeneratePP(123) },
			0x6b539dbeaa8a5de7, 20000,
			geom.Point{1930.8986711357647, 4026.4381059328753}},
		{"TS/seed1", func() *Dataset { return GenerateTS(1) },
			0x54a3f9d119595b28, 98765,
			geom.Point{70.71401709863018, 2977.0463663179958}},
		{"TS/seed123", func() *Dataset { return GenerateTS(123) },
			0xaaa035a9bb3b1089, 150000,
			geom.Point{3723.1616165767582, 9524.3519479029765}},
	}
	for _, tc := range cases {
		d := tc.gen()
		got := datasetHash(d)
		if got != tc.hash {
			t.Errorf("%s: dataset hash %#x, golden %#x — the generator's output changed",
				tc.name, got, tc.hash)
		}
		p := d.Points[tc.sampleIdx]
		if tc.sample == nil {
			t.Errorf("%s: no golden sample; point %d is %.17g,%.17g",
				tc.name, tc.sampleIdx, p[0], p[1])
			continue
		}
		if p[0] != tc.sample[0] || p[1] != tc.sample[1] {
			t.Errorf("%s: point %d = (%.17g,%.17g), golden (%.17g,%.17g)",
				tc.name, tc.sampleIdx, p[0], p[1], tc.sample[0], tc.sample[1])
		}
	}
}
