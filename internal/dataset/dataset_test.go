package dataset

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"gnn/internal/geom"
)

func TestGeneratePP(t *testing.T) {
	d := GeneratePP(1)
	if d.Len() != PPSize {
		t.Fatalf("PP size = %d, want %d", d.Len(), PPSize)
	}
	b, ok := d.Bounds()
	if !ok || !Workspace().ContainsRect(b) {
		t.Fatalf("PP bounds %v escape workspace", b)
	}
	// Determinism.
	d2 := GeneratePP(1)
	for i := range d.Points {
		if !d.Points[i].Equal(d2.Points[i]) {
			t.Fatal("PP not deterministic")
		}
	}
	// Different seed → different data.
	d3 := GeneratePP(2)
	same := 0
	for i := range d.Points {
		if d.Points[i].Equal(d3.Points[i]) {
			same++
		}
	}
	if same > d.Len()/100 {
		t.Fatalf("seeds 1 and 2 share %d points", same)
	}
}

func TestGenerateTS(t *testing.T) {
	d := GenerateTS(1)
	if d.Len() != TSSize {
		t.Fatalf("TS size = %d, want %d", d.Len(), TSSize)
	}
	b, ok := d.Bounds()
	if !ok || !Workspace().ContainsRect(b) {
		t.Fatalf("TS bounds %v escape workspace", b)
	}
}

func TestClusterednessOfPP(t *testing.T) {
	// A clustered set has far smaller mean NN distance than uniform of the
	// same cardinality. Compare on a subsample grid count statistic: count
	// occupied cells of a 50x50 grid; clustered data occupies far fewer.
	occupied := func(d *Dataset) int {
		cells := map[[2]int]bool{}
		for _, p := range d.Points {
			cells[[2]int{int(p[0] / (WorkspaceSize / 50)), int(p[1] / (WorkspaceSize / 50))}] = true
		}
		return len(cells)
	}
	pp := GeneratePP(3)
	uni := GenerateUniform("U", PPSize, 3)
	if o1, o2 := occupied(pp), occupied(uni); o1 > o2*3/4 {
		t.Fatalf("PP occupies %d cells, uniform %d — not clustered enough", o1, o2)
	}
}

func TestPolylineLocality(t *testing.T) {
	// Consecutive points of TS come from polyline walks: mean consecutive
	// distance must be tiny relative to the workspace.
	ts := GeneratePolylines("t", 20000, 200, 4)
	var sum float64
	cnt := 0
	for i := 1; i < len(ts.Points); i++ {
		d := geom.Dist(ts.Points[i-1], ts.Points[i])
		if d < WorkspaceSize*0.05 { // same polyline
			sum += d
			cnt++
		}
	}
	if cnt < len(ts.Points)/2 {
		t.Fatalf("only %d/%d consecutive pairs are near — no polyline structure", cnt, len(ts.Points))
	}
	if avg := sum / float64(cnt); avg > WorkspaceSize*0.01 {
		t.Fatalf("mean intra-line hop %v too large", avg)
	}
}

func TestGenerateUniformAndClusteredSizes(t *testing.T) {
	for _, n := range []int{0, 1, 17, 1000} {
		if got := GenerateUniform("u", n, 5).Len(); got != n {
			t.Errorf("uniform %d → %d", n, got)
		}
		if got := GenerateClustered("c", n, 10, 5).Len(); got != n {
			t.Errorf("clustered %d → %d", n, got)
		}
	}
	if got := GenerateClustered("c", 100, 0, 5).Len(); got != 100 {
		t.Errorf("clusters=0 → %d points", got)
	}
	if got := GeneratePolylines("p", 100, 0, 5).Len(); got != 100 {
		t.Errorf("lines=0 → %d points", got)
	}
}

func TestScaleTo(t *testing.T) {
	d := GenerateUniform("u", 500, 6)
	target := geom.NewRect(geom.Point{100, 200}, geom.Point{300, 400})
	s := d.ScaleTo(target, "scaled")
	if s.Len() != d.Len() || s.Name != "scaled" {
		t.Fatalf("scaled len/name = %d/%q", s.Len(), s.Name)
	}
	b, _ := s.Bounds()
	if !target.ContainsRect(b) {
		t.Fatalf("scaled bounds %v escape target %v", b, target)
	}
	// The scaled copy should essentially fill the target.
	if b.Area() < target.Area()*0.9 {
		t.Fatalf("scaled bounds %v too small for %v", b, target)
	}
	// Empty dataset.
	e := (&Dataset{Name: "e"}).ScaleTo(target, "e2")
	if e.Len() != 0 {
		t.Fatal("scaling empty dataset produced points")
	}
}

func TestScaleToDegenerate(t *testing.T) {
	d := &Dataset{Name: "d", Points: []geom.Point{{5, 5}, {5, 5}}}
	target := geom.NewRect(geom.Point{0, 0}, geom.Point{10, 10})
	s := d.ScaleTo(target, "s")
	for _, p := range s.Points {
		if !p.Equal(geom.Point{5, 5}) {
			t.Fatalf("degenerate scale moved point to %v", p)
		}
	}
}

func TestAsPairs(t *testing.T) {
	d := &Dataset{Points: []geom.Point{{1, 2}, {3, 4}}}
	pairs := d.AsPairs()
	if len(pairs) != 2 || pairs[1] != [2]float64{3, 4} {
		t.Fatalf("AsPairs = %v", pairs)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AsPairs on 3-D data did not panic")
		}
	}()
	(&Dataset{Points: []geom.Point{{1, 2, 3}}}).AsPairs()
}

func TestBinaryRoundTrip(t *testing.T) {
	d := GenerateUniform("round-trip", 1234, 7)
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || got.Len() != d.Len() {
		t.Fatalf("round trip: %q/%d", got.Name, got.Len())
	}
	for i := range d.Points {
		if !d.Points[i].Equal(got.Points[i]) {
			t.Fatalf("point %d differs", i)
		}
	}
}

func TestBinaryRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	d := &Dataset{Name: "empty"}
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil || got.Len() != 0 || got.Name != "empty" {
		t.Fatalf("empty round trip: %v %v", got, err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("garbage"),
		[]byte("GNN1"), // truncated after magic
		append([]byte("GNN1"), 0xff, 0xff, 0xff, 0xff), // absurd name length
	}
	for i, c := range cases {
		if _, err := Read(bytes.NewReader(c)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("case %d: err = %v, want ErrBadFormat", i, err)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := GenerateUniform("csv", 321, 8)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "csv")
	if err != nil || got.Len() != d.Len() {
		t.Fatalf("CSV round trip: %v, len %d", err, got.Len())
	}
	for i := range d.Points {
		for j := range d.Points[i] {
			if math.Abs(d.Points[i][j]-got.Points[i][j]) > 1e-12 {
				t.Fatalf("point %d differs", i)
			}
		}
	}
}

func TestReadCSVHandlesCommentsAndErrors(t *testing.T) {
	in := "# header\n1,2\n\n3,4\n"
	d, err := ReadCSV(strings.NewReader(in), "x")
	if err != nil || d.Len() != 2 {
		t.Fatalf("comments: %v len %d", err, d.Len())
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n"), "x"); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n"), "x"); err == nil {
		t.Fatal("non-numeric accepted")
	}
}

func TestClone(t *testing.T) {
	d := GenerateUniform("orig", 10, 9)
	c := d.Clone("copy")
	c.Points[0][0] = -1
	if d.Points[0][0] == -1 {
		t.Fatal("Clone aliases points")
	}
	if c.Name != "copy" {
		t.Fatalf("Clone name = %q", c.Name)
	}
}
