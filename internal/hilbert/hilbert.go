// Package hilbert implements the 2-D Hilbert space-filling curve.
//
// The paper uses Hilbert ordering in three places: MQM sorts the query
// points by Hilbert value so consecutive point-NN searches touch nearby
// R-tree nodes (§3.1); F-MQM and F-MBM sort the disk-resident query file by
// Hilbert value before splitting it into memory-sized blocks (§4.2, §4.3);
// and Hilbert ordering is a standard R-tree bulk-loading strategy, which we
// expose through the rtree package.
//
// The encoding follows the classic iterative rotate/flip formulation: a
// curve of order k visits every cell of a 2^k × 2^k grid exactly once.
package hilbert

import "slices"

// DefaultOrder is the curve order used when sorting floating-point data:
// a 2^16 × 2^16 grid gives sub-meter resolution on the paper's
// [0,10000]² workspace while keeping values comfortably inside 32 bits.
const DefaultOrder = 16

// Encode returns the Hilbert value (distance along the curve) of grid cell
// (x, y) for a curve of the given order. x and y must lie in [0, 2^order).
// Out-of-range coordinates are clamped, which keeps the function total —
// callers sorting noisy data never crash, they just get edge ordering.
func Encode(order uint, x, y uint32) uint64 {
	max := uint32(1)<<order - 1
	if x > max {
		x = max
	}
	if y > max {
		y = max
	}
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		x, y = rotate(s, x, y, rx, ry)
	}
	return d
}

// Decode is the inverse of Encode: it maps a curve distance d back to the
// grid cell (x, y) it occupies on a curve of the given order.
func Decode(order uint, d uint64) (x, y uint32) {
	t := d
	for s := uint32(1); s < uint32(1)<<order; s <<= 1 {
		rx := uint32(1) & uint32(t/2)
		ry := uint32(1) & uint32(t^uint64(rx))
		x, y = rotate(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

// rotate flips/rotates a quadrant so the curve pieces connect.
func rotate(s, x, y, rx, ry uint32) (uint32, uint32) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// Mapper quantises floating-point coordinates from an arbitrary bounding
// box onto the Hilbert grid, so real datasets can be curve-ordered.
type Mapper struct {
	order                  uint
	minX, minY             float64
	scaleX, scaleY         float64
	hasExtent              bool
	loX, loY, spanX, spanY float64
}

// NewMapper returns a Mapper for data inside the box [loX,hiX] × [loY,hiY].
// Degenerate extents (all points sharing a coordinate) are handled by
// mapping that axis to cell 0.
func NewMapper(order uint, loX, loY, hiX, hiY float64) *Mapper {
	m := &Mapper{order: order, minX: loX, minY: loY, loX: loX, loY: loY}
	cells := float64(uint64(1) << order)
	if hiX > loX {
		m.scaleX = (cells - 1) / (hiX - loX)
	}
	if hiY > loY {
		m.scaleY = (cells - 1) / (hiY - loY)
	}
	m.spanX, m.spanY = hiX-loX, hiY-loY
	m.hasExtent = true
	return m
}

// Value returns the Hilbert value of the (floating-point) coordinate pair.
func (m *Mapper) Value(x, y float64) uint64 {
	gx := uint32((x - m.minX) * m.scaleX)
	gy := uint32((y - m.minY) * m.scaleY)
	if x < m.minX {
		gx = 0
	}
	if y < m.minY {
		gy = 0
	}
	return Encode(m.order, gx, gy)
}

// Perm returns the permutation that orders n items by ascending Hilbert
// value of the coordinates at(i) reports: Perm(...)[rank] is the index of
// the item with that rank. Equal values keep their input order (stable),
// so the permutation is deterministic. It is the partitioning primitive of
// the sharded index: contiguous runs of the permutation are spatially
// coherent chunks of the data set.
func Perm(n int, m *Mapper, at func(i int) (x, y float64)) []int {
	keys := make([]uint64, n)
	idx := make([]int, n)
	for i := 0; i < n; i++ {
		x, y := at(i)
		keys[i] = m.Value(x, y)
		idx[i] = i
	}
	slices.SortStableFunc(idx, func(a, b int) int {
		switch {
		case keys[a] < keys[b]:
			return -1
		case keys[a] > keys[b]:
			return 1
		default:
			return 0
		}
	})
	return idx
}

// SortByValue sorts items in place by ascending Hilbert value of the
// coordinates that at(i) reports. It is the single sorting entry point used
// by MQM, F-MQM, F-MBM and Hilbert bulk-loading.
func SortByValue(n int, m *Mapper, at func(i int) (x, y float64), swap func(i, j int)) {
	idx := Perm(n, m, at)
	n = len(idx)
	// Apply the permutation with the provided swap, tracking positions.
	pos := make([]int, n)  // pos[item] = current index of item
	item := make([]int, n) // item[index] = item currently at index
	for i := 0; i < n; i++ {
		pos[i], item[i] = i, i
	}
	for target, want := range idx {
		cur := pos[want]
		if cur == target {
			continue
		}
		swap(cur, target)
		other := item[target]
		pos[want], pos[other] = target, cur
		item[target], item[cur] = want, other
	}
}
