package hilbert

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEncodeOrder1(t *testing.T) {
	// The order-1 curve visits (0,0) (0,1) (1,1) (1,0).
	want := map[[2]uint32]uint64{
		{0, 0}: 0, {0, 1}: 1, {1, 1}: 2, {1, 0}: 3,
	}
	for cell, d := range want {
		if got := Encode(1, cell[0], cell[1]); got != d {
			t.Errorf("Encode(1,%d,%d) = %d, want %d", cell[0], cell[1], got, d)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, order := range []uint{1, 2, 3, 5, 8} {
		n := uint32(1) << order
		seen := make(map[uint64]bool, n*n)
		for x := uint32(0); x < n; x++ {
			for y := uint32(0); y < n; y++ {
				d := Encode(order, x, y)
				if d >= uint64(n)*uint64(n) {
					t.Fatalf("order %d: value %d out of range", order, d)
				}
				if seen[d] {
					t.Fatalf("order %d: duplicate value %d", order, d)
				}
				seen[d] = true
				gx, gy := Decode(order, d)
				if gx != x || gy != y {
					t.Fatalf("order %d: Decode(Encode(%d,%d)) = (%d,%d)", order, x, y, gx, gy)
				}
			}
		}
	}
}

func TestEncodeClampsOutOfRange(t *testing.T) {
	if got, want := Encode(2, 100, 100), Encode(2, 3, 3); got != want {
		t.Errorf("clamped Encode = %d, want %d", got, want)
	}
}

func TestCurveContinuity(t *testing.T) {
	// Consecutive curve positions must map to adjacent grid cells
	// (Manhattan distance exactly 1) — the locality property MQM relies on.
	const order = 6
	n := uint64(1) << order
	px, py := Decode(order, 0)
	for d := uint64(1); d < n*n; d++ {
		x, y := Decode(order, d)
		dx := math.Abs(float64(x) - float64(px))
		dy := math.Abs(float64(y) - float64(py))
		if dx+dy != 1 {
			t.Fatalf("discontinuity at d=%d: (%d,%d) -> (%d,%d)", d, px, py, x, y)
		}
		px, py = x, y
	}
}

func TestQuickRoundTripLargeOrder(t *testing.T) {
	f := func(x, y uint32) bool {
		const order = 16
		x %= 1 << order
		y %= 1 << order
		gx, gy := Decode(order, Encode(order, x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapperValue(t *testing.T) {
	m := NewMapper(8, 0, 0, 100, 100)
	// Corners of the box map to distinct grid corners.
	vals := map[uint64]bool{}
	for _, c := range [][2]float64{{0, 0}, {0, 100}, {100, 0}, {100, 100}} {
		vals[m.Value(c[0], c[1])] = true
	}
	if len(vals) != 4 {
		t.Errorf("corner collisions: %v", vals)
	}
	// Below-range coordinates clamp to cell 0 rather than wrapping.
	if got, want := m.Value(-50, -50), m.Value(0, 0); got != want {
		t.Errorf("negative clamp = %d, want %d", got, want)
	}
}

func TestMapperDegenerateExtent(t *testing.T) {
	m := NewMapper(8, 5, 5, 5, 5) // all data at one point
	if got := m.Value(5, 5); got != Encode(8, 0, 0) {
		t.Errorf("degenerate mapper Value = %d", got)
	}
}

func TestSortByValue(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	type p struct{ x, y float64 }
	pts := make([]p, 500)
	for i := range pts {
		pts[i] = p{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	m := NewMapper(DefaultOrder, 0, 0, 1000, 1000)
	SortByValue(len(pts), m,
		func(i int) (float64, float64) { return pts[i].x, pts[i].y },
		func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })

	keys := make([]uint64, len(pts))
	for i, q := range pts {
		keys[i] = m.Value(q.x, q.y)
	}
	if !sort.SliceIsSorted(keys, func(a, b int) bool { return keys[a] < keys[b] }) {
		t.Fatal("SortByValue did not order by Hilbert value")
	}
}

func TestSortByValuePreservesMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 200)
	sum := 0.0
	for i := range xs {
		xs[i] = math.Trunc(rng.Float64() * 100)
		sum += xs[i]
	}
	m := NewMapper(DefaultOrder, 0, 0, 100, 100)
	SortByValue(len(xs), m,
		func(i int) (float64, float64) { return xs[i], xs[i] },
		func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0.0
	for _, v := range xs {
		sum2 += v
	}
	if sum != sum2 {
		t.Fatalf("elements lost during sort: %v vs %v", sum, sum2)
	}
}

func TestHilbertLocalityBeatsRandom(t *testing.T) {
	// Average distance between consecutive Hilbert-sorted points must be far
	// below that of a random order — the reason MQM sorts Q (§3.1).
	rng := rand.New(rand.NewSource(11))
	n := 2000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = rng.Float64()*1000, rng.Float64()*1000
	}
	hop := func() float64 {
		var s float64
		for i := 1; i < n; i++ {
			s += math.Hypot(xs[i]-xs[i-1], ys[i]-ys[i-1])
		}
		return s / float64(n-1)
	}
	randomHop := hop()
	m := NewMapper(DefaultOrder, 0, 0, 1000, 1000)
	SortByValue(n, m,
		func(i int) (float64, float64) { return xs[i], ys[i] },
		func(i, j int) {
			xs[i], xs[j] = xs[j], xs[i]
			ys[i], ys[j] = ys[j], ys[i]
		})
	sortedHop := hop()
	if sortedHop > randomHop/3 {
		t.Fatalf("Hilbert sort hop %.1f not ≪ random hop %.1f", sortedHop, randomHop)
	}
}

func BenchmarkEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Encode(16, uint32(i)&0xffff, uint32(i>>8)&0xffff)
	}
}
