package server

// End-to-end coverage of the aggregate parameter: agg=max rides the
// dedicated MEB kernel through the whole serving stack (HTTP decode →
// admission → snapshot view → packed traversal) and must agree with the
// library bit for bit; min and the batch endpoint ride along.

import (
	"net/http"
	"testing"

	"gnn"
)

func TestServeAggregateMax(t *testing.T) {
	dir := t.TempDir()
	path, ix := buildSnapshot(t, dir, "agg.snap", 3000, 13)
	_, ts := newSnapshotServer(t, path, nil)

	query := [][]float64{{120, 110}, {205, 240}, {150, 170}, {90, 220}}
	group := []gnn.Point{{120, 110}, {205, 240}, {150, 170}, {90, 220}}

	for _, tc := range []struct {
		agg  string
		want gnn.Aggregate
	}{
		{"max", gnn.MaxDist},
		{"min", gnn.MinDist},
		{"", gnn.SumDist},
	} {
		for _, algo := range []string{"mbm", "brute"} {
			var got QueryResponse
			status := postJSON(t, ts.Client(), ts.URL+"/v1/groupnn",
				QueryRequest{Query: query, K: 5, Algo: algo, Agg: tc.agg}, &got)
			if status != http.StatusOK {
				t.Fatalf("agg=%q algo=%s: status %d", tc.agg, algo, status)
			}
			want, err := ix.GroupNN(group, gnn.WithK(5), gnn.WithAggregate(tc.want))
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Results) != len(want) {
				t.Fatalf("agg=%q algo=%s: %d results, want %d", tc.agg, algo, len(got.Results), len(want))
			}
			for i := range want {
				if got.Results[i].ID != want[i].ID || got.Results[i].Dist != want[i].Dist {
					t.Fatalf("agg=%q algo=%s: result %d = %+v, want %+v",
						tc.agg, algo, i, got.Results[i], want[i])
				}
			}
		}
	}

	// The MAX results must genuinely be max-aggregate ranked: on any
	// non-degenerate fixture the sum and max orderings differ somewhere
	// in the top 5, so a server that ignored agg would fail above; here we
	// also pin that the first max distance equals the true farthest-member
	// distance of the returned point.
	var mx QueryResponse
	if status := postJSON(t, ts.Client(), ts.URL+"/v1/groupnn",
		QueryRequest{Query: query, K: 1, Agg: "max"}, &mx); status != http.StatusOK {
		t.Fatalf("max k=1: status %d", status)
	}
	want, err := ix.GroupNN(group, gnn.WithK(1), gnn.WithAggregate(gnn.MaxDist))
	if err != nil {
		t.Fatal(err)
	}
	if len(mx.Results) != 1 || mx.Results[0].Dist != want[0].Dist {
		t.Fatalf("max k=1 diverged: %+v vs %+v", mx.Results, want)
	}

	// Batch endpoint under agg=max.
	var batch BatchResponse
	status := postJSON(t, ts.Client(), ts.URL+"/v1/batch",
		BatchRequest{Queries: [][][]float64{query, query}, K: 3, Agg: "max"}, &batch)
	if status != http.StatusOK || len(batch.Entries) != 2 {
		t.Fatalf("batch: status %d entries %d", status, len(batch.Entries))
	}
	bwant, err := ix.GroupNN(group, gnn.WithK(3), gnn.WithAggregate(gnn.MaxDist))
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range batch.Entries {
		if e.Error != "" || len(e.Results) != len(bwant) {
			t.Fatalf("batch entry %d: %+v", i, e)
		}
		for j := range bwant {
			if e.Results[j].ID != bwant[j].ID || e.Results[j].Dist != bwant[j].Dist {
				t.Fatalf("batch entry %d result %d = %+v, want %+v", i, j, e.Results[j], bwant[j])
			}
		}
	}

	// Unknown aggregate is a 400, counted as a bad request.
	var bad QueryResponse
	if status := postJSON(t, ts.Client(), ts.URL+"/v1/groupnn",
		QueryRequest{Query: query, Agg: "median"}, &bad); status != http.StatusBadRequest {
		t.Fatalf("agg=median: status %d, want 400", status)
	}
}
