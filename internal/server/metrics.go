package server

import (
	"net/http"
	"runtime"
	rtmetrics "runtime/metrics"
	"sync"
	"time"

	"gnn/internal/telemetry"
)

// endpointID names a metered route. The arrays below are indexed by it,
// so recording an outcome is two array loads and one atomic add — no
// map lookup, no label rendering on the request path.
type endpointID int

const (
	epGroupNN endpointID = iota
	epBatch
	epInsert
	epDelete
	epAdmin
	numEndpoints
)

var endpointNames = [numEndpoints]string{"groupnn", "batch", "insert", "delete", "admin"}

// outcomeID classifies how a request ended, derived from the response
// status code so the counters are incremented in exactly one place.
type outcomeID int

const (
	outOK outcomeID = iota
	outBadRequest
	outRejected
	outCanceled
	outDeadline
	outPanic
	outUnavailable
	numOutcomes
)

var outcomeNames = [numOutcomes]string{
	"ok", "bad_request", "rejected", "canceled", "deadline", "panic", "unavailable",
}

// outcomeOf maps a response status to its outcome counter.
func outcomeOf(status int) outcomeID {
	switch {
	case status < 400:
		return outOK
	case status == StatusClientClosedRequest:
		return outCanceled
	case status == 429:
		return outRejected
	case status == 504:
		return outDeadline
	case status == 500:
		return outPanic
	case status == 503:
		return outUnavailable
	default:
		return outBadRequest
	}
}

// algoID indexes the per-algorithm latency histograms.
type algoID int

const (
	algoMBM algoID = iota
	algoMQM
	algoSPM
	algoBrute
	numAlgos
)

var algoNames = [numAlgos]string{"mbm", "mqm", "spm", "brute"}

// serverMetrics is the daemon's Prometheus surface: every counter,
// gauge and histogram series is registered (and its label string
// rendered) once at startup, so the request path only touches atomics.
type serverMetrics struct {
	reg *telemetry.Registry

	requests [numEndpoints][numOutcomes]*telemetry.Counter
	latency  [numEndpoints][numAlgos]*telemetry.Histogram

	queueDepth    *telemetry.Gauge
	reloadsOK     *telemetry.Counter
	reloadsFailed *telemetry.Counter
	slowLogged    *telemetry.Counter
}

// newServerMetrics builds the registry. The gauge closures read the
// server's live state at scrape time, so /metrics always reflects the
// current handle even across hot reloads.
func newServerMetrics(s *Server) *serverMetrics {
	reg := telemetry.NewRegistry()
	m := &serverMetrics{reg: reg}

	for ep := endpointID(0); ep < numEndpoints; ep++ {
		for o := outcomeID(0); o < numOutcomes; o++ {
			m.requests[ep][o] = reg.Counter(
				"gnn_requests_total", "HTTP requests by endpoint and outcome.",
				telemetry.Label{Key: "endpoint", Value: endpointNames[ep]},
				telemetry.Label{Key: "outcome", Value: outcomeNames[o]},
			)
		}
	}
	// Latency is meaningful only where a kernel runs; the write and admin
	// endpoints are covered by the request counters alone.
	for _, ep := range []endpointID{epGroupNN, epBatch} {
		for a := algoID(0); a < numAlgos; a++ {
			m.latency[ep][a] = reg.Histogram(
				"gnn_request_duration_us", "Served-query latency in microseconds.",
				telemetry.Label{Key: "endpoint", Value: endpointNames[ep]},
				telemetry.Label{Key: "algo", Value: algoNames[a]},
			)
		}
	}

	reg.GaugeFunc("gnn_inflight", "Queries currently executing.",
		func() float64 { return float64(s.stats.inflight.Load()) })
	m.queueDepth = reg.Gauge("gnn_queue_depth", "Requests waiting for an admission slot.")
	reg.GaugeFunc("gnn_snapshot_generation", "Reload generation of the live snapshot.",
		func() float64 { return float64(s.liveHandle().generation) })
	m.reloadsOK = reg.Counter("gnn_reloads_total", "Successful hot snapshot reloads.")
	m.reloadsFailed = reg.Counter("gnn_reloads_failed_total", "Rejected hot snapshot reloads (live index kept).")
	m.slowLogged = reg.Counter("gnn_slowlog_admissions_total", "Queries slow enough to enter the slow-query log.")

	reg.GaugeFunc("gnn_overlay_delta", "Points in the un-compacted write overlay.",
		func() float64 { return float64(s.liveHandle().q.Stats().Delta) })
	reg.GaugeFunc("gnn_overlay_tombstones", "Tombstoned base occurrences awaiting compaction.",
		func() float64 { return float64(s.liveHandle().q.Stats().Tombstones) })
	reg.GaugeFunc("gnn_compaction_generation", "Completed background compaction cycles.",
		func() float64 { return float64(s.liveHandle().q.Stats().CompactGen) })
	reg.GaugeFunc("gnn_compaction_last_duration_us", "Wall time of the last compaction cycle in microseconds.",
		func() float64 { return float64(s.liveHandle().q.Stats().LastCompaction.Microseconds()) })
	reg.GaugeFunc("gnn_compaction_error", "1 when the most recent compaction cycle failed, else 0.",
		func() float64 {
			if s.liveHandle().q.Stats().LastCompactionError != "" {
				return 1
			}
			return 0
		})

	reg.GaugeFunc("gnn_go_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("gnn_go_heap_bytes", "Bytes of live heap objects.",
		func() float64 { return float64(s.runtime.sample().heapBytes) })
	reg.GaugeFunc("gnn_go_gc_pause_p99_us", "99th percentile GC stop-the-world pause in microseconds.",
		func() float64 { return s.runtime.sample().gcPauseP99US })
	reg.GaugeFunc("gnn_process_uptime_seconds", "Seconds since the daemon started.",
		func() float64 { return time.Since(s.startedAt).Seconds() })

	return m
}

// observeQuery records a served query's latency under its endpoint and
// algorithm series.
func (m *serverMetrics) observeQuery(ep endpointID, a algoID, us uint64) {
	m.latency[ep][a].Observe(us)
}

// runtimeSampler batches runtime/metrics reads: every gauge closure on
// the scrape path shares one sample at most sampleTTL old, so a scrape
// with several runtime gauges pays one metrics read, not one per gauge.
type runtimeSampler struct {
	mu      sync.Mutex
	taken   time.Time
	samples []rtmetrics.Sample

	cached runtimeStats
}

type runtimeStats struct {
	heapBytes    uint64
	gcPauseP99US float64
}

const sampleTTL = time.Second

func newRuntimeSampler() *runtimeSampler {
	return &runtimeSampler{samples: []rtmetrics.Sample{
		{Name: "/memory/classes/heap/objects:bytes"},
		{Name: "/gc/pauses:seconds"},
	}}
}

func (rs *runtimeSampler) sample() runtimeStats {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !rs.taken.IsZero() && time.Since(rs.taken) < sampleTTL {
		return rs.cached
	}
	rtmetrics.Read(rs.samples)
	var out runtimeStats
	if rs.samples[0].Value.Kind() == rtmetrics.KindUint64 {
		out.heapBytes = rs.samples[0].Value.Uint64()
	}
	if rs.samples[1].Value.Kind() == rtmetrics.KindFloat64Histogram {
		out.gcPauseP99US = histP99US(rs.samples[1].Value.Float64Histogram())
	}
	rs.cached = out
	rs.taken = time.Now()
	return out
}

// histP99US extracts the 99th percentile from a runtime pause histogram
// (seconds) as microseconds, reported as the upper bound of the bucket
// holding the rank — the same conservative bias as the serving
// histogram.
func histP99US(h *rtmetrics.Float64Histogram) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(0.99 * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > rank {
			// Buckets[i+1] is the bucket's upper bound; the last bucket's
			// bound can be +Inf, in which case fall back to its lower edge.
			up := h.Buckets[i+1]
			if up > 1e9 { // +Inf or absurd: clamp to the finite lower bound
				up = h.Buckets[i]
			}
			return up * 1e6
		}
	}
	return 0
}

// parseAlgoID maps a request's (already validated) algo string to its
// histogram index.
func parseAlgoID(algo string) algoID {
	switch algo {
	case "mqm":
		return algoMQM
	case "spm":
		return algoSPM
	case "brute":
		return algoBrute
	default:
		return algoMBM
	}
}

// statusRecorder captures the status a handler writes so the wrapper
// can classify the outcome after the fact.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = 200
	}
	return sr.ResponseWriter.Write(b)
}
