// Observability suite: the Prometheus endpoint, the trace echo, the
// slow-query log, the runtime stats block and the structured request
// log. Runs against a real snapshot so the explain traces exercise the
// actual kernels.
package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"

	"gnn/internal/telemetry"
)

func postQuery(t *testing.T, ts string, body map[string]any, out any) int {
	t.Helper()
	return postJSON(t, http.DefaultClient, ts+"/v1/groupnn", body, out)
}

func queryBody(trace bool) map[string]any {
	q := map[string]any{"query": [][]float64{{100, 100}, {200, 250}}, "k": 3}
	if trace {
		q["trace"] = true
	}
	return q
}

// fetchFamilies scrapes /metrics and parses the exposition strictly.
func fetchFamilies(t *testing.T, ts string) map[string]telemetry.Family {
	t.Helper()
	resp, err := http.Get(ts + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	fams, err := telemetry.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	out := make(map[string]telemetry.Family, len(fams))
	for _, f := range fams {
		out[f.Name] = f
	}
	return out
}

func TestMetricsEndpoint(t *testing.T) {
	path, _ := buildSnapshot(t, t.TempDir(), "m.snap", 3000, 5)
	_, ts := newSnapshotServer(t, path, nil)

	// A mix of outcomes: served queries on two algorithms, one bad request.
	for i := 0; i < 5; i++ {
		if code := postQuery(t, ts.URL, queryBody(false), nil); code != 200 {
			t.Fatalf("query %d: status %d", i, code)
		}
	}
	b := queryBody(false)
	b["algo"] = "mqm"
	if code := postQuery(t, ts.URL, b, nil); code != 200 {
		t.Fatalf("mqm query: status %d", code)
	}
	if code := postQuery(t, ts.URL, map[string]any{"query": [][]float64{}}, nil); code != 400 {
		t.Fatalf("bad query: status %d, want 400", code)
	}

	fams := fetchFamilies(t, ts.URL)

	reqs, ok := fams["gnn_requests_total"]
	if !ok {
		t.Fatal("gnn_requests_total missing")
	}
	find := func(f telemetry.Family, want map[string]string) (float64, bool) {
		for _, s := range f.Samples {
			match := true
			for k, v := range want {
				if s.Labels[k] != v {
					match = false
					break
				}
			}
			if match {
				return s.Value, true
			}
		}
		return 0, false
	}
	if v, ok := find(reqs, map[string]string{"endpoint": "groupnn", "outcome": "ok"}); !ok || v != 6 {
		t.Errorf("groupnn/ok = %v (found=%v), want 6", v, ok)
	}
	if v, ok := find(reqs, map[string]string{"endpoint": "groupnn", "outcome": "bad_request"}); !ok || v != 1 {
		t.Errorf("groupnn/bad_request = %v (found=%v), want 1", v, ok)
	}

	lat, ok := fams["gnn_request_duration_us"]
	if !ok || lat.Type != "histogram" {
		t.Fatalf("latency histogram missing or wrong type: %+v", lat)
	}
	if v, ok := find(lat, map[string]string{"endpoint": "groupnn", "algo": "mbm", "le": "+Inf"}); !ok || v != 5 {
		t.Errorf("mbm latency count = %v (found=%v), want 5", v, ok)
	}
	if v, ok := find(lat, map[string]string{"endpoint": "groupnn", "algo": "mqm", "le": "+Inf"}); !ok || v != 1 {
		t.Errorf("mqm latency count = %v (found=%v), want 1", v, ok)
	}

	for _, name := range []string{
		"gnn_inflight", "gnn_queue_depth", "gnn_snapshot_generation",
		"gnn_overlay_delta", "gnn_overlay_tombstones",
		"gnn_compaction_generation", "gnn_go_goroutines",
		"gnn_go_heap_bytes", "gnn_process_uptime_seconds",
	} {
		if _, ok := fams[name]; !ok {
			t.Errorf("metric %s missing", name)
		}
	}
	if v := fams["gnn_go_goroutines"].Samples[0].Value; v <= 0 {
		t.Errorf("goroutines = %v", v)
	}
}

func TestTraceEchoAndSlowLog(t *testing.T) {
	path, _ := buildSnapshot(t, t.TempDir(), "tr.snap", 3000, 7)
	_, ts := newSnapshotServer(t, path, func(c *Config) { c.SlowLogSize = 4 })

	// Untraced: no explain in the body.
	var plain QueryResponse
	if code := postQuery(t, ts.URL, queryBody(false), &plain); code != 200 {
		t.Fatalf("status %d", code)
	}
	if plain.Explain != nil {
		t.Error("explain echoed without trace:true")
	}

	// Traced: explain present with provenance, stages and counters.
	var traced QueryResponse
	if code := postQuery(t, ts.URL, queryBody(true), &traced); code != 200 {
		t.Fatalf("status %d", code)
	}
	ex := traced.Explain
	if ex == nil {
		t.Fatal("trace:true returned no explain")
	}
	if ex.Algorithm != "MBM" || ex.Layout != "packed" || ex.K != 3 || ex.GroupSize != 2 {
		t.Errorf("explain provenance: %+v", ex)
	}
	if ex.Trace.NodesVisited == 0 || len(ex.Stages) == 0 {
		t.Errorf("explain diagnostics empty: %+v", ex)
	}
	// Same query, same snapshot: the traced results must match the
	// untraced ones bit for bit.
	if len(plain.Results) != len(traced.Results) {
		t.Fatalf("result count diverged: %d vs %d", len(plain.Results), len(traced.Results))
	}
	for i := range plain.Results {
		p, q := plain.Results[i], traced.Results[i]
		same := p.ID == q.ID && p.Dist == q.Dist && len(p.Point) == len(q.Point)
		for d := 0; same && d < len(p.Point); d++ {
			same = p.Point[d] == q.Point[d]
		}
		if !same {
			t.Errorf("result %d diverged: %+v vs %+v", i, p, q)
		}
	}

	// The slow log retains the slowest N with their explains.
	for i := 0; i < 10; i++ {
		postQuery(t, ts.URL, queryBody(false), nil)
	}
	resp, err := http.Get(ts.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var slow struct {
		Slowest []slowEntry `json:"slowest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&slow); err != nil {
		t.Fatal(err)
	}
	if len(slow.Slowest) != 4 {
		t.Fatalf("slowlog retained %d entries, want 4 (cap)", len(slow.Slowest))
	}
	for i, e := range slow.Slowest {
		if i > 0 && e.ElapsedUS > slow.Slowest[i-1].ElapsedUS {
			t.Errorf("slowlog not sorted: entry %d (%d us) > entry %d (%d us)",
				i, e.ElapsedUS, i-1, slow.Slowest[i-1].ElapsedUS)
		}
		if e.Endpoint != "groupnn" || e.Outcome != "ok" || e.Explain == nil {
			t.Errorf("slowlog entry %d malformed: %+v", i, e)
		}
	}
}

func TestSlowLogTopN(t *testing.T) {
	l := newSlowLog(3)
	for _, us := range []int64{10, 50, 20, 5, 100, 1, 60} {
		l.record(slowEntry{ElapsedUS: us})
	}
	got := l.snapshot()
	if len(got) != 3 {
		t.Fatalf("retained %d, want 3", len(got))
	}
	want := []int64{100, 60, 50}
	for i, e := range got {
		if e.ElapsedUS != want[i] {
			t.Errorf("slot %d = %d, want %d", i, e.ElapsedUS, want[i])
		}
	}
	// Fast path: anything under the retained minimum is refused without
	// displacing an entry.
	if l.record(slowEntry{ElapsedUS: 2}) {
		t.Error("fast query admitted into a full slower log")
	}
}

func TestSlowLogConcurrent(t *testing.T) {
	l := newSlowLog(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.record(slowEntry{ElapsedUS: int64(w*500 + i)})
				if i%97 == 0 {
					l.snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	got := l.snapshot()
	if len(got) != 8 {
		t.Fatalf("retained %d, want 8", len(got))
	}
	// The 8 slowest overall are 3992..3999.
	for _, e := range got {
		if e.ElapsedUS < 3992 {
			t.Errorf("retained %d; the 8 slowest are 3992..3999", e.ElapsedUS)
		}
	}
}

func TestRequestLoggingAndIDs(t *testing.T) {
	path, _ := buildSnapshot(t, t.TempDir(), "log.snap", 500, 11)
	var buf bytes.Buffer
	var mu sync.Mutex
	lockedWriter := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	_, ts := newSnapshotServer(t, path, func(c *Config) {
		c.Logger = slog.New(slog.NewJSONHandler(lockedWriter, nil))
	})

	body, _ := json.Marshal(queryBody(false))
	req, _ := http.NewRequest("POST", ts.URL+"/v1/groupnn", bytes.NewReader(body))
	req.Header.Set("X-Request-ID", "client-supplied-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-supplied-42" {
		t.Errorf("inbound request ID not honored: %q", got)
	}

	// A second request without an inbound ID gets a generated one.
	resp2, err := http.Post(ts.URL+"/v1/groupnn", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.Header.Get("X-Request-ID") == "" {
		t.Error("no generated request ID")
	}

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	if len(lines) < 2 {
		t.Fatalf("expected 2 log lines, got %d: %q", len(lines), lines)
	}
	var rec struct {
		Msg       string `json:"msg"`
		RequestID string `json:"request_id"`
		Method    string `json:"method"`
		Path      string `json:"path"`
		Status    int    `json:"status"`
		ElapsedUS int64  `json:"elapsed_us"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v (%q)", err, lines[0])
	}
	if rec.Msg != "request" || rec.RequestID != "client-supplied-42" ||
		rec.Method != "POST" || rec.Path != "/v1/groupnn" || rec.Status != 200 {
		t.Errorf("log line fields: %+v", rec)
	}
}

// writerFunc adapts a function to io.Writer for the logging test.
type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestStatsRuntimeBlock(t *testing.T) {
	path, _ := buildSnapshot(t, t.TempDir(), "rt.snap", 500, 13)
	_, ts := newSnapshotServer(t, path, nil)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Runtime.Goroutines <= 0 {
		t.Errorf("goroutines = %d", st.Runtime.Goroutines)
	}
	if st.Runtime.HeapBytes == 0 {
		t.Error("heap bytes = 0")
	}
	if st.Runtime.UptimeSeconds <= 0 {
		t.Errorf("uptime = %v", st.Runtime.UptimeSeconds)
	}
}

// TestMetricsUnderLoad scrapes concurrently with a query storm: the
// exposition must stay parseable (histogram invariants hold mid-write).
func TestMetricsUnderLoad(t *testing.T) {
	path, _ := buildSnapshot(t, t.TempDir(), "load.snap", 2000, 17)
	_, ts := newSnapshotServer(t, path, nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					postQuery(t, ts.URL, queryBody(false), nil)
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		fams := fetchFamilies(t, ts.URL)
		if _, ok := fams["gnn_requests_total"]; !ok {
			t.Error("gnn_requests_total vanished mid-load")
		}
	}
	close(stop)
	wg.Wait()
	// Final consistency: ok-count equals the +Inf latency count summed
	// over algorithms for the groupnn endpoint.
	fams := fetchFamilies(t, ts.URL)
	var okCount, latCount float64
	for _, s := range fams["gnn_requests_total"].Samples {
		if s.Labels["endpoint"] == "groupnn" && s.Labels["outcome"] == "ok" {
			okCount = s.Value
		}
	}
	for _, s := range fams["gnn_request_duration_us"].Samples {
		if s.Labels["endpoint"] == "groupnn" && s.Labels["le"] == "+Inf" {
			latCount += s.Value
		}
	}
	if okCount == 0 || okCount != latCount {
		t.Errorf("ok=%v latency-count=%v; want equal and nonzero", okCount, latCount)
	}
}
