// Write-path tests for the daemon: /v1/insert and /v1/delete against a
// mapped snapshot, live overlay stats, and background compaction
// rotating the serving file under traffic.
package server

import (
	"net/http"
	"os"
	"testing"
	"time"

	"gnn"
	"gnn/internal/snapshot"
)

func TestMutateEndpoints(t *testing.T) {
	dir := t.TempDir()
	path, _ := buildSnapshot(t, dir, "mut.snap", 500, 11)
	_, ts := newSnapshotServer(t, path, nil)
	client := ts.Client()

	// Insert lands in the overlay; the response echoes the overlay size.
	var mr MutateResponse
	if code := postJSON(t, client, ts.URL+"/v1/insert",
		MutateRequest{Point: []float64{1.5, 2.5}, ID: 90_001}, &mr); code != http.StatusOK {
		t.Fatalf("insert: status %d", code)
	}
	if mr.Delta != 1 || mr.Tombstones != 0 {
		t.Fatalf("insert response: %+v", mr)
	}

	// The inserted point is queryable immediately.
	var qr QueryResponse
	if code := postJSON(t, client, ts.URL+"/v1/groupnn",
		QueryRequest{Query: [][]float64{{1.5, 2.5}}, K: 1}, &qr); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	if len(qr.Results) != 1 || qr.Results[0].ID != 90_001 {
		t.Fatalf("query missed the inserted point: %+v", qr.Results)
	}

	// Stats reflect the live overlay, not the load-time snapshot.
	st := getStats(t, ts)
	if st.Overlay.Delta != 1 || st.Index.Points != 501 || st.Requests.Mutations != 1 {
		t.Fatalf("stats after insert: overlay=%+v points=%d mutations=%d",
			st.Overlay, st.Index.Points, st.Requests.Mutations)
	}

	// Delete of the overlay point drains it; a repeat delete is a no-op
	// reported as deleted=false, not an error.
	if code := postJSON(t, client, ts.URL+"/v1/delete",
		MutateRequest{Point: []float64{1.5, 2.5}, ID: 90_001}, &mr); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	if !mr.Deleted || mr.Delta != 0 {
		t.Fatalf("delete response: %+v", mr)
	}
	if code := postJSON(t, client, ts.URL+"/v1/delete",
		MutateRequest{Point: []float64{1.5, 2.5}, ID: 90_001}, &mr); code != http.StatusOK || mr.Deleted {
		t.Fatalf("repeat delete: status %d, %+v", code, mr)
	}

	// Malformed writes are 400s with the counter bumped.
	if code := postJSON(t, client, ts.URL+"/v1/insert",
		MutateRequest{Point: []float64{1, 2, 3}, ID: 1}, nil); code != http.StatusBadRequest {
		t.Fatalf("wrong-dimension insert: status %d", code)
	}
	if code := postJSON(t, client, ts.URL+"/v1/insert",
		MutateRequest{ID: 1}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty-point insert: status %d", code)
	}
}

func TestServerBackgroundCompaction(t *testing.T) {
	dir := t.TempDir()
	path, _ := buildSnapshot(t, dir, "compact.snap", 400, 12)
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newSnapshotServer(t, path, func(c *Config) {
		c.CompactThreshold = 16
		c.CompactInterval = 5 * time.Millisecond
	})
	client := ts.Client()

	for i := 0; i < 48; i++ {
		var mr MutateResponse
		if code := postJSON(t, client, ts.URL+"/v1/insert",
			MutateRequest{Point: []float64{float64(i), float64(i)}, ID: int64(80_000 + i)}, &mr); code != http.StatusOK {
			t.Fatalf("insert %d: status %d", i, code)
		}
	}
	// The compactor folds the overlay below threshold and rotates the
	// serving snapshot file; poll briefly (it runs off the request path).
	deadline := time.After(5 * time.Second)
	for {
		st := getStats(t, ts)
		if st.Overlay.CompactionGen > 0 && st.Overlay.Delta < 16 && st.Overlay.LastCompactionErr == "" {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("compaction never caught up: %+v", st.Overlay)
		case <-time.After(10 * time.Millisecond):
		}
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() == before.Size() && after.ModTime().Equal(before.ModTime()) {
		t.Fatal("serving snapshot file was never rotated")
	}
	if _, err := os.Stat(snapshot.TempPath(path)); !os.IsNotExist(err) {
		t.Fatalf("rotation temp file left behind: %v", err)
	}
	// The rotated file is a valid snapshot holding the folded state.
	loaded, err := gnn.OpenSnapshotFile(path)
	if err != nil {
		t.Fatalf("rotated snapshot not decodable: %v", err)
	}
	if loaded.Len() < 400 {
		t.Fatalf("rotated snapshot lost points: %d", loaded.Len())
	}
	// Close drains the compactor with the server (no goroutine leak under
	// -race; an in-flight cycle finishes first).
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMutateNotSupported(t *testing.T) {
	// A Queryable without the write surface yields 501, not a panic.
	_, ts := newFakeServer(t, &fakeIndex{}, nil)
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/insert",
		MutateRequest{Point: []float64{1, 2}, ID: 1}, nil); code != http.StatusNotImplemented {
		t.Fatalf("insert on immutable index: status %d", code)
	}
}
