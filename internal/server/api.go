package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"time"

	"gnn"
)

// StatusClientClosedRequest is the (nginx-convention) status for a
// query abandoned because the client went away mid-traversal.
const StatusClientClosedRequest = 499

// QueryRequest is the body of POST /v1/groupnn.
type QueryRequest struct {
	// Query is the group of query points, [[x,y], ...].
	Query [][]float64 `json:"query"`
	// K is the number of neighbors (default 1).
	K int `json:"k,omitempty"`
	// Algo selects the kernel: "mqm", "spm", "mbm" (default), "brute".
	Algo string `json:"algo,omitempty"`
	// Agg selects the aggregate: "sum" (default), "max", "min".
	Agg string `json:"agg,omitempty"`
	// TimeoutMS overrides the server's default per-request deadline,
	// clamped to the configured maximum.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Trace asks for the query's explain report (stage timings, pruning
	// counters, provenance) to be echoed in the response. Collecting it
	// never changes the results.
	Trace bool `json:"trace,omitempty"`
}

// BatchRequest is the body of POST /v1/batch: the shared options apply
// to every group.
type BatchRequest struct {
	Queries   [][][]float64 `json:"queries"`
	K         int           `json:"k,omitempty"`
	Algo      string        `json:"algo,omitempty"`
	Agg       string        `json:"agg,omitempty"`
	TimeoutMS int           `json:"timeout_ms,omitempty"`
}

// ResultJSON is one neighbor in a response.
type ResultJSON struct {
	ID    int64     `json:"id"`
	Point []float64 `json:"point"`
	Dist  float64   `json:"dist"`
}

// CostJSON is a query's I/O cost in a response.
type CostJSON struct {
	NodeAccesses    int64 `json:"node_accesses"`
	LogicalAccesses int64 `json:"logical_accesses"`
	BufferHits      int64 `json:"buffer_hits"`
}

// QueryResponse is the body of a successful /v1/groupnn response.
// Explain is present only when the request set "trace": true.
type QueryResponse struct {
	Results    []ResultJSON      `json:"results"`
	Cost       CostJSON          `json:"cost"`
	ElapsedUS  int64             `json:"elapsed_us"`
	Generation uint64            `json:"generation"`
	Explain    *gnn.QueryExplain `json:"explain,omitempty"`
}

// BatchEntryJSON is one query's outcome inside a /v1/batch response.
// Queries fail independently; Error is empty on success.
type BatchEntryJSON struct {
	Results []ResultJSON `json:"results,omitempty"`
	Cost    CostJSON     `json:"cost"`
	Error   string       `json:"error,omitempty"`
}

// BatchResponse is the body of a /v1/batch response.
type BatchResponse struct {
	Entries    []BatchEntryJSON `json:"entries"`
	ElapsedUS  int64            `json:"elapsed_us"`
	Generation uint64           `json:"generation"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// MutateRequest is the body of POST /v1/insert and /v1/delete.
type MutateRequest struct {
	Point []float64 `json:"point"`
	ID    int64     `json:"id"`
}

// MutateResponse reports a write's outcome. Deleted is meaningful only
// for /v1/delete (false = no live (point, id) occurrence existed).
// Delta and Tombstones echo the overlay size after the write so a
// client can observe compaction progress without polling /v1/stats.
type MutateResponse struct {
	Deleted    bool   `json:"deleted"`
	Delta      int    `json:"delta"`
	Tombstones int    `json:"tombstones"`
	Generation uint64 `json:"generation"`
}

// ReloadRequest is the body of POST /admin/reload. An empty path
// reloads the live handle's own file.
type ReloadRequest struct {
	Path string `json:"path,omitempty"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	// Index describes the live snapshot.
	Index struct {
		Path       string `json:"path"`
		Generation uint64 `json:"generation"`
		Points     int    `json:"points"`
		Dim        int    `json:"dim"`
		Shards     int    `json:"shards"`
		ArenaBytes int64  `json:"arena_bytes"`
		LoadedAt   string `json:"loaded_at"`
	} `json:"index"`
	// Requests are the monotonic outcome counters.
	Requests struct {
		Served    uint64 `json:"served"`
		Rejected  uint64 `json:"rejected"`
		Canceled  uint64 `json:"canceled"`
		Deadlines uint64 `json:"deadline_exceeded"`
		Panics    uint64 `json:"panics"`
		BadReq    uint64 `json:"bad_request"`
		Inflight  int64  `json:"inflight"`
		Mutations uint64 `json:"mutations"`
	} `json:"requests"`
	// Reload reports hot-reload health; LastError is the most recent
	// rejected reload's message, empty after a success.
	Reload struct {
		OK        uint64 `json:"ok"`
		Failed    uint64 `json:"failed"`
		LastError string `json:"last_error,omitempty"`
	} `json:"reload"`
	// LatencyUS summarises served-query latency in microseconds.
	LatencyUS struct {
		Mean float64 `json:"mean"`
		P50  uint64  `json:"p50"`
		P99  uint64  `json:"p99"`
		P999 uint64  `json:"p999"`
	} `json:"latency_us"`
	// Overlay reports the live write-path state: pending overlay size,
	// tombstoned base occurrences, and background-compaction health.
	Overlay struct {
		Delta             int    `json:"delta"`
		Tombstones        int    `json:"tombstones"`
		CompactionGen     uint64 `json:"compaction_gen"`
		LastCompactionUS  int64  `json:"last_compaction_us"`
		LastCompactionErr string `json:"last_compaction_error,omitempty"`
	} `json:"overlay"`
	// Runtime reports basic process health so operators don't need a
	// sidecar exporter for it.
	Runtime struct {
		Goroutines    int     `json:"goroutines"`
		HeapBytes     uint64  `json:"heap_bytes"`
		GCPauseP99US  float64 `json:"gc_pause_p99_us"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	} `json:"runtime"`
}

// routes mounts every endpoint. Query endpoints pass through the
// admission and panic-containment wrapper; control-plane endpoints —
// including /metrics, the slow-query log and the pprof handlers — are
// never throttled (an overloaded server must still answer its health
// checks, surface its telemetry and accept a reload).
func (s *Server) routes() *http.ServeMux {
	s.initTelemetry()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/groupnn", s.instrument(epGroupNN, s.guard(s.handleGroupNN)))
	mux.HandleFunc("POST /v1/batch", s.instrument(epBatch, s.guard(s.handleBatch)))
	mux.HandleFunc("POST /v1/insert", s.instrument(epInsert, s.guard(s.handleInsert)))
	mux.HandleFunc("POST /v1/delete", s.instrument(epDelete, s.guard(s.handleDelete)))
	mux.HandleFunc("GET /v1/stats", s.instrument(epNone, s.handleStats))
	mux.HandleFunc("GET /healthz", s.instrument(epNone, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	}))
	mux.HandleFunc("GET /readyz", s.instrument(epNone, func(w http.ResponseWriter, r *http.Request) {
		if s.ready.Load() {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ready")
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	}))
	mux.HandleFunc("POST /admin/reload", s.instrument(epAdmin, s.handleReload))
	mux.Handle("GET /metrics", s.metrics.reg.Handler())
	mux.HandleFunc("GET /debug/slowlog", s.handleSlowLog)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// handleSlowLog serves the retained slowest queries, slowest first.
func (s *Server) handleSlowLog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"slowest": s.slow.snapshot()})
}

// guard wraps a query handler with panic containment and admission
// control, in that order: a panic anywhere past admission still
// releases the slot (the release is deferred before the handler runs),
// and the recover converts it to a 500 instead of killing the process.
func (s *Server) guard(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.stats.panics.Add(1)
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", p))
			}
		}()
		if !s.ready.Load() {
			writeError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		enqueued := time.Now()
		release, err := s.admit(r.Context())
		if err != nil {
			if errors.Is(err, errSaturated) {
				s.stats.rejected.Add(1)
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests, "server at capacity; retry")
				return
			}
			if errors.Is(err, context.DeadlineExceeded) {
				s.stats.deadlines.Add(1)
				writeError(w, http.StatusGatewayTimeout, "deadline expired while queued")
				return
			}
			// The client gave up while queued.
			s.stats.canceled.Add(1)
			writeError(w, StatusClientClosedRequest, "client closed request while queued")
			return
		}
		defer release()
		// The admission wait becomes the explain report's first stage, so
		// a trace distinguishes "slow kernel" from "slow to get a slot".
		r = r.WithContext(context.WithValue(r.Context(), ctxKeyAdmissionWait, time.Since(enqueued)))
		s.stats.inflight.Add(1)
		defer s.stats.inflight.Add(-1)
		h(w, r)
	}
}

func (s *Server) handleGroupNN(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	opts, query, ok := s.buildQuery(w, req.Query, req.K, req.Algo, req.Agg)
	if !ok {
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	h := s.liveHandle()
	start := time.Now()
	// Every query runs explained: the probe is a few counter increments
	// and clock reads, and having the trace in hand is what lets the
	// slow-query log capture a query that only turned out slow at the
	// end. Results are bit-identical to the untraced call.
	res, ex, err := h.q.GroupNNExplainContext(ctx, query, opts...)
	elapsed := time.Since(start)
	if ex != nil {
		if wait := admissionWaitFrom(r.Context()); wait > 0 {
			ex.Stages = append([]gnn.StageTiming{
				{Name: "admission", Shard: -1, DurationUS: wait.Microseconds()},
			}, ex.Stages...)
		}
	}
	entry := slowEntry{
		Time:      slowStamp(time.Now()),
		RequestID: requestIDFrom(r.Context()),
		Endpoint:  "groupnn",
		ElapsedUS: elapsed.Microseconds(),
		K:         max(req.K, 1),
		GroupSize: len(query),
		Algo:      algoNames[parseAlgoID(strings.ToLower(req.Algo))],
		Agg:       normAgg(req.Agg),
		Explain:   ex,
	}
	if err != nil {
		// Failed queries compete for the slow log too — a deadline blowout
		// is exactly the kind of query an operator wants to see.
		entry.Outcome = outcomeLabel(err)
		if s.slow.record(entry) {
			s.metrics.slowLogged.Inc()
		}
		s.failQuery(w, err)
		return
	}
	s.stats.served.Add(1)
	us := uint64(elapsed.Microseconds())
	s.hist.observe(us)
	s.metrics.observeQuery(epGroupNN, parseAlgoID(strings.ToLower(req.Algo)), us)
	entry.Outcome = "ok"
	if s.slow.record(entry) {
		s.metrics.slowLogged.Inc()
	}
	var cost gnn.Cost
	if ex != nil {
		cost = ex.Cost
	}
	resp := QueryResponse{
		Results:    toJSONResults(res),
		Cost:       toJSONCost(cost),
		ElapsedUS:  elapsed.Microseconds(),
		Generation: h.generation,
	}
	if req.Trace {
		resp.Explain = ex
	}
	writeJSON(w, http.StatusOK, resp)
}

// normAgg canonicalises a request's aggregate label.
func normAgg(agg string) string {
	a := strings.ToLower(agg)
	if a == "" {
		return "sum"
	}
	return a
}

// outcomeLabel names a query error for the slow log.
func outcomeLabel(err error) string {
	switch {
	case errors.Is(err, gnn.ErrDeadlineExceeded):
		return "deadline"
	case errors.Is(err, gnn.ErrCanceled):
		return "canceled"
	default:
		return "error"
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		s.badRequest(w, "empty batch")
		return
	}
	queries := make([][]gnn.Point, len(req.Queries))
	for i, q := range req.Queries {
		pts, err := toPoints(q)
		if err != nil {
			s.badRequest(w, fmt.Sprintf("query %d: %v", i, err))
			return
		}
		queries[i] = pts
	}
	opts, ok := s.buildOptions(w, req.K, req.Algo, req.Agg)
	if !ok {
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	h := s.liveHandle()
	start := time.Now()
	out, err := h.q.GroupNNBatchContext(ctx, queries, opts...)
	elapsed := time.Since(start)
	if err != nil {
		// The whole batch was cut short by the request's own context;
		// classify like a single query (entries carry the per-query
		// detail, but the client is gone or out of time either way).
		s.failQuery(w, err)
		return
	}
	entries := make([]BatchEntryJSON, len(out))
	for i, br := range out {
		entries[i].Cost = toJSONCost(br.Cost)
		if br.Err != nil {
			entries[i].Error = br.Err.Error()
			continue
		}
		entries[i].Results = toJSONResults(br.Results)
	}
	s.stats.served.Add(1)
	us := uint64(elapsed.Microseconds())
	s.hist.observe(us)
	s.metrics.observeQuery(epBatch, parseAlgoID(strings.ToLower(req.Algo)), us)
	// A batch competes for the slow log as one unit: there is no
	// per-query explain, so GroupSize reports how many groups it carried.
	if s.slow.record(slowEntry{
		Time:      slowStamp(time.Now()),
		RequestID: requestIDFrom(r.Context()),
		Endpoint:  "batch",
		ElapsedUS: elapsed.Microseconds(),
		K:         max(req.K, 1),
		GroupSize: len(queries),
		Algo:      algoNames[parseAlgoID(strings.ToLower(req.Algo))],
		Agg:       normAgg(req.Agg),
		Outcome:   "ok",
	}) {
		s.metrics.slowLogged.Inc()
	}
	writeJSON(w, http.StatusOK, BatchResponse{
		Entries:    entries,
		ElapsedUS:  elapsed.Microseconds(),
		Generation: h.generation,
	})
}

// mutableHandle resolves the live handle's write surface, or fails the
// request. Both index kinds are mutable; the assertion only misses if a
// future Queryable implementation opts out of writes.
func (s *Server) mutableHandle(w http.ResponseWriter) (*handle, Mutable, bool) {
	h := s.liveHandle()
	m, ok := h.q.(Mutable)
	if !ok {
		writeError(w, http.StatusNotImplemented, "live index does not accept writes")
		return nil, nil, false
	}
	return h, m, true
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req MutateRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if len(req.Point) == 0 {
		s.badRequest(w, "empty point")
		return
	}
	h, m, ok := s.mutableHandle(w)
	if !ok {
		return
	}
	if err := m.Insert(gnn.Point(req.Point), req.ID); err != nil {
		s.badRequest(w, err.Error())
		return
	}
	s.stats.mutations.Add(1)
	st := h.q.Stats()
	writeJSON(w, http.StatusOK, MutateResponse{
		Delta: st.Delta, Tombstones: st.Tombstones, Generation: h.generation,
	})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req MutateRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if len(req.Point) == 0 {
		s.badRequest(w, "empty point")
		return
	}
	h, m, ok := s.mutableHandle(w)
	if !ok {
		return
	}
	deleted := m.Delete(gnn.Point(req.Point), req.ID)
	s.stats.mutations.Add(1)
	st := h.q.Stats()
	writeJSON(w, http.StatusOK, MutateResponse{
		Deleted: deleted,
		Delta:   st.Delta, Tombstones: st.Tombstones, Generation: h.generation,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var resp StatsResponse
	h := s.liveHandle()
	// Stats are taken live, not from the load-time snapshot: Points moves
	// with writes and the Overlay section must reflect the compactor's
	// current state.
	st := h.q.Stats()
	resp.Index.Path = h.path
	resp.Index.Generation = h.generation
	resp.Index.Points = st.Points
	resp.Index.Dim = st.Dim
	resp.Index.Shards = st.Shards
	resp.Index.ArenaBytes = st.ArenaBytes
	resp.Index.LoadedAt = h.loadedAt.UTC().Format(time.RFC3339)

	resp.Overlay.Delta = st.Delta
	resp.Overlay.Tombstones = st.Tombstones
	resp.Overlay.CompactionGen = st.CompactGen
	resp.Overlay.LastCompactionUS = st.LastCompaction.Microseconds()
	resp.Overlay.LastCompactionErr = st.LastCompactionError

	resp.Requests.Served = s.stats.served.Load()
	resp.Requests.Rejected = s.stats.rejected.Load()
	resp.Requests.Canceled = s.stats.canceled.Load()
	resp.Requests.Deadlines = s.stats.deadlines.Load()
	resp.Requests.Panics = s.stats.panics.Load()
	resp.Requests.BadReq = s.stats.badReq.Load()
	resp.Requests.Inflight = s.stats.inflight.Load()
	resp.Requests.Mutations = s.stats.mutations.Load()

	resp.Reload.OK = s.stats.reloads.Load()
	resp.Reload.Failed = s.stats.reloadsFailed.Load()
	if msg := s.stats.lastReloadErr.Load(); msg != nil {
		resp.Reload.LastError = *msg
	}

	p := s.hist.percentiles(0.50, 0.99, 0.999)
	resp.LatencyUS.Mean = s.hist.meanUS()
	resp.LatencyUS.P50, resp.LatencyUS.P99, resp.LatencyUS.P999 = p[0], p[1], p[2]

	rt := s.runtime.sample()
	resp.Runtime.Goroutines = runtime.NumGoroutine()
	resp.Runtime.HeapBytes = rt.heapBytes
	resp.Runtime.GCPauseP99US = rt.gcPauseP99US
	resp.Runtime.UptimeSeconds = time.Since(s.startedAt).Seconds()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var req ReloadRequest
	if r.ContentLength != 0 {
		if !s.readJSON(w, r, &req) {
			return
		}
	}
	h, err := s.Reload(req.Path)
	if err != nil {
		// 409: the daemon is healthy and still serving the previous
		// generation; only the proposed snapshot was rejected.
		writeError(w, http.StatusConflict, fmt.Sprintf("reload rejected, serving previous snapshot: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"generation": h.generation,
		"path":       h.path,
		"points":     h.stats.Points,
	})
}

// failQuery classifies a query error into its HTTP status and counter.
func (s *Server) failQuery(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, gnn.ErrDeadlineExceeded):
		s.stats.deadlines.Add(1)
		writeError(w, http.StatusGatewayTimeout, err.Error())
	case errors.Is(err, gnn.ErrCanceled):
		s.stats.canceled.Add(1)
		writeError(w, StatusClientClosedRequest, err.Error())
	case errors.Is(err, gnn.ErrSnapshotClosed):
		// Only reachable in a shutdown race; the request arrived as the
		// live handle was being torn down.
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		s.stats.badReq.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

// requestContext derives the per-request deadline: the request's own
// timeout_ms (clamped to MaxTimeout) or the server default, layered on
// the connection context so a disconnecting client cancels too.
func (s *Server) requestContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
	}
	return context.WithTimeout(r.Context(), d)
}

// readJSON decodes the request body, bounding its size and rejecting
// trailing garbage. Returns false (response already written) on error.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		s.badRequest(w, "bad request body: "+err.Error())
		return false
	}
	return true
}

// buildQuery validates and converts a request's query group + options.
func (s *Server) buildQuery(w http.ResponseWriter, raw [][]float64, k int, algo, agg string) ([]gnn.QueryOption, []gnn.Point, bool) {
	query, err := toPoints(raw)
	if err != nil {
		s.badRequest(w, err.Error())
		return nil, nil, false
	}
	opts, ok := s.buildOptions(w, k, algo, agg)
	if !ok {
		return nil, nil, false
	}
	return opts, query, true
}

func (s *Server) buildOptions(w http.ResponseWriter, k int, algo, agg string) ([]gnn.QueryOption, bool) {
	if k <= 0 {
		k = 1
	}
	opts := []gnn.QueryOption{gnn.WithK(k)}
	switch strings.ToLower(algo) {
	case "", "mbm":
	case "mqm":
		opts = append(opts, gnn.WithAlgorithm(gnn.AlgoMQM))
	case "spm":
		opts = append(opts, gnn.WithAlgorithm(gnn.AlgoSPM))
	case "brute":
		opts = append(opts, gnn.WithAlgorithm(gnn.AlgoBruteForce))
	default:
		s.badRequest(w, fmt.Sprintf("unknown algo %q (want mqm|spm|mbm|brute)", algo))
		return nil, false
	}
	switch strings.ToLower(agg) {
	case "", "sum":
	case "max":
		opts = append(opts, gnn.WithAggregate(gnn.MaxDist))
	case "min":
		opts = append(opts, gnn.WithAggregate(gnn.MinDist))
	default:
		s.badRequest(w, fmt.Sprintf("unknown agg %q (want sum|max|min)", agg))
		return nil, false
	}
	return opts, true
}

func (s *Server) badRequest(w http.ResponseWriter, msg string) {
	s.stats.badReq.Add(1)
	writeError(w, http.StatusBadRequest, msg)
}

func toPoints(raw [][]float64) ([]gnn.Point, error) {
	if len(raw) == 0 {
		return nil, errors.New("empty query group")
	}
	pts := make([]gnn.Point, len(raw))
	for i, c := range raw {
		if len(c) != len(raw[0]) || len(c) == 0 {
			return nil, fmt.Errorf("query point %d: inconsistent or empty coordinates", i)
		}
		pts[i] = gnn.Point(c)
	}
	return pts, nil
}

func toJSONResults(res []gnn.Result) []ResultJSON {
	out := make([]ResultJSON, len(res))
	for i, r := range res {
		out[i] = ResultJSON{ID: r.ID, Point: r.Point, Dist: r.Dist}
	}
	return out
}

func toJSONCost(c gnn.Cost) CostJSON {
	return CostJSON{
		NodeAccesses:    c.NodeAccesses,
		LogicalAccesses: c.LogicalAccesses,
		BufferHits:      c.BufferHits,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}
