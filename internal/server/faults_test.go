// Fault-injection suite for the serving daemon: every test drives one
// of the four engineered failure modes — corrupt hot reload, deadline /
// disconnect propagation, overload admission, and drain-during-traffic
// — and asserts the daemon's externally visible contract (status codes,
// counters, zero collateral failures). Run under -race; the suite is
// deliberately heavy on concurrent clients.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gnn"
)

// --- fixtures ---------------------------------------------------------

// buildSnapshot writes a fresh n-point snapshot and returns its path
// and the index it was written from (for differential checks).
func buildSnapshot(t *testing.T, dir, name string, n int, seed int64) (string, *gnn.Index) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := make([]gnn.Point, n)
	for i := range pts {
		pts[i] = gnn.Point{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := ix.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	return path, ix
}

// newSnapshotServer stands up a daemon over a real snapshot file.
func newSnapshotServer(t *testing.T, path string, mut func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{SnapshotPath: path}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// fakeIndex is an injectable Queryable whose queries block for delay
// (respecting the context) — the controllable "slow kernel" the
// deadline, overload and drain tests need. panicEvery>0 makes every
// n-th query panic, for the containment test.
type fakeIndex struct {
	delay      time.Duration
	panicEvery int64
	calls      atomic.Int64
	closed     atomic.Bool
}

func (f *fakeIndex) GroupNNWithCostContext(ctx context.Context, query []gnn.Point, opts ...gnn.QueryOption) ([]gnn.Result, gnn.Cost, error) {
	n := f.calls.Add(1)
	if f.panicEvery > 0 && n%f.panicEvery == 0 {
		panic("injected kernel panic")
	}
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return nil, gnn.Cost{}, gnn.ErrDeadlineExceeded
			}
			return nil, gnn.Cost{}, gnn.ErrCanceled
		}
	}
	return []gnn.Result{{Point: gnn.Point{1, 2}, ID: 7, Dist: 3}}, gnn.Cost{NodeAccesses: 1}, nil
}

func (f *fakeIndex) GroupNNExplainContext(ctx context.Context, query []gnn.Point, opts ...gnn.QueryOption) ([]gnn.Result, *gnn.QueryExplain, error) {
	res, cost, err := f.GroupNNWithCostContext(ctx, query, opts...)
	if err != nil {
		return nil, nil, err
	}
	return res, &gnn.QueryExplain{
		Algorithm: "MBM", Aggregate: "sum", Layout: "packed",
		K: 1, GroupSize: len(query), Cost: cost,
		Stages: []gnn.StageTiming{{Name: "query", Shard: -1, DurationUS: 1}},
	}, nil
}

func (f *fakeIndex) GroupNNBatchContext(ctx context.Context, queries [][]gnn.Point, opts ...gnn.QueryOption) ([]gnn.BatchResult, error) {
	out := make([]gnn.BatchResult, len(queries))
	for i := range queries {
		res, cost, err := f.GroupNNWithCostContext(ctx, queries[i], opts...)
		out[i] = gnn.BatchResult{Results: res, Cost: cost, Err: err}
	}
	return out, nil
}

func (f *fakeIndex) Stats() gnn.Stats { return gnn.Stats{Points: 1, Dim: 2} }
func (f *fakeIndex) Close() error     { f.closed.Store(true); return nil }

// newFakeServer stands up a daemon over an injected Queryable, skipping
// the snapshot open (package-internal plumbing; the HTTP surface is the
// real one).
func newFakeServer(t *testing.T, q Queryable, mut func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{SnapshotPath: "fake.snap"}
	if mut != nil {
		mut(&cfg)
	}
	s := &Server{cfg: cfg.withDefaults()}
	s.sem = make(chan struct{}, s.cfg.MaxInflight)
	s.live.Store(&handle{q: q, path: "fake.snap", generation: 1, stats: q.Stats(), loadedAt: time.Now()})
	s.mux = s.routes()
	s.ready.Store(true)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSON posts v and decodes the JSON response body into out (if
// non-nil), returning the status code.
func postJSON(t *testing.T, client *http.Client, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			t.Fatalf("decoding response: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

func getStats(t *testing.T, ts *httptest.Server) StatsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// --- baseline: the happy path over a real snapshot --------------------

// TestServeQueryEquivalence checks the HTTP path returns exactly what
// the library returns for the same query, for single and batch calls.
func TestServeQueryEquivalence(t *testing.T) {
	dir := t.TempDir()
	path, ix := buildSnapshot(t, dir, "a.snap", 3000, 11)
	_, ts := newSnapshotServer(t, path, nil)

	query := [][]float64{{100, 100}, {200, 250}, {160, 140}}
	for _, algo := range []string{"mqm", "spm", "mbm", "brute"} {
		var got QueryResponse
		status := postJSON(t, ts.Client(), ts.URL+"/v1/groupnn",
			QueryRequest{Query: query, K: 5, Algo: algo}, &got)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d", algo, status)
		}
		want, err := ix.GroupNN([]gnn.Point{{100, 100}, {200, 250}, {160, 140}}, gnn.WithK(5))
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Results) != len(want) {
			t.Fatalf("%s: %d results, want %d", algo, len(got.Results), len(want))
		}
		for i := range want {
			if got.Results[i].ID != want[i].ID || got.Results[i].Dist != want[i].Dist {
				t.Fatalf("%s: result %d = %+v, want %+v", algo, i, got.Results[i], want[i])
			}
		}
		if got.Generation != 1 {
			t.Fatalf("generation %d on first load", got.Generation)
		}
	}

	var batch BatchResponse
	status := postJSON(t, ts.Client(), ts.URL+"/v1/batch",
		BatchRequest{Queries: [][][]float64{query, query}, K: 2}, &batch)
	if status != http.StatusOK || len(batch.Entries) != 2 {
		t.Fatalf("batch: status %d entries %d", status, len(batch.Entries))
	}
	for i, e := range batch.Entries {
		if e.Error != "" || len(e.Results) != 2 {
			t.Fatalf("batch entry %d: %+v", i, e)
		}
	}
}

// TestServeBadRequests checks the 400 surface: malformed JSON, empty
// group, unknown algorithm, oversized body.
func TestServeBadRequests(t *testing.T) {
	dir := t.TempDir()
	path, _ := buildSnapshot(t, dir, "a.snap", 500, 12)
	_, ts := newSnapshotServer(t, path, func(c *Config) { c.MaxBodyBytes = 1 << 10 })

	cases := []struct {
		name string
		body string
	}{
		{"malformed", `{"query": [[1,2]`},
		{"empty group", `{"query": []}`},
		{"unknown algo", `{"query": [[1,2]], "algo": "dijkstra"}`},
		{"unknown field", `{"query": [[1,2]], "frobnicate": true}`},
		{"ragged points", `{"query": [[1,2],[3]]}`},
		{"oversized", `{"query": [[` + strings.Repeat("1,", 2000) + `1]]}`},
	}
	for _, tc := range cases {
		resp, err := ts.Client().Post(ts.URL+"/v1/groupnn", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	if s := getStats(t, ts); s.Requests.BadReq != uint64(len(cases)) {
		t.Fatalf("bad_request counter %d, want %d", s.Requests.BadReq, len(cases))
	}
}

// --- failure mode 1: corrupt hot reload -------------------------------

// TestReloadFaults is the corrupt-reload gate: truncated and bit-flipped
// snapshots are rejected (409, failure surfaced in stats), the live
// index keeps answering with zero failed queries throughout, and a good
// snapshot then swaps in cleanly under the same query storm.
func TestReloadFaults(t *testing.T) {
	dir := t.TempDir()
	pathA, _ := buildSnapshot(t, dir, "a.snap", 3000, 21)
	pathB, _ := buildSnapshot(t, dir, "b.snap", 4000, 22)
	srv, ts := newSnapshotServer(t, pathA, nil)

	// Corrupt variants of B.
	data, err := os.ReadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	truncated := filepath.Join(dir, "trunc.snap")
	if err := os.WriteFile(truncated, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	flipped := filepath.Join(dir, "flip.snap")
	bad := bytes.Clone(data)
	bad[len(bad)/2] ^= 0x40 // flip a payload bit: caught by section CRC
	if err := os.WriteFile(flipped, bad, 0o644); err != nil {
		t.Fatal(err)
	}

	// Query storm for the whole scenario; every response must be 200.
	var failures atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				status := postJSON(t, ts.Client(), ts.URL+"/v1/groupnn",
					QueryRequest{Query: [][]float64{{500, 500}, {510, 520}}, K: 3}, nil)
				if status != http.StatusOK {
					failures.Add(1)
				}
			}
		}()
	}

	reload := func(path string) int {
		return postJSON(t, ts.Client(), ts.URL+"/admin/reload", ReloadRequest{Path: path}, nil)
	}
	if status := reload(truncated); status != http.StatusConflict {
		t.Errorf("truncated reload: status %d, want 409", status)
	}
	if status := reload(flipped); status != http.StatusConflict {
		t.Errorf("bit-flipped reload: status %d, want 409", status)
	}
	if status := reload(filepath.Join(dir, "missing.snap")); status != http.StatusConflict {
		t.Errorf("missing-file reload: status %d, want 409", status)
	}
	st := getStats(t, ts)
	if st.Reload.Failed != 3 || st.Reload.OK != 0 {
		t.Errorf("reload counters after faults: %+v", st.Reload)
	}
	if st.Reload.LastError == "" || st.Index.Generation != 1 {
		t.Errorf("fault not surfaced: lastError=%q generation=%d", st.Reload.LastError, st.Index.Generation)
	}

	// Good reload under the same storm: swaps live, old drains.
	var ok map[string]any
	if status := postJSON(t, ts.Client(), ts.URL+"/admin/reload", ReloadRequest{Path: pathB}, &ok); status != http.StatusOK {
		t.Fatalf("good reload: status %d", status)
	}
	st = getStats(t, ts)
	if st.Reload.OK != 1 || st.Reload.LastError != "" {
		t.Errorf("reload stats after success: %+v", st.Reload)
	}
	if st.Index.Points != 4000 || st.Index.Path != pathB {
		t.Errorf("live index after reload: %+v", st.Index)
	}

	close(stop)
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d queries failed during reload faults; want 0", n)
	}
	// SIGHUP path reuses the same entry point.
	if _, err := srv.Reload(""); err != nil {
		t.Fatalf("empty-path reload (SIGHUP) failed: %v", err)
	}
	if st := getStats(t, ts); st.Reload.OK != 2 {
		t.Fatalf("SIGHUP reload not counted: %+v", st.Reload)
	}
}

// --- failure mode 2: deadlines and disconnects ------------------------

// TestDeadlinePropagation checks a request whose deadline fires
// mid-query returns 504 with the typed error within 50ms of the
// deadline, and the daemon counts it.
func TestDeadlinePropagation(t *testing.T) {
	fake := &fakeIndex{delay: 10 * time.Second}
	_, ts := newFakeServer(t, fake, nil)

	const timeoutMS = 30
	start := time.Now()
	var out ErrorResponse
	status := postJSON(t, ts.Client(), ts.URL+"/v1/groupnn",
		QueryRequest{Query: [][]float64{{1, 2}}, TimeoutMS: timeoutMS}, &out)
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", status)
	}
	if !strings.Contains(out.Error, "deadline") {
		t.Fatalf("error %q does not name the deadline", out.Error)
	}
	deadline := time.Duration(timeoutMS) * time.Millisecond
	if elapsed > deadline+50*time.Millisecond {
		t.Fatalf("response took %v, want within 50ms of the %v deadline", elapsed, deadline)
	}
	if s := getStats(t, ts); s.Requests.Deadlines != 1 {
		t.Fatalf("deadline counter %d, want 1", s.Requests.Deadlines)
	}
}

// TestSlowLorisRealKernel is the end-to-end deadline test against a
// real traversal (not the fake): a tiny timeout on a large brute-force
// scan must come back 504 promptly, with partial cost accounted.
func TestSlowLorisRealKernel(t *testing.T) {
	dir := t.TempDir()
	path, _ := buildSnapshot(t, dir, "big.snap", 150000, 31)
	_, ts := newSnapshotServer(t, path, nil)

	// Many sequential brute-force queries under a 1ms budget: each must
	// fail typed and fast, never pin the worker for the full scan.
	query := make([][]float64, 64)
	for i := range query {
		query[i] = []float64{float64(i), float64(i)}
	}
	start := time.Now()
	for i := 0; i < 5; i++ {
		var out ErrorResponse
		status := postJSON(t, ts.Client(), ts.URL+"/v1/groupnn",
			QueryRequest{Query: query, K: 64, Algo: "brute", TimeoutMS: 1}, &out)
		// A 1ms budget may round to done-before-start (504) only; 200 is
		// impossible on this size at brute force × 64 query points unless
		// the machine is absurdly fast — accept it but require typed
		// failure otherwise.
		if status != http.StatusGatewayTimeout && status != http.StatusOK {
			t.Fatalf("query %d: status %d body %q", i, status, out.Error)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("5 deadline-bounded queries took %v; cancellation is not unwinding", elapsed)
	}
}

// TestClientDisconnect checks a dropped connection cancels the running
// query: the daemon counts a cancellation and the worker unblocks.
func TestClientDisconnect(t *testing.T) {
	fake := &fakeIndex{delay: 10 * time.Second}
	s, ts := newFakeServer(t, fake, nil)

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(QueryRequest{Query: [][]float64{{1, 2}}, TimeoutMS: 60_000})
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/groupnn", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := ts.Client().Do(req)
		done <- err
	}()
	// Wait for the query to be inflight, then hang up.
	waitFor(t, time.Second, func() bool { return s.stats.inflight.Load() == 1 })
	cancel()
	if err := <-done; err == nil {
		t.Fatal("expected client-side error after cancel")
	}
	waitFor(t, time.Second, func() bool { return s.stats.canceled.Load() == 1 })
	waitFor(t, time.Second, func() bool { return s.stats.inflight.Load() == 0 })
}

// TestPanicContainment checks a panicking kernel becomes a 500 and the
// daemon keeps serving (same connection pool, subsequent queries fine).
func TestPanicContainment(t *testing.T) {
	fake := &fakeIndex{panicEvery: 2} // every 2nd query panics
	_, ts := newFakeServer(t, fake, nil)

	var got [4]int
	for i := range got {
		got[i] = postJSON(t, ts.Client(), ts.URL+"/v1/groupnn",
			QueryRequest{Query: [][]float64{{1, 2}}}, nil)
	}
	want := [4]int{200, 500, 200, 500}
	if got != want {
		t.Fatalf("status sequence %v, want %v", got, want)
	}
	if s := getStats(t, ts); s.Requests.Panics != 2 || s.Requests.Served != 2 {
		t.Fatalf("counters: %+v", s.Requests)
	}
}

// --- failure mode 3: overload -----------------------------------------

// TestOverloadAdmission floods a 2-slot daemon with slow queries and
// checks the contract: exactly the admitted requests run, the rest get
// 429 + Retry-After within the queue-wait bound — never an unbounded
// queue — and the daemon recovers to serve normally afterwards.
func TestOverloadAdmission(t *testing.T) {
	fake := &fakeIndex{delay: 300 * time.Millisecond}
	_, ts := newFakeServer(t, fake, func(c *Config) {
		c.MaxInflight = 2
		c.QueueWait = 50 * time.Millisecond
	})

	const clients = 20
	var ok, rejected atomic.Int64
	var slowest atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			body, _ := json.Marshal(QueryRequest{Query: [][]float64{{1, 2}}, TimeoutMS: 5_000})
			resp, err := ts.Client().Post(ts.URL+"/v1/groupnn", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("transport error: %v", err)
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests:
				rejected.Add(1)
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				// A rejection must come back within the queue-wait bound
				// (plus slack), not after queuing behind the slow queries.
				if e := time.Since(start); e > time.Second {
					t.Errorf("429 took %v; queue is not bounded", e)
				}
			default:
				t.Errorf("status %d", resp.StatusCode)
			}
			if e := int64(time.Since(start)); e > slowest.Load() {
				slowest.Store(e)
			}
		}()
	}
	wg.Wait()
	if ok.Load() == 0 || rejected.Load() == 0 || ok.Load()+rejected.Load() != clients {
		t.Fatalf("ok=%d rejected=%d (want both >0, summing to %d)", ok.Load(), rejected.Load(), clients)
	}
	s := getStats(t, ts)
	if s.Requests.Rejected != uint64(rejected.Load()) {
		t.Fatalf("rejected counter %d, want %d", s.Requests.Rejected, rejected.Load())
	}
	// Recovery: with the storm gone, a query sails through.
	fake.delay = 0
	if status := postJSON(t, ts.Client(), ts.URL+"/v1/groupnn",
		QueryRequest{Query: [][]float64{{1, 2}}}, nil); status != http.StatusOK {
		t.Fatalf("post-storm query: status %d", status)
	}
}

// --- failure mode 4: drain and shutdown -------------------------------

// TestGracefulDrain runs the SIGTERM sequence against live traffic:
// readiness flips first, inflight requests complete with 200 during the
// drain, late arrivals get 503, and Close unmaps only after the drain.
func TestGracefulDrain(t *testing.T) {
	fake := &fakeIndex{delay: 200 * time.Millisecond}
	s, ts := newFakeServer(t, fake, nil)

	// Slow query inflight before the drain starts.
	inflight := make(chan int, 1)
	go func() {
		inflight <- postJSON(t, ts.Client(), ts.URL+"/v1/groupnn",
			QueryRequest{Query: [][]float64{{1, 2}}, TimeoutMS: 5_000}, nil)
	}()
	waitFor(t, time.Second, func() bool { return s.stats.inflight.Load() == 1 })

	// SIGTERM step 1: readiness off.
	s.NotReady()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", resp.StatusCode)
	}
	// healthz stays green: the process is alive, just not accepting.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: %d, want 200", resp.StatusCode)
	}
	// New queries are refused while draining.
	if status := postJSON(t, ts.Client(), ts.URL+"/v1/groupnn",
		QueryRequest{Query: [][]float64{{1, 2}}}, nil); status != http.StatusServiceUnavailable {
		t.Fatalf("query during drain: status %d, want 503", status)
	}
	// The inflight request still completes successfully.
	if status := <-inflight; status != http.StatusOK {
		t.Fatalf("inflight request during drain: status %d, want 200", status)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if !fake.closed.Load() {
		t.Fatal("index not closed after drain")
	}
}

// TestDrainRealSnapshot is TestGracefulDrain end-to-end over a real
// mapped snapshot and real http.Server.Shutdown: inflight queries all
// land 200, the mapping is unmapped only after, and a post-close query
// through a stale handle fails typed rather than faulting.
func TestDrainRealSnapshot(t *testing.T) {
	dir := t.TempDir()
	path, _ := buildSnapshot(t, dir, "a.snap", 5000, 41)
	srv, err := New(Config{SnapshotPath: path})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())

	var failures atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				status := postJSON(t, hs.Client(), hs.URL+"/v1/groupnn",
					QueryRequest{Query: [][]float64{{500, 500}, {490, 510}}, K: 2}, nil)
				if status != http.StatusOK && status != http.StatusServiceUnavailable {
					failures.Add(1)
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	srv.NotReady()
	close(stop)
	wg.Wait()
	hs.Close() // httptest.Close waits for outstanding handlers — the drain
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d queries failed during drain; want only 200/503", n)
	}
	// Stale access after close: typed error, no fault.
	h := srv.liveHandle()
	if _, _, err := h.q.GroupNNWithCostContext(context.Background(), []gnn.Point{{1, 2}}); !errors.Is(err, gnn.ErrSnapshotClosed) {
		t.Fatalf("query after close: %v, want ErrSnapshotClosed", err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHistogram pins the latency histogram's bucketing and percentile
// read-out (monotone, ≤2× upper-bound bias).
func TestHistogram(t *testing.T) {
	var h histogram
	for _, us := range []uint64{0, 1, 2, 3, 100, 1000, 1000, 1000, 100000} {
		h.observe(us)
	}
	p := h.percentiles(0.50, 0.99, 0.999)
	if p[0] > p[1] || p[1] > p[2] {
		t.Fatalf("percentiles not monotone: %v", p)
	}
	// p50 of the 9 samples is 100µs → bucket upper bound 128.
	if p[0] != 128 {
		t.Fatalf("p50 = %d, want 128", p[0])
	}
	if p[2] != 131072 { // 100000µs → 2^17
		t.Fatalf("p999 = %d, want 131072", p[2])
	}
	if h.meanUS() == 0 {
		t.Fatal("mean lost")
	}
	var empty histogram
	if p := empty.percentiles(0.5); p[0] != 0 {
		t.Fatalf("empty histogram p50 = %d", p[0])
	}
}

// TestSniffKind covers the open-path dispatch: plain vs sharded vs junk.
func TestSniffKind(t *testing.T) {
	dir := t.TempDir()
	plain, _ := buildSnapshot(t, dir, "p.snap", 100, 51)
	if _, err := New(Config{SnapshotPath: plain}); err != nil {
		t.Fatalf("plain open: %v", err)
	}

	rng := rand.New(rand.NewSource(52))
	pts := make([]gnn.Point, 500)
	for i := range pts {
		pts[i] = gnn.Point{rng.Float64(), rng.Float64()}
	}
	sx, err := gnn.BuildShardedIndex(pts, nil, 3, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sharded := filepath.Join(dir, "s.snap")
	if err := sx.WriteSnapshotFile(sharded); err != nil {
		t.Fatal(err)
	}
	sx.Close()
	srv, err := New(Config{SnapshotPath: sharded})
	if err != nil {
		t.Fatalf("sharded open: %v", err)
	}
	if st := srv.liveHandle().stats; st.Shards != 3 {
		t.Fatalf("sharded handle stats: %+v", st)
	}
	srv.Close()

	junk := filepath.Join(dir, "junk.snap")
	if err := os.WriteFile(junk, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{SnapshotPath: junk}); !errors.Is(err, gnn.ErrSnapshotBadMagic) {
		t.Fatalf("junk open: %v, want ErrSnapshotBadMagic", err)
	}
}
