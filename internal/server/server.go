// Package server implements the gnnserve HTTP daemon: a JSON query API
// over memory-mapped index snapshots, engineered for failure first.
//
// The serving core is an atomic handle swap. Queries load the live
// index handle through an atomic.Pointer, so a hot reload (SIGHUP or
// POST /admin/reload) stages the new snapshot with eager verification,
// swaps the pointer, and lets the old index drain through its
// refcounted Close — queries that started against the old mapping
// finish against it, queries that start after the swap see the new one,
// and a snapshot that fails verification never becomes live (the
// failure is surfaced in /v1/stats and the previous index keeps
// serving). Around that core sit admission control (a max-inflight
// semaphore with bounded queue wait; saturation returns 429 +
// Retry-After rather than queueing unboundedly), per-request deadline
// propagation into the traversal kernels (slow or disconnected clients
// get typed 499/504 failures within a bounded number of node visits,
// never a pinned worker), per-request panic containment, and a
// SIGTERM drain that flips /readyz before the listener stops.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gnn"
	"gnn/internal/snapshot"
)

// Queryable is the serving surface the daemon needs from an index,
// satisfied by both *gnn.Index and *gnn.ShardedIndex. The explain
// variant powers /v1/groupnn: its trace feeds the slow-query log and
// the opt-in "trace" echo, and collecting it never changes results.
type Queryable interface {
	GroupNNWithCostContext(ctx context.Context, query []gnn.Point, opts ...gnn.QueryOption) ([]gnn.Result, gnn.Cost, error)
	GroupNNExplainContext(ctx context.Context, query []gnn.Point, opts ...gnn.QueryOption) ([]gnn.Result, *gnn.QueryExplain, error)
	GroupNNBatchContext(ctx context.Context, queries [][]gnn.Point, opts ...gnn.QueryOption) ([]gnn.BatchResult, error)
	Stats() gnn.Stats
	Close() error
}

// Mutable is the write surface behind POST /v1/insert and /v1/delete,
// satisfied by both index kinds: writes land in the delta overlay while
// the mapped base keeps serving.
type Mutable interface {
	Insert(p gnn.Point, id int64) error
	Delete(p gnn.Point, id int64) bool
}

// compactable is the background-maintenance surface of both index kinds.
type compactable interface {
	StartCompactor(gnn.CompactorConfig) error
}

// Config tunes the daemon. Zero values select the documented defaults.
type Config struct {
	// SnapshotPath is the snapshot file to serve (required). Reload
	// reopens this path unless the reload request names another file.
	SnapshotPath string
	// MaxInflight caps concurrently executing queries (default
	// 2×GOMAXPROCS). Requests beyond the cap wait at most QueueWait for
	// a slot, then fail with 429.
	MaxInflight int
	// QueueWait bounds how long an over-cap request may wait for an
	// execution slot (default 100ms). The bound is what keeps overload
	// from building an unbounded queue of goroutines.
	QueueWait time.Duration
	// DefaultTimeout applies to requests that set no timeout_ms
	// (default 2s); MaxTimeout clamps what a request may ask for
	// (default 30s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DrainTimeout bounds the graceful-shutdown drain (default 10s):
	// inflight requests get that long to finish after SIGTERM before
	// the listener is torn down regardless.
	DrainTimeout time.Duration
	// MaxBodyBytes caps a request body (default 8 MiB).
	MaxBodyBytes int64
	// BufferPages is passed through to the snapshot open as
	// WithSnapshotBuffer.
	BufferPages int
	// EagerVerify verifies the initial open eagerly too (reloads always
	// verify eagerly; for the initial open it is optional so a huge
	// snapshot can start serving before its pages are faulted in).
	EagerVerify bool
	// CompactThreshold, when positive, starts a background compactor on
	// every opened index: once the write overlay (inserts + tombstones)
	// reaches this size, it is folded into a fresh base off the hot path
	// and the serving snapshot file is rotated crash-safely. Zero
	// disables background compaction (writes still work; the overlay
	// just grows until an operator compacts).
	CompactThreshold int
	// CompactInterval is the compactor poll period (default 50ms when
	// the compactor is enabled).
	CompactInterval time.Duration
	// SlowLogSize is how many of the slowest queries /debug/slowlog
	// retains, each with its explain trace (default 32).
	SlowLogSize int
	// Logger receives one structured line per request (nil = discard).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 100 * time.Millisecond
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// handle is one generation of the serving state. The Server publishes
// the live one through an atomic pointer; a reload builds a fresh
// handle and swaps it in whole, so a query always sees one consistent
// (index, generation, path) triple.
type handle struct {
	q          Queryable
	path       string
	generation uint64
	stats      gnn.Stats
	loadedAt   time.Time
}

// Server is the daemon state. Create with New, mount via Handler, and
// drive reload/shutdown with Reload and Shutdown (or cmd/gnnserve's
// signal loop).
type Server struct {
	cfg  Config
	live atomic.Pointer[handle]
	// sem is the admission semaphore: a slot must be acquired before a
	// query executes, and release is by channel receive.
	sem   chan struct{}
	ready atomic.Bool

	// reloadMu serialises reloads (two concurrent swaps would race the
	// drain of the displaced handle); generation counts successful ones.
	reloadMu   sync.Mutex
	generation atomic.Uint64

	stats statsCounters
	hist  histogram
	mux   *http.ServeMux

	// Observability plane, built once by initTelemetry: the Prometheus
	// registry and pre-registered series, the slow-query log, the shared
	// runtime/metrics sampler, the request logger and the ID generator.
	metrics   *serverMetrics
	slow      *slowLog
	runtime   *runtimeSampler
	logger    *slog.Logger
	reqIDs    *reqIDGen
	startedAt time.Time
}

// statsCounters are the daemon's monotonic failure-mode counters,
// exposed by /v1/stats. Everything is atomic: the hot path never takes
// a lock to account an outcome.
type statsCounters struct {
	served    atomic.Uint64 // 2xx query responses
	rejected  atomic.Uint64 // 429 admission rejections
	canceled  atomic.Uint64 // client-gone cancellations (499)
	deadlines atomic.Uint64 // deadline-exceeded failures (504)
	panics    atomic.Uint64 // recovered per-request panics (500)
	badReq    atomic.Uint64 // malformed requests (4xx)
	inflight  atomic.Int64  // currently executing queries
	mutations atomic.Uint64 // accepted inserts + deletes

	reloads       atomic.Uint64 // successful hot reloads
	reloadsFailed atomic.Uint64 // rejected reloads (live index kept)
	lastReloadErr atomic.Pointer[string]
}

// New opens the snapshot at cfg.SnapshotPath and returns a ready
// server. The open maps the file zero-copy when the platform allows and
// auto-detects plain vs sharded snapshots from the header.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, sem: make(chan struct{}, cfg.MaxInflight)}
	s.initTelemetry()
	h, err := s.open(cfg.SnapshotPath, cfg.EagerVerify)
	if err != nil {
		return nil, err
	}
	s.live.Store(h)
	s.mux = s.routes()
	s.ready.Store(true)
	return s, nil
}

// initTelemetry builds the observability plane. Idempotent: New calls
// it up front and routes calls it again so a hand-assembled Server (the
// fault-injection tests) gets the same plane. Registration renders
// every label string here, once; the request path only touches the
// pre-resolved series.
func (s *Server) initTelemetry() {
	if s.metrics != nil {
		return
	}
	s.startedAt = time.Now()
	s.runtime = newRuntimeSampler()
	s.slow = newSlowLog(s.cfg.SlowLogSize)
	s.reqIDs = newReqIDGen()
	s.logger = s.cfg.Logger
	if s.logger == nil {
		s.logger = slog.New(slog.DiscardHandler)
	}
	s.metrics = newServerMetrics(s)
}

// open maps the snapshot at path into a fresh handle (not yet live).
func (s *Server) open(path string, eager bool) (*handle, error) {
	kind, err := sniffKind(path)
	if err != nil {
		return nil, err
	}
	opts := []gnn.SnapshotOption{gnn.WithSnapshotBuffer(s.cfg.BufferPages)}
	if eager {
		opts = append(opts, gnn.WithEagerVerify())
	}
	var q Queryable
	if kind == snapshot.KindSharded {
		q, err = gnn.OpenShardedSnapshotMapped(path, opts...)
	} else {
		q, err = gnn.OpenSnapshotMapped(path, opts...)
	}
	if err != nil {
		return nil, err
	}
	// Background compaction is per-handle: the displaced handle's Close
	// stops its compactor (waiting out an in-flight cycle) as part of the
	// drain, and the fresh handle gets its own. The rotation path is the
	// file being served — a successful cycle atomically replaces it, so
	// the next reload or cold start picks up the folded state.
	if s.cfg.CompactThreshold > 0 {
		if c, ok := q.(compactable); ok {
			if cerr := c.StartCompactor(gnn.CompactorConfig{
				Threshold: s.cfg.CompactThreshold,
				Interval:  s.cfg.CompactInterval,
				Path:      path,
			}); cerr != nil {
				q.Close()
				return nil, fmt.Errorf("starting compactor: %w", cerr)
			}
		}
	}
	return &handle{
		q: q, path: path,
		generation: s.generation.Add(1),
		stats:      q.Stats(),
		loadedAt:   time.Now(),
	}, nil
}

// sniffKind reads the snapshot header to decide plain vs sharded, so
// the file is opened with the matching constructor on the first try.
func sniffKind(path string) (snapshot.Kind, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	head := make([]byte, snapshot.SniffLen)
	n, err := io.ReadFull(f, head)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return 0, fmt.Errorf("sniffing %s: %w", path, err)
	}
	kind, ok := snapshot.Sniff(head[:n])
	if !ok {
		return 0, fmt.Errorf("%s: %w", path, gnn.ErrSnapshotBadMagic)
	}
	return kind, nil
}

// Generation reports the handle's reload generation (for logging by
// the command; the type itself stays internal to the package).
func (h *handle) Generation() uint64 { return h.generation }

// Handler returns the daemon's HTTP handler (all endpoints mounted).
func (s *Server) Handler() http.Handler { return s.mux }

// liveHandle returns the current serving handle. Never nil after New.
func (s *Server) liveHandle() *handle { return s.live.Load() }

// Reload stages the snapshot at path (empty = the path the live handle
// was loaded from), verifies it eagerly, and swaps it live. On any
// failure — unreadable file, bad magic, checksum or version mismatch —
// the live index is untouched and keeps serving, the error is recorded
// for /v1/stats, and the same error is returned. On success the
// displaced index drains its inflight queries and unmaps in the
// background.
func (s *Server) Reload(path string) (*handle, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	old := s.live.Load()
	if path == "" {
		path = old.path
	}
	// Eager verification is what makes the swap safe to publish: a
	// handle that opened cleanly here can no longer fail a query with
	// ErrSnapshotChecksum later.
	h, err := s.open(path, true)
	if err != nil {
		s.stats.reloadsFailed.Add(1)
		s.metrics.reloadsFailed.Inc()
		msg := err.Error()
		s.stats.lastReloadErr.Store(&msg)
		return nil, err
	}
	s.live.Store(h)
	s.stats.reloads.Add(1)
	s.metrics.reloadsOK.Inc()
	s.stats.lastReloadErr.Store(nil)
	// The old mapping drains via its refcount: Close blocks until the
	// last query that acquired it finishes, so it must not run on this
	// (or any request's) goroutine.
	go old.q.Close()
	return h, nil
}

// NotReady flips readiness off (load balancers stop routing here).
// Called at the start of a graceful shutdown, before the drain.
func (s *Server) NotReady() { s.ready.Store(false) }

// Close drains and unmaps the live index. Call after the HTTP listener
// has fully shut down.
func (s *Server) Close() error {
	s.ready.Store(false)
	if h := s.live.Load(); h != nil {
		return h.q.Close()
	}
	return nil
}

// DrainTimeout exposes the configured shutdown grace to the command.
func (s *Server) DrainTimeout() time.Duration { return s.cfg.DrainTimeout }

// admit acquires an execution slot, waiting at most QueueWait (or the
// request's own remaining deadline, whichever ends first). It returns a
// release function, or an error classifying the rejection.
var errSaturated = errors.New("server: at capacity")

func (s *Server) admit(ctx context.Context) (func(), error) {
	select {
	case s.sem <- struct{}{}: // fast path: free slot, no timer
		return s.release, nil
	default:
	}
	s.metrics.queueDepth.Add(1)
	defer s.metrics.queueDepth.Add(-1)
	t := time.NewTimer(s.cfg.QueueWait)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return s.release, nil
	case <-t.C:
		return nil, errSaturated
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (s *Server) release() { <-s.sem }
