package server

import (
	"math/bits"
	"sync/atomic"
)

// histogram is a lock-free latency histogram with power-of-two buckets
// of microseconds: bucket i counts observations in [2^(i-1), 2^i) µs
// (bucket 0 is sub-microsecond). 40 buckets cover ~12.7 days, far past
// any request the daemon would still be serving. Recording is one
// atomic increment; percentile reads scan the 40 counters, which is
// cheap enough for a stats endpoint polled every few seconds.
type histogram struct {
	buckets [40]atomic.Uint64
	count   atomic.Uint64
	sumUS   atomic.Uint64
}

// observe records a request latency.
func (h *histogram) observe(us uint64) {
	i := bits.Len64(us)
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
}

// snapshotCounts copies the buckets (the copy is not atomic across
// buckets; percentile answers are approximate under concurrent load,
// which is all a monitoring endpoint needs).
func (h *histogram) snapshotCounts() (counts [40]uint64, total uint64) {
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return counts, total
}

// percentiles returns the requested quantiles in microseconds, each as
// the upper bound of the bucket holding that rank — a ≤2× overestimate,
// stable and monotone, which is the right bias for alerting. Returns
// zeros when nothing was recorded.
func (h *histogram) percentiles(qs ...float64) []uint64 {
	counts, total := h.snapshotCounts()
	out := make([]uint64, len(qs))
	if total == 0 {
		return out
	}
	for qi, q := range qs {
		rank := uint64(q * float64(total))
		if rank >= total {
			rank = total - 1
		}
		var cum uint64
		for i, c := range counts {
			cum += c
			if cum > rank {
				out[qi] = bucketUpperUS(i)
				break
			}
		}
	}
	return out
}

// bucketUpperUS is the exclusive upper bound of bucket i in µs.
func bucketUpperUS(i int) uint64 {
	if i == 0 {
		return 1
	}
	return uint64(1) << i
}

// meanUS returns the average recorded latency in microseconds.
func (h *histogram) meanUS() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sumUS.Load()) / float64(n)
}
