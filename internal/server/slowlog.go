package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gnn"
)

// slowEntry is one retained slow query, served by GET /debug/slowlog.
type slowEntry struct {
	Time      string            `json:"time"`
	RequestID string            `json:"request_id,omitempty"`
	Endpoint  string            `json:"endpoint"`
	ElapsedUS int64             `json:"elapsed_us"`
	K         int               `json:"k"`
	GroupSize int               `json:"group_size"`
	Algo      string            `json:"algo"`
	Agg       string            `json:"agg"`
	Outcome   string            `json:"outcome"`
	Explain   *gnn.QueryExplain `json:"explain,omitempty"`
}

// slowLog retains the N slowest queries seen so far, each with its
// explain trace. The design is lock-light: once the log is full, its
// minimum retained latency is published in an atomic, and the common
// case — a query faster than everything already retained — is a single
// load and compare. Only a query that actually qualifies takes the
// mutex to displace the current minimum.
type slowLog struct {
	// floorUS is the smallest ElapsedUS currently retained once the log
	// is full (0 while filling): the admission fast path.
	floorUS atomic.Uint64
	mu      sync.Mutex
	entries []slowEntry
	cap     int
}

const defaultSlowLogSize = 32

func newSlowLog(capacity int) *slowLog {
	if capacity <= 0 {
		capacity = defaultSlowLogSize
	}
	return &slowLog{entries: make([]slowEntry, 0, capacity), cap: capacity}
}

// record offers a completed query. Returns true when it was retained.
func (l *slowLog) record(e slowEntry) bool {
	if uint64(e.ElapsedUS) < l.floorUS.Load() {
		return false // faster than everything retained; no lock taken
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) < l.cap {
		l.entries = append(l.entries, e)
		if len(l.entries) == l.cap {
			l.floorUS.Store(l.minLocked())
		}
		return true
	}
	// Full: displace the current minimum (re-check under the lock — the
	// atomic floor may be stale by one concurrent insert).
	minI := 0
	for i := range l.entries {
		if l.entries[i].ElapsedUS < l.entries[minI].ElapsedUS {
			minI = i
		}
	}
	if e.ElapsedUS <= l.entries[minI].ElapsedUS {
		return false
	}
	l.entries[minI] = e
	l.floorUS.Store(l.minLocked())
	return true
}

func (l *slowLog) minLocked() uint64 {
	m := l.entries[0].ElapsedUS
	for _, e := range l.entries[1:] {
		if e.ElapsedUS < m {
			m = e.ElapsedUS
		}
	}
	return uint64(m)
}

// snapshot returns the retained entries, slowest first.
func (l *slowLog) snapshot() []slowEntry {
	l.mu.Lock()
	out := make([]slowEntry, len(l.entries))
	copy(out, l.entries)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ElapsedUS > out[j].ElapsedUS })
	return out
}

// slowStamp formats the entry timestamp (UTC, RFC3339 with µs).
func slowStamp(t time.Time) string { return t.UTC().Format("2006-01-02T15:04:05.000000Z") }
