package server

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"
)

// ctxKey keys the per-request values the guard hands to handlers.
type ctxKey int

const (
	ctxKeyRequestID ctxKey = iota
	ctxKeyAdmissionWait
)

// requestIDFrom returns the request's ID, "" when unset (direct handler
// tests that bypass the instrument wrapper).
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// admissionWaitFrom returns how long the request queued for an
// admission slot, 0 for un-throttled or fast-path admissions.
func admissionWaitFrom(ctx context.Context) time.Duration {
	d, _ := ctx.Value(ctxKeyAdmissionWait).(time.Duration)
	return d
}

// reqIDGen issues request IDs: an 8-hex process nonce (so IDs from
// different daemon runs never collide in aggregated logs) plus a
// monotonic sequence number.
type reqIDGen struct {
	nonce uint32
	seq   atomic.Uint64
}

func newReqIDGen() *reqIDGen {
	var b [4]byte
	crand.Read(b[:]) // best effort; an all-zero nonce still yields unique IDs per process
	return &reqIDGen{nonce: binary.LittleEndian.Uint32(b[:])}
}

func (g *reqIDGen) next() string {
	return fmt.Sprintf("%08x-%06d", g.nonce, g.seq.Add(1))
}

// instrument wraps a route with the daemon's per-request observability:
// a request ID (honoring an inbound X-Request-ID and always echoing one
// back), the outcome counter for metered endpoints, and one structured
// log line per request. ep < 0 marks an unmetered control-plane route —
// it still gets the ID and the log line, just no counter series.
func (s *Server) instrument(ep endpointID, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-ID")
		if rid == "" {
			rid = s.reqIDs.next()
		}
		w.Header().Set("X-Request-ID", rid)
		r = r.WithContext(context.WithValue(r.Context(), ctxKeyRequestID, rid))
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		h(rec, r)
		elapsed := time.Since(start)
		if rec.status == 0 {
			rec.status = 200
		}
		if ep >= 0 {
			s.metrics.requests[ep][outcomeOf(rec.status)].Inc()
		}
		// Health probes poll every few seconds; keep them out of the Info
		// stream so the log is requests, not liveness noise.
		level := slog.LevelInfo
		if r.URL.Path == "/healthz" || r.URL.Path == "/readyz" {
			level = slog.LevelDebug
		}
		s.logger.LogAttrs(r.Context(), level, "request",
			slog.String("request_id", rid),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", rec.status),
			slog.Int64("elapsed_us", elapsed.Microseconds()),
			slog.String("remote", r.RemoteAddr),
		)
	}
}

// epNone marks routes that get logging but no outcome counter series.
const epNone endpointID = -1
