package server

import (
	"sync"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h histogram
	p := h.percentiles(0.50, 0.99, 0.999)
	for i, v := range p {
		if v != 0 {
			t.Errorf("quantile %d = %d on empty histogram, want 0", i, v)
		}
	}
	if m := h.meanUS(); m != 0 {
		t.Errorf("mean = %v on empty histogram, want 0", m)
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	var h histogram
	h.observe(100) // bucket 7: [64, 128)
	p := h.percentiles(0.0, 0.50, 0.99, 0.999)
	for i, v := range p {
		if v != 128 {
			t.Errorf("quantile %d = %d, want 128 (the single bucket's upper bound)", i, v)
		}
	}
	if m := h.meanUS(); m != 100 {
		t.Errorf("mean = %v, want 100", m)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	// Observations at exact powers of two land in the bucket whose upper
	// bound is the next power: [2^(i-1), 2^i) ← bucketUpperUS(i) = 2^i.
	cases := []struct {
		us   uint64
		want uint64 // p50 upper bound with only this observation
	}{
		{0, 1}, // sub-microsecond
		{1, 2}, // [1,2)
		{2, 4}, // [2,4)
		{3, 4}, // [2,4)
		{4, 8}, // [4,8)
		{1023, 1024},
		{1024, 2048},
	}
	for _, c := range cases {
		var h histogram
		h.observe(c.us)
		if got := h.percentiles(0.5)[0]; got != c.want {
			t.Errorf("observe(%d): p50 = %d, want %d", c.us, got, c.want)
		}
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h histogram
	// Larger than the final bucket's nominal range (~2^39 µs): must clamp
	// into the last bucket, not index out of bounds.
	h.observe(1 << 50)
	h.observe(^uint64(0))
	p := h.percentiles(0.5, 0.999)
	wantUpper := bucketUpperUS(len(h.buckets) - 1)
	for i, v := range p {
		if v != wantUpper {
			t.Errorf("quantile %d = %d, want overflow-bucket bound %d", i, v, wantUpper)
		}
	}
	if n := h.count.Load(); n != 2 {
		t.Errorf("count = %d, want 2", n)
	}
}

func TestHistogramQuantileRankBoundaries(t *testing.T) {
	var h histogram
	// 99 fast observations and 1 slow one: p99 must land on the slow
	// bucket boundary behavior exactly (rank 99 of 0..99 is the slow one).
	for i := 0; i < 99; i++ {
		h.observe(10) // bucket upper bound 16
	}
	h.observe(1 << 20) // bucket upper bound 2^21
	p := h.percentiles(0.50, 0.98, 0.99, 1.0)
	if p[0] != 16 || p[1] != 16 {
		t.Errorf("p50/p98 = %d/%d, want 16/16", p[0], p[1])
	}
	if p[2] != 1<<21 {
		t.Errorf("p99 = %d, want %d (the slow observation)", p[2], 1<<21)
	}
	// q=1.0 clamps to the last recorded rank instead of reading past it.
	if p[3] != 1<<21 {
		t.Errorf("p100 = %d, want %d", p[3], 1<<21)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h histogram
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.observe(uint64(i % 4096))
				if i%512 == 0 {
					h.percentiles(0.5, 0.99) // concurrent reads must not race
					h.meanUS()
				}
			}
		}(w)
	}
	wg.Wait()
	if n := h.count.Load(); n != workers*perWorker {
		t.Errorf("count = %d, want %d", n, workers*perWorker)
	}
	_, total := h.snapshotCounts()
	if total != workers*perWorker {
		t.Errorf("bucket sum = %d, want %d", total, workers*perWorker)
	}
	// All observations < 4096 µs, so every quantile is ≤ 4096.
	if p := h.percentiles(0.999)[0]; p > 4096 {
		t.Errorf("p99.9 = %d, want ≤ 4096", p)
	}
}
