// Package workload generates the query workloads of the paper's evaluation
// (§5): batches of GNN queries whose n points are distributed uniformly in
// an MBR of prescribed area M (a percentage of the data workspace), placed
// randomly inside the workspace. For the disk-resident experiments it also
// builds the co-centred scaled query sets and the controlled-overlap
// placements of §5.2.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"gnn/internal/geom"
)

// DefaultQueries is the paper's workload size: 100 queries per data point.
const DefaultQueries = 100

// Query is one GNN query: a group of query points.
type Query struct {
	Points []geom.Point
	// MBR is the rectangle the points were drawn in.
	MBR geom.Rect
}

// Spec describes a §5.1 workload.
type Spec struct {
	// N is the number of query points per query (the paper's n).
	N int
	// AreaFraction is the area of the query MBR as a fraction of the
	// workspace area (the paper's M; e.g. 0.08 for 8%).
	AreaFraction float64
	// Queries is the number of queries in the workload (default 100).
	Queries int
	// Workspace is the data workspace the query MBRs are placed in.
	Workspace geom.Rect
	// Seed makes the workload reproducible.
	Seed int64
}

// Generate builds the workload. Every query has exactly N points uniform
// in a square MBR of the requested area, whose position is uniform within
// the workspace (the MBR always fits inside it).
func Generate(s Spec) ([]Query, error) {
	if s.N < 1 {
		return nil, fmt.Errorf("workload: n %d < 1", s.N)
	}
	if s.AreaFraction <= 0 || s.AreaFraction > 1 {
		return nil, fmt.Errorf("workload: area fraction %v not in (0,1]", s.AreaFraction)
	}
	if s.Queries == 0 {
		s.Queries = DefaultQueries
	}
	if s.Queries < 1 {
		return nil, fmt.Errorf("workload: %d queries", s.Queries)
	}
	if !s.Workspace.Valid() || s.Workspace.Dim() != 2 {
		return nil, fmt.Errorf("workload: invalid workspace %v", s.Workspace)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	wsW := s.Workspace.Hi[0] - s.Workspace.Lo[0]
	wsH := s.Workspace.Hi[1] - s.Workspace.Lo[1]
	side := math.Sqrt(s.AreaFraction * wsW * wsH)
	if side > wsW || side > wsH {
		return nil, fmt.Errorf("workload: square MBR of area %v%% does not fit the workspace",
			s.AreaFraction*100)
	}
	out := make([]Query, s.Queries)
	for i := range out {
		ox := s.Workspace.Lo[0] + rng.Float64()*(wsW-side)
		oy := s.Workspace.Lo[1] + rng.Float64()*(wsH-side)
		mbr := geom.NewRect(geom.Point{ox, oy}, geom.Point{ox + side, oy + side})
		pts := make([]geom.Point, s.N)
		for j := range pts {
			pts[j] = geom.Point{ox + rng.Float64()*side, oy + rng.Float64()*side}
		}
		out[i] = Query{Points: pts, MBR: mbr}
	}
	return out, nil
}

// CenteredRect returns a square of the given area fraction sharing the
// workspace's centroid — the placement of the query dataset in the §5.2
// "co-centred, varying M" experiments (Figs 5.4, 5.5).
func CenteredRect(workspace geom.Rect, areaFraction float64) (geom.Rect, error) {
	if areaFraction <= 0 || areaFraction > 1 {
		return geom.Rect{}, fmt.Errorf("workload: area fraction %v not in (0,1]", areaFraction)
	}
	w := workspace.Hi[0] - workspace.Lo[0]
	h := workspace.Hi[1] - workspace.Lo[1]
	side := math.Sqrt(areaFraction * w * h)
	c := workspace.Center()
	half := side / 2
	return geom.NewRect(
		geom.Point{c[0] - half, c[1] - half},
		geom.Point{c[0] + half, c[1] + half}), nil
}

// OverlapRect returns a rectangle of the same size as the workspace whose
// intersection with it covers the requested fraction of its area — the
// §5.2 overlap experiments (Figs 5.6, 5.7). overlap=1 is the workspace
// itself; overlap=0 places the query workspace corner-to-corner with it.
// Intermediate values shift the copy diagonally on both axes, exactly as
// the paper describes ("starting from the 100% case and shifting the query
// dataset on both axes").
func OverlapRect(workspace geom.Rect, overlap float64) (geom.Rect, error) {
	if overlap < 0 || overlap > 1 {
		return geom.Rect{}, fmt.Errorf("workload: overlap %v not in [0,1]", overlap)
	}
	w := workspace.Hi[0] - workspace.Lo[0]
	h := workspace.Hi[1] - workspace.Lo[1]
	// Shifting by s on both axes leaves an intersection of
	// (w-s)(h-s) = overlap*w*h. For a square workspace (w == h):
	// (1 - s/w)² = overlap  ⇒  s = w(1-√overlap).
	f := 1 - math.Sqrt(overlap)
	dx, dy := w*f, h*f
	return geom.NewRect(
		geom.Point{workspace.Lo[0] + dx, workspace.Lo[1] + dy},
		geom.Point{workspace.Hi[0] + dx, workspace.Hi[1] + dy}), nil
}
