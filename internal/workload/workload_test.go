package workload

import (
	"math"
	"testing"

	"gnn/internal/dataset"
	"gnn/internal/geom"
)

func TestGenerateBasic(t *testing.T) {
	ws := dataset.Workspace()
	qs, err := Generate(Spec{N: 16, AreaFraction: 0.08, Queries: 25, Workspace: ws, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 25 {
		t.Fatalf("got %d queries", len(qs))
	}
	wantArea := 0.08 * ws.Area()
	for i, q := range qs {
		if len(q.Points) != 16 {
			t.Fatalf("query %d has %d points", i, len(q.Points))
		}
		if !ws.ContainsRect(q.MBR) {
			t.Fatalf("query %d MBR %v escapes workspace", i, q.MBR)
		}
		if math.Abs(q.MBR.Area()-wantArea) > 1e-6*wantArea {
			t.Fatalf("query %d MBR area %v, want %v", i, q.MBR.Area(), wantArea)
		}
		for _, p := range q.Points {
			if !q.MBR.ContainsPoint(p) {
				t.Fatalf("query %d point %v outside its MBR", i, p)
			}
		}
	}
}

func TestGenerateDefaultsAndDeterminism(t *testing.T) {
	ws := dataset.Workspace()
	a, err := Generate(Spec{N: 4, AreaFraction: 0.02, Workspace: ws, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != DefaultQueries {
		t.Fatalf("default workload size = %d", len(a))
	}
	b, _ := Generate(Spec{N: 4, AreaFraction: 0.02, Workspace: ws, Seed: 7})
	for i := range a {
		for j := range a[i].Points {
			if !a[i].Points[j].Equal(b[i].Points[j]) {
				t.Fatal("same seed produced different workloads")
			}
		}
	}
	c, _ := Generate(Spec{N: 4, AreaFraction: 0.02, Workspace: ws, Seed: 8})
	if a[0].Points[0].Equal(c[0].Points[0]) {
		t.Fatal("different seeds produced identical first point")
	}
}

func TestGenerateValidation(t *testing.T) {
	ws := dataset.Workspace()
	bad := []Spec{
		{N: 0, AreaFraction: 0.1, Workspace: ws},
		{N: 4, AreaFraction: 0, Workspace: ws},
		{N: 4, AreaFraction: 1.5, Workspace: ws},
		{N: 4, AreaFraction: 0.1, Queries: -1, Workspace: ws},
		{N: 4, AreaFraction: 0.1}, // zero workspace
		{N: 4, AreaFraction: 0.1, Workspace: geom.Rect{ // 1-D workspace
			Lo: geom.Point{0}, Hi: geom.Point{1}}},
	}
	for i, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCenteredRect(t *testing.T) {
	ws := dataset.Workspace()
	for _, frac := range []float64{0.02, 0.08, 0.32, 1.0} {
		r, err := CenteredRect(ws, frac)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Area()-frac*ws.Area()) > 1e-6*ws.Area() {
			t.Fatalf("area %v, want %v", r.Area(), frac*ws.Area())
		}
		if !r.Center().Equal(ws.Center()) {
			t.Fatalf("centre %v, want %v", r.Center(), ws.Center())
		}
	}
	if _, err := CenteredRect(ws, 0); err == nil {
		t.Fatal("zero fraction accepted")
	}
}

func TestOverlapRect(t *testing.T) {
	ws := dataset.Workspace()
	for _, ov := range []float64{0, 0.25, 0.5, 0.75, 1} {
		r, err := OverlapRect(ws, ov)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Area()-ws.Area()) > 1e-6*ws.Area() {
			t.Fatalf("overlap rect area changed: %v", r.Area())
		}
		got := ws.OverlapArea(r) / ws.Area()
		if math.Abs(got-ov) > 1e-9 {
			t.Fatalf("overlap = %v, want %v", got, ov)
		}
	}
	if _, err := OverlapRect(ws, -0.1); err == nil {
		t.Fatal("negative overlap accepted")
	}
	if _, err := OverlapRect(ws, 1.1); err == nil {
		t.Fatal("overlap > 1 accepted")
	}
}

func TestOverlapRectDisjointTouches(t *testing.T) {
	ws := dataset.Workspace()
	r, _ := OverlapRect(ws, 0)
	// At 0% the rectangles share only the corner point.
	if ws.OverlapArea(r) != 0 {
		t.Fatal("0%% overlap has positive area")
	}
	if !ws.Intersects(r) {
		t.Fatal("0%% overlap should still touch at the corner")
	}
}
