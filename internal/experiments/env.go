// Package experiments reproduces the paper's evaluation (§5): one driver
// per figure that runs the same parameter sweep on the same (substitute)
// datasets and prints the same series — node accesses and CPU time per
// algorithm — as aligned tables.
//
// Figures 5.1-5.3 compare MQM/SPM/MBM on memory-resident workloads of 100
// queries; figures 5.4-5.7 compare GCP/F-MQM/F-MBM on disk-resident query
// sets. Three ablations (A1-A3) cover the design choices the paper
// discusses in passing: heuristic 2 vs 2+3, the centroid solver, and the
// LRU buffer's effect on MQM.
package experiments

import (
	"fmt"

	"gnn/internal/dataset"
	"gnn/internal/geom"
	"gnn/internal/pagestore"
	"gnn/internal/rtree"
)

// Config tunes an experiment run.
type Config struct {
	// Scale shrinks the datasets for quick runs: 1.0 is paper-size
	// (PP = 24,493 points, TS = 194,971), 0.1 keeps 10%. Default 1.0.
	Scale float64
	// Queries is the workload size for memory-resident experiments
	// (default 100, as in the paper).
	Queries int
	// Seed drives all generators (default 1).
	Seed int64
	// BufferPages sizes the LRU buffer attached to each tree and query
	// file (default 512 pages; the paper notes an LRU buffer exists).
	BufferPages int
	// GCPPairBudget caps GCP's closest-pair consumption; cells exceeding
	// it are reported DNF, like the paper's non-terminating GCP runs.
	// Default 20,000,000.
	GCPPairBudget int64
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.Queries == 0 {
		c.Queries = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.BufferPages == 0 {
		c.BufferPages = 512
	}
	if c.GCPPairBudget == 0 {
		c.GCPPairBudget = 20_000_000
	}
	return c
}

// Env caches the datasets and trees shared by the figure drivers so one
// harness invocation builds each of them only once.
type Env struct {
	cfg      Config
	datasets map[string]*dataset.Dataset
	trees    map[string]*rtree.Tree
}

// NewEnv prepares an experiment environment.
func NewEnv(cfg Config) *Env {
	return &Env{
		cfg:      cfg.withDefaults(),
		datasets: map[string]*dataset.Dataset{},
		trees:    map[string]*rtree.Tree{},
	}
}

// Config returns the environment's effective configuration.
func (e *Env) Config() Config { return e.cfg }

// Dataset returns the named dataset ("PP" or "TS"), scaled per the
// configuration, generating and caching it on first use.
func (e *Env) Dataset(name string) (*dataset.Dataset, error) {
	if d, ok := e.datasets[name]; ok {
		return d, nil
	}
	var d *dataset.Dataset
	switch name {
	case "PP":
		d = dataset.GeneratePP(e.cfg.Seed)
	case "TS":
		d = dataset.GenerateTS(e.cfg.Seed)
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
	if e.cfg.Scale < 1 {
		n := int(float64(len(d.Points)) * e.cfg.Scale)
		if n < 1 {
			n = 1
		}
		d = &dataset.Dataset{Name: d.Name, Points: d.Points[:n]}
	}
	e.datasets[name] = d
	return d, nil
}

// Tree returns an R*-tree over the named dataset with a fresh LRU-buffered
// counter, building and caching it on first use.
func (e *Env) Tree(name string) (*rtree.Tree, error) {
	if t, ok := e.trees[name]; ok {
		return t, nil
	}
	d, err := e.Dataset(name)
	if err != nil {
		return nil, err
	}
	t, err := e.buildTree(d, 0)
	if err != nil {
		return nil, err
	}
	e.trees[name] = t
	return t, nil
}

// buildTree bulk-loads a tree over the dataset with the paper's node
// capacity, attaching an LRU buffer when configured.
func (e *Env) buildTree(d *dataset.Dataset, firstPage pagestore.PageID) (*rtree.Tree, error) {
	return rtree.BulkLoadSTR(rtree.Config{
		MaxEntries: rtree.DefaultMaxEntries,
		Accountant: pagestore.NewAccountant(e.cfg.BufferPages),
		FirstPage:  firstPage,
	}, d.Points, nil)
}

// scaledQuerySet returns the query dataset (named src) affinely mapped
// into target — the §5.2 placement of the disk-resident query sets.
func (e *Env) scaledQuerySet(src string, target geom.Rect) ([]geom.Point, error) {
	d, err := e.Dataset(src)
	if err != nil {
		return nil, err
	}
	return d.ScaleTo(target, d.Name+"-scaled").Points, nil
}
