package experiments

import (
	"fmt"
	"io"
	"sort"

	"gnn/internal/stats"
)

// Runner produces the figures of one experiment ID (most memory figures
// yield two: one per dataset, matching the paper's four-panel layout).
type Runner func(*Env) ([]*stats.Figure, error)

// registry maps experiment IDs to their drivers.
var registry = map[string]Runner{
	"5.1": func(e *Env) ([]*stats.Figure, error) { return both(e, (*Env).Fig51) },
	"5.2": func(e *Env) ([]*stats.Figure, error) { return both(e, (*Env).Fig52) },
	"5.3": func(e *Env) ([]*stats.Figure, error) { return both(e, (*Env).Fig53) },
	"5.4": single(func(e *Env) (*stats.Figure, error) { return e.Fig54() }),
	"5.5": single(func(e *Env) (*stats.Figure, error) { return e.Fig55() }),
	"5.6": single(func(e *Env) (*stats.Figure, error) { return e.Fig56() }),
	"5.7": single(func(e *Env) (*stats.Figure, error) { return e.Fig57() }),
	"A1":  single(func(e *Env) (*stats.Figure, error) { return e.AblationH2Only("PP") }),
	"A2":  single(func(e *Env) (*stats.Figure, error) { return e.AblationCentroid("PP") }),
	"A3":  single(func(e *Env) (*stats.Figure, error) { return e.AblationBuffer("PP") }),
}

func both(e *Env, f func(*Env, string) (*stats.Figure, error)) ([]*stats.Figure, error) {
	pp, err := f(e, "PP")
	if err != nil {
		return nil, err
	}
	ts, err := f(e, "TS")
	if err != nil {
		return nil, err
	}
	return []*stats.Figure{pp, ts}, nil
}

func single(f func(*Env) (*stats.Figure, error)) Runner {
	return func(e *Env) ([]*stats.Figure, error) {
		fig, err := f(e)
		if err != nil {
			return nil, err
		}
		return []*stats.Figure{fig}, nil
	}
}

// IDs lists the registered experiment IDs in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID and writes its figures to w.
func Run(e *Env, id string, w io.Writer) error {
	r, ok := registry[id]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	figs, err := r(e)
	if err != nil {
		return err
	}
	for _, f := range figs {
		if err := f.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// RunAll executes every registered experiment in ID order.
func RunAll(e *Env, w io.Writer) error {
	for _, id := range IDs() {
		if err := Run(e, id, w); err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
	}
	return nil
}
