package experiments

import (
	"errors"
	"fmt"
	"time"

	"gnn/internal/core"
	"gnn/internal/dataset"
	"gnn/internal/geom"
	"gnn/internal/pagestore"
	"gnn/internal/rtree"
	"gnn/internal/stats"
	"gnn/internal/workload"
)

// diskSweep describes a §5.2 experiment: the query dataset (its whole
// cardinality is Q, so there is no 100-query workload) is placed relative
// to the data workspace either by area (co-centred MBR of M% — Figs 5.4,
// 5.5) or by overlap fraction (equal-size shifted workspaces — Figs 5.6,
// 5.7), and GCP / F-MQM / F-MBM answer the single large query.
type diskSweep struct {
	id        string
	dataP     string // dataset playing P (indexed)
	dataQ     string // dataset playing Q (disk-resident)
	mode      string // "area" or "overlap"
	values    []float64
	withGCP   bool
	blockPts  int
	k         int
	repeatsAt int64 // extra seed offset for query placement
}

// runDiskSweep executes one disk-resident figure.
func (e *Env) runDiskSweep(s diskSweep) (*stats.Figure, error) {
	if s.blockPts == 0 {
		s.blockPts = scaledBlockPoints(e.cfg.Scale)
	}
	if s.k == 0 {
		s.k = 8
	}
	tp, err := e.Tree(s.dataP)
	if err != nil {
		return nil, err
	}
	labels := make([]string, len(s.values))
	for i, v := range s.values {
		labels[i] = fmt.Sprintf("%g%%", v*100)
	}
	var xname string
	if s.mode == "area" {
		xname = "MBR area of Q"
	} else {
		xname = "overlap area"
	}
	title := fmt.Sprintf("Figure %s (P=%s, Q=%s): cost vs %s", s.id, s.dataP, s.dataQ, xname)
	fig := stats.NewFigure(title, xname, labels)

	ws := dataset.Workspace()
	for i, v := range s.values {
		var target geom.Rect
		switch s.mode {
		case "area":
			target, err = workload.CenteredRect(ws, v)
		case "overlap":
			target, err = workload.OverlapRect(ws, v)
		default:
			err = fmt.Errorf("experiments: unknown disk mode %q", s.mode)
		}
		if err != nil {
			return nil, err
		}
		qpts, err := e.scaledQuerySet(s.dataQ, target)
		if err != nil {
			return nil, err
		}
		opt := core.Options{K: s.k}

		if s.withGCP {
			meas, err := e.measureGCP(tp, qpts, opt)
			if err != nil {
				return nil, err
			}
			fig.Add("GCP", labels[i], meas)
		}
		for _, algo := range []string{"F-MQM", "F-MBM"} {
			meas, err := e.measureFDisk(tp, qpts, algo, s.blockPts, opt)
			if err != nil {
				return nil, err
			}
			fig.Add(algo, labels[i], meas)
		}
	}
	return fig, nil
}

// scaledBlockPoints shrinks the paper's 10,000-point blocks alongside the
// datasets so the block count (the crucial parameter: 3 for Q=PP, 20 for
// Q=TS) is preserved at reduced scale.
func scaledBlockPoints(scale float64) int {
	b := int(float64(core.DefaultBlockPoints) * scale)
	if b < 1 {
		b = 1
	}
	return b
}

// measureGCP builds an R*-tree over the query set (its cost excluded, as
// in §5.2) and runs GCP, reporting the summed NA of both trees.
func (e *Env) measureGCP(tp *rtree.Tree, qpts []geom.Point, opt core.Options) (stats.Measurement, error) {
	tq, err := e.buildTree(&dataset.Dataset{Name: "Q", Points: qpts}, 1<<40)
	if err != nil {
		return stats.Measurement{}, err
	}
	tp.Accountant().ResetAll()
	tq.Accountant().ResetAll()
	start := time.Now()
	rep, err := core.GCP(tp, tq, core.GCPOptions{Options: opt, PairBudget: e.cfg.GCPPairBudget})
	elapsed := time.Since(start)
	if errors.Is(err, core.ErrBudgetExceeded) {
		return stats.Measurement{DNF: true, Queries: 1}, nil
	}
	if err != nil {
		return stats.Measurement{}, err
	}
	if len(rep.Neighbors) == 0 {
		return stats.Measurement{}, fmt.Errorf("experiments: GCP returned no results")
	}
	return stats.Measurement{
		NodeAccesses: float64(tp.Accountant().Logical() + tq.Accountant().Logical()),
		CPU:          elapsed,
		Queries:      1,
	}, nil
}

// measureFDisk runs F-MQM or F-MBM over a fresh query file, reporting the
// R-tree NA plus the Q page reads (both behind the configured buffer).
func (e *Env) measureFDisk(tp *rtree.Tree, qpts []geom.Point, algo string, blockPts int, opt core.Options) (stats.Measurement, error) {
	acct := pagestore.NewAccountant(e.cfg.BufferPages)
	qf, err := core.NewQueryFile(qpts, blockPts, acct, 1<<41)
	if err != nil {
		return stats.Measurement{}, err
	}
	tp.Accountant().ResetAll()
	start := time.Now()
	var rep *core.DiskReport
	switch algo {
	case "F-MQM":
		rep, err = core.FMQM(tp, qf, core.DiskOptions{Options: opt})
	case "F-MBM":
		rep, err = core.FMBM(tp, qf, core.DiskOptions{Options: opt})
	default:
		err = fmt.Errorf("experiments: unknown disk algorithm %q", algo)
	}
	elapsed := time.Since(start)
	if err != nil {
		return stats.Measurement{}, err
	}
	if len(rep.Neighbors) == 0 {
		return stats.Measurement{}, fmt.Errorf("experiments: %s returned no results", algo)
	}
	return stats.Measurement{
		NodeAccesses: float64(tp.Accountant().Logical() + acct.Logical()),
		CPU:          elapsed,
		Queries:      1,
	}, nil
}

// Fig54 reproduces Figure 5.4: P = TS, Q = PP scaled into a co-centred MBR
// of area M ∈ {2%..32%}; GCP vs F-MQM vs F-MBM, k = 8.
func (e *Env) Fig54() (*stats.Figure, error) {
	return e.runDiskSweep(diskSweep{
		id: "5.4", dataP: "TS", dataQ: "PP", mode: "area",
		values:  []float64{0.02, 0.04, 0.08, 0.16, 0.32},
		withGCP: true,
	})
}

// Fig55 reproduces Figure 5.5: P = PP, Q = TS. GCP is omitted, as in the
// paper ("it incurs excessively high cost").
func (e *Env) Fig55() (*stats.Figure, error) {
	return e.runDiskSweep(diskSweep{
		id: "5.5", dataP: "PP", dataQ: "TS", mode: "area",
		values: []float64{0.02, 0.04, 0.08, 0.16, 0.32},
	})
}

// Fig56 reproduces Figure 5.6: equal-size workspaces, overlap ∈ {0..100}%,
// P = TS, Q = PP, with GCP.
func (e *Env) Fig56() (*stats.Figure, error) {
	return e.runDiskSweep(diskSweep{
		id: "5.6", dataP: "TS", dataQ: "PP", mode: "overlap",
		values:  []float64{0, 0.25, 0.5, 0.75, 1},
		withGCP: true,
	})
}

// Fig57 reproduces Figure 5.7: P = PP, Q = TS, overlap sweep, GCP omitted.
func (e *Env) Fig57() (*stats.Figure, error) {
	return e.runDiskSweep(diskSweep{
		id: "5.7", dataP: "PP", dataQ: "TS", mode: "overlap",
		values: []float64{0, 0.25, 0.5, 0.75, 1},
	})
}
