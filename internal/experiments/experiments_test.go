package experiments

import (
	"bytes"
	"strings"
	"testing"

	"gnn/internal/stats"
)

// smallEnv returns an environment small enough for unit tests: 2% of the
// paper's dataset sizes and 5 queries per workload.
func smallEnv() *Env {
	return NewEnv(Config{Scale: 0.02, Queries: 5, Seed: 42, GCPPairBudget: 2_000_000})
}

func TestEnvDatasets(t *testing.T) {
	e := smallEnv()
	pp, err := e.Dataset("PP")
	if err != nil || pp.Len() != 489 { // 2% of 24493
		t.Fatalf("PP: %v len %d", err, pp.Len())
	}
	ts, err := e.Dataset("TS")
	if err != nil || ts.Len() != 3899 { // 2% of 194971
		t.Fatalf("TS: %v len %d", err, ts.Len())
	}
	if _, err := e.Dataset("XX"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	// Caching: same pointer on second call.
	pp2, _ := e.Dataset("PP")
	if pp2 != pp {
		t.Fatal("dataset not cached")
	}
}

func TestEnvTree(t *testing.T) {
	e := smallEnv()
	tr, err := e.Tree("PP")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 489 {
		t.Fatalf("tree len %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	tr2, _ := e.Tree("PP")
	if tr2 != tr {
		t.Fatal("tree not cached")
	}
}

func checkFigure(t *testing.T, fig *stats.Figure, wantSeries []string, xCount int) {
	t.Helper()
	names := fig.SeriesNames()
	if len(names) != len(wantSeries) {
		t.Fatalf("%s: series %v, want %v", fig.Title, names, wantSeries)
	}
	for i, s := range wantSeries {
		if names[i] != s {
			t.Fatalf("%s: series %v, want %v", fig.Title, names, wantSeries)
		}
	}
	if len(fig.XValues) != xCount {
		t.Fatalf("%s: %d x-values", fig.Title, len(fig.XValues))
	}
	for _, s := range names {
		for _, x := range fig.XValues {
			m, ok := fig.Get(s, x)
			if !ok {
				t.Fatalf("%s: missing cell (%s, %s)", fig.Title, s, x)
			}
			if !m.DNF && m.NodeAccesses <= 0 {
				t.Fatalf("%s: cell (%s,%s) has NA %v", fig.Title, s, x, m.NodeAccesses)
			}
		}
	}
}

func TestFig51Small(t *testing.T) {
	e := smallEnv()
	fig, err := e.runMemSweep(memSweep{
		id: "5.1", dataset: "PP", vary: "n",
		values: []float64{4, 16, 64},
		algos:  paperMemAlgos(),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, []string{"MQM", "SPM", "MBM"}, 3)

	// Expected shape: MQM's NA grows with n and exceeds MBM's at n=64.
	mqm64, _ := fig.Get("MQM", "64")
	mbm64, _ := fig.Get("MBM", "64")
	if mqm64.NodeAccesses <= mbm64.NodeAccesses {
		t.Errorf("MQM NA %v not above MBM NA %v at n=64", mqm64.NodeAccesses, mbm64.NodeAccesses)
	}
	mqm4, _ := fig.Get("MQM", "4")
	if mqm64.NodeAccesses <= mqm4.NodeAccesses {
		t.Errorf("MQM NA did not grow with n: %v vs %v", mqm4.NodeAccesses, mqm64.NodeAccesses)
	}
}

func TestFig52And53Small(t *testing.T) {
	e := smallEnv()
	fig, err := e.runMemSweep(memSweep{
		id: "5.2", dataset: "PP", vary: "M",
		values: []float64{0.02, 0.08, 0.32},
		algos:  paperMemAlgos(),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, []string{"MQM", "SPM", "MBM"}, 3)
	// Costs grow with M (checked loosely here — at 2% dataset scale the
	// absolute NA counts are tiny and noisy; the full-scale shape check
	// lives in EXPERIMENTS.md / the bench harness).
	lo, _ := fig.Get("MBM", "2%")
	hi, _ := fig.Get("MBM", "32%")
	if hi.NodeAccesses < 0.5*lo.NodeAccesses {
		t.Errorf("MBM NA collapsed with M: %v -> %v", lo.NodeAccesses, hi.NodeAccesses)
	}

	fig, err = e.runMemSweep(memSweep{
		id: "5.3", dataset: "PP", vary: "k",
		values: []float64{1, 8},
		algos:  paperMemAlgos(),
	})
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, []string{"MQM", "SPM", "MBM"}, 2)
}

func TestDiskFiguresSmall(t *testing.T) {
	e := smallEnv()
	fig, err := e.runDiskSweep(diskSweep{
		id: "5.4", dataP: "TS", dataQ: "PP", mode: "area",
		values: []float64{0.02, 0.08}, withGCP: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, []string{"GCP", "F-MQM", "F-MBM"}, 2)

	fig, err = e.runDiskSweep(diskSweep{
		id: "5.6", dataP: "TS", dataQ: "PP", mode: "overlap",
		values: []float64{0, 0.5}, withGCP: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, []string{"F-MQM", "F-MBM"}, 2)
}

func TestAblations(t *testing.T) {
	e := smallEnv()
	fig, err := e.AblationH2Only("PP")
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, []string{"MBM", "MBM-H2only", "SPM"}, 4)
	// Full MBM must not access more nodes than H2-only anywhere.
	for _, x := range fig.XValues {
		full, _ := fig.Get("MBM", x)
		h2, _ := fig.Get("MBM-H2only", x)
		if full.NodeAccesses > h2.NodeAccesses {
			t.Errorf("x=%s: full MBM NA %v above H2-only %v", x, full.NodeAccesses, h2.NodeAccesses)
		}
	}

	fig, err = e.AblationCentroid("PP")
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, []string{"SPM-gradient", "SPM-weiszfeld", "SPM-mean"}, 4)

	fig, err = e.AblationBuffer("PP")
	if err != nil {
		t.Fatal(err)
	}
	checkFigure(t, fig, []string{"MQM"}, 4)
	none, _ := fig.Get("MQM", "0")
	big, _ := fig.Get("MQM", "2048")
	if big.NodeAccesses > none.NodeAccesses {
		t.Errorf("buffer increased MQM NA: %v -> %v", none.NodeAccesses, big.NodeAccesses)
	}
}

func TestRegistryRun(t *testing.T) {
	ids := IDs()
	if len(ids) != 10 {
		t.Fatalf("IDs = %v", ids)
	}
	e := smallEnv()
	var buf bytes.Buffer
	if err := Run(e, "A3", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MQM") {
		t.Fatalf("output lacks series:\n%s", buf.String())
	}
	if err := Run(e, "bogus", &buf); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 1.0 || c.Queries != 100 || c.Seed != 1 ||
		c.BufferPages != 512 || c.GCPPairBudget != 20_000_000 {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestScaledBlockPoints(t *testing.T) {
	if scaledBlockPoints(1.0) != 10000 || scaledBlockPoints(0.02) != 200 ||
		scaledBlockPoints(0.00001) != 1 {
		t.Fatal("scaledBlockPoints wrong")
	}
}
