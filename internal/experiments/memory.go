package experiments

import (
	"fmt"
	"time"

	"gnn/internal/core"
	"gnn/internal/dataset"
	"gnn/internal/geom"
	"gnn/internal/rtree"
	"gnn/internal/stats"
	"gnn/internal/workload"
)

// memAlgorithm is one curve of a memory-resident figure.
type memAlgorithm struct {
	Name string
	Run  func(*rtree.Tree, []geom.Point, core.Options) ([]core.GroupNeighbor, error)
}

// paperMemAlgos are the three §3 methods in the paper's presentation
// order, all best-first as in §5.
func paperMemAlgos() []memAlgorithm {
	return []memAlgorithm{
		{"MQM", core.MQM},
		{"SPM", core.SPM},
		{"MBM", core.MBM},
	}
}

// memSweep describes one memory-resident experiment: which parameter
// varies (the others stay at the paper's defaults n=64, M=8%, k=8).
type memSweep struct {
	id, dataset string
	vary        string // "n", "M" or "k"
	values      []float64
	algos       []memAlgorithm
	// k fixed value overrides (zero = paper default)
	n int
	m float64
	k int
}

func (s memSweep) fixed() (n int, m float64, k int) {
	n, m, k = 64, 0.08, 8
	if s.n != 0 {
		n = s.n
	}
	if s.m != 0 {
		m = s.m
	}
	if s.k != 0 {
		k = s.k
	}
	return n, m, k
}

// runMemSweep executes a §5.1-style sweep: for each x-value it generates a
// fresh workload (same MBR size, new placements) and averages NA and CPU
// per query for every algorithm.
func (e *Env) runMemSweep(s memSweep) (*stats.Figure, error) {
	t, err := e.Tree(s.dataset)
	if err != nil {
		return nil, err
	}
	labels := make([]string, len(s.values))
	for i, v := range s.values {
		labels[i] = formatX(s.vary, v)
	}
	title := fmt.Sprintf("Figure %s (%s): cost vs %s", s.id, s.dataset, s.vary)
	fig := stats.NewFigure(title, s.vary, labels)

	for i, v := range s.values {
		n, m, k := s.fixed()
		switch s.vary {
		case "n":
			n = int(v)
		case "M":
			m = v
		case "k":
			k = int(v)
		default:
			return nil, fmt.Errorf("experiments: unknown vary %q", s.vary)
		}
		queries, err := workload.Generate(workload.Spec{
			N:            n,
			AreaFraction: m,
			Queries:      e.cfg.Queries,
			Workspace:    dataset.Workspace(),
			Seed:         e.cfg.Seed + int64(i)*1000,
		})
		if err != nil {
			return nil, err
		}
		for _, a := range s.algos {
			meas, err := measureMemory(t, queries, a, core.Options{K: k})
			if err != nil {
				return nil, err
			}
			fig.Add(a.Name, labels[i], meas)
		}
	}
	return fig, nil
}

// measureMemory runs one algorithm over a workload and returns per-query
// averages. NA counts logical node accesses, which is what the paper
// plots (its MQM NA exceeds the tree's page count at large n, so the LRU
// buffer remark of §5.1 concerns wall time, not the NA series).
// Correctness is cross-checked against brute force on the first query of
// every workload (cheap tripwire).
func measureMemory(t *rtree.Tree, queries []workload.Query, a memAlgorithm, opt core.Options) (stats.Measurement, error) {
	return measureMemoryMetric(t, queries, a, opt, false)
}

// measureMemoryMetric implements measureMemory; usePhysical switches the
// NA column from logical node accesses (the paper's plotted metric) to
// physical buffer misses (what the A3 buffer ablation quantifies).
func measureMemoryMetric(t *rtree.Tree, queries []workload.Query, a memAlgorithm, opt core.Options, usePhysical bool) (stats.Measurement, error) {
	var elapsed time.Duration
	var accesses int64
	for qi, q := range queries {
		t.Accountant().ResetAll()
		start := time.Now()
		got, err := a.Run(t, q.Points, opt)
		elapsed += time.Since(start)
		if usePhysical {
			accesses += t.Accountant().Physical()
		} else {
			accesses += t.Accountant().Logical()
		}
		if err != nil {
			return stats.Measurement{}, fmt.Errorf("%s: %w", a.Name, err)
		}
		if qi == 0 {
			want, err := core.BruteForce(t, q.Points, opt)
			if err != nil {
				return stats.Measurement{}, err
			}
			if len(got) != len(want) || (len(got) > 0 && !closeEnough(got[0].Dist, want[0].Dist)) {
				return stats.Measurement{}, fmt.Errorf("%s: wrong answer on probe query", a.Name)
			}
		}
	}
	return stats.Measurement{
		NodeAccesses: float64(accesses) / float64(len(queries)),
		CPU:          elapsed / time.Duration(len(queries)),
		Queries:      len(queries),
	}, nil
}

func closeEnough(a, b float64) bool {
	d := a - b
	return d < 1e-6*(1+b) && d > -1e-6*(1+b)
}

func formatX(vary string, v float64) string {
	if vary == "M" {
		return fmt.Sprintf("%g%%", v*100)
	}
	return fmt.Sprintf("%g", v)
}

// Fig51 reproduces Figure 5.1: cost vs query cardinality n
// (M = 8%, k = 8, n ∈ {4..1024}) on the given dataset ("PP" or "TS").
func (e *Env) Fig51(ds string) (*stats.Figure, error) {
	return e.runMemSweep(memSweep{
		id: "5.1", dataset: ds, vary: "n",
		values: []float64{4, 16, 64, 256, 1024},
		algos:  paperMemAlgos(),
	})
}

// Fig52 reproduces Figure 5.2: cost vs query MBR area M
// (n = 64, k = 8, M ∈ {2%..32%}).
func (e *Env) Fig52(ds string) (*stats.Figure, error) {
	return e.runMemSweep(memSweep{
		id: "5.2", dataset: ds, vary: "M",
		values: []float64{0.02, 0.04, 0.08, 0.16, 0.32},
		algos:  paperMemAlgos(),
	})
}

// Fig53 reproduces Figure 5.3: cost vs number of neighbors k
// (n = 64, M = 8%, k ∈ {1..32}).
func (e *Env) Fig53(ds string) (*stats.Figure, error) {
	return e.runMemSweep(memSweep{
		id: "5.3", dataset: ds, vary: "k",
		values: []float64{1, 2, 8, 16, 32},
		algos:  paperMemAlgos(),
	})
}

// AblationH2Only reproduces the §5.1 footnote-3 comparison: MBM with both
// heuristics vs heuristic 2 alone vs SPM, sweeping n on the given dataset.
// The footnote reports H2-only MBM inferior to SPM; full MBM superior.
func (e *Env) AblationH2Only(ds string) (*stats.Figure, error) {
	h2only := func(t *rtree.Tree, qs []geom.Point, opt core.Options) ([]core.GroupNeighbor, error) {
		opt.DisableHeuristic3 = true
		return core.MBM(t, qs, opt)
	}
	return e.runMemSweep(memSweep{
		id: "A1", dataset: ds, vary: "n",
		values: []float64{4, 16, 64, 256},
		algos: []memAlgorithm{
			{"MBM", core.MBM},
			{"MBM-H2only", h2only},
			{"SPM", core.SPM},
		},
	})
}

// AblationCentroid compares SPM's centroid solvers (§3.2 uses gradient
// descent; Weiszfeld and the raw arithmetic mean are alternatives): a
// worse centroid loosens heuristic 1 and costs node accesses.
func (e *Env) AblationCentroid(ds string) (*stats.Figure, error) {
	mk := func(m core.CentroidMethod) func(*rtree.Tree, []geom.Point, core.Options) ([]core.GroupNeighbor, error) {
		return func(t *rtree.Tree, qs []geom.Point, opt core.Options) ([]core.GroupNeighbor, error) {
			opt.Centroid = m
			return core.SPM(t, qs, opt)
		}
	}
	return e.runMemSweep(memSweep{
		id: "A2", dataset: ds, vary: "n",
		values: []float64{4, 16, 64, 256},
		algos: []memAlgorithm{
			{"SPM-gradient", mk(core.GradientDescent)},
			{"SPM-weiszfeld", mk(core.Weiszfeld)},
			{"SPM-mean", mk(core.ArithmeticMean)},
		},
	})
}

// AblationBuffer quantifies the §5.1 remark that "MQM benefits from the
// existence of an LRU buffer": MQM PHYSICAL reads (buffer misses) on one
// workload under varying buffer sizes (0 = no buffer). This is the one
// experiment where the NA column reports physical rather than logical
// accesses.
func (e *Env) AblationBuffer(ds string) (*stats.Figure, error) {
	d, err := e.Dataset(ds)
	if err != nil {
		return nil, err
	}
	sizes := []int{0, 128, 512, 2048}
	labels := make([]string, len(sizes))
	for i, s := range sizes {
		labels[i] = fmt.Sprintf("%d", s)
	}
	fig := stats.NewFigure(
		fmt.Sprintf("Figure A3 (%s): MQM node accesses vs LRU buffer pages", ds),
		"buffer", labels)
	queries, err := workload.Generate(workload.Spec{
		N: 64, AreaFraction: 0.08, Queries: e.cfg.Queries,
		Workspace: dataset.Workspace(), Seed: e.cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	for i, size := range sizes {
		saved := e.cfg.BufferPages
		e.cfg.BufferPages = size
		t, err := e.buildTree(d, 0)
		e.cfg.BufferPages = saved
		if err != nil {
			return nil, err
		}
		meas, err := measureMemoryMetric(t, queries, memAlgorithm{"MQM", core.MQM}, core.Options{K: 8}, true)
		if err != nil {
			return nil, err
		}
		fig.Add("MQM", labels[i], meas)
	}
	return fig, nil
}
