package snapshot_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"gnn/internal/geom"
	"gnn/internal/pagestore"
	"gnn/internal/rtree"
	"gnn/internal/snapshot"
)

// buildArena packs a bulk-loaded tree over n pseudo-random points and
// returns its serialisable arena. Using the real tree keeps the fixtures
// structurally honest (multi-level, partially filled final nodes).
func buildArena(t testing.TB, n, dim, cap int, seed int64) *snapshot.Tree {
	return buildArenaAt(t, n, dim, cap, seed, 0)
}

// buildArenaAt builds the arena with its page IDs offset to firstPage
// (sharded fixtures need disjoint per-tree page ranges, like the real
// partitioned builder assigns).
func buildArenaAt(t testing.TB, n, dim, cap int, seed, firstPage int64) *snapshot.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for a := range p {
			p[a] = rng.Float64() * 1000
		}
		pts[i] = p
	}
	tree, err := rtree.BulkLoadSTR(rtree.Config{Dim: dim, MaxEntries: cap, FirstPage: pagestore.PageID(firstPage)}, pts, nil)
	if err != nil {
		t.Fatalf("bulk load: %v", err)
	}
	return tree.Pack().Snapshot()
}

// encodePlain serialises a single arena as a plain snapshot.
func encodePlain(t testing.TB, st *snapshot.Tree, dim int) []byte {
	t.Helper()
	var buf bytes.Buffer
	m := snapshot.Manifest{Kind: snapshot.KindPlain, Dim: dim, Points: st.Size}
	if err := snapshot.Write(&buf, m, []*snapshot.Tree{st}); err != nil {
		t.Fatalf("write: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTripPlain(t *testing.T) {
	for _, tc := range []struct{ n, dim, cap int }{
		{0, 2, 8},   // empty index
		{3, 2, 8},   // root-only leaf
		{500, 2, 8}, // three levels
		{200, 3, 16},
		{50, 1, 4},
	} {
		t.Run(fmt.Sprintf("n%d_d%d_c%d", tc.n, tc.dim, tc.cap), func(t *testing.T) {
			st := buildArena(t, tc.n, tc.dim, tc.cap, 42)
			data := encodePlain(t, st, tc.dim)
			m, trees, err := snapshot.Decode(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if m.Kind != snapshot.KindPlain || m.Dim != tc.dim || m.Points != tc.n {
				t.Fatalf("manifest %+v", m)
			}
			if len(trees) != 1 {
				t.Fatalf("%d trees", len(trees))
			}
			if !reflect.DeepEqual(trees[0], st) {
				t.Fatalf("arena did not round-trip:\n got %+v\nwant %+v", trees[0], st)
			}
			// Decoded → re-encoded bytes are identical: the format is
			// canonical, so snapshots are stable across save/load cycles.
			again := encodePlain(t, trees[0], tc.dim)
			if !bytes.Equal(data, again) {
				t.Fatalf("re-encoded bytes differ (%d vs %d bytes)", len(data), len(again))
			}
		})
	}
}

func TestRoundTripSharded(t *testing.T) {
	var trees []*snapshot.Tree
	var cuts []int64
	points := 0
	for i, n := range []int{120, 95, 121} {
		st := buildArenaAt(t, n, 2, 8, int64(100+i), int64(10_000*i))
		trees = append(trees, st)
		cuts = append(cuts, int64(n))
		points += n
	}
	m := snapshot.Manifest{
		Kind: snapshot.KindSharded, Dim: 2, Points: points,
		Hilbert: &snapshot.Hilbert{Order: 16, Lo: [2]float64{0, 0}, Hi: [2]float64{1000, 1000}, CutSizes: cuts},
	}
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, m, trees); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, gotTrees, err := snapshot.Decode(buf.Bytes())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("manifest:\n got %+v\nwant %+v", got, m)
	}
	if !reflect.DeepEqual(gotTrees, trees) {
		t.Fatalf("trees did not round-trip")
	}
}

func TestWriteRejectsBadInput(t *testing.T) {
	st := buildArena(t, 20, 2, 8, 1)
	var buf bytes.Buffer
	for name, tc := range map[string]struct {
		m     snapshot.Manifest
		trees []*snapshot.Tree
	}{
		"zero dim":          {snapshot.Manifest{Kind: snapshot.KindPlain, Dim: 0, Points: 20}, []*snapshot.Tree{st}},
		"plain two trees":   {snapshot.Manifest{Kind: snapshot.KindPlain, Dim: 2, Points: 40}, []*snapshot.Tree{st, st}},
		"bad kind":          {snapshot.Manifest{Kind: snapshot.Kind(7), Dim: 2, Points: 20}, []*snapshot.Tree{st}},
		"point mismatch":    {snapshot.Manifest{Kind: snapshot.KindPlain, Dim: 2, Points: 19}, []*snapshot.Tree{st}},
		"sharded no cuts":   {snapshot.Manifest{Kind: snapshot.KindSharded, Dim: 2, Points: 20}, []*snapshot.Tree{st}},
		"dim/axis mismatch": {snapshot.Manifest{Kind: snapshot.KindPlain, Dim: 3, Points: 20}, []*snapshot.Tree{st}},
	} {
		if err := snapshot.Write(&buf, tc.m, tc.trees); err == nil {
			t.Errorf("%s: Write accepted bad input", name)
		}
	}
}

// corrupt returns a copy of data with the byte at off XORed.
func corrupt(data []byte, off int) []byte {
	out := bytes.Clone(data)
	out[off] ^= 0x5a
	return out
}

func TestDecodeCorruptHeader(t *testing.T) {
	st := buildArena(t, 300, 2, 8, 7)
	valid := encodePlain(t, st, 2)
	if _, _, err := snapshot.Decode(valid); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}

	const headerSize = 40
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, snapshot.ErrTruncated},
		{"just magic", valid[:8:8], snapshot.ErrTruncated},
		{"half header", valid[:20:20], snapshot.ErrTruncated},
		{"bad magic", corrupt(valid, 0), snapshot.ErrBadMagic},
		{"bad magic tail", corrupt(valid, 7), snapshot.ErrBadMagic},
		{"future version", corrupt(valid, 8), snapshot.ErrVersion},
		{"bad kind", corrupt(valid, 12), snapshot.ErrCorrupt},
		{"zero dim", zeroField(valid, 16), snapshot.ErrCorrupt},
		{"zero trees", zeroField(valid, 20), snapshot.ErrCorrupt},
		{"section count", corrupt(valid, 32), snapshot.ErrCorrupt},
		{"table truncated", valid[: headerSize+10 : headerSize+10], snapshot.ErrTruncated},
		{"section offset", corrupt(valid, headerSize+8), snapshot.ErrCorrupt},
		{"section crc field", corrupt(valid, headerSize+24), snapshot.ErrChecksum},
		{"payload flipped", corrupt(valid, len(valid)-3), snapshot.ErrChecksum},
		{"payload truncated", valid[: len(valid)-5 : len(valid)-5], snapshot.ErrTruncated},
		{"trailing garbage", append(bytes.Clone(valid), 0xff), snapshot.ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := snapshot.Decode(tc.data)
			if err == nil {
				t.Fatalf("decode accepted corrupt input")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want %v", err, tc.want)
			}
		})
	}

	// Every truncation length must fail with a typed error, never panic.
	for cut := 0; cut < len(valid); cut += 97 {
		_, _, err := snapshot.Decode(valid[:cut:cut])
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// zeroField zeroes the uint32 at off (corrupting values a bit-flip of a
// small integer would not reach).
func zeroField(data []byte, off int) []byte {
	out := bytes.Clone(data)
	binary.LittleEndian.PutUint32(out[off:], 0)
	return out
}

// TestDecodeCorruptStructure feeds structurally invalid — but correctly
// framed and checksummed — contents through a mutate-and-re-encode
// cycle, so the structural validator (not the CRC) must catch them.
func TestDecodeCorruptStructure(t *testing.T) {
	mutations := map[string]func(st *snapshot.Tree){
		"root out of range":  func(st *snapshot.Tree) { st.Root = int32(len(st.Level)) },
		"child out of range": func(st *snapshot.Tree) { st.Child[0] = int32(len(st.Level)) },
		"child cycle":        func(st *snapshot.Tree) { st.Child[0] = st.Root },
		"child level":        func(st *snapshot.Tree) { st.Level[st.Child[0]] = st.Level[st.Root] },
		"negative start":     func(st *snapshot.Tree) { st.Start[0] = -1 },
		"inverted range":     func(st *snapshot.Tree) { st.Start[0], st.End[0] = st.End[0], st.Start[0] },
		"height mismatch":    func(st *snapshot.Tree) { st.Height++ },
		"duplicate page":     func(st *snapshot.Tree) { st.Page[1] = st.Page[0] },
		"negative page":      func(st *snapshot.Tree) { st.Page[0] = -4 },
		"page out of range":  func(st *snapshot.Tree) { st.Page[0] = st.FirstPage + st.Pages + 5 },
		"tiny capacity":      func(st *snapshot.Tree) { st.MaxEntries = 2 },
		"pages undercount":   func(st *snapshot.Tree) { st.Pages = 0 },
		"overlapping leaves": func(st *snapshot.Tree) {
			// Make the second leaf claim the first leaf's slot range: the
			// totals still fit, only the partition property breaks.
			var leaves []int
			for n, lvl := range st.Level {
				if lvl == 0 {
					leaves = append(leaves, n)
				}
			}
			a, b := leaves[0], leaves[1]
			st.Start[b], st.End[b] = st.Start[a], st.End[a]
		},
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			// A fresh arena per case: mutations write through the packed
			// tree's borrowed slices.
			st := buildArena(t, 300, 2, 8, 7)
			mutate(st)
			var buf bytes.Buffer
			m := snapshot.Manifest{Kind: snapshot.KindPlain, Dim: 2, Points: st.Size}
			if err := snapshot.Write(&buf, m, []*snapshot.Tree{st}); err != nil {
				t.Skipf("writer already rejects: %v", err)
			}
			_, _, err := snapshot.Decode(buf.Bytes())
			if !errors.Is(err, snapshot.ErrCorrupt) {
				t.Fatalf("error %v, want ErrCorrupt", err)
			}
		})
	}
}

// TestDecodeRejectsHugeDim locks the MaxDim bound that keeps the
// decoder's length arithmetic overflow-free: a forged header dimension
// must fail as corrupt before any section is interpreted.
func TestDecodeRejectsHugeDim(t *testing.T) {
	st := buildArena(t, 50, 2, 8, 3)
	valid := encodePlain(t, st, 2)
	for _, dim := range []uint32{snapshot.MaxDim + 1, 1 << 30, ^uint32(0)} {
		data := bytes.Clone(valid)
		binary.LittleEndian.PutUint32(data[16:], dim)
		if _, _, err := snapshot.Decode(data); !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("dim %d: error %v, want ErrCorrupt", dim, err)
		}
	}
}

// TestDecodeRejectsOverlappingShardPages: trees sharing page IDs would
// corrupt the shared LRU accounting, so the decoder must reject them.
func TestDecodeRejectsOverlappingShardPages(t *testing.T) {
	t1 := buildArenaAt(t, 80, 2, 8, 1, 0)
	t2 := buildArenaAt(t, 80, 2, 8, 2, 0) // same page range as t1
	m := snapshot.Manifest{
		Kind: snapshot.KindSharded, Dim: 2, Points: 160,
		Hilbert: &snapshot.Hilbert{Order: 16, CutSizes: []int64{80, 80}},
	}
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, m, []*snapshot.Tree{t1, t2}); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, _, err := snapshot.Decode(buf.Bytes()); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("error %v, want ErrCorrupt for overlapping shard page ranges", err)
	}
}

func TestSniff(t *testing.T) {
	st := buildArena(t, 30, 2, 8, 1)
	plain := encodePlain(t, st, 2)
	if kind, ok := snapshot.Sniff(plain[:snapshot.SniffLen]); !ok || kind != snapshot.KindPlain {
		t.Fatalf("plain sniff: %v %v", kind, ok)
	}
	if _, ok := snapshot.Sniff(plain[:snapshot.SniffLen-1]); ok {
		t.Fatal("short head sniffed as snapshot")
	}
	if _, ok := snapshot.Sniff([]byte("not a snapshot, longer than 16b")); ok {
		t.Fatal("garbage sniffed as snapshot")
	}
}

func TestReadFromReader(t *testing.T) {
	st := buildArena(t, 100, 2, 8, 9)
	data := encodePlain(t, st, 2)
	m, trees, err := snapshot.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if m.Points != 100 || len(trees) != 1 {
		t.Fatalf("manifest %+v, %d trees", m, len(trees))
	}
}
