package snapshot_test

import (
	"bytes"
	"testing"

	"gnn/internal/snapshot"
)

// FuzzSnapshotDecode throws arbitrary bytes at the decoder: it must
// return a typed error or a fully valid snapshot — never panic, never
// over-allocate from forged counts — and anything it accepts must
// re-encode and decode again (the accepted subset is self-consistent).
func FuzzSnapshotDecode(f *testing.F) {
	var seeds [][]byte
	for _, n := range []int{0, 3, 120} {
		st := buildArena(f, n, 2, 8, int64(n)+1)
		var buf bytes.Buffer
		m := snapshot.Manifest{Kind: snapshot.KindPlain, Dim: 2, Points: st.Size}
		if err := snapshot.Write(&buf, m, []*snapshot.Tree{st}); err != nil {
			f.Fatalf("seed write: %v", err)
		}
		valid := buf.Bytes()
		seeds = append(seeds, valid, valid[:len(valid)/2], corruptSeed(valid, 13), corruptSeed(valid, len(valid)-2))
	}
	seeds = append(seeds, []byte{}, []byte("GNNSNAP\x00"), []byte("not a snapshot"))
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, trees, err := snapshot.Decode(data)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := snapshot.Write(&buf, m, trees); err != nil {
			t.Fatalf("accepted snapshot fails to re-encode: %v", err)
		}
		if _, _, err := snapshot.Decode(buf.Bytes()); err != nil {
			t.Fatalf("re-encoded snapshot fails to decode: %v", err)
		}
	})
}

func corruptSeed(data []byte, off int) []byte {
	out := bytes.Clone(data)
	out[off] ^= 0xff
	return out
}
