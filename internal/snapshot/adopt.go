package snapshot

import (
	"sync"
	"unsafe"
)

// hostLittleEndian reports whether this machine stores multi-byte
// integers least-significant byte first — the snapshot wire order. Only
// on such hosts can the fixed-width columns be reinterpreted in place.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Adopted is a snapshot decoded in place: the trees' column slices alias
// the input buffer instead of copying it. DecodeAdopted frame-checks the
// input eagerly (magic, version, section table, every payload in
// bounds), so all columns are safe to index — but section checksums and
// the tree-structure validation are deferred to Verify, which the caller
// MUST run (and check) before traversing the trees. The input buffer
// must stay alive, unmodified, for the lifetime of the Adopted and
// everything built from its trees; with an mmap'd buffer that means
// unmap only after the last query completes.
//
// On hosts where in-place reinterpretation is unsound (big-endian, or a
// misaligned buffer base), DecodeAdopted transparently falls back to the
// fully-validated copying Decode: ZeroCopy reports false, Verify is a
// no-op, and nothing references data afterwards.
type Adopted struct {
	Manifest Manifest
	Trees    []*Tree
	// ZeroCopy reports whether the trees alias the input buffer (true)
	// or were copied and fully validated at decode time (false).
	ZeroCopy bool

	data   []byte
	secs   []section
	points uint64

	once sync.Once
	err  error
}

// DecodeAdopted parses a snapshot without copying its columns. See the
// Adopted contract for what is and is not yet validated on return.
func DecodeAdopted(data []byte) (*Adopted, error) {
	f, err := parseFrame(data)
	if err != nil {
		return nil, err
	}
	if !hostLittleEndian || uintptr(unsafe.Pointer(unsafe.SliceData(data)))%8 != 0 {
		// In-place reinterpretation is unsound here; decode the slow,
		// safe way. Verified eagerly, so Verify has nothing left to do.
		m, trees, err := Decode(data)
		if err != nil {
			return nil, err
		}
		return &Adopted{Manifest: m, Trees: trees}, nil
	}

	m := f.m
	m.Points = int(f.points) // declared; confirmed against trees in Verify
	if m.Kind == KindSharded {
		// The manifest extension is a handful of scalars — parse it
		// eagerly (all reads are length-checked) rather than thread lazy
		// state through it; its CRC is still checked in Verify.
		h, err := decodeHilbert(f.hilbert, f.numTrees)
		if err != nil {
			return nil, err
		}
		m.Hilbert = h
	}
	trees := make([]*Tree, f.numTrees)
	for ti := range trees {
		t, err := adoptTree(f.byTree[ti], m.Dim, ti)
		if err != nil {
			return nil, err
		}
		trees[ti] = t
	}
	return &Adopted{
		Manifest: m,
		Trees:    trees,
		ZeroCopy: true,
		data:     data,
		secs:     f.secs,
		points:   f.points,
	}, nil
}

// Verify runs the validation DecodeAdopted deferred: every section's
// CRC-32 against the buffer as mapped now, then the per-tree structural
// validation and whole-snapshot cross-checks — exactly the checks Decode
// performs eagerly. Idempotent and safe for concurrent callers; the
// first outcome is cached. Until Verify has returned nil, the adopted
// trees must not be traversed.
func (a *Adopted) Verify() error {
	a.once.Do(func() {
		if !a.ZeroCopy {
			return // the copying fallback validated everything already
		}
		f := frame{secs: a.secs}
		if a.err = f.verifyChecksums(a.data); a.err != nil {
			return
		}
		for ti, t := range a.Trees {
			if a.err = validateTreeStructure(t, len(t.Level), len(t.Child), len(t.IDs), ti); a.err != nil {
				return
			}
		}
		a.err = crossCheck(&a.Manifest, a.Trees, a.points)
	})
	return a.err
}

// adoptTree builds one tree whose column slices alias the section
// payloads. Performs the same meta and length checks as decodeTree but
// skips element copies and structural validation (deferred to Verify).
func adoptTree(secs map[uint32][]byte, dim, ti int) (*Tree, error) {
	t, nodes, rslots, lslots, err := parseTreeMeta(secs[secTreeMeta], ti)
	if err != nil {
		return nil, err
	}
	if t.Level, err = adoptI32s(secs[secLevels], nodes, ti, "levels"); err != nil {
		return nil, err
	}
	if t.Page, err = adoptI64s(secs[secPages], nodes, ti, "pages"); err != nil {
		return nil, err
	}
	ranges, err := adoptI32s(secs[secRanges], 2*nodes, ti, "ranges")
	if err != nil {
		return nil, err
	}
	t.Start = ranges[:nodes:nodes]
	t.End = ranges[nodes:]
	if t.Child, err = adoptI32s(secs[secChildren], rslots, ti, "children"); err != nil {
		return nil, err
	}
	if t.RectLo, err = adoptF64Cols(secs[secRectLo], dim, rslots, ti, "rect-lo"); err != nil {
		return nil, err
	}
	if t.RectHi, err = adoptF64Cols(secs[secRectHi], dim, rslots, ti, "rect-hi"); err != nil {
		return nil, err
	}
	if t.PointCols, err = adoptF64Cols(secs[secPoints], dim, lslots, ti, "points"); err != nil {
		return nil, err
	}
	if t.IDs, err = adoptI64s(secs[secIDs], lslots, ti, "ids"); err != nil {
		return nil, err
	}
	return t, nil
}

// The adopt helpers mirror the decode helpers' nil and exact-length
// checks, then reinterpret the payload in place. Sound because the
// caller established the host is little-endian and the buffer base is
// 8-byte aligned, and the writer aligns every section offset to 64.

func adoptI32s(p []byte, n, ti int, what string) ([]int32, error) {
	if p == nil {
		return nil, corruptf("tree %d: missing %s section", ti, what)
	}
	if int64(len(p)) != 4*int64(n) {
		return nil, corruptf("tree %d: %s section is %d bytes, want %d elements", ti, what, len(p), n)
	}
	if n == 0 {
		return []int32{}, nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(p))), n), nil
}

func adoptI64s(p []byte, n, ti int, what string) ([]int64, error) {
	if p == nil {
		return nil, corruptf("tree %d: missing %s section", ti, what)
	}
	if int64(len(p)) != 8*int64(n) {
		return nil, corruptf("tree %d: %s section is %d bytes, want %d elements", ti, what, len(p), n)
	}
	if n == 0 {
		return []int64{}, nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(unsafe.SliceData(p))), n), nil
}

func adoptF64Cols(p []byte, dim, slots, ti int, what string) ([][]float64, error) {
	if p == nil {
		return nil, corruptf("tree %d: missing %s section", ti, what)
	}
	if int64(len(p)) != 8*int64(dim)*int64(slots) {
		return nil, corruptf("tree %d: %s section is %d bytes, want %d×%d floats", ti, what, len(p), dim, slots)
	}
	cols := make([][]float64, dim)
	if slots == 0 {
		for a := range cols {
			cols[a] = []float64{}
		}
		return cols, nil
	}
	flat := unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(p))), dim*slots)
	for a := 0; a < dim; a++ {
		cols[a] = flat[a*slots : (a+1)*slots : (a+1)*slots]
	}
	return cols, nil
}
