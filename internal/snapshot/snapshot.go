// Package snapshot defines the on-disk format for persistent index
// snapshots: a versioned binary serialisation of one or more packed SoA
// R-tree arenas (see internal/rtree.Packed) plus the manifest that ties
// them into a plain or Hilbert-sharded index. A snapshot captures the
// arena verbatim — per-axis coordinate columns, int32 child indices,
// entry ranges, page identifiers — so a loaded index serves queries with
// bit-identical results, costs and node-access counts to the index that
// wrote it, without re-bulk-loading anything.
//
// # Format (version 2)
//
// All integers are little-endian; floats are IEEE 754 bit patterns.
//
//	offset  size  field
//	     0     8  magic "GNNSNAP\x00"
//	     8     4  format version (uint32, currently 2)
//	    12     4  index kind (uint32: 0 plain, 1 sharded)
//	    16     4  dimensionality (uint32, >= 1)
//	    20     4  tree count (uint32: 1 for plain, S for sharded)
//	    24     8  total point count (uint64)
//	    32     4  section count (uint32)
//	    36     4  reserved (0)
//	    40     …  section table: 28 bytes per section
//	     …     …  section payloads, in table order, each padded to start
//	              on a 64-byte boundary (pad bytes are zero)
//
// Each section-table entry is {kind uint32, tree uint32, offset uint64,
// length uint64, crc uint32}: offset/length locate the payload from the
// start of the file and crc is the IEEE CRC-32 of the payload bytes, so
// every section is independently integrity-checked. Every tree
// contributes nine sections (meta, node levels, node pages, node slot
// ranges, child indices, per-axis rect-lo/rect-hi columns, per-axis
// point columns, ids); a sharded snapshot adds one manifest-extension
// section carrying the Hilbert-cut provenance (curve order, partition
// bounding box, per-shard cut sizes).
//
// The 64-byte section alignment (new in version 2, along with the slot
// ranges section storing all start slots followed by all end slots
// instead of interleaved pairs) exists so a decoder may adopt the
// numeric columns directly from an mmap'd file: every []int32, []int64
// and []float64 payload sits cache-line aligned, and a page-aligned
// mapping makes the in-file arrays valid Go slices without a copy. See
// DecodeAdopted.
//
// # Version and compatibility policy
//
// The version is bumped on ANY change to the byte layout, section set or
// semantics — there are no minor versions and no in-place migrations.
// Decoders accept exactly the versions they know (currently: 2) and
// return ErrVersion otherwise; re-snapshot from the source data to
// upgrade. The checked-in golden fixture (testdata/golden_v2.snap at the
// repository root) locks version 2: a format change that forgets to bump
// the version fails its compatibility test.
//
// The decoder is strictly validating: it returns typed errors
// (ErrBadMagic, ErrVersion, ErrChecksum, ErrTruncated, ErrCorrupt) and
// never panics on corrupt input, and it allocates only what the actual
// input length supports, so a forged header cannot trigger huge
// allocations.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"slices"
)

// Magic identifies a snapshot file. The trailing NUL keeps it exactly 8
// bytes and distinguishable from text formats.
const Magic = "GNNSNAP\x00"

// Version is the current format version. See the package comment for the
// compatibility policy.
const Version = 2

// Typed decode errors. Wrapped errors add context; match with errors.Is.
var (
	// ErrBadMagic reports input that is not a snapshot file at all.
	ErrBadMagic = errors.New("snapshot: bad magic (not a snapshot file)")
	// ErrVersion reports a snapshot written by an unknown format version.
	ErrVersion = errors.New("snapshot: unsupported format version")
	// ErrChecksum reports a section whose CRC-32 does not match its payload.
	ErrChecksum = errors.New("snapshot: section checksum mismatch")
	// ErrTruncated reports input that ends before its declared contents.
	ErrTruncated = errors.New("snapshot: truncated input")
	// ErrCorrupt reports structurally invalid contents (bad counts, ranges,
	// child indices, section layout) in an otherwise well-framed file.
	ErrCorrupt = errors.New("snapshot: corrupt contents")
)

// Kind is the index kind a snapshot serialises.
type Kind uint32

const (
	// KindPlain is a single-tree index (gnn.Index).
	KindPlain Kind = 0
	// KindSharded is a Hilbert-partitioned index (gnn.ShardedIndex): one
	// tree section group per shard plus the manifest extension.
	KindSharded Kind = 1
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindPlain:
		return "plain"
	case KindSharded:
		return "sharded"
	default:
		return fmt.Sprintf("Kind(%d)", uint32(k))
	}
}

// Section kinds.
const (
	secHilbert  = 1  // manifest extension: Hilbert-cut metadata (sharded)
	secTreeMeta = 2  // fixed-size per-tree counters
	secLevels   = 3  // []int32, per node
	secPages    = 4  // []int64 page IDs, per node
	secRanges   = 5  // []int32, start column then end column, 2 per node
	secChildren = 6  // []int32, per routing slot
	secRectLo   = 7  // []float64, axis-major, dim × routing slots
	secRectHi   = 8  // []float64, axis-major, dim × routing slots
	secPoints   = 9  // []float64, axis-major, dim × leaf slots
	secIDs      = 10 // []int64, per leaf slot
)

// headerSize and tableEntrySize are the fixed framing sizes;
// sectionAlign is the byte alignment of every section payload.
const (
	headerSize     = 40
	tableEntrySize = 28
	treeMetaSize   = 56
	sectionAlign   = 64
)

// alignUp rounds n up to the next multiple of sectionAlign.
func alignUp(n uint64) uint64 {
	return (n + sectionAlign - 1) &^ uint64(sectionAlign-1)
}

// MaxDim bounds the dimensionality a snapshot may declare. It is far
// beyond any real spatial workload; its purpose is to keep every
// length-of-section computation in the decoder comfortably inside int64,
// so a forged header cannot overflow a validation check into a panic.
const MaxDim = 1 << 16

// treeSectionKinds is the per-tree section set, in the order the writer
// emits it. The decoder requires each kind exactly once per tree.
var treeSectionKinds = []uint32{
	secTreeMeta, secLevels, secPages, secRanges, secChildren,
	secRectLo, secRectHi, secPoints, secIDs,
}

// Hilbert records how a sharded snapshot's partition was cut: provenance
// for operators and a consistency check for the loader, not an input to
// reconstruction (the per-shard point assignment is already baked into
// the tree sections).
type Hilbert struct {
	// Order is the Hilbert curve order used for the partition sort.
	Order uint32
	// Lo and Hi are the partition bounding box on the first two axes.
	Lo, Hi [2]float64
	// CutSizes are the per-shard point counts, in shard order.
	CutSizes []int64
}

// Manifest describes the snapshot as a whole.
type Manifest struct {
	Kind   Kind
	Dim    int
	Points int
	// Hilbert is the cut metadata of a sharded snapshot, nil for plain.
	Hilbert *Hilbert
}

// Tree is the serialisable arena of one packed R-tree: a flat
// structure-of-arrays mirror of rtree.Packed plus the construction
// parameters needed to rebuild the dynamic tree around it. Node ids are
// depth-first preorder; node i owns slot range [Start[i], End[i]) of the
// routing space (internal nodes) or the leaf space (leaves).
type Tree struct {
	Size       int
	Height     int
	MaxEntries int
	MinEntries int
	FirstPage  int64
	Pages      int64
	Root       int32

	// Per-node arrays.
	Level []int32
	Page  []int64
	Start []int32
	End   []int32

	// Routing-slot arrays; RectLo/RectHi are [axis][slot].
	Child          []int32
	RectLo, RectHi [][]float64

	// Leaf-slot arrays; PointCols is [axis][slot].
	PointCols [][]float64
	IDs       []int64
}

// section is one table entry during encode/decode.
type section struct {
	kind   uint32
	tree   uint32
	offset uint64
	length uint64
	crc    uint32
}

// noTree is the table entry's tree field for manifest-level sections.
const noTree = ^uint32(0)

// ---------------------------------------------------------------------------
// Encoding

// appendU32/appendU64/appendF64 are the little-endian append helpers.
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// sectionLength returns the payload length of section kind for tree t
// under manifest m (t may be nil for manifest-level sections).
func sectionLength(kind uint32, m Manifest, trees []*Tree, t *Tree) uint64 {
	switch kind {
	case secHilbert:
		return 8 + 32 + 8*uint64(len(trees))
	case secTreeMeta:
		return treeMetaSize
	case secLevels:
		return 4 * uint64(len(t.Level))
	case secPages:
		return 8 * uint64(len(t.Page))
	case secRanges:
		return 8 * uint64(len(t.Start))
	case secChildren:
		return 4 * uint64(len(t.Child))
	case secRectLo, secRectHi:
		return 8 * uint64(m.Dim) * uint64(len(t.Child))
	case secPoints:
		return 8 * uint64(m.Dim) * uint64(len(t.IDs))
	case secIDs:
		return 8 * uint64(len(t.IDs))
	}
	panic("snapshot: unknown section kind") // writer-internal; unreachable
}

// encodeSection appends section kind's payload to buf and returns it.
func encodeSection(buf []byte, kind uint32, m Manifest, trees []*Tree, t *Tree) []byte {
	switch kind {
	case secHilbert:
		h := m.Hilbert
		buf = appendU32(buf, h.Order)
		buf = appendU32(buf, 0)
		buf = appendF64(buf, h.Lo[0])
		buf = appendF64(buf, h.Lo[1])
		buf = appendF64(buf, h.Hi[0])
		buf = appendF64(buf, h.Hi[1])
		for _, c := range h.CutSizes {
			buf = appendU64(buf, uint64(c))
		}
	case secTreeMeta:
		buf = appendU64(buf, uint64(t.Size))
		buf = appendU32(buf, uint32(t.Height))
		buf = appendU32(buf, uint32(t.MaxEntries))
		buf = appendU32(buf, uint32(t.MinEntries))
		buf = appendU32(buf, uint32(t.Root))
		buf = appendU32(buf, uint32(len(t.Level)))
		buf = appendU32(buf, uint32(len(t.Child)))
		buf = appendU32(buf, uint32(len(t.IDs)))
		buf = appendU32(buf, 0)
		buf = appendU64(buf, uint64(t.FirstPage))
		buf = appendU64(buf, uint64(t.Pages))
	case secLevels:
		for _, v := range t.Level {
			buf = appendU32(buf, uint32(v))
		}
	case secPages:
		for _, v := range t.Page {
			buf = appendU64(buf, uint64(v))
		}
	case secRanges:
		// Start column then end column (not interleaved pairs), so a
		// zero-copy decoder can adopt both as whole slices.
		for _, v := range t.Start {
			buf = appendU32(buf, uint32(v))
		}
		for _, v := range t.End {
			buf = appendU32(buf, uint32(v))
		}
	case secChildren:
		for _, v := range t.Child {
			buf = appendU32(buf, uint32(v))
		}
	case secRectLo:
		for a := 0; a < m.Dim; a++ {
			for _, v := range t.RectLo[a] {
				buf = appendF64(buf, v)
			}
		}
	case secRectHi:
		for a := 0; a < m.Dim; a++ {
			for _, v := range t.RectHi[a] {
				buf = appendF64(buf, v)
			}
		}
	case secPoints:
		for a := 0; a < m.Dim; a++ {
			for _, v := range t.PointCols[a] {
				buf = appendF64(buf, v)
			}
		}
	case secIDs:
		for _, v := range t.IDs {
			buf = appendU64(buf, uint64(v))
		}
	}
	return buf
}

// Write serialises the manifest and its trees to w in format Version.
// The trees slice must have one entry per shard (exactly one for
// KindPlain); m.Hilbert is written for KindSharded and ignored otherwise.
func Write(w io.Writer, m Manifest, trees []*Tree) error {
	if err := validateForWrite(m, trees); err != nil {
		return err
	}

	// Lay out the section list: the manifest extension first, then each
	// tree's section group in kind order.
	var secs []section
	var treeOf []*Tree // parallel to secs; nil for manifest-level sections
	if m.Kind == KindSharded {
		secs = append(secs, section{kind: secHilbert, tree: noTree})
		treeOf = append(treeOf, nil)
	}
	for ti, t := range trees {
		for _, kind := range treeSectionKinds {
			secs = append(secs, section{kind: kind, tree: uint32(ti)})
			treeOf = append(treeOf, t)
		}
	}

	// First pass: compute offsets, lengths and CRCs. Payloads are encoded
	// into a reusable buffer; the bytes written in the second pass are the
	// exact same encoding, so the table is correct by construction. Every
	// payload starts on a sectionAlign boundary (zero padding in between)
	// so mmap'd decoders can adopt the arrays in place.
	offset := uint64(headerSize + tableEntrySize*len(secs))
	scratch := make([]byte, 0, 1<<16)
	for i := range secs {
		s := &secs[i]
		s.offset = alignUp(offset)
		s.length = sectionLength(s.kind, m, trees, treeOf[i])
		offset = s.offset + s.length
		scratch = encodeSection(scratch[:0], s.kind, m, trees, treeOf[i])
		if uint64(len(scratch)) != s.length {
			return fmt.Errorf("snapshot: internal error: section %d encoded %d bytes, declared %d",
				s.kind, len(scratch), s.length)
		}
		s.crc = crc32.ChecksumIEEE(scratch)
	}

	// Header.
	hdr := make([]byte, 0, headerSize+tableEntrySize*len(secs))
	hdr = append(hdr, Magic...)
	hdr = appendU32(hdr, Version)
	hdr = appendU32(hdr, uint32(m.Kind))
	hdr = appendU32(hdr, uint32(m.Dim))
	hdr = appendU32(hdr, uint32(len(trees)))
	hdr = appendU64(hdr, uint64(m.Points))
	hdr = appendU32(hdr, uint32(len(secs)))
	hdr = appendU32(hdr, 0)
	for _, s := range secs {
		hdr = appendU32(hdr, s.kind)
		hdr = appendU32(hdr, s.tree)
		hdr = appendU64(hdr, s.offset)
		hdr = appendU64(hdr, s.length)
		hdr = appendU32(hdr, s.crc)
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}

	// Second pass: stream the payloads, zero-padding up to each section's
	// aligned offset.
	var pad [sectionAlign]byte
	cursor := uint64(headerSize + tableEntrySize*len(secs))
	for i := range secs {
		if gap := secs[i].offset - cursor; gap > 0 {
			if _, err := w.Write(pad[:gap]); err != nil {
				return err
			}
		}
		scratch = encodeSection(scratch[:0], secs[i].kind, m, trees, treeOf[i])
		if _, err := w.Write(scratch); err != nil {
			return err
		}
		cursor = secs[i].offset + secs[i].length
	}
	return nil
}

// validateForWrite sanity-checks the writer's inputs so a bad caller
// produces an error instead of an unreadable file.
func validateForWrite(m Manifest, trees []*Tree) error {
	if m.Dim < 1 || m.Dim > MaxDim {
		return fmt.Errorf("snapshot: dimension %d outside [1, %d]", m.Dim, MaxDim)
	}
	switch m.Kind {
	case KindPlain:
		if len(trees) != 1 {
			return fmt.Errorf("snapshot: plain snapshot needs exactly 1 tree, got %d", len(trees))
		}
	case KindSharded:
		if len(trees) < 1 {
			return fmt.Errorf("snapshot: sharded snapshot needs at least 1 tree")
		}
		if m.Hilbert == nil || len(m.Hilbert.CutSizes) != len(trees) {
			return fmt.Errorf("snapshot: sharded snapshot needs Hilbert metadata with one cut per tree")
		}
	default:
		return fmt.Errorf("snapshot: unknown kind %v", m.Kind)
	}
	total := 0
	for ti, t := range trees {
		if len(t.Page) != len(t.Level) || len(t.Start) != len(t.Level) || len(t.End) != len(t.Level) {
			return fmt.Errorf("snapshot: tree %d: inconsistent node array lengths", ti)
		}
		if len(t.RectLo) != m.Dim || len(t.RectHi) != m.Dim || len(t.PointCols) != m.Dim {
			return fmt.Errorf("snapshot: tree %d: axis count does not match dimension %d", ti, m.Dim)
		}
		for a := 0; a < m.Dim; a++ {
			if len(t.RectLo[a]) != len(t.Child) || len(t.RectHi[a]) != len(t.Child) {
				return fmt.Errorf("snapshot: tree %d: rect columns do not match routing slots", ti)
			}
			if len(t.PointCols[a]) != len(t.IDs) {
				return fmt.Errorf("snapshot: tree %d: point columns do not match leaf slots", ti)
			}
		}
		if t.Size != len(t.IDs) {
			return fmt.Errorf("snapshot: tree %d: size %d != %d leaf slots", ti, t.Size, len(t.IDs))
		}
		total += t.Size
	}
	if total != m.Points {
		return fmt.Errorf("snapshot: manifest declares %d points, trees hold %d", m.Points, total)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Decoding

// Sniff inspects the first bytes of a file (at least SniffLen) and
// reports whether they open a snapshot and, if so, of which kind — the
// cheap dispatch for tools that must route a path to the right loader
// without decoding the file twice. It performs no validation beyond the
// magic; the full decoder still decides whether the file is sound.
func Sniff(head []byte) (Kind, bool) {
	if len(head) < SniffLen || string(head[:len(Magic)]) != Magic {
		return 0, false
	}
	return Kind(binary.LittleEndian.Uint32(head[12:])), true
}

// SniffLen is the prefix length Sniff needs.
const SniffLen = 16

// Read decodes a snapshot from r (reading it fully) and returns its
// manifest and trees. See Decode for validation guarantees.
func Read(r io.Reader) (Manifest, []*Tree, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Manifest{}, nil, err
	}
	return Decode(data)
}

// corruptf wraps ErrCorrupt with context.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// frame is the parsed, frame-checked skeleton of a snapshot: header
// fields plus the section table, grouped per tree. Section payloads are
// NOT yet checksummed or interpreted.
type frame struct {
	m        Manifest // Kind and Dim set; Points/Hilbert not yet
	numTrees int
	points   uint64
	secs     []section
	byTree   []map[uint32][]byte
	hilbert  []byte
}

// parseFrame validates the header and section table of data: magic,
// version, counts, contiguous aligned section layout ending exactly at
// the end of input, zero padding between sections, every payload in
// bounds, each section kind exactly once per tree. After parseFrame, any
// slice of any section payload is in bounds — but the payload bytes are
// unverified until their CRCs are checked.
func parseFrame(data []byte) (*frame, error) {
	if len(data) < len(Magic) {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: header needs %d bytes, have %d", ErrTruncated, headerSize, len(data))
	}
	u32 := func(off int) uint32 { return binary.LittleEndian.Uint32(data[off:]) }
	u64 := func(off int) uint64 { return binary.LittleEndian.Uint64(data[off:]) }

	if v := u32(8); v != Version {
		return nil, fmt.Errorf("%w: %d (this build reads %d)", ErrVersion, v, Version)
	}
	f := &frame{
		m:        Manifest{Kind: Kind(u32(12)), Dim: int(u32(16))},
		numTrees: int(u32(20)),
		points:   u64(24),
	}
	numSecs := int(u32(32))

	if f.m.Kind != KindPlain && f.m.Kind != KindSharded {
		return nil, corruptf("unknown index kind %d", uint32(f.m.Kind))
	}
	if f.m.Dim < 1 || f.m.Dim > MaxDim {
		return nil, corruptf("dimension %d", f.m.Dim)
	}
	if f.numTrees < 1 {
		return nil, corruptf("%d trees", f.numTrees)
	}
	if f.m.Kind == KindPlain && f.numTrees != 1 {
		return nil, corruptf("plain snapshot with %d trees", f.numTrees)
	}
	wantSecs := f.numTrees * len(treeSectionKinds)
	if f.m.Kind == KindSharded {
		wantSecs++
	}
	if numSecs != wantSecs {
		return nil, corruptf("%d sections for %d trees (want %d)", numSecs, f.numTrees, wantSecs)
	}
	tableEnd := headerSize + tableEntrySize*numSecs
	if len(data) < tableEnd {
		return nil, fmt.Errorf("%w: section table needs %d bytes, have %d", ErrTruncated, tableEnd, len(data))
	}

	// Parse and frame-check the section table: payloads must be laid out
	// in table order at ascending aligned offsets (zero padding between),
	// ending exactly at end of input.
	f.secs = make([]section, numSecs)
	next := uint64(tableEnd)
	for i := range f.secs {
		off := headerSize + tableEntrySize*i
		f.secs[i] = section{
			kind:   u32(off),
			tree:   u32(off + 4),
			offset: u64(off + 8),
			length: u64(off + 16),
			crc:    u32(off + 24),
		}
		if want := alignUp(next); f.secs[i].offset != want {
			return nil, corruptf("section %d at offset %d, expected %d", i, f.secs[i].offset, want)
		}
		if f.secs[i].offset > uint64(len(data)) {
			return nil, fmt.Errorf("%w: section %d starts at %d, have %d bytes",
				ErrTruncated, i, f.secs[i].offset, len(data))
		}
		for _, b := range data[next:f.secs[i].offset] {
			if b != 0 {
				return nil, corruptf("nonzero padding before section %d", i)
			}
		}
		next = f.secs[i].offset
		if f.secs[i].length > uint64(len(data))-next {
			return nil, fmt.Errorf("%w: section %d needs %d bytes at offset %d, have %d",
				ErrTruncated, i, f.secs[i].length, next, uint64(len(data))-next)
		}
		next += f.secs[i].length
	}
	if next != uint64(len(data)) {
		return nil, corruptf("%d trailing bytes after last section", uint64(len(data))-next)
	}

	// Group the sections: manifest extension plus one group per tree, each
	// kind exactly once.
	f.byTree = make([]map[uint32][]byte, f.numTrees)
	for i := range f.byTree {
		f.byTree[i] = make(map[uint32][]byte, len(treeSectionKinds))
	}
	for i, s := range f.secs {
		payload := data[s.offset : s.offset+s.length]
		if s.kind == secHilbert {
			if f.m.Kind != KindSharded || f.hilbert != nil {
				return nil, corruptf("unexpected Hilbert section %d", i)
			}
			f.hilbert = payload
			continue
		}
		if int(s.tree) >= f.numTrees {
			return nil, corruptf("section %d references tree %d of %d", i, s.tree, f.numTrees)
		}
		if _, dup := f.byTree[s.tree][s.kind]; dup {
			return nil, corruptf("duplicate section kind %d for tree %d", s.kind, s.tree)
		}
		f.byTree[s.tree][s.kind] = payload
	}
	if f.m.Kind == KindSharded && f.hilbert == nil {
		return nil, corruptf("sharded snapshot without Hilbert section")
	}
	return f, nil
}

// verifyChecksums checks every section's CRC against its payload.
func (f *frame) verifyChecksums(data []byte) error {
	for i, s := range f.secs {
		payload := data[s.offset : s.offset+s.length]
		if crc := crc32.ChecksumIEEE(payload); crc != s.crc {
			return fmt.Errorf("%w: section %d (kind %d): %08x != %08x", ErrChecksum, i, s.kind, crc, s.crc)
		}
	}
	return nil
}

// crossCheck validates the whole-snapshot invariants that span trees:
// the declared point total, disjoint per-tree page ranges (the trees of
// a sharded snapshot share one accountant and possibly one LRU buffer,
// which is only sound over disjoint pages) and the Hilbert cut sizes.
func crossCheck(m *Manifest, trees []*Tree, points uint64) error {
	total := uint64(0)
	for _, t := range trees {
		total += uint64(t.Size)
	}
	if total != points {
		return corruptf("manifest declares %d points, trees hold %d", points, total)
	}
	if len(trees) > 1 {
		order := make([]*Tree, len(trees))
		copy(order, trees)
		slices.SortFunc(order, func(a, b *Tree) int {
			switch {
			case a.FirstPage < b.FirstPage:
				return -1
			case a.FirstPage > b.FirstPage:
				return 1
			default:
				return 0
			}
		})
		for i := 1; i < len(order); i++ {
			if order[i].FirstPage < order[i-1].FirstPage+order[i-1].Pages {
				return corruptf("tree page ranges overlap at page %d", order[i].FirstPage)
			}
		}
	}
	if m.Hilbert != nil {
		for i, c := range m.Hilbert.CutSizes {
			if c != int64(trees[i].Size) {
				return corruptf("Hilbert cut %d declares %d points, tree holds %d", i, c, trees[i].Size)
			}
		}
	}
	m.Points = int(points)
	return nil
}

// Decode parses and fully validates a snapshot. Corrupt or truncated
// input yields a typed error (ErrBadMagic, ErrVersion, ErrChecksum,
// ErrTruncated, ErrCorrupt) — never a panic — and allocations are
// bounded by the actual input size, not by declared counts. The returned
// trees own their memory (nothing aliases data); for the zero-copy
// variant see DecodeAdopted.
func Decode(data []byte) (Manifest, []*Tree, error) {
	f, err := parseFrame(data)
	if err != nil {
		return Manifest{}, nil, err
	}
	// Verify every section's checksum before interpreting any payload.
	if err := f.verifyChecksums(data); err != nil {
		return Manifest{}, nil, err
	}
	m := f.m
	if m.Kind == KindSharded {
		h, err := decodeHilbert(f.hilbert, f.numTrees)
		if err != nil {
			return Manifest{}, nil, err
		}
		m.Hilbert = h
	}
	trees := make([]*Tree, f.numTrees)
	for ti := range trees {
		t, err := decodeTree(f.byTree[ti], m.Dim, ti)
		if err != nil {
			return Manifest{}, nil, err
		}
		trees[ti] = t
	}
	if err := crossCheck(&m, trees, f.points); err != nil {
		return Manifest{}, nil, err
	}
	return m, trees, nil
}

// decodeHilbert parses the manifest-extension payload.
func decodeHilbert(p []byte, numTrees int) (*Hilbert, error) {
	want := 8 + 32 + 8*numTrees
	if len(p) != want {
		return nil, corruptf("Hilbert section is %d bytes, want %d", len(p), want)
	}
	h := &Hilbert{Order: binary.LittleEndian.Uint32(p)}
	f64 := func(off int) float64 { return math.Float64frombits(binary.LittleEndian.Uint64(p[off:])) }
	h.Lo[0], h.Lo[1] = f64(8), f64(16)
	h.Hi[0], h.Hi[1] = f64(24), f64(32)
	h.CutSizes = make([]int64, numTrees)
	for i := range h.CutSizes {
		c := int64(binary.LittleEndian.Uint64(p[40+8*i:]))
		if c < 0 {
			return nil, corruptf("Hilbert cut %d is negative", i)
		}
		h.CutSizes[i] = c
	}
	return h, nil
}

// parseTreeMeta parses one tree's fixed-size meta section and checks the
// counters for internal consistency. The meta counters must agree with
// the actual section lengths (checked by the callers' per-section
// decode/adopt helpers) before anything is allocated, so a forged count
// cannot over-allocate.
func parseTreeMeta(meta []byte, ti int) (t *Tree, nodes, rslots, lslots int, err error) {
	if meta == nil {
		return nil, 0, 0, 0, corruptf("tree %d: missing meta section", ti)
	}
	if len(meta) != treeMetaSize {
		return nil, 0, 0, 0, corruptf("tree %d: meta section is %d bytes, want %d", ti, len(meta), treeMetaSize)
	}
	u32 := func(off int) uint32 { return binary.LittleEndian.Uint32(meta[off:]) }
	u64 := func(off int) uint64 { return binary.LittleEndian.Uint64(meta[off:]) }
	t = &Tree{
		Size:       int(u64(0)),
		Height:     int(u32(8)),
		MaxEntries: int(u32(12)),
		MinEntries: int(u32(16)),
		Root:       int32(u32(20)),
		FirstPage:  int64(u64(40)),
		Pages:      int64(u64(48)),
	}
	nodes = int(u32(24))
	rslots = int(u32(28))
	lslots = int(u32(32))

	if t.Size < 0 || t.Height < 1 || nodes < 1 || rslots < 0 || lslots < 0 {
		return nil, 0, 0, 0, corruptf("tree %d: impossible counters (size %d, height %d, %d nodes, %d/%d slots)",
			ti, t.Size, t.Height, nodes, rslots, lslots)
	}
	if t.Size != lslots {
		return nil, 0, 0, 0, corruptf("tree %d: size %d != %d leaf slots", ti, t.Size, lslots)
	}
	if t.FirstPage < 0 || t.Pages < int64(nodes) || t.FirstPage > math.MaxInt64-t.Pages {
		return nil, 0, 0, 0, corruptf("tree %d: %d pages for %d nodes (first page %d)", ti, t.Pages, nodes, t.FirstPage)
	}
	if t.Root < 0 || int(t.Root) >= nodes {
		return nil, 0, 0, 0, corruptf("tree %d: root %d of %d nodes", ti, t.Root, nodes)
	}
	if t.MaxEntries < 4 || t.MinEntries < 1 || t.MinEntries > t.MaxEntries/2 {
		return nil, 0, 0, 0, corruptf("tree %d: node capacity %d/%d", ti, t.MinEntries, t.MaxEntries)
	}
	return t, nodes, rslots, lslots, nil
}

// decodeTree parses and structurally validates one tree's section group.
func decodeTree(secs map[uint32][]byte, dim, ti int) (*Tree, error) {
	t, nodes, rslots, lslots, err := parseTreeMeta(secs[secTreeMeta], ti)
	if err != nil {
		return nil, err
	}
	if t.Level, err = decodeI32s(secs[secLevels], nodes, ti, "levels"); err != nil {
		return nil, err
	}
	if t.Page, err = decodeI64s(secs[secPages], nodes, ti, "pages"); err != nil {
		return nil, err
	}
	ranges, err := decodeI32s(secs[secRanges], 2*nodes, ti, "ranges")
	if err != nil {
		return nil, err
	}
	t.Start = ranges[:nodes:nodes]
	t.End = ranges[nodes:]
	if t.Child, err = decodeI32s(secs[secChildren], rslots, ti, "children"); err != nil {
		return nil, err
	}
	if t.RectLo, err = decodeF64Cols(secs[secRectLo], dim, rslots, ti, "rect-lo"); err != nil {
		return nil, err
	}
	if t.RectHi, err = decodeF64Cols(secs[secRectHi], dim, rslots, ti, "rect-hi"); err != nil {
		return nil, err
	}
	if t.PointCols, err = decodeF64Cols(secs[secPoints], dim, lslots, ti, "points"); err != nil {
		return nil, err
	}
	if t.IDs, err = decodeI64s(secs[secIDs], lslots, ti, "ids"); err != nil {
		return nil, err
	}
	if err := validateTreeStructure(t, nodes, rslots, lslots, ti); err != nil {
		return nil, err
	}
	return t, nil
}

// The decode helpers compare declared element counts against actual
// section lengths in int64, so the arithmetic cannot wrap even on
// 32-bit platforms or with forged counts — and every allocation below
// is therefore bounded by the real input size.

func decodeI32s(p []byte, n, ti int, what string) ([]int32, error) {
	if p == nil {
		return nil, corruptf("tree %d: missing %s section", ti, what)
	}
	if int64(len(p)) != 4*int64(n) {
		return nil, corruptf("tree %d: %s section is %d bytes, want %d elements", ti, what, len(p), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(p[4*i:]))
	}
	return out, nil
}

func decodeI64s(p []byte, n, ti int, what string) ([]int64, error) {
	if p == nil {
		return nil, corruptf("tree %d: missing %s section", ti, what)
	}
	if int64(len(p)) != 8*int64(n) {
		return nil, corruptf("tree %d: %s section is %d bytes, want %d elements", ti, what, len(p), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(p[8*i:]))
	}
	return out, nil
}

func decodeF64Cols(p []byte, dim, slots, ti int, what string) ([][]float64, error) {
	if p == nil {
		return nil, corruptf("tree %d: missing %s section", ti, what)
	}
	// dim ≤ MaxDim and slots < 2^32, so the product stays far below the
	// int64 range.
	if int64(len(p)) != 8*int64(dim)*int64(slots) {
		return nil, corruptf("tree %d: %s section is %d bytes, want %d×%d floats", ti, what, len(p), dim, slots)
	}
	// One backing slab for all axes keeps the loaded arena as cache-dense
	// as a freshly packed one. len(p) passed the exact-length check, so
	// dim*slots fits the platform int.
	flat := make([]float64, dim*slots)
	for i := range flat {
		flat[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
	}
	cols := make([][]float64, dim)
	for a := 0; a < dim; a++ {
		cols[a] = flat[a*slots : (a+1)*slots : (a+1)*slots]
	}
	return cols, nil
}

// validateTreeStructure checks the arena's graph: every node reachable
// from the root exactly once in a proper tree, child levels descending
// by one, and every slot of both slot spaces owned by exactly one node
// (a partition, not just a matching total). After this, reconstruction
// cannot go out of bounds, loop, or alias entries between nodes.
func validateTreeStructure(t *Tree, nodes, rslots, lslots, ti int) error {
	if int(t.Level[t.Root])+1 != t.Height {
		return corruptf("tree %d: root level %d, height %d", ti, t.Level[t.Root], t.Height)
	}
	visited := make([]bool, nodes)
	leafOwned := make([]bool, lslots)
	routOwned := make([]bool, rslots)
	claim := func(owned []bool, s, e int32) bool {
		for i := s; i < e; i++ {
			if owned[i] {
				return false
			}
			owned[i] = true
		}
		return true
	}
	// Iterative DFS: corrupt input must not overflow the goroutine stack.
	stack := []int32{t.Root}
	visited[t.Root] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		lvl := t.Level[n]
		s, e := t.Start[n], t.End[n]
		if s < 0 || e < s {
			return corruptf("tree %d: node %d slot range [%d,%d)", ti, n, s, e)
		}
		if lvl == 0 {
			if int(e) > lslots {
				return corruptf("tree %d: leaf %d range [%d,%d) of %d slots", ti, n, s, e, lslots)
			}
			if !claim(leafOwned, s, e) {
				return corruptf("tree %d: leaf %d overlaps another node's slots", ti, n)
			}
			continue
		}
		if lvl < 0 {
			return corruptf("tree %d: node %d level %d", ti, n, lvl)
		}
		if int(e) > rslots {
			return corruptf("tree %d: node %d range [%d,%d) of %d routing slots", ti, n, s, e, rslots)
		}
		if !claim(routOwned, s, e) {
			return corruptf("tree %d: node %d overlaps another node's routing slots", ti, n)
		}
		for i := s; i < e; i++ {
			c := t.Child[i]
			if c < 0 || int(c) >= nodes {
				return corruptf("tree %d: slot %d child %d of %d nodes", ti, i, c, nodes)
			}
			if visited[c] {
				return corruptf("tree %d: node %d has multiple parents or forms a cycle", ti, c)
			}
			if t.Level[c] != lvl-1 {
				return corruptf("tree %d: child %d at level %d under level %d", ti, c, t.Level[c], lvl)
			}
			visited[c] = true
			stack = append(stack, c)
		}
	}
	for n, v := range visited {
		if !v {
			return corruptf("tree %d: node %d unreachable from root", ti, n)
		}
	}
	for i, v := range leafOwned {
		if !v {
			return corruptf("tree %d: leaf slot %d owned by no node", ti, i)
		}
	}
	for i, v := range routOwned {
		if !v {
			return corruptf("tree %d: routing slot %d owned by no node", ti, i)
		}
	}
	// Distinct pages per node, inside the tree's declared page range, keep
	// LRU-buffer and node-access accounting faithful.
	seen := make(map[int64]struct{}, nodes)
	for n, pg := range t.Page {
		if pg < t.FirstPage || pg >= t.FirstPage+t.Pages {
			return corruptf("tree %d: node %d page %d outside [%d,%d)", ti, n, pg, t.FirstPage, t.FirstPage+t.Pages)
		}
		if _, dup := seen[pg]; dup {
			return corruptf("tree %d: duplicate page id %d", ti, pg)
		}
		seen[pg] = struct{}{}
	}
	return nil
}
