package snapshot

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeVia(path, payload string, verify func(string) error) error {
	return AtomicWriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, payload)
		return err
	}, verify)
}

func TestAtomicWriteFileHappyPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.snap")
	verified := ""
	if err := writeVia(path, "generation-1", func(tmp string) error {
		data, err := os.ReadFile(tmp)
		if err != nil {
			return err
		}
		verified = string(data)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if verified != "generation-1" {
		t.Fatalf("verify saw %q", verified)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "generation-1" {
		t.Fatalf("target: %q, %v", data, err)
	}
	if _, err := os.Stat(TempPath(path)); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	// Rotation replaces atomically.
	if err := writeVia(path, "generation-2", nil); err != nil {
		t.Fatal(err)
	}
	if data, _ := os.ReadFile(path); string(data) != "generation-2" {
		t.Fatalf("after rotation: %q", data)
	}
}

func TestAtomicWriteFileFailpoints(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.snap")
	if err := writeVia(path, "good", nil); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	for _, stage := range []string{StageCreate, StageWrite, StageSync, StageVerify, StageRename} {
		Failpoint = func(s, tmp string) error {
			if s == stage {
				return boom
			}
			return nil
		}
		err := writeVia(path, "torn", nil)
		Failpoint = nil
		if !errors.Is(err, boom) {
			t.Fatalf("%s: err = %v", stage, err)
		}
		if !strings.Contains(err.Error(), stage) {
			t.Fatalf("%s: error does not name the stage: %v", stage, err)
		}
		if data, rerr := os.ReadFile(path); rerr != nil || string(data) != "good" {
			t.Fatalf("%s: previous generation damaged: %q, %v", stage, data, rerr)
		}
		if _, serr := os.Stat(TempPath(path)); !os.IsNotExist(serr) {
			t.Fatalf("%s: temp orphan left: %v", stage, serr)
		}
	}
	// DirSync fails after the commit point: the error surfaces but the new
	// generation is already in place.
	Failpoint = func(s, tmp string) error {
		if s == StageDirSync {
			return boom
		}
		return nil
	}
	err := writeVia(path, "committed", nil)
	Failpoint = nil
	if !errors.Is(err, boom) {
		t.Fatalf("dirsync: err = %v", err)
	}
	if data, _ := os.ReadFile(path); string(data) != "committed" {
		t.Fatalf("dirsync fault rolled back a committed rename: %q", data)
	}
}

func TestAtomicWriteFileVerifyRejects(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.snap")
	if err := writeVia(path, "good", nil); err != nil {
		t.Fatal(err)
	}
	reject := errors.New("decode failed")
	err := writeVia(path, "corrupt", func(string) error { return reject })
	if !errors.Is(err, reject) {
		t.Fatalf("err = %v", err)
	}
	if data, _ := os.ReadFile(path); string(data) != "good" {
		t.Fatalf("rejected payload replaced the target: %q", data)
	}
	if _, err := os.Stat(TempPath(path)); !os.IsNotExist(err) {
		t.Fatal("temp orphan after verify rejection")
	}
}

func TestAtomicWriteFileWriterError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.snap")
	fail := errors.New("payload error")
	err := AtomicWriteFile(path, func(io.Writer) error { return fail }, nil)
	if !errors.Is(err, fail) {
		t.Fatalf("err = %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("target created despite writer failure")
	}
	if _, err := os.Stat(TempPath(path)); !os.IsNotExist(err) {
		t.Fatal("temp orphan after writer failure")
	}
}
