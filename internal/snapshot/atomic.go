package snapshot

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Stage names of the crash-safe rotation, in order. Fault-injection tests
// use them to fail AtomicWriteFile at each step and assert that the
// previous snapshot generation survives untouched.
const (
	StageCreate  = "create"  // about to create the temp file
	StageWrite   = "write"   // about to stream the payload
	StageSync    = "sync"    // about to fsync the temp file
	StageVerify  = "verify"  // about to run the caller's verification
	StageRename  = "rename"  // about to rename temp over the target
	StageDirSync = "dirsync" // about to fsync the parent directory
)

// Failpoint, when non-nil, is invoked before every rotation stage with
// the stage name and the temp file path. Returning an error aborts the
// rotation at that stage (the temp file is removed); the hook may also
// mutate the temp file in place — e.g. corrupt it before StageVerify — to
// simulate torn writes. Test-only; nil in production.
var Failpoint func(stage, tmpPath string) error

// TempPath returns the temp-file path AtomicWriteFile uses for a target:
// a stable name, so a crashed rotation leaves exactly one well-known
// orphan that the next successful rotation (or compactor start) removes.
func TempPath(path string) string { return path + ".tmp" }

func failpoint(stage, tmp string) error {
	if Failpoint == nil {
		return nil
	}
	return Failpoint(stage, tmp)
}

// AtomicWriteFile rotates a snapshot file crash-safely: the payload is
// streamed to a temp file in the same directory, fsynced, verified, and
// only then renamed over the target, followed by a parent-directory
// fsync. A crash or failure at any stage leaves the previous target
// content intact — the strict decoder never sees a torn file because the
// target is replaced atomically or not at all. On failure the temp file
// is removed and the first error is returned.
//
// verify, when non-nil, is called with the temp path after the data is
// durable and before the rename; returning an error aborts the rotation
// (this is where the compactor re-decodes its own output).
func AtomicWriteFile(path string, write func(io.Writer) error, verify func(tmpPath string) error) (err error) {
	tmp := TempPath(path)
	if e := failpoint(StageCreate, tmp); e != nil {
		return fmt.Errorf("snapshot: rotate %s: %w", StageCreate, e)
	}
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("snapshot: rotate: %w", err)
	}
	defer func() {
		if f != nil {
			f.Close()
		}
		if err != nil {
			os.Remove(tmp)
		}
	}()

	if err = failpoint(StageWrite, tmp); err != nil {
		return fmt.Errorf("snapshot: rotate %s: %w", StageWrite, err)
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err = write(bw); err != nil {
		return fmt.Errorf("snapshot: rotate write: %w", err)
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("snapshot: rotate flush: %w", err)
	}

	if err = failpoint(StageSync, tmp); err != nil {
		return fmt.Errorf("snapshot: rotate %s: %w", StageSync, err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("snapshot: rotate fsync: %w", err)
	}
	if err = f.Close(); err != nil {
		f = nil
		return fmt.Errorf("snapshot: rotate close: %w", err)
	}
	f = nil

	if err = failpoint(StageVerify, tmp); err != nil {
		return fmt.Errorf("snapshot: rotate %s: %w", StageVerify, err)
	}
	if verify != nil {
		if err = verify(tmp); err != nil {
			return fmt.Errorf("snapshot: rotate verify: %w", err)
		}
	}

	if err = failpoint(StageRename, tmp); err != nil {
		return fmt.Errorf("snapshot: rotate %s: %w", StageRename, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("snapshot: rotate rename: %w", err)
	}

	if err = failpoint(StageDirSync, tmp); err != nil {
		return fmt.Errorf("snapshot: rotate %s: %w", StageDirSync, err)
	}
	if d, derr := os.Open(filepath.Dir(path)); derr == nil {
		// Directory fsync makes the rename itself durable; best-effort
		// where the platform refuses it.
		d.Sync()
		d.Close()
	}
	return nil
}
