package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one parsed metric family: its # TYPE declaration plus all
// samples that belong to it (for histograms, the _bucket/_sum/_count
// series).
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// ParseText is a minimal, strict Prometheus text-format parser. It
// accepts exactly the subset the exposition in this package emits —
// # HELP / # TYPE headers followed by sample lines — and validates
// structural invariants that Prometheus itself enforces:
//
//   - every sample belongs to a family declared by a preceding # TYPE
//   - at most one # TYPE per family, and it precedes its samples
//   - label fragments are well-formed ({key="value",...}, escaped)
//   - values parse as floats (+Inf/-Inf/NaN accepted)
//   - histogram families carry _bucket/_sum/_count series only, each
//     bucket set is cumulative and non-decreasing, ends in le="+Inf",
//     and _count equals the +Inf bucket
//
// CI round-trips every line WritePrometheus emits through this parser,
// so a formatting regression fails the build rather than a scrape.
func ParseText(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var (
		fams  []*Family
		byIdx = map[string]int{}
		typed = map[string]string{}
		helps = map[string]string{}
	)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, text, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			switch kind {
			case "HELP":
				helps[name] = text
			case "TYPE":
				if _, dup := typed[name]; dup {
					return nil, fmt.Errorf("line %d: duplicate # TYPE for %s", lineNo, name)
				}
				switch text {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, text)
				}
				typed[name] = text
				byIdx[name] = len(fams)
				fams = append(fams, &Family{Name: name, Help: helps[name], Type: text})
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		famName, ok := owningFamily(s.Name, typed)
		if !ok {
			return nil, fmt.Errorf("line %d: sample %s has no preceding # TYPE", lineNo, s.Name)
		}
		f := fams[byIdx[famName]]
		if f.Type == "histogram" {
			if err := checkHistogramSample(f.Name, s); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
		}
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Family, 0, len(fams))
	for _, f := range fams {
		if f.Type == "histogram" {
			if err := validateHistogram(f); err != nil {
				return nil, err
			}
		}
		out = append(out, *f)
	}
	return out, nil
}

func parseComment(line string) (kind, name, text string, err error) {
	rest, ok := strings.CutPrefix(line, "# ")
	if !ok {
		// Bare comments are legal in the format but this exposition
		// never emits them; reject so garbage can't hide in output.
		return "", "", "", fmt.Errorf("malformed comment %q", line)
	}
	kind, rest, ok = strings.Cut(rest, " ")
	if !ok || (kind != "HELP" && kind != "TYPE") {
		return "", "", "", fmt.Errorf("malformed comment %q", line)
	}
	name, text, _ = strings.Cut(rest, " ")
	if !validName(name) {
		return "", "", "", fmt.Errorf("invalid metric name %q", name)
	}
	return kind, name, text, nil
}

// owningFamily resolves a sample name to its declared family,
// stripping histogram suffixes when the base family is a histogram.
func owningFamily(sample string, typed map[string]string) (string, bool) {
	if _, ok := typed[sample]; ok {
		return sample, true
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(sample, suf); ok {
			if t, declared := typed[base]; declared && t == "histogram" {
				return base, true
			}
		}
	}
	return "", false
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
		if rest == "" || rest[0] != ' ' {
			return s, fmt.Errorf("missing value in %q", line)
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return s, fmt.Errorf("malformed sample %q", line)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes a {k="v",...} fragment starting at text[0]=='{'
// and returns the index one past the closing brace.
func parseLabels(text string, into map[string]string) (int, error) {
	i := 1
	for {
		if i >= len(text) {
			return 0, fmt.Errorf("unterminated label set")
		}
		if text[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(text[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("malformed label set %q", text)
		}
		key := text[i : i+eq]
		if key == "" {
			return 0, fmt.Errorf("empty label key in %q", text)
		}
		i += eq + 1
		if i >= len(text) || text[i] != '"' {
			return 0, fmt.Errorf("unquoted label value in %q", text)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(text) {
				return 0, fmt.Errorf("unterminated label value in %q", text)
			}
			c := text[i]
			if c == '\\' {
				if i+1 >= len(text) {
					return 0, fmt.Errorf("dangling escape in %q", text)
				}
				switch text[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, fmt.Errorf("bad escape \\%c in %q", text[i+1], text)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := into[key]; dup {
			return 0, fmt.Errorf("duplicate label %q", key)
		}
		into[key] = val.String()
		if i < len(text) && text[i] == ',' {
			i++
		}
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func checkHistogramSample(base string, s Sample) error {
	switch s.Name {
	case base + "_sum", base + "_count":
		return nil
	case base + "_bucket":
		if _, ok := s.Labels["le"]; !ok {
			return fmt.Errorf("%s_bucket sample missing le label", base)
		}
		return nil
	}
	return fmt.Errorf("sample %s not valid in histogram family %s", s.Name, base)
}

// validateHistogram checks cumulative bucket invariants per series
// (grouped by the non-le labels).
func validateHistogram(f *Family) error {
	type bkt struct {
		le    float64
		count float64
	}
	buckets := map[string][]bkt{}
	counts := map[string]float64{}
	for _, s := range f.Samples {
		key := seriesKey(s.Labels)
		switch s.Name {
		case f.Name + "_bucket":
			le, err := parseValue(s.Labels["le"])
			if err != nil {
				return fmt.Errorf("%s: bad le %q", f.Name, s.Labels["le"])
			}
			buckets[key] = append(buckets[key], bkt{le, s.Value})
		case f.Name + "_count":
			counts[key] = s.Value
		}
	}
	for key, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		last := bs[len(bs)-1]
		if !math.IsInf(last.le, 1) {
			return fmt.Errorf("%s{%s}: missing le=\"+Inf\" bucket", f.Name, key)
		}
		prev := -1.0
		for _, b := range bs {
			if b.count < prev {
				return fmt.Errorf("%s{%s}: bucket counts not cumulative at le=%g", f.Name, key, b.le)
			}
			prev = b.count
		}
		if c, ok := counts[key]; ok && c != last.count {
			return fmt.Errorf("%s{%s}: _count %g != +Inf bucket %g", f.Name, key, c, last.count)
		}
	}
	return nil
}

// seriesKey renders the non-le labels into a stable grouping key.
func seriesKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == "le" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(';')
	}
	return b.String()
}
