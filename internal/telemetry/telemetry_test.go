package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "requests", Label{"endpoint", "/v1/groupnn"})
	g := r.Gauge("test_inflight", "inflight requests")
	h := r.Histogram("test_latency_us", "latency")

	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	h.Observe(0)
	h.Observe(1)
	h.Observe(2)
	h.Observe(1 << 20)
	if got := h.Count(); got != 4 {
		t.Fatalf("hist count = %d, want 4", got)
	}
	if got := h.SumUS(); got != 3+1<<20 {
		t.Fatalf("hist sum = %d, want %d", got, 3+1<<20)
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		us   uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 38, 38}, {1<<38 + 1, 39}, {1 << 62, 39}, {math.MaxUint64, 39},
	}
	for _, c := range cases {
		if got := bucketIndex(c.us); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.us, got, c.want)
		}
	}
	// Every value must land in a bucket whose upper bound covers it
	// (except the overflow cell, which catches everything).
	for us := uint64(1); us < 1<<20; us = us*3 + 1 {
		i := bucketIndex(us)
		if i < NumBuckets-1 && BucketUpperUS(i) < us {
			t.Errorf("value %d above its bucket upper %d", us, BucketUpperUS(i))
		}
		if i > 0 && BucketUpperUS(i-1) >= us {
			t.Errorf("value %d fits the previous bucket (upper %d)", us, BucketUpperUS(i-1))
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x", Label{"a", "1"})
	r.Counter("dup_total", "x", Label{"a", "2"}) // distinct labels: fine
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate (name, labels) registration did not panic")
		}
	}()
	r.Counter("dup_total", "x", Label{"a", "1"})
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("conflict_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict did not panic")
		}
	}()
	r.Gauge("conflict_total", "x")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "with space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "x")
		}()
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rt_requests_total", "total requests", Label{"endpoint", "/v1/groupnn"}, Label{"outcome", "ok"})
	c2 := r.Counter("rt_requests_total", "total requests", Label{"endpoint", "/v1/groupnn"}, Label{"outcome", "error"})
	g := r.Gauge("rt_inflight", "inflight")
	r.GaugeFunc("rt_heap_bytes", "heap", func() float64 { return 12345.5 })
	h := r.Histogram("rt_latency_us", "latency", Label{"algo", "mbm"})
	r.Histogram("rt_latency_us", "latency", Label{"algo", "spm"})
	esc := r.Counter("rt_escaped_total", "weird \\ help\nline", Label{"path", "a\"b\\c\nd"})

	c.Add(3)
	c2.Inc()
	g.Set(-2)
	h.Observe(5)
	h.Observe(1 << 50) // overflow bucket
	esc.Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	fams, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition did not round-trip:\n%s\nerror: %v", text, err)
	}
	byName := map[string]Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	req := byName["rt_requests_total"]
	if req.Type != "counter" || len(req.Samples) != 2 {
		t.Fatalf("rt_requests_total parsed as %+v", req)
	}
	for _, s := range req.Samples {
		switch s.Labels["outcome"] {
		case "ok":
			if s.Value != 3 {
				t.Errorf("ok counter = %g, want 3", s.Value)
			}
		case "error":
			if s.Value != 1 {
				t.Errorf("error counter = %g, want 1", s.Value)
			}
		default:
			t.Errorf("unexpected sample %+v", s)
		}
	}
	if f := byName["rt_heap_bytes"]; len(f.Samples) != 1 || f.Samples[0].Value != 12345.5 {
		t.Errorf("gauge func parsed as %+v", f)
	}
	lat := byName["rt_latency_us"]
	if lat.Type != "histogram" {
		t.Fatalf("rt_latency_us type = %q", lat.Type)
	}
	// NumBuckets + le=+Inf + sum + count, for each of two label sets.
	if want := 2 * (NumBuckets + 3); len(lat.Samples) != want {
		t.Errorf("histogram sample count = %d, want %d", len(lat.Samples), want)
	}
	var infSeen bool
	for _, s := range lat.Samples {
		if s.Name == "rt_latency_us_count" && s.Labels["algo"] == "mbm" && s.Value != 2 {
			t.Errorf("mbm count = %g, want 2", s.Value)
		}
		if s.Labels["le"] == "+Inf" && s.Labels["algo"] == "mbm" {
			infSeen = true
			if s.Value != 2 {
				t.Errorf("+Inf bucket = %g, want 2", s.Value)
			}
		}
	}
	if !infSeen {
		t.Error("no +Inf bucket emitted")
	}
	if f := byName["rt_escaped_total"]; len(f.Samples) != 1 || f.Samples[0].Labels["path"] != "a\"b\\c\nd" {
		t.Errorf("escaped label did not round-trip: %+v", f)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"no_type_decl 1\n",
		"# TYPE x counter\nx{le=\"oops\" 1\n",
		"# TYPE x counter\nx notanumber\n",
		"# TYPE x banana\nx 1\n",
		"# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 1\n", // non-cumulative
		"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",      // missing +Inf
		"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 2\n",            // count mismatch
		"# TYPE x counter\n# TYPE x counter\nx 1\n",                           // duplicate TYPE
		"# TYPE x counter\nx{a=\"1\",a=\"2\"} 1\n",                            // duplicate label
		"# TYPE h histogram\nh_bogus 1\n",                                     // bad suffix
	}
	for _, text := range bad {
		if _, err := ParseText(strings.NewReader(text)); err == nil {
			t.Errorf("ParseText accepted malformed input:\n%s", text)
		}
	}
}

func TestParseAcceptsTimestampAndBareSamples(t *testing.T) {
	text := "# HELP x help text here\n# TYPE x gauge\nx 1.5 1700000000000\nx{a=\"b\"} 2\n"
	fams, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 || len(fams[0].Samples) != 2 || fams[0].Help != "help text here" {
		t.Fatalf("parsed %+v", fams)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "")
	g := r.Gauge("cc_gauge", "")
	h := r.Histogram("cc_latency_us", "")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(seed + uint64(i))
				// Scrape concurrently with recording.
				if i%251 == 0 {
					var sb strings.Builder
					_ = r.WritePrometheus(&sb)
					if _, err := ParseText(strings.NewReader(sb.String())); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(uint64(w) * 100)
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Errorf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != workers*perWorker {
		t.Errorf("gauge = %d, want %d", g.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
}

func TestRecordingDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("na_total", "")
	g := r.Gauge("na_gauge", "")
	h := r.Histogram("na_latency_us", "")
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(9)
		g.Add(-1)
		h.Observe(137)
	}); n != 0 {
		t.Fatalf("hot-path recording allocates %.1f allocs/op, want 0", n)
	}
}
