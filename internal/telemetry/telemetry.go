// Package telemetry is an allocation-free metrics registry with
// Prometheus text-format exposition.
//
// The design splits work between two phases so the hot path never
// allocates or takes a lock:
//
//   - Registration (startup): every metric — and every label
//     combination — is created up front via Registry.Counter /
//     Gauge / GaugeFunc / Histogram. Registration validates names,
//     renders the exposition label string once, and panics on
//     duplicates or malformed names, so a bad metric fails loudly at
//     boot rather than silently at scrape time.
//   - Recording (hot path): Counter.Add, Gauge.Set and
//     Histogram.Observe are single atomic operations on pre-allocated
//     cells. No maps, no interfaces, no allocation — safe to call from
//     the query fast path that must stay at its allocs/op budget.
//
// Exposition (Registry.WritePrometheus) renders the standard text
// format: one # HELP / # TYPE header per family followed by its
// series. Histograms use the same power-of-2 microsecond buckets as
// the serving layer's latency histogram (NumBuckets cells,
// BucketUpperUS bounds) and emit cumulative _bucket{le="..."} lines,
// _sum and _count. Durations are exposed in microseconds — integral
// bucket bounds, no float rounding — and the metric names carry the
// _us suffix so the unit is explicit.
//
// ParseText (parse.go) is the matching minimal parser; CI round-trips
// every emitted line through it so the exposition can never drift
// from the format Prometheus accepts.
package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// NumBuckets is the number of histogram buckets. Bucket i covers
// (BucketUpperUS(i-1), BucketUpperUS(i)] microseconds; the last bucket
// is the overflow cell. 40 power-of-2 buckets span 1µs..~9min, the
// same scheme as the serving layer's latency histogram.
const NumBuckets = 40

// BucketUpperUS returns the inclusive upper bound, in microseconds, of
// bucket i.
func BucketUpperUS(i int) uint64 {
	if i <= 0 {
		return 1
	}
	return 1 << uint(i)
}

// bucketIndex maps a microsecond value to its bucket.
func bucketIndex(us uint64) int {
	if us <= 1 {
		return 0
	}
	idx := bits.Len64(us - 1) // smallest i with 1<<i >= us
	if idx >= NumBuckets {
		idx = NumBuckets - 1
	}
	return idx
}

// Label is one key="value" exposition label. Labels are fixed at
// registration; there is no hot-path label lookup.
type Label struct {
	Key   string
	Value string
}

// A Counter is a monotonically increasing metric cell.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// A Gauge is a settable signed metric cell.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// A Histogram is a fixed-bucket power-of-2 microsecond histogram.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sumUS   atomic.Uint64
}

// Observe records one duration in microseconds.
func (h *Histogram) Observe(us uint64) {
	h.buckets[bucketIndex(us)].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// SumUS returns the sum of all observations in microseconds.
func (h *Histogram) SumUS() uint64 { return h.sumUS.Load() }

// metricKind tags a series with its exposition TYPE.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one registered (name, labels) cell.
type series struct {
	labels  string // pre-rendered {k="v",...} or ""
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// family groups all series that share a metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
	order  int
}

// A Registry holds registered metrics and renders them in the
// Prometheus text exposition format. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	seen     map[string]struct{} // name + rendered labels, duplicate guard
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		seen:     make(map[string]struct{}),
	}
}

// Counter registers and returns a counter cell for the given name and
// label set. It panics on an invalid name, a kind conflict with an
// existing family, or a duplicate (name, labels) registration.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, labels, &series{counter: c})
	return c
}

// Gauge registers and returns a gauge cell.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, labels, &series{gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is collected by calling fn
// at scrape time. Use it for values that are cheap to read but owned
// elsewhere (runtime stats, index depth); fn must be safe for
// concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGaugeFunc, labels, &series{fn: fn})
}

// Histogram registers and returns a histogram cell.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	h := &Histogram{}
	r.register(name, help, kindHistogram, labels, &series{hist: h})
	return h
}

func (r *Registry) register(name, help string, kind metricKind, labels []Label, s *series) {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	s.labels = renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	key := name + s.labels
	if _, dup := r.seen[key]; dup {
		panic(fmt.Sprintf("telemetry: duplicate registration of %s", key))
	}
	r.seen[key] = struct{}{}
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, order: len(r.families)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s registered as both %s and %s", name, f.kind, kind))
	}
	f.series = append(f.series, s)
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

func validLabelKey(k string) bool {
	if k == "" || k == "le" { // le is reserved for histogram buckets
		return false
	}
	for i, c := range k {
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// renderLabels produces the canonical {k="v",...} exposition fragment,
// keys sorted, values escaped. Empty label sets render as "".
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if !validLabelKey(l.Key) {
			panic(fmt.Sprintf("telemetry: invalid label key %q", l.Key))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// mergeLabels appends extra labels (e.g. le) to a pre-rendered label
// fragment.
func mergeLabels(rendered, key, value string) string {
	if rendered == "" {
		return "{" + key + `="` + value + `"}`
	}
	return rendered[:len(rendered)-1] + "," + key + `="` + value + `"}`
}

// WritePrometheus renders every registered family in the text
// exposition format. Families appear in registration order; within a
// family, series appear in registration order. Gauge functions are
// invoked inline, so the output reflects scrape-time state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].order < fams[j].order })

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if f.help != "" {
			b.WriteString("# HELP ")
			b.WriteString(f.name)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(f.help))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.kind.String())
		b.WriteByte('\n')
		for _, s := range f.series {
			switch f.kind {
			case kindCounter:
				writeSample(&b, f.name, s.labels, strconv.FormatUint(s.counter.Value(), 10))
			case kindGauge:
				writeSample(&b, f.name, s.labels, strconv.FormatInt(s.gauge.Value(), 10))
			case kindGaugeFunc:
				writeSample(&b, f.name, s.labels, formatFloat(s.fn()))
			case kindHistogram:
				writeHistogram(&b, f.name, s.labels, s.hist)
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func writeSample(b *strings.Builder, name, labels, value string) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	// Snapshot buckets first, then count: Observe increments the bucket
	// before the count, so this ordering can only under-report the
	// cumulative tail, never emit a _count above the +Inf bucket.
	var counts [NumBuckets]uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
	}
	var cum uint64
	for i := 0; i < NumBuckets; i++ {
		cum += counts[i]
		writeSample(b, name+"_bucket", mergeLabels(labels, "le", strconv.FormatUint(BucketUpperUS(i), 10)), strconv.FormatUint(cum, 10))
	}
	writeSample(b, name+"_bucket", mergeLabels(labels, "le", "+Inf"), strconv.FormatUint(cum, 10))
	writeSample(b, name+"_sum", labels, strconv.FormatUint(h.SumUS(), 10))
	writeSample(b, name+"_count", labels, strconv.FormatUint(cum, 10))
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// Handler returns an http.Handler serving the exposition, suitable for
// mounting at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
