// Package centroid computes the point q minimising dist(q,Q) = Σ_i |q qi|,
// the Fermat-Weber point (geometric median) of the query group.
//
// As the paper notes (§3.2), the minimiser has no closed form for n > 2, so
// it must be approximated numerically. The paper uses gradient descent; we
// implement that method faithfully and additionally provide the Weiszfeld
// iteration, the classical fixed-point scheme for this problem, as an
// ablation alternative. SPM only needs an approximation: Lemma 1 holds for
// any point q, so a better centroid merely tightens the pruning bound.
package centroid

import (
	"errors"
	"math"

	"gnn/internal/geom"
)

// Options tunes the solvers. The zero value selects sensible defaults.
type Options struct {
	// MaxIters bounds the number of iterations (default 200).
	MaxIters int
	// Tolerance stops iteration when dist(q,Q) improves by less than
	// Tolerance in both absolute and relative terms (default 1e-9).
	Tolerance float64
	// Step is the initial gradient-descent step size η. When zero, it is
	// derived from the spread of Q.
	Step float64
}

func (o Options) withDefaults() Options {
	if o.MaxIters == 0 {
		o.MaxIters = 200
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-9
	}
	return o
}

// ErrEmptyGroup reports that no query points were supplied.
var ErrEmptyGroup = errors.New("centroid: empty query group")

// Mean returns the arithmetic mean of the group — the paper's starting
// point for gradient descent and the crudest centroid approximation.
func Mean(qs []geom.Point) (geom.Point, error) {
	if len(qs) == 0 {
		return nil, ErrEmptyGroup
	}
	dim := len(qs[0])
	c := make(geom.Point, dim)
	for _, q := range qs {
		for i := range c {
			c[i] += q[i]
		}
	}
	for i := range c {
		c[i] /= float64(len(qs))
	}
	return c, nil
}

// gradient writes ∂dist(q,Q)/∂q into grad, returning dist(q,Q). The
// gradient of Σ|q qi| is Σ (q-qi)/|q qi|; terms with |q qi| = 0 are skipped
// (the function is non-differentiable there but the subgradient 0 is
// valid).
func gradient(q geom.Point, qs []geom.Point, grad []float64) float64 {
	for i := range grad {
		grad[i] = 0
	}
	var total float64
	for _, p := range qs {
		d := geom.Dist(q, p)
		total += d
		if d == 0 {
			continue
		}
		for i := range grad {
			grad[i] += (q[i] - p[i]) / d
		}
	}
	return total
}

// GradientDescent approximates the Fermat-Weber point with the paper's
// method: starting from the arithmetic mean, repeatedly move against the
// gradient of dist(q,Q) with step η, halving η whenever a step fails to
// improve (a standard safeguarded variant that guarantees monotone
// progress). Returns the approximate centroid and its dist(q,Q).
func GradientDescent(qs []geom.Point, opt Options) (geom.Point, float64, error) {
	opt = opt.withDefaults()
	q, err := Mean(qs)
	if err != nil {
		return nil, 0, err
	}
	if len(qs) == 1 {
		return q, 0, nil
	}
	grad := make([]float64, len(q))
	cur := gradient(q, qs, grad)

	step := opt.Step
	if step == 0 {
		// Scale the initial step to the group's spread; the mean is at
		// most ~diameter away from the optimum.
		r := geom.BoundingRect(qs)
		step = r.Margin() / float64(2*len(q)) / 8
		if step == 0 {
			return q, cur, nil // all points coincide
		}
	}
	cand := make(geom.Point, len(q))
	for iter := 0; iter < opt.MaxIters && step > 1e-18; iter++ {
		norm := 0.0
		for _, g := range grad {
			norm += g * g
		}
		if norm == 0 {
			break
		}
		norm = math.Sqrt(norm)
		for i := range cand {
			cand[i] = q[i] - step*grad[i]/norm
		}
		next := geom.SumDist(cand, qs)
		if next < cur {
			copy(q, cand)
			if cur-next < opt.Tolerance*(1+cur) {
				cur = next
				break
			}
			cur = gradient(q, qs, grad)
		} else {
			step /= 2
		}
	}
	return q, cur, nil
}

// Weiszfeld approximates the Fermat-Weber point with the classical
// Weiszfeld fixed-point iteration: q ← Σ(qi/|q qi|) / Σ(1/|q qi|).
// When an iterate lands exactly on a data point the iteration stops there
// (the standard safeguard). Returns the approximate centroid and its
// dist(q,Q).
func Weiszfeld(qs []geom.Point, opt Options) (geom.Point, float64, error) {
	opt = opt.withDefaults()
	q, err := Mean(qs)
	if err != nil {
		return nil, 0, err
	}
	if len(qs) == 1 {
		return q, 0, nil
	}
	num := make([]float64, len(q))
	cur := geom.SumDist(q, qs)
	for iter := 0; iter < opt.MaxIters; iter++ {
		for i := range num {
			num[i] = 0
		}
		var den float64
		onPoint := false
		for _, p := range qs {
			d := geom.Dist(q, p)
			if d == 0 {
				onPoint = true
				break
			}
			w := 1 / d
			den += w
			for i := range num {
				num[i] += p[i] * w
			}
		}
		if onPoint || den == 0 {
			break
		}
		for i := range q {
			q[i] = num[i] / den
		}
		next := geom.SumDist(q, qs)
		if cur-next < opt.Tolerance*(1+cur) {
			cur = next
			break
		}
		cur = next
	}
	return q, cur, nil
}
