package centroid

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"gnn/internal/geom"
)

type solver struct {
	name string
	run  func([]geom.Point, Options) (geom.Point, float64, error)
}

var solvers = []solver{
	{"GradientDescent", GradientDescent},
	{"Weiszfeld", Weiszfeld},
}

func TestEmptyGroup(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmptyGroup) {
		t.Fatalf("Mean(nil) err = %v", err)
	}
	for _, s := range solvers {
		if _, _, err := s.run(nil, Options{}); !errors.Is(err, ErrEmptyGroup) {
			t.Errorf("%s(nil) err = %v", s.name, err)
		}
	}
}

func TestSinglePoint(t *testing.T) {
	qs := []geom.Point{{3, 4}}
	for _, s := range solvers {
		q, d, err := s.run(qs, Options{})
		if err != nil || !q.Equal(qs[0]) || d != 0 {
			t.Errorf("%s single point: q=%v d=%v err=%v", s.name, q, d, err)
		}
	}
}

func TestTwoPoints(t *testing.T) {
	// Any point on the segment is optimal with dist = |q1 q2|.
	qs := []geom.Point{{0, 0}, {10, 0}}
	for _, s := range solvers {
		_, d, err := s.run(qs, Options{})
		if err != nil || math.Abs(d-10) > 1e-6 {
			t.Errorf("%s two points: d=%v err=%v", s.name, d, err)
		}
	}
}

func TestCoincidentPoints(t *testing.T) {
	qs := []geom.Point{{5, 5}, {5, 5}, {5, 5}}
	for _, s := range solvers {
		q, d, err := s.run(qs, Options{})
		if err != nil || !q.Equal(geom.Point{5, 5}) || d != 0 {
			t.Errorf("%s coincident: q=%v d=%v err=%v", s.name, q, d, err)
		}
	}
}

func TestEquilateralTriangle(t *testing.T) {
	// The Fermat point of an equilateral triangle is its centroid; the
	// optimal total distance is 3 * circumradius = side * sqrt(3).
	side := 10.0
	h := side * math.Sqrt(3) / 2
	qs := []geom.Point{{0, 0}, {side, 0}, {side / 2, h}}
	want := side * math.Sqrt(3)
	for _, s := range solvers {
		q, d, err := s.run(qs, Options{MaxIters: 500})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(d-want) > 1e-3*want {
			t.Errorf("%s: dist %v, want %v (q=%v)", s.name, d, want, q)
		}
		if geom.Dist(q, geom.Point{side / 2, h / 3}) > 0.05*side {
			t.Errorf("%s: centroid %v far from Fermat point", s.name, q)
		}
	}
}

func TestFermatPointWith120DegreeProperty(t *testing.T) {
	// For a triangle with all angles < 120°, unit vectors from the Fermat
	// point to the vertices sum to ~0.
	qs := []geom.Point{{0, 0}, {8, 1}, {3, 7}}
	for _, s := range solvers {
		q, _, err := s.run(qs, Options{MaxIters: 2000, Tolerance: 1e-14})
		if err != nil {
			t.Fatal(err)
		}
		var sx, sy float64
		for _, p := range qs {
			d := geom.Dist(q, p)
			sx += (p[0] - q[0]) / d
			sy += (p[1] - q[1]) / d
		}
		if math.Hypot(sx, sy) > 0.02 {
			t.Errorf("%s: gradient norm %v at solution %v", s.name, math.Hypot(sx, sy), q)
		}
	}
}

func TestObtuseTriangleMedianAtVertex(t *testing.T) {
	// With one angle ≥ 120°, the geometric median is the obtuse vertex.
	qs := []geom.Point{{0, 0}, {10, 0}, {5, 0.3}}
	want := geom.SumDist(geom.Point{5, 0.3}, qs)
	for _, s := range solvers {
		_, d, err := s.run(qs, Options{MaxIters: 3000})
		if err != nil {
			t.Fatal(err)
		}
		if d < want-1e-9 || d > want*1.02 {
			t.Errorf("%s: dist %v, optimal %v", s.name, d, want)
		}
	}
}

func TestSolversBeatMeanOnRandomGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(30)
		qs := make([]geom.Point, n)
		for i := range qs {
			qs[i] = geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		}
		mean, _ := Mean(qs)
		meanDist := geom.SumDist(mean, qs)
		for _, s := range solvers {
			q, d, err := s.run(qs, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if d > meanDist+1e-9 {
				t.Errorf("trial %d %s: dist %v worse than mean %v", trial, s.name, d, meanDist)
			}
			if math.Abs(geom.SumDist(q, qs)-d) > 1e-6 {
				t.Errorf("%s: reported distance inconsistent", s.name)
			}
		}
	}
}

func TestSolversAgreeWithEachOther(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(20)
		qs := make([]geom.Point, n)
		for i := range qs {
			qs[i] = geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		}
		_, d1, _ := GradientDescent(qs, Options{MaxIters: 2000})
		_, d2, _ := Weiszfeld(qs, Options{MaxIters: 2000})
		// Both approximate the same optimum; allow 1% slack.
		if math.Abs(d1-d2) > 0.01*math.Max(d1, d2) {
			t.Errorf("trial %d: GD %v vs Weiszfeld %v", trial, d1, d2)
		}
	}
}

func TestLemma1HoldsForApproximateCentroid(t *testing.T) {
	// Lemma 1: for ANY q and any p, dist(p,Q) >= n*|pq| - dist(q,Q).
	// The whole point of using an approximate centroid in SPM is that the
	// bound stays sound; verify on random instances.
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(10)
		qs := make([]geom.Point, n)
		for i := range qs {
			qs[i] = geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		}
		q, dq, err := GradientDescent(qs, Options{MaxIters: 50})
		if err != nil {
			t.Fatal(err)
		}
		p := geom.Point{rng.Float64() * 200, rng.Float64() * 200}
		lhs := geom.SumDist(p, qs)
		rhs := float64(n)*geom.Dist(p, q) - dq
		if lhs < rhs-1e-6 {
			t.Fatalf("Lemma 1 violated: dist(p,Q)=%v < %v", lhs, rhs)
		}
	}
}

func TestMean(t *testing.T) {
	qs := []geom.Point{{0, 0}, {4, 0}, {2, 6}}
	m, err := Mean(qs)
	if err != nil || !m.Equal(geom.Point{2, 2}) {
		t.Fatalf("Mean = %v, err %v", m, err)
	}
}

func BenchmarkGradientDescent64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	qs := make([]geom.Point, 64)
	for i := range qs {
		qs[i] = geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GradientDescent(qs, Options{})
	}
}

func BenchmarkWeiszfeld64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	qs := make([]geom.Point, 64)
	for i := range qs {
		qs[i] = geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Weiszfeld(qs, Options{})
	}
}
