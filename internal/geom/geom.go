// Package geom provides the d-dimensional geometric primitives used by the
// GNN library: points, axis-aligned rectangles (MBRs) and the family of
// distance metrics (dist, mindist, maxdist) that drive every pruning
// heuristic in the paper.
//
// All distance functions are allocation-free so they can sit on the hot path
// of R-tree traversals. Distances are Euclidean (L2), matching the paper;
// squared variants are provided where only comparisons are needed.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a point in d-dimensional space. The paper evaluates d=2 but all
// algorithms are dimension-agnostic, so Point is a slice.
type Point []float64

// Dim returns the dimensionality of p.
func (p Point) Dim() int { return len(p) }

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// String renders the point as "(x, y, ...)".
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%g", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Dist returns the Euclidean distance |pq|.
func Dist(p, q Point) float64 {
	return math.Sqrt(DistSq(p, q))
}

// DistSq returns the squared Euclidean distance between p and q. It is
// cheaper than Dist and sufficient when only comparisons are needed.
func DistSq(p, q Point) float64 {
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return s
}

// SumDist returns Σ_i |p qi|, the aggregate (SUM) distance between p and the
// query group qs. This is the dist(p,Q) of the paper.
func SumDist(p Point, qs []Point) float64 {
	var s float64
	for _, q := range qs {
		s += Dist(p, q)
	}
	return s
}

// MaxDistToGroup returns max_i |p qi| (used by the MAX-aggregate extension).
// Only the winning distance pays a Sqrt: squaring is monotone, so the
// maximum of the squared distances identifies the maximum distance.
func MaxDistToGroup(p Point, qs []Point) float64 {
	return math.Sqrt(MaxDistSqToGroup(p, qs))
}

// MaxDistSqToGroup returns max_i |p qi|², the squared MAX-aggregate
// distance. It is sufficient (and Sqrt-free) when only comparisons are
// needed.
func MaxDistSqToGroup(p Point, qs []Point) float64 {
	var m float64
	for _, q := range qs {
		if d := DistSq(p, q); d > m {
			m = d
		}
	}
	return m
}

// MinDistToGroup returns min_i |p qi| (used by the MIN-aggregate extension).
// Only the winning distance pays a Sqrt, as in MaxDistToGroup.
func MinDistToGroup(p Point, qs []Point) float64 {
	return math.Sqrt(MinDistSqToGroup(p, qs))
}

// MinDistSqToGroup returns min_i |p qi|², the squared MIN-aggregate
// distance.
func MinDistSqToGroup(p Point, qs []Point) float64 {
	m := math.Inf(1)
	for _, q := range qs {
		if d := DistSq(p, q); d < m {
			m = d
		}
	}
	return m
}

// Rect is an axis-aligned rectangle (minimum bounding rectangle). Lo holds
// the minimum coordinate on every axis, Hi the maximum. A Rect with
// Lo[i] == Hi[i] on every axis degenerates to a point and remains valid.
type Rect struct {
	Lo, Hi Point
}

// NewRect builds a rectangle from two corner points, normalising the
// coordinate order so that Lo ≤ Hi holds on every axis.
func NewRect(a, b Point) Rect {
	lo := make(Point, len(a))
	hi := make(Point, len(a))
	for i := range a {
		lo[i] = math.Min(a[i], b[i])
		hi[i] = math.Max(a[i], b[i])
	}
	return Rect{Lo: lo, Hi: hi}
}

// RectFromPoint returns the degenerate rectangle containing exactly p.
func RectFromPoint(p Point) Rect {
	return Rect{Lo: p.Clone(), Hi: p.Clone()}
}

// BoundingRect returns the MBR of a non-empty point set.
// It panics when pts is empty: an MBR of nothing is undefined.
// It allocates exactly the two corner slices, growing them in place rather
// than cloning per point.
func BoundingRect(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: BoundingRect of empty point set")
	}
	return BoundingRectInto(Rect{}, pts)
}

// BoundingRectInto computes the MBR of a non-empty point set into dst's
// corner slices, reallocating them only when their capacity is too small.
// It is the allocation-free variant of BoundingRect for pooled per-query
// scratch. It panics when pts is empty.
func BoundingRectInto(dst Rect, pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: BoundingRect of empty point set")
	}
	d := len(pts[0])
	if cap(dst.Lo) < d {
		dst.Lo = make(Point, d)
	}
	if cap(dst.Hi) < d {
		dst.Hi = make(Point, d)
	}
	dst.Lo, dst.Hi = dst.Lo[:d], dst.Hi[:d]
	copy(dst.Lo, pts[0])
	copy(dst.Hi, pts[0])
	for _, p := range pts[1:] {
		for i, v := range p {
			if v < dst.Lo[i] {
				dst.Lo[i] = v
			}
			if v > dst.Hi[i] {
				dst.Hi[i] = v
			}
		}
	}
	return dst
}

// Dim returns the dimensionality of r.
func (r Rect) Dim() int { return len(r.Lo) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	return Rect{Lo: r.Lo.Clone(), Hi: r.Hi.Clone()}
}

// Equal reports whether the two rectangles have identical corners.
func (r Rect) Equal(s Rect) bool {
	return r.Lo.Equal(s.Lo) && r.Hi.Equal(s.Hi)
}

// String renders the rectangle as "[lo - hi]".
func (r Rect) String() string {
	return fmt.Sprintf("[%v - %v]", r.Lo, r.Hi)
}

// Valid reports whether Lo ≤ Hi holds on every axis and both corners share
// the rectangle's dimensionality.
func (r Rect) Valid() bool {
	if len(r.Lo) != len(r.Hi) || len(r.Lo) == 0 {
		return false
	}
	for i := range r.Lo {
		if r.Lo[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Center returns the rectangle's geometric centre.
func (r Rect) Center() Point {
	c := make(Point, len(r.Lo))
	for i := range r.Lo {
		c[i] = (r.Lo[i] + r.Hi[i]) / 2
	}
	return c
}

// Area returns the d-dimensional volume of r (area in 2D).
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Lo {
		a *= r.Hi[i] - r.Lo[i]
	}
	return a
}

// Margin returns the sum of the edge lengths of r (the R*-tree split
// goodness metric; perimeter/2 in 2D).
func (r Rect) Margin() float64 {
	var m float64
	for i := range r.Lo {
		m += r.Hi[i] - r.Lo[i]
	}
	return m
}

// ContainsPoint reports whether p lies inside r (boundaries inclusive).
func (r Rect) ContainsPoint(p Point) bool {
	for i := range p {
		if p[i] < r.Lo[i] || p[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	for i := range r.Lo {
		if s.Lo[i] < r.Lo[i] || s.Hi[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Lo {
		if r.Hi[i] < s.Lo[i] || s.Hi[i] < r.Lo[i] {
			return false
		}
	}
	return true
}

// Intersection returns the common region of r and s and whether it exists.
func (r Rect) Intersection(s Rect) (Rect, bool) {
	if !r.Intersects(s) {
		return Rect{}, false
	}
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Lo))
	for i := range r.Lo {
		lo[i] = math.Max(r.Lo[i], s.Lo[i])
		hi[i] = math.Min(r.Hi[i], s.Hi[i])
	}
	return Rect{Lo: lo, Hi: hi}, true
}

// OverlapArea returns the volume of the intersection of r and s, or 0.
func (r Rect) OverlapArea(s Rect) float64 {
	a := 1.0
	for i := range r.Lo {
		lo := math.Max(r.Lo[i], s.Lo[i])
		hi := math.Min(r.Hi[i], s.Hi[i])
		if hi <= lo {
			return 0
		}
		a *= hi - lo
	}
	return a
}

// Union returns the MBR of r and s.
func (r Rect) Union(s Rect) Rect {
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Lo))
	for i := range r.Lo {
		lo[i] = math.Min(r.Lo[i], s.Lo[i])
		hi[i] = math.Max(r.Hi[i], s.Hi[i])
	}
	return Rect{Lo: lo, Hi: hi}
}

// ExpandPoint returns the MBR of r and p.
func (r Rect) ExpandPoint(p Point) Rect {
	lo := r.Lo.Clone()
	hi := r.Hi.Clone()
	for i := range p {
		if p[i] < lo[i] {
			lo[i] = p[i]
		}
		if p[i] > hi[i] {
			hi[i] = p[i]
		}
	}
	return Rect{Lo: lo, Hi: hi}
}

// Enlargement returns the increase in area needed for r to absorb s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// MinDistPointRect returns mindist(p, r): the smallest possible distance
// between p and any point inside r. Zero when p lies in r. This is the
// classic R-tree pruning bound of [RKV95] and the mindist(p, M) of
// heuristic 2 applied to leaf entries.
func MinDistPointRect(p Point, r Rect) float64 {
	return math.Sqrt(MinDistSqPointRect(p, r))
}

// MinDistSqPointRect is the squared version of MinDistPointRect.
func MinDistSqPointRect(p Point, r Rect) float64 {
	var s float64
	for i := range p {
		var d float64
		switch {
		case p[i] < r.Lo[i]:
			d = r.Lo[i] - p[i]
		case p[i] > r.Hi[i]:
			d = p[i] - r.Hi[i]
		}
		s += d * d
	}
	return s
}

// MaxDistPointRect returns the largest distance between p and any point of
// r, i.e. the distance from p to the farthest corner.
func MaxDistPointRect(p Point, r Rect) float64 {
	var s float64
	for i := range p {
		d := math.Max(math.Abs(p[i]-r.Lo[i]), math.Abs(p[i]-r.Hi[i]))
		s += d * d
	}
	return math.Sqrt(s)
}

// MinDistRectRect returns mindist(r, s): the smallest possible distance
// between any point of r and any point of s; zero when they intersect.
// Used by heuristics 2 and 5 (node MBR vs query-group MBR) and by the
// closest-pair algorithm of [HS98].
func MinDistRectRect(r, s Rect) float64 {
	return math.Sqrt(MinDistSqRectRect(r, s))
}

// MinDistSqRectRect is the squared version of MinDistRectRect.
func MinDistSqRectRect(r, s Rect) float64 {
	var sum float64
	for i := range r.Lo {
		var d float64
		switch {
		case s.Hi[i] < r.Lo[i]:
			d = r.Lo[i] - s.Hi[i]
		case r.Hi[i] < s.Lo[i]:
			d = s.Lo[i] - r.Hi[i]
		}
		sum += d * d
	}
	return sum
}

// MaxDistRectRect returns an upper bound on the distance between any point
// of r and any point of s (distance between the farthest corner pair).
func MaxDistRectRect(r, s Rect) float64 {
	var sum float64
	for i := range r.Lo {
		d := math.Max(s.Hi[i]-r.Lo[i], r.Hi[i]-s.Lo[i])
		sum += d * d
	}
	return math.Sqrt(sum)
}

// SumMinDistRectToGroup returns Σ_i mindist(r, qi), the heuristic-3 lower
// bound on dist(p,Q) for any point p inside r. The SUM aggregate adds the
// distances themselves, so every term pays its Sqrt — squared-distance
// elision is not legal here (Σ√dᵢ² ≠ √Σdᵢ²).
func SumMinDistRectToGroup(r Rect, qs []Point) float64 {
	var s float64
	for _, q := range qs {
		s += MinDistPointRect(q, r)
	}
	return s
}

// MaxMinDistSqRectToGroup returns max_i mindist(r, qi)², the squared
// heuristic-3 lower bound for the MAX aggregate. Squaring is monotone, so
// the maximum of the squared per-point bounds is the square of the maximum
// bound; callers compare in squared space and Sqrt only the result.
func MaxMinDistSqRectToGroup(r Rect, qs []Point) float64 {
	var m float64
	for _, q := range qs {
		if d := MinDistSqPointRect(q, r); d > m {
			m = d
		}
	}
	return m
}

// MinMinDistSqRectToGroup returns min_i mindist(r, qi)², the squared
// heuristic-3 lower bound for the MIN aggregate.
func MinMinDistSqRectToGroup(r Rect, qs []Point) float64 {
	m := math.Inf(1)
	for _, q := range qs {
		if d := MinDistSqPointRect(q, r); d < m {
			m = d
		}
	}
	return m
}
