package geom

import (
	"math"
	"math/rand"
	"testing"
)

// The fused SoA kernels promise bit-identical output to their scalar
// counterparts (that contract is what keeps packed and dynamic traversals
// returning identical results and node-access counts), so every comparison
// here is exact equality, not a tolerance.

type soaFixture struct {
	n      int
	pc     [][]float64 // point coords, pc[axis][slot]
	lo, hi [][]float64 // rect corners per axis
	pts    []Point     // AoS mirror of pc
	rects  []Rect      // AoS mirror of lo/hi
}

func newSoAFixture(rng *rand.Rand, n, dim int) *soaFixture {
	f := &soaFixture{
		n:  n,
		pc: make([][]float64, dim), lo: make([][]float64, dim), hi: make([][]float64, dim),
	}
	for a := 0; a < dim; a++ {
		f.pc[a] = make([]float64, n)
		f.lo[a] = make([]float64, n)
		f.hi[a] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		p := make(Point, dim)
		lo := make(Point, dim)
		hi := make(Point, dim)
		for a := 0; a < dim; a++ {
			p[a] = rng.Float64() * 100
			x, y := rng.Float64()*100, rng.Float64()*100
			if x > y {
				x, y = y, x
			}
			lo[a], hi[a] = x, y
			f.pc[a][i] = p[a]
			f.lo[a][i] = x
			f.hi[a][i] = y
		}
		f.pts = append(f.pts, p)
		f.rects = append(f.rects, Rect{Lo: lo, Hi: hi})
	}
	return f
}

func fusedRandPoint(rng *rand.Rand, dim int) Point {
	p := make(Point, dim)
	for a := range p {
		p[a] = rng.Float64() * 100
	}
	return p
}

func fusedRandRect(rng *rand.Rand, dim int) Rect {
	return NewRect(fusedRandPoint(rng, dim), fusedRandPoint(rng, dim))
}

func fusedRandGroup(rng *rand.Rand, n, dim int) []Point {
	qs := make([]Point, n)
	for i := range qs {
		qs[i] = fusedRandPoint(rng, dim)
	}
	return qs
}

func checkExact(t *testing.T, kernel string, got, want []float64) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: slot %d = %.17g, scalar %.17g (fused kernels must be bit-identical)",
				kernel, i, got[i], want[i])
		}
	}
}

func TestFusedKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dim := range []int{2, 3, 5} {
		f := newSoAFixture(rng, 64, dim)
		q := fusedRandPoint(rng, dim)
		r := fusedRandRect(rng, dim)
		qs := fusedRandGroup(rng, 9, dim)
		ws := make([]float64, len(qs))
		for i := range ws {
			ws[i] = 0.25 + rng.Float64()
		}
		// Exercise a strict sub-range too: kernels index pc[a][s+i].
		for _, span := range [][2]int{{0, f.n}, {17, 53}} {
			s, e := span[0], span[1]
			got := make([]float64, e-s)
			want := make([]float64, e-s)

			MinDistSqPointsRect(f.pc, s, e, r, got)
			for i := range want {
				want[i] = MinDistSqPointRect(f.pts[s+i], r)
			}
			checkExact(t, "MinDistSqPointsRect", got, want)

			DistSqPointsPoint(f.pc, s, e, q, got)
			for i := range want {
				want[i] = DistSq(q, f.pts[s+i])
			}
			checkExact(t, "DistSqPointsPoint", got, want)

			MinDistSqRectsRect(f.lo, f.hi, s, e, r, got)
			for i := range want {
				want[i] = MinDistSqRectRect(f.rects[s+i], r)
			}
			checkExact(t, "MinDistSqRectsRect", got, want)

			MinDistSqRectsPoint(f.lo, f.hi, s, e, q, got)
			for i := range want {
				want[i] = MinDistSqPointRect(q, f.rects[s+i])
			}
			checkExact(t, "MinDistSqRectsPoint", got, want)

			SumDistPointsGroup(f.pc, s, e, qs, nil, got)
			for i := range want {
				want[i] = SumDist(f.pts[s+i], qs)
			}
			checkExact(t, "SumDistPointsGroup", got, want)

			SumDistPointsGroup(f.pc, s, e, qs, ws, got)
			for i := range want {
				var acc float64
				for j, qp := range qs {
					acc += ws[j] * Dist(f.pts[s+i], qp)
				}
				want[i] = acc
			}
			checkExact(t, "SumDistPointsGroup(w)", got, want)

			MaxDistSqPointsGroup(f.pc, s, e, qs, got)
			for i := range want {
				want[i] = MaxDistSqToGroup(f.pts[s+i], qs)
			}
			checkExact(t, "MaxDistSqPointsGroup", got, want)

			MinDistSqPointsGroup(f.pc, s, e, qs, got)
			for i := range want {
				want[i] = MinDistSqToGroup(f.pts[s+i], qs)
			}
			checkExact(t, "MinDistSqPointsGroup", got, want)

			MaxDistPointsGroupW(f.pc, s, e, qs, ws, got)
			for i := range want {
				m := 0.0
				for j, qp := range qs {
					if d := ws[j] * Dist(f.pts[s+i], qp); d > m {
						m = d
					}
				}
				want[i] = m
			}
			checkExact(t, "MaxDistPointsGroupW", got, want)

			MinDistPointsGroupW(f.pc, s, e, qs, ws, got)
			for i := range want {
				m := math.Inf(1)
				for j, qp := range qs {
					if d := ws[j] * Dist(f.pts[s+i], qp); d < m {
						m = d
					}
				}
				want[i] = m
			}
			checkExact(t, "MinDistPointsGroupW", got, want)

			for i := range got {
				got[i] = 1.5
				want[i] = 1.5
			}
			AccumWeightedMinDistRectsRect(f.lo, f.hi, s, e, 3.0, r, got)
			for i := range want {
				want[i] += 3.0 * MinDistRectRect(f.rects[s+i], r)
			}
			checkExact(t, "AccumWeightedMinDistRectsRect", got, want)

			src := make([]float64, e-s)
			for i := range src {
				src[i] = float64(i)
			}
			AddWeightedMinDistPointsRect(f.pc, s, e, 2.0, r, src, got)
			for i := range want {
				want[i] = src[i] + 2.0*MinDistPointRect(f.pts[s+i], r)
			}
			checkExact(t, "AddWeightedMinDistPointsRect", got, want)
		}
	}
}
