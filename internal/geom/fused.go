package geom

import "math"

// This file holds the fused range kernels of the packed (SoA) R-tree
// layout: each kernel computes one distance bound for an entire node's
// entry range [s, e) in a single pass over flat per-axis coordinate
// arrays (coords[axis][slot]), writing the results into a caller-supplied
// buffer. Streaming over contiguous float64 slices replaces one scattered
// pointer chase per entry (Entry → Rect → Lo/Hi backing arrays) with
// hardware-prefetchable sequential loads, and the simple per-axis inner
// loops are amenable to auto-vectorization.
//
// Bit-exactness contract: every kernel performs, per element, exactly the
// same floating-point operations in exactly the same order as its scalar
// counterpart in geom.go (axis terms accumulate in ascending axis order,
// group terms in query order, with identical expression shapes). Packed
// traversals therefore produce bit-identical distances and bounds to the
// dynamic layout, which keeps pruning decisions — and hence results and
// node-access counts — identical between the two layouts. Do not
// restructure the arithmetic (e.g. hoisting a Sqrt across a fold or
// squaring weights) without revisiting that contract.

// MinDistSqPointsRect writes dst[i] = MinDistSqPointRect(p_{s+i}, r) for
// the point slots [s, e) of the SoA array pc (pc[axis][slot]).
func MinDistSqPointsRect(pc [][]float64, s, e int, r Rect, dst []float64) {
	dst = dst[:e-s]
	for i := range dst {
		dst[i] = 0
	}
	for a := range pc {
		col := pc[a][s:e]
		lo, hi := r.Lo[a], r.Hi[a]
		for i, v := range col {
			var d float64
			switch {
			case v < lo:
				d = lo - v
			case v > hi:
				d = v - hi
			}
			dst[i] += d * d
		}
	}
}

// DistSqPointsPoint writes dst[i] = DistSq(q, p_{s+i}) for the point
// slots [s, e) of the SoA array pc.
func DistSqPointsPoint(pc [][]float64, s, e int, q Point, dst []float64) {
	dst = dst[:e-s]
	for i := range dst {
		dst[i] = 0
	}
	for a := range pc {
		col := pc[a][s:e]
		qa := q[a]
		for i, v := range col {
			d := qa - v
			dst[i] += d * d
		}
	}
}

// MinDistSqRectsRect writes dst[i] = MinDistSqRectRect(rect_{s+i}, q) for
// the rectangle slots [s, e) of the SoA arrays lo/hi (lo[axis][slot]).
func MinDistSqRectsRect(lo, hi [][]float64, s, e int, q Rect, dst []float64) {
	dst = dst[:e-s]
	for i := range dst {
		dst[i] = 0
	}
	for a := range lo {
		los, his := lo[a][s:e], hi[a][s:e]
		qlo, qhi := q.Lo[a], q.Hi[a]
		for i := range los {
			var d float64
			switch {
			case qhi < los[i]:
				d = los[i] - qhi
			case his[i] < qlo:
				d = qlo - his[i]
			}
			dst[i] += d * d
		}
	}
}

// MinDistSqRectsPoint writes dst[i] = MinDistSqPointRect(q, rect_{s+i})
// for the rectangle slots [s, e) of the SoA arrays lo/hi.
func MinDistSqRectsPoint(lo, hi [][]float64, s, e int, q Point, dst []float64) {
	dst = dst[:e-s]
	for i := range dst {
		dst[i] = 0
	}
	for a := range lo {
		los, his := lo[a][s:e], hi[a][s:e]
		qa := q[a]
		for i := range los {
			var d float64
			switch {
			case qa < los[i]:
				d = los[i] - qa
			case qa > his[i]:
				d = qa - his[i]
			}
			dst[i] += d * d
		}
	}
}

// The group kernels below carry a 2-D fast path: the slot's coordinates
// are hoisted into scalars before the group loop (the compiler cannot do
// this itself across the pc[a][s+i] double indexing, because dst may
// alias the coordinate arrays). The 2-D sum dx*dx + dy*dy is bit-identical
// to the scalar (0 + d0²) + d1² accumulation: squares are non-negative,
// so the leading 0 + x is exact.

// SumDistPointsGroup writes dst[i] = Σ_j w_j·|p_{s+i} q_j| for the point
// slots [s, e) — the fused SUM-aggregate distance of a whole entry range
// to the query group. ws == nil means unweighted, matching SumDist.
func SumDistPointsGroup(pc [][]float64, s, e int, qs []Point, ws []float64, dst []float64) {
	dim := len(pc)
	dst = dst[:e-s]
	if dim == 2 {
		xs, ys := pc[0][s:e], pc[1][s:e]
		for i := range dst {
			px, py := xs[i], ys[i]
			var acc float64
			for j, q := range qs {
				dx, dy := px-q[0], py-q[1]
				if ws == nil {
					acc += math.Sqrt(dx*dx + dy*dy)
				} else {
					acc += ws[j] * math.Sqrt(dx*dx+dy*dy)
				}
			}
			dst[i] = acc
		}
		return
	}
	for i := range dst {
		var acc float64
		for j, q := range qs {
			var dsq float64
			for a := 0; a < dim; a++ {
				d := pc[a][s+i] - q[a]
				dsq += d * d
			}
			if ws == nil {
				acc += math.Sqrt(dsq)
			} else {
				acc += ws[j] * math.Sqrt(dsq)
			}
		}
		dst[i] = acc
	}
}

// MaxDistSqPointsGroup writes dst[i] = MaxDistSqToGroup(p_{s+i}, qs) —
// the fused squared MAX-aggregate distance of a whole entry range.
func MaxDistSqPointsGroup(pc [][]float64, s, e int, qs []Point, dst []float64) {
	dim := len(pc)
	dst = dst[:e-s]
	if dim == 2 {
		xs, ys := pc[0][s:e], pc[1][s:e]
		for i := range dst {
			px, py := xs[i], ys[i]
			var m float64
			for _, q := range qs {
				dx, dy := px-q[0], py-q[1]
				if dsq := dx*dx + dy*dy; dsq > m {
					m = dsq
				}
			}
			dst[i] = m
		}
		return
	}
	for i := range dst {
		var m float64
		for _, q := range qs {
			var dsq float64
			for a := 0; a < dim; a++ {
				d := pc[a][s+i] - q[a]
				dsq += d * d
			}
			if dsq > m {
				m = dsq
			}
		}
		dst[i] = m
	}
}

// MinDistSqPointsGroup writes dst[i] = MinDistSqToGroup(p_{s+i}, qs) —
// the fused squared MIN-aggregate distance of a whole entry range.
func MinDistSqPointsGroup(pc [][]float64, s, e int, qs []Point, dst []float64) {
	dim := len(pc)
	dst = dst[:e-s]
	if dim == 2 {
		xs, ys := pc[0][s:e], pc[1][s:e]
		for i := range dst {
			px, py := xs[i], ys[i]
			m := math.Inf(1)
			for _, q := range qs {
				dx, dy := px-q[0], py-q[1]
				if dsq := dx*dx + dy*dy; dsq < m {
					m = dsq
				}
			}
			dst[i] = m
		}
		return
	}
	for i := range dst {
		m := math.Inf(1)
		for _, q := range qs {
			var dsq float64
			for a := 0; a < dim; a++ {
				d := pc[a][s+i] - q[a]
				dsq += d * d
			}
			if dsq < m {
				m = dsq
			}
		}
		dst[i] = m
	}
}

// MaxDistPointsGroupW writes dst[i] = max_j w_j·|p_{s+i} q_j| — the fused
// weighted MAX aggregate. The weight multiplies the distance (not its
// square), matching the scalar weighted fold in the query kernels.
func MaxDistPointsGroupW(pc [][]float64, s, e int, qs []Point, ws []float64, dst []float64) {
	dim := len(pc)
	dst = dst[:e-s]
	if dim == 2 {
		xs, ys := pc[0][s:e], pc[1][s:e]
		for i := range dst {
			px, py := xs[i], ys[i]
			var m float64
			for j, q := range qs {
				dx, dy := px-q[0], py-q[1]
				if d := ws[j] * math.Sqrt(dx*dx+dy*dy); d > m {
					m = d
				}
			}
			dst[i] = m
		}
		return
	}
	for i := range dst {
		var m float64
		for j, q := range qs {
			var dsq float64
			for a := 0; a < dim; a++ {
				d := pc[a][s+i] - q[a]
				dsq += d * d
			}
			if d := ws[j] * math.Sqrt(dsq); d > m {
				m = d
			}
		}
		dst[i] = m
	}
}

// MinDistPointsGroupW writes dst[i] = min_j w_j·|p_{s+i} q_j| — the fused
// weighted MIN aggregate.
func MinDistPointsGroupW(pc [][]float64, s, e int, qs []Point, ws []float64, dst []float64) {
	dim := len(pc)
	dst = dst[:e-s]
	if dim == 2 {
		xs, ys := pc[0][s:e], pc[1][s:e]
		for i := range dst {
			px, py := xs[i], ys[i]
			m := math.Inf(1)
			for j, q := range qs {
				dx, dy := px-q[0], py-q[1]
				if d := ws[j] * math.Sqrt(dx*dx+dy*dy); d < m {
					m = d
				}
			}
			dst[i] = m
		}
		return
	}
	for i := range dst {
		m := math.Inf(1)
		for j, q := range qs {
			var dsq float64
			for a := 0; a < dim; a++ {
				d := pc[a][s+i] - q[a]
				dsq += d * d
			}
			if d := ws[j] * math.Sqrt(dsq); d < m {
				m = d
			}
		}
		dst[i] = m
	}
}

// AccumWeightedMinDistRectsRect adds w·MinDistRectRect(rect_{s+i}, m) to
// dst[i] for the rectangle slots [s, e) — one term of F-MBM's heuristic-5
// weighted mindist Σ_l n_l·mindist(N, M_l), applied to a whole entry range
// per query block.
func AccumWeightedMinDistRectsRect(lo, hi [][]float64, s, e int, w float64, m Rect, dst []float64) {
	dst = dst[:e-s]
	for i := range dst {
		var sum float64
		for a := range lo {
			var d float64
			switch {
			case m.Hi[a] < lo[a][s+i]:
				d = lo[a][s+i] - m.Hi[a]
			case hi[a][s+i] < m.Lo[a]:
				d = m.Lo[a] - hi[a][s+i]
			}
			sum += d * d
		}
		dst[i] += w * math.Sqrt(sum)
	}
}

// AddWeightedMinDistPointsRect writes dst[i] = src[i] +
// w·MinDistPointRect(p_{s+i}, m) for the point slots [s, e) — one column
// step of F-MBM's heuristic-6 suffix-bound matrix, fused over a leaf's
// entry range per query block.
func AddWeightedMinDistPointsRect(pc [][]float64, s, e int, w float64, m Rect, src, dst []float64) {
	dst = dst[:e-s]
	for i := range dst {
		var sum float64
		for a := range pc {
			v := pc[a][s+i]
			var d float64
			switch {
			case v < m.Lo[a]:
				d = m.Lo[a] - v
			case v > m.Hi[a]:
				d = v - m.Hi[a]
			}
			sum += d * d
		}
		dst[i] = src[i] + w*math.Sqrt(sum)
	}
}
