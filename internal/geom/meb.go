package geom

import "math"

// Minimum enclosing ball (MEB) of a point set, the structure behind the
// dedicated aggregate-MAX kernel: for the MEB (c*, r*) of a query group Q,
// every point p satisfies
//
//	dist_max(p,Q)² ≥ |p−c*|² + r*²
//
// because the center of the minimal ball lies in the convex hull of its
// support points, so some support point s has (s−c*)·(p−c*) ≤ 0, whence
// |p−s|² = |p−c*|² + |s−c*|² − 2(p−c*)·(s−c*) ≥ |p−c*|² + r*². The kernel
// turns this into an O(d) per-node pruning bound that stays tight exactly
// where the aggregate-MAX answer lives — inside the group's hull, where
// the per-member mindist bounds (heuristics 2/3) collapse to zero.
//
// The solver is Welzl's recursive algorithm: exact circumspheres over
// boundary sets of at most d+1 points, with a subset-enumeration fallback
// for affinely dependent (collinear, duplicated) boundary sets. It is
// deterministic — no randomized restart — which the differential suites
// rely on.

// Ball is a d-dimensional closed ball. Center and Support returned by a
// scratch-backed computation are views into the scratch's buffers, valid
// until its next call.
type Ball struct {
	Center   Point
	Radius   float64
	RadiusSq float64
	// Support holds points of the input set that determine the ball; the
	// center lies in their convex hull and all of them lie on (or within
	// floating-point noise of) the boundary.
	Support []Point
}

// ContainsPoint reports whether p lies in the ball, within the solver's
// relative tolerance.
func (b Ball) ContainsPoint(p Point) bool {
	return containsSq(b.Center, b.RadiusSq, p)
}

// mebEps is the relative containment tolerance of the solver. Points
// within rSq·(1+mebEps) of the squared radius count as enclosed, which
// keeps the recursion from chasing ulp-level violations into degenerate
// boundary sets.
const mebEps = 1e-10

func containsSq(c Point, rSq float64, p Point) bool {
	if rSq < 0 {
		return false // the empty ball
	}
	return DistSq(p, c) <= rSq+mebEps*(1+rSq)
}

// MinEnclosingBall returns the minimum enclosing ball of a non-empty
// point set. It panics when pts is empty. The convenience form allocates
// its scratch; hot paths hold a MEBScratch and call its method instead.
func MinEnclosingBall(pts []Point) Ball {
	var s MEBScratch
	return s.MinEnclosingBall(pts)
}

// MEBScratch holds the reusable buffers of MinEnclosingBall so a pooled
// caller computes the ball allocation-free once warm. The zero value is
// ready to use. Not safe for concurrent use.
type MEBScratch struct {
	pts  []Point   // working copy of the input order (Welzl peels from the end)
	bnd  []Point   // boundary set, at most d+1 points
	sub  []Point   // subset buffer of the degenerate fallback
	c    Point     // the live ball's center
	cand Point     // candidate center of the degenerate fallback
	bc   Point     // best center of the degenerate fallback
	m    []float64 // augmented Gram matrix of the circumsphere solve
	lam  []float64 // barycentric solution of the circumsphere solve
	dim  int
}

// Reset drops the point references the scratch retained, so a pooled
// scratch does not pin a finished query's group.
func (s *MEBScratch) Reset() {
	clear(s.pts[:cap(s.pts)])
	clear(s.bnd[:cap(s.bnd)])
	clear(s.sub[:cap(s.sub)])
	s.pts = s.pts[:0]
}

// MinEnclosingBall computes the MEB of a non-empty point set into the
// scratch's buffers. The returned Center and Support are views valid
// until the next call on the same scratch.
func (s *MEBScratch) MinEnclosingBall(pts []Point) Ball {
	if len(pts) == 0 {
		panic("geom: MinEnclosingBall of empty point set")
	}
	d := len(pts[0])
	s.dim = d
	s.pts = append(s.pts[:0], pts...)
	s.bnd = growPts(s.bnd, d+1)
	s.sub = growPts(s.sub, d+1)
	s.c = growFloat(s.c, d)
	s.cand = growFloat(s.cand, d)
	s.bc = growFloat(s.bc, d)
	s.m = growFloat(s.m, d*(d+1))
	s.lam = growFloat(s.lam, d)
	rSq, nb := s.welzl(len(s.pts), 0)
	if rSq < 0 {
		// Unreachable for non-empty input, but keep the invariant total.
		copy(s.c, pts[0])
		rSq, nb = 0, 1
		s.bnd[0] = pts[0]
	}
	return Ball{Center: s.c, Radius: math.Sqrt(rSq), RadiusSq: rSq, Support: s.bnd[:nb]}
}

// welzl returns the squared radius (into s.c, the center) of the smallest
// ball enclosing s.pts[:n] with s.bnd[:b] on its boundary, and the final
// boundary size. The classic recursion: peel a point, solve without it,
// and promote it to the boundary only when it falls outside.
func (s *MEBScratch) welzl(n, b int) (float64, int) {
	if n == 0 || b == s.dim+1 {
		return s.ballOf(b), b
	}
	p := s.pts[n-1]
	rSq, nb := s.welzl(n-1, b)
	if rSq >= 0 && containsSq(s.c, rSq, p) {
		return rSq, nb
	}
	s.bnd[b] = p
	return s.welzl(n-1, b+1)
}

// ballOf computes the smallest ball with s.bnd[:b] on its boundary into
// s.c, returning its squared radius (-1 for the empty boundary: a ball
// containing nothing).
func (s *MEBScratch) ballOf(b int) float64 {
	switch b {
	case 0:
		return -1
	case 1:
		copy(s.c, s.bnd[0])
		return 0
	case 2:
		for i := range s.c {
			s.c[i] = (s.bnd[0][i] + s.bnd[1][i]) / 2
		}
		return DistSq(s.c, s.bnd[0])
	}
	if circumsphere(s.bnd[:b], s.c, s.m, s.lam) {
		return supportRadiusSq(s.c, s.bnd[:b])
	}
	return s.smallestOf(b)
}

// supportRadiusSq returns the largest squared center-to-support distance,
// so the reported radius always encloses the support set even when the
// solved center is off-equidistant by an ulp.
func supportRadiusSq(c Point, sup []Point) float64 {
	var r float64
	for _, p := range sup {
		if d := DistSq(p, c); d > r {
			r = d
		}
	}
	return r
}

// circumsphere solves for the unique sphere through all points of sup
// (|sup| ≥ 3): with v_i = sup[i]−sup[0], the center is sup[0] + Σ λ_i v_i
// where 2(v_i·v_j)λ_j = |v_i|². Gaussian elimination with partial
// pivoting over the scratch matrix m; reports false when the system is
// (near-)singular, i.e. the points are affinely dependent.
func circumsphere(sup []Point, c Point, m, lam []float64) bool {
	n := len(sup) - 1 // unknowns
	w := n + 1        // row width (augmented)
	var scale float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var dot float64
			for ax := range sup[0] {
				dot += (sup[i+1][ax] - sup[0][ax]) * (sup[j+1][ax] - sup[0][ax])
			}
			m[i*w+j] = 2 * dot
			if i == j {
				m[i*w+n] = dot // the RHS |v_i|² is the diagonal dot product
				if v := math.Abs(2 * dot); v > scale {
					scale = v
				}
			}
		}
	}
	if scale == 0 {
		return false // every support point coincides with sup[0]
	}
	tiny := 1e-12 * scale
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r*w+col]) > math.Abs(m[piv*w+col]) {
				piv = r
			}
		}
		if math.Abs(m[piv*w+col]) <= tiny {
			return false
		}
		if piv != col {
			for j := col; j < w; j++ {
				m[col*w+j], m[piv*w+j] = m[piv*w+j], m[col*w+j]
			}
		}
		for r := col + 1; r < n; r++ {
			f := m[r*w+col] / m[col*w+col]
			if f == 0 {
				continue
			}
			for j := col; j < w; j++ {
				m[r*w+j] -= f * m[col*w+j]
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		v := m[i*w+n]
		for j := i + 1; j < n; j++ {
			v -= m[i*w+j] * lam[j]
		}
		lam[i] = v / m[i*w+i]
	}
	for ax := range c {
		v := sup[0][ax]
		for i := 0; i < n; i++ {
			v += lam[i] * (sup[i+1][ax] - sup[0][ax])
		}
		c[ax] = v
	}
	return true
}

// smallestOf is the degenerate-boundary fallback: the minimum enclosing
// ball of the ≤ d+1 points s.bnd[:b] by enumeration of support subsets
// (collinear or duplicated boundary sets have no common circumsphere, but
// their MEB is determined by an affinely independent subset). The final
// centroid fallback keeps the function total under any floating-point
// misbehavior: it is a valid enclosing ball with its center exactly in
// the convex hull of the boundary set, merely not minimal.
func (s *MEBScratch) smallestOf(b int) float64 {
	best := math.Inf(1)
	found := false
	for mask := 1; mask < 1<<b; mask++ {
		sub := s.sub[:0]
		for i := 0; i < b; i++ {
			if mask&(1<<i) != 0 {
				sub = append(sub, s.bnd[i])
			}
		}
		var rSq float64
		switch len(sub) {
		case 1:
			copy(s.cand, sub[0])
			rSq = 0
		case 2:
			for i := range s.cand {
				s.cand[i] = (sub[0][i] + sub[1][i]) / 2
			}
			rSq = DistSq(s.cand, sub[0])
		default:
			if !circumsphere(sub, s.cand, s.m, s.lam) {
				continue
			}
			rSq = supportRadiusSq(s.cand, sub)
		}
		if rSq >= best {
			continue
		}
		ok := true
		for i := 0; i < b; i++ {
			if !containsSq(s.cand, rSq, s.bnd[i]) {
				ok = false
				break
			}
		}
		if ok {
			best = rSq
			copy(s.bc, s.cand)
			found = true
		}
	}
	if found {
		copy(s.c, s.bc)
		return best
	}
	for ax := range s.c {
		var v float64
		for i := 0; i < b; i++ {
			v += s.bnd[i][ax]
		}
		s.c[ax] = v / float64(b)
	}
	return supportRadiusSq(s.c, s.bnd[:b])
}

// growPts returns dst with length n (contents retained up to n),
// reallocating only when capacity is short.
func growPts(dst []Point, n int) []Point {
	if cap(dst) < n {
		nd := make([]Point, n)
		copy(nd, dst)
		return nd
	}
	return dst[:n]
}

// growFloat is growPts for float64 slices.
func growFloat(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	return dst[:n]
}
