package geom

import (
	"math"
	"math/rand"
	"testing"
)

// mebFixtures are hand-picked point sets with known minimum enclosing
// balls, including every degenerate shape the Welzl recursion can hand
// the circumsphere solver: duplicates, collinear boundary sets, and
// boundary sets larger than the affinely independent support.
var mebFixtures = []struct {
	name   string
	pts    []Point
	center Point
	radius float64
}{
	{"single", []Point{pt(3, -4)}, pt(3, -4), 0},
	{"pair", []Point{pt(0, 0), pt(6, 8)}, pt(3, 4), 5},
	{"pair-1d", []Point{pt(-2), pt(6)}, pt(2), 4},
	{"duplicates", []Point{pt(1, 2), pt(1, 2), pt(1, 2)}, pt(1, 2), 0},
	{"two-plus-dup", []Point{pt(0, 0), pt(4, 0), pt(0, 0)}, pt(2, 0), 2},
	// Equilateral-ish triangle: circumcenter at the centroid for the
	// equilateral case. Use (0,0), (2,0), (1,√3): circumcenter (1, 1/√3),
	// circumradius 2/√3.
	{"equilateral", []Point{pt(0, 0), pt(2, 0), pt(1, math.Sqrt(3))},
		pt(1, 1/math.Sqrt(3)), 2 / math.Sqrt(3)},
	// Obtuse triangle: the MEB is the diametral ball of the longest edge,
	// NOT the circumcircle (the far vertex is inside the diametral ball).
	{"obtuse", []Point{pt(0, 0), pt(10, 0), pt(5, 1)}, pt(5, 0), 5},
	// Collinear points: diametral ball of the extremes.
	{"collinear", []Point{pt(0, 0), pt(1, 1), pt(2, 2), pt(3, 3), pt(4, 4)},
		pt(2, 2), 2 * math.Sqrt2},
	// Interior points must not influence the ball.
	{"interior", []Point{pt(-3, 0), pt(3, 0), pt(0, 1), pt(1, -1), pt(0, 0)},
		pt(0, 0), 3},
	// Square: circumscribed ball through all four corners.
	{"square", []Point{pt(-1, -1), pt(1, -1), pt(1, 1), pt(-1, 1)},
		pt(0, 0), math.Sqrt2},
	// 3-d regular tetrahedron vertices on the unit sphere.
	{"tetrahedron", []Point{
		pt(1, 1, 1), pt(1, -1, -1), pt(-1, 1, -1), pt(-1, -1, 1),
	}, pt(0, 0, 0), math.Sqrt(3)},
	// 3-d collinear (affinely dependent in every subset of ≥ 3).
	{"collinear-3d", []Point{pt(0, 0, 0), pt(1, 2, 2), pt(2, 4, 4), pt(3, 6, 6)},
		pt(1.5, 3, 3), 4.5},
}

func TestMinEnclosingBallFixtures(t *testing.T) {
	for _, tc := range mebFixtures {
		b := MinEnclosingBall(tc.pts)
		if !almostEqual(b.Radius, tc.radius) {
			t.Errorf("%s: radius = %v, want %v", tc.name, b.Radius, tc.radius)
		}
		for ax := range tc.center {
			if !almostEqual(b.Center[ax], tc.center[ax]) {
				t.Errorf("%s: center = %v, want %v", tc.name, b.Center, tc.center)
				break
			}
		}
		checkBallInvariants(t, tc.name, tc.pts, b)
	}
}

// checkBallInvariants asserts the contract every MEB must satisfy
// regardless of geometry: containment of the whole input, internal
// consistency of Radius/RadiusSq, a non-empty support set drawn from the
// input with every support point on the boundary, and minimality against
// the classic candidate families (no pairwise diametral ball or triple
// circumcircle that encloses everything may be smaller).
func checkBallInvariants(t *testing.T, name string, pts []Point, b Ball) {
	t.Helper()
	if b.RadiusSq < 0 || math.Abs(b.Radius*b.Radius-b.RadiusSq) > 1e-9*(1+b.RadiusSq) {
		t.Errorf("%s: inconsistent Radius %v vs RadiusSq %v", name, b.Radius, b.RadiusSq)
	}
	for i, p := range pts {
		if !b.ContainsPoint(p) {
			t.Errorf("%s: point %d %v outside ball c=%v r=%v (dist %v)",
				name, i, p, b.Center, b.Radius, Dist(p, b.Center))
		}
	}
	if len(b.Support) == 0 || len(b.Support) > len(pts[0])+1 {
		t.Errorf("%s: support size %d out of range [1, d+1]", name, len(b.Support))
	}
	for _, s := range b.Support {
		fromInput := false
		for _, p := range pts {
			if samePoint(s, p) {
				fromInput = true
				break
			}
		}
		if !fromInput {
			t.Errorf("%s: support point %v not in the input set", name, s)
		}
		if d := Dist(s, b.Center); math.Abs(d-b.Radius) > 1e-6*(1+b.Radius) {
			t.Errorf("%s: support point %v off the boundary: dist %v, radius %v",
				name, s, d, b.Radius)
		}
	}
	// Lower bound: the ball must cover the farthest pair, so the radius is
	// at least half the diameter of the set.
	var maxPair float64
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := Dist(pts[i], pts[j]); d > maxPair {
				maxPair = d
			}
		}
	}
	if b.Radius < maxPair/2-1e-9*(1+maxPair) {
		t.Errorf("%s: radius %v below half the set diameter %v", name, b.Radius, maxPair/2)
	}
	// Minimality: no enclosing candidate ball from the pairwise-midpoint
	// or triple-circumcircle families may be smaller. (For d ≤ 3 these
	// families plus 4-point circumspheres contain the true MEB; comparing
	// against the enclosing members is a valid one-sided check in any d.)
	slack := 1e-7 * (1 + b.Radius)
	check := func(c Point, rSq float64) {
		r := math.Sqrt(rSq)
		if r >= b.Radius-slack {
			return
		}
		for _, p := range pts {
			if !containsSq(c, rSq, p) {
				return
			}
		}
		t.Errorf("%s: found smaller enclosing ball c=%v r=%v than reported r=%v",
			name, c, r, b.Radius)
	}
	d := len(pts[0])
	mid := make(Point, d)
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			for ax := 0; ax < d; ax++ {
				mid[ax] = (pts[i][ax] + pts[j][ax]) / 2
			}
			check(mid, DistSq(mid, pts[i]))
		}
	}
	if d >= 2 {
		c := make(Point, d)
		m := make([]float64, d*(d+1))
		lam := make([]float64, d)
		for i := range pts {
			for j := i + 1; j < len(pts); j++ {
				for k := j + 1; k < len(pts); k++ {
					sup := []Point{pts[i], pts[j], pts[k]}
					if circumsphere(sup, c, m, lam) {
						check(c, supportRadiusSq(c, sup))
					}
				}
			}
		}
	}
}

// TestMinEnclosingBallRandom drives the invariant checker over random
// sets in 1..4 dimensions, including clustered and axis-degenerate
// shapes, at group sizes bracketing the d+1 boundary.
func TestMinEnclosingBallRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, d := range []int{1, 2, 3, 4} {
		for _, n := range []int{1, 2, 3, 4, 5, 8, 17, 64} {
			for trial := 0; trial < 20; trial++ {
				pts := make([]Point, n)
				for i := range pts {
					p := make(Point, d)
					for ax := range p {
						p[ax] = rng.Float64()*200 - 100
					}
					// A third of the trials squash one axis to force
					// affinely dependent boundary sets.
					if trial%3 == 0 && d > 1 {
						p[0] = 7.25
					}
					pts[i] = p
				}
				b := MinEnclosingBall(pts)
				checkBallInvariants(t, "random", pts, b)
			}
		}
	}
}

// TestMEBScratchReuse asserts a single scratch reproduces the fresh
// solver bit for bit across interleaved calls of different sizes and
// dimensions, and that Reset drops retained point references.
func TestMEBScratchReuse(t *testing.T) {
	var s MEBScratch
	for _, tc := range mebFixtures {
		want := MinEnclosingBall(tc.pts)
		got := s.MinEnclosingBall(tc.pts)
		if got.RadiusSq != want.RadiusSq {
			t.Errorf("%s: scratch RadiusSq %v != fresh %v", tc.name, got.RadiusSq, want.RadiusSq)
		}
		for ax := range want.Center {
			if got.Center[ax] != want.Center[ax] {
				t.Errorf("%s: scratch center %v != fresh %v", tc.name, got.Center, want.Center)
				break
			}
		}
		if len(got.Support) != len(want.Support) {
			t.Errorf("%s: scratch support size %d != fresh %d",
				tc.name, len(got.Support), len(want.Support))
		}
	}
	s.Reset()
	for _, p := range s.pts[:cap(s.pts)] {
		if p != nil {
			t.Fatal("Reset left a point reference in the working buffer")
		}
	}
	for _, p := range s.bnd[:cap(s.bnd)] {
		if p != nil {
			t.Fatal("Reset left a point reference in the boundary buffer")
		}
	}
	// The scratch stays usable after Reset.
	b := s.MinEnclosingBall([]Point{pt(0, 0), pt(2, 0)})
	if !almostEqual(b.Radius, 1) {
		t.Fatalf("post-Reset ball radius = %v, want 1", b.Radius)
	}
}

// TestMEBTranslationInvariance asserts the solver commutes with
// translation to ulp-level accuracy: the Gram system is built from
// coordinate differences, so the barycentric solution is exactly
// invariant and only the final center assembly (sup[0] + Σ λ_i v_i)
// re-rounds under the offset. The query-level metamorphic suite relies
// on the kernel's slack term absorbing exactly this drift.
func TestMEBTranslationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	off := pt(131072, -65536) // power-of-two offsets: exact FP translation
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(12)
		pts := make([]Point, n)
		moved := make([]Point, n)
		for i := range pts {
			p := pt(float64(rng.Intn(1<<20)), float64(rng.Intn(1<<20)))
			pts[i] = p
			moved[i] = pt(p[0]+off[0], p[1]+off[1])
		}
		a := MinEnclosingBall(pts)
		b := MinEnclosingBall(moved)
		rtol := 1e-12 * (1 + a.RadiusSq)
		if math.Abs(a.RadiusSq-b.RadiusSq) > rtol {
			t.Fatalf("trial %d: RadiusSq drifted under translation: %v vs %v",
				trial, a.RadiusSq, b.RadiusSq)
		}
		ctol := 1e-9 * (1 + math.Abs(off[0]) + math.Abs(off[1]))
		if math.Abs(a.Center[0]+off[0]-b.Center[0]) > ctol ||
			math.Abs(a.Center[1]+off[1]-b.Center[1]) > ctol {
			t.Fatalf("trial %d: center drifted under translation: %v vs %v",
				trial, a.Center, b.Center)
		}
	}
}

func samePoint(a, b Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
