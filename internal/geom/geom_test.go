package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func pt(xs ...float64) Point { return Point(xs) }

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{pt(0, 0), pt(3, 4), 5},
		{pt(1, 1), pt(1, 1), 0},
		{pt(-1, -1), pt(2, 3), 5},
		{pt(0, 0, 0), pt(1, 2, 2), 3},
		{pt(7), pt(4), 3},
	}
	for _, tc := range tests {
		if got := Dist(tc.p, tc.q); !almostEqual(got, tc.want) {
			t.Errorf("Dist(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want)
		}
		if got := DistSq(tc.p, tc.q); !almostEqual(got, tc.want*tc.want) {
			t.Errorf("DistSq(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want*tc.want)
		}
	}
}

func TestSumDist(t *testing.T) {
	qs := []Point{pt(0, 0), pt(6, 0)}
	if got := SumDist(pt(3, 4), qs); !almostEqual(got, 10) {
		t.Errorf("SumDist = %v, want 10", got)
	}
	if got := SumDist(pt(3, 0), qs); !almostEqual(got, 6) {
		t.Errorf("SumDist on segment = %v, want 6", got)
	}
	if got := SumDist(pt(1, 1), nil); got != 0 {
		t.Errorf("SumDist with empty group = %v, want 0", got)
	}
}

func TestGroupAggregates(t *testing.T) {
	qs := []Point{pt(0, 0), pt(10, 0), pt(0, 10)}
	p := pt(0, 0)
	if got := MinDistToGroup(p, qs); got != 0 {
		t.Errorf("MinDistToGroup = %v, want 0", got)
	}
	if got := MaxDistToGroup(p, qs); !almostEqual(got, 10) {
		t.Errorf("MaxDistToGroup = %v, want 10", got)
	}
	if got := MinDistToGroup(p, nil); !math.IsInf(got, 1) {
		t.Errorf("MinDistToGroup(empty) = %v, want +Inf", got)
	}
	if got := MaxDistToGroup(p, nil); got != 0 {
		t.Errorf("MaxDistToGroup(empty) = %v, want 0", got)
	}
}

func TestPointEqualClone(t *testing.T) {
	p := pt(1, 2)
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatal("clone not equal")
	}
	q[0] = 9
	if p.Equal(q) {
		t.Fatal("clone aliases original")
	}
	if p.Equal(pt(1, 2, 3)) {
		t.Fatal("points of different dim reported equal")
	}
	if p.String() != "(1, 2)" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestNewRectNormalises(t *testing.T) {
	r := NewRect(pt(5, 1), pt(2, 7))
	want := Rect{Lo: pt(2, 1), Hi: pt(5, 7)}
	if !r.Equal(want) {
		t.Fatalf("NewRect = %v, want %v", r, want)
	}
	if !r.Valid() {
		t.Fatal("normalised rect invalid")
	}
}

func TestRectValid(t *testing.T) {
	if (Rect{Lo: pt(0, 0), Hi: pt(-1, 1)}).Valid() {
		t.Error("inverted rect reported valid")
	}
	if (Rect{Lo: pt(0), Hi: pt(1, 2)}).Valid() {
		t.Error("mixed-dim rect reported valid")
	}
	if (Rect{}).Valid() {
		t.Error("zero rect reported valid")
	}
	if !RectFromPoint(pt(3, 3)).Valid() {
		t.Error("degenerate point rect reported invalid")
	}
}

func TestBoundingRect(t *testing.T) {
	pts := []Point{pt(1, 5), pt(-2, 3), pt(4, 0)}
	r := BoundingRect(pts)
	want := Rect{Lo: pt(-2, 0), Hi: pt(4, 5)}
	if !r.Equal(want) {
		t.Fatalf("BoundingRect = %v, want %v", r, want)
	}
	for _, p := range pts {
		if !r.ContainsPoint(p) {
			t.Errorf("BoundingRect does not contain %v", p)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("BoundingRect(empty) did not panic")
		}
	}()
	BoundingRect(nil)
}

func TestAreaMarginCenter(t *testing.T) {
	r := NewRect(pt(0, 0), pt(4, 2))
	if got := r.Area(); got != 8 {
		t.Errorf("Area = %v, want 8", got)
	}
	if got := r.Margin(); got != 6 {
		t.Errorf("Margin = %v, want 6", got)
	}
	if c := r.Center(); !c.Equal(pt(2, 1)) {
		t.Errorf("Center = %v, want (2,1)", c)
	}
}

func TestContainsIntersects(t *testing.T) {
	r := NewRect(pt(0, 0), pt(10, 10))
	s := NewRect(pt(2, 2), pt(5, 5))
	disjoint := NewRect(pt(11, 11), pt(12, 12))
	touching := NewRect(pt(10, 0), pt(12, 2))

	if !r.ContainsRect(s) || r.ContainsRect(disjoint) {
		t.Error("ContainsRect wrong")
	}
	if !r.Intersects(s) || !s.Intersects(r) {
		t.Error("contained rects must intersect")
	}
	if r.Intersects(disjoint) {
		t.Error("disjoint rects intersect")
	}
	if !r.Intersects(touching) {
		t.Error("edge-touching rects must intersect (closed rects)")
	}
	if !r.ContainsPoint(pt(10, 10)) {
		t.Error("boundary point not contained")
	}
	if r.ContainsPoint(pt(10.001, 10)) {
		t.Error("outside point contained")
	}
}

func TestIntersectionUnion(t *testing.T) {
	r := NewRect(pt(0, 0), pt(4, 4))
	s := NewRect(pt(2, 2), pt(6, 6))
	got, ok := r.Intersection(s)
	if !ok || !got.Equal(NewRect(pt(2, 2), pt(4, 4))) {
		t.Errorf("Intersection = %v ok=%v", got, ok)
	}
	if _, ok := r.Intersection(NewRect(pt(5, 5), pt(6, 6))); ok {
		t.Error("disjoint intersection reported ok")
	}
	if got := r.OverlapArea(s); got != 4 {
		t.Errorf("OverlapArea = %v, want 4", got)
	}
	if got := r.OverlapArea(NewRect(pt(4, 4), pt(5, 5))); got != 0 {
		t.Errorf("touching OverlapArea = %v, want 0", got)
	}
	u := r.Union(s)
	if !u.Equal(NewRect(pt(0, 0), pt(6, 6))) {
		t.Errorf("Union = %v", u)
	}
	if e := r.Enlargement(s); e != 36-16 {
		t.Errorf("Enlargement = %v, want 20", e)
	}
}

func TestExpandPoint(t *testing.T) {
	r := RectFromPoint(pt(1, 1))
	r = r.ExpandPoint(pt(3, 0))
	if !r.Equal(NewRect(pt(1, 0), pt(3, 1))) {
		t.Errorf("ExpandPoint = %v", r)
	}
	// Expanding with an interior point must not change the rect.
	r2 := r.ExpandPoint(pt(2, 0.5))
	if !r2.Equal(r) {
		t.Errorf("interior ExpandPoint changed rect: %v", r2)
	}
}

func TestMinDistPointRect(t *testing.T) {
	r := NewRect(pt(0, 0), pt(10, 10))
	tests := []struct {
		p    Point
		want float64
	}{
		{pt(5, 5), 0},      // inside
		{pt(0, 0), 0},      // corner
		{pt(-3, 5), 3},     // left face
		{pt(5, 14), 4},     // top face
		{pt(13, 14), 5},    // corner 3-4-5
		{pt(-3, -4), 5},    // opposite corner
		{pt(10, 10.5), .5}, // just above top-right
	}
	for _, tc := range tests {
		if got := MinDistPointRect(tc.p, r); !almostEqual(got, tc.want) {
			t.Errorf("MinDistPointRect(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestMaxDistPointRect(t *testing.T) {
	r := NewRect(pt(0, 0), pt(10, 10))
	if got := MaxDistPointRect(pt(0, 0), r); !almostEqual(got, math.Sqrt(200)) {
		t.Errorf("MaxDistPointRect corner = %v", got)
	}
	if got := MaxDistPointRect(pt(5, 5), r); !almostEqual(got, math.Sqrt(50)) {
		t.Errorf("MaxDistPointRect centre = %v", got)
	}
}

func TestMinDistRectRect(t *testing.T) {
	r := NewRect(pt(0, 0), pt(2, 2))
	tests := []struct {
		s    Rect
		want float64
	}{
		{NewRect(pt(1, 1), pt(3, 3)), 0}, // overlap
		{NewRect(pt(2, 2), pt(3, 3)), 0}, // touch at corner
		{NewRect(pt(5, 0), pt(6, 2)), 3}, // right gap
		{NewRect(pt(5, 6), pt(7, 8)), 5}, // diagonal 3-4-5
		{NewRect(pt(-4, -3), pt(-3, -2)), math.Sqrt(13)},
	}
	for _, tc := range tests {
		if got := MinDistRectRect(r, tc.s); !almostEqual(got, tc.want) {
			t.Errorf("MinDistRectRect(%v) = %v, want %v", tc.s, got, tc.want)
		}
		if got := MinDistRectRect(tc.s, r); !almostEqual(got, tc.want) {
			t.Errorf("MinDistRectRect not symmetric for %v", tc.s)
		}
	}
}

func TestSumMinDistRectToGroup(t *testing.T) {
	r := NewRect(pt(0, 0), pt(2, 2))
	qs := []Point{pt(5, 0), pt(-3, 0), pt(1, 1)}
	// 3 + 3 + 0
	if got := SumMinDistRectToGroup(r, qs); !almostEqual(got, 6) {
		t.Errorf("SumMinDistRectToGroup = %v, want 6", got)
	}
}

// --- property-based tests ---

type quickPoint struct{ X, Y float64 }

func (q quickPoint) point() Point { return pt(clamp(q.X), clamp(q.Y)) }

// clamp keeps quick-generated coordinates in a sane range so squares do not
// overflow to +Inf.
func clamp(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}

func TestQuickTriangleInequality(t *testing.T) {
	f := func(a, b, c quickPoint) bool {
		p, q, r := a.point(), b.point(), c.point()
		return Dist(p, r) <= Dist(p, q)+Dist(q, r)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDistSymmetryAndIdentity(t *testing.T) {
	f := func(a, b quickPoint) bool {
		p, q := a.point(), b.point()
		return almostEqual(Dist(p, q), Dist(q, p)) && Dist(p, p) == 0 && Dist(p, q) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMinDistLowerBound(t *testing.T) {
	// mindist(q, r) must lower-bound the distance from q to every point
	// inside r — the soundness requirement behind every pruning heuristic.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		r := NewRect(randPoint(rng), randPoint(rng))
		q := randPoint(rng)
		in := pointInside(rng, r)
		if MinDistPointRect(q, r) > Dist(q, in)+1e-9 {
			t.Fatalf("mindist %v > dist %v for q=%v r=%v in=%v",
				MinDistPointRect(q, r), Dist(q, in), q, r, in)
		}
		if MaxDistPointRect(q, r) < Dist(q, in)-1e-9 {
			t.Fatalf("maxdist below actual distance")
		}
	}
}

func TestQuickMinDistRectRectLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		r := NewRect(randPoint(rng), randPoint(rng))
		s := NewRect(randPoint(rng), randPoint(rng))
		pr := pointInside(rng, r)
		ps := pointInside(rng, s)
		if MinDistRectRect(r, s) > Dist(pr, ps)+1e-9 {
			t.Fatalf("rect-rect mindist exceeds a realisable distance")
		}
		if MaxDistRectRect(r, s) < Dist(pr, ps)-1e-9 {
			t.Fatalf("rect-rect maxdist below a realisable distance")
		}
	}
}

func TestQuickUnionContains(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		r := NewRect(randPoint(rng), randPoint(rng))
		s := NewRect(randPoint(rng), randPoint(rng))
		u := r.Union(s)
		if !u.ContainsRect(r) || !u.ContainsRect(s) {
			t.Fatalf("union %v does not contain operands %v %v", u, r, s)
		}
		if u.Area() < r.Area()-1e-9 || u.Area() < s.Area()-1e-9 {
			t.Fatalf("union smaller than operand")
		}
		if r.Enlargement(s) < -1e-9 {
			t.Fatalf("negative enlargement")
		}
	}
}

func randPoint(rng *rand.Rand) Point {
	return pt(rng.Float64()*200-100, rng.Float64()*200-100)
}

func pointInside(rng *rand.Rand, r Rect) Point {
	p := make(Point, len(r.Lo))
	for i := range p {
		p[i] = r.Lo[i] + rng.Float64()*(r.Hi[i]-r.Lo[i])
	}
	return p
}

func BenchmarkDist(b *testing.B) {
	p, q := pt(1, 2), pt(3, 4)
	for i := 0; i < b.N; i++ {
		_ = Dist(p, q)
	}
}

func BenchmarkMinDistPointRect(b *testing.B) {
	p := pt(-3, 5)
	r := NewRect(pt(0, 0), pt(10, 10))
	for i := 0; i < b.N; i++ {
		_ = MinDistPointRect(p, r)
	}
}

// TestSquaredAggregateVariants: the squared group aggregates must agree
// exactly with their Sqrt counterparts — Sqrt is monotone and correctly
// rounded, so Sqrt of the squared aggregate is bit-identical to the
// aggregate of the Sqrts.
func TestSquaredAggregateVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		p := randPoint(rng)
		qs := make([]Point, 1+rng.Intn(8))
		for i := range qs {
			qs[i] = randPoint(rng)
		}
		if got, want := math.Sqrt(MaxDistSqToGroup(p, qs)), MaxDistToGroup(p, qs); got != want {
			t.Fatalf("sqrt(MaxDistSq)=%v != MaxDist=%v", got, want)
		}
		if got, want := math.Sqrt(MinDistSqToGroup(p, qs)), MinDistToGroup(p, qs); got != want {
			t.Fatalf("sqrt(MinDistSq)=%v != MinDist=%v", got, want)
		}
		r := NewRect(randPoint(rng), randPoint(rng))
		maxLB := 0.0
		minLB := math.Inf(1)
		for _, q := range qs {
			if d := MinDistPointRect(q, r); d > maxLB {
				maxLB = d
			}
			if d := MinDistPointRect(q, r); d < minLB {
				minLB = d
			}
		}
		if got := math.Sqrt(MaxMinDistSqRectToGroup(r, qs)); got != maxLB {
			t.Fatalf("sqrt(MaxMinDistSq)=%v != %v", got, maxLB)
		}
		if got := math.Sqrt(MinMinDistSqRectToGroup(r, qs)); got != minLB {
			t.Fatalf("sqrt(MinMinDistSq)=%v != %v", got, minLB)
		}
	}
}

// TestBoundingRectInto: the in-place variant must agree with BoundingRect
// and reuse the destination's backing arrays when they are large enough.
func TestBoundingRectInto(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pts := make([]Point, 16)
	for i := range pts {
		pts[i] = randPoint(rng)
	}
	want := BoundingRect(pts)
	dst := Rect{Lo: make(Point, 0, 2), Hi: make(Point, 0, 2)}
	loBase, hiBase := &dst.Lo[:1][0], &dst.Hi[:1][0]
	got := BoundingRectInto(dst, pts)
	if !got.Equal(want) {
		t.Fatalf("BoundingRectInto %v != BoundingRect %v", got, want)
	}
	if &got.Lo[0] != loBase || &got.Hi[0] != hiBase {
		t.Fatal("BoundingRectInto reallocated despite sufficient capacity")
	}
	// Small destination must grow, not panic or write out of bounds.
	grown := BoundingRectInto(Rect{}, pts)
	if !grown.Equal(want) {
		t.Fatalf("BoundingRectInto from zero Rect %v != %v", grown, want)
	}
}
