package rtree

import (
	"fmt"
	"math"
	"slices"

	"gnn/internal/geom"
	"gnn/internal/hilbert"
	"gnn/internal/pagestore"
)

// BulkLoadSTR builds a tree over the given points with the Sort-Tile-
// Recursive algorithm: points are tiled into vertical slabs of √(n/M)
// tiles, each slab sorted on the second axis, and leaves packed to
// capacity. Internal levels are packed the same way over child centres.
// ids[i] identifies pts[i]; pass nil to use the point index.
func BulkLoadSTR(cfg Config, pts []geom.Point, ids []int64) (*Tree, error) {
	t, pts2, ids2, err := prepareBulk(cfg, pts, ids)
	if err != nil || t.size == 0 {
		return t, err
	}
	entries := leafEntries(pts2, ids2)

	// STR tiling on the first two axes (points beyond 2-D are tiled on the
	// first two dimensions, which preserves correctness — tiling is purely
	// a quality heuristic).
	M := t.cfg.MaxEntries
	nLeaves := (len(entries) + M - 1) / M
	slabs := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	perSlab := slabs * M

	cmpAxis := func(axis int) func(a, b Entry) int {
		return func(a, b Entry) int {
			switch {
			case a.Point[axis] < b.Point[axis]:
				return -1
			case a.Point[axis] > b.Point[axis]:
				return 1
			default:
				return 0
			}
		}
	}
	slices.SortStableFunc(entries, cmpAxis(0))
	for lo := 0; lo < len(entries); lo += perSlab {
		hi := lo + perSlab
		if hi > len(entries) {
			hi = len(entries)
		}
		if t.cfg.Dim >= 2 {
			slices.SortStableFunc(entries[lo:hi], cmpAxis(1))
		}
	}
	t.packLevels(entries)
	return t, nil
}

// BulkLoadHilbert builds a tree by packing points in Hilbert order — the
// classic Hilbert-packed R-tree. Only the first two dimensions contribute
// to the ordering.
func BulkLoadHilbert(cfg Config, pts []geom.Point, ids []int64) (*Tree, error) {
	t, pts2, ids2, err := prepareBulk(cfg, pts, ids)
	if err != nil || t.size == 0 {
		return t, err
	}
	entries := leafEntries(pts2, ids2)
	r := mbrOf(entries)
	hiX, hiY := r.Hi[0], r.Lo[0]
	loX, loY := r.Lo[0], r.Lo[0]
	if t.cfg.Dim >= 2 {
		loY, hiY = r.Lo[1], r.Hi[1]
	}
	m := hilbert.NewMapper(hilbert.DefaultOrder, loX, loY, hiX, hiY)
	hilbert.SortByValue(len(entries), m,
		func(i int) (float64, float64) {
			y := 0.0
			if t.cfg.Dim >= 2 {
				y = entries[i].Point[1]
			}
			return entries[i].Point[0], y
		},
		func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })
	t.packLevels(entries)
	return t, nil
}

// BulkLoadSTRPartitioned Hilbert-partitions the points into parts
// contiguous chunks of near-equal size (the classic shard split: sort by
// Hilbert value, cut the curve into parts runs, so every chunk is
// spatially coherent) and STR-bulk-loads one independent tree per chunk.
// All trees share cfg.Accountant (one allocated here when nil) and their
// page IDs are offset to be disjoint, so they can also share an LRU
// buffer and the usual node-access accounting stays exactly additive
// across the partition. Points beyond 2-D are ordered on their first two
// axes, like BulkLoadHilbert; 1-D points on their single axis.
func BulkLoadSTRPartitioned(cfg Config, pts []geom.Point, ids []int64, parts int) ([]*Tree, error) {
	if parts < 1 {
		return nil, fmt.Errorf("rtree: %d partitions; need at least 1", parts)
	}
	cfg, err := cfg.withDefaults() // resolves the shared Accountant once
	if err != nil {
		return nil, err
	}
	if ids == nil {
		ids = make([]int64, len(pts))
		for i := range ids {
			ids[i] = int64(i)
		}
	}
	if len(ids) != len(pts) {
		return nil, fmt.Errorf("rtree: %d ids for %d points", len(ids), len(pts))
	}
	perm := hilbertPerm(cfg.Dim, pts)
	trees := make([]*Tree, 0, parts)
	nextPage := cfg.FirstPage
	n := len(pts)
	for s := 0; s < parts; s++ {
		lo, hi := n*s/parts, n*(s+1)/parts
		cpts := make([]geom.Point, hi-lo)
		cids := make([]int64, hi-lo)
		for i, j := range perm[lo:hi] {
			cpts[i] = pts[j]
			cids[i] = ids[j]
		}
		scfg := cfg
		scfg.FirstPage = nextPage
		t, err := BulkLoadSTR(scfg, cpts, cids)
		if err != nil {
			return nil, err
		}
		nextPage += pagestore.PageID(t.Pages())
		trees = append(trees, t)
	}
	return trees, nil
}

// hilbertPerm returns the Hilbert-order permutation of pts over their
// bounding box (input order for an empty slice).
func hilbertPerm(dim int, pts []geom.Point) []int {
	if len(pts) == 0 {
		return nil
	}
	r := geom.BoundingRect(pts)
	hiX, hiY := r.Hi[0], r.Lo[0]
	loX, loY := r.Lo[0], r.Lo[0]
	if dim >= 2 {
		loY, hiY = r.Lo[1], r.Hi[1]
	}
	m := hilbert.NewMapper(hilbert.DefaultOrder, loX, loY, hiX, hiY)
	return hilbert.Perm(len(pts), m, func(i int) (float64, float64) {
		y := 0.0
		if dim >= 2 {
			y = pts[i][1]
		}
		return pts[i][0], y
	})
}

func prepareBulk(cfg Config, pts []geom.Point, ids []int64) (*Tree, []geom.Point, []int64, error) {
	t, err := New(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	if ids == nil {
		ids = make([]int64, len(pts))
		for i := range ids {
			ids[i] = int64(i)
		}
	}
	if len(ids) != len(pts) {
		return nil, nil, nil, fmt.Errorf("rtree: %d ids for %d points", len(ids), len(pts))
	}
	for i, p := range pts {
		if len(p) != t.cfg.Dim {
			return nil, nil, nil, fmt.Errorf("rtree: point %d has dimension %d, tree dimension %d",
				i, len(p), t.cfg.Dim)
		}
	}
	t.size = len(pts)
	return t, pts, ids, nil
}

func leafEntries(pts []geom.Point, ids []int64) []Entry {
	entries := make([]Entry, len(pts))
	for i, p := range pts {
		entries[i] = Entry{Rect: geom.RectFromPoint(p), Point: p.Clone(), ID: ids[i]}
	}
	return entries
}

// packLevels packs the ordered entries into leaves, then packs each level
// bottom-up until a single root remains. The final node of each level is
// kept at or above MinEntries by borrowing from its predecessor, so packed
// trees satisfy the same fill invariants as incrementally built ones.
func (t *Tree) packLevels(entries []Entry) {
	M, m := t.cfg.MaxEntries, t.cfg.MinEntries
	level := 0
	for len(entries) > M {
		nodes := make([]Entry, 0, (len(entries)+M-1)/M)
		for lo := 0; lo < len(entries); {
			hi := lo + M
			if rem := len(entries) - hi; rem > 0 && rem < m {
				// Shrink this node so the final one reaches MinEntries.
				hi = len(entries) - m
			}
			if hi > len(entries) {
				hi = len(entries)
			}
			n := t.newNode(level)
			n.entries = append(n.entries, entries[lo:hi]...)
			nodes = append(nodes, Entry{Rect: mbrOf(n.entries), child: n})
			lo = hi
		}
		entries = nodes
		level++
	}
	root := t.newNode(level)
	root.entries = append(root.entries, entries...)
	t.root = root
	t.height = level + 1
}
