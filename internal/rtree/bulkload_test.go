package rtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gnn/internal/geom"
)

func TestBulkLoadSTR(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	pts := randPoints(rng, 3000, 1000)
	tr, err := BulkLoadSTR(Config{MaxEntries: 10}, pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Bulk-loaded trees must answer NN exactly like brute force.
	for trial := 0; trial < 30; trial++ {
		q := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		want := bruteKNN(pts, q, 3)
		got := tr.NearestBF(q, 3)
		for i := range got {
			if !almostEq(got[i].Dist, want[i]) {
				t.Fatalf("trial %d rank %d: %v vs %v", trial, i, got[i].Dist, want[i])
			}
		}
	}
}

func TestBulkLoadHilbert(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := randPoints(rng, 2500, 1000)
	tr, err := BulkLoadHilbert(Config{MaxEntries: 10}, pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	q := geom.Point{500, 500}
	want := bruteKNN(pts, q, 10)
	got := tr.NearestBF(q, 10)
	for i := range got {
		if !almostEq(got[i].Dist, want[i]) {
			t.Fatalf("rank %d: %v vs %v", i, got[i].Dist, want[i])
		}
	}
}

func TestBulkLoadEmptyAndTiny(t *testing.T) {
	tr, err := BulkLoadSTR(Config{}, nil, nil)
	if err != nil || tr.Len() != 0 {
		t.Fatalf("empty bulk load: %v, len %d", err, tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	pts := []geom.Point{{1, 1}, {2, 2}}
	tr, err = BulkLoadHilbert(Config{}, pts, []int64{7, 8})
	if err != nil || tr.Len() != 2 || tr.Height() != 1 {
		t.Fatalf("tiny bulk load: %v len %d h %d", err, tr.Len(), tr.Height())
	}
	nn := tr.NearestBF(geom.Point{0, 0}, 1)
	if nn[0].ID != 7 {
		t.Fatalf("NN id = %d", nn[0].ID)
	}
}

func TestBulkLoadValidation(t *testing.T) {
	if _, err := BulkLoadSTR(Config{}, []geom.Point{{1, 2}}, []int64{1, 2}); err == nil {
		t.Fatal("mismatched ids accepted")
	}
	if _, err := BulkLoadSTR(Config{Dim: 3}, []geom.Point{{1, 2}}, nil); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestBulkLoadSizesProperty(t *testing.T) {
	// Any size must produce a structurally valid tree with all points.
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%1200) + 1
		rng := rand.New(rand.NewSource(seed))
		pts := randPoints(rng, n, 500)
		for _, build := range []func(Config, []geom.Point, []int64) (*Tree, error){
			BulkLoadSTR, BulkLoadHilbert,
		} {
			tr, err := build(Config{MaxEntries: 8}, pts, nil)
			if err != nil || tr.Len() != n || tr.CheckInvariants() != nil {
				return false
			}
			count := 0
			tr.All(func(geom.Point, int64) bool { count++; return true })
			if count != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBulkLoadQualityVsInsertion(t *testing.T) {
	// STR packing should produce leaves with no more total area than
	// one-at-a-time insertion (a weak but telling quality signal).
	rng := rand.New(rand.NewSource(22))
	pts := randPoints(rng, 4000, 1000)
	str, err := BulkLoadSTR(Config{MaxEntries: 20}, pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	ins := mustTree(t, Config{MaxEntries: 20})
	insertAll(t, ins, pts)
	a1, a2 := str.ComputeStats().LeafArea, ins.ComputeStats().LeafArea
	if math.IsNaN(a1) || a1 <= 0 {
		t.Fatalf("STR leaf area %v", a1)
	}
	if a1 > a2*1.5 {
		t.Fatalf("STR leaf area %v far worse than insertion %v", a1, a2)
	}
}
