// Package rtree implements the R*-tree of Beckmann et al. [BKSS90] together
// with every traversal the paper builds on: range search, depth-first
// nearest neighbor [RKV95], best-first (incremental) nearest neighbor
// [HS99] and incremental closest pairs over two trees [HS98, CMTV00].
//
// The tree is memory-resident but page-structured: every node carries a
// page identifier and all query traversals are routed through a per-query
// Reader execution context, which charges each node access to the query's
// own pagestore.CostTracker and to the tree's shared pagestore.Accountant —
// reproducing the paper's node-access (NA) metric, optionally through an
// LRU buffer, while keeping unlimited concurrent read traversals safe.
//
// Query algorithms outside this package (SPM, MBM, F-MBM in internal/core)
// drive their own traversals through the exported Reader.Root/Reader.Child
// accessors, so their node accesses are accounted identically.
//
// For read-heavy serving, Tree.Pack snapshots the tree into a Packed
// arena — flat structure-of-arrays node storage traversed through the
// same Reader abstraction with identical accounting — which the fused
// kernels in internal/geom turn into streaming passes over contiguous
// coordinate arrays.
package rtree

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"gnn/internal/geom"
	"gnn/internal/pagestore"
)

// DefaultMaxEntries matches the paper's setup: 1 KB pages holding 50
// entries per node.
const DefaultMaxEntries = pagestore.DefaultPageCapacity

// defaultReinsertFraction is the 30% forced-reinsert share recommended by
// the R*-tree paper.
const defaultReinsertFraction = 0.3

// Entry is a slot of a node: either a routing entry (internal nodes, Rect
// bounds the child subtree) or a data entry (leaf nodes, a point and its
// caller-supplied identifier).
type Entry struct {
	Rect  geom.Rect
	child *node
	// Point and ID are meaningful for leaf entries only.
	Point geom.Point
	ID    int64
}

// IsLeafEntry reports whether the entry carries a data point rather than a
// child node.
func (e Entry) IsLeafEntry() bool { return e.child == nil }

type node struct {
	page    pagestore.PageID
	level   int // 0 = leaf
	entries []Entry
}

// Node is the exported read-only view of a tree node handed to external
// traversals.
type Node struct{ n *node }

// IsLeaf reports whether the node is at leaf level.
func (nd Node) IsLeaf() bool { return nd.n.level == 0 }

// Level returns the node's level, with leaves at level 0.
func (nd Node) Level() int { return nd.n.level }

// Entries returns the node's entry slice. Callers must not modify it.
func (nd Node) Entries() []Entry { return nd.n.entries }

// Page returns the node's page identifier.
func (nd Node) Page() pagestore.PageID { return nd.n.page }

// Config parameterises a tree.
type Config struct {
	// Dim is the dimensionality of indexed points (default 2).
	Dim int
	// MaxEntries is the node capacity M (default DefaultMaxEntries).
	MaxEntries int
	// MinEntries is the minimum fill m (default 40% of MaxEntries).
	MinEntries int
	// ReinsertFraction is the share of entries removed on forced reinsert
	// (default 0.3). Set negative to disable forced reinsertion entirely
	// (plain R-tree overflow handling).
	ReinsertFraction float64
	// Accountant receives one access per node visited by query traversals,
	// shared by all concurrent readers of the tree. When nil a private
	// unbuffered accountant is allocated.
	Accountant *pagestore.Accountant
	// FirstPage offsets the page IDs assigned to nodes so several trees
	// can share one LRU buffer without collisions.
	FirstPage pagestore.PageID
}

func (c Config) withDefaults() (Config, error) {
	if c.Dim == 0 {
		c.Dim = 2
	}
	if c.Dim < 1 {
		return c, fmt.Errorf("rtree: dimension %d < 1", c.Dim)
	}
	if c.MaxEntries == 0 {
		c.MaxEntries = DefaultMaxEntries
	}
	if c.MaxEntries < 4 {
		return c, fmt.Errorf("rtree: MaxEntries %d < 4", c.MaxEntries)
	}
	if c.MinEntries == 0 {
		c.MinEntries = (c.MaxEntries * 2) / 5
		if c.MinEntries < 2 {
			c.MinEntries = 2
		}
	}
	if c.MinEntries < 1 || c.MinEntries > c.MaxEntries/2 {
		return c, fmt.Errorf("rtree: MinEntries %d not in [1, MaxEntries/2=%d]",
			c.MinEntries, c.MaxEntries/2)
	}
	if c.ReinsertFraction == 0 {
		c.ReinsertFraction = defaultReinsertFraction
	}
	if c.ReinsertFraction >= 0.5 {
		return c, fmt.Errorf("rtree: ReinsertFraction %v must be < 0.5", c.ReinsertFraction)
	}
	if c.Accountant == nil {
		c.Accountant = pagestore.NewAccountant(0)
	}
	return c, nil
}

// Tree is an R*-tree over d-dimensional points. Read-only queries (all
// traversals in this package and the drivers built on Reader) are safe for
// unlimited concurrent callers: each query charges its own CostTracker and
// the shared Accountant handles contention. Insert and Delete mutate the
// structure and require external synchronisation, with no readers active.
type Tree struct {
	cfg      Config
	root     *node
	size     int
	height   int // number of levels; 1 = root is a leaf
	nextPage pagestore.PageID
	// muts counts structural mutations (Insert/Delete); a Packed snapshot
	// records the value at build time and is valid only while it matches.
	muts uint64
	// shellOf, when non-nil, marks this tree as the metadata shell of a
	// borrowed packed arena (PackedFromSnapshotBorrowed): root is nil, no
	// dynamic nodes exist, the structure is immutable (Insert fails,
	// Delete reports false), and reads that would walk the dynamic nodes
	// are served from the arena instead.
	shellOf *Packed
}

// ErrImmutable reports a mutation on the shell tree of a borrowed packed
// arena: the nodes live in a read-only (typically memory-mapped) buffer.
var ErrImmutable = errors.New("rtree: tree borrows a read-only arena and cannot be mutated; rebuild the index to change the data")

// Mutations returns the tree's structural-mutation counter, used to
// validate Packed snapshots.
func (t *Tree) Mutations() uint64 { return t.muts }

// Config returns the tree's effective configuration (defaults applied;
// for snapshot-loaded trees, the writer's structural parameters). The
// overlay layer uses it to bulk-load compacted replacements and delta
// trees with identical geometry.
func (t *Tree) Config() Config { return t.cfg }

// IsShell reports whether the tree is the immutable metadata shell of a
// borrowed packed arena: it has no dynamic nodes, so only packed-layout
// traversals can serve it.
func (t *Tree) IsShell() bool { return t.root == nil && t.shellOf != nil }

// New returns an empty tree.
func New(cfg Config) (*Tree, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	t := &Tree{cfg: cfg, nextPage: cfg.FirstPage}
	t.root = t.newNode(0)
	t.height = 1
	return t, nil
}

func (t *Tree) newNode(level int) *node {
	n := &node{page: t.nextPage, level: level,
		entries: make([]Entry, 0, t.cfg.MaxEntries+1)}
	t.nextPage++
	return n
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 when the root is a leaf).
func (t *Tree) Height() int { return t.height }

// Dim returns the tree's dimensionality.
func (t *Tree) Dim() int { return t.cfg.Dim }

// Accountant returns the shared accountant charged by all traversals.
func (t *Tree) Accountant() *pagestore.Accountant { return t.cfg.Accountant }

// Pages returns the number of node pages allocated so far.
func (t *Tree) Pages() int64 { return int64(t.nextPage - t.cfg.FirstPage) }

// Bounds returns the MBR of the indexed points; ok is false when empty.
func (t *Tree) Bounds() (geom.Rect, bool) {
	if t.size == 0 {
		return geom.Rect{}, false
	}
	if t.root == nil {
		return t.shellOf.bounds()
	}
	return t.nodeMBR(t.root), true
}

// Reader is a per-query execution context: a read-only view of the tree
// whose node accesses are charged to one query's CostTracker (may be nil:
// aggregate-only accounting) as well as the tree's shared Accountant.
// Create one Reader per query; a Reader itself is a cheap value but must
// not be shared between goroutines, because the tracker it carries is
// unsynchronised by design.
//
// A Reader traverses either the dynamic nodes (Tree.Reader) or, when it
// carries a valid Packed snapshot (ReaderOver, Packed.Reader), the flat
// SoA arena — same pages, same accounting, same results, different memory
// layout.
type Reader struct {
	t  *Tree
	p  *Packed
	tk *pagestore.CostTracker
}

// Reader returns an execution context charging tk (nil for aggregate-only
// accounting).
func (t *Tree) Reader(tk *pagestore.CostTracker) Reader { return Reader{t: t, tk: tk} }

// Tree returns the underlying tree.
func (r Reader) Tree() *Tree { return r.t }

// Cost returns the reader's per-query tracker (nil when aggregate-only).
func (r Reader) Cost() *pagestore.CostTracker { return r.tk }

// Root returns the root node, charging one node access.
func (r Reader) Root() Node {
	r.t.cfg.Accountant.Access(r.t.root.page, r.tk)
	return Node{r.t.root}
}

// Child resolves a routing entry to its child node, charging one access.
// It panics on leaf entries: following a data entry is a logic error.
func (r Reader) Child(e Entry) Node {
	if e.child == nil {
		panic("rtree: Child called on a leaf entry")
	}
	r.t.cfg.Accountant.Access(e.child.page, r.tk)
	return Node{e.child}
}

func (t *Tree) nodeMBR(n *node) geom.Rect {
	r := n.entries[0].Rect
	for _, e := range n.entries[1:] {
		r = r.Union(e.Rect)
	}
	return r
}

// Insert adds a point with its identifier. Duplicate points (and duplicate
// ids) are allowed, matching real spatial data.
func (t *Tree) Insert(p geom.Point, id int64) error {
	if t.root == nil {
		return ErrImmutable
	}
	if len(p) != t.cfg.Dim {
		return fmt.Errorf("rtree: point dimension %d, tree dimension %d", len(p), t.cfg.Dim)
	}
	e := Entry{Rect: geom.RectFromPoint(p), Point: p.Clone(), ID: id}
	reinserted := make(map[int]bool)
	t.insertEntry(e, 0, reinserted)
	t.size++
	t.muts++
	return nil
}

// insertEntry places e into a node at the given level, handling overflow by
// forced reinsertion (once per level per top-level insertion, tracked by
// reinserted) or R* split.
func (t *Tree) insertEntry(e Entry, level int, reinserted map[int]bool) {
	path := t.chooseSubtree(e.Rect, level)
	n := path[len(path)-1]
	n.entries = append(n.entries, e)
	t.adjustPathMBRs(path, e.Rect)

	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if len(n.entries) <= t.cfg.MaxEntries {
			break
		}
		isRoot := n == t.root
		if !isRoot && t.cfg.ReinsertFraction > 0 && !reinserted[n.level] {
			reinserted[n.level] = true
			t.forcedReinsert(n, path[:i+1], reinserted)
			break // reinsertion re-enters insertEntry; path no longer valid
		}
		t.splitNode(n, path[:i])
	}
}

// chooseSubtree returns the root-to-target path of nodes, where the target
// is the node at the requested level best suited to receive r (R* §4.1).
func (t *Tree) chooseSubtree(r geom.Rect, level int) []*node {
	path := []*node{t.root}
	n := t.root
	for n.level > level {
		var best int
		if n.level == level+1 && level == 0 {
			best = chooseLeastOverlapEnlargement(n.entries, r)
		} else {
			best = chooseLeastAreaEnlargement(n.entries, r)
		}
		n = n.entries[best].child
		path = append(path, n)
	}
	return path
}

// chooseLeastAreaEnlargement picks the entry whose MBR needs the least area
// growth to absorb r; ties resolved by smallest area.
func chooseLeastAreaEnlargement(entries []Entry, r geom.Rect) int {
	best, bestEnl, bestArea := 0, math.Inf(1), math.Inf(1)
	for i, e := range entries {
		enl := e.Rect.Enlargement(r)
		area := e.Rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// chooseLeastOverlapEnlargement implements the R* leaf-level criterion:
// minimum increase of overlap with sibling entries, ties by least area
// enlargement, then least area.
func chooseLeastOverlapEnlargement(entries []Entry, r geom.Rect) int {
	best := 0
	bestOverlap, bestEnl, bestArea := math.Inf(1), math.Inf(1), math.Inf(1)
	for i, e := range entries {
		enlarged := e.Rect.Union(r)
		var overlapDelta float64
		for j, o := range entries {
			if j == i {
				continue
			}
			overlapDelta += enlarged.OverlapArea(o.Rect) - e.Rect.OverlapArea(o.Rect)
		}
		enl := e.Rect.Enlargement(r)
		area := e.Rect.Area()
		if overlapDelta < bestOverlap ||
			(overlapDelta == bestOverlap && enl < bestEnl) ||
			(overlapDelta == bestOverlap && enl == bestEnl && area < bestArea) {
			best, bestOverlap, bestEnl, bestArea = i, overlapDelta, enl, area
		}
	}
	return best
}

// adjustPathMBRs grows the routing rectangles along the insertion path so
// each parent entry still bounds its child.
func (t *Tree) adjustPathMBRs(path []*node, r geom.Rect) {
	for i := len(path) - 2; i >= 0; i-- {
		parent, child := path[i], path[i+1]
		for j := range parent.entries {
			if parent.entries[j].child == child {
				parent.entries[j].Rect = parent.entries[j].Rect.Union(r)
				break
			}
		}
	}
}

// forcedReinsert removes the ReinsertFraction of entries whose centres lie
// farthest from the node's MBR centre and reinserts them closest-first
// (R* "close reinsert").
func (t *Tree) forcedReinsert(n *node, path []*node, reinserted map[int]bool) {
	p := int(float64(t.cfg.MaxEntries+1) * t.cfg.ReinsertFraction)
	if p < 1 {
		p = 1
	}
	center := t.nodeMBR(n).Center()
	type distEntry struct {
		e Entry
		d float64
	}
	ds := make([]distEntry, len(n.entries))
	for i, e := range n.entries {
		ds[i] = distEntry{e, geom.DistSq(e.Rect.Center(), center)}
	}
	slices.SortFunc(ds, func(a, b distEntry) int {
		switch {
		case a.d > b.d:
			return -1
		case a.d < b.d:
			return 1
		default:
			return 0
		}
	})
	removed := make([]Entry, 0, p)
	for i := 0; i < p; i++ {
		removed = append(removed, ds[i].e)
	}
	n.entries = n.entries[:0]
	for i := p; i < len(ds); i++ {
		n.entries = append(n.entries, ds[i].e)
	}
	t.recomputePathMBRs(path)
	// Reinsert closest-first.
	for i := len(removed) - 1; i >= 0; i-- {
		t.insertEntry(removed[i], n.level, reinserted)
	}
}

// recomputePathMBRs tightens the routing rectangles along path after
// entries were removed.
func (t *Tree) recomputePathMBRs(path []*node) {
	for i := len(path) - 2; i >= 0; i-- {
		parent, child := path[i], path[i+1]
		for j := range parent.entries {
			if parent.entries[j].child == child {
				parent.entries[j].Rect = t.nodeMBR(child)
				break
			}
		}
	}
}

// splitNode splits an overflowing node using the R* topological split and
// installs the new sibling in the parent (growing the tree at the root).
// ancestors is the path from the root down to n's parent.
func (t *Tree) splitNode(n *node, ancestors []*node) {
	group1, group2 := rstarSplit(n.entries, t.cfg.MinEntries)
	sibling := t.newNode(n.level)
	n.entries = group1
	sibling.entries = group2

	if n == t.root {
		newRoot := t.newNode(n.level + 1)
		newRoot.entries = append(newRoot.entries,
			Entry{Rect: t.nodeMBR(n), child: n},
			Entry{Rect: t.nodeMBR(sibling), child: sibling})
		t.root = newRoot
		t.height++
		return
	}
	parent := ancestors[len(ancestors)-1]
	for j := range parent.entries {
		if parent.entries[j].child == n {
			parent.entries[j].Rect = t.nodeMBR(n)
			break
		}
	}
	parent.entries = append(parent.entries,
		Entry{Rect: t.nodeMBR(sibling), child: sibling})
	// The parent may now overflow; the caller's loop handles it.
}

// rstarSplit partitions entries into two groups following the R*-tree
// split: pick the axis with minimal margin sum over all distributions,
// then the distribution with minimal overlap (ties: minimal total area).
func rstarSplit(entries []Entry, minEntries int) (g1, g2 []Entry) {
	m := minEntries
	dim := entries[0].Rect.Dim()
	bestAxis, bestByLower := -1, false
	bestMargin := math.Inf(1)

	sorted := make([]Entry, len(entries))
	for axis := 0; axis < dim; axis++ {
		for _, byLower := range []bool{true, false} {
			copy(sorted, entries)
			sortEntries(sorted, axis, byLower)
			margin := 0.0
			forEachDistribution(len(sorted), m, func(k int) {
				margin += mbrOf(sorted[:k]).Margin() + mbrOf(sorted[k:]).Margin()
			})
			if margin < bestMargin {
				bestMargin, bestAxis, bestByLower = margin, axis, byLower
			}
		}
	}

	copy(sorted, entries)
	sortEntries(sorted, bestAxis, bestByLower)
	bestK, bestOverlap, bestArea := -1, math.Inf(1), math.Inf(1)
	forEachDistribution(len(sorted), m, func(k int) {
		r1, r2 := mbrOf(sorted[:k]), mbrOf(sorted[k:])
		overlap := r1.OverlapArea(r2)
		area := r1.Area() + r2.Area()
		if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
			bestK, bestOverlap, bestArea = k, overlap, area
		}
	})

	g1 = make([]Entry, bestK)
	copy(g1, sorted[:bestK])
	g2 = make([]Entry, len(sorted)-bestK)
	copy(g2, sorted[bestK:])
	return g1, g2
}

func sortEntries(es []Entry, axis int, byLower bool) {
	cmp := func(x, y float64) int {
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	}
	slices.SortStableFunc(es, func(a, b Entry) int {
		if byLower {
			if c := cmp(a.Rect.Lo[axis], b.Rect.Lo[axis]); c != 0 {
				return c
			}
			return cmp(a.Rect.Hi[axis], b.Rect.Hi[axis])
		}
		if c := cmp(a.Rect.Hi[axis], b.Rect.Hi[axis]); c != 0 {
			return c
		}
		return cmp(a.Rect.Lo[axis], b.Rect.Lo[axis])
	})
}

// forEachDistribution invokes fn with every legal first-group size k for a
// node of n entries and minimum fill m: k = m .. n-m.
func forEachDistribution(n, m int, fn func(k int)) {
	for k := m; k <= n-m; k++ {
		fn(k)
	}
}

func mbrOf(es []Entry) geom.Rect {
	r := es[0].Rect
	for _, e := range es[1:] {
		r = r.Union(e.Rect)
	}
	return r
}

// Delete removes one occurrence of the point with the given id. It returns
// false when no matching entry exists. Underflowing nodes are dissolved and
// their entries reinserted at the same level (condense-tree).
func (t *Tree) Delete(p geom.Point, id int64) bool {
	if t.size == 0 || len(p) != t.cfg.Dim || t.root == nil {
		return false
	}
	var path []*node
	leaf, idx := t.findLeaf(t.root, p, id, &path)
	if leaf == nil {
		return false
	}
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	t.muts++

	// Condense: dissolve underflowing nodes bottom-up, collecting orphans.
	type orphan struct {
		entries []Entry
		level   int
	}
	var orphans []orphan
	for i := len(path) - 1; i >= 1; i-- {
		n := path[i]
		parent := path[i-1]
		if len(n.entries) < t.cfg.MinEntries {
			for j := range parent.entries {
				if parent.entries[j].child == n {
					parent.entries = append(parent.entries[:j], parent.entries[j+1:]...)
					break
				}
			}
			if len(n.entries) > 0 {
				orphans = append(orphans, orphan{n.entries, n.level})
			}
		} else {
			for j := range parent.entries {
				if parent.entries[j].child == n {
					parent.entries[j].Rect = t.nodeMBR(n)
					break
				}
			}
		}
	}
	// Shrink the root while it is an internal node with a single child.
	for t.root.level > 0 && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.height--
	}
	if t.root.level > 0 && len(t.root.entries) == 0 {
		// All children dissolved; restart from an empty leaf root.
		t.root = t.newNode(0)
		t.height = 1
	}
	// Reinsert orphaned entries at their original levels, lowest first so
	// the tree is tall enough when higher-level entries return.
	slices.SortFunc(orphans, func(a, b orphan) int { return a.level - b.level })
	for _, o := range orphans {
		for _, e := range o.entries {
			if o.level >= t.height {
				// The tree shrank below the orphan's level; splice the
				// orphan subtree back by reinserting its data points.
				t.reinsertSubtree(e)
				continue
			}
			t.insertEntry(e, o.level, make(map[int]bool))
		}
	}
	return true
}

// reinsertSubtree reinserts every data point under e (used when the tree
// shrank below an orphan's level).
func (t *Tree) reinsertSubtree(e Entry) {
	if e.child == nil {
		t.insertEntry(e, 0, make(map[int]bool))
		return
	}
	for _, c := range e.child.entries {
		t.reinsertSubtree(c)
	}
}

// findLeaf locates the leaf and entry index holding (p, id), appending the
// root-to-leaf path to *path. Returns (nil, -1) when absent.
func (t *Tree) findLeaf(n *node, p geom.Point, id int64, path *[]*node) (*node, int) {
	*path = append(*path, n)
	if n.level == 0 {
		for i, e := range n.entries {
			if e.ID == id && e.Point.Equal(p) {
				return n, i
			}
		}
		*path = (*path)[:len(*path)-1]
		return nil, -1
	}
	for _, e := range n.entries {
		if e.Rect.ContainsPoint(p) {
			if leaf, i := t.findLeaf(e.child, p, id, path); leaf != nil {
				return leaf, i
			}
		}
	}
	*path = (*path)[:len(*path)-1]
	return nil, -1
}
