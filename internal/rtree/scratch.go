package rtree

import "gnn/internal/pq"

// This file holds the pooled per-query scratch of depth-first traversals.
// Query kernels are (near-)zero-allocation in steady state: every slice
// and heap a traversal needs is drawn from a sync.Pool-backed arena on
// entry and released on completion, and per-node candidate ordering uses
// an inlined insertion sort over a reusable buffer instead of a freshly
// allocated slice and a `sort.Slice` closure. The GNN kernels in
// internal/core share these types through their own pooled ExecContext.

// Cand pairs an entry with its traversal sort key D, plus a secondary
// tie-break key D2. Keys may be squared distances (squaring is monotone,
// so ordering is unaffected and no heap key pays a Sqrt); kernels whose
// primary key has a large tie mass (MBM's heuristic-2 key is zero for
// every entry overlapping the query MBR) order ties most-promising-first
// via D2, while the others leave D2 zero.
type Cand struct {
	E  Entry
	D  float64
	D2 float64
}

// SortCands orders candidates by ascending (D, D2). Nodes hold at most
// MaxEntries (50 in the paper's setup) entries, where a branch-light
// insertion sort beats the reflection/closure machinery of the generic
// sorts and allocates nothing.
func SortCands(c []Cand) {
	for i := 1; i < len(c); i++ {
		x := c[i]
		j := i - 1
		for j >= 0 && (c[j].D > x.D || (c[j].D == x.D && c[j].D2 > x.D2)) {
			c[j+1] = c[j]
			j--
		}
		c[j+1] = x
	}
}

// PCand is the packed-layout candidate: an int32 PackedRef (leaf slot or
// ^routing slot) with the same sort keys as Cand. Replacing the copied
// Entry with a 4-byte ref keeps per-depth candidate buffers within a few
// cache lines per node.
type PCand struct {
	Ref PackedRef
	D   float64
	D2  float64
}

// SortPCands orders packed candidates by ascending (D, D2) with the same
// insertion sort as SortCands, so both layouts produce identical
// permutations for identical keys.
func SortPCands(c []PCand) {
	for i := 1; i < len(c); i++ {
		x := c[i]
		j := i - 1
		for j >= 0 && (c[j].D > x.D || (c[j].D == x.D && c[j].D2 > x.D2)) {
			c[j+1] = c[j]
			j--
		}
		c[j+1] = x
	}
}

// CandStack hands out one candidate buffer per recursion depth: the
// parent is still iterating its sorted buffer while the child sorts its
// own, so depth-first traversals need a buffer per level, not one per
// query. Tree height is logarithmic (≤ 5 for the paper's datasets), so
// the stack stays tiny and is reused across queries via the scratch
// pools.
type CandStack struct {
	levels [][]Cand
}

// Level returns the (emptied) buffer of the given recursion depth,
// growing the stack on first descent.
func (s *CandStack) Level(depth int) *[]Cand {
	for len(s.levels) <= depth {
		s.levels = append(s.levels, nil)
	}
	s.levels[depth] = s.levels[depth][:0]
	return &s.levels[depth]
}

// Reset zeroes retained entries so pooled buffers don't pin points or
// subtrees of a finished query.
func (s *CandStack) Reset() {
	for i := range s.levels {
		clear(s.levels[i][:cap(s.levels[i])])
		s.levels[i] = s.levels[i][:0]
	}
}

// PCandStack is CandStack for packed candidates. PCands hold no pointers,
// so Reset only rewinds lengths.
type PCandStack struct {
	levels [][]PCand
}

// Level returns the (emptied) buffer of the given recursion depth.
func (s *PCandStack) Level(depth int) *[]PCand {
	for len(s.levels) <= depth {
		s.levels = append(s.levels, nil)
	}
	s.levels[depth] = s.levels[depth][:0]
	return &s.levels[depth]
}

// Reset rewinds all per-depth buffers.
func (s *PCandStack) Reset() {
	for i := range s.levels {
		s.levels[i] = s.levels[i][:0]
	}
}

// nnScratch is the per-query scratch of NearestDF: the per-depth
// candidate buffers (one stack per layout) and the bounded result heap,
// plus the fused-kernel distance buffer of the packed path.
type nnScratch struct {
	cands  CandStack
	pcands PCandStack
	dbuf   []float64
	best   pq.BoundedMax[Neighbor]
}

var nnScratchPool = pq.NewPool(func() *nnScratch { return &nnScratch{} })

// release resets the scratch and returns it to the pool.
func (s *nnScratch) release() {
	s.cands.Reset()
	s.pcands.Reset()
	if s.best.Len() > 0 {
		s.best.Reset(1) // zeroes retained payloads; next user re-Resets with its own k
	}
	nnScratchPool.Put(s)
}
