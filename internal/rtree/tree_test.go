package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"gnn/internal/geom"
	"gnn/internal/pagestore"
)

func mustTree(t *testing.T, cfg Config) *Tree {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func randPoints(rng *rand.Rand, n int, span float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64() * span, rng.Float64() * span}
	}
	return pts
}

func insertAll(t *testing.T, tr *Tree, pts []geom.Point) {
	t.Helper()
	for i, p := range pts {
		if err := tr.Insert(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Dim: -1},
		{MaxEntries: 3},
		{MaxEntries: 10, MinEntries: 6}, // > M/2
		{ReinsertFraction: 0.6},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	tr := mustTree(t, Config{})
	if tr.cfg.MaxEntries != DefaultMaxEntries || tr.cfg.MinEntries != 20 || tr.Dim() != 2 {
		t.Errorf("defaults = M%d m%d d%d", tr.cfg.MaxEntries, tr.cfg.MinEntries, tr.Dim())
	}
}

func TestInsertDimensionMismatch(t *testing.T) {
	tr := mustTree(t, Config{Dim: 2})
	if err := tr.Insert(geom.Point{1, 2, 3}, 0); err == nil {
		t.Fatal("3-D point accepted by 2-D tree")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := mustTree(t, Config{})
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("Len/Height = %d/%d", tr.Len(), tr.Height())
	}
	if _, ok := tr.Bounds(); ok {
		t.Fatal("empty tree has bounds")
	}
	if nn := tr.NearestBF(geom.Point{0, 0}, 3); nn != nil {
		t.Fatal("NN on empty tree returned results")
	}
	if nn := tr.NearestDF(geom.Point{0, 0}, 3); nn != nil {
		t.Fatal("DF NN on empty tree returned results")
	}
	tr.Search(geom.NewRect(geom.Point{0, 0}, geom.Point{1, 1}), func(geom.Point, int64) bool {
		t.Fatal("search on empty tree yielded a point")
		return true
	})
	if tr.Delete(geom.Point{0, 0}, 0) {
		t.Fatal("Delete on empty tree returned true")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertGrowAndInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := mustTree(t, Config{MaxEntries: 8})
	pts := randPoints(rng, 2000, 1000)
	for i, p := range pts {
		if err := tr.Insert(p, int64(i)); err != nil {
			t.Fatal(err)
		}
		if i%251 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if tr.Len() != len(pts) {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.Height() < 3 {
		t.Fatalf("Height = %d, expected a deeper tree", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every inserted point must be findable by an exact-range search.
	for i, p := range pts[:100] {
		found := false
		tr.Search(geom.RectFromPoint(p), func(q geom.Point, id int64) bool {
			if id == int64(i) && q.Equal(p) {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("point %d lost", i)
		}
	}
}

func TestInsertWithoutReinsert(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := mustTree(t, Config{MaxEntries: 8, ReinsertFraction: -1})
	pts := randPoints(rng, 1000, 100)
	insertAll(t, tr, pts)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestDuplicatePoints(t *testing.T) {
	tr := mustTree(t, Config{MaxEntries: 4})
	p := geom.Point{5, 5}
	for i := 0; i < 50; i++ {
		if err := tr.Insert(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	n := 0
	tr.Search(geom.RectFromPoint(p), func(geom.Point, int64) bool { n++; return true })
	if n != 50 {
		t.Fatalf("found %d duplicates, want 50", n)
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPoints(rng, 1500, 1000)
	tr := mustTree(t, Config{MaxEntries: 10})
	insertAll(t, tr, pts)
	for trial := 0; trial < 50; trial++ {
		r := geom.NewRect(
			geom.Point{rng.Float64() * 1000, rng.Float64() * 1000},
			geom.Point{rng.Float64() * 1000, rng.Float64() * 1000})
		want := map[int64]bool{}
		for i, p := range pts {
			if r.ContainsPoint(p) {
				want[int64(i)] = true
			}
		}
		got := map[int64]bool{}
		tr.Search(r, func(_ geom.Point, id int64) bool { got[id] = true; return true })
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d: missing id %d", trial, id)
			}
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randPoints(rng, 500, 100)
	tr := mustTree(t, Config{MaxEntries: 8})
	insertAll(t, tr, pts)
	count := 0
	tr.Search(geom.NewRect(geom.Point{0, 0}, geom.Point{100, 100}),
		func(geom.Point, int64) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop visited %d points", count)
	}
}

func bruteKNN(pts []geom.Point, q geom.Point, k int) []float64 {
	ds := make([]float64, len(pts))
	for i, p := range pts {
		ds[i] = geom.Dist(q, p)
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randPoints(rng, 1200, 1000)
	tr := mustTree(t, Config{MaxEntries: 10})
	insertAll(t, tr, pts)
	for trial := 0; trial < 60; trial++ {
		q := geom.Point{rng.Float64() * 1200, rng.Float64() * 1200}
		k := 1 + rng.Intn(20)
		want := bruteKNN(pts, q, k)
		for _, algo := range []struct {
			name string
			run  func(geom.Point, int) []Neighbor
		}{{"DF", tr.NearestDF}, {"BF", tr.NearestBF}} {
			got := algo.run(q, k)
			if len(got) != len(want) {
				t.Fatalf("%s trial %d: %d results, want %d", algo.name, trial, len(got), len(want))
			}
			for i := range got {
				if !almostEq(got[i].Dist, want[i]) {
					t.Fatalf("%s trial %d: rank %d dist %v, want %v",
						algo.name, trial, i, got[i].Dist, want[i])
				}
			}
		}
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestNNIteratorFullOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := randPoints(rng, 700, 500)
	tr := mustTree(t, Config{MaxEntries: 8})
	insertAll(t, tr, pts)
	q := geom.Point{250, 250}
	want := bruteKNN(pts, q, len(pts))
	it := tr.NewNNIterator(q)
	for i := 0; ; i++ {
		nb, ok := it.Next()
		if !ok {
			if i != len(pts) {
				t.Fatalf("iterator stopped after %d of %d", i, len(pts))
			}
			break
		}
		if !almostEq(nb.Dist, want[i]) {
			t.Fatalf("rank %d: dist %v, want %v", i, nb.Dist, want[i])
		}
		if lb, ok := it.PeekDist(); ok && lb < nb.Dist-1e-9 {
			t.Fatalf("PeekDist %v below last yielded %v", lb, nb.Dist)
		}
	}
}

func TestBFOptimalVsDF(t *testing.T) {
	// BF must access no more nodes than DF (it is I/O optimal, §2).
	rng := rand.New(rand.NewSource(7))
	pts := randPoints(rng, 5000, 1000)
	cDF, cBF := pagestore.NewAccountant(0), pagestore.NewAccountant(0)
	trDF := mustTree(t, Config{MaxEntries: 20, Accountant: cDF})
	trBF := mustTree(t, Config{MaxEntries: 20, Accountant: cBF})
	insertAll(t, trDF, pts)
	insertAll(t, trBF, pts)
	var naDF, naBF int64
	for trial := 0; trial < 30; trial++ {
		q := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
		cDF.Reset()
		cBF.Reset()
		trDF.NearestDF(q, 1)
		trBF.NearestBF(q, 1)
		naDF += cDF.Physical()
		naBF += cBF.Physical()
	}
	if naBF > naDF {
		t.Fatalf("BF accessed %d nodes, DF %d — BF should not exceed DF", naBF, naDF)
	}
}

func TestDeleteAndCondense(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := randPoints(rng, 800, 300)
	tr := mustTree(t, Config{MaxEntries: 8})
	insertAll(t, tr, pts)

	perm := rng.Perm(len(pts))
	for i, idx := range perm {
		if !tr.Delete(pts[idx], int64(idx)) {
			t.Fatalf("Delete %d failed", idx)
		}
		if tr.Len() != len(pts)-i-1 {
			t.Fatalf("Len = %d after %d deletes", tr.Len(), i+1)
		}
		if i%97 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after delete %d: %v", i, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteNonexistent(t *testing.T) {
	tr := mustTree(t, Config{MaxEntries: 4})
	tr.Insert(geom.Point{1, 1}, 1)
	if tr.Delete(geom.Point{2, 2}, 1) {
		t.Fatal("deleted absent point")
	}
	if tr.Delete(geom.Point{1, 1}, 99) {
		t.Fatal("deleted wrong id")
	}
	if !tr.Delete(geom.Point{1, 1}, 1) {
		t.Fatal("failed to delete existing point")
	}
}

func TestMixedInsertDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := mustTree(t, Config{MaxEntries: 6})
	type rec struct {
		p  geom.Point
		id int64
	}
	var live []rec
	nextID := int64(0)
	for step := 0; step < 4000; step++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			p := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
			if err := tr.Insert(p, nextID); err != nil {
				t.Fatal(err)
			}
			live = append(live, rec{p, nextID})
			nextID++
		} else {
			i := rng.Intn(len(live))
			if !tr.Delete(live[i].p, live[i].id) {
				t.Fatalf("step %d: delete failed", step)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if step%499 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if tr.Len() != len(live) {
				t.Fatalf("step %d: Len %d vs %d live", step, tr.Len(), len(live))
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Survivors must all be findable.
	for _, r := range live {
		found := false
		tr.Search(geom.RectFromPoint(r.p), func(_ geom.Point, id int64) bool {
			if id == r.id {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("live point %d lost", r.id)
		}
	}
}

func TestNodeAccessCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	c := pagestore.NewAccountant(0)
	tr := mustTree(t, Config{MaxEntries: 8, Accountant: c})
	insertAll(t, tr, randPoints(rng, 500, 100))
	c.Reset()
	var tk pagestore.CostTracker
	tr.Reader(&tk).NearestBF(geom.Point{50, 50}, 1)
	if c.Physical() < int64(tr.Height()) {
		t.Fatalf("NN accessed %d nodes, below tree height %d", c.Physical(), tr.Height())
	}
	if tk.Physical != c.Physical() {
		t.Fatalf("per-query tracker %d != aggregate %d", tk.Physical, c.Physical())
	}
	got := c.Physical()
	c.Reset()
	tr.NearestBF(geom.Point{50, 50}, 1)
	if c.Physical() != got {
		t.Fatalf("repeat query cost changed: %d vs %d", c.Physical(), got)
	}
}

func TestLRUBufferReducesPhysicalAccesses(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := pagestore.NewAccountant(1000)
	tr := mustTree(t, Config{MaxEntries: 8, Accountant: c})
	insertAll(t, tr, randPoints(rng, 500, 100))
	c.ResetAll()
	tr.NearestBF(geom.Point{50, 50}, 1)
	cold := c.Physical()
	c.Reset() // keep buffer warm
	tr.NearestBF(geom.Point{50, 50}, 1)
	if c.Physical() != 0 {
		t.Fatalf("warm repeat query paid %d physical reads", c.Physical())
	}
	if cold == 0 {
		t.Fatal("cold query free")
	}
}

func TestChildPanicsOnLeafEntry(t *testing.T) {
	tr := mustTree(t, Config{})
	tr.Insert(geom.Point{1, 1}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Child on leaf entry did not panic")
		}
	}()
	rd := tr.Reader(nil)
	rd.Child(rd.Root().Entries()[0])
}

func TestStats(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tr := mustTree(t, Config{MaxEntries: 10})
	insertAll(t, tr, randPoints(rng, 1000, 100))
	s := tr.ComputeStats()
	if s.Size != 1000 || s.Height != tr.Height() || s.Leaves == 0 || s.Nodes < s.Leaves {
		t.Fatalf("stats = %+v", s)
	}
	if s.AvgFill <= 0.3 || s.AvgFill > 1.0 {
		t.Fatalf("implausible fill %v", s.AvgFill)
	}
}

func TestHigherDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := mustTree(t, Config{Dim: 4, MaxEntries: 8})
	pts := make([]geom.Point, 400)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
	}
	insertAll(t, tr, pts)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	q := geom.Point{0.5, 0.5, 0.5, 0.5}
	want := bruteKNN(pts, q, 5)
	got := tr.NearestBF(q, 5)
	for i := range got {
		if !almostEq(got[i].Dist, want[i]) {
			t.Fatalf("4-D NN rank %d: %v vs %v", i, got[i].Dist, want[i])
		}
	}
}
