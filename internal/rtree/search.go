package rtree

import (
	"math"

	"gnn/internal/geom"
	"gnn/internal/pq"
)

// Neighbor is a data point returned by a proximity query.
type Neighbor struct {
	Point geom.Point
	ID    int64
	Dist  float64
}

// Search invokes fn for every indexed point inside r (boundaries
// inclusive) in a fresh aggregate-only execution context. Use
// Reader.Search to charge a per-query tracker.
func (t *Tree) Search(r geom.Rect, fn func(p geom.Point, id int64) bool) {
	t.Reader(nil).Search(r, fn)
}

// Search invokes fn for every indexed point inside r (boundaries
// inclusive). Traversal stops early when fn returns false. Visited nodes
// are charged to the reader's context.
func (rd Reader) Search(r geom.Rect, fn func(p geom.Point, id int64) bool) {
	if rd.t.size == 0 {
		return
	}
	if rd.p != nil {
		rd.searchPacked(rd.PackedRoot(), r, fn)
		return
	}
	rd.searchNode(rd.Root(), r, fn)
}

func (rd Reader) searchNode(nd Node, r geom.Rect, fn func(geom.Point, int64) bool) bool {
	for _, e := range nd.Entries() {
		if !e.Rect.Intersects(r) {
			continue
		}
		if e.IsLeafEntry() {
			if r.ContainsPoint(e.Point) && !fn(e.Point, e.ID) {
				return false
			}
		} else if !rd.searchNode(rd.Child(e), r, fn) {
			return false
		}
	}
	return true
}

// All invokes fn for every indexed point without charging node accesses
// (a bookkeeping scan, not a simulated disk traversal).
func (t *Tree) All(fn func(p geom.Point, id int64) bool) {
	if t.size == 0 {
		return
	}
	if t.root == nil {
		t.shellOf.All(fn) // same depth-first slot order as the dynamic scan
		return
	}
	t.allNode(t.root, fn)
}

func (t *Tree) allNode(n *node, fn func(geom.Point, int64) bool) bool {
	for _, e := range n.entries {
		if e.child == nil {
			if !fn(e.Point, e.ID) {
				return false
			}
		} else if !t.allNode(e.child, fn) {
			return false
		}
	}
	return true
}

// NearestDF answers a depth-first k-NN query in a fresh aggregate-only
// execution context. Use Reader.NearestDF to charge a per-query tracker.
func (t *Tree) NearestDF(q geom.Point, k int) []Neighbor {
	return t.Reader(nil).NearestDF(q, k)
}

// NearestDF returns the k nearest neighbors of q using the depth-first
// branch-and-bound algorithm of [RKV95]: entries of each node are visited
// in ascending mindist order and subtrees farther than the current k-th
// best are pruned. Results are sorted by ascending distance.
//
// The traversal works entirely in squared distances (comparisons are
// order-preserving, so pruning is unaffected) and draws its candidate
// buffers and result heap from a pooled scratch; only the returned slice
// is allocated in steady state, with each result paying one Sqrt.
func (rd Reader) NearestDF(q geom.Point, k int) []Neighbor {
	if rd.t.size == 0 || k < 1 {
		return nil
	}
	sc := nnScratchPool.Get()
	sc.best.Reset(k)
	if rd.p != nil {
		rd.nearestDFPacked(rd.PackedRoot(), q, sc, 0)
	} else {
		rd.nearestDF(rd.Root(), q, sc, 0)
	}
	out := neighborsFromSq(&sc.best)
	sc.release()
	return out
}

func (rd Reader) nearestDF(nd Node, q geom.Point, sc *nnScratch, depth int) {
	buf := sc.cands.Level(depth)
	cands := *buf
	for _, e := range nd.Entries() {
		var d float64
		if e.IsLeafEntry() {
			d = geom.DistSq(q, e.Point)
		} else {
			d = geom.MinDistSqPointRect(q, e.Rect)
		}
		cands = append(cands, Cand{E: e, D: d})
	}
	SortCands(cands)
	*buf = cands
	for i := range cands {
		c := cands[i]
		if bd, ok := sc.best.Kth(); ok && c.D >= bd {
			return // every remaining candidate is at least this far
		}
		if c.E.IsLeafEntry() {
			sc.best.Push(Neighbor{Point: c.E.Point, ID: c.E.ID}, c.D)
		} else {
			rd.nearestDF(rd.Child(c.E), q, sc, depth+1)
		}
	}
}

// NearestBF answers a best-first k-NN query in a fresh aggregate-only
// execution context. Use Reader.NearestBF to charge a per-query tracker.
func (t *Tree) NearestBF(q geom.Point, k int) []Neighbor {
	return t.Reader(nil).NearestBF(q, k)
}

// NearestBF returns the k nearest neighbors of q using the I/O-optimal
// best-first algorithm of [HS99].
func (rd Reader) NearestBF(q geom.Point, k int) []Neighbor {
	if rd.t.size == 0 || k < 1 {
		return nil
	}
	it := rd.NewNNIterator(q)
	defer it.Close()
	out := make([]Neighbor, 0, k)
	for len(out) < k {
		nb, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, nb)
	}
	return out
}

// neighborsFromSq extracts the heap's neighbors in ascending order,
// converting the squared-priority keys into the Euclidean distances the
// API reports. Dist(p,q) is defined as Sqrt(DistSq(p,q)), so the converted
// values are bit-identical to distances computed directly.
func neighborsFromSq(best *pq.BoundedMax[Neighbor]) []Neighbor {
	items := best.Sorted()
	out := make([]Neighbor, len(items))
	for i, it := range items {
		out[i] = it.Value
		out[i].Dist = math.Sqrt(it.Priority)
	}
	return out
}

// NNIterator reports the indexed points in ascending distance from a query
// point, one at a time — the incremental behaviour MQM depends on (§2,
// [HS99]). Each call to Next may visit further tree nodes, charged to the
// iterator's execution context.
//
// Iterators are drawn from a pool: callers that finish with an iterator
// before exhausting it should Close it so its heap is recycled; forgetting
// to Close only costs the reuse, never correctness. The heap is keyed by
// squared distances, with one Sqrt per emitted neighbor.
type NNIterator struct {
	rd     Reader
	q      geom.Point
	heap   pq.Heap[Entry]
	ph     pq.Heap[PackedRef] // packed-layout heap: 4-byte refs, fused keys
	dbuf   []float64          // fused-kernel distance buffer (packed path)
	closed bool
}

var nnIterPool = pq.NewPool(func() *NNIterator { return &NNIterator{} })

// NewNNIterator starts an incremental nearest-neighbor scan around q in a
// fresh aggregate-only execution context.
func (t *Tree) NewNNIterator(q geom.Point) *NNIterator {
	return t.Reader(nil).NewNNIterator(q)
}

// NewNNIterator starts an incremental nearest-neighbor scan around q.
func (rd Reader) NewNNIterator(q geom.Point) *NNIterator {
	it := nnIterPool.Get()
	it.rd, it.q, it.closed = rd, q, false
	it.heap.Reset()
	it.ph.Reset()
	if rd.t.size > 0 {
		if rd.p != nil {
			it.pushNodePacked(rd.PackedRoot())
		} else {
			it.pushNode(rd.Root())
		}
	}
	return it
}

func (it *NNIterator) pushNode(nd Node) {
	for _, e := range nd.Entries() {
		if e.IsLeafEntry() {
			it.heap.Push(e, geom.DistSq(it.q, e.Point))
		} else {
			it.heap.Push(e, geom.MinDistSqPointRect(it.q, e.Rect))
		}
	}
}

// Next returns the next nearest point; ok is false when the data set is
// exhausted or the iterator has been closed.
func (it *NNIterator) Next() (Neighbor, bool) {
	if it.closed {
		return Neighbor{}, false
	}
	if it.rd.p != nil {
		return it.nextPacked()
	}
	for {
		item, ok := it.heap.Pop()
		if !ok {
			return Neighbor{}, false
		}
		if item.Value.IsLeafEntry() {
			return Neighbor{
				Point: item.Value.Point,
				ID:    item.Value.ID,
				Dist:  math.Sqrt(item.Priority),
			}, true
		}
		it.pushNode(it.rd.Child(item.Value))
	}
}

// PeekDist returns the lower bound on the distance of the next neighbor
// without advancing; ok is false when exhausted or closed.
func (it *NNIterator) PeekDist() (float64, bool) {
	if it.closed {
		return 0, false
	}
	var d float64
	var ok bool
	if it.rd.p != nil {
		d, ok = it.ph.MinPriority()
	} else {
		d, ok = it.heap.MinPriority()
	}
	if !ok {
		return 0, false
	}
	return math.Sqrt(d), true
}

// Close releases the iterator's heap to the pool. Call it at most once,
// and do not use the iterator afterwards: once the object is re-leased to
// another query, the closed flag belongs to the new owner, so a stale
// handle's second Close (or Next) would corrupt that query. Holders of a
// possibly-already-closed handle (the public gnn.Iterator wrapper) must
// track their own done state instead of relying on this guard.
func (it *NNIterator) Close() {
	if it == nil || it.closed {
		return
	}
	it.closed = true
	it.rd = Reader{}
	it.q = nil
	it.heap.Reset()
	it.ph.Reset()
	nnIterPool.Put(it)
}
