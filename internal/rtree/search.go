package rtree

import (
	"sort"

	"gnn/internal/geom"
	"gnn/internal/pq"
)

// Neighbor is a data point returned by a proximity query.
type Neighbor struct {
	Point geom.Point
	ID    int64
	Dist  float64
}

// Search invokes fn for every indexed point inside r (boundaries
// inclusive) in a fresh aggregate-only execution context. Use
// Reader.Search to charge a per-query tracker.
func (t *Tree) Search(r geom.Rect, fn func(p geom.Point, id int64) bool) {
	t.Reader(nil).Search(r, fn)
}

// Search invokes fn for every indexed point inside r (boundaries
// inclusive). Traversal stops early when fn returns false. Visited nodes
// are charged to the reader's context.
func (rd Reader) Search(r geom.Rect, fn func(p geom.Point, id int64) bool) {
	if rd.t.size == 0 {
		return
	}
	rd.searchNode(rd.Root(), r, fn)
}

func (rd Reader) searchNode(nd Node, r geom.Rect, fn func(geom.Point, int64) bool) bool {
	for _, e := range nd.Entries() {
		if !e.Rect.Intersects(r) {
			continue
		}
		if e.IsLeafEntry() {
			if r.ContainsPoint(e.Point) && !fn(e.Point, e.ID) {
				return false
			}
		} else if !rd.searchNode(rd.Child(e), r, fn) {
			return false
		}
	}
	return true
}

// All invokes fn for every indexed point without charging node accesses
// (a bookkeeping scan, not a simulated disk traversal).
func (t *Tree) All(fn func(p geom.Point, id int64) bool) {
	if t.size == 0 {
		return
	}
	t.allNode(t.root, fn)
}

func (t *Tree) allNode(n *node, fn func(geom.Point, int64) bool) bool {
	for _, e := range n.entries {
		if e.child == nil {
			if !fn(e.Point, e.ID) {
				return false
			}
		} else if !t.allNode(e.child, fn) {
			return false
		}
	}
	return true
}

// NearestDF answers a depth-first k-NN query in a fresh aggregate-only
// execution context. Use Reader.NearestDF to charge a per-query tracker.
func (t *Tree) NearestDF(q geom.Point, k int) []Neighbor {
	return t.Reader(nil).NearestDF(q, k)
}

// NearestDF returns the k nearest neighbors of q using the depth-first
// branch-and-bound algorithm of [RKV95]: entries of each node are visited
// in ascending mindist order and subtrees farther than the current k-th
// best are pruned. Results are sorted by ascending distance.
func (rd Reader) NearestDF(q geom.Point, k int) []Neighbor {
	if rd.t.size == 0 || k < 1 {
		return nil
	}
	best := pq.NewBoundedMax[Neighbor](k)
	rd.nearestDF(rd.Root(), q, best)
	return neighborsFrom(best)
}

func (rd Reader) nearestDF(nd Node, q geom.Point, best *pq.BoundedMax[Neighbor]) {
	entries := nd.Entries()
	type cand struct {
		e Entry
		d float64
	}
	cands := make([]cand, 0, len(entries))
	for _, e := range entries {
		var d float64
		if e.IsLeafEntry() {
			d = geom.Dist(q, e.Point)
		} else {
			d = geom.MinDistPointRect(q, e.Rect)
		}
		cands = append(cands, cand{e, d})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
	for _, c := range cands {
		if bd, ok := best.Kth(); ok && c.d >= bd {
			return // every remaining candidate is at least this far
		}
		if c.e.IsLeafEntry() {
			best.Push(Neighbor{Point: c.e.Point, ID: c.e.ID, Dist: c.d}, c.d)
		} else {
			rd.nearestDF(rd.Child(c.e), q, best)
		}
	}
}

// NearestBF answers a best-first k-NN query in a fresh aggregate-only
// execution context. Use Reader.NearestBF to charge a per-query tracker.
func (t *Tree) NearestBF(q geom.Point, k int) []Neighbor {
	return t.Reader(nil).NearestBF(q, k)
}

// NearestBF returns the k nearest neighbors of q using the I/O-optimal
// best-first algorithm of [HS99].
func (rd Reader) NearestBF(q geom.Point, k int) []Neighbor {
	if rd.t.size == 0 || k < 1 {
		return nil
	}
	it := rd.NewNNIterator(q)
	out := make([]Neighbor, 0, k)
	for len(out) < k {
		nb, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, nb)
	}
	return out
}

func neighborsFrom(best *pq.BoundedMax[Neighbor]) []Neighbor {
	items := best.Sorted()
	out := make([]Neighbor, len(items))
	for i, it := range items {
		out[i] = it.Value
	}
	return out
}

// NNIterator reports the indexed points in ascending distance from a query
// point, one at a time — the incremental behaviour MQM depends on (§2,
// [HS99]). Each call to Next may visit further tree nodes, charged to the
// iterator's execution context.
type NNIterator struct {
	rd   Reader
	q    geom.Point
	heap *pq.Heap[Entry]
}

// NewNNIterator starts an incremental nearest-neighbor scan around q in a
// fresh aggregate-only execution context.
func (t *Tree) NewNNIterator(q geom.Point) *NNIterator {
	return t.Reader(nil).NewNNIterator(q)
}

// NewNNIterator starts an incremental nearest-neighbor scan around q.
func (rd Reader) NewNNIterator(q geom.Point) *NNIterator {
	it := &NNIterator{rd: rd, q: q, heap: pq.NewHeap[Entry](64)}
	if rd.t.size > 0 {
		it.pushNode(rd.Root())
	}
	return it
}

func (it *NNIterator) pushNode(nd Node) {
	for _, e := range nd.Entries() {
		if e.IsLeafEntry() {
			it.heap.Push(e, geom.Dist(it.q, e.Point))
		} else {
			it.heap.Push(e, geom.MinDistPointRect(it.q, e.Rect))
		}
	}
}

// Next returns the next nearest point; ok is false when the data set is
// exhausted.
func (it *NNIterator) Next() (Neighbor, bool) {
	for {
		item, ok := it.heap.Pop()
		if !ok {
			return Neighbor{}, false
		}
		if item.Value.IsLeafEntry() {
			return Neighbor{Point: item.Value.Point, ID: item.Value.ID, Dist: item.Priority}, true
		}
		it.pushNode(it.rd.Child(item.Value))
	}
}

// PeekDist returns the lower bound on the distance of the next neighbor
// without advancing; ok is false when exhausted.
func (it *NNIterator) PeekDist() (float64, bool) {
	return it.heap.MinPriority()
}
