package rtree

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"gnn/internal/geom"
	"gnn/internal/pagestore"
)

// buildMutatedTree grows a tree through the incremental path (inserts
// plus some deletes), so its structure — unlike a bulk load's — carries
// splits, reinserts and page-id gaps. That is the hardest state a
// snapshot has to reproduce faithfully.
func buildMutatedTree(t *testing.T, n, dim int, seed int64) *Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tree, err := New(Config{Dim: dim, MaxEntries: 8, FirstPage: 1000})
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		p := make(geom.Point, dim)
		for a := range p {
			p[a] = rng.Float64() * 512
		}
		pts = append(pts, p)
		if err := tree.Insert(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n/5; i++ {
		j := rng.Intn(len(pts))
		if !tree.Delete(pts[j], int64(j)) && pts[j] != nil {
			t.Fatalf("delete %d failed", j)
		}
		pts[j] = nil
	}
	return tree
}

func TestPackedSnapshotRoundTrip(t *testing.T) {
	tree := buildMutatedTree(t, 400, 2, 11)
	p := tree.Pack()

	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}

	var loaded Packed
	if n, err := loaded.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ReadFrom: %v", err)
	} else if n != int64(buf.Len()) {
		t.Fatalf("ReadFrom consumed %d of %d bytes", n, buf.Len())
	}

	// The arena must be identical field for field.
	if loaded.root != p.root || loaded.dim != p.dim || loaded.size != p.size || loaded.height != p.height {
		t.Fatalf("scalars differ: %d/%d/%d/%d vs %d/%d/%d/%d",
			loaded.root, loaded.dim, loaded.size, loaded.height, p.root, p.dim, p.size, p.height)
	}
	for name, pair := range map[string][2]any{
		"level": {loaded.level, p.level},
		"page":  {loaded.page, p.page},
		"start": {loaded.start, p.start},
		"end":   {loaded.end, p.end},
		"child": {loaded.child, p.child},
		"rlo":   {loaded.rlo, p.rlo},
		"rhi":   {loaded.rhi, p.rhi},
		"pc":    {loaded.pc, p.pc},
		"pts":   {loaded.pts, p.pts},
		"ids":   {loaded.ids, p.ids},
	} {
		if !reflect.DeepEqual(pair[0], pair[1]) {
			t.Errorf("arena array %s did not round-trip", name)
		}
	}

	// The rebuilt dynamic tree must be a valid R*-tree with the writer's
	// shape and paging.
	lt := loaded.Tree()
	if err := lt.CheckInvariants(); err != nil {
		t.Fatalf("loaded tree invariants: %v", err)
	}
	if lt.Len() != tree.Len() || lt.Height() != tree.Height() || lt.Dim() != tree.Dim() {
		t.Fatalf("tree shape: %d/%d/%d vs %d/%d/%d",
			lt.Len(), lt.Height(), lt.Dim(), tree.Len(), tree.Height(), tree.Dim())
	}
	if lt.cfg.MaxEntries != tree.cfg.MaxEntries || lt.cfg.MinEntries != tree.cfg.MinEntries {
		t.Fatalf("capacity: %d/%d vs %d/%d", lt.cfg.MinEntries, lt.cfg.MaxEntries, tree.cfg.MinEntries, tree.cfg.MaxEntries)
	}
	if lt.cfg.FirstPage != tree.cfg.FirstPage || lt.nextPage < tree.nextPage {
		t.Fatalf("pages: first %d next %d vs first %d next %d",
			lt.cfg.FirstPage, lt.nextPage, tree.cfg.FirstPage, tree.nextPage)
	}
	wb, ok1 := tree.Bounds()
	lb, ok2 := lt.Bounds()
	if ok1 != ok2 || !wb.Equal(lb) {
		t.Fatalf("bounds: %v vs %v", lb, wb)
	}
	if !loaded.Valid(lt) {
		t.Fatal("loaded snapshot not valid for its own tree")
	}

	// Queries on both layouts of the loaded index must match the writer's
	// results AND accesses exactly.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 30; i++ {
		q := geom.Point{rng.Float64() * 512, rng.Float64() * 512}
		var wtk, ptk, dtk pagestore.CostTracker
		want := tree.Reader(&wtk).NearestBF(q, 5)
		gotP := ReaderOver(lt, &loaded, &ptk).NearestBF(q, 5)
		gotD := lt.Reader(&dtk).NearestBF(q, 5)
		if !reflect.DeepEqual(want, gotP) || !reflect.DeepEqual(want, gotD) {
			t.Fatalf("query %d: results differ", i)
		}
		if wtk != ptk || wtk != dtk {
			t.Fatalf("query %d: cost %+v (writer) vs %+v (packed) vs %+v (dynamic)", i, wtk, ptk, dtk)
		}
	}

	// Round-trip is canonical: writing the loaded arena reproduces the
	// exact bytes.
	var again bytes.Buffer
	if _, err := loaded.WriteTo(&again); err != nil {
		t.Fatalf("re-write: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("snapshot bytes are not canonical across a load/save cycle")
	}
}

// TestLoadedTreeMutable locks the post-load mutation contract: Insert
// invalidates the adopted snapshot, queries fall back to the dynamic
// nodes, and Pack restores packed serving.
func TestLoadedTreeMutable(t *testing.T) {
	tree := buildMutatedTree(t, 150, 2, 5)
	var buf bytes.Buffer
	if _, err := tree.Pack().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var loaded Packed
	if _, err := loaded.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	lt := loaded.Tree()
	for i := 0; i < 100; i++ {
		p := geom.Point{float64(i) * 3.7, float64(i) * 1.3}
		if err := lt.Insert(p, int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if loaded.Valid(lt) {
		t.Fatal("snapshot still valid after Insert")
	}
	if err := lt.CheckInvariants(); err != nil {
		t.Fatalf("invariants after post-load inserts: %v", err)
	}
	if !lt.Delete(geom.Point{3.7, 1.3}, 1001) {
		t.Fatal("delete of inserted point failed")
	}
	p2 := lt.Pack()
	if !p2.Valid(lt) {
		t.Fatal("re-pack after mutations not valid")
	}
}
