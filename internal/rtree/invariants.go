package rtree

import (
	"fmt"

	"gnn/internal/geom"
)

// CheckInvariants validates the structural invariants of the tree and
// returns the first violation found, or nil. It is exported for tests and
// diagnostic tooling; it does not charge node accesses.
//
// Checked invariants:
//  1. every node except the root holds between MinEntries and MaxEntries
//     entries; the root holds at most MaxEntries (and, unless it is a leaf,
//     at least 2);
//  2. each routing rectangle equals the exact MBR of its child's entries;
//  3. all leaves sit at level 0 and node levels decrease by 1 per step;
//  4. the recorded size matches the number of data entries;
//  5. the recorded height matches the root's level + 1;
//  6. every data point lies inside all its ancestors' rectangles.
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		if t.shellOf != nil {
			// Borrowed-arena shell: no dynamic nodes exist. Prepare runs
			// the arena's full checksum and structural validation, which
			// subsumes the node-level checks below.
			return t.shellOf.Prepare()
		}
		return fmt.Errorf("rtree: nil root")
	}
	if t.height != t.root.level+1 {
		return fmt.Errorf("rtree: height %d but root level %d", t.height, t.root.level)
	}
	count, err := t.checkNode(t.root, true)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: size %d but %d data entries found", t.size, count)
	}
	return nil
}

func (t *Tree) checkNode(n *node, isRoot bool) (int, error) {
	if len(n.entries) > t.cfg.MaxEntries {
		return 0, fmt.Errorf("rtree: node %d overflows with %d entries", n.page, len(n.entries))
	}
	if isRoot {
		if n.level > 0 && len(n.entries) < 2 {
			return 0, fmt.Errorf("rtree: internal root with %d entries", len(n.entries))
		}
	} else if len(n.entries) < t.cfg.MinEntries {
		return 0, fmt.Errorf("rtree: node %d underflows with %d entries (min %d)",
			n.page, len(n.entries), t.cfg.MinEntries)
	}
	count := 0
	for i, e := range n.entries {
		if n.level == 0 {
			if !e.IsLeafEntry() {
				return 0, fmt.Errorf("rtree: routing entry %d in leaf %d", i, n.page)
			}
			if !e.Rect.Equal(geom.RectFromPoint(e.Point)) {
				return 0, fmt.Errorf("rtree: leaf entry %d rect does not match point", i)
			}
			count++
			continue
		}
		if e.IsLeafEntry() {
			return 0, fmt.Errorf("rtree: data entry %d in internal node %d", i, n.page)
		}
		if e.child.level != n.level-1 {
			return 0, fmt.Errorf("rtree: node %d at level %d has child at level %d",
				n.page, n.level, e.child.level)
		}
		if len(e.child.entries) == 0 {
			return 0, fmt.Errorf("rtree: empty child node %d", e.child.page)
		}
		if want := t.nodeMBR(e.child); !e.Rect.Equal(want) {
			return 0, fmt.Errorf("rtree: routing rect %v of node %d != child MBR %v",
				e.Rect, n.page, want)
		}
		c, err := t.checkNode(e.child, false)
		if err != nil {
			return 0, err
		}
		count += c
	}
	return count, nil
}

// Stats summarises the tree shape for diagnostics and EXPERIMENTS.md.
type Stats struct {
	Size       int
	Height     int
	Nodes      int
	Leaves     int
	AvgFill    float64 // mean entries per node / MaxEntries
	LeafArea   float64 // total area of leaf MBRs (overlap indicator)
	MaxEntries int
}

// ComputeStats walks the tree (without charging accesses) and returns
// shape statistics.
func (t *Tree) ComputeStats() Stats {
	s := Stats{Size: t.size, Height: t.height, MaxEntries: t.cfg.MaxEntries}
	var fillSum float64
	var walk func(n *node)
	walk = func(n *node) {
		s.Nodes++
		fillSum += float64(len(n.entries))
		if n.level == 0 {
			s.Leaves++
			if len(n.entries) > 0 {
				s.LeafArea += t.nodeMBR(n).Area()
			}
			return
		}
		for _, e := range n.entries {
			walk(e.child)
		}
	}
	walk(t.root)
	if s.Nodes > 0 {
		s.AvgFill = fillSum / float64(s.Nodes) / float64(t.cfg.MaxEntries)
	}
	return s
}
