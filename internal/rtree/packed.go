package rtree

import (
	"math"
	"sync"

	"gnn/internal/geom"
	"gnn/internal/pagestore"
)

// Packed is an immutable, cache-packed snapshot of a Tree for query-time
// use: every node lives in one flat arena indexed by int32 node ids, child
// links are indices instead of pointers, and entry geometry is stored in
// structure-of-arrays form — per-axis coordinate slices — so the per-node
// candidate loops of the traversals become streaming passes over
// contiguous float64 arrays (see the fused kernels in internal/geom).
//
// Two separate slot spaces hold the entries, both in the tree's
// depth-first preorder:
//
//   - routing slots (internal-node entries): per-axis rectangle corners
//     rlo/rhi plus the child node id;
//   - leaf slots (data entries): per-axis point coordinates pc, the
//     original geom.Point (shared with the source tree, so emitted results
//     are bit-identical) and the caller's id.
//
// Node i owns the contiguous slot range [start[i], end[i]) of whichever
// space its level selects. Page ids are preserved from the source tree and
// every packed traversal charges the same accountant, so per-query
// CostTracker and aggregate node-access accounting is bit-identical to the
// dynamic layout.
//
// A Packed is valid only for the exact tree state it was built from:
// Insert and Delete bump the tree's mutation counter, after which Valid
// reports false and ReaderOver silently falls back to the dynamic nodes.
// Build a fresh snapshot with Pack after mutating (under the same
// no-concurrent-readers contract as the mutation itself).
type Packed struct {
	src    *Tree
	muts   uint64
	dim    int
	size   int
	height int
	acct   *pagestore.Accountant

	root int32

	// Per-node arrays, indexed by node id (depth-first preorder).
	level []int32
	page  []pagestore.PageID
	start []int32
	end   []int32

	// Routing-slot arrays (internal-node entries).
	child    []int32
	rlo, rhi [][]float64 // rlo[axis][slot]

	// Leaf-slot arrays (data entries).
	pc  [][]float64 // pc[axis][slot]
	pts []geom.Point
	ids []int64

	// prep, when non-nil, holds the deferred verification and
	// materialisation of a borrowed arena (PackedFromSnapshotBorrowed);
	// Prepare must succeed before the arena is traversed. nil for arenas
	// built by Pack or copied by PackedFromSnapshot, which are complete
	// at construction.
	prep *packedPrep

	// mbr is the root MBR of a borrowed arena, set by Prepare (the shell
	// tree has no dynamic nodes to compute it from).
	mbr geom.Rect
}

// packedPrep defers a borrowed arena's expensive open work — checksum
// verification, structural validation, point materialisation — to first
// use, exactly once, safely under concurrency.
type packedPrep struct {
	once sync.Once
	fn   func() error
	err  error
}

// Prepare runs the deferred verification and materialisation of a
// borrowed arena: section checksums over the backing buffer, structural
// validation of the node graph, the point-major coordinate view and the
// root MBR. It is idempotent, safe for concurrent callers (the first
// outcome is cached) and a no-op on arenas that were complete at
// construction. Every traversal requires a prior successful Prepare;
// the public layer calls it on each query entry, so a corrupt mapping
// surfaces as this error on first use, never as a fault mid-traversal.
func (p *Packed) Prepare() error {
	if p.prep == nil {
		return nil
	}
	p.prep.once.Do(func() { p.prep.err = p.prep.fn() })
	return p.prep.err
}

// bounds serves the shell tree's Bounds from the prepared arena.
func (p *Packed) bounds() (geom.Rect, bool) {
	if p.size == 0 || p.Prepare() != nil {
		return geom.Rect{}, false
	}
	return p.mbr, true
}

// Pack builds the packed query-time snapshot of the tree's current state.
// Like every read operation it may run concurrently with queries, but not
// with Insert or Delete.
func (t *Tree) Pack() *Packed {
	// First pass: count nodes and slots so every arena is allocated once.
	var nodes, rslots, lslots int
	var count func(n *node)
	count = func(n *node) {
		nodes++
		if n.level == 0 {
			lslots += len(n.entries)
			return
		}
		rslots += len(n.entries)
		for _, e := range n.entries {
			count(e.child)
		}
	}
	count(t.root)

	p := &Packed{
		src: t, muts: t.muts, dim: t.cfg.Dim, size: t.size, height: t.height,
		acct:  t.cfg.Accountant,
		level: make([]int32, 0, nodes),
		page:  make([]pagestore.PageID, 0, nodes),
		start: make([]int32, 0, nodes),
		end:   make([]int32, 0, nodes),
		child: make([]int32, rslots),
		rlo:   make([][]float64, t.cfg.Dim),
		rhi:   make([][]float64, t.cfg.Dim),
		pc:    make([][]float64, t.cfg.Dim),
		pts:   make([]geom.Point, 0, lslots),
		ids:   make([]int64, 0, lslots),
	}
	for a := 0; a < t.cfg.Dim; a++ {
		p.rlo[a] = make([]float64, rslots)
		p.rhi[a] = make([]float64, rslots)
		p.pc[a] = make([]float64, 0, lslots)
	}

	// Second pass: depth-first preorder fill. A node's slot range is
	// claimed before its children are visited, and each routing slot's
	// child id is patched in as the recursion returns.
	var nextR, nextL int32
	var fill func(n *node) int32
	fill = func(n *node) int32 {
		id := int32(len(p.level))
		p.level = append(p.level, int32(n.level))
		p.page = append(p.page, n.page)
		if n.level == 0 {
			p.start = append(p.start, nextL)
			for _, e := range n.entries {
				for a := 0; a < p.dim; a++ {
					p.pc[a] = append(p.pc[a], e.Point[a])
				}
				p.pts = append(p.pts, e.Point)
				p.ids = append(p.ids, e.ID)
			}
			nextL += int32(len(n.entries))
			p.end = append(p.end, nextL)
			return id
		}
		s := nextR
		nextR += int32(len(n.entries))
		p.start = append(p.start, s)
		p.end = append(p.end, nextR)
		for i, e := range n.entries {
			for a := 0; a < p.dim; a++ {
				p.rlo[a][s+int32(i)] = e.Rect.Lo[a]
				p.rhi[a][s+int32(i)] = e.Rect.Hi[a]
			}
		}
		for i, e := range n.entries {
			p.child[s+int32(i)] = fill(e.child)
		}
		return id
	}
	p.root = fill(t.root)
	return p
}

// Valid reports whether the snapshot still matches the tree's state: it
// was built from exactly this tree and no Insert/Delete happened since.
func (p *Packed) Valid(t *Tree) bool {
	return p != nil && p.src == t && p.muts == t.muts
}

// Tree returns the source tree the snapshot was built from.
func (p *Packed) Tree() *Tree { return p.src }

// Len returns the number of indexed points.
func (p *Packed) Len() int { return p.size }

// Dim returns the snapshot's dimensionality.
func (p *Packed) Dim() int { return p.dim }

// Height returns the number of levels (1 when the root is a leaf).
func (p *Packed) Height() int { return p.height }

// Nodes returns the number of nodes in the arena.
func (p *Packed) Nodes() int { return len(p.level) }

// Root returns the root node id without charging an access (use
// Reader.PackedRoot on query paths).
func (p *Packed) Root() int32 { return p.root }

// IsLeaf reports whether node n is at leaf level.
func (p *Packed) IsLeaf(n int32) bool { return p.level[n] == 0 }

// NodeRange returns node n's slot range [s, e) — routing slots for
// internal nodes, leaf slots for leaves.
func (p *Packed) NodeRange(n int32) (s, e int32) { return p.start[n], p.end[n] }

// ChildOf returns the child node id of routing slot s.
func (p *Packed) ChildOf(s int32) int32 { return p.child[s] }

// RectSoA returns the per-axis corner arrays of the routing slots.
func (p *Packed) RectSoA() (lo, hi [][]float64) { return p.rlo, p.rhi }

// PointSoA returns the per-axis coordinate arrays of the leaf slots.
func (p *Packed) PointSoA() [][]float64 { return p.pc }

// LeafPoint returns the data point of leaf slot s. The returned slice is
// shared with the source tree's entry (never modify it); emitting it keeps
// packed results bit-identical to dynamic ones.
func (p *Packed) LeafPoint(s int32) geom.Point { return p.pts[s] }

// LeafID returns the caller-supplied id of leaf slot s.
func (p *Packed) LeafID(s int32) int64 { return p.ids[s] }

// NumLeafSlots returns the total number of leaf slots (== Len()).
func (p *Packed) NumLeafSlots() int { return len(p.ids) }

// RectInto copies routing slot s's rectangle into dst's corner slices,
// growing them only when their capacity is too small — the allocation-free
// bridge for the few per-node bounds (heuristic 3, F-MBM leaf ordering)
// that operate on one rectangle rather than a range.
func (p *Packed) RectInto(s int32, dst *geom.Rect) {
	if cap(dst.Lo) < p.dim {
		dst.Lo = make(geom.Point, p.dim)
	}
	if cap(dst.Hi) < p.dim {
		dst.Hi = make(geom.Point, p.dim)
	}
	dst.Lo, dst.Hi = dst.Lo[:p.dim], dst.Hi[:p.dim]
	for a := 0; a < p.dim; a++ {
		dst.Lo[a] = p.rlo[a][s]
		dst.Hi[a] = p.rhi[a][s]
	}
}

// PackedRef encodes one packed entry on traversal data structures: leaf
// slot s as s (non-negative), routing slot s as ^s (negative). A single
// int32 replaces the 88-byte Entry in candidate lists and heaps.
type PackedRef = int32

// LeafRef and NodeRef build refs; RefSlot decodes either kind.
func LeafRef(s int32) PackedRef { return s }

// NodeRef encodes routing slot s.
func NodeRef(s int32) PackedRef { return ^s }

// RefSlot returns the slot index and whether the ref is a leaf slot.
func RefSlot(r PackedRef) (s int32, leaf bool) {
	if r >= 0 {
		return r, true
	}
	return ^r, false
}

// ReaderOver returns an execution context over the packed snapshot when it
// is valid for t, and over the dynamic nodes otherwise. It is the single
// dispatch point through which every query picks its layout.
func ReaderOver(t *Tree, p *Packed, tk *pagestore.CostTracker) Reader {
	if !p.Valid(t) {
		p = nil
	}
	return Reader{t: t, p: p, tk: tk}
}

// Reader returns an execution context over the packed snapshot, charging
// tk (nil for aggregate-only accounting).
func (p *Packed) Reader(tk *pagestore.CostTracker) Reader {
	return Reader{t: p.src, p: p, tk: tk}
}

// Packed returns the packed snapshot this reader traverses, or nil when it
// reads the dynamic nodes.
func (r Reader) Packed() *Packed { return r.p }

// PackedRoot returns the packed root node id, charging one node access.
func (r Reader) PackedRoot() int32 {
	r.p.acct.Access(r.p.page[r.p.root], r.tk)
	return r.p.root
}

// PackedChild resolves routing slot s to its child node id, charging one
// node access.
func (r Reader) PackedChild(s int32) int32 {
	c := r.p.child[s]
	r.p.acct.Access(r.p.page[c], r.tk)
	return c
}

// growFloat64 returns dst with length n (contents undefined), reallocating
// only when capacity is short — the scratch-buffer growth helper of the
// packed traversals.
func growFloat64(dst []float64, n int) []float64 {
	if cap(dst) < n {
		return make([]float64, n)
	}
	return dst[:n]
}

// searchPacked is Reader.Search over the packed arena.
func (rd Reader) searchPacked(n int32, r geom.Rect, fn func(geom.Point, int64) bool) bool {
	p := rd.p
	s, e := p.start[n], p.end[n]
	if p.level[n] == 0 {
		for i := s; i < e; i++ {
			inside := true
			for a := 0; a < p.dim; a++ {
				if v := p.pc[a][i]; v < r.Lo[a] || v > r.Hi[a] {
					inside = false
					break
				}
			}
			if inside && !fn(p.pts[i], p.ids[i]) {
				return false
			}
		}
		return true
	}
	for i := s; i < e; i++ {
		intersects := true
		for a := 0; a < p.dim; a++ {
			if p.rhi[a][i] < r.Lo[a] || r.Hi[a] < p.rlo[a][i] {
				intersects = false
				break
			}
		}
		if intersects && !rd.searchPacked(rd.PackedChild(i), r, fn) {
			return false
		}
	}
	return true
}

// All invokes fn for every indexed point in depth-first order — a pure
// streaming pass over the flat leaf arrays, without charging node accesses
// (matching Tree.All's bookkeeping-scan semantics).
func (p *Packed) All(fn func(pt geom.Point, id int64) bool) {
	if p.Prepare() != nil {
		return // unverifiable borrowed arena; opens surfaced the error
	}
	for i := range p.pts {
		if !fn(p.pts[i], p.ids[i]) {
			return
		}
	}
}

// nearestDFPacked is the packed-arena [RKV95] depth-first k-NN traversal:
// the per-node candidate distances come from one fused pass over the SoA
// arrays, and candidates are int32 refs instead of copied entries.
func (rd Reader) nearestDFPacked(n int32, q geom.Point, sc *nnScratch, depth int) {
	p := rd.p
	s, e := p.start[n], p.end[n]
	cnt := int(e - s)
	sc.dbuf = growFloat64(sc.dbuf, cnt)
	buf := sc.pcands.Level(depth)
	cands := *buf
	if p.level[n] == 0 {
		geom.DistSqPointsPoint(p.pc, int(s), int(e), q, sc.dbuf)
		for i := 0; i < cnt; i++ {
			cands = append(cands, PCand{Ref: LeafRef(s + int32(i)), D: sc.dbuf[i]})
		}
	} else {
		geom.MinDistSqRectsPoint(p.rlo, p.rhi, int(s), int(e), q, sc.dbuf)
		for i := 0; i < cnt; i++ {
			cands = append(cands, PCand{Ref: NodeRef(s + int32(i)), D: sc.dbuf[i]})
		}
	}
	SortPCands(cands)
	*buf = cands
	for i := range cands {
		c := cands[i]
		if bd, ok := sc.best.Kth(); ok && c.D >= bd {
			return // every remaining candidate is at least this far
		}
		if slot, leaf := RefSlot(c.Ref); leaf {
			sc.best.Push(Neighbor{Point: p.pts[slot], ID: p.ids[slot]}, c.D)
		} else {
			rd.nearestDFPacked(rd.PackedChild(slot), q, sc, depth+1)
		}
	}
}

// pushNodePacked enqueues node n's slots on the packed heap, keyed by the
// fused squared distances to q.
func (it *NNIterator) pushNodePacked(n int32) {
	p := it.rd.p
	s, e := p.start[n], p.end[n]
	cnt := int(e - s)
	it.dbuf = growFloat64(it.dbuf, cnt)
	if p.level[n] == 0 {
		geom.DistSqPointsPoint(p.pc, int(s), int(e), it.q, it.dbuf)
		for i := 0; i < cnt; i++ {
			it.ph.Push(LeafRef(s+int32(i)), it.dbuf[i])
		}
	} else {
		geom.MinDistSqRectsPoint(p.rlo, p.rhi, int(s), int(e), it.q, it.dbuf)
		for i := 0; i < cnt; i++ {
			it.ph.Push(NodeRef(s+int32(i)), it.dbuf[i])
		}
	}
}

// nextPacked is NNIterator.Next over the packed arena.
func (it *NNIterator) nextPacked() (Neighbor, bool) {
	p := it.rd.p
	for {
		item, ok := it.ph.Pop()
		if !ok {
			return Neighbor{}, false
		}
		slot, leaf := RefSlot(item.Value)
		if leaf {
			return Neighbor{
				Point: p.pts[slot],
				ID:    p.ids[slot],
				Dist:  math.Sqrt(item.Priority),
			}, true
		}
		it.pushNodePacked(it.rd.PackedChild(slot))
	}
}
