package rtree

import "gnn/internal/geom"

// CountExact returns how many indexed entries match the point and id
// exactly. Like All it charges no node accesses — it is bookkeeping for
// the delete-tombstone overlay (which must know a base point's
// multiplicity), not a simulated disk traversal, so per-query cost
// accounting is unaffected. The walk prunes by MBR containment.
func (t *Tree) CountExact(p geom.Point, id int64) int {
	if t.size == 0 || len(p) != t.cfg.Dim {
		return 0
	}
	if t.root == nil {
		return t.shellOf.CountExact(p, id)
	}
	return t.countExactNode(t.root, p, id)
}

func (t *Tree) countExactNode(n *node, p geom.Point, id int64) int {
	c := 0
	for _, e := range n.entries {
		if e.child == nil {
			if e.ID == id && e.Point.Equal(p) {
				c++
			}
		} else if e.Rect.ContainsPoint(p) {
			c += t.countExactNode(e.child, p, id)
		}
	}
	return c
}

// CountExact is the packed-arena analogue of Tree.CountExact: an
// uncharged MBR-pruned walk of the SoA arena. It works on heap-packed
// and mapped (borrowed) arenas alike; borrowed arenas must have been
// Prepared so the point views exist.
func (p *Packed) CountExact(pt geom.Point, id int64) int {
	if p == nil || p.size == 0 || len(pt) != p.dim {
		return 0
	}
	return p.countExactNode(p.root, pt, id)
}

func (p *Packed) countExactNode(n int32, pt geom.Point, id int64) int {
	s, e := p.start[n], p.end[n]
	c := 0
	if p.level[n] == 0 {
		for i := s; i < e; i++ {
			if p.ids[i] == id && p.pts[i].Equal(pt) {
				c++
			}
		}
		return c
	}
	for i := s; i < e; i++ {
		inside := true
		for ax := 0; ax < p.dim; ax++ {
			if pt[ax] < p.rlo[ax][i] || pt[ax] > p.rhi[ax][i] {
				inside = false
				break
			}
		}
		if inside {
			c += p.countExactNode(p.child[i], pt, id)
		}
	}
	return c
}
