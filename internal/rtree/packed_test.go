package rtree

import (
	"math/rand"
	"reflect"
	"testing"

	"gnn/internal/geom"
	"gnn/internal/pagestore"
)

func randTree(t *testing.T, rng *rand.Rand, n, maxEntries int, bulk bool) *Tree {
	t.Helper()
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	cfg := Config{Dim: 2, MaxEntries: maxEntries}
	if bulk {
		tr, err := BulkLoadSTR(cfg, pts, nil)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if err := tr.Insert(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

// TestPackedTraversalEquivalence checks that every rtree-level traversal
// returns identical neighbors and charges identical per-query costs on
// both layouts.
func TestPackedTraversalEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, bulk := range []bool{true, false} {
		tr := randTree(t, rng, 2000, 8, bulk)
		p := tr.Pack()
		if !p.Valid(tr) {
			t.Fatal("fresh snapshot reports invalid")
		}
		if p.Len() != tr.Len() || p.Height() != tr.Height() {
			t.Fatalf("snapshot shape: len %d/%d height %d/%d", p.Len(), tr.Len(), p.Height(), tr.Height())
		}
		for trial := 0; trial < 50; trial++ {
			q := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
			k := 1 + rng.Intn(10)

			var dtk, ptk pagestore.CostTracker
			dyn := tr.Reader(&dtk).NearestDF(q, k)
			pkd := ReaderOver(tr, p, &ptk).NearestDF(q, k)
			if !reflect.DeepEqual(dyn, pkd) {
				t.Fatalf("NearestDF diverged (bulk=%v trial %d):\ndyn: %v\npkd: %v", bulk, trial, dyn, pkd)
			}
			if dtk != ptk {
				t.Fatalf("NearestDF cost diverged: dyn %+v pkd %+v", dtk, ptk)
			}

			dtk, ptk = pagestore.CostTracker{}, pagestore.CostTracker{}
			dyn = tr.Reader(&dtk).NearestBF(q, k)
			pkd = p.Reader(&ptk).NearestBF(q, k)
			if !reflect.DeepEqual(dyn, pkd) {
				t.Fatalf("NearestBF diverged (bulk=%v trial %d)", bulk, trial)
			}
			if dtk != ptk {
				t.Fatalf("NearestBF cost diverged: dyn %+v pkd %+v", dtk, ptk)
			}

			r := geom.NewRect(
				geom.Point{rng.Float64() * 1000, rng.Float64() * 1000},
				geom.Point{rng.Float64() * 1000, rng.Float64() * 1000})
			var dres, pres []int64
			dtk, ptk = pagestore.CostTracker{}, pagestore.CostTracker{}
			tr.Reader(&dtk).Search(r, func(_ geom.Point, id int64) bool {
				dres = append(dres, id)
				return true
			})
			ReaderOver(tr, p, &ptk).Search(r, func(_ geom.Point, id int64) bool {
				pres = append(pres, id)
				return true
			})
			if !reflect.DeepEqual(dres, pres) {
				t.Fatalf("Search diverged: %d vs %d ids", len(dres), len(pres))
			}
			if dtk != ptk {
				t.Fatalf("Search cost diverged: dyn %+v pkd %+v", dtk, ptk)
			}
		}

		// Incremental NN streams must emit the same prefix with the same
		// per-step costs.
		q := geom.Point{500, 500}
		var dtk, ptk pagestore.CostTracker
		di := tr.Reader(&dtk).NewNNIterator(q)
		pi := ReaderOver(tr, p, &ptk).NewNNIterator(q)
		for i := 0; i < 200; i++ {
			dn, dok := di.Next()
			pn, pok := pi.Next()
			if dok != pok || !reflect.DeepEqual(dn, pn) {
				t.Fatalf("NN stream diverged at %d: %v/%v vs %v/%v", i, dn, dok, pn, pok)
			}
			if dtk != ptk {
				t.Fatalf("NN stream cost diverged at %d: dyn %+v pkd %+v", i, dtk, ptk)
			}
		}
		di.Close()
		pi.Close()

		// All must stream the identical sequence.
		var dall, pall []int64
		tr.All(func(_ geom.Point, id int64) bool { dall = append(dall, id); return true })
		p.All(func(_ geom.Point, id int64) bool { pall = append(pall, id); return true })
		if !reflect.DeepEqual(dall, pall) {
			t.Fatal("All order diverged between layouts")
		}
	}
}

// TestPackedInvalidation checks the mutation-invalidation rule: any
// Insert or Delete makes the snapshot stale and ReaderOver falls back to
// the dynamic nodes.
func TestPackedInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := randTree(t, rng, 200, 8, true)
	p := tr.Pack()
	if !p.Valid(tr) {
		t.Fatal("fresh snapshot invalid")
	}
	if rd := ReaderOver(tr, p, nil); rd.Packed() != p {
		t.Fatal("ReaderOver dropped a valid snapshot")
	}
	if err := tr.Insert(geom.Point{1, 2}, 999); err != nil {
		t.Fatal(err)
	}
	if p.Valid(tr) {
		t.Fatal("snapshot still valid after Insert")
	}
	if rd := ReaderOver(tr, p, nil); rd.Packed() != nil {
		t.Fatal("ReaderOver served a stale snapshot")
	}
	// Queries through the stale-snapshot ReaderOver must see the new point.
	got := ReaderOver(tr, p, nil).NearestDF(geom.Point{1, 2}, 1)
	if len(got) != 1 || got[0].ID != 999 {
		t.Fatalf("fallback query missed the inserted point: %v", got)
	}
	p2 := tr.Pack()
	if !p2.Valid(tr) {
		t.Fatal("re-packed snapshot invalid")
	}
	if !tr.Delete(geom.Point{1, 2}, 999) {
		t.Fatal("delete failed")
	}
	if p2.Valid(tr) {
		t.Fatal("snapshot still valid after Delete")
	}
	// A snapshot of one tree is never valid for another.
	other := randTree(t, rng, 50, 8, true)
	if p.Valid(other) {
		t.Fatal("snapshot valid for a different tree")
	}
	if rd := ReaderOver(other, other.Pack(), nil); rd.Packed() == nil {
		t.Fatal("ReaderOver rejected a matching snapshot")
	}
}

// TestPackedShape spot-checks the arena invariants: ranges partition the
// slot spaces, levels decrease by one per child hop, pages match the
// source nodes.
func TestPackedShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := randTree(t, rng, 1500, 10, false)
	p := tr.Pack()
	var walk func(n int32, level int32)
	seenLeaf := 0
	walk = func(n int32, level int32) {
		if p.level[n] != level {
			t.Fatalf("node %d level %d, expected %d", n, p.level[n], level)
		}
		s, e := p.NodeRange(n)
		if s > e {
			t.Fatalf("node %d empty-inverted range [%d,%d)", n, s, e)
		}
		if p.IsLeaf(n) {
			seenLeaf += int(e - s)
			return
		}
		for i := s; i < e; i++ {
			walk(p.ChildOf(i), level-1)
		}
	}
	walk(p.Root(), int32(tr.Height()-1))
	if seenLeaf != tr.Len() {
		t.Fatalf("%d leaf slots reachable, want %d", seenLeaf, tr.Len())
	}
	if p.NumLeafSlots() != tr.Len() {
		t.Fatalf("NumLeafSlots %d, want %d", p.NumLeafSlots(), tr.Len())
	}
	// Pages must be preserved — same id space as the dynamic nodes.
	if p.page[p.Root()] != tr.root.page {
		t.Fatalf("root page %d, want %d", p.page[p.Root()], tr.root.page)
	}
	// RectInto must reproduce the routing rectangles bit for bit.
	var dst geom.Rect
	rootS, rootE := p.NodeRange(p.Root())
	if !p.IsLeaf(p.Root()) {
		for i := rootS; i < rootE; i++ {
			p.RectInto(i, &dst)
			if !dst.Equal(tr.root.entries[i-rootS].Rect) {
				t.Fatalf("RectInto slot %d mismatch", i)
			}
		}
	}
}
