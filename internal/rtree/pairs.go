package rtree

import (
	"fmt"
	"math"

	"gnn/internal/geom"
	"gnn/internal/pq"
)

// Pair is a pair of data points, one from each tree, with their distance.
type Pair struct {
	P, Q Neighbor
	Dist float64
}

// pairItem is a heap element of the incremental closest-pair search. Each
// side is either a resolved data entry or a routing entry of its tree.
type pairItem struct {
	ep, eq Entry
}

// PairIterator enumerates point pairs (p, q), p from the first tree and q
// from the second, in ascending distance order — the incremental closest-
// pair algorithm of [HS98] used as the engine of GCP (§4.1).
//
// The iterator maintains a heap of entry pairs keyed by the squared
// mindist of their rectangles: since mindist lower-bounds every concrete
// pair beneath an entry pair and squaring preserves order, popping in heap
// order yields pairs in ascending distance while no heap key pays a Sqrt.
// Node accesses are charged to each side's execution context (each tree's
// shared accountant, plus whatever tracker the contexts carry).
//
// Iterators are drawn from a pool; Close recycles the heap (GCP closes its
// iterator on every path). Forgetting to Close costs only the reuse.
type PairIterator struct {
	rp, rq Reader
	heap   pq.Heap[pairItem]
	closed bool
	// heapMax tracks the high-water mark of the heap, reported because the
	// paper discusses GCP's "large heap requirements" (§4.1).
	heapMax int
}

var pairIterPool = pq.NewPool(func() *PairIterator { return &PairIterator{} })

// NewClosestPairIterator starts an incremental closest-pair scan between
// two non-empty trees of equal dimensionality, in fresh aggregate-only
// execution contexts. Use NewClosestPairIteratorReaders to charge
// per-query trackers.
func NewClosestPairIterator(tp, tq *Tree) (*PairIterator, error) {
	return NewClosestPairIteratorReaders(tp.Reader(nil), tq.Reader(nil))
}

// NewClosestPairIteratorReaders starts an incremental closest-pair scan
// between the trees behind two per-query execution contexts. The contexts
// may share one CostTracker, which then accumulates the combined NA of
// both trees.
func NewClosestPairIteratorReaders(rp, rq Reader) (*PairIterator, error) {
	tp, tq := rp.Tree(), rq.Tree()
	if tp.Dim() != tq.Dim() {
		return nil, fmt.Errorf("rtree: dimension mismatch %d vs %d", tp.Dim(), tq.Dim())
	}
	it := pairIterPool.Get()
	it.rp, it.rq, it.closed, it.heapMax = rp, rq, false, 0
	it.heap.Reset()
	if tp.Len() > 0 && tq.Len() > 0 {
		np, nq := rp.Root(), rq.Root()
		it.pushCross(np.Entries(), nq.Entries())
	}
	return it, nil
}

// pushCross enqueues the cross product of two entry sets.
func (it *PairIterator) pushCross(eps, eqs []Entry) {
	for _, ep := range eps {
		for _, eq := range eqs {
			it.heap.Push(pairItem{ep, eq}, pairDistSq(ep, eq))
		}
	}
	if it.heap.Len() > it.heapMax {
		it.heapMax = it.heap.Len()
	}
}

func pairDistSq(ep, eq Entry) float64 {
	switch {
	case ep.IsLeafEntry() && eq.IsLeafEntry():
		return geom.DistSq(ep.Point, eq.Point)
	case ep.IsLeafEntry():
		return geom.MinDistSqPointRect(ep.Point, eq.Rect)
	case eq.IsLeafEntry():
		return geom.MinDistSqPointRect(eq.Point, ep.Rect)
	default:
		return geom.MinDistSqRectRect(ep.Rect, eq.Rect)
	}
}

// Next returns the next closest pair; ok is false when all pairs have been
// reported or the iterator is closed.
func (it *PairIterator) Next() (Pair, bool) {
	if it.closed {
		return Pair{}, false
	}
	for {
		item, ok := it.heap.Pop()
		if !ok {
			return Pair{}, false
		}
		ep, eq := item.Value.ep, item.Value.eq
		if ep.IsLeafEntry() && eq.IsLeafEntry() {
			d := math.Sqrt(item.Priority)
			return Pair{
				P:    Neighbor{Point: ep.Point, ID: ep.ID, Dist: d},
				Q:    Neighbor{Point: eq.Point, ID: eq.ID, Dist: d},
				Dist: d,
			}, true
		}
		// Expand the unresolved side with the larger rectangle (both when
		// only one is unresolved); this balanced policy keeps the heap
		// smaller than always expanding a fixed side.
		switch {
		case ep.IsLeafEntry():
			it.pushCross([]Entry{ep}, it.rq.Child(eq).Entries())
		case eq.IsLeafEntry():
			it.pushCross(it.rp.Child(ep).Entries(), []Entry{eq})
		case ep.Rect.Area() >= eq.Rect.Area():
			it.pushCross(it.rp.Child(ep).Entries(), []Entry{eq})
		default:
			it.pushCross([]Entry{ep}, it.rq.Child(eq).Entries())
		}
	}
}

// PeekDist returns a lower bound on the distance of the next pair; ok is
// false when exhausted or closed.
func (it *PairIterator) PeekDist() (float64, bool) {
	if it.closed {
		return 0, false
	}
	d, ok := it.heap.MinPriority()
	if !ok {
		return 0, false
	}
	return math.Sqrt(d), true
}

// HeapLen returns the current number of queued entry pairs.
func (it *PairIterator) HeapLen() int { return it.heap.Len() }

// HeapMax returns the high-water mark of the pair heap.
func (it *PairIterator) HeapMax() int { return it.heapMax }

// Close releases the iterator's heap to the pool. Call it at most once,
// and do not use the iterator afterwards — see NNIterator.Close for the
// stale-handle hazard the closed flag cannot cover after a re-lease.
func (it *PairIterator) Close() {
	if it == nil || it.closed {
		return
	}
	it.closed = true
	it.rp, it.rq = Reader{}, Reader{}
	it.heap.Reset()
	pairIterPool.Put(it)
}
