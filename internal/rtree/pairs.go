package rtree

import (
	"fmt"

	"gnn/internal/geom"
	"gnn/internal/pq"
)

// Pair is a pair of data points, one from each tree, with their distance.
type Pair struct {
	P, Q Neighbor
	Dist float64
}

// pairItem is a heap element of the incremental closest-pair search. Each
// side is either a resolved data entry or a routing entry of its tree.
type pairItem struct {
	ep, eq Entry
}

// PairIterator enumerates point pairs (p, q), p from the first tree and q
// from the second, in ascending distance order — the incremental closest-
// pair algorithm of [HS98] used as the engine of GCP (§4.1).
//
// The iterator maintains a heap of entry pairs keyed by the mindist of
// their rectangles: since mindist lower-bounds every concrete pair beneath
// an entry pair, popping in heap order yields pairs in ascending distance.
// Node accesses are charged to each side's execution context (each tree's
// shared accountant, plus whatever tracker the contexts carry).
type PairIterator struct {
	rp, rq Reader
	heap   *pq.Heap[pairItem]
	// HeapMax tracks the high-water mark of the heap, reported because the
	// paper discusses GCP's "large heap requirements" (§4.1).
	heapMax int
}

// NewClosestPairIterator starts an incremental closest-pair scan between
// two non-empty trees of equal dimensionality, in fresh aggregate-only
// execution contexts. Use NewClosestPairIteratorReaders to charge
// per-query trackers.
func NewClosestPairIterator(tp, tq *Tree) (*PairIterator, error) {
	return NewClosestPairIteratorReaders(tp.Reader(nil), tq.Reader(nil))
}

// NewClosestPairIteratorReaders starts an incremental closest-pair scan
// between the trees behind two per-query execution contexts. The contexts
// may share one CostTracker, which then accumulates the combined NA of
// both trees.
func NewClosestPairIteratorReaders(rp, rq Reader) (*PairIterator, error) {
	tp, tq := rp.Tree(), rq.Tree()
	if tp.Dim() != tq.Dim() {
		return nil, fmt.Errorf("rtree: dimension mismatch %d vs %d", tp.Dim(), tq.Dim())
	}
	it := &PairIterator{rp: rp, rq: rq, heap: pq.NewHeap[pairItem](256)}
	if tp.Len() > 0 && tq.Len() > 0 {
		np, nq := rp.Root(), rq.Root()
		it.pushCross(np.Entries(), nq.Entries())
	}
	return it, nil
}

// pushCross enqueues the cross product of two entry sets.
func (it *PairIterator) pushCross(eps, eqs []Entry) {
	for _, ep := range eps {
		for _, eq := range eqs {
			it.heap.Push(pairItem{ep, eq}, pairDist(ep, eq))
		}
	}
	if it.heap.Len() > it.heapMax {
		it.heapMax = it.heap.Len()
	}
}

func pairDist(ep, eq Entry) float64 {
	switch {
	case ep.IsLeafEntry() && eq.IsLeafEntry():
		return geom.Dist(ep.Point, eq.Point)
	case ep.IsLeafEntry():
		return geom.MinDistPointRect(ep.Point, eq.Rect)
	case eq.IsLeafEntry():
		return geom.MinDistPointRect(eq.Point, ep.Rect)
	default:
		return geom.MinDistRectRect(ep.Rect, eq.Rect)
	}
}

// Next returns the next closest pair; ok is false when all pairs have been
// reported.
func (it *PairIterator) Next() (Pair, bool) {
	for {
		item, ok := it.heap.Pop()
		if !ok {
			return Pair{}, false
		}
		ep, eq := item.Value.ep, item.Value.eq
		if ep.IsLeafEntry() && eq.IsLeafEntry() {
			return Pair{
				P:    Neighbor{Point: ep.Point, ID: ep.ID, Dist: item.Priority},
				Q:    Neighbor{Point: eq.Point, ID: eq.ID, Dist: item.Priority},
				Dist: item.Priority,
			}, true
		}
		// Expand the unresolved side with the larger rectangle (both when
		// only one is unresolved); this balanced policy keeps the heap
		// smaller than always expanding a fixed side.
		switch {
		case ep.IsLeafEntry():
			it.pushCross([]Entry{ep}, it.rq.Child(eq).Entries())
		case eq.IsLeafEntry():
			it.pushCross(it.rp.Child(ep).Entries(), []Entry{eq})
		case ep.Rect.Area() >= eq.Rect.Area():
			it.pushCross(it.rp.Child(ep).Entries(), []Entry{eq})
		default:
			it.pushCross([]Entry{ep}, it.rq.Child(eq).Entries())
		}
	}
}

// PeekDist returns a lower bound on the distance of the next pair; ok is
// false when exhausted.
func (it *PairIterator) PeekDist() (float64, bool) {
	return it.heap.MinPriority()
}

// HeapLen returns the current number of queued entry pairs.
func (it *PairIterator) HeapLen() int { return it.heap.Len() }

// HeapMax returns the high-water mark of the pair heap.
func (it *PairIterator) HeapMax() int { return it.heapMax }
