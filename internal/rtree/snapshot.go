package rtree

import (
	"fmt"
	"io"
	"math"
	"unsafe"

	"gnn/internal/geom"
	"gnn/internal/pagestore"
	"gnn/internal/snapshot"
)

// Snapshot returns the serialisable arena of the packed tree. The
// returned Tree borrows the snapshot's slices (no copies except the page
// array, whose element type differs), so it is cheap and must be treated
// as read-only, valid while p is.
func (p *Packed) Snapshot() *snapshot.Tree {
	pages := make([]int64, len(p.page))
	for i, pg := range p.page {
		pages[i] = int64(pg)
	}
	t := p.src
	return &snapshot.Tree{
		Size:       p.size,
		Height:     p.height,
		MaxEntries: t.cfg.MaxEntries,
		MinEntries: t.cfg.MinEntries,
		FirstPage:  int64(t.cfg.FirstPage),
		Pages:      t.Pages(),
		Root:       p.root,
		Level:      p.level,
		Page:       pages,
		Start:      p.start,
		End:        p.end,
		Child:      p.child,
		RectLo:     p.rlo,
		RectHi:     p.rhi,
		PointCols:  p.pc,
		IDs:        p.ids,
	}
}

// ArenaBytes returns the approximate in-memory size of the packed arena's
// flat arrays (node metadata, routing rectangles, coordinate columns,
// ids) — the payload a snapshot serialises, excluding the dynamic nodes.
func (p *Packed) ArenaBytes() int64 {
	nodes := int64(len(p.level))
	rslots := int64(len(p.child))
	lslots := int64(len(p.ids))
	d := int64(p.dim)
	return nodes*(4+8+4+4) + // level, page, start, end
		rslots*4 + 2*d*rslots*8 + // child, rlo, rhi
		d*lslots*8 + lslots*8 + // pc, ids
		lslots*24 // pts slice headers (coordinates shared with the tree)
}

// countingWriter tracks bytes written for io.WriterTo bookkeeping.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// WriteTo serialises the packed arena as a single-tree (plain) snapshot
// in the format of internal/snapshot, implementing io.WriterTo. Sharded
// snapshots are assembled one layer up (internal/shard) from the same
// per-tree sections.
func (p *Packed) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	m := snapshot.Manifest{Kind: snapshot.KindPlain, Dim: p.dim, Points: p.size}
	err := snapshot.Write(cw, m, []*snapshot.Tree{p.Snapshot()})
	return cw.n, err
}

// ReadFrom loads a single-tree snapshot into p, implementing
// io.ReaderFrom: the receiver (typically zero) is overwritten with the
// deserialised arena, and p.Tree() returns the reconstructed dynamic
// tree. The rebuilt index answers every query with bit-identical
// results, costs and node-access counts to the tree that wrote the
// snapshot. A fresh unbuffered Accountant is attached; load through the
// public layer (gnn.OpenSnapshot) to configure buffering.
func (p *Packed) ReadFrom(r io.Reader) (int64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return int64(len(data)), err
	}
	m, trees, err := snapshot.Decode(data)
	if err != nil {
		return int64(len(data)), err
	}
	if m.Kind != snapshot.KindPlain {
		return int64(len(data)), fmt.Errorf("rtree: snapshot kind %v, want %v", m.Kind, snapshot.KindPlain)
	}
	loaded, err := PackedFromSnapshot(trees[0], m.Dim, Config{})
	if err != nil {
		return int64(len(data)), err
	}
	*p = *loaded
	return int64(len(data)), nil
}

// PackedFromSnapshot reconstructs a packed arena — and the dynamic tree
// around it — from a decoded snapshot tree. The arena arrays are adopted
// directly from st (zero rebuild); the dynamic nodes are materialised in
// one linear pass over the arena so that Insert, Delete and
// LayoutDynamic queries work on the loaded index exactly as on the
// writer's. cfg supplies runtime wiring only (Accountant,
// ReinsertFraction); the structural parameters (dimension, node
// capacity, page range) come from the snapshot.
//
// Page identifiers are preserved node for node and the entry order
// inside every node is the writer's, so traversals on the loaded index
// charge the same accesses in the same order: results, Cost and NA are
// bit-identical for both layouts.
func PackedFromSnapshot(st *snapshot.Tree, dim int, cfg Config) (*Packed, error) {
	cfg.Dim = dim
	cfg.MaxEntries = st.MaxEntries
	cfg.MinEntries = st.MinEntries
	cfg.FirstPage = pagestore.PageID(st.FirstPage)
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, fmt.Errorf("rtree: snapshot config: %w", err)
	}
	numNodes := len(st.Level)
	lslots := len(st.IDs)

	// Leaf points: one coordinate slab in point-major order, gathered from
	// the snapshot's axis-major columns. The packed arena and the dynamic
	// leaf entries share these exact slices, as after Tree.Pack.
	ptSlab := make([]float64, dim*lslots)
	pts := make([]geom.Point, lslots)
	for i := 0; i < lslots; i++ {
		pt := ptSlab[i*dim : (i+1)*dim : (i+1)*dim]
		for a := 0; a < dim; a++ {
			pt[a] = st.PointCols[a][i]
		}
		pts[i] = pt
	}

	pages := make([]pagestore.PageID, numNodes)
	maxPage := cfg.FirstPage + pagestore.PageID(st.Pages) - 1
	for i, pg := range st.Page {
		pages[i] = pagestore.PageID(pg)
		if pages[i] > maxPage {
			maxPage = pages[i]
		}
	}

	t := &Tree{
		cfg:      cfg,
		size:     st.Size,
		height:   st.Height,
		nextPage: maxPage + 1,
	}
	t.root = buildNodes(st, dim, pages, pts)

	p := &Packed{
		src: t, muts: t.muts, dim: dim, size: st.Size, height: st.Height,
		acct:  cfg.Accountant,
		root:  st.Root,
		level: st.Level,
		page:  pages,
		start: st.Start,
		end:   st.End,
		child: st.Child,
		rlo:   st.RectLo,
		rhi:   st.RectHi,
		pc:    st.PointCols,
		pts:   pts,
		ids:   st.IDs,
	}
	return p, nil
}

// PackedFromSnapshotBorrowed is the zero-copy sibling of
// PackedFromSnapshot: the arena arrays alias st's slices (which for a
// mapped open alias the file mapping itself), no dynamic nodes are
// materialised, and the expensive open work is deferred. The returned
// arena's Tree() is a metadata shell — immutable (Insert returns
// rtree.ErrImmutable, Delete reports false) and serving Bounds/All from
// the arena — so only packed-layout traversals are possible.
//
// verify runs the caller's deferred validation of st's backing bytes
// (checksums and structural checks, e.g. snapshot.Adopted.Verify); it is
// invoked exactly once, from Packed.Prepare, before the first traversal.
// After verify succeeds, Prepare materialises the one representation the
// snapshot's axis-major columns cannot alias — the point-major
// geom.Point view used when emitting results — and the root MBR.
//
// The caller owns the backing buffer's lifetime: it must stay alive and
// unmodified until the returned arena is unreachable or closed one
// layer up.
func PackedFromSnapshotBorrowed(st *snapshot.Tree, dim int, cfg Config, verify func() error) (*Packed, error) {
	cfg.Dim = dim
	cfg.MaxEntries = st.MaxEntries
	cfg.MinEntries = st.MinEntries
	cfg.FirstPage = pagestore.PageID(st.FirstPage)
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, fmt.Errorf("rtree: snapshot config: %w", err)
	}

	// pagestore.PageID is int64 under a different name, so the page
	// column is adopted in place rather than copied like
	// PackedFromSnapshot does. nextPage comes from the writer-declared
	// page range — verify confirms every node page lies inside it.
	var pages []pagestore.PageID
	if len(st.Page) > 0 {
		pages = unsafe.Slice((*pagestore.PageID)(unsafe.Pointer(unsafe.SliceData(st.Page))), len(st.Page))
	}

	t := &Tree{
		cfg:      cfg,
		size:     st.Size,
		height:   st.Height,
		nextPage: cfg.FirstPage + pagestore.PageID(st.Pages),
	}
	p := &Packed{
		src: t, muts: t.muts, dim: dim, size: st.Size, height: st.Height,
		acct:  cfg.Accountant,
		root:  st.Root,
		level: st.Level,
		page:  pages,
		start: st.Start,
		end:   st.End,
		child: st.Child,
		rlo:   st.RectLo,
		rhi:   st.RectHi,
		pc:    st.PointCols,
		ids:   st.IDs,
	}
	t.shellOf = p
	p.prep = &packedPrep{fn: func() error {
		if err := verify(); err != nil {
			return err
		}
		// Point-major view of the leaf coordinates, shared by the packed
		// emit paths and the shell tree's All — the only copied column.
		lslots := len(st.IDs)
		ptSlab := make([]float64, dim*lslots)
		pts := make([]geom.Point, lslots)
		for i := 0; i < lslots; i++ {
			pt := ptSlab[i*dim : (i+1)*dim : (i+1)*dim]
			for a := 0; a < dim; a++ {
				pt[a] = st.PointCols[a][i]
			}
			pts[i] = pt
		}
		p.pts = pts
		p.mbr = p.rootMBR()
		return nil
	}}
	return p, nil
}

// rootMBR computes the arena root's bounding rectangle (the validated
// arena makes every slot range in bounds).
func (p *Packed) rootMBR() geom.Rect {
	lo := make(geom.Point, p.dim)
	hi := make(geom.Point, p.dim)
	s, e := p.start[p.root], p.end[p.root]
	if s >= e {
		return geom.Rect{Lo: lo, Hi: hi}
	}
	if p.level[p.root] == 0 {
		for a := 0; a < p.dim; a++ {
			lo[a], hi[a] = p.pc[a][s], p.pc[a][s]
			for i := s + 1; i < e; i++ {
				lo[a] = math.Min(lo[a], p.pc[a][i])
				hi[a] = math.Max(hi[a], p.pc[a][i])
			}
		}
	} else {
		for a := 0; a < p.dim; a++ {
			lo[a], hi[a] = p.rlo[a][s], p.rhi[a][s]
			for i := s + 1; i < e; i++ {
				lo[a] = math.Min(lo[a], p.rlo[a][i])
				hi[a] = math.Max(hi[a], p.rhi[a][i])
			}
		}
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// buildNodes materialises the dynamic node structs from the arena and
// returns the root. The nodes and their entry/rectangle storage come
// from per-kind slabs: a handful of large allocations instead of one per
// node, which keeps cold-start loading fast. Entry slices are
// capacity-clipped, so a post-load Insert that overflows a node
// reallocates instead of clobbering its slab neighbour.
func buildNodes(st *snapshot.Tree, dim int, pages []pagestore.PageID, pts []geom.Point) *node {
	numNodes := len(st.Level)
	rslots := len(st.Child)
	lslots := len(st.IDs)

	nodes := make([]node, numNodes)
	entrySlab := make([]Entry, rslots+lslots)
	rectSlab := make([]float64, 2*dim*rslots) // lo+hi corners of every routing rect
	nextEntry := 0

	for i := 0; i < numNodes; i++ {
		n := &nodes[i]
		n.page = pages[i]
		n.level = int(st.Level[i])
		s, e := st.Start[i], st.End[i]
		cnt := int(e - s)
		ents := entrySlab[nextEntry : nextEntry+cnt : nextEntry+cnt]
		nextEntry += cnt
		if n.level == 0 {
			for j := 0; j < cnt; j++ {
				slot := s + int32(j)
				pt := pts[slot]
				ents[j] = Entry{Rect: geom.Rect{Lo: pt, Hi: pt}, Point: pt, ID: st.IDs[slot]}
			}
		} else {
			for j := 0; j < cnt; j++ {
				slot := s + int32(j)
				lo := rectSlab[2*dim*int(slot) : 2*dim*int(slot)+dim : 2*dim*int(slot)+dim]
				hi := rectSlab[2*dim*int(slot)+dim : 2*dim*int(slot)+2*dim : 2*dim*int(slot)+2*dim]
				for a := 0; a < dim; a++ {
					lo[a] = st.RectLo[a][slot]
					hi[a] = st.RectHi[a][slot]
				}
				ents[j] = Entry{Rect: geom.Rect{Lo: lo, Hi: hi}, child: &nodes[st.Child[slot]]}
			}
		}
		n.entries = ents
	}
	return &nodes[st.Root]
}
