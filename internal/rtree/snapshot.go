package rtree

import (
	"fmt"
	"io"

	"gnn/internal/geom"
	"gnn/internal/pagestore"
	"gnn/internal/snapshot"
)

// Snapshot returns the serialisable arena of the packed tree. The
// returned Tree borrows the snapshot's slices (no copies except the page
// array, whose element type differs), so it is cheap and must be treated
// as read-only, valid while p is.
func (p *Packed) Snapshot() *snapshot.Tree {
	pages := make([]int64, len(p.page))
	for i, pg := range p.page {
		pages[i] = int64(pg)
	}
	t := p.src
	return &snapshot.Tree{
		Size:       p.size,
		Height:     p.height,
		MaxEntries: t.cfg.MaxEntries,
		MinEntries: t.cfg.MinEntries,
		FirstPage:  int64(t.cfg.FirstPage),
		Pages:      t.Pages(),
		Root:       p.root,
		Level:      p.level,
		Page:       pages,
		Start:      p.start,
		End:        p.end,
		Child:      p.child,
		RectLo:     p.rlo,
		RectHi:     p.rhi,
		PointCols:  p.pc,
		IDs:        p.ids,
	}
}

// ArenaBytes returns the approximate in-memory size of the packed arena's
// flat arrays (node metadata, routing rectangles, coordinate columns,
// ids) — the payload a snapshot serialises, excluding the dynamic nodes.
func (p *Packed) ArenaBytes() int64 {
	nodes := int64(len(p.level))
	rslots := int64(len(p.child))
	lslots := int64(len(p.ids))
	d := int64(p.dim)
	return nodes*(4+8+4+4) + // level, page, start, end
		rslots*4 + 2*d*rslots*8 + // child, rlo, rhi
		d*lslots*8 + lslots*8 + // pc, ids
		lslots*24 // pts slice headers (coordinates shared with the tree)
}

// countingWriter tracks bytes written for io.WriterTo bookkeeping.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// WriteTo serialises the packed arena as a single-tree (plain) snapshot
// in the format of internal/snapshot, implementing io.WriterTo. Sharded
// snapshots are assembled one layer up (internal/shard) from the same
// per-tree sections.
func (p *Packed) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	m := snapshot.Manifest{Kind: snapshot.KindPlain, Dim: p.dim, Points: p.size}
	err := snapshot.Write(cw, m, []*snapshot.Tree{p.Snapshot()})
	return cw.n, err
}

// ReadFrom loads a single-tree snapshot into p, implementing
// io.ReaderFrom: the receiver (typically zero) is overwritten with the
// deserialised arena, and p.Tree() returns the reconstructed dynamic
// tree. The rebuilt index answers every query with bit-identical
// results, costs and node-access counts to the tree that wrote the
// snapshot. A fresh unbuffered Accountant is attached; load through the
// public layer (gnn.OpenSnapshot) to configure buffering.
func (p *Packed) ReadFrom(r io.Reader) (int64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return int64(len(data)), err
	}
	m, trees, err := snapshot.Decode(data)
	if err != nil {
		return int64(len(data)), err
	}
	if m.Kind != snapshot.KindPlain {
		return int64(len(data)), fmt.Errorf("rtree: snapshot kind %v, want %v", m.Kind, snapshot.KindPlain)
	}
	loaded, err := PackedFromSnapshot(trees[0], m.Dim, Config{})
	if err != nil {
		return int64(len(data)), err
	}
	*p = *loaded
	return int64(len(data)), nil
}

// PackedFromSnapshot reconstructs a packed arena — and the dynamic tree
// around it — from a decoded snapshot tree. The arena arrays are adopted
// directly from st (zero rebuild); the dynamic nodes are materialised in
// one linear pass over the arena so that Insert, Delete and
// LayoutDynamic queries work on the loaded index exactly as on the
// writer's. cfg supplies runtime wiring only (Accountant,
// ReinsertFraction); the structural parameters (dimension, node
// capacity, page range) come from the snapshot.
//
// Page identifiers are preserved node for node and the entry order
// inside every node is the writer's, so traversals on the loaded index
// charge the same accesses in the same order: results, Cost and NA are
// bit-identical for both layouts.
func PackedFromSnapshot(st *snapshot.Tree, dim int, cfg Config) (*Packed, error) {
	cfg.Dim = dim
	cfg.MaxEntries = st.MaxEntries
	cfg.MinEntries = st.MinEntries
	cfg.FirstPage = pagestore.PageID(st.FirstPage)
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, fmt.Errorf("rtree: snapshot config: %w", err)
	}
	numNodes := len(st.Level)
	lslots := len(st.IDs)

	// Leaf points: one coordinate slab in point-major order, gathered from
	// the snapshot's axis-major columns. The packed arena and the dynamic
	// leaf entries share these exact slices, as after Tree.Pack.
	ptSlab := make([]float64, dim*lslots)
	pts := make([]geom.Point, lslots)
	for i := 0; i < lslots; i++ {
		pt := ptSlab[i*dim : (i+1)*dim : (i+1)*dim]
		for a := 0; a < dim; a++ {
			pt[a] = st.PointCols[a][i]
		}
		pts[i] = pt
	}

	pages := make([]pagestore.PageID, numNodes)
	maxPage := cfg.FirstPage + pagestore.PageID(st.Pages) - 1
	for i, pg := range st.Page {
		pages[i] = pagestore.PageID(pg)
		if pages[i] > maxPage {
			maxPage = pages[i]
		}
	}

	t := &Tree{
		cfg:      cfg,
		size:     st.Size,
		height:   st.Height,
		nextPage: maxPage + 1,
	}
	t.root = buildNodes(st, dim, pages, pts)

	p := &Packed{
		src: t, muts: t.muts, dim: dim, size: st.Size, height: st.Height,
		acct:  cfg.Accountant,
		root:  st.Root,
		level: st.Level,
		page:  pages,
		start: st.Start,
		end:   st.End,
		child: st.Child,
		rlo:   st.RectLo,
		rhi:   st.RectHi,
		pc:    st.PointCols,
		pts:   pts,
		ids:   st.IDs,
	}
	return p, nil
}

// buildNodes materialises the dynamic node structs from the arena and
// returns the root. The nodes and their entry/rectangle storage come
// from per-kind slabs: a handful of large allocations instead of one per
// node, which keeps cold-start loading fast. Entry slices are
// capacity-clipped, so a post-load Insert that overflows a node
// reallocates instead of clobbering its slab neighbour.
func buildNodes(st *snapshot.Tree, dim int, pages []pagestore.PageID, pts []geom.Point) *node {
	numNodes := len(st.Level)
	rslots := len(st.Child)
	lslots := len(st.IDs)

	nodes := make([]node, numNodes)
	entrySlab := make([]Entry, rslots+lslots)
	rectSlab := make([]float64, 2*dim*rslots) // lo+hi corners of every routing rect
	nextEntry := 0

	for i := 0; i < numNodes; i++ {
		n := &nodes[i]
		n.page = pages[i]
		n.level = int(st.Level[i])
		s, e := st.Start[i], st.End[i]
		cnt := int(e - s)
		ents := entrySlab[nextEntry : nextEntry+cnt : nextEntry+cnt]
		nextEntry += cnt
		if n.level == 0 {
			for j := 0; j < cnt; j++ {
				slot := s + int32(j)
				pt := pts[slot]
				ents[j] = Entry{Rect: geom.Rect{Lo: pt, Hi: pt}, Point: pt, ID: st.IDs[slot]}
			}
		} else {
			for j := 0; j < cnt; j++ {
				slot := s + int32(j)
				lo := rectSlab[2*dim*int(slot) : 2*dim*int(slot)+dim : 2*dim*int(slot)+dim]
				hi := rectSlab[2*dim*int(slot)+dim : 2*dim*int(slot)+2*dim : 2*dim*int(slot)+2*dim]
				for a := 0; a < dim; a++ {
					lo[a] = st.RectLo[a][slot]
					hi[a] = st.RectHi[a][slot]
				}
				ents[j] = Entry{Rect: geom.Rect{Lo: lo, Hi: hi}, child: &nodes[st.Child[slot]]}
			}
		}
		n.entries = ents
	}
	return &nodes[st.Root]
}
