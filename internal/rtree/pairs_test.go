package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"gnn/internal/geom"
	"gnn/internal/pagestore"
)

func TestClosestPairIteratorOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	ps := randPoints(rng, 150, 100)
	qs := randPoints(rng, 120, 100)
	tp := mustTree(t, Config{MaxEntries: 6})
	tq := mustTree(t, Config{MaxEntries: 6})
	insertAll(t, tp, ps)
	insertAll(t, tq, qs)

	want := make([]float64, 0, len(ps)*len(qs))
	for _, p := range ps {
		for _, q := range qs {
			want = append(want, geom.Dist(p, q))
		}
	}
	sort.Float64s(want)

	it, err := NewClosestPairIterator(tp, tq)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(want); i++ {
		pair, ok := it.Next()
		if !ok {
			t.Fatalf("iterator exhausted at %d of %d", i, len(want))
		}
		if !almostEq(pair.Dist, want[i]) {
			t.Fatalf("pair %d: dist %v, want %v", i, pair.Dist, want[i])
		}
		if !almostEq(geom.Dist(pair.P.Point, pair.Q.Point), pair.Dist) {
			t.Fatalf("pair %d: reported dist inconsistent with points", i)
		}
	}
	if _, ok := it.Next(); ok {
		t.Fatal("iterator yielded more than |P|·|Q| pairs")
	}
}

func TestClosestPairFirstResult(t *testing.T) {
	tp := mustTree(t, Config{MaxEntries: 4})
	tq := mustTree(t, Config{MaxEntries: 4})
	tp.Insert(geom.Point{0, 0}, 1)
	tp.Insert(geom.Point{10, 10}, 2)
	tq.Insert(geom.Point{0, 1}, 3)
	tq.Insert(geom.Point{50, 50}, 4)
	it, err := NewClosestPairIterator(tp, tq)
	if err != nil {
		t.Fatal(err)
	}
	pair, ok := it.Next()
	if !ok || pair.P.ID != 1 || pair.Q.ID != 3 || !almostEq(pair.Dist, 1) {
		t.Fatalf("first pair = %+v", pair)
	}
}

func TestClosestPairEmptyTree(t *testing.T) {
	tp := mustTree(t, Config{})
	tq := mustTree(t, Config{})
	tq.Insert(geom.Point{1, 1}, 1)
	it, err := NewClosestPairIterator(tp, tq)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.Next(); ok {
		t.Fatal("pairs from an empty tree")
	}
}

func TestClosestPairDimensionMismatch(t *testing.T) {
	tp := mustTree(t, Config{Dim: 2})
	tq := mustTree(t, Config{Dim: 3})
	if _, err := NewClosestPairIterator(tp, tq); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestClosestPairPeekAndHeapStats(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tp := mustTree(t, Config{MaxEntries: 6})
	tq := mustTree(t, Config{MaxEntries: 6})
	insertAll(t, tp, randPoints(rng, 80, 50))
	insertAll(t, tq, randPoints(rng, 80, 50))
	it, _ := NewClosestPairIterator(tp, tq)
	last := -1.0
	for i := 0; i < 100; i++ {
		if lb, ok := it.PeekDist(); ok && lb < last-1e-9 {
			t.Fatalf("PeekDist %v below last pair %v", lb, last)
		}
		pair, ok := it.Next()
		if !ok {
			break
		}
		last = pair.Dist
	}
	if it.HeapMax() < it.HeapLen() || it.HeapMax() == 0 {
		t.Fatalf("heap stats: max %d, len %d", it.HeapMax(), it.HeapLen())
	}
}

func TestClosestPairChargesBothCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	tp := mustTree(t, Config{MaxEntries: 6})
	tq := mustTree(t, Config{MaxEntries: 6})
	insertAll(t, tp, randPoints(rng, 300, 100))
	insertAll(t, tq, randPoints(rng, 300, 100))
	tp.Accountant().Reset()
	tq.Accountant().Reset()
	var tk pagestore.CostTracker
	it, _ := NewClosestPairIteratorReaders(tp.Reader(&tk), tq.Reader(&tk))
	for i := 0; i < 50; i++ {
		it.Next()
	}
	if tp.Accountant().Physical() == 0 || tq.Accountant().Physical() == 0 {
		t.Fatalf("accountants: P=%d Q=%d", tp.Accountant().Physical(), tq.Accountant().Physical())
	}
	if tk.Physical != tp.Accountant().Physical()+tq.Accountant().Physical() {
		t.Fatalf("shared tracker %d != P+Q aggregate %d",
			tk.Physical, tp.Accountant().Physical()+tq.Accountant().Physical())
	}
}
