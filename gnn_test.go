package gnn

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func randPoints(rng *rand.Rand, n int, span float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{rng.Float64() * span, rng.Float64() * span}
	}
	return pts
}

func TestQuickstartFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := randPoints(rng, 1000, 100)
	ix, err := BuildIndex(data, nil, IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 1000 || ix.Dim() != 2 {
		t.Fatalf("Len/Dim = %d/%d", ix.Len(), ix.Dim())
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	res, err := ix.GroupNN([]Point{{10, 10}, {20, 20}, {30, 10}}, WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatal("results not sorted")
		}
	}
	if cost := ix.Cost(); cost.NodeAccesses == 0 {
		t.Fatal("no node accesses recorded")
	}
	ix.ResetCost()
	if cost := ix.Cost(); cost.NodeAccesses != 0 {
		t.Fatal("ResetCost did not clear")
	}
}

func TestAllAlgorithmsAgreeViaPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := randPoints(rng, 800, 1000)
	ix, err := BuildIndex(data, nil, IndexConfig{NodeCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		query := randPoints(rng, 8, 300)
		var base []Result
		for _, algo := range []Algorithm{AlgoBruteForce, AlgoMQM, AlgoSPM, AlgoMBM, AlgoAuto} {
			res, err := ix.GroupNN(query, WithK(3), WithAlgorithm(algo))
			if err != nil {
				t.Fatalf("%v: %v", algo, err)
			}
			if base == nil {
				base = res
				continue
			}
			for i := range res {
				if math.Abs(res[i].Dist-base[i].Dist) > 1e-6 {
					t.Fatalf("%v: rank %d %v vs %v", algo, i, res[i].Dist, base[i].Dist)
				}
			}
		}
	}
}

func TestInsertDeleteRoundTrip(t *testing.T) {
	ix, err := NewIndex(IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	pts := randPoints(rng, 200, 50)
	for i, p := range pts {
		if err := ix.Insert(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !ix.Delete(pts[7], 7) {
		t.Fatal("Delete failed")
	}
	if ix.Delete(pts[7], 7) {
		t.Fatal("double Delete succeeded")
	}
	if ix.Len() != 199 {
		t.Fatalf("Len = %d", ix.Len())
	}
	lo, hi, ok := ix.Bounds()
	if !ok || len(lo) != 2 || len(hi) != 2 {
		t.Fatalf("Bounds = %v %v %v", lo, hi, ok)
	}
}

func TestNearestNeighbors(t *testing.T) {
	ix, _ := NewIndex(IndexConfig{})
	ix.Insert(Point{0, 0}, 1)
	ix.Insert(Point{5, 5}, 2)
	ix.Insert(Point{9, 9}, 3)
	res, err := ix.NearestNeighbors(Point{6, 6}, 2)
	if err != nil || len(res) != 2 || res[0].ID != 2 {
		t.Fatalf("NN = %+v, %v", res, err)
	}
	if _, err := ix.NearestNeighbors(Point{1, 2, 3}, 1); err == nil {
		t.Fatal("3-D query accepted")
	}
	if _, err := ix.NearestNeighbors(Point{1, 2}, 0); !errors.Is(err, ErrBadK) {
		t.Fatal("k=0 accepted")
	}
}

func TestIteratorMatchesGroupNN(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := randPoints(rng, 300, 100)
	ix, _ := BuildIndex(data, nil, IndexConfig{NodeCapacity: 8})
	query := randPoints(rng, 4, 50)
	want, _ := ix.GroupNN(query, WithK(10))
	it, err := ix.GroupNNIterator(query)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r, ok := it.Next()
		if !ok {
			t.Fatalf("iterator dry at %d", i)
		}
		if math.Abs(r.Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("rank %d: %v vs %v", i, r.Dist, want[i].Dist)
		}
	}
}

func TestAggregatesViaPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := randPoints(rng, 400, 100)
	ix, _ := BuildIndex(data, nil, IndexConfig{})
	query := randPoints(rng, 6, 60)
	for _, agg := range []Aggregate{SumDist, MaxDist, MinDist} {
		a, err := ix.GroupNN(query, WithAggregate(agg), WithK(2))
		if err != nil {
			t.Fatalf("%v: %v", agg, err)
		}
		b, err := ix.GroupNN(query, WithAggregate(agg), WithK(2), WithAlgorithm(AlgoBruteForce))
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if math.Abs(a[i].Dist-b[i].Dist) > 1e-9 {
				t.Fatalf("%v rank %d: %v vs %v", agg, i, a[i].Dist, b[i].Dist)
			}
		}
	}
	if _, err := ix.GroupNN(query, WithAggregate(MaxDist), WithAlgorithm(AlgoSPM)); !errors.Is(err, ErrUnsupportedAggregate) {
		t.Fatal("SPM accepted MaxDist")
	}
}

func TestDiskQueriesViaPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := randPoints(rng, 700, 1000)
	ix, _ := BuildIndex(data, nil, IndexConfig{NodeCapacity: 16})
	queryPts := randPoints(rng, 150, 400)
	qs, err := NewQuerySet(queryPts, QuerySetConfig{BlockPoints: 30})
	if err != nil {
		t.Fatal(err)
	}
	if qs.Len() != 150 || qs.Blocks() != 5 || qs.Pages() != 3 {
		t.Fatalf("QuerySet = %d/%d/%d", qs.Len(), qs.Blocks(), qs.Pages())
	}
	want, _ := ix.GroupNN(queryPts, WithK(3), WithAlgorithm(AlgoBruteForce))
	for _, algo := range []DiskAlgorithm{DiskFMQM, DiskFMBM, DiskAuto} {
		res, err := ix.GroupNNFromSet(qs, algo, WithK(3))
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		for i := range res {
			if math.Abs(res[i].Dist-want[i].Dist) > 1e-6 {
				t.Fatalf("%v rank %d: %v vs %v", algo, i, res[i].Dist, want[i].Dist)
			}
		}
	}
	if qs.Cost().NodeAccesses == 0 {
		t.Fatal("query set I/O not charged")
	}
	qs.ResetCost()
	if qs.Cost().NodeAccesses != 0 {
		t.Fatal("ResetCost failed")
	}
	// GCP through the public API.
	qix, _ := BuildIndex(queryPts, nil, IndexConfig{NodeCapacity: 16})
	res, err := ix.GroupNNClosestPairs(qix, 0, WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if math.Abs(res[i].Dist-want[i].Dist) > 1e-6 {
			t.Fatalf("GCP rank %d: %v vs %v", i, res[i].Dist, want[i].Dist)
		}
	}
	// Budget error surfaces.
	if _, err := ix.GroupNNClosestPairs(qix, 3); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("budget err = %v", err)
	}
	// Aggregates rejected on disk paths.
	if _, err := ix.GroupNNFromSet(qs, DiskFMBM, WithAggregate(MaxDist)); !errors.Is(err, ErrUnsupportedAggregate) {
		t.Fatal("disk Max accepted")
	}
}

func TestBufferedIndexCost(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := randPoints(rng, 2000, 1000)
	ix, _ := BuildIndex(data, nil, IndexConfig{NodeCapacity: 10, BufferPages: 4096})
	query := randPoints(rng, 4, 100)
	ix.ResetCostCold()
	ix.GroupNN(query)
	cold := ix.Cost()
	ix.ResetCost() // warm buffer
	ix.GroupNN(query)
	warm := ix.Cost()
	if warm.NodeAccesses != 0 || warm.BufferHits == 0 {
		t.Fatalf("warm cost = %+v", warm)
	}
	if cold.NodeAccesses == 0 {
		t.Fatalf("cold cost = %+v", cold)
	}
}

func TestAlgorithmStrings(t *testing.T) {
	if AlgoMQM.String() != "MQM" || AlgoAuto.String() != "auto" ||
		Algorithm(99).String() == "" {
		t.Fatal("Algorithm.String broken")
	}
	if DiskFMQM.String() != "F-MQM" || DiskAuto.String() != "auto" ||
		DiskAlgorithm(99).String() == "" {
		t.Fatal("DiskAlgorithm.String broken")
	}
}

func TestErrorsSurface(t *testing.T) {
	ix, _ := NewIndex(IndexConfig{})
	ix.Insert(Point{1, 1}, 1)
	if _, err := ix.GroupNN(nil); !errors.Is(err, ErrEmptyQuery) {
		t.Fatalf("empty query err = %v", err)
	}
	if _, err := ix.GroupNN([]Point{{1, 1}}, WithK(-1)); !errors.Is(err, ErrBadK) {
		t.Fatalf("bad k err = %v", err)
	}
	if _, err := NewQuerySet(nil, QuerySetConfig{}); !errors.Is(err, ErrEmptyQuery) {
		t.Fatalf("empty query set err = %v", err)
	}
}
