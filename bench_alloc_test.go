// Allocation benchmarks of the query kernels: one warm GNN query per
// iteration through the public API, per algorithm×aggregate. Run with
//
//	go test -run=NONE -bench=GroupNNAllocs -benchmem
//
// allocs/op is the steady-state allocation count of one query; the
// acceptance target for warm MBM (both traversals) is ≤ 10 on either
// layout, and CI pins the packed MBM cells to ≤ 4. Every cell runs on the
// dynamic and the packed layout. The same grid is snapshotted to
// BENCH_alloc.json / BENCH_packed.json by `gnnbench -allocs`.
package gnn_test

import (
	"testing"

	"gnn"
	"gnn/internal/dataset"
	"gnn/internal/workload"
)

// allocFixture builds the TS index (bench scale) and the paper's default
// workload (n = 64, M = 8%), shared by every sub-benchmark.
func allocFixture(b *testing.B) (*gnn.Index, [][]gnn.Point) {
	b.Helper()
	d, err := env().Dataset("TS")
	if err != nil {
		b.Fatal(err)
	}
	pts := make([]gnn.Point, len(d.Points))
	for i, p := range d.Points {
		pts[i] = gnn.Point(p)
	}
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
	if err != nil {
		b.Fatal(err)
	}
	qs, err := workload.Generate(workload.Spec{
		N: 64, AreaFraction: 0.08, Queries: 16,
		Workspace: dataset.Workspace(), Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	queries := make([][]gnn.Point, len(qs))
	for i, q := range qs {
		group := make([]gnn.Point, len(q.Points))
		for j, p := range q.Points {
			group[j] = gnn.Point(p)
		}
		queries[i] = group
	}
	return ix, queries
}

func BenchmarkGroupNNAllocs(b *testing.B) {
	ix, queries := allocFixture(b)
	cells := []struct {
		name string
		opts []gnn.QueryOption
	}{
		{"MBM-BF/sum", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM)}},
		{"MBM-DF/sum", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithDepthFirst()}},
		{"MBM-BF/max", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithAggregate(gnn.MaxDist)}},
		{"MBM-DF/min", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMBM), gnn.WithAggregate(gnn.MinDist), gnn.WithDepthFirst()}},
		{"SPM/sum", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoSPM)}},
		{"MQM/sum", []gnn.QueryOption{gnn.WithAlgorithm(gnn.AlgoMQM)}},
	}
	for _, layout := range []gnn.Layout{gnn.LayoutDynamic, gnn.LayoutPacked} {
		for _, cell := range cells {
			opts := append([]gnn.QueryOption{gnn.WithK(8), gnn.WithLayout(layout)}, cell.opts...)
			b.Run(cell.name+"/"+layout.String(), func(b *testing.B) {
				// Warm the pools so the measurement sees steady state.
				for _, q := range queries {
					if _, err := ix.GroupNN(q, opts...); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := ix.GroupNN(queries[i%len(queries)], opts...); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
