// Example coldstart: persist an index once, then serve from the snapshot
// without ever re-bulk-loading — the save-then-serve pattern of the
// README's "Persistence" section.
//
//	go run ./examples/coldstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"gnn"
)

func main() {
	dir, err := os.MkdirTemp("", "gnn-coldstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	snapPath := filepath.Join(dir, "places.snap")

	// ── Offline: build once, snapshot to disk. ────────────────────────────
	rng := rand.New(rand.NewSource(1))
	places := make([]gnn.Point, 200_000)
	for i := range places {
		places[i] = gnn.Point{rng.Float64() * 10_000, rng.Float64() * 10_000}
	}
	start := time.Now()
	ix, err := gnn.BuildIndex(places, nil, gnn.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)
	if err := ix.WriteSnapshotFile(snapPath); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(snapPath)
	fmt.Printf("built %d points in %v, snapshot %d KiB\n", ix.Len(), buildTime.Round(time.Millisecond), fi.Size()/1024)

	// ── Serving process: cold-start from the snapshot. ────────────────────
	start = time.Now()
	served, err := gnn.OpenSnapshotFile(snapPath)
	if err != nil {
		log.Fatal(err) // errors.Is(err, gnn.ErrSnapshotChecksum) etc. for triage
	}
	loadTime := time.Since(start)
	s := served.Stats()
	fmt.Printf("cold-started %d points in %v (%.0fx faster than rebuild): %d nodes, ~%d KiB arena\n",
		s.Points, loadTime.Round(time.Millisecond), buildTime.Seconds()/loadTime.Seconds(), s.Nodes, s.ArenaBytes/1024)

	// Same answers as the index that wrote the snapshot — bit for bit,
	// node access for node access.
	group := []gnn.Point{{2500, 2500}, {2600, 2400}, {2450, 2550}}
	res, cost, err := served.GroupNNWithCost(group, gnn.WithK(3))
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range res {
		fmt.Printf("%d. meeting point for the group: id=%d at (%.1f, %.1f), total distance %.1f\n",
			i+1, r.ID, r.Point[0], r.Point[1], r.Dist)
	}
	fmt.Printf("answered with %d node accesses\n", cost.NodeAccesses)
}
