// Example telemetry: the README's "Observability" section in one
// program — stand up the query daemon in-process, run a query storm
// with a traced request mixed in, scrape /metrics and parse the
// exposition with the strict round-trip parser, read the slow-query
// log back, and check the runtime block of /v1/stats.
//
// It uses the same internal/server engine as cmd/gnnserve, so against
// a real daemon every curl in the comments works verbatim.
//
//	go run ./examples/telemetry
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"

	"gnn"
	"gnn/internal/server"
	"gnn/internal/telemetry"
)

func main() {
	dir, err := os.MkdirTemp("", "gnn-telemetry")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// ── Offline: build a snapshot and stand up the daemon over it. ───────
	snap := filepath.Join(dir, "places.snap")
	writeSnapshot(snap, 50_000, 1)
	srv, err := server.New(server.Config{SnapshotPath: snap, SlowLogSize: 5})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	url := "http://" + ln.Addr().String()
	fmt.Printf("daemon serving %s at %s\n\n", filepath.Base(snap), url)

	// ── A query storm: 30 plain requests and one with "trace": true.
	// curl localhost:8080/v1/groupnn -d '{"query":[[…]],"k":3,"trace":true}'
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		post(url+"/v1/groupnn", queryBody(rng, false), nil)
	}
	var traced struct {
		Explain *gnn.QueryExplain `json:"explain"`
	}
	post(url+"/v1/groupnn", queryBody(rng, true), &traced)
	ex := traced.Explain
	fmt.Printf("traced query: %s/%s on the %s layout, %d stage(s), %d nodes visited, H2+H3 pruned %d\n",
		ex.Algorithm, ex.Aggregate, ex.Layout, len(ex.Stages),
		ex.Trace.NodesVisited, ex.Trace.NodesPrunedH2+ex.Trace.NodesPrunedH3)
	for _, st := range ex.Stages {
		fmt.Printf("  stage %-10s %6d µs\n", st.Name, st.DurationUS)
	}

	// ── Scrape /metrics and run the exposition through the same strict
	// parser CI round-trips every emitted line through.
	// curl localhost:8080/metrics
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	families, err := telemetry.ParseText(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatalf("exposition failed the strict parser: %v", err)
	}
	fmt.Printf("\n/metrics: %d families, all lines parse\n", len(families))
	byName := map[string]telemetry.Family{}
	names := make([]string, 0, len(families))
	for _, f := range families {
		byName[f.Name] = f
		names = append(names, f.Name)
	}
	sort.Strings(names)
	for _, n := range []string{"gnn_requests_total", "gnn_request_duration_us", "gnn_go_goroutines"} {
		f, ok := byName[n]
		if !ok {
			log.Fatalf("family %s missing from the exposition", n)
		}
		fmt.Printf("  %-24s %-9s %d sample(s)\n", f.Name, f.Type, len(f.Samples))
	}
	for _, s := range byName["gnn_requests_total"].Samples {
		// The full matrix is pre-registered (every endpoint × outcome);
		// print just the endpoint the storm hit.
		if s.Labels["endpoint"] == "groupnn" && s.Value > 0 {
			fmt.Printf("    requests{endpoint=%q,outcome=%q} = %.0f\n",
				s.Labels["endpoint"], s.Labels["outcome"], s.Value)
		}
	}

	// ── The slow-query log: the N slowest requests, each with its full
	// explain trace, slowest first.
	// curl localhost:8080/debug/slowlog
	var slow struct {
		Slowest []struct {
			ElapsedUS int64             `json:"elapsed_us"`
			Algo      string            `json:"algo"`
			Explain   *gnn.QueryExplain `json:"explain"`
		} `json:"slowest"`
	}
	get(url+"/debug/slowlog", &slow)
	fmt.Printf("\n/debug/slowlog: %d retained\n", len(slow.Slowest))
	for i, e := range slow.Slowest {
		fmt.Printf("  #%d  %6d µs  %s  (%d stages in trace)\n",
			i+1, e.ElapsedUS, e.Algo, len(e.Explain.Stages))
	}

	// ── The runtime block of /v1/stats: same numbers the gnn_go_*
	// families export, for consumers that speak JSON rather than
	// Prometheus.  curl localhost:8080/v1/stats
	var stats struct {
		Runtime struct {
			Goroutines    int     `json:"goroutines"`
			HeapBytes     uint64  `json:"heap_bytes"`
			UptimeSeconds float64 `json:"uptime_seconds"`
		} `json:"runtime"`
	}
	get(url+"/v1/stats", &stats)
	fmt.Printf("\n/v1/stats runtime: %d goroutines, %.1f MiB heap, up %.2fs\n",
		stats.Runtime.Goroutines, float64(stats.Runtime.HeapBytes)/(1<<20),
		stats.Runtime.UptimeSeconds)
}

// queryBody builds one /v1/groupnn request: a 3-attendee meeting-point
// query, optionally with the explain trace echoed back.
func queryBody(rng *rand.Rand, trace bool) []byte {
	group := make([][]float64, 3)
	for i := range group {
		group[i] = []float64{rng.Float64() * 10_000, rng.Float64() * 10_000}
	}
	b, err := json.Marshal(map[string]any{"query": group, "k": 3, "trace": trace})
	if err != nil {
		log.Fatal(err)
	}
	return b
}

func post(url string, body []byte, out any) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: %s", url, resp.Status)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			log.Fatal(err)
		}
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

// writeSnapshot builds an index over n uniform points and persists it.
func writeSnapshot(path string, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]gnn.Point, n)
	for i := range pts {
		pts[i] = gnn.Point{rng.Float64() * 10_000, rng.Float64() * 10_000}
	}
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()
	if err := ix.WriteSnapshotFile(path); err != nil {
		log.Fatal(err)
	}
}
