// Quickstart: index a point set, run a group nearest neighbor query, and
// inspect the cost — the smallest end-to-end use of the gnn library.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gnn"
)

func main() {
	// A data set P: 10,000 random facilities in a 1,000 × 1,000 map.
	rng := rand.New(rand.NewSource(7))
	facilities := make([]gnn.Point, 10_000)
	for i := range facilities {
		facilities[i] = gnn.Point{rng.Float64() * 1000, rng.Float64() * 1000}
	}

	// Bulk-load an R*-tree index (50 entries/node, the paper's setup).
	ix, err := gnn.BuildIndex(facilities, nil, gnn.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// A query group Q: three user locations.
	users := []gnn.Point{{120, 700}, {180, 640}, {95, 660}}

	// The GNN: the facility minimising the SUM of distances to all users.
	res, err := ix.GroupNN(users, gnn.WithK(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("three best meeting facilities (total travel distance):")
	for i, r := range res {
		fmt.Printf("  %d. facility #%d at (%.1f, %.1f) — total distance %.1f\n",
			i+1, r.ID, r.Point[0], r.Point[1], r.Dist)
	}

	// The same query, counting simulated disk accesses like the paper.
	ix.ResetCost()
	if _, err := ix.GroupNN(users); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost of the k=1 query: %d node accesses over %d indexed points (structure: %s)\n",
		ix.Cost().NodeAccesses, ix.Len(), mustInvariants(ix))
}

// mustInvariants double-checks the index structure and returns a short
// status string for the demo output.
func mustInvariants(ix *gnn.Index) string {
	if err := ix.CheckInvariants(); err != nil {
		return "INVALID: " + err.Error()
	}
	return "ok"
}
