// Example serve: the full lifecycle of the README's "Serving" section
// in one program — build a snapshot, stand up the query daemon over
// it, query it over HTTP with a deadline, hot-reload a new snapshot
// under load, watch a corrupt reload get rejected, and drain.
//
// It uses the same internal/server engine as cmd/gnnserve, in-process
// so the walkthrough is self-contained; against a real daemon every
// curl in the comments works verbatim.
//
//	go run ./examples/serve
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"gnn"
	"gnn/internal/server"
)

func main() {
	dir, err := os.MkdirTemp("", "gnn-serve")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// ── Offline: build two generations of the index. ──────────────────────
	snapV1 := filepath.Join(dir, "places_v1.snap")
	snapV2 := filepath.Join(dir, "places_v2.snap")
	writeSnapshot(snapV1, 100_000, 1)
	writeSnapshot(snapV2, 120_000, 2) // "tonight's rebuild"

	// ── Start the daemon. cmd/gnnserve does exactly this behind its
	// flags; -max-inflight and -queue-wait bound concurrent execution.
	srv, err := server.New(server.Config{SnapshotPath: snapV1})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	url := "http://" + ln.Addr().String()
	fmt.Printf("daemon serving %s at %s\n\n", filepath.Base(snapV1), url)

	// ── Query: POST /v1/groupnn. The group is three meeting attendees;
	// the answer is the point minimising the sum of their distances.
	//
	//	curl -s $URL/v1/groupnn -d '{"query":[[2000,3000],[2500,3500],[1800,2900]],"k":3,"timeout_ms":500}'
	var q1 struct {
		Results []struct {
			ID   int64     `json:"id"`
			Dist float64   `json:"dist"`
			Pt   []float64 `json:"point"`
		} `json:"results"`
		Generation uint64 `json:"generation"`
	}
	post(url+"/v1/groupnn",
		`{"query":[[2000,3000],[2500,3500],[1800,2900]],"k":3,"timeout_ms":500}`, &q1)
	fmt.Printf("generation %d answered k=3:\n", q1.Generation)
	for i, r := range q1.Results {
		fmt.Printf("  %d. id=%-7d (%.1f, %.1f)  sum-dist=%.1f\n",
			i+1, r.ID, r.Pt[0], r.Pt[1], r.Dist)
	}

	// ── A corrupt reload is rejected; the daemon keeps serving v1. ────────
	//
	//	curl -s $URL/admin/reload -d '{"path":"broken.snap"}'   # → 409
	broken := filepath.Join(dir, "broken.snap")
	raw, _ := os.ReadFile(snapV2)
	raw[len(raw)/2] ^= 0x40 // one flipped bit, deep in the payload
	os.WriteFile(broken, raw, 0o644)
	resp := postRaw(url+"/admin/reload", fmt.Sprintf(`{"path":%q}`, broken))
	fmt.Printf("\nreload of bit-flipped snapshot: HTTP %d (still serving v1)\n", resp)

	// ── The good reload swaps atomically; in-flight v1 queries finish
	// on v1, the old mapping unmaps after the last one releases it.
	//
	//	curl -s $URL/admin/reload -d '{"path":"places_v2.snap"}'
	var rl struct {
		Generation uint64 `json:"generation"`
		Points     int    `json:"points"`
	}
	post(url+"/admin/reload", fmt.Sprintf(`{"path":%q}`, snapV2), &rl)
	fmt.Printf("reloaded: generation %d, %d points\n", rl.Generation, rl.Points)

	// ── Stats: counters, reload health, latency percentiles. ──────────────
	//
	//	curl -s $URL/v1/stats
	var st struct {
		Requests struct {
			Served uint64 `json:"served"`
		} `json:"requests"`
		Reload struct {
			OK     uint64 `json:"ok"`
			Failed uint64 `json:"failed"`
		} `json:"reload"`
	}
	get(url+"/v1/stats", &st)
	fmt.Printf("stats: %d served, reloads ok=%d failed=%d\n",
		st.Requests.Served, st.Reload.OK, st.Reload.Failed)

	// ── Drain: what SIGTERM does in cmd/gnnserve. readyz flips to 503
	// so load balancers stop routing, in-flight queries finish, then
	// the mapping is released.
	srv.NotReady()
	fmt.Printf("draining: readyz now %d, query now %d\n",
		getStatus(url+"/readyz"), postRaw(url+"/v1/groupnn", `{"query":[[1,1]]}`))
}

// writeSnapshot builds an index over n clustered points and persists it.
func writeSnapshot(path string, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]gnn.Point, n)
	for i := range pts {
		cx, cy := float64(rng.Intn(10))*1000, float64(rng.Intn(10))*1000
		pts[i] = gnn.Point{cx + rng.Float64()*800, cy + rng.Float64()*800}
	}
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	if err := ix.WriteSnapshotFile(path); err != nil {
		log.Fatal(err)
	}
}

func post(url, body string, into any) {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		log.Fatalf("POST %s: HTTP %d: %s", url, resp.StatusCode, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		log.Fatal(err)
	}
}

// postRaw posts and returns just the status code (for requests whose
// failure is the point).
func postRaw(url, body string) int {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

func get(url string, into any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		log.Fatal(err)
	}
}

func getStatus(url string) int {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}
