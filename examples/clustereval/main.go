// Cluster evaluation: the paper's §1 notes that in clustering "the quality
// of a solution can be evaluated by the distances between the points and
// their nearest cluster centroid". This example runs a small k-means over
// a point set and then uses GNN queries to find each cluster's MEDOID —
// the actual data point minimising the sum of distances to the cluster's
// members, which is exactly a GNN query with the cluster as the query
// group. Comparing the medoid cost against the centroid cost grades the
// clustering.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"gnn"
)

const (
	numPoints   = 8000
	numClusters = 6
	kmeansIters = 12
)

func main() {
	rng := rand.New(rand.NewSource(99))

	// Ground truth: six Gaussian blobs.
	var pts []gnn.Point
	for c := 0; c < numClusters; c++ {
		cx, cy := rng.Float64()*1000, rng.Float64()*1000
		for j := 0; j < numPoints/numClusters; j++ {
			pts = append(pts, gnn.Point{cx + rng.NormFloat64()*30, cy + rng.NormFloat64()*30})
		}
	}
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// Plain Lloyd's k-means on the raw points.
	centroids := kmeans(rng, pts, numClusters, kmeansIters)
	assign := assignments(pts, centroids)

	fmt.Println("cluster   size   centroid-cost   medoid (GNN)   medoid-cost   ratio")
	var totCentroid, totMedoid float64
	for c := 0; c < numClusters; c++ {
		var members []gnn.Point
		for i, a := range assign {
			if a == c {
				members = append(members, pts[i])
			}
		}
		if len(members) == 0 {
			continue
		}
		centroidCost := sumDist(centroids[c], members)

		// The medoid of the cluster = GNN of the member group over P.
		// (Using the whole indexed set P is fine: the medoid of a compact
		// cluster is always one of its own members.)
		res, err := ix.GroupNN(members)
		if err != nil {
			log.Fatal(err)
		}
		medoidCost := res[0].Dist
		totCentroid += centroidCost
		totMedoid += medoidCost
		fmt.Printf("%7d  %5d  %14.0f   #%-11d  %11.0f   %.4f\n",
			c, len(members), centroidCost, res[0].ID, medoidCost, medoidCost/centroidCost)
	}
	fmt.Printf("\ntotal: centroid cost %.0f vs medoid cost %.0f (ratio %.4f)\n",
		totCentroid, totMedoid, totMedoid/totCentroid)
	fmt.Println("a ratio near 1.0 means the continuous centroids are nearly realisable")
	fmt.Println("by actual data points — a sign of compact, well-separated clusters.")
}

func kmeans(rng *rand.Rand, pts []gnn.Point, k, iters int) []gnn.Point {
	centroids := make([]gnn.Point, k)
	for i := range centroids {
		p := pts[rng.Intn(len(pts))]
		centroids[i] = gnn.Point{p[0], p[1]}
	}
	for it := 0; it < iters; it++ {
		assign := assignments(pts, centroids)
		sums := make([][3]float64, k) // x, y, count
		for i, a := range assign {
			sums[a][0] += pts[i][0]
			sums[a][1] += pts[i][1]
			sums[a][2]++
		}
		for c := range centroids {
			if sums[c][2] > 0 {
				centroids[c] = gnn.Point{sums[c][0] / sums[c][2], sums[c][1] / sums[c][2]}
			}
		}
	}
	return centroids
}

func assignments(pts, centroids []gnn.Point) []int {
	out := make([]int, len(pts))
	for i, p := range pts {
		best, bestD := 0, math.Inf(1)
		for c, q := range centroids {
			d := math.Hypot(p[0]-q[0], p[1]-q[1])
			if d < bestD {
				best, bestD = c, d
			}
		}
		out[i] = best
	}
	return out
}

func sumDist(q gnn.Point, members []gnn.Point) float64 {
	var s float64
	for _, m := range members {
		s += math.Hypot(q[0]-m[0], q[1]-m[1])
	}
	return s
}
