// Meeting point: the paper's §1 motivating scenario. A group of users
// spread over a city wants the restaurant minimising their total travel
// distance. The example compares the three memory-resident algorithms
// (MQM, SPM, MBM) on the same query — identical answers, very different
// node-access costs — and then uses the incremental iterator to page
// through further options, and the MAX aggregate to instead minimise the
// farthest user's trip.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gnn"
)

func main() {
	// 25,000 restaurants clustered around a few nightlife districts.
	rng := rand.New(rand.NewSource(2004))
	var restaurants []gnn.Point
	for len(restaurants) < 25_000 {
		cx, cy := rng.Float64()*10_000, rng.Float64()*10_000
		for j := 0; j < 40 && len(restaurants) < 25_000; j++ {
			restaurants = append(restaurants, gnn.Point{
				cx + rng.NormFloat64()*150,
				cy + rng.NormFloat64()*150,
			})
		}
	}
	ix, err := gnn.BuildIndex(restaurants, nil, gnn.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}

	// Eight users scattered across one quadrant of the city.
	users := make([]gnn.Point, 8)
	for i := range users {
		users[i] = gnn.Point{2000 + rng.Float64()*3000, 2000 + rng.Float64()*3000}
	}
	fmt.Println("users:")
	for i, u := range users {
		fmt.Printf("  user %d at (%.0f, %.0f)\n", i+1, u[0], u[1])
	}

	// All three algorithms agree; their I/O costs differ.
	fmt.Println("\nalgorithm comparison (same answer, different cost):")
	for _, algo := range []gnn.Algorithm{gnn.AlgoMQM, gnn.AlgoSPM, gnn.AlgoMBM} {
		ix.ResetCost()
		res, err := ix.GroupNN(users, gnn.WithAlgorithm(algo))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4s → restaurant #%d, total travel %.0f, %d node accesses\n",
			algo, res[0].ID, res[0].Dist, ix.Cost().NodeAccesses)
	}

	// Incremental browsing: "show me more options" without fixing k.
	it, err := ix.GroupNNIterator(users)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop 5 options, streamed incrementally:")
	for i := 0; i < 5; i++ {
		r, ok := it.Next()
		if !ok {
			break
		}
		fmt.Printf("  %d. restaurant #%d — total travel %.0f\n", i+1, r.ID, r.Dist)
	}

	// Fairness variant: minimise the FARTHEST user's trip instead.
	res, err := ix.GroupNN(users, gnn.WithAggregate(gnn.MaxDist))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfairest choice (min-max distance): restaurant #%d, farthest user travels %.0f\n",
		res[0].ID, res[0].Dist)
}
