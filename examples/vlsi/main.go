// VLSI component placement: §1 cites [NO97] — "the operability and speed
// of very large circuits depends on the relative distance between the
// various components in them. GNN can be applied to detect abnormalities
// and guide relocation of components."
//
// This example models a die with thousands of placed standard cells and a
// set of signal pins that a new buffer must connect to. A SUM-aggregate
// GNN finds the free slot minimising total wire length; a MAX-aggregate
// GNN finds the slot minimising the worst single wire (the timing-critical
// metric). It also scans for "abnormal" nets whose current buffer is far
// from its GNN-optimal slot — the relocation candidates.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"gnn"
)

func main() {
	rng := rand.New(rand.NewSource(1997))

	// A 10mm × 10mm die (coordinates in µm) with 40,000 legal slots on a
	// routing grid, jittered to mimic placement blockages.
	var slots []gnn.Point
	for x := 0; x < 200; x++ {
		for y := 0; y < 200; y++ {
			if rng.Float64() < 0.08 {
				continue // blocked site
			}
			slots = append(slots, gnn.Point{
				float64(x)*50 + rng.Float64()*10,
				float64(y)*50 + rng.Float64()*10,
			})
		}
	}
	ix, err := gnn.BuildIndex(slots, nil, gnn.IndexConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("die: %d legal slots\n", ix.Len())

	// Net 1: a buffer driving 6 pins spread over one corner.
	pins := make([]gnn.Point, 6)
	for i := range pins {
		pins[i] = gnn.Point{1000 + rng.Float64()*2000, 1000 + rng.Float64()*2000}
	}

	sum, err := ix.GroupNN(pins)
	if err != nil {
		log.Fatal(err)
	}
	maxr, err := ix.GroupNN(pins, gnn.WithAggregate(gnn.MaxDist))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnet with %d pins:\n", len(pins))
	fmt.Printf("  min-total-wire slot  #%-6d (%.0f, %.0f)  total %.0f µm\n",
		sum[0].ID, sum[0].Point[0], sum[0].Point[1], sum[0].Dist)
	fmt.Printf("  min-worst-wire slot  #%-6d (%.0f, %.0f)  worst %.0f µm\n",
		maxr[0].ID, maxr[0].Point[0], maxr[0].Point[1], maxr[0].Dist)

	// Abnormality scan: 50 existing nets, each with a current buffer slot;
	// flag nets whose buffer exceeds the GNN optimum by > 25%.
	fmt.Println("\nabnormality scan (relocation candidates):")
	flagged := 0
	for net := 0; net < 50; net++ {
		nPins := 3 + rng.Intn(5)
		netPins := make([]gnn.Point, nPins)
		cx, cy := rng.Float64()*9000, rng.Float64()*9000
		for i := range netPins {
			netPins[i] = gnn.Point{cx + rng.Float64()*800, cy + rng.Float64()*800}
		}
		// Current buffer: sometimes badly placed.
		cur := gnn.Point{cx + rng.Float64()*800, cy + rng.Float64()*800}
		if rng.Float64() < 0.2 {
			cur = gnn.Point{rng.Float64() * 10000, rng.Float64() * 10000} // legacy placement
		}
		curCost := totalWire(cur, netPins)
		best, err := ix.GroupNN(netPins)
		if err != nil {
			log.Fatal(err)
		}
		if curCost > best[0].Dist*1.25 {
			flagged++
			fmt.Printf("  net %2d: current %.0f µm vs optimal %.0f µm (%.1fx) → relocate to #%d\n",
				net, curCost, best[0].Dist, curCost/best[0].Dist, best[0].ID)
		}
	}
	fmt.Printf("%d of 50 nets flagged for relocation\n", flagged)
}

func totalWire(buf gnn.Point, pins []gnn.Point) float64 {
	var s float64
	for _, p := range pins {
		s += math.Hypot(buf[0]-p[0], buf[1]-p[1])
	}
	return s
}
