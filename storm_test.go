package gnn_test

// Read/write storms: concurrent queries, iterators, inserts, deletes,
// Pack, and background compaction on one index, run under -race in CI.
// The contracts: zero failed queries, every query result internally
// consistent (a snapshot of SOME published view), final Len equal to the
// serial expectation, and invariants intact afterwards.

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"gnn"
)

// TestPackRaceRegression: Pack used to rebuild the tree in place under
// readers. Now it publishes a fresh view; concurrent queries must never
// error or observe a half-built base.
func TestPackRaceRegression(t *testing.T) {
	pts, groups, _ := overlayFixture(t, 2000, 91)
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Seed an overlay so every Pack has real folding work.
	for i := 0; i < 50; i++ {
		if err := ix.Insert(gnn.Point{float64(i), float64(i)}, int64(50_000+i)); err != nil {
			t.Fatal(err)
		}
	}
	want, err := ix.GroupNN(groups[0], gnn.WithK(5))
	if err != nil {
		t.Fatal(err)
	}

	var fails atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := ix.GroupNN(groups[0], gnn.WithK(5))
				if err != nil || len(got) != len(want) {
					fails.Add(1)
					return
				}
				// The live multiset never changes across Packs, so results
				// must be identical throughout.
				for i := range got {
					if got[i].ID != want[i].ID {
						fails.Add(1)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		ix.Pack()
	}
	close(stop)
	wg.Wait()
	if n := fails.Load(); n != 0 {
		t.Fatalf("%d readers failed or diverged during concurrent Pack", n)
	}
	if !ix.IsPacked() {
		t.Fatal("index not packed")
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// runStorm drives nWriters mutator goroutines (disjoint id ranges, so
// the final live count is exact) against nReaders query goroutines.
func runStorm(t *testing.T, mutate func(w, i int) bool, query func(r int) error, nWriters, nReaders, perWriter int) {
	t.Helper()
	var qerrs atomic.Int64
	stop := make(chan struct{})
	var rg sync.WaitGroup
	for r := 0; r < nReaders; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := query(r); err != nil {
					qerrs.Add(1)
					return
				}
			}
		}(r)
	}
	var wgw sync.WaitGroup
	for w := 0; w < nWriters; w++ {
		wgw.Add(1)
		go func(w int) {
			defer wgw.Done()
			for i := 0; i < perWriter; i++ {
				if !mutate(w, i) {
					return
				}
			}
		}(w)
	}
	wgw.Wait()
	close(stop)
	rg.Wait()
	if n := qerrs.Load(); n != 0 {
		t.Fatalf("%d queries failed during storm", n)
	}
}

// TestReadWriteStormPlain: mixed insert/delete traffic with a background
// compactor on a small threshold, plus Pack and synchronous Compact
// thrown in from the writers, while readers run queries, NN lookups, and
// iterators. Zero query failures; exact final Len.
func TestReadWriteStormPlain(t *testing.T) {
	pts, groups, _ := overlayFixture(t, 1000, 92)
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.StartCompactor(gnn.CompactorConfig{Threshold: 64}); err != nil {
		t.Fatal(err)
	}
	const nWriters, perWriter = 4, 150
	mutate := func(w, i int) bool {
		id := int64(10_000 + w*perWriter + i)
		p := gnn.Point{float64(id%97) + 0.5, float64(id%89) + 0.25}
		if err := ix.Insert(p, id); err != nil {
			t.Errorf("insert %d: %v", id, err)
			return false
		}
		switch i % 10 {
		case 3:
			// Delete the point this writer just inserted: net zero.
			if !ix.Delete(p, id) {
				t.Errorf("delete %d failed", id)
				return false
			}
			if err := ix.Insert(p, id); err != nil {
				t.Errorf("reinsert %d: %v", id, err)
				return false
			}
		case 7:
			if err := ix.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return false
			}
		case 9:
			ix.Pack()
		}
		return true
	}
	query := func(r int) error {
		switch r % 3 {
		case 0:
			_, err := ix.GroupNN(groups[r%len(groups)], gnn.WithK(4))
			return err
		case 1:
			_, err := ix.NearestNeighbors(gnn.Point{50, 50}, 3)
			return err
		default:
			it, err := ix.GroupNNIterator(groups[r%len(groups)])
			if err != nil {
				return err
			}
			defer it.Close()
			for i := 0; i < 8; i++ {
				if _, ok := it.Next(); !ok {
					break
				}
			}
			return nil
		}
	}
	runStorm(t, mutate, query, nWriters, 6, perWriter)
	ix.StopCompactor()
	if got, want := ix.Len(), 1000+nWriters*perWriter; got != want {
		t.Fatalf("final Len %d, want %d", got, want)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Graceful degradation left no backlog the compactor can't clear.
	if err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	if s := ix.Stats(); s.Delta != 0 || s.Tombstones != 0 {
		t.Fatalf("overlay not drained after final compaction: %+v", s)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReadWriteStormSharded: the same storm against the sharded index.
func TestReadWriteStormSharded(t *testing.T) {
	pts, groups, _ := overlayFixture(t, 1000, 93)
	sx, err := gnn.BuildShardedIndex(pts, nil, 3, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sx.StartCompactor(gnn.CompactorConfig{Threshold: 64}); err != nil {
		t.Fatal(err)
	}
	const nWriters, perWriter = 4, 100
	mutate := func(w, i int) bool {
		id := int64(20_000 + w*perWriter + i)
		p := gnn.Point{float64(id%97) + 0.5, float64(id%89) + 0.25}
		if err := sx.Insert(p, id); err != nil {
			t.Errorf("insert %d: %v", id, err)
			return false
		}
		switch i % 10 {
		case 3:
			if !sx.Delete(p, id) {
				t.Errorf("delete %d failed", id)
				return false
			}
			if err := sx.Insert(p, id); err != nil {
				t.Errorf("reinsert %d: %v", id, err)
				return false
			}
		case 7:
			if err := sx.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return false
			}
		}
		return true
	}
	query := func(r int) error {
		if r%2 == 0 {
			_, err := sx.GroupNN(groups[r%len(groups)], gnn.WithK(4))
			return err
		}
		it, err := sx.GroupNNIterator(groups[r%len(groups)])
		if err != nil {
			return err
		}
		defer it.Close()
		for i := 0; i < 8; i++ {
			if _, ok := it.Next(); !ok {
				break
			}
		}
		return nil
	}
	runStorm(t, mutate, query, nWriters, 6, perWriter)
	sx.StopCompactor()
	if got, want := sx.Len(), 1000+nWriters*perWriter; got != want {
		t.Fatalf("final Len %d, want %d", got, want)
	}
	if err := sx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := sx.Compact(); err != nil {
		t.Fatal(err)
	}
	if s := sx.Stats(); s.Delta != 0 || s.Tombstones != 0 {
		t.Fatalf("overlay not drained after final compaction: %+v", s)
	}
	if err := sx.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseDuringCompaction: Close must wait for the in-flight cycle
// (the rebuild reads the base the drain protects) and leave no goroutine
// behind. Loop a few times to give the race detector material.
func TestCloseDuringCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	for round := 0; round < 5; round++ {
		pts := make([]gnn.Point, 500)
		for i := range pts {
			pts[i] = gnn.Point{rng.Float64() * 100, rng.Float64() * 100}
		}
		ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.StartCompactor(gnn.CompactorConfig{Threshold: 4}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 32; i++ {
			if err := ix.Insert(gnn.Point{rng.Float64() * 100, rng.Float64() * 100}, int64(30_000+i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := ix.Close(); err != nil {
			t.Fatal(err)
		}
		// Close on a heap index stops the compactor but keeps the index
		// usable (only mapped indexes tear down their arena). Writes and
		// manual compaction still work; no background goroutine remains.
		if err := ix.Insert(gnn.Point{1, 1}, int64(40_000+round)); err != nil {
			t.Fatalf("insert after Close on heap index: %v", err)
		}
		if err := ix.Compact(); err != nil {
			t.Fatalf("compact after Close on heap index: %v", err)
		}
	}
}
