package gnn_test

import (
	"fmt"

	"gnn"
)

// The basic GNN query: which facility minimises the total travel distance
// of three users?
func ExampleIndex_GroupNN() {
	facilities := []gnn.Point{{0, 0}, {10, 10}, {50, 50}, {11, 9}}
	ix, _ := gnn.BuildIndex(facilities, nil, gnn.IndexConfig{})

	users := []gnn.Point{{8, 8}, {12, 12}, {10, 11}}
	res, _ := ix.GroupNN(users)
	fmt.Printf("facility #%d, total distance %.2f\n", res[0].ID, res[0].Dist)
	// Output:
	// facility #1, total distance 6.66
}

// Streaming results in ascending distance without fixing k in advance.
func ExampleIndex_GroupNNIterator() {
	data := []gnn.Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	ix, _ := gnn.BuildIndex(data, nil, gnn.IndexConfig{})
	it, _ := ix.GroupNNIterator([]gnn.Point{{1, 1}, {2, 3}})
	for i := 0; i < 3; i++ {
		r, _ := it.Next()
		fmt.Printf("#%d at distance %.2f\n", r.ID, r.Dist)
	}
	// Output:
	// #1 at distance 2.24
	// #2 at distance 2.41
	// #3 at distance 3.83
}

// MAX-aggregate: minimise the farthest group member's distance instead of
// the total.
func ExampleWithAggregate() {
	data := []gnn.Point{{5, 0}, {0, 5}, {3, 3}}
	ix, _ := gnn.BuildIndex(data, nil, gnn.IndexConfig{})
	group := []gnn.Point{{0, 0}, {6, 6}}
	sum, _ := ix.GroupNN(group) // default SUM
	max, _ := ix.GroupNN(group, gnn.WithAggregate(gnn.MaxDist))
	fmt.Printf("sum-optimal #%d, max-optimal #%d\n", sum[0].ID, max[0].ID)
	// Output:
	// sum-optimal #2, max-optimal #2
}

// Sharded serving: the same query surface over a Hilbert-partitioned set
// of independent packed R-trees. Results are identical to a plain Index;
// the shards prune each other through a shared best-distance bound and
// the reported cost is the exact sum of per-shard node accesses.
func ExampleBuildShardedIndex() {
	places := make([]gnn.Point, 0, 400)
	for x := 0; x < 20; x++ {
		for y := 0; y < 20; y++ {
			places = append(places, gnn.Point{float64(x * 5), float64(y * 5)})
		}
	}
	sx, _ := gnn.BuildShardedIndex(places, nil, 4, gnn.IndexConfig{})

	users := []gnn.Point{{12, 14}, {18, 11}, {16, 19}}
	res, cost, _ := sx.GroupNNWithCost(users, gnn.WithK(2))
	fmt.Printf("%d shards of %v points\n", sx.NumShards(), sx.ShardSizes())
	for _, r := range res {
		fmt.Printf("place #%d at total distance %.2f\n", r.ID, r.Dist)
	}
	fmt.Printf("charged node accesses: %v\n", cost.NodeAccesses > 0)
	// Output:
	// 4 shards of [100 100 100 100] points
	// place #63 at total distance 12.29
	// place #62 at total distance 17.22
	// charged node accesses: true
}

// Weighted groups: a user who counts double pulls the answer closer.
func ExampleWithWeights() {
	data := []gnn.Point{{0, 0}, {8, 0}}
	ix, _ := gnn.BuildIndex(data, nil, gnn.IndexConfig{})
	group := []gnn.Point{{1, 0}, {9, 0}}
	even, _ := ix.GroupNN(group)
	left, _ := ix.GroupNN(group, gnn.WithWeights([]float64{10, 1}))
	fmt.Printf("even weights → #%d, left-heavy → #%d\n", even[0].ID, left[0].ID)
	// Output:
	// even weights → #1, left-heavy → #0
}
