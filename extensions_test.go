package gnn

import (
	"math"
	"math/rand"
	"testing"
)

func TestWeightedQueriesPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	data := randPoints(rng, 500, 1000)
	ix, _ := BuildIndex(data, nil, IndexConfig{NodeCapacity: 8})
	query := randPoints(rng, 4, 300)
	w := []float64{3, 1, 1, 0.5}

	want, err := ix.GroupNN(query, WithWeights(w), WithAlgorithm(AlgoBruteForce), WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{AlgoMQM, AlgoSPM, AlgoMBM} {
		got, err := ix.GroupNN(query, WithWeights(w), WithAlgorithm(algo), WithK(3))
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-6 {
				t.Fatalf("%v rank %d: %v vs %v", algo, i, got[i].Dist, want[i].Dist)
			}
		}
	}
	// Bad weights surface as errors.
	if _, err := ix.GroupNN(query, WithWeights([]float64{1})); err == nil {
		t.Fatal("short weight vector accepted")
	}
}

func TestConstrainedQueriesPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	data := randPoints(rng, 800, 1000)
	ix, _ := BuildIndex(data, nil, IndexConfig{NodeCapacity: 8})
	query := randPoints(rng, 5, 400)

	res, err := ix.GroupNN(query, WithRegion(Point{200, 200}, Point{600, 600}), WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results in a populated region")
	}
	for _, r := range res {
		if r.Point[0] < 200 || r.Point[0] > 600 || r.Point[1] < 200 || r.Point[1] > 600 {
			t.Fatalf("out-of-region result %v", r.Point)
		}
	}
	// The unconstrained best must be at least as good.
	free, _ := ix.GroupNN(query)
	if free[0].Dist > res[0].Dist+1e-9 {
		t.Fatalf("constraint improved the optimum: %v vs %v", free[0].Dist, res[0].Dist)
	}
	// The iterator honours the region too.
	it, err := ix.GroupNNIterator(query, WithRegion(Point{200, 200}, Point{600, 600}))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := it.Next()
	if !ok || math.Abs(r.Dist-res[0].Dist) > 1e-9 {
		t.Fatalf("iterator first = %v/%v, want %v", r.Dist, ok, res[0].Dist)
	}
}
