package gnn_test

import (
	"math/rand"
	"reflect"
	"testing"

	"gnn"
)

// diskFixture builds a small index and a query point cloud for the
// disk-resident tests.
func diskFixture(t *testing.T, nData, nQuery int) (*gnn.Index, []gnn.Point) {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	pts := make([]gnn.Point, nData)
	for i := range pts {
		pts[i] = gnn.Point{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{NodeCapacity: 16})
	if err != nil {
		t.Fatal(err)
	}
	qpts := make([]gnn.Point, nQuery)
	for i := range qpts {
		qpts[i] = gnn.Point{200 + rng.Float64()*400, 200 + rng.Float64()*400}
	}
	return ix, qpts
}

// TestDiskAutoThreshold covers both sides of the configurable F-MQM/F-MBM
// crossover: the same query set resolves to F-MQM when its block count is
// at or below the threshold and to F-MBM above it, and DiskAuto's results
// match the explicitly chosen algorithm's in both regimes.
func TestDiskAutoThreshold(t *testing.T) {
	ix, qpts := diskFixture(t, 2000, 600)
	// 600 points at 100 per block = 6 blocks.
	build := func(threshold int) *gnn.QuerySet {
		qs, err := gnn.NewQuerySet(qpts, gnn.QuerySetConfig{BlockPoints: 100, AutoBlockThreshold: threshold})
		if err != nil {
			t.Fatal(err)
		}
		if qs.Blocks() != 6 {
			t.Fatalf("fixture drifted: %d blocks, want 6", qs.Blocks())
		}
		return qs
	}

	below := build(6) // blocks == threshold → F-MQM
	if got := below.AutoAlgorithm(); got != gnn.DiskFMQM {
		t.Fatalf("6 blocks, threshold 6: auto resolved to %v, want F-MQM", got)
	}
	above := build(5) // blocks > threshold → F-MBM
	if got := above.AutoAlgorithm(); got != gnn.DiskFMBM {
		t.Fatalf("6 blocks, threshold 5: auto resolved to %v, want F-MBM", got)
	}
	// Negative threshold forces F-MBM even for tiny sets.
	forced, err := gnn.NewQuerySet(qpts[:50], gnn.QuerySetConfig{BlockPoints: 100, AutoBlockThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got := forced.AutoAlgorithm(); got != gnn.DiskFMBM {
		t.Fatalf("negative threshold: auto resolved to %v, want F-MBM", got)
	}
	// Zero keeps the default crossover.
	def := build(0)
	if got := def.AutoAlgorithm(); got != gnn.DiskFMQM {
		t.Fatalf("default threshold with 6 blocks: auto resolved to %v, want F-MQM", got)
	}

	// End to end: DiskAuto must answer exactly like the algorithm it
	// resolves to, on both sides of the crossover.
	for _, tc := range []struct {
		name string
		qs   *gnn.QuerySet
		want gnn.DiskAlgorithm
	}{
		{"fmqm-side", below, gnn.DiskFMQM},
		{"fmbm-side", above, gnn.DiskFMBM},
	} {
		auto, err := ix.GroupNNFromSet(tc.qs, gnn.DiskAuto, gnn.WithK(3))
		if err != nil {
			t.Fatalf("%s auto: %v", tc.name, err)
		}
		explicit, err := ix.GroupNNFromSet(tc.qs, tc.want, gnn.WithK(3))
		if err != nil {
			t.Fatalf("%s explicit: %v", tc.name, err)
		}
		if !reflect.DeepEqual(auto, explicit) {
			t.Fatalf("%s: DiskAuto diverged from %v\nauto:     %v\nexplicit: %v",
				tc.name, tc.want, auto, explicit)
		}
	}
}

// TestDiskLayoutEquivalence answers the same disk-resident query on both
// index layouts and requires identical results and I/O costs.
func TestDiskLayoutEquivalence(t *testing.T) {
	ix, qpts := diskFixture(t, 2500, 500)
	qs, err := gnn.NewQuerySet(qpts, gnn.QuerySetConfig{BlockPoints: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []gnn.DiskAlgorithm{gnn.DiskFMQM, gnn.DiskFMBM} {
		dyn, dcost, err := ix.GroupNNFromSetWithCost(qs, algo, gnn.WithK(4), gnn.WithLayout(gnn.LayoutDynamic))
		if err != nil {
			t.Fatal(err)
		}
		pkd, pcost, err := ix.GroupNNFromSetWithCost(qs, algo, gnn.WithK(4), gnn.WithLayout(gnn.LayoutPacked))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dyn, pkd) {
			t.Fatalf("%v: results diverged between layouts", algo)
		}
		if dcost != pcost {
			t.Fatalf("%v: cost diverged: %+v vs %+v", algo, dcost, pcost)
		}
	}
}
