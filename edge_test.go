// Edge-case tests for the query surface's corners: the DiskAuto
// algorithm crossover, WithLayout pinning against indexes that have no
// packed snapshot (or nothing at all), empty indexes, and query groups
// larger than the data set.
package gnn_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"gnn"
)

// TestAutoAlgorithmCrossover pins the DiskAuto resolution on both sides
// of the block threshold, at the exact threshold, with a custom
// threshold, and with the documented negative override.
func TestAutoAlgorithmCrossover(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	mk := func(points, blockPoints, threshold int) *gnn.QuerySet {
		t.Helper()
		qs, err := gnn.NewQuerySet(randGroup(rng, points), gnn.QuerySetConfig{
			BlockPoints: blockPoints, AutoBlockThreshold: threshold,
		})
		if err != nil {
			t.Fatal(err)
		}
		return qs
	}

	// Default threshold (8): 1 block and 8 blocks resolve to F-MQM, 9 to
	// F-MBM.
	if got := mk(50, 100, 0).AutoAlgorithm(); got != gnn.DiskFMQM {
		t.Fatalf("1 block resolved to %v", got)
	}
	if qs := mk(800, 100, 0); qs.Blocks() != 8 || qs.AutoAlgorithm() != gnn.DiskFMQM {
		t.Fatalf("%d blocks resolved to %v, want 8 → F-MQM", qs.Blocks(), qs.AutoAlgorithm())
	}
	if qs := mk(801, 100, 0); qs.Blocks() != 9 || qs.AutoAlgorithm() != gnn.DiskFMBM {
		t.Fatalf("%d blocks resolved to %v, want 9 → F-MBM", qs.Blocks(), qs.AutoAlgorithm())
	}
	// Custom threshold moves the crossover.
	if got := mk(300, 100, 2).AutoAlgorithm(); got != gnn.DiskFMBM {
		t.Fatalf("3 blocks over threshold 2 resolved to %v", got)
	}
	if got := mk(200, 100, 2).AutoAlgorithm(); got != gnn.DiskFMQM {
		t.Fatalf("2 blocks at threshold 2 resolved to %v", got)
	}
	// Negative threshold forces F-MBM for every set.
	if got := mk(10, 100, -1).AutoAlgorithm(); got != gnn.DiskFMBM {
		t.Fatalf("negative threshold resolved to %v", got)
	}

	// An empty query set is rejected at construction (AutoAlgorithm can
	// never see zero blocks).
	if _, err := gnn.NewQuerySet(nil, gnn.QuerySetConfig{}); !errors.Is(err, gnn.ErrEmptyQuery) {
		t.Fatalf("empty query set: %v, want ErrEmptyQuery", err)
	}
}

func randGroup(rng *rand.Rand, n int) []gnn.Point {
	out := make([]gnn.Point, n)
	for i := range out {
		out[i] = gnn.Point{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	return out
}

// TestDiskQueriesEmptyIndex runs the whole disk-resident family against
// empty indexes — bulk-loaded (packed snapshot of nothing) and
// incrementally built (no snapshot) — expecting clean empty answers, no
// panics, under every algorithm including the auto crossover.
func TestDiskQueriesEmptyIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	qset, err := gnn.NewQuerySet(randGroup(rng, 2500), gnn.QuerySetConfig{BlockPoints: 100})
	if err != nil {
		t.Fatal(err)
	}
	built, err := gnn.BuildIndex(nil, nil, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := gnn.NewIndex(gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for name, ix := range map[string]*gnn.Index{"bulk-loaded": built, "incremental": fresh} {
		for _, algo := range []gnn.DiskAlgorithm{gnn.DiskAuto, gnn.DiskFMQM, gnn.DiskFMBM} {
			res, err := ix.GroupNNFromSet(qset, algo, gnn.WithK(3))
			if err != nil {
				t.Fatalf("%s/%v on empty index: %v", name, algo, err)
			}
			if len(res) != 0 {
				t.Fatalf("%s/%v on empty index returned %v", name, algo, res)
			}
		}
	}
	// GCP over two indexes, one empty.
	qix, err := gnn.BuildIndex(randGroup(rng, 200), nil, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := built.GroupNNClosestPairs(qix, 0); err != nil || len(res) != 0 {
		t.Fatalf("GCP with empty data index: %v, %v", res, err)
	}
	if res, err := qix.GroupNNClosestPairs(built, 0); err == nil && len(res) != 0 {
		t.Fatalf("GCP with empty query index returned %v", res)
	}
}

// TestQuerySetLargerThanDataset covers the inverted-size regime the
// paper never measures: the disk-resident query set dwarfs the data set,
// and k exceeds the data set size.
func TestQuerySetLargerThanDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	pts := randGroup(rng, 5)
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	qset, err := gnn.NewQuerySet(randGroup(rng, 3000), gnn.QuerySetConfig{BlockPoints: 100})
	if err != nil {
		t.Fatal(err)
	}
	var want []gnn.Result
	for _, algo := range []gnn.DiskAlgorithm{gnn.DiskFMQM, gnn.DiskFMBM, gnn.DiskAuto} {
		res, err := ix.GroupNNFromSet(qset, algo, gnn.WithK(9))
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(res) != len(pts) {
			t.Fatalf("%v: k=9 over 5 points returned %d results", algo, len(res))
		}
		if want == nil {
			want = res
			continue
		}
		for i := range want {
			if res[i].ID != want[i].ID {
				t.Fatalf("%v diverged from F-MQM at %d: %+v vs %+v", algo, i, res[i], want[i])
			}
		}
	}

	// Memory-resident group larger than the data set, every algorithm.
	big := randGroup(rng, 200)
	for _, algo := range []gnn.Algorithm{gnn.AlgoMBM, gnn.AlgoMQM, gnn.AlgoSPM, gnn.AlgoBruteForce} {
		res, err := ix.GroupNN(big, gnn.WithAlgorithm(algo), gnn.WithK(9))
		if err != nil {
			t.Fatalf("%v with oversized group: %v", algo, err)
		}
		if len(res) != len(pts) {
			t.Fatalf("%v with oversized group returned %d results", algo, len(res))
		}
	}
}

// TestLayoutPinningEdges locks the WithLayout contract at the corners:
// a pinned packed layout must fail with ErrNotPacked on indexes without
// a valid snapshot (incremental, or mutated since Pack) for every read
// path, succeed on an empty-but-packed index, and recover after Pack.
func TestLayoutPinningEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	group := randGroup(rng, 4)

	// Empty bulk-loaded index has a (trivially valid) snapshot: pinned
	// packed queries answer cleanly with no results.
	empty, err := gnn.BuildIndex(nil, nil, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !empty.IsPacked() {
		t.Fatal("bulk-loaded empty index reports no packed layout")
	}
	for _, algo := range []gnn.Algorithm{gnn.AlgoMBM, gnn.AlgoMQM, gnn.AlgoSPM, gnn.AlgoBruteForce} {
		res, err := empty.GroupNN(group, gnn.WithAlgorithm(algo), gnn.WithLayout(gnn.LayoutPacked))
		if err != nil {
			t.Fatalf("%v pinned-packed on empty index: %v", algo, err)
		}
		if len(res) != 0 {
			t.Fatalf("%v on empty index returned %v", algo, res)
		}
	}
	if it, err := empty.GroupNNIterator(group, gnn.WithLayout(gnn.LayoutPacked)); err != nil {
		t.Fatalf("iterator pinned-packed on empty index: %v", err)
	} else {
		if _, ok := it.Next(); ok {
			t.Fatal("empty iterator yielded")
		}
		it.Close()
	}

	// An incrementally built index never packs until told to.
	fresh, err := gnn.NewIndex(gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range randGroup(rng, 100) {
		if err := fresh.Insert(p, -1); err != nil {
			t.Fatal(err)
		}
	}
	assertNotPacked := func(ix *gnn.Index, when string) {
		t.Helper()
		for _, algo := range []gnn.Algorithm{gnn.AlgoMBM, gnn.AlgoMQM, gnn.AlgoSPM, gnn.AlgoBruteForce} {
			if _, err := ix.GroupNN(group, gnn.WithAlgorithm(algo), gnn.WithLayout(gnn.LayoutPacked)); !errors.Is(err, gnn.ErrNotPacked) {
				t.Fatalf("%s: %v pinned-packed: %v, want ErrNotPacked", when, algo, err)
			}
		}
		if _, err := ix.GroupNNIterator(group, gnn.WithLayout(gnn.LayoutPacked)); !errors.Is(err, gnn.ErrNotPacked) {
			t.Fatalf("%s: iterator pinned-packed: %v, want ErrNotPacked", when, err)
		}
		qset, qerr := gnn.NewQuerySet(randGroup(rng, 50), gnn.QuerySetConfig{})
		if qerr != nil {
			t.Fatal(qerr)
		}
		if _, err := ix.GroupNNFromSet(qset, gnn.DiskAuto, gnn.WithLayout(gnn.LayoutPacked)); !errors.Is(err, gnn.ErrNotPacked) {
			t.Fatalf("%s: disk query pinned-packed: %v, want ErrNotPacked", when, err)
		}
	}
	assertNotPacked(fresh, "incremental")

	// Pack freezes the base and restores pinned-packed service; from then
	// on mutations land in the overlay and pinned-packed keeps serving.
	fresh.Pack()
	if _, err := fresh.GroupNN(group, gnn.WithLayout(gnn.LayoutPacked)); err != nil {
		t.Fatalf("pinned-packed after Pack: %v", err)
	}
	if err := fresh.Insert(gnn.Point{1, 1}, 999); err != nil {
		t.Fatal(err)
	}
	for _, algo := range []gnn.Algorithm{gnn.AlgoMBM, gnn.AlgoMQM, gnn.AlgoSPM, gnn.AlgoBruteForce} {
		if _, err := fresh.GroupNN(group, gnn.WithAlgorithm(algo), gnn.WithLayout(gnn.LayoutPacked)); err != nil {
			t.Fatalf("mutated: %v pinned-packed: %v", algo, err)
		}
	}
	if it, err := fresh.GroupNNIterator(group, gnn.WithLayout(gnn.LayoutPacked)); err != nil {
		t.Fatalf("mutated: iterator pinned-packed: %v", err)
	} else {
		it.Close()
	}
	// The disk family refuses pending mutations with a dedicated
	// sentinel instead of serving from a stale base.
	qset, qerr := gnn.NewQuerySet(randGroup(rng, 50), gnn.QuerySetConfig{})
	if qerr != nil {
		t.Fatal(qerr)
	}
	if _, err := fresh.GroupNNFromSet(qset, gnn.DiskAuto); !errors.Is(err, gnn.ErrPendingMutations) {
		t.Fatalf("mutated: disk query: %v, want ErrPendingMutations", err)
	}

	// LayoutDynamic and LayoutAuto always serve, snapshot or not.
	for _, layout := range []gnn.Layout{gnn.LayoutDynamic, gnn.LayoutAuto} {
		if _, err := fresh.GroupNN(group, gnn.WithLayout(layout)); err != nil {
			t.Fatalf("%v after mutation: %v", layout, err)
		}
	}

	// Layout and algorithm strings stay printable for diagnostics.
	for _, s := range []fmt.Stringer{gnn.LayoutAuto, gnn.LayoutDynamic, gnn.LayoutPacked, gnn.Layout(42)} {
		if s.String() == "" {
			t.Fatal("empty layout string")
		}
	}
}
