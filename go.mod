module gnn

go 1.24
