package gnn

import "time"

// Stats is a point-in-time summary of an index's shape and serving
// state, independent of query traffic (cost counters live in Cost).
// gnnquery prints it after loading a snapshot; it is equally useful for
// operational logging.
type Stats struct {
	// Points is the number of live data points: base points not masked by
	// a delete tombstone, plus overlay inserts.
	Points int
	// Dim is the point dimensionality.
	Dim int
	// Packed reports whether queries are currently served from the packed
	// SoA arena. Overlay writes do not unset it: the base arena keeps
	// serving, with the delta sources merged in.
	Packed bool
	// Shards is the shard count of a ShardedIndex; 0 for a plain Index.
	Shards int
	// Height is the R-tree height in levels (the maximum across shards).
	Height int
	// Nodes is the total R-tree node count across the packed arena(s);
	// 0 when no packed layout is live (the dynamic tree does not keep a
	// node counter).
	Nodes int
	// ArenaBytes approximates the in-memory size of the packed arena(s) —
	// the payload a snapshot serialises; 0 when no packed layout is live.
	ArenaBytes int64
	// Delta is the number of overlay-inserted points not yet folded into
	// a compacted base (delta tree plus pending tail).
	Delta int
	// Tombstones is the number of base occurrences masked by a delete
	// tombstone.
	Tombstones int
	// CompactGen counts completed compaction cycles since the index was
	// opened.
	CompactGen uint64
	// LastCompaction is the wall-clock duration of the most recent
	// compaction cycle; 0 before the first.
	LastCompaction time.Duration
	// LastCompactionError is the error string of the most recent
	// compaction cycle, "" when it succeeded (or none ran). A failed
	// snapshot rotation shows up here while in-memory serving continues.
	LastCompactionError string
}

// compactStats fills the shared compaction counters.
func (s *Stats) compactStats(gen uint64, ns int64, errp *string) {
	s.CompactGen = gen
	s.LastCompaction = time.Duration(ns)
	if errp != nil {
		s.LastCompactionError = *errp
	}
}

// Stats reports the index's current shape and serving state.
func (ix *Index) Stats() Stats {
	v := ix.view.Load()
	s := Stats{
		Points: ix.Len(),
		Dim:    ix.Dim(),
		Height: v.tree.Height(),
	}
	if p := v.servingPacked(); p != nil {
		s.Packed = true
		s.Nodes = p.Nodes()
		s.ArenaBytes = p.ArenaBytes()
	}
	if v.ov != nil {
		s.Delta = len(v.ov.pts)
		s.Tombstones = v.ov.tombs.Total()
	}
	s.compactStats(ix.compactGen.Load(), ix.compactNS.Load(), ix.compactErr.Load())
	return s
}
