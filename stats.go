package gnn

// Stats is a point-in-time summary of an index's shape and serving
// state, independent of query traffic (cost counters live in Cost).
// gnnquery prints it after loading a snapshot; it is equally useful for
// operational logging.
type Stats struct {
	// Points is the number of indexed data points.
	Points int
	// Dim is the point dimensionality.
	Dim int
	// Packed reports whether queries are currently served from the packed
	// SoA arena (false after Insert/Delete until Pack).
	Packed bool
	// Shards is the shard count of a ShardedIndex; 0 for a plain Index.
	Shards int
	// Height is the R-tree height in levels (the maximum across shards).
	Height int
	// Nodes is the total R-tree node count across the packed arena(s);
	// 0 when no packed layout is live (the dynamic tree does not keep a
	// node counter).
	Nodes int
	// ArenaBytes approximates the in-memory size of the packed arena(s) —
	// the payload a snapshot serialises; 0 when no packed layout is live.
	ArenaBytes int64
}

// Stats reports the index's current shape and serving state.
func (ix *Index) Stats() Stats {
	s := Stats{
		Points: ix.Len(),
		Dim:    ix.Dim(),
		Height: ix.tree.Height(),
	}
	if p := ix.servingPacked(); p != nil {
		s.Packed = true
		s.Nodes = p.Nodes()
		s.ArenaBytes = p.ArenaBytes()
	}
	return s
}

// Stats reports the sharded index's shape. A ShardedIndex always serves
// from its packed shards, so Packed is always true; Height is the
// maximum shard height and Nodes/ArenaBytes sum over the shards.
func (sx *ShardedIndex) Stats() Stats {
	s := Stats{
		Points: sx.Len(),
		Dim:    sx.Dim(),
		Packed: true,
		Shards: sx.NumShards(),
	}
	for i := 0; i < sx.set.NumShards(); i++ {
		p := sx.set.Shard(i).Packed
		s.Nodes += p.Nodes()
		s.ArenaBytes += p.ArenaBytes()
		if h := p.Height(); h > s.Height {
			s.Height = h
		}
	}
	return s
}
