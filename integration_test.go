package gnn_test

import (
	"math"
	"testing"

	"gnn"
	"gnn/internal/dataset"
)

// TestIntegrationFullPipeline exercises the entire stack end to end on the
// PP dataset substitute: generate → index → query through every public
// path (all memory algorithms, the iterator, both disk algorithms, GCP)
// and require identical answers plus the paper's cost ordering.
func TestIntegrationFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test on a real dataset substitute")
	}
	pp := dataset.GeneratePP(1)
	pts := make([]gnn.Point, 5000)
	for i := range pts {
		pts[i] = gnn.Point(pp.Points[i])
	}
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// A query group in the middle of the workspace.
	query := []gnn.Point{
		{4000, 5000}, {4500, 5500}, {5200, 4800}, {4800, 5100},
		{4100, 4600}, {5000, 5000}, {4400, 5300}, {4700, 4900},
	}

	want, err := ix.GroupNN(query, gnn.WithK(8), gnn.WithAlgorithm(gnn.AlgoBruteForce))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 8 {
		t.Fatalf("brute force returned %d", len(want))
	}

	check := func(name string, got []gnn.Result, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d results, want %d", name, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-6 {
				t.Fatalf("%s rank %d: %v vs %v", name, i, got[i].Dist, want[i].Dist)
			}
		}
	}

	// Memory algorithms with NA ordering MQM ≥ SPM ≥ MBM (Fig 5.1's
	// qualitative finding; logical accesses, no buffer).
	na := map[gnn.Algorithm]int64{}
	for _, algo := range []gnn.Algorithm{gnn.AlgoMQM, gnn.AlgoSPM, gnn.AlgoMBM} {
		ix.ResetCost()
		res, err := ix.GroupNN(query, gnn.WithK(8), gnn.WithAlgorithm(algo))
		check(algo.String(), res, err)
		na[algo] = ix.Cost().LogicalAccesses
	}
	if !(na[gnn.AlgoMBM] <= na[gnn.AlgoSPM] && na[gnn.AlgoSPM] <= na[gnn.AlgoMQM]) {
		t.Errorf("NA ordering violated: MQM=%d SPM=%d MBM=%d",
			na[gnn.AlgoMQM], na[gnn.AlgoSPM], na[gnn.AlgoMBM])
	}

	// Incremental iterator yields the same prefix.
	it, err := ix.GroupNNIterator(query)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		r, ok := it.Next()
		if !ok || math.Abs(r.Dist-want[i].Dist) > 1e-6 {
			t.Fatalf("iterator rank %d: %v/%v", i, r.Dist, ok)
		}
	}

	// Disk-resident paths over the same group embedded in a larger file.
	qset, err := gnn.NewQuerySet(query, gnn.QuerySetConfig{BlockPoints: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ix.GroupNNFromSet(qset, gnn.DiskFMQM, gnn.WithK(8))
	check("F-MQM", res, err)
	res, err = ix.GroupNNFromSet(qset, gnn.DiskFMBM, gnn.WithK(8))
	check("F-MBM", res, err)

	qix, err := gnn.BuildIndex(query, nil, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	res, err = ix.GroupNNClosestPairs(qix, 0, gnn.WithK(8))
	check("GCP", res, err)

	// Mutation keeps the structure valid and the results fresh: delete the
	// winner and re-query.
	if !ix.Delete(want[0].Point, want[0].ID) {
		t.Fatal("failed to delete the GNN")
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	after, err := ix.GroupNN(query)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after[0].Dist-want[1].Dist) > 1e-6 {
		t.Fatalf("after deleting the winner, best = %v, want %v", after[0].Dist, want[1].Dist)
	}
}

// TestIntegrationTSSubset runs a smaller sweep on the TS substitute, whose
// polyline clustering produces a differently shaped tree.
func TestIntegrationTSSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test on a real dataset substitute")
	}
	ts := dataset.GenerateTS(1)
	pts := make([]gnn.Point, 8000)
	for i := range pts {
		pts[i] = gnn.Point(ts.Points[i])
	}
	ix, err := gnn.BuildIndex(pts, nil, gnn.IndexConfig{})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, ok := ix.Bounds()
	if !ok {
		t.Fatal("no bounds")
	}
	// Query groups at the corners and centre of the data extent.
	centers := [][2]float64{
		{lo[0], lo[1]}, {hi[0], hi[1]}, {(lo[0] + hi[0]) / 2, (lo[1] + hi[1]) / 2},
	}
	for _, c := range centers {
		query := []gnn.Point{
			{c[0], c[1]}, {c[0] + 100, c[1]}, {c[0], c[1] + 100}, {c[0] + 50, c[1] + 50},
		}
		want, err := ix.GroupNN(query, gnn.WithK(4), gnn.WithAlgorithm(gnn.AlgoBruteForce))
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []gnn.Algorithm{gnn.AlgoMQM, gnn.AlgoSPM, gnn.AlgoMBM} {
			got, err := ix.GroupNN(query, gnn.WithK(4), gnn.WithAlgorithm(algo))
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-6 {
					t.Fatalf("%v at %v rank %d: %v vs %v", algo, c, i, got[i].Dist, want[i].Dist)
				}
			}
		}
	}
}
