// Package gnn answers group nearest neighbor (GNN) queries: given a set of
// indexed data points P and a group of query points Q, it finds the data
// point(s) minimising the aggregate distance to the whole group — e.g. the
// restaurant minimising the total travel distance of several users.
//
// It is a from-scratch Go implementation of the algorithms in
//
//	D. Papadias, Q. Shen, Y. Tao, K. Mouratidis:
//	"Group Nearest Neighbor Queries", ICDE 2004.
//
// Data points live in an R*-tree (Index). Memory-resident query groups are
// answered by MQM, SPM or MBM; disk-resident query sets (QuerySet) by
// F-MQM, F-MBM or — when the query set is itself indexed — GCP. The
// library reproduces the paper's cost model: every traversal counts
// simulated node accesses, optionally through an LRU buffer.
//
// Concurrency: every query runs in its own execution context, so all read
// operations — GroupNN and its variants, NearestNeighbors, iterators,
// GroupNNBatch, GroupNNFromSet — are safe for unlimited concurrent callers
// against one shared Index. Per-query costs (GroupNNWithCost) and the
// index-wide aggregate (Index.Cost) stay exact under concurrency: the
// per-query costs of any set of queries sum to the aggregate they accrued.
// Insert and Delete mutate the tree and require external synchronisation
// with no concurrent readers.
//
// Scale-out: ShardedIndex Hilbert-partitions the data set into S
// independent packed R-trees and answers the same query surface by
// scatter-gather — per-shard kernels share a monotonically tightening
// best-distance bound and a k-way merge reassembles the answer — with
// the distances of a single Index rank for rank (exact equal-distance
// ties may resolve to a different tied point) and per-query costs that
// are the exact sum of per-shard node accesses.
//
// Persistence: WriteSnapshot serialises the packed serving arena in a
// versioned, checksummed binary format (internal/snapshot) and
// OpenSnapshot cold-starts from it without re-bulk-loading — with
// results, costs and node accesses bit-identical to the index that
// wrote it. ShardedIndex snapshots round-trip with their partition
// intact. See the README's "Persistence" section.
//
// Quick start:
//
//	ix, _ := gnn.BuildIndex(places, nil)
//	res, _ := ix.GroupNN([]gnn.Point{{1, 2}, {5, 6}, {9, 3}}, gnn.WithK(3))
//	fmt.Println(res[0].Point, res[0].Dist)
package gnn

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"gnn/internal/core"
	"gnn/internal/geom"
	"gnn/internal/mmapfile"
	"gnn/internal/pagestore"
	"gnn/internal/rtree"
)

// Point is a point in d-dimensional Euclidean space (the paper evaluates
// d = 2, but any dimensionality works for the memory-resident algorithms).
type Point = []float64

// Result is one GNN answer: a data point, its caller-supplied identifier
// and its aggregate distance to the query group.
type Result struct {
	Point Point
	ID    int64
	Dist  float64
}

// IndexConfig tunes an Index. The zero value matches the paper's setup:
// 2-D points, 50 entries per node (1 KB pages), no buffer.
type IndexConfig struct {
	// Dim is the point dimensionality (default 2).
	Dim int
	// NodeCapacity is the R*-tree fanout M (default 50, the paper's 1 KB
	// pages).
	NodeCapacity int
	// BufferPages attaches an LRU buffer of that many pages to the
	// index's access accounting; 0 disables buffering.
	BufferPages int
}

// Index is an R*-tree over the data set P. Build one with NewIndex (empty,
// then Insert) or BuildIndex (bulk load). All read operations are safe for
// unlimited concurrent callers; Insert and Delete require external
// synchronisation with no concurrent readers.
//
// Serving layout: BuildIndex additionally packs the tree into a flat,
// cache-friendly SoA snapshot (see Pack) that queries use by default.
// Insert and Delete invalidate the snapshot — subsequent queries fall
// back to the dynamic nodes with identical results and costs — and Pack
// rebuilds it under the same no-concurrent-readers contract as the
// mutation itself.
type Index struct {
	tree   *rtree.Tree
	acct   *pagestore.Accountant
	packed *rtree.Packed

	// mapped is the file view backing a zero-copy open
	// (OpenSnapshotMapped); nil for every other construction. closed
	// flips when Close starts, after which new queries fail fast with
	// ErrSnapshotClosed; refs counts the reads still inflight, which
	// Close drains before unmapping (see acquire/release).
	mapped *mmapfile.File
	closed atomic.Bool
	refs   atomic.Int64
}

// prepare readies the index for a traversal: it fails fast on a closed
// mapping and forces the deferred verification of a mapped open (lazy
// checksum + structure validation, run once). A no-op for built or
// copy-loaded indexes.
func (ix *Index) prepare() error {
	if ix.closed.Load() {
		return ErrSnapshotClosed
	}
	if ix.packed != nil {
		return ix.packed.Prepare()
	}
	return nil
}

// acquire registers an inflight read against the index lifecycle so a
// concurrent Close drains it before unmapping. The order — increment,
// then check closed — pairs with Close's flip-then-wait: a reader that
// saw closed == false has already published its reference, so Close
// cannot observe a drained count before that reader releases.
func (ix *Index) acquire() error {
	ix.refs.Add(1)
	if ix.closed.Load() {
		ix.refs.Add(-1)
		return ErrSnapshotClosed
	}
	return nil
}

// release retires a reference taken by acquire.
func (ix *Index) release() { ix.refs.Add(-1) }

// drainRefs spins until every inflight read has released: briefly yielding
// the processor, then backing off to short sleeps. Queries are bounded
// (iterators release on Close or exhaustion), so the wait is too.
func drainRefs(refs *atomic.Int64) {
	for i := 0; refs.Load() != 0; i++ {
		if i < 128 {
			runtime.Gosched()
		} else {
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// NewIndex returns an empty index.
func NewIndex(cfg IndexConfig) (*Index, error) {
	acct, rcfg := indexConfig(cfg)
	t, err := rtree.New(rcfg)
	if err != nil {
		return nil, err
	}
	return &Index{tree: t, acct: acct}, nil
}

// BuildIndex bulk-loads an index from points using sort-tile-recursive
// packing. ids[i] identifies points[i]; pass nil to use the slice index.
func BuildIndex(points []Point, ids []int64, cfg IndexConfig) (*Index, error) {
	acct, rcfg := indexConfig(cfg)
	pts := make([]geom.Point, len(points))
	for i, p := range points {
		pts[i] = geom.Point(p)
	}
	t, err := rtree.BulkLoadSTR(rcfg, pts, ids)
	if err != nil {
		return nil, err
	}
	return &Index{tree: t, acct: acct, packed: t.Pack()}, nil
}

func indexConfig(cfg IndexConfig) (*pagestore.Accountant, rtree.Config) {
	acct := pagestore.NewAccountant(cfg.BufferPages)
	return acct, rtree.Config{
		Dim:        cfg.Dim,
		MaxEntries: cfg.NodeCapacity,
		Accountant: acct,
	}
}

// Insert adds a data point with its identifier. A successful insert
// invalidates the packed serving layout; call Pack after a mutation batch
// to restore it. (A rejected insert leaves the tree — and therefore the
// snapshot — untouched.)
func (ix *Index) Insert(p Point, id int64) error {
	if err := ix.tree.Insert(geom.Point(p), id); err != nil {
		return err
	}
	ix.packed = nil
	return nil
}

// Delete removes one occurrence of (p, id); it reports whether a matching
// entry existed. A successful delete invalidates the packed serving
// layout; call Pack after a mutation batch to restore it. (A no-op delete
// leaves the snapshot valid.)
func (ix *Index) Delete(p Point, id int64) bool {
	if !ix.tree.Delete(geom.Point(p), id) {
		return false
	}
	ix.packed = nil
	return true
}

// Pack (re)builds the packed serving layout: an immutable snapshot of the
// tree that stores all nodes in one flat structure-of-arrays arena, which
// queries then traverse instead of the pointer-linked nodes — same
// results, same node-access counts, substantially less pointer chasing.
// BuildIndex packs automatically; call Pack after Insert/Delete batches
// on an incrementally built or mutated index. Like the mutations
// themselves, Pack requires that no queries run concurrently with it.
func (ix *Index) Pack() {
	if ix.tree.IsShell() {
		return // a mapped index's arena is permanently valid
	}
	ix.packed = ix.tree.Pack()
}

// IsPacked reports whether the index currently serves queries from the
// packed layout (false after any Insert/Delete until Pack is called).
func (ix *Index) IsPacked() bool { return ix.packed.Valid(ix.tree) }

// servingPacked returns the packed snapshot queries should use, or nil.
func (ix *Index) servingPacked() *rtree.Packed {
	if ix.packed.Valid(ix.tree) {
		return ix.packed
	}
	return nil
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return ix.tree.Len() }

// Dim returns the index dimensionality.
func (ix *Index) Dim() int { return ix.tree.Dim() }

// Bounds returns the MBR of the indexed points as (lo, hi); ok is false
// when the index is empty.
func (ix *Index) Bounds() (lo, hi Point, ok bool) {
	if ix.acquire() != nil {
		return nil, nil, false // closed mapping; opens/queries report why
	}
	defer ix.release()
	if ix.prepare() != nil {
		return nil, nil, false // corrupt mapping; opens/queries report why
	}
	r, ok := ix.tree.Bounds()
	if !ok {
		return nil, nil, false
	}
	return Point(r.Lo), Point(r.Hi), true
}

// Cost reports simulated I/O: either one query's cost (the WithCost query
// variants) or the index-wide aggregate since the last ResetCost
// (Index.Cost). Per-query costs always sum exactly to the aggregate they
// accrued, even under concurrency.
type Cost struct {
	// NodeAccesses is the paper's NA metric: physical node reads (buffer
	// misses when a buffer is attached, all logical accesses otherwise).
	NodeAccesses int64
	// LogicalAccesses counts every node visit, before buffering.
	LogicalAccesses int64
	// BufferHits counts accesses served by the LRU buffer.
	BufferHits int64
}

func costOf(tk pagestore.CostTracker) Cost {
	return Cost{
		NodeAccesses:    tk.Physical,
		LogicalAccesses: tk.Logical,
		BufferHits:      tk.Hits,
	}
}

// Add merges another cost into c (to aggregate per-query costs).
func (c *Cost) Add(o Cost) {
	c.NodeAccesses += o.NodeAccesses
	c.LogicalAccesses += o.LogicalAccesses
	c.BufferHits += o.BufferHits
}

// Cost returns the access counts accumulated across all queries.
func (ix *Index) Cost() Cost { return costOf(ix.acct.Totals()) }

// ResetCost zeroes the counters, keeping any buffer contents warm.
func (ix *Index) ResetCost() { ix.acct.Reset() }

// ResetCostCold zeroes the counters and drops the buffer contents.
func (ix *Index) ResetCostCold() { ix.acct.ResetAll() }

// CheckInvariants validates the underlying R*-tree structure (exposed for
// tests and diagnostics). On a mapped index it runs the arena's checksum
// and structural validation instead (there are no dynamic nodes).
func (ix *Index) CheckInvariants() error {
	if err := ix.acquire(); err != nil {
		return err
	}
	defer ix.release()
	if err := ix.prepare(); err != nil {
		return err
	}
	return ix.tree.CheckInvariants()
}

// NearestNeighbors answers a classical point-NN query (k nearest indexed
// points to q) with the best-first algorithm of [HS99] — the n = 1 special
// case of a GNN query, exposed because it is independently useful.
func (ix *Index) NearestNeighbors(q Point, k int) ([]Result, error) {
	res, _, err := ix.NearestNeighborsWithCost(q, k)
	return res, err
}

// NearestNeighborsWithCost is NearestNeighbors returning the query's own
// I/O cost alongside the results.
func (ix *Index) NearestNeighborsWithCost(q Point, k int) ([]Result, Cost, error) {
	if len(q) != ix.Dim() {
		return nil, Cost{}, fmt.Errorf("gnn: query dimension %d, index dimension %d", len(q), ix.Dim())
	}
	if k < 1 {
		return nil, Cost{}, core.ErrBadK
	}
	if err := ix.acquire(); err != nil {
		return nil, Cost{}, err
	}
	defer ix.release()
	if err := ix.prepare(); err != nil {
		return nil, Cost{}, err
	}
	var tk pagestore.CostTracker
	nbs := rtree.ReaderOver(ix.tree, ix.servingPacked(), &tk).NearestBF(geom.Point(q), k)
	out := make([]Result, len(nbs))
	for i, nb := range nbs {
		out[i] = Result{Point: Point(nb.Point), ID: nb.ID, Dist: nb.Dist}
	}
	return out, costOf(tk), nil
}

func toResults(gs []core.GroupNeighbor) []Result {
	out := make([]Result, len(gs))
	for i, g := range gs {
		out[i] = Result{Point: Point(g.Point), ID: g.ID, Dist: g.Dist}
	}
	return out
}
