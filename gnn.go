// Package gnn answers group nearest neighbor (GNN) queries: given a set of
// indexed data points P and a group of query points Q, it finds the data
// point(s) minimising the aggregate distance to the whole group — e.g. the
// restaurant minimising the total travel distance of several users.
//
// It is a from-scratch Go implementation of the algorithms in
//
//	D. Papadias, Q. Shen, Y. Tao, K. Mouratidis:
//	"Group Nearest Neighbor Queries", ICDE 2004.
//
// Data points live in an R*-tree (Index). Memory-resident query groups are
// answered by MQM, SPM or MBM; disk-resident query sets (QuerySet) by
// F-MQM, F-MBM or — when the query set is itself indexed — GCP. The
// library reproduces the paper's cost model: every traversal counts
// simulated node accesses, optionally through an LRU buffer.
//
// Concurrency: every query runs in its own execution context, so all read
// operations — GroupNN and its variants, NearestNeighbors, iterators,
// GroupNNBatch, GroupNNFromSet — are safe for unlimited concurrent callers
// against one shared Index. Per-query costs (GroupNNWithCost) and the
// index-wide aggregate (Index.Cost) stay exact under concurrency: the
// per-query costs of any set of queries sum to the aggregate they accrued.
//
// Writes under live traffic: once an index has a packed base (BuildIndex,
// OpenSnapshot*, or the first Pack), Insert and Delete are safe to call
// concurrently with any number of readers. Mutations never touch the
// immutable base — inserts land in a small delta overlay (a dynamic
// pending tail folded into a packed mini tree) and deletes tombstone base
// points or physically remove overlay points — and every write publishes
// a new immutable index view atomically, so an in-flight query keeps
// traversing the consistent view it started on. Queries merge the base,
// delta and pending candidate streams with the same shared-bound
// machinery the sharded scatter uses, returning exactly what a fresh
// index over the live point set would return. Pack (or the background
// compactor, see StartCompactor) folds the overlay back into a fresh
// packed base off the hot path and swaps it in under live readers. Only a
// never-packed index (NewIndex before its first Pack) retains the legacy
// contract: mutations go straight into the R*-tree and require external
// synchronisation with no concurrent readers.
//
// Scale-out: ShardedIndex Hilbert-partitions the data set into S
// independent packed R-trees and answers the same query surface by
// scatter-gather — per-shard kernels share a monotonically tightening
// best-distance bound and a k-way merge reassembles the answer — with
// the distances of a single Index rank for rank (exact equal-distance
// ties may resolve to a different tied point) and per-query costs that
// are the exact sum of per-shard node accesses.
//
// Persistence: WriteSnapshot serialises the packed serving arena in a
// versioned, checksummed binary format (internal/snapshot) and
// OpenSnapshot cold-starts from it without re-bulk-loading — with
// results, costs and node accesses bit-identical to the index that
// wrote it. ShardedIndex snapshots round-trip with their partition
// intact. See the README's "Persistence" section.
//
// Quick start:
//
//	ix, _ := gnn.BuildIndex(places, nil)
//	res, _ := ix.GroupNN([]gnn.Point{{1, 2}, {5, 6}, {9, 3}}, gnn.WithK(3))
//	fmt.Println(res[0].Point, res[0].Dist)
package gnn

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gnn/internal/core"
	"gnn/internal/geom"
	"gnn/internal/mmapfile"
	"gnn/internal/overlay"
	"gnn/internal/pagestore"
	"gnn/internal/rtree"
)

// Point is a point in d-dimensional Euclidean space (the paper evaluates
// d = 2, but any dimensionality works for the memory-resident algorithms).
type Point = []float64

// Result is one GNN answer: a data point, its caller-supplied identifier
// and its aggregate distance to the query group.
type Result struct {
	Point Point
	ID    int64
	Dist  float64
}

// IndexConfig tunes an Index. The zero value matches the paper's setup:
// 2-D points, 50 entries per node (1 KB pages), no buffer.
type IndexConfig struct {
	// Dim is the point dimensionality (default 2).
	Dim int
	// NodeCapacity is the R*-tree fanout M (default 50, the paper's 1 KB
	// pages).
	NodeCapacity int
	// BufferPages attaches an LRU buffer of that many pages to the
	// index's access accounting; 0 disables buffering.
	BufferPages int
}

// Index is an R*-tree over the data set P. Build one with NewIndex (empty,
// then Insert) or BuildIndex (bulk load). All read operations are safe for
// unlimited concurrent callers.
//
// Serving layout: BuildIndex packs the tree into a flat, cache-friendly
// SoA snapshot (see Pack) that queries use by default. The packed base is
// immutable: Insert and Delete on a packed index go into a delta overlay
// (see the package comment) and are themselves safe under concurrent
// readers; Pack or the background compactor folds the overlay back into
// a fresh packed base. On a never-packed index (NewIndex before the first
// Pack) mutations go straight into the R*-tree and require external
// synchronisation with no concurrent readers.
type Index struct {
	// view is the index's current immutable serving state: base tree,
	// packed base arena and write overlay. Readers load it once per
	// operation (lock-free); writers build a successor under mu and
	// publish it atomically.
	view atomic.Pointer[viewState]
	acct *pagestore.Accountant
	rcfg rtree.Config

	// mu serializes writers: Insert, Delete, Pack and the compactor's
	// swap step. Readers never take it.
	mu sync.Mutex
	// log records the effective mutations applied since the current base
	// was built (under mu); the compactor replays the tail that arrived
	// while it was repacking. A published view's seq always equals the
	// log length at publish time.
	log []overlay.Mutation
	// comp is the background compactor, nil unless StartCompactor ran.
	comp *compactor
	// compactMu serializes whole compaction cycles (manual Compact/Pack
	// vs the background loop) so two repacks never interleave.
	compactMu sync.Mutex
	// persist is the crash-safe rotation target ("" = no on-disk
	// rotation), set by StartCompactor; guarded by mu.
	persist string

	compactGen atomic.Uint64          // completed compactions
	compactNS  atomic.Int64           // duration of the last compaction
	compactErr atomic.Pointer[string] // last compaction error ("" = none)

	// mapped is the file view backing a zero-copy open
	// (OpenSnapshotMapped); nil for every other construction. closed
	// flips when Close starts, after which new queries fail fast with
	// ErrSnapshotClosed; refs counts the reads still inflight, which
	// Close drains before unmapping (see acquire/release).
	mapped *mmapfile.File
	closed atomic.Bool
	refs   atomic.Int64
}

// prepare readies the index for a traversal: it fails fast on a closed
// mapping and forces the deferred verification of a mapped open (lazy
// checksum + structure validation, run once). A no-op for built or
// copy-loaded indexes.
func (ix *Index) prepare() error {
	if ix.closed.Load() {
		return ErrSnapshotClosed
	}
	if v := ix.view.Load(); v.packed != nil {
		return v.packed.Prepare()
	}
	return nil
}

// acquire registers an inflight read against the index lifecycle so a
// concurrent Close drains it before unmapping. The order — increment,
// then check closed — pairs with Close's flip-then-wait: a reader that
// saw closed == false has already published its reference, so Close
// cannot observe a drained count before that reader releases.
func (ix *Index) acquire() error {
	ix.refs.Add(1)
	if ix.closed.Load() {
		ix.refs.Add(-1)
		return ErrSnapshotClosed
	}
	return nil
}

// release retires a reference taken by acquire.
func (ix *Index) release() { ix.refs.Add(-1) }

// drainRefs spins until every inflight read has released: briefly yielding
// the processor, then backing off to short sleeps. Queries are bounded
// (iterators release on Close or exhaustion), so the wait is too.
func drainRefs(refs *atomic.Int64) {
	for i := 0; refs.Load() != 0; i++ {
		if i < 128 {
			runtime.Gosched()
		} else {
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// newIndexOver wraps a constructed base (tree + optional packed arena)
// into an Index with its initial view published.
func newIndexOver(t *rtree.Tree, p *rtree.Packed, acct *pagestore.Accountant, rcfg rtree.Config) *Index {
	ix := &Index{acct: acct, rcfg: rcfg}
	ix.view.Store(&viewState{tree: t, packed: p, frozen: p != nil})
	empty := ""
	ix.compactErr.Store(&empty)
	return ix
}

// NewIndex returns an empty index.
func NewIndex(cfg IndexConfig) (*Index, error) {
	acct, rcfg := indexConfig(cfg)
	t, err := rtree.New(rcfg)
	if err != nil {
		return nil, err
	}
	return newIndexOver(t, nil, acct, rcfg), nil
}

// BuildIndex bulk-loads an index from points using sort-tile-recursive
// packing. ids[i] identifies points[i]; pass nil to use the slice index.
func BuildIndex(points []Point, ids []int64, cfg IndexConfig) (*Index, error) {
	acct, rcfg := indexConfig(cfg)
	pts := make([]geom.Point, len(points))
	for i, p := range points {
		pts[i] = geom.Point(p)
	}
	t, err := rtree.BulkLoadSTR(rcfg, pts, ids)
	if err != nil {
		return nil, err
	}
	return newIndexOver(t, t.Pack(), acct, rcfg), nil
}

func indexConfig(cfg IndexConfig) (*pagestore.Accountant, rtree.Config) {
	acct := pagestore.NewAccountant(cfg.BufferPages)
	return acct, rtree.Config{
		Dim:        cfg.Dim,
		MaxEntries: cfg.NodeCapacity,
		Accountant: acct,
	}
}

// Insert adds a data point with its identifier. On a packed index the
// insert lands in the delta overlay — the packed base keeps serving, and
// the insert is safe under concurrent readers; Pack or the background
// compactor folds the overlay into a fresh base. On a never-packed index
// it mutates the R*-tree directly (legacy contract: no concurrent
// readers). A rejected insert (dimension mismatch) changes nothing.
func (ix *Index) Insert(p Point, id int64) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed.Load() {
		return ErrSnapshotClosed
	}
	v := ix.view.Load()
	if !v.frozen {
		return v.tree.Insert(geom.Point(p), id)
	}
	if len(p) != v.tree.Dim() {
		return fmt.Errorf("rtree: point dimension %d, tree dimension %d", len(p), v.tree.Dim())
	}
	nv, err := ix.applyInsert(v, geom.Point(p).Clone(), id)
	if err != nil {
		return err
	}
	ix.log = append(ix.log, overlay.Mutation{P: geom.Point(p).Clone(), ID: id})
	ix.view.Store(nv)
	ix.kickCompactor(nv)
	return nil
}

// Delete removes one occurrence of (p, id); it reports whether a matching
// entry existed. On a packed index the delete either physically removes an
// overlay point or tombstones a base occurrence — the packed base keeps
// serving, and the delete is safe under concurrent readers. On a
// never-packed index it mutates the R*-tree directly (legacy contract: no
// concurrent readers). A no-op delete changes nothing.
func (ix *Index) Delete(p Point, id int64) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed.Load() {
		return false
	}
	v := ix.view.Load()
	if !v.frozen {
		return v.tree.Delete(geom.Point(p), id)
	}
	if len(p) != v.tree.Dim() {
		return false
	}
	if ix.prepare() != nil {
		return false // unverifiable mapping; queries report why
	}
	nv, ok := ix.applyDelete(v, geom.Point(p).Clone(), id)
	if !ok {
		return false
	}
	ix.log = append(ix.log, overlay.Mutation{Del: true, P: geom.Point(p).Clone(), ID: id})
	ix.view.Store(nv)
	ix.kickCompactor(nv)
	return true
}

// Pack (re)builds the packed serving layout: an immutable snapshot of the
// index that stores all nodes in one flat structure-of-arrays arena, which
// queries then traverse instead of the pointer-linked nodes — same
// results, same node-access counts, substantially less pointer chasing.
// BuildIndex packs automatically. On a never-packed index Pack freezes the
// current tree as the immutable base (structure preserved, so results and
// node accesses are unchanged); from then on mutations go through the
// overlay. On a packed index with overlay writes Pack compacts
// synchronously: base and overlay are folded into a fresh packed base
// (equivalent to Compact, with any error recorded in Stats). Pack is safe
// under concurrent readers; only the never-packed→packed transition
// retains the legacy no-concurrent-readers contract of the mutations
// that preceded it.
func (ix *Index) Pack() {
	ix.mu.Lock()
	if ix.closed.Load() {
		ix.mu.Unlock()
		return
	}
	v := ix.view.Load()
	if !v.frozen {
		ix.view.Store(&viewState{tree: v.tree, packed: v.tree.Pack(), frozen: true, seq: v.seq})
		ix.mu.Unlock()
		return
	}
	ov := v.ov
	ix.mu.Unlock()
	if ov != nil {
		ix.Compact() // error recorded in Stats; old view keeps serving on failure
	}
}

// IsPacked reports whether the index serves queries from a packed base
// arena. Overlay writes do not unpack the base: a built or snapshot-opened
// index stays packed across Insert/Delete. Only a never-packed index
// (NewIndex before the first Pack) reports false.
func (ix *Index) IsPacked() bool {
	v := ix.view.Load()
	return v.packed.Valid(v.tree)
}

// servingPacked returns the packed base of the current view, or nil.
// Kept for call sites that do not otherwise need the view; paths that
// already hold a view use v.servingPacked() for a consistent read.
func (ix *Index) servingPacked() *rtree.Packed {
	return ix.view.Load().servingPacked()
}

// Len returns the number of live points: base points not masked by a
// delete tombstone, plus overlay inserts.
func (ix *Index) Len() int {
	v := ix.view.Load()
	n := v.tree.Len()
	if v.ov != nil {
		n += len(v.ov.pts) - v.ov.tombs.Total()
	}
	return n
}

// Dim returns the index dimensionality.
func (ix *Index) Dim() int { return ix.view.Load().tree.Dim() }

// Bounds returns the MBR of the indexed points as (lo, hi); ok is false
// when the index is empty.
func (ix *Index) Bounds() (lo, hi Point, ok bool) {
	if ix.acquire() != nil {
		return nil, nil, false // closed mapping; opens/queries report why
	}
	defer ix.release()
	if ix.prepare() != nil {
		return nil, nil, false // corrupt mapping; opens/queries report why
	}
	v := ix.view.Load()
	r, ok := v.tree.Bounds()
	if v.ov != nil && len(v.ov.pts) > 0 {
		// Overlay inserts can extend the MBR. Deletes are not shrunk
		// until compaction, so the bounds are conservative (never too
		// small) on a mutated index.
		or := geom.BoundingRect(v.ov.pts)
		if ok {
			or = or.Union(r)
		}
		r, ok = or, true
	}
	if !ok {
		return nil, nil, false
	}
	return Point(r.Lo), Point(r.Hi), true
}

// Cost reports simulated I/O: either one query's cost (the WithCost query
// variants) or the index-wide aggregate since the last ResetCost
// (Index.Cost). Per-query costs always sum exactly to the aggregate they
// accrued, even under concurrency.
type Cost struct {
	// NodeAccesses is the paper's NA metric: physical node reads (buffer
	// misses when a buffer is attached, all logical accesses otherwise).
	NodeAccesses int64
	// LogicalAccesses counts every node visit, before buffering.
	LogicalAccesses int64
	// BufferHits counts accesses served by the LRU buffer.
	BufferHits int64
}

func costOf(tk pagestore.CostTracker) Cost {
	return Cost{
		NodeAccesses:    tk.Physical,
		LogicalAccesses: tk.Logical,
		BufferHits:      tk.Hits,
	}
}

// Add merges another cost into c (to aggregate per-query costs).
func (c *Cost) Add(o Cost) {
	c.NodeAccesses += o.NodeAccesses
	c.LogicalAccesses += o.LogicalAccesses
	c.BufferHits += o.BufferHits
}

// Cost returns the access counts accumulated across all queries.
func (ix *Index) Cost() Cost { return costOf(ix.acct.Totals()) }

// ResetCost zeroes the counters, keeping any buffer contents warm.
func (ix *Index) ResetCost() { ix.acct.Reset() }

// ResetCostCold zeroes the counters and drops the buffer contents.
func (ix *Index) ResetCostCold() { ix.acct.ResetAll() }

// CheckInvariants validates the underlying R*-tree structure (exposed for
// tests and diagnostics). On a mapped index it runs the arena's checksum
// and structural validation instead (there are no dynamic nodes).
func (ix *Index) CheckInvariants() error {
	if err := ix.acquire(); err != nil {
		return err
	}
	defer ix.release()
	if err := ix.prepare(); err != nil {
		return err
	}
	v := ix.view.Load()
	if err := v.tree.CheckInvariants(); err != nil {
		return err
	}
	if v.ov != nil && v.ov.delta != nil {
		return v.ov.delta.CheckInvariants()
	}
	return nil
}

// NearestNeighbors answers a classical point-NN query (k nearest indexed
// points to q) with the best-first algorithm of [HS99] — the n = 1 special
// case of a GNN query, exposed because it is independently useful.
func (ix *Index) NearestNeighbors(q Point, k int) ([]Result, error) {
	res, _, err := ix.NearestNeighborsWithCost(q, k)
	return res, err
}

// NearestNeighborsWithCost is NearestNeighbors returning the query's own
// I/O cost alongside the results.
func (ix *Index) NearestNeighborsWithCost(q Point, k int) ([]Result, Cost, error) {
	if len(q) != ix.Dim() {
		return nil, Cost{}, fmt.Errorf("gnn: query dimension %d, index dimension %d", len(q), ix.Dim())
	}
	if k < 1 {
		return nil, Cost{}, core.ErrBadK
	}
	if err := ix.acquire(); err != nil {
		return nil, Cost{}, err
	}
	defer ix.release()
	if err := ix.prepare(); err != nil {
		return nil, Cost{}, err
	}
	var tk pagestore.CostTracker
	v := ix.view.Load()
	if v.ov == nil {
		nbs := rtree.ReaderOver(v.tree, v.servingPacked(), &tk).NearestBF(geom.Point(q), k)
		out := make([]Result, len(nbs))
		for i, nb := range nbs {
			out[i] = Result{Point: Point(nb.Point), ID: nb.ID, Dist: nb.Dist}
		}
		return out, costOf(tk), nil
	}
	return ix.nearestOverlay(v, geom.Point(q), k, &tk)
}

// nearestOverlay merges the base NN stream (tombstoned hits skipped),
// the delta-tree NN stream and the exact pending distances into the k
// nearest live points. Cost is the sum of both tree traversals' node
// accesses; the pending tail is a memory array and charges nothing.
func (ix *Index) nearestOverlay(v *viewState, q geom.Point, k int, tk *pagestore.CostTracker) ([]Result, Cost, error) {
	ov := v.ov
	base := rtree.ReaderOver(v.tree, v.servingPacked(), tk).NewNNIterator(q)
	defer base.Close()
	nextBase := func() (rtree.Neighbor, bool) {
		for {
			nb, ok := base.Next()
			if !ok {
				return rtree.Neighbor{}, false
			}
			if ov.tombs.Rejects(nb.Point, nb.ID) {
				continue
			}
			return nb, true
		}
	}
	nextDelta := func() (rtree.Neighbor, bool) { return rtree.Neighbor{}, false }
	if ov.delta != nil {
		delta := rtree.ReaderOver(ov.delta, ov.deltaP, tk).NewNNIterator(q)
		defer delta.Close()
		nextDelta = func() (rtree.Neighbor, bool) { return delta.Next() }
	}
	pend := core.ScanNeighbors(ov.pts[ov.folded:], ov.ids[ov.folded:], q)
	pi := 0
	nextPend := func() (rtree.Neighbor, bool) {
		if pi >= len(pend) {
			return rtree.Neighbor{}, false
		}
		g := pend[pi]
		pi++
		return rtree.Neighbor{Point: g.Point, ID: g.ID, Dist: g.Dist}, true
	}

	type head struct {
		nb   rtree.Neighbor
		ok   bool
		next func() (rtree.Neighbor, bool)
	}
	heads := []head{{next: nextBase}, {next: nextDelta}, {next: nextPend}}
	for i := range heads {
		heads[i].nb, heads[i].ok = heads[i].next()
	}
	out := make([]Result, 0, k)
	for len(out) < k {
		pick := -1
		for i := range heads {
			if !heads[i].ok {
				continue
			}
			if pick == -1 || heads[i].nb.Dist < heads[pick].nb.Dist {
				pick = i
			}
		}
		if pick == -1 {
			break
		}
		nb := heads[pick].nb
		out = append(out, Result{Point: Point(nb.Point), ID: nb.ID, Dist: nb.Dist})
		heads[pick].nb, heads[pick].ok = heads[pick].next()
	}
	return out, costOf(*tk), nil
}

func toResults(gs []core.GroupNeighbor) []Result {
	out := make([]Result, len(gs))
	for i, g := range gs {
		out[i] = Result{Point: Point(g.Point), ID: g.ID, Dist: g.Dist}
	}
	return out
}
