# Build and run the gnnserve query daemon. The snapshot is not baked
# into the image — mount it and point -snapshot at the mount, so the
# same image serves any dataset and a rebuilt snapshot is picked up
# with a SIGHUP / POST /admin/reload instead of a redeploy.
#
#   docker build -t gnnserve .
#   docker run -v $PWD/data:/data -p 8080:8080 gnnserve \
#       -snapshot /data/pp.snap -addr :8080
#
# Stop with SIGTERM (docker stop): the daemon flips /readyz, drains
# in-flight queries up to -drain-timeout, then unmaps and exits — give
# `docker stop` a timeout at least as long as the drain bound.

FROM golang:1.24 AS build
WORKDIR /src
# Module metadata first so the (empty, stdlib-only) dependency layer
# caches across source changes.
COPY go.mod ./
RUN go mod download
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -ldflags='-s -w' -o /out/gnnserve ./cmd/gnnserve
# gnngen rides along for generating test snapshots inside the container;
# it costs little and makes the image self-exercising.
RUN CGO_ENABLED=0 go build -trimpath -ldflags='-s -w' -o /out/gnngen ./cmd/gnngen

FROM gcr.io/distroless/static-debian12:nonroot
COPY --from=build /out/gnnserve /usr/local/bin/gnnserve
COPY --from=build /out/gnngen /usr/local/bin/gnngen
EXPOSE 8080
USER nonroot
ENTRYPOINT ["/usr/local/bin/gnnserve"]
CMD ["-snapshot", "/data/index.snap", "-addr", ":8080"]
